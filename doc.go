// Package graphxmt is a reproduction of "Investigating Graph Algorithms in
// the BSP Model on the Cray XMT" (David Ediger and David A. Bader, IEEE
// IPDPSW 2013): a comparison of vertex-centric bulk synchronous parallel
// (Pregel-style) graph algorithms against hand-tuned shared-memory kernels
// on a massively multithreaded machine.
//
// The repository contains, under internal/:
//
//   - core: the BSP vertex-program engine (the paper's contribution)
//   - bspalg: the paper's Algorithms 1-3 (connected components, BFS,
//     triangle counting) plus SSSP, PageRank, betweenness, k-core, label
//     propagation, Luby's MIS, and a streaming triangle evaluator
//   - graphct: the shared-memory baseline kernels (GraphCT ports)
//   - graph, graphio, gen, rng, par, trace: the substrates (CSR graphs,
//     I/O in three formats, RMAT/ER/WS/BA and structured generators,
//     deterministic PRNG, host parallelism, work-profile tracing)
//   - machine: the simulated Cray XMT (analytic and discrete-event
//     Threadstorm models, regime diagnosis) standing in for the hardware
//   - fullempty: the XMT's full/empty-bit synchronization primitives and
//     the lock/queue/hash-set/barrier idioms built from them
//   - graph500: a Graph500-style BFS benchmark harness with validation
//   - experiments: drivers that regenerate Table I, Figures 1-4, the
//     auxiliary counts, regime diagnoses, and the ablations
//
// Executables live under cmd/ (xmtbench, graphgen, graphct, bspgraph,
// profile) and runnable examples under examples/. See README.md,
// DESIGN.md, docs/MODEL.md and EXPERIMENTS.md.
package graphxmt
