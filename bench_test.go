// Benchmarks regenerating the paper's evaluation artifacts — one benchmark
// per table and figure, plus the auxiliary counts. Each benchmark runs the
// real kernels and reports the simulated 128-processor Cray XMT time as a
// custom metric ("sim_sec") beside the host ns/op; for Table I rows the
// BSP:GraphCT ratio is reported as "ratio".
//
// Benchmarks run at scale 13 so `go test -bench=.` completes quickly; the
// committed EXPERIMENTS.md numbers use `cmd/xmtbench` at scale 16 (flags
// go up to the paper's scale 24 given memory and patience).
package graphxmt_test

import (
	"sync"
	"testing"

	"graphxmt/internal/experiments"
	"graphxmt/internal/graph"
	"graphxmt/internal/graph500"
	"graphxmt/internal/machine"
)

const benchScale = 13

var (
	benchOnce  sync.Once
	benchGraph *graph.Graph
	benchSetup experiments.Setup
)

func setup(b *testing.B) (*graph.Graph, experiments.Setup) {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup = experiments.DefaultSetup()
		benchSetup.Scale = benchScale
		var err error
		benchGraph, err = experiments.BuildGraph(benchSetup)
		if err != nil {
			panic(err)
		}
	})
	return benchGraph, benchSetup
}

// BenchmarkTable1 regenerates Table I: total execution time for connected
// components, BFS and triangle counting in both programming models.
func BenchmarkTable1(b *testing.B) {
	g, s := setup(b)
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(g, s)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Ratio, "ratio_"+shortName(row.Algorithm))
	}
}

func shortName(alg string) string {
	switch alg {
	case "Connected Components":
		return "cc"
	case "Breadth-first Search":
		return "bfs"
	case "Triangle Counting":
		return "tc"
	}
	return alg
}

// BenchmarkTable1ConnectedComponentsBSP times the BSP side of Table I row 1.
func BenchmarkTable1ConnectedComponentsBSP(b *testing.B) {
	benchOneAlg(b, "cc", true)
}

// BenchmarkTable1ConnectedComponentsGraphCT times the shared-memory side.
func BenchmarkTable1ConnectedComponentsGraphCT(b *testing.B) {
	benchOneAlg(b, "cc", false)
}

// BenchmarkTable1BFSBSP times the BSP side of Table I row 2.
func BenchmarkTable1BFSBSP(b *testing.B) { benchOneAlg(b, "bfs", true) }

// BenchmarkTable1BFSGraphCT times the shared-memory side.
func BenchmarkTable1BFSGraphCT(b *testing.B) { benchOneAlg(b, "bfs", false) }

// BenchmarkTable1TriangleCountingBSP times the BSP side of Table I row 3.
func BenchmarkTable1TriangleCountingBSP(b *testing.B) { benchOneAlg(b, "tc", true) }

// BenchmarkTable1TriangleCountingGraphCT times the shared-memory side.
func BenchmarkTable1TriangleCountingGraphCT(b *testing.B) { benchOneAlg(b, "tc", false) }

func benchOneAlg(b *testing.B, alg string, bsp bool) {
	g, s := setup(b)
	model := machine.NewAnalytic(machine.DefaultConfig())
	_ = model
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(g, s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if shortName(row.Algorithm) != alg {
				continue
			}
			if bsp {
				sim = row.BSP
			} else {
				sim = row.GraphCT
			}
		}
	}
	b.ReportMetric(sim, "sim_sec")
}

// BenchmarkFig1 regenerates Figure 1: per-iteration connected-components
// times across the processor sweep.
func BenchmarkFig1(b *testing.B) {
	g, s := setup(b)
	var res *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig1(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BSPTotal, "bsp_sim_sec")
	b.ReportMetric(res.GraphCTTotal, "graphct_sim_sec")
}

// BenchmarkFig2 regenerates Figure 2: frontier vs messages per BFS level.
func BenchmarkFig2(b *testing.B) {
	g, s := setup(b)
	var res *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig2(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var msgs, frontier int64
	for _, m := range res.Messages {
		msgs += m
	}
	for _, f := range res.Frontier {
		frontier += f
	}
	b.ReportMetric(float64(msgs)/float64(frontier), "msg_excess")
}

// BenchmarkFig3 regenerates Figure 3: per-level BFS scalability.
func BenchmarkFig3(b *testing.B) {
	g, s := setup(b)
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig3(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BSPTotal, "bsp_sim_sec")
	b.ReportMetric(res.GraphCTTotal, "graphct_sim_sec")
}

// BenchmarkFig4 regenerates Figure 4: triangle-counting scalability.
func BenchmarkFig4(b *testing.B) {
	g, s := setup(b)
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig4(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(res.Procs) - 1
	b.ReportMetric(res.BSP[last], "bsp_sim_sec")
	b.ReportMetric(res.GraphCT[last], "graphct_sim_sec")
	b.ReportMetric(res.BSP[0]/res.BSP[last], "bsp_speedup")
}

// BenchmarkAuxCounts regenerates the auxiliary counts quoted in the text
// (iteration gap, candidate-message and write blowups, BFS message excess).
func BenchmarkAuxCounts(b *testing.B) {
	g, s := setup(b)
	var res *experiments.AuxResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Aux(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WriteRatio, "write_ratio")
	b.ReportMetric(res.MessageExcess, "bfs_msg_excess")
	b.ReportMetric(float64(res.BSPCCSupersteps)/float64(res.GraphCTCCIterations), "iter_gap")
}

// BenchmarkAblationActivation compares the paper's full-vertex-scan BSP
// runtime against a sparse-activation worklist runtime on BFS.
func BenchmarkAblationActivation(b *testing.B) {
	g, s := setup(b)
	var res *experiments.ActivationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationActivation(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FullScanTotal/res.SparseTotal, "scan_overhead_x")
}

// BenchmarkAblationHotspot sweeps the fetch-and-add allocation chunk size
// (the paper's named scalability hazard).
func BenchmarkAblationHotspot(b *testing.B) {
	g, s := setup(b)
	var res *experiments.HotspotResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationHotspot(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup[0], "speedup_chunk1")
	b.ReportMetric(res.Speedup[len(res.Speedup)-1], "speedup_chunk256")
}

// BenchmarkAblationCombiner toggles the Pregel min-combiner on connected
// components.
func BenchmarkAblationCombiner(b *testing.B) {
	g, s := setup(b)
	var res *experiments.CombinerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationCombiner(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DeliveredPlain)/float64(res.DeliveredCombined), "msg_reduction_x")
}

// BenchmarkExtensionsTable regenerates the extensions table (Table I
// methodology on k-core, label propagation, betweenness, SSSP).
func BenchmarkExtensionsTable(b *testing.B) {
	g, s := setup(b)
	var res *experiments.ExtensionsResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Extensions(g, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Algorithm == "k-core decomposition" {
			b.ReportMetric(row.Ratio, "ratio_kcore")
		}
	}
}

// BenchmarkGraph500 regenerates the Graph500-style TEPS comparison.
func BenchmarkGraph500(b *testing.B) {
	g, s := setup(b)
	var shared, bsp *graph500.Result
	for i := 0; i < b.N; i++ {
		var err error
		shared, err = graph500.RunOnGraph(g, graph500.Config{
			Scale: benchScale, SearchKeys: 8, Seed: s.Seed, Procs: s.Procs})
		if err != nil {
			b.Fatal(err)
		}
		bsp, err = graph500.RunOnGraph(g, graph500.Config{
			Scale: benchScale, SearchKeys: 8, Seed: s.Seed, Procs: s.Procs, BSP: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shared.HarmonicMeanTEPS, "graphct_teps")
	b.ReportMetric(bsp.HarmonicMeanTEPS, "bsp_teps")
}
