module graphxmt

go 1.22
