// Command benchgate compares two sets of Go benchmark results and fails
// when any benchmark's median ns/op regressed beyond a threshold. It is the
// CI regression gate for the engine benchmarks: the committed BENCH_core.json
// baseline (or a fresh merge-base run on the same machine) is -old, the PR
// head's run is -new.
//
// Both inputs may be plain `go test -bench` text or the `go test -json`
// event stream (sniffed per file). Run benchmarks with -count=5 or more so
// the median has something to chew on; medians make the gate robust to a
// single noisy run, which mean-based gates are not.
//
//	go test -run '^$' -bench Engine -count 5 -json ./internal/core/ > new.json
//	benchgate -old BENCH_core.json -new new.json -threshold 10
//
// Exit status: 0 when no benchmark regressed past the threshold, 1 on
// regression or malformed input. Benchmarks present in only one input are
// reported but never fail the gate (new benchmarks must not break CI).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	oldPath := flag.String("old", "", "baseline benchmark results (bench text or go test -json)")
	newPath := flag.String("new", "", "candidate benchmark results (bench text or go test -json)")
	threshold := flag.Float64("threshold", 10, "maximum allowed median regression, percent")
	filter := flag.String("filter", "", "only gate benchmarks whose name matches this regexp")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -old <file> -new <file> [-threshold pct] [-filter re]")
		os.Exit(2)
	}
	if err := gate(os.Stdout, *oldPath, *newPath, *threshold, *filter); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func gate(w io.Writer, oldPath, newPath string, thresholdPct float64, filter string) error {
	var re *regexp.Regexp
	if filter != "" {
		var err error
		if re, err = regexp.Compile(filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}
	oldRes, err := parseFile(oldPath)
	if err != nil {
		return err
	}
	newRes, err := parseFile(newPath)
	if err != nil {
		return err
	}
	rows, regressed := compare(oldRes, newRes, thresholdPct, re)
	printRows(w, rows, thresholdPct)
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %s",
			len(regressed), thresholdPct, strings.Join(regressed, ", "))
	}
	return nil
}

// benchLine matches a benchmark result line:
//
//	BenchmarkEngineDenseFlood-8   100   123456 ns/op   64 B/op   2 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so results from machines with
// different core counts still pair up.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// benchResult matches a bare metrics fragment ("3  158265083 ns/op ...").
// go test -json splits each benchmark line across events: the name lands in
// the event's Test field and the metrics arrive as their own Output fragment.
var benchResult = regexp.MustCompile(`^\d+\s+([0-9.]+) ns/op`)

// parseFile reads either plain bench text or a `go test -json` event stream
// and returns ns/op samples keyed by benchmark name. Repeated runs of the
// same benchmark (-count=N) accumulate as separate samples.
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return res, nil
}

func parse(r io.Reader) (map[string][]float64, error) {
	res := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			// go test -json: benchmark results arrive as Output events,
			// one line fragment per event.
			var ev struct {
				Action string `json:"Action"`
				Test   string `json:"Test"`
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("bad test2json line: %w", err)
			}
			if ev.Action != "output" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
			if ev.Test != "" {
				// Name-in-Test-field form: the Output fragment holds only the
				// metrics. Sub-benchmark paths stay in the name, matching the
				// text form after its -N suffix strip.
				if m := benchResult.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
					if ns, err := strconv.ParseFloat(m[1], 64); err == nil {
						res[ev.Test] = append(res[ev.Test], ns)
					}
					continue
				}
			}
		}
		addSample(res, strings.TrimSpace(line))
	}
	return res, sc.Err()
}

func addSample(res map[string][]float64, line string) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return
	}
	ns, err := strconv.ParseFloat(m[2], 64)
	if err != nil {
		return
	}
	res[m[1]] = append(res[m[1]], ns)
}

func median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

type row struct {
	name     string
	oldNs    float64 // median; 0 means absent on that side
	newNs    float64
	deltaPct float64
	verdict  string
}

// compare pairs benchmarks by name and flags any whose candidate median
// exceeds the baseline median by more than thresholdPct percent. Unpaired
// benchmarks get an informational row only.
func compare(oldRes, newRes map[string][]float64, thresholdPct float64, filter *regexp.Regexp) ([]row, []string) {
	names := make(map[string]bool, len(oldRes)+len(newRes))
	for n := range oldRes {
		names[n] = true
	}
	for n := range newRes {
		names[n] = true
	}
	var rows []row
	var regressed []string
	for name := range names {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		r := row{name: name}
		o, haveOld := oldRes[name]
		n, haveNew := newRes[name]
		switch {
		case !haveOld:
			r.newNs, r.verdict = median(n), "new"
		case !haveNew:
			r.oldNs, r.verdict = median(o), "removed"
		default:
			r.oldNs, r.newNs = median(o), median(n)
			r.deltaPct = (r.newNs/r.oldNs - 1) * 100
			r.verdict = "ok"
			if r.deltaPct > thresholdPct {
				r.verdict = "REGRESSED"
				regressed = append(regressed, name)
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	sort.Strings(regressed)
	return rows, regressed
}

func printRows(w io.Writer, rows []row, thresholdPct float64) {
	fmt.Fprintf(w, "%-50s %14s %14s %8s  %s\n", "benchmark", "old median", "new median", "delta", "gate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-50s %14s %14s %8s  %s\n",
			r.name, fmtNs(r.oldNs), fmtNs(r.newNs), fmtDelta(r), r.verdict)
	}
	fmt.Fprintf(w, "threshold: +%.0f%% on median ns/op\n", thresholdPct)
}

func fmtNs(ns float64) string {
	switch {
	case ns == 0:
		return "-"
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}

func fmtDelta(r row) string {
	if r.oldNs == 0 || r.newNs == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", r.deltaPct)
}
