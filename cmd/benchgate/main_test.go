package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: graphxmt/internal/core
BenchmarkEngineDenseFlood-8   	      10	 100000000 ns/op	  64 B/op	       2 allocs/op
BenchmarkEngineDenseFlood-8   	      10	 120000000 ns/op	  64 B/op	       2 allocs/op
BenchmarkEngineDenseFlood-8   	      10	 110000000 ns/op	  64 B/op	       2 allocs/op
BenchmarkEngineSparseRelay-8  	     100	   5000000 ns/op
PASS
`

// The same results as test2json would stream them, including a non-output
// event and a result split across pkg lines.
const benchJSON = `{"Action":"start","Package":"graphxmt/internal/core"}
{"Action":"output","Package":"graphxmt/internal/core","Output":"BenchmarkEngineDenseFlood-8   \t      10\t 100000000 ns/op\n"}
{"Action":"output","Package":"graphxmt/internal/core","Output":"BenchmarkEngineDenseFlood-8   \t      10\t 120000000 ns/op\n"}
{"Action":"output","Package":"graphxmt/internal/core","Output":"BenchmarkEngineDenseFlood-8   \t      10\t 110000000 ns/op\n"}
{"Action":"output","Package":"graphxmt/internal/core","Output":"BenchmarkEngineSparseRelay-8  \t     100\t   5000000 ns/op\n"}
{"Action":"pass","Package":"graphxmt/internal/core"}
`

func TestParseTextAndJSON(t *testing.T) {
	for name, input := range map[string]string{"text": benchText, "json": benchJSON} {
		t.Run(name, func(t *testing.T) {
			res, err := parse(strings.NewReader(input))
			if err != nil {
				t.Fatal(err)
			}
			// GOMAXPROCS suffix stripped, three samples accumulated.
			if got := res["BenchmarkEngineDenseFlood"]; len(got) != 3 {
				t.Fatalf("DenseFlood samples = %v, want 3", got)
			}
			if got := res["BenchmarkEngineSparseRelay"]; len(got) != 1 || got[0] != 5e6 {
				t.Fatalf("SparseRelay samples = %v", got)
			}
		})
	}
}

// test2json also emits benchmarks with the name in the event's Test field
// and the metrics as a bare Output fragment (current `go test -json` form).
const benchJSONSplit = `{"Action":"start","Package":"graphxmt/internal/core"}
{"Action":"run","Package":"graphxmt/internal/core","Test":"BenchmarkEngineDenseFlood"}
{"Action":"output","Package":"graphxmt/internal/core","Test":"BenchmarkEngineDenseFlood","Output":"BenchmarkEngineDenseFlood\n"}
{"Action":"output","Package":"graphxmt/internal/core","Test":"BenchmarkEngineDenseFlood","Output":"       3\t 158265083 ns/op\t55966637 B/op\t     356 allocs/op\n"}
{"Action":"output","Package":"graphxmt/internal/core","Test":"BenchmarkEngineSkewStarFlood/sched=degree","Output":"       3\t  22535905 ns/op\n"}
{"Action":"pass","Package":"graphxmt/internal/core"}
`

func TestParseJSONSplitEvents(t *testing.T) {
	res, err := parse(strings.NewReader(benchJSONSplit))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkEngineDenseFlood"]; len(got) != 1 || got[0] != 158265083 {
		t.Fatalf("DenseFlood samples = %v", got)
	}
	if got := res["BenchmarkEngineSkewStarFlood/sched=degree"]; len(got) != 1 || got[0] != 22535905 {
		t.Fatalf("sub-benchmark samples = %v", got)
	}
}

func TestParseSubBenchmarkNames(t *testing.T) {
	res, err := parse(strings.NewReader(
		"BenchmarkEngineSkewTC/sched=degree-8 \t 1\t 42 ns/op\n" +
			"BenchmarkEngineSkewTC/sched=fixed \t 1\t 43 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BenchmarkEngineSkewTC/sched=degree", "BenchmarkEngineSkewTC/sched=fixed"} {
		if len(res[want]) != 1 {
			t.Fatalf("missing %q in %v", want, res)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	// median must not reorder the caller's slice
	s := []float64{9, 1, 5}
	median(s)
	if s[0] != 9 {
		t.Fatal("median mutated its input")
	}
}

func TestCompareGatesOnMedian(t *testing.T) {
	oldRes := map[string][]float64{
		"A": {100, 100, 100},
		"B": {100, 100, 100},
		"C": {100},
	}
	newRes := map[string][]float64{
		"A": {109, 109, 109},  // +9%: within a 10% gate
		"B": {115, 115, 1000}, // median 115: +15% regression despite the outlier sample
		"D": {50},             // new benchmark: reported, never fails
	}
	rows, regressed := compare(oldRes, newRes, 10, nil)
	if len(regressed) != 1 || regressed[0] != "B" {
		t.Fatalf("regressed = %v, want [B]", regressed)
	}
	verdicts := map[string]string{}
	for _, r := range rows {
		verdicts[r.name] = r.verdict
	}
	want := map[string]string{"A": "ok", "B": "REGRESSED", "C": "removed", "D": "new"}
	for name, v := range want {
		if verdicts[name] != v {
			t.Fatalf("verdict[%s] = %q, want %q (all: %v)", name, verdicts[name], v, verdicts)
		}
	}
}

func TestCompareFilter(t *testing.T) {
	oldRes := map[string][]float64{"BenchmarkEngineX": {100}, "BenchmarkOther": {100}}
	newRes := map[string][]float64{"BenchmarkEngineX": {100}, "BenchmarkOther": {500}}
	_, regressed := compare(oldRes, newRes, 10, regexp.MustCompile("Engine"))
	if len(regressed) != 0 {
		t.Fatalf("filtered compare regressed = %v, want none", regressed)
	}
}

func TestGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldF := filepath.Join(dir, "old.txt")
	newF := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldF, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newF, []byte(benchJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := gate(&out, oldF, newF, 10, ""); err != nil {
		t.Fatalf("identical results must pass the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkEngineDenseFlood") {
		t.Fatalf("report missing benchmark row:\n%s", out.String())
	}

	// A 10x regression must fail and name the benchmark.
	slow := strings.ReplaceAll(benchText, "5000000 ns/op", "50000000 ns/op")
	slowF := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowF, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	err := gate(&out, oldF, slowF, 10, "")
	if err == nil || !strings.Contains(err.Error(), "BenchmarkEngineSparseRelay") {
		t.Fatalf("gate error = %v, want SparseRelay regression", err)
	}
}

func TestGateRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := gate(&out, empty, empty, 10, ""); err == nil {
		t.Fatal("gate accepted input with no benchmark results")
	}
}
