// Command profile re-evaluates a saved work profile (bspgraph/graphct
// -profile output) under arbitrary machine configurations, without
// re-running the kernel that produced it. Profiles — not timings — are
// graphxmt's portable measurement artifact: one kernel execution yields
// every scaling curve and every what-if.
//
// Usage:
//
//	profile -in bfs.profile.json                      # default machine, proc sweep
//	profile -in bfs.profile.json -latency 1200        # slower memory
//	profile -in bfs.profile.json -streams 32 -procs 64
//	profile -in bfs.profile.json -model des           # discrete-event model
//	profile -in bfs.profile.json -phases              # per-phase breakdown + regimes
//
// The shared obs flags (-workers, -obs-format/-obs-out, -pprof) are
// accepted; -pprof is the useful one here (CPU-profile a large sweep).
package main

import (
	"flag"
	"fmt"
	"os"

	"graphxmt/internal/machine"
	"graphxmt/internal/obs"
	"graphxmt/internal/trace"
)

func main() {
	in := flag.String("in", "", "profile JSON path (required)")
	procs := flag.Int("procs", 128, "processor count for the headline number")
	latency := flag.Int("latency", 0, "override memory latency in cycles (0 = default)")
	streams := flag.Int("streams", 0, "override streams per processor (0 = default)")
	hotspot := flag.Int("hotspot", 0, "override hotspot cycles per fetch-and-add (0 = default)")
	modelName := flag.String("model", "analytic", "machine model: analytic or des")
	phases := flag.Bool("phases", false, "print per-phase times and regime diagnosis")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "profile: -in is required")
		os.Exit(2)
	}
	// Machine overrides are cycle counts: negative values describe no
	// machine and silently behaving like "default" would hide typos.
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "profile: "+format+"\n", args...)
		os.Exit(2)
	}
	if *latency < 0 {
		usage("-latency must be >= 0 cycles (0 = default), got %d", *latency)
	}
	if *streams < 0 {
		usage("-streams must be >= 0 (0 = default), got %d", *streams)
	}
	if *hotspot < 0 {
		usage("-hotspot must be >= 0 cycles (0 = default), got %d", *hotspot)
	}
	if *procs <= 0 {
		usage("-procs must be > 0, got %d", *procs)
	}
	// profile evaluates recorded work, so the obs sinks see no kernel runs
	// here — the flags matter for -workers and -pprof (CPU-profile the
	// machine-model evaluation itself on large sweeps).
	sess, err := obsFlags.Start()
	if err != nil {
		usage("%v", err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	rec, err := trace.ReadJSON(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	ph := rec.Phases()
	fmt.Printf("profile: %d phases from %s\n", len(ph), *in)

	cfg := machine.DefaultConfig()
	if *latency > 0 {
		cfg.MemLatency = *latency
	}
	if *streams > 0 {
		cfg.StreamsPerProc = *streams
	}
	if *hotspot > 0 {
		cfg.HotspotCycles = *hotspot
	}
	cfg.Procs = *procs

	var model machine.Model
	switch *modelName {
	case "analytic":
		model = machine.NewAnalytic(cfg)
	case "des":
		model = machine.NewDES(cfg)
	default:
		fmt.Fprintf(os.Stderr, "profile: unknown model %q\n", *modelName)
		os.Exit(2)
	}

	fmt.Printf("machine: L=%d cycles, S=%d streams/proc, hotspot=%d cycles, %s model\n",
		cfg.MemLatency, cfg.StreamsPerProc, cfg.HotspotCycles, *modelName)
	fmt.Println("\nprocessor sweep:")
	for _, p := range machine.ProcSweep(*procs) {
		fmt.Printf("  %4d procs: %.6fs\n", p, machine.Seconds(model, ph, p))
	}
	fmt.Printf("headline: %.6fs at %d procs\n", machine.Seconds(model, ph, *procs), *procs)

	if *phases {
		analytic := machine.NewAnalytic(cfg)
		fmt.Println("\nper-phase breakdown:")
		for _, p := range ph {
			regime, share := analytic.Diagnose(p, *procs)
			fmt.Printf("  %-18s[%2d] %10.6fs  %-14s (%.0f%%)\n",
				p.Name, p.Index,
				cfg.Seconds(model.PhaseCycles(p, *procs)), regime, 100*share)
		}
	}
	if err := sess.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
