// Command graphct runs the shared-memory graph kernels (the paper's
// baseline) as a workflow over a stored graph, in the spirit of GraphCT's
// function-call workflows: load once, run a comma-separated list of
// kernels, print results and simulated Cray XMT times.
//
// Usage:
//
//	graphct -g graph.gxmt -kernels degrees,cc,sv,bfs,tc,ccoef,kcore,pagerank,bc,stcon,lp,diameter \
//	        [-src -1] [-dst 0] [-procs 128] [-samples 16] [-workers N]
//	        [-obs-format report|jsonl|chrome] [-obs-out trace.json] [-pprof addr|file]
//
// Graphs with a .dimacs/.txt extension are parsed as DIMACS text;
// everything else as the binary snapshot format. The -obs-* flags export
// host runtime observability for each kernel's top-level phases (see
// docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
	"graphxmt/internal/graphio"
	"graphxmt/internal/machine"
	"graphxmt/internal/obs"
	"graphxmt/internal/trace"
)

func main() {
	path := flag.String("g", "", "graph file (required)")
	kernels := flag.String("kernels", "degrees,cc", "comma-separated kernels: degrees, cc, sv, bfs, tc, ccoef, kcore, pagerank, bc, stcon, lp, diameter")
	src := flag.Int64("src", -1, "bfs/stcon source (-1 = max-degree vertex)")
	dst := flag.Int64("dst", 0, "stcon target")
	procs := flag.Int("procs", 128, "simulated processors")
	samples := flag.Int("samples", 16, "betweenness sample count (0 = exact)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *path == "" {
		usage("-g is required")
	}
	if *procs <= 0 {
		usage("-procs must be > 0, got %d", *procs)
	}
	if *samples < 0 {
		usage("-samples must be >= 0 (0 = exact), got %d", *samples)
	}
	if *src < -1 {
		usage("-src must be a vertex ID or -1 for max-degree, got %d", *src)
	}
	if *dst < 0 {
		usage("-dst must be a vertex ID, got %d", *dst)
	}
	sess, err := obsFlags.Start()
	if err != nil {
		usage("%v", err)
	}
	g, err := graphio.LoadFile(*path)
	if err != nil {
		fatal(err)
	}
	fmt.Println("loaded", g)

	model := machine.NewAnalytic(machine.DefaultConfig())
	source := *src
	if source < 0 {
		source = maxDegreeVertex(g)
	}
	if source >= g.NumVertices() || *dst >= g.NumVertices() {
		usage("-src/-dst out of range [0,%d)", g.NumVertices())
	}

	for _, k := range strings.Split(*kernels, ",") {
		rec := trace.NewRecorder()
		sess.Attach(rec, g.NumVertices(), g.NumEdges())
		switch strings.TrimSpace(k) {
		case "degrees":
			s := graphct.Degrees(g, rec)
			fmt.Printf("[degrees] min=%d max=%d mean=%.2f median=%d p99=%d isolated=%d gini=%.3f assortativity=%.3f\n",
				s.Min, s.Max, s.Mean, s.Median, s.P99, s.Isolated, s.GiniIndex,
				graphct.Assortativity(g, rec))
		case "cc":
			res := graphct.ConnectedComponents(g, rec)
			sizes, largest := graphct.ComponentSizes(res.Labels)
			fmt.Printf("[cc] %d components, largest %d vertices, %d iterations\n",
				len(sizes), largest, res.Iterations)
		case "bfs":
			res := graphct.BFS(g, source, rec)
			reached := int64(0)
			for _, f := range res.FrontierSizes {
				reached += f
			}
			fmt.Printf("[bfs] source=%d levels=%d reached=%d frontiers=%v\n",
				source, res.Levels, reached, res.FrontierSizes)
		case "tc":
			res := graphct.Triangles(g, rec)
			fmt.Printf("[tc] triangles=%d writes=%d merge-steps=%d\n",
				res.Count, res.Writes, res.CompareOps)
		case "ccoef":
			res := graphct.ClusteringCoefficients(g, rec)
			fmt.Printf("[ccoef] triangles=%d global=%.4f\n", res.Triangles, res.Global)
		case "kcore":
			res := graphct.KCore(g, rec)
			fmt.Printf("[kcore] degeneracy=%d rounds=%d\n", res.MaxCore, res.Rounds)
		case "pagerank":
			res := graphct.PageRank(g, graphct.PageRankOptions{}, rec)
			fmt.Printf("[pagerank] iterations=%d converged=%v top=%v\n",
				res.Iterations, res.Converged, topK(res.Rank, 5))
		case "bc":
			res := graphct.Betweenness(g, graphct.BetweennessOptions{Samples: *samples, Seed: 7}, rec)
			fmt.Printf("[bc] sources=%d top=%v\n", len(res.Sources), topK(res.Score, 5))
		case "stcon":
			ok, d := graphct.STConnectivity(g, source, *dst, rec)
			fmt.Printf("[stcon] %d->%d connected=%v distance=%d\n", source, *dst, ok, d)
		case "sv":
			res := graphct.ConnectedComponentsSV(g, rec)
			sizes, largest := graphct.ComponentSizes(res.Labels)
			fmt.Printf("[sv] %d components, largest %d, %d rounds (%d hooks, %d jumps)\n",
				len(sizes), largest, res.Iterations, res.Hooks, res.Jumps)
		case "lp":
			res := graphct.LabelPropagation(g, graphct.CommunityOptions{}, rec)
			fmt.Printf("[lp] %d communities in %d iterations (converged=%v), modularity %.4f\n",
				res.Communities, res.Iterations, res.Converged, graphct.Modularity(g, res.Labels))
		case "diameter":
			d := graphct.ApproxDiameter(g, source, 4, rec)
			fmt.Printf("[diameter] >= %d (double-sweep estimate from %d)\n", d, source)
		default:
			usage("unknown kernel %q", k)
		}
		fmt.Printf("        simulated time on %d procs: %.4fs\n",
			*procs, machine.Seconds(model, rec.Phases(), *procs))
	}
	if err := sess.Close(); err != nil {
		fatal(err)
	}
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphct: "+format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphct:", err)
	os.Exit(1)
}

func maxDegreeVertex(g *graph.Graph) int64 {
	var best, src int64 = -1, 0
	for v := int64(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > best {
			best, src = d, v
		}
	}
	return src
}

// topK returns the indices of the k largest scores, formatted.
func topK(scores []float64, k int) []string {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = fmt.Sprintf("%d:%.4g", idx[i], scores[idx[i]])
	}
	return out
}
