// Command xmtbench regenerates the paper's evaluation: Table I and Figures
// 1-4 from "Investigating Graph Algorithms in the BSP Model on the Cray
// XMT" (Ediger & Bader, IPDPSW 2013), plus the auxiliary counts the text
// quotes. It generates the RMAT workload, runs each algorithm in both
// programming models, and evaluates the recorded work profiles under the
// simulated Cray XMT machine model.
//
// Usage:
//
//	xmtbench [-exp all|table1|fig1|fig2|fig3|fig4|aux|msbfs|ablation]
//	         [-scale 16] [-ef 16] [-seed 1] [-procs 128] [-model analytic|des]
//	         [-sources 5,17,99]
//	         [-direction auto|push|pull] [-graph-rep flat|compressed]
//	         [-retries N] [-step-timeout 0] [-run-timeout 0]
//	         [-workers N] [-obs-format report|jsonl|chrome] [-obs-out out] [-pprof addr|file]
//	         [-http host:port] [-http-linger 0s]
//
// -retries, -step-timeout and -run-timeout arm the engine's run
// supervisor on every BSP pass an experiment performs (multi-run
// experiments thread them through each pass); see docs/ROBUSTNESS.md.
//
// The paper's graph is scale 24 / edge factor 16; the default scale 16
// keeps the triangle-counting experiment laptop-sized (see EXPERIMENTS.md
// for the downscaling rationale and recorded results).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphxmt/internal/batch"
	"graphxmt/internal/core"
	"graphxmt/internal/experiments"
	"graphxmt/internal/graph"
	"graphxmt/internal/graph500"
	"graphxmt/internal/machine"
	"graphxmt/internal/obs"
	"graphxmt/internal/obs/live"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig1, fig2, fig3, fig4, aux, extensions, graph500, regimes, msbfs, ablation")
	scale := flag.Int("scale", 16, "RMAT scale (log2 vertices); the paper uses 24")
	ef := flag.Int("ef", 16, "RMAT edge factor; the paper uses 16")
	seed := flag.Uint64("seed", 1, "workload seed")
	procs := flag.Int("procs", 128, "simulated machine size in processors")
	model := flag.String("model", "analytic", "machine model: analytic or des")
	direction := flag.String("direction", "auto", "superstep direction for BSP runs: auto, push or pull")
	graphRep := flag.String("graph-rep", "", "adjacency representation for the workload: flat or compressed (default: flat)")
	retries := flag.Int("retries", 0, "re-execute a faulting superstep up to N times in every BSP pass (0 = off)")
	stepTimeout := flag.Duration("step-timeout", 0, "per-superstep watchdog deadline for every BSP pass (0 = off)")
	runTimeout := flag.Duration("run-timeout", 0, "per-pass engine run deadline (0 = off)")
	sources := flag.String("sources", "", "comma-separated source vertices for the msbfs experiment (default: 64 stride-spread sources)")
	csvDir := flag.String("csv", "", "also write figure series as CSV files into this directory")
	obsFlags := obs.AddFlags(flag.CommandLine)
	liveFlags := live.AddFlags(flag.CommandLine)
	flag.Parse()

	if *scale <= 0 || *scale > 40 {
		usage("-scale must be in (0,40], got %d", *scale)
	}
	if *ef <= 0 {
		usage("-ef must be > 0, got %d", *ef)
	}
	if *procs <= 0 {
		usage("-procs must be > 0, got %d", *procs)
	}
	dir, ok := core.ParseDirection(strings.TrimSpace(*direction))
	if !ok {
		usage("-direction must be auto, push or pull, got %q", *direction)
	}
	var rep graph.Rep
	if s := strings.TrimSpace(*graphRep); s != "" {
		if rep, ok = graph.ParseRep(s); !ok {
			usage("-graph-rep must be flat or compressed, got %q", *graphRep)
		}
	}
	// Defaults of 0 mean off; an explicit zero or negative value is rejected
	// rather than silently disabling the supervision the user asked for.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "retries":
			if *retries <= 0 {
				usage("-retries must be > 0, got %d", *retries)
			}
		case "step-timeout":
			if *stepTimeout <= 0 {
				usage("-step-timeout must be > 0, got %v", *stepTimeout)
			}
		case "run-timeout":
			if *runTimeout <= 0 {
				usage("-run-timeout must be > 0, got %v", *runTimeout)
			}
		case "sources":
			if strings.TrimSpace(*sources) == "" {
				usage("-sources must list at least one vertex")
			}
		}
	})
	sess, err := obsFlags.Start()
	if err != nil {
		usage("%v", err)
	}
	liveSrv, err := liveFlags.Start()
	if err != nil {
		usage("%v", err)
	}
	if liveSrv != nil {
		sess.AddSink(liveSrv.Sink())
	}
	// Experiments build their recorders internally, so observers are
	// attached via the process-wide recorder factory.
	sess.InstallFactory()

	setup := experiments.Setup{
		Scale:       *scale,
		EdgeFactor:  *ef,
		Seed:        *seed,
		Procs:       *procs,
		Direction:   dir,
		Retries:     *retries,
		StepTimeout: *stepTimeout,
		RunTimeout:  *runTimeout,
	}
	cfg := machine.DefaultConfig()
	cfg.Procs = *procs
	switch *model {
	case "analytic":
		setup.Model = machine.NewAnalytic(cfg)
	case "des":
		setup.Model = machine.NewDES(cfg)
	default:
		usage("unknown model %q", *model)
	}

	fmt.Printf("graphxmt bench: RMAT scale=%d ef=%d seed=%d, %d simulated processors, %s model\n",
		*scale, *ef, *seed, *procs, *model)
	start := time.Now()
	g, err := experiments.BuildGraph(setup)
	if err != nil {
		fatal(err)
	}
	if rep != "" && g.Rep() != rep {
		if g, err = graph.WithRep(g, rep); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("workload: %v (%s adjacency, generated in %v)\n\n", g, g.Rep(), time.Since(start).Round(time.Millisecond))

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if want("table1") {
		ran = true
		res, err := experiments.Table1(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderTable1(os.Stdout, res)
		fmt.Println()
	}
	if want("fig1") {
		ran = true
		res, err := experiments.Fig1(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderFig1(os.Stdout, res)
		writeCSV(*csvDir, "fig1.csv", res.WriteFig1CSV)
		fmt.Println()
	}
	if want("fig2") {
		ran = true
		res, err := experiments.Fig2(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderFig2(os.Stdout, res)
		writeCSV(*csvDir, "fig2.csv", res.WriteFig2CSV)
		fmt.Println()
	}
	if want("fig3") {
		ran = true
		res, err := experiments.Fig3(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderFig3(os.Stdout, res)
		writeCSV(*csvDir, "fig3.csv", res.WriteFig3CSV)
		fmt.Println()
	}
	if want("fig4") {
		ran = true
		res, err := experiments.Fig4(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderFig4(os.Stdout, res)
		writeCSV(*csvDir, "fig4.csv", res.WriteFig4CSV)
		fmt.Println()
	}
	if want("aux") {
		ran = true
		res, err := experiments.Aux(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAux(os.Stdout, res)
		fmt.Println()
	}
	if want("extensions") {
		ran = true
		res, err := experiments.Extensions(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderExtensions(os.Stdout, res, *procs)
		fmt.Println()
	}
	if want("graph500") {
		ran = true
		for _, bsp := range []bool{false, true} {
			res, err := graph500.RunOnGraph(g, graph500.Config{
				Scale: *scale, SearchKeys: 16, Seed: *seed, Procs: *procs,
				Model: setup.Model, BSP: bsp,
			})
			if err != nil {
				fatal(err)
			}
			name := "GraphCT"
			if bsp {
				name = "BSP"
			}
			fmt.Printf("GRAPH500-style (%s): %d/%d searches validated; TEPS min %.3g / median %.3g / harmonic %.3g / max %.3g\n",
				name, res.Validated, len(res.Keys), res.MinTEPS, res.MedianTEPS, res.HarmonicMeanTEPS, res.MaxTEPS)
		}
		fmt.Println()
	}
	if want("msbfs") {
		ran = true
		// Source-list validation is shared with bspgraph (internal/batch),
		// so both CLIs reject malformed or out-of-range lists identically.
		var srcs []int64
		if *sources != "" {
			if srcs, err = batch.ParseSources(*sources, g.NumVertices()); err != nil {
				usage("%v", err)
			}
		}
		res, err := experiments.MSBFS(g, setup, srcs)
		if err != nil {
			fatal(err)
		}
		experiments.RenderMSBFS(os.Stdout, res, *procs)
		fmt.Println()
	}
	if want("regimes") {
		ran = true
		res, err := experiments.Regimes(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderRegimes(os.Stdout, res)
		fmt.Println()
	}
	if want("ablation") {
		ran = true
		act, err := experiments.AblationActivation(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderActivation(os.Stdout, act)
		fmt.Println()
		hot, err := experiments.AblationHotspot(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderHotspot(os.Stdout, hot, *procs)
		fmt.Println()
		comb, err := experiments.AblationCombiner(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderCombiner(os.Stdout, comb, *procs)
		fmt.Println()
		sens, err := experiments.SensitivityMachine(g, setup)
		if err != nil {
			fatal(err)
		}
		experiments.RenderSensitivity(os.Stdout, sens, *procs)
		fmt.Println()
	}
	if !ran {
		usage("unknown experiment %q", *exp)
	}
	if err := sess.Close(); err != nil {
		fatal(err)
	}
	if err := liveFlags.Close(liveSrv); err != nil {
		fatal(err)
	}
	fmt.Printf("done in %v (host time; reported numbers are simulated XMT seconds)\n",
		time.Since(start).Round(time.Millisecond))
}

// writeCSV writes one figure's CSV into dir when -csv is set.
func writeCSV(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xmtbench: "+format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtbench:", err)
	os.Exit(1)
}
