// Command bspgraph runs the vertex-centric BSP algorithms (the paper's
// contribution) over a stored graph, printing results, per-superstep
// statistics, and simulated Cray XMT times.
//
// Usage:
//
//	bspgraph -g graph.gxmt -alg cc|bfs|reach|sssp|tc|tc-streaming|pagerank|kcore|lp|bc|mis|diameter
//	         [-src -1] [-sources 5,17,99] [-batch] [-procs 128] [-rounds 30] [-workers N]
//	         [-chunking degree|fixed] [-direction auto|push|pull]
//	         [-graph-rep flat|compressed]
//	         [-checkpoint-dir dir] [-ckpt-every 1] [-ckpt-keep 0] [-resume ckpt|auto]
//	         [-retries N] [-step-timeout 0] [-run-timeout 0]
//	         [-obs-format report|jsonl|chrome] [-obs-out trace.json] [-pprof addr|file]
//	         [-http host:port] [-http-linger 0s]
//
// -sources runs multi-source BFS over a comma-separated vertex list:
// with -batch (and always for -alg reach) the queries share one MS-BFS
// engine pass — up to 64 unique sources, one bit lane each, checkpointable
// like any single run — while without it each source runs as its own
// sequential pass (no checkpointing for more than one source). Duplicate
// sources collapse onto one lane; out-of-range or malformed lists are
// usage errors. -alg reach answers batched reachability only (no levels).
//
// SSSP requires a weighted graph (graphgen does not emit one; build via
// the library or a weighted DIMACS file). The -obs-* flags export host
// runtime observability (see docs/OBSERVABILITY.md): per-superstep phase
// spans, worker utilization, and memory samples.
//
// The graph file's format is detected from its content: GXMTCSR1 (flat
// binary snapshot), GXMTCSR2 (compressed, loaded zero-copy via mmap),
// gzip-wrapped either, DIMACS text, or a plain edge list. -graph-rep
// forces the in-memory adjacency representation after loading; results
// are bit-identical either way (the representation trades decode time for
// memory bandwidth and residency — see docs/PERFORMANCE.md).
//
// -http serves the live introspection endpoint while the run executes:
// /metrics (Prometheus text exposition), /runs and /runs/current (JSON run
// state), and /debug/pprof. -http-linger keeps it up after the run so a
// scraper can read the final totals. Checkpointed and -http runs also carry
// a flight recorder (the last supersteps' spans and counters): a
// vertex-program panic dumps it next to the emergency checkpoint, and
// SIGQUIT dumps it on demand without stopping the run.
//
// With -checkpoint-dir the engine snapshots its state at superstep
// boundaries; on SIGINT/SIGTERM it finishes the current superstep, writes
// a final checkpoint, and exits with status 3. Pass the printed checkpoint
// to -resume to continue the same run bit-identically, or pass
// "-resume auto" (alias "latest") to resume from the newest *valid*
// checkpoint in -checkpoint-dir — damaged snapshots are skipped and
// reported (see docs/ROBUSTNESS.md). Multi-run algorithms (bc, diameter,
// tc-streaming) do not support checkpointing.
//
// Self-healing knobs: -retries N re-executes a faulting superstep from the
// last boundary snapshot up to N times (results stay bit-identical to a
// fault-free run); -step-timeout arms a per-superstep watchdog that dumps
// the flight recorder and an emergency checkpoint when a superstep stalls;
// -run-timeout bounds the whole run, finishing the superstep in flight and
// checkpointing before exiting. All three work on every algorithm,
// including the multi-run ones.
//
// Exit status: 0 on success, 1 on runtime errors (including retry
// exhaustion and watchdog stalls), 2 on usage errors, 3 when interrupted
// by a signal or the run deadline (after writing a checkpoint if enabled).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/bits"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphxmt/internal/batch"
	"graphxmt/internal/bspalg"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphio"
	"graphxmt/internal/machine"
	"graphxmt/internal/obs"
	"graphxmt/internal/obs/live"
	"graphxmt/internal/trace"
)

func main() {
	path := flag.String("g", "", "graph file (required)")
	alg := flag.String("alg", "cc", "algorithm: cc, bfs, reach, sssp, tc, tc-streaming, pagerank, kcore, lp, bc, mis, diameter")
	src := flag.Int64("src", -1, "bfs/sssp source (-1 = max-degree vertex)")
	sources := flag.String("sources", "", "comma-separated bfs/reach sources (batched with -batch, else sequential runs)")
	batchMode := flag.Bool("batch", false, "answer -sources in one MS-BFS engine pass (<= 64 unique sources)")
	procs := flag.Int("procs", 128, "simulated processors")
	rounds := flag.Int("rounds", 30, "pagerank/lp supersteps")
	profile := flag.String("profile", "", "write the recorded work profile as JSON to this path")
	ckptDir := flag.String("checkpoint-dir", "", "write superstep-boundary checkpoints into this directory")
	ckptEvery := flag.Int("ckpt-every", 1, "checkpoint every N superstep boundaries")
	ckptKeep := flag.Int("ckpt-keep", 0, "keep only the newest K periodic checkpoints (0 = all)")
	resume := flag.String("resume", "", "resume from this checkpoint file, or \"auto\"/\"latest\" for the newest valid checkpoint in -checkpoint-dir")
	retries := flag.Int("retries", 0, "re-execute a faulting superstep up to N times from the last boundary snapshot (0 = off)")
	stepTimeout := flag.Duration("step-timeout", 0, "per-superstep watchdog deadline, e.g. 30s (0 = off)")
	runTimeout := flag.Duration("run-timeout", 0, "whole-run deadline; finishes the superstep in flight and checkpoints (0 = off)")
	faultPlan := flag.String("fault-plan", "", "fault-injection plan, e.g. \"kill@2;panic@3:17\" (testing)")
	chunking := flag.String("chunking", "degree", "sweep chunk schedule: degree (edge-work weighted) or fixed (vertex count)")
	direction := flag.String("direction", "auto", "superstep direction: auto (adaptive push/pull), push (forced scatter), pull (pull every eligible superstep)")
	graphRep := flag.String("graph-rep", "", "force the adjacency representation: flat or compressed (default: as loaded)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	liveFlags := live.AddFlags(flag.CommandLine)
	flag.Parse()

	if *path == "" {
		usage("-g is required")
	}
	if *procs <= 0 {
		usage("-procs must be > 0, got %d", *procs)
	}
	if *rounds <= 0 {
		usage("-rounds must be > 0, got %d", *rounds)
	}
	if *src < -1 {
		usage("-src must be a vertex ID or -1 for max-degree, got %d", *src)
	}
	if *ckptEvery <= 0 {
		usage("-ckpt-every must be > 0, got %d", *ckptEvery)
	}
	if *ckptKeep < 0 {
		usage("-ckpt-keep must be >= 0, got %d", *ckptKeep)
	}
	// The supervision knobs default to 0 = disabled; an *explicit* zero or
	// negative value is a contradiction ("supervise this, never") and is
	// rejected rather than silently ignored.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "retries":
			if *retries <= 0 {
				usage("-retries must be > 0, got %d", *retries)
			}
		case "step-timeout":
			if *stepTimeout <= 0 {
				usage("-step-timeout must be > 0, got %v", *stepTimeout)
			}
		case "run-timeout":
			if *runTimeout <= 0 {
				usage("-run-timeout must be > 0, got %v", *runTimeout)
			}
		}
	})
	var sched core.ChunkSchedule
	switch strings.TrimSpace(*chunking) {
	case "degree":
		sched = core.ChunkDegree
	case "fixed":
		sched = core.ChunkFixed
	default:
		usage("-chunking must be degree or fixed, got %q", *chunking)
	}
	dir, ok := core.ParseDirection(strings.TrimSpace(*direction))
	if !ok {
		usage("-direction must be auto, push or pull, got %q", *direction)
	}
	var rep graph.Rep
	if s := strings.TrimSpace(*graphRep); s != "" {
		if rep, ok = graph.ParseRep(s); !ok {
			usage("-graph-rep must be flat or compressed, got %q", *graphRep)
		}
	}
	name := strings.TrimSpace(*alg)
	srcSet, sourcesSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "src":
			srcSet = true
		case "sources":
			sourcesSet = true
		}
	})
	// An explicitly empty list is rejected rather than silently falling
	// back to the single-source default the user opted out of.
	if sourcesSet && strings.TrimSpace(*sources) == "" {
		usage("-sources must list at least one vertex")
	}
	if *batchMode && *sources == "" {
		usage("-batch needs -sources")
	}
	if srcSet && *sources != "" {
		usage("-src and -sources are mutually exclusive")
	}
	if *sources != "" && name != "bfs" && name != "reach" {
		usage("-sources applies to bfs and reach, not %s", name)
	}
	if name == "reach" && *sources == "" {
		usage("reach needs -sources (batched reachability queries)")
	}
	resumeLatest := false
	switch strings.TrimSpace(*resume) {
	case "auto", "latest":
		resumeLatest = true
		*resume = ""
		if *ckptDir == "" {
			usage("-resume auto needs -checkpoint-dir to know where to look")
		}
	}
	checkpointed := *ckptDir != "" || *resume != ""
	switch name {
	case "bc", "diameter", "tc-streaming":
		if checkpointed || *faultPlan != "" {
			usage("%s runs multiple engine passes and does not support -checkpoint-dir/-resume/-fault-plan", name)
		}
	}

	plan, err := faultinject.ParsePlan(*faultPlan)
	if err != nil {
		usage("%v", err)
	}
	if (len(plan.KillAt) > 0 || len(plan.FailWriteAt) > 0 || len(plan.ENOSPCAt) > 0 || len(plan.TornWriteAt) > 0) && *ckptDir == "" {
		usage("-fault-plan kill/failwrite/enospc/tornwrite directives need -checkpoint-dir")
	}

	sess, err := obsFlags.Start()
	if err != nil {
		usage("%v", err)
	}
	liveSrv, err := liveFlags.Start()
	if err != nil {
		usage("%v", err)
	}
	// The flight recorder rides along whenever there is somewhere useful to
	// dump (a checkpoint directory) or someone watching (-http, -obs-*);
	// default runs keep the nil-sink hot path.
	var flight *live.FlightRecorder
	if liveSrv != nil {
		sess.AddSink(liveSrv.Sink())
		flight = liveSrv.Flight()
	} else if checkpointed || sess.Sink != nil {
		flight = live.NewFlightRecorder(0)
		sess.AddSink(flight)
	}
	if flight != nil {
		// SIGQUIT dumps the superstep ring without stopping the run —
		// crash-context on demand for a wedged or slow computation.
		dumpDir := *ckptDir
		if dumpDir == "" {
			dumpDir = "."
		}
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				if p, err := flight.DumpFlight(dumpDir, "SIGQUIT"); err != nil {
					fmt.Fprintln(os.Stderr, "bspgraph: flight dump:", err)
				} else {
					fmt.Fprintln(os.Stderr, "bspgraph: flight recorder dumped to", p)
				}
			}
		}()
	}
	// Open detects the format from content (CSR1, CSR2, gzip, DIMACS, or
	// edge-list text); a CSR2 file is mmap'd zero-copy, so the closer must
	// outlive every use of the graph.
	loadStart := time.Now()
	g, gCloser, err := graphio.Open(*path)
	if err != nil {
		fatal(err)
	}
	defer gCloser.Close()
	if rep != "" && g.Rep() != rep {
		if g, err = graph.WithRep(g, rep); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("loaded %v (%s adjacency) in %v\n", g, g.Rep(), time.Since(loadStart).Round(time.Microsecond))

	model := machine.NewAnalytic(machine.DefaultConfig())
	rec := trace.NewRecorder()
	sess.Attach(rec, g.NumVertices(), g.NumEdges())
	source := *src
	if source < 0 {
		source = maxDegreeVertex(g)
	}
	if source >= g.NumVertices() {
		usage("-src %d out of range [0,%d)", source, g.NumVertices())
	}

	// Source-list validation is shared with xmtbench (internal/batch), so
	// both CLIs reject malformed or out-of-range lists identically.
	var bplan *batch.Plan
	if *sources != "" {
		srcs, err := batch.ParseSources(*sources, g.NumVertices())
		if err != nil {
			usage("%v", err)
		}
		if bplan, err = batch.NewPlan(srcs, g.NumVertices()); err != nil {
			usage("%v", err)
		}
		if name == "reach" {
			*batchMode = true // reachability queries only exist batched
		}
		if !*batchMode && bplan.Occupancy() > 1 && (checkpointed || *faultPlan != "") {
			usage("sequential multi-source bfs runs one engine pass per source and does not support -checkpoint-dir/-resume/-fault-plan; add -batch")
		}
	}

	// Checkpoint label: algorithm plus the parameters that shape the run,
	// so a checkpoint cannot be resumed under different ones. Batched runs
	// pin the full lane assignment (also carried by the format-v7
	// fingerprint) so a resume under a permuted source list is refused.
	label := name
	switch {
	case bplan != nil && *batchMode && name == "reach":
		label = "multireach lanes=" + bplan.String()
	case bplan != nil && *batchMode:
		label = "multibfs lanes=" + bplan.String()
	case name == "bfs" || name == "sssp":
		label = fmt.Sprintf("%s src=%d", name, source)
	case name == "pagerank" || name == "lp":
		label = fmt.Sprintf("%s rounds=%d", name, *rounds)
	case name == "mis":
		label = fmt.Sprintf("%s seed=%d", name, 7)
	}

	opts := []core.Option{core.WithChunking(sched), core.WithDirection(dir)}
	if checkpointed {
		// With -resume but no -checkpoint-dir the policy is label-only:
		// it validates the checkpoint's identity but writes nothing new.
		opts = append(opts, core.WithCheckpoint(&ckpt.Policy{
			Dir:    *ckptDir,
			EveryN: *ckptEvery,
			Keep:   *ckptKeep,
			Label:  label,
			Hooks:  plan.Hooks(),
		}))
	}
	if *resume != "" {
		opts = append(opts, core.WithResume(*resume))
	}
	if resumeLatest {
		opts = append(opts, core.WithResumeLatest())
	}
	if *retries > 0 {
		opts = append(opts, core.WithRetries(*retries))
	}
	if *stepTimeout > 0 {
		opts = append(opts, core.WithStepTimeout(*stepTimeout))
	}
	if *runTimeout > 0 {
		opts = append(opts, core.WithRunTimeout(*runTimeout))
	}
	if len(plan.PanicAt) > 0 || len(plan.PanicNAt) > 0 || len(plan.SlowStepAt) > 0 {
		opts = append(opts, func(cfg *core.Config) {
			cfg.Program = plan.WrapProgram(cfg.Program)
		})
	}
	if checkpointed {
		// Finish the current superstep, checkpoint, and exit 3 on
		// SIGINT/SIGTERM instead of dying mid-state.
		stop := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			signal.Stop(sig)
			close(stop)
		}()
		opts = append(opts, core.WithStop(stop))
	}

	switch name {
	case "cc":
		res, err := bspalg.ConnectedComponents(g, rec, opts...)
		exitOn(err)
		comps := map[int64]int64{}
		for _, l := range res.Labels {
			comps[l]++
		}
		fmt.Printf("[bsp cc] %d components in %d supersteps\n", len(comps), res.Supersteps)
		fmt.Printf("         active/step:   %v\n", res.ActivePerStep)
		fmt.Printf("         messages/step: %v\n", res.MessagesPerStep)
	case "bfs":
		switch {
		case bplan != nil && *batchMode:
			res, err := bspalg.MultiBFS(g, bplan, rec, opts...)
			exitOn(err)
			var sent int64
			for _, m := range res.MessagesPerStep {
				sent += m
			}
			fmt.Printf("[bsp multibfs] lanes=%d supersteps=%d reached(sum over lanes)=%d\n",
				bplan.Occupancy(), res.Supersteps, lanesReached(res.Masks))
			fmt.Printf("               messages/step: %v\n", res.MessagesPerStep)
			fmt.Printf("               amortized edge traversals/query: %.0f\n",
				float64(sent)/float64(bplan.Occupancy()))
		case bplan != nil:
			// One engine pass per unique source — the unbatched control the
			// MS-BFS layer is measured against.
			for _, s := range bplan.Sources {
				res, err := bspalg.BFS(g, s, rec, opts...)
				exitOn(err)
				var reached int64
				for _, f := range res.FrontierPerStep {
					reached += f
				}
				fmt.Printf("[bsp bfs] source=%d supersteps=%d reached=%d\n", s, res.Supersteps, reached)
			}
		default:
			res, err := bspalg.BFS(g, source, rec, opts...)
			exitOn(err)
			var reached int64
			for _, f := range res.FrontierPerStep {
				reached += f
			}
			fmt.Printf("[bsp bfs] source=%d supersteps=%d reached=%d\n", source, res.Supersteps, reached)
			fmt.Printf("          frontier/level: %v\n", res.FrontierPerStep)
			fmt.Printf("          messages/step:  %v\n", res.MessagesPerStep)
		}
	case "reach":
		res, err := bspalg.MultiReach(g, bplan, rec, opts...)
		exitOn(err)
		fmt.Printf("[bsp multireach] lanes=%d supersteps=%d reached(sum over lanes)=%d\n",
			bplan.Occupancy(), res.Supersteps, lanesReached(res.Masks))
	case "sssp":
		if !g.Weighted() {
			usage("sssp requires a weighted graph")
		}
		res, err := bspalg.SSSP(g, source, rec, opts...)
		exitOn(err)
		var reached int
		for _, d := range res.Dist {
			if d >= 0 {
				reached++
			}
		}
		fmt.Printf("[bsp sssp] source=%d supersteps=%d reached=%d\n", source, res.Supersteps, reached)
	case "tc":
		res, err := bspalg.Triangles(g, rec, opts...)
		exitOn(err)
		fmt.Printf("[bsp tc] triangles=%d candidates=%d total-messages=%d supersteps=%d\n",
			res.Count, res.CandidateMessages, res.TotalMessages, res.Supersteps)
	case "tc-streaming":
		res := bspalg.StreamingTriangles(g, rec)
		fmt.Printf("[bsp tc-streaming] triangles=%d candidates=%d total-messages=%d supersteps=%d\n",
			res.Count, res.CandidateMessages, res.TotalMessages, res.Supersteps)
	case "mis":
		res, err := bspalg.MaximalIndependentSet(g, 7, rec, opts...)
		exitOn(err)
		members := 0
		for _, in := range res.InSet {
			if in {
				members++
			}
		}
		valid := bspalg.ValidateMIS(g, res.InSet)
		fmt.Printf("[bsp mis] %d members in %d rounds (valid=%v)\n", members, res.Rounds, valid)
	case "diameter":
		d, err := bspalg.ApproxDiameter(g, source, 4, rec, opts...)
		exitOn(err)
		fmt.Printf("[bsp diameter] >= %d (double-sweep from %d)\n", d, source)
	case "bc":
		res, err := bspalg.Betweenness(g, bspalg.BetweennessOptions{Samples: 16, Seed: 7}, rec, opts...)
		exitOn(err)
		var max float64
		var arg int
		for i, sc := range res.Score {
			if sc > max {
				max, arg = sc, i
			}
		}
		fmt.Printf("[bsp bc] sources=%d supersteps=%d top vertex %d (%.4g)\n",
			len(res.Sources), res.Supersteps, arg, max)
	case "kcore":
		res, err := bspalg.KCore(g, rec, opts...)
		exitOn(err)
		fmt.Printf("[bsp kcore] degeneracy=%d supersteps=%d\n", res.MaxCore, res.Supersteps)
	case "lp":
		res, err := bspalg.LabelPropagation(g, *rounds, rec, opts...)
		exitOn(err)
		fmt.Printf("[bsp lp] %d communities in %d supersteps\n", res.Communities, res.Supersteps)
	case "pagerank":
		res, err := bspalg.PageRank(g, *rounds, rec, opts...)
		exitOn(err)
		var max float64
		var arg int
		for i, r := range res.Rank {
			if r > max {
				max, arg = r, i
			}
		}
		fmt.Printf("[bsp pagerank] supersteps=%d top vertex %d (%.5f)\n", res.Supersteps, arg, max)
	default:
		usage("unknown algorithm %q", *alg)
	}
	fmt.Printf("simulated time on %d procs: %.4fs\n",
		*procs, machine.Seconds(model, rec.Phases(), *procs))
	if *profile != "" {
		f, err := os.Create(*profile)
		exitOn(err)
		exitOn(rec.WriteJSON(f))
		exitOn(f.Close())
		fmt.Println("work profile written to", *profile)
	}
	exitOn(sess.Close())
	exitOn(liveFlags.Close(liveSrv))
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bspgraph: "+format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bspgraph:", err)
	os.Exit(1)
}

// exitOn reports err and exits: interrupted runs (signal or injected kill)
// and expired run deadlines exit 3 after printing the resume command;
// everything else — retry exhaustion, watchdog stalls, program faults —
// exits 1.
func exitOn(err error) {
	if err == nil {
		return
	}
	var ie *core.InterruptedError
	if errors.As(err, &ie) {
		if ie.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "bspgraph: interrupted after superstep %d; resume with -resume %s\n",
				ie.Superstep, ie.CheckpointPath)
		} else {
			fmt.Fprintf(os.Stderr, "bspgraph: interrupted after superstep %d (no checkpoint directory configured)\n",
				ie.Superstep)
		}
		os.Exit(3)
	}
	var te *core.TimeoutError
	if errors.As(err, &te) {
		fmt.Fprintln(os.Stderr, "bspgraph:", err)
		if te.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "bspgraph: resume with -resume %s\n", te.CheckpointPath)
		}
		if te.FlightRecorderPath != "" {
			fmt.Fprintf(os.Stderr, "bspgraph: flight recorder: %s\n", te.FlightRecorderPath)
		}
		if te.Stalled {
			os.Exit(1) // a wedged superstep is a failure, not a clean deadline
		}
		os.Exit(3)
	}
	var re *core.RetryExhaustedError
	if errors.As(err, &re) {
		fmt.Fprintln(os.Stderr, "bspgraph:", err)
		if re.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "bspgraph: emergency checkpoint: resume with -resume %s\n", re.CheckpointPath)
		}
		if re.FlightRecorderPath != "" {
			fmt.Fprintf(os.Stderr, "bspgraph: flight recorder: %s\n", re.FlightRecorderPath)
		}
		os.Exit(1)
	}
	var pe *core.ProgramError
	if errors.As(err, &pe) && pe.CheckpointPath != "" {
		fmt.Fprintf(os.Stderr, "bspgraph: %v\nbspgraph: emergency checkpoint: resume with -resume %s\n",
			err, pe.CheckpointPath)
		if pe.FlightRecorderPath != "" {
			fmt.Fprintf(os.Stderr, "bspgraph: flight recorder: %s\n", pe.FlightRecorderPath)
		}
		os.Exit(1)
	}
	fatal(err)
}

// lanesReached sums per-lane reached-set sizes: the popcount of every
// vertex's lane mask.
func lanesReached(masks []int64) int64 {
	var n int64
	for _, m := range masks {
		n += int64(bits.OnesCount64(uint64(m)))
	}
	return n
}

func maxDegreeVertex(g *graph.Graph) int64 {
	var best, src int64 = -1, 0
	for v := int64(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > best {
			best, src = d, v
		}
	}
	return src
}
