// Command bspgraph runs the vertex-centric BSP algorithms (the paper's
// contribution) over a stored graph, printing results, per-superstep
// statistics, and simulated Cray XMT times.
//
// Usage:
//
//	bspgraph -g graph.gxmt -alg cc|bfs|sssp|tc|tc-streaming|pagerank|kcore|lp|bc|mis|diameter
//	         [-src -1] [-procs 128] [-rounds 30] [-workers N]
//	         [-obs-format report|jsonl|chrome] [-obs-out trace.json] [-pprof addr|file]
//
// SSSP requires a weighted graph (graphgen does not emit one; build via
// the library or a weighted DIMACS file). The -obs-* flags export host
// runtime observability (see docs/OBSERVABILITY.md): per-superstep phase
// spans, worker utilization, and memory samples.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphio"
	"graphxmt/internal/machine"
	"graphxmt/internal/obs"
	"graphxmt/internal/trace"
)

func main() {
	path := flag.String("g", "", "graph file (required)")
	alg := flag.String("alg", "cc", "algorithm: cc, bfs, sssp, tc, tc-streaming, pagerank, kcore, lp, bc, mis, diameter")
	src := flag.Int64("src", -1, "bfs/sssp source (-1 = max-degree vertex)")
	procs := flag.Int("procs", 128, "simulated processors")
	rounds := flag.Int("rounds", 30, "pagerank supersteps")
	profile := flag.String("profile", "", "write the recorded work profile as JSON to this path")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "bspgraph: -g is required")
		os.Exit(2)
	}
	sess, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bspgraph:", err)
		os.Exit(2)
	}
	g, err := graphio.LoadFile(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bspgraph:", err)
		os.Exit(1)
	}
	fmt.Println("loaded", g)

	model := machine.NewAnalytic(machine.DefaultConfig())
	rec := trace.NewRecorder()
	sess.Attach(rec, g.NumVertices(), g.NumEdges())
	source := *src
	if source < 0 {
		source = maxDegreeVertex(g)
	}

	switch strings.TrimSpace(*alg) {
	case "cc":
		res, err := bspalg.ConnectedComponents(g, rec)
		exitOn(err)
		comps := map[int64]int64{}
		for _, l := range res.Labels {
			comps[l]++
		}
		fmt.Printf("[bsp cc] %d components in %d supersteps\n", len(comps), res.Supersteps)
		fmt.Printf("         active/step:   %v\n", res.ActivePerStep)
		fmt.Printf("         messages/step: %v\n", res.MessagesPerStep)
	case "bfs":
		res, err := bspalg.BFS(g, source, rec)
		exitOn(err)
		var reached int64
		for _, f := range res.FrontierPerStep {
			reached += f
		}
		fmt.Printf("[bsp bfs] source=%d supersteps=%d reached=%d\n", source, res.Supersteps, reached)
		fmt.Printf("          frontier/level: %v\n", res.FrontierPerStep)
		fmt.Printf("          messages/step:  %v\n", res.MessagesPerStep)
	case "sssp":
		if !g.Weighted() {
			fmt.Fprintln(os.Stderr, "bspgraph: sssp requires a weighted graph")
			os.Exit(2)
		}
		res, err := bspalg.SSSP(g, source, rec)
		exitOn(err)
		var reached int
		for _, d := range res.Dist {
			if d >= 0 {
				reached++
			}
		}
		fmt.Printf("[bsp sssp] source=%d supersteps=%d reached=%d\n", source, res.Supersteps, reached)
	case "tc":
		res, err := bspalg.Triangles(g, rec)
		exitOn(err)
		fmt.Printf("[bsp tc] triangles=%d candidates=%d total-messages=%d supersteps=%d\n",
			res.Count, res.CandidateMessages, res.TotalMessages, res.Supersteps)
	case "tc-streaming":
		res := bspalg.StreamingTriangles(g, rec)
		fmt.Printf("[bsp tc-streaming] triangles=%d candidates=%d total-messages=%d supersteps=%d\n",
			res.Count, res.CandidateMessages, res.TotalMessages, res.Supersteps)
	case "mis":
		res, err := bspalg.MaximalIndependentSet(g, 7, rec)
		exitOn(err)
		members := 0
		for _, in := range res.InSet {
			if in {
				members++
			}
		}
		valid := bspalg.ValidateMIS(g, res.InSet)
		fmt.Printf("[bsp mis] %d members in %d rounds (valid=%v)\n", members, res.Rounds, valid)
	case "diameter":
		d, err := bspalg.ApproxDiameter(g, source, 4, rec)
		exitOn(err)
		fmt.Printf("[bsp diameter] >= %d (double-sweep from %d)\n", d, source)
	case "bc":
		res, err := bspalg.Betweenness(g, bspalg.BetweennessOptions{Samples: 16, Seed: 7}, rec)
		exitOn(err)
		var max float64
		var arg int
		for i, sc := range res.Score {
			if sc > max {
				max, arg = sc, i
			}
		}
		fmt.Printf("[bsp bc] sources=%d supersteps=%d top vertex %d (%.4g)\n",
			len(res.Sources), res.Supersteps, arg, max)
	case "kcore":
		res, err := bspalg.KCore(g, rec)
		exitOn(err)
		fmt.Printf("[bsp kcore] degeneracy=%d supersteps=%d\n", res.MaxCore, res.Supersteps)
	case "lp":
		res, err := bspalg.LabelPropagation(g, *rounds, rec)
		exitOn(err)
		fmt.Printf("[bsp lp] %d communities in %d supersteps\n", res.Communities, res.Supersteps)
	case "pagerank":
		res, err := bspalg.PageRank(g, *rounds, rec)
		exitOn(err)
		var max float64
		var arg int
		for i, r := range res.Rank {
			if r > max {
				max, arg = r, i
			}
		}
		fmt.Printf("[bsp pagerank] supersteps=%d top vertex %d (%.5f)\n", res.Supersteps, arg, max)
	default:
		fmt.Fprintf(os.Stderr, "bspgraph: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	fmt.Printf("simulated time on %d procs: %.4fs\n",
		*procs, machine.Seconds(model, rec.Phases(), *procs))
	if *profile != "" {
		f, err := os.Create(*profile)
		exitOn(err)
		exitOn(rec.WriteJSON(f))
		exitOn(f.Close())
		fmt.Println("work profile written to", *profile)
	}
	exitOn(sess.Close())
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bspgraph:", err)
		os.Exit(1)
	}
}

func maxDegreeVertex(g *graph.Graph) int64 {
	var best, src int64 = -1, 0
	for v := int64(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > best {
			best, src = d, v
		}
	}
	return src
}
