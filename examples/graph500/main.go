// Graph500-style BFS benchmark in both programming models. The paper
// motivates breadth-first search as "the classical graph traversal
// algorithm ... used in the Graph500 benchmark": this example runs the
// internal/graph500 harness — RMAT generation, BFS from sampled search
// keys, specification-style tree validation, and TEPS statistics under the
// simulated Cray XMT — once with the shared-memory kernel and once with
// the BSP vertex program.
//
// Run with: go run ./examples/graph500
package main

import (
	"fmt"
	"log"

	"graphxmt/internal/graph500"
)

func main() {
	base := graph500.Config{
		Scale:      13,
		EdgeFactor: 16,
		SearchKeys: 16,
		Seed:       42,
		Procs:      128,
	}
	fmt.Printf("graph500-style run: scale %d, edge factor %d, %d search keys, %d simulated procs\n",
		base.Scale, base.EdgeFactor, base.SearchKeys, base.Procs)

	shared, err := graph500.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	bspCfg := base
	bspCfg.BSP = true
	bsp, err := graph500.Run(bspCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %v\n", shared.Graph)
	fmt.Printf("validated searches: shared %d/%d, bsp %d/%d (spec-style tree checks)\n\n",
		shared.Validated, len(shared.Keys), bsp.Validated, len(bsp.Keys))

	fmt.Printf("%-14s %14s %14s\n", "", "GraphCT", "BSP")
	fmt.Printf("%-14s %13.3g %13.3g\n", "min TEPS", shared.MinTEPS, bsp.MinTEPS)
	fmt.Printf("%-14s %13.3g %13.3g\n", "median TEPS", shared.MedianTEPS, bsp.MedianTEPS)
	fmt.Printf("%-14s %13.3g %13.3g\n", "harmonic TEPS", shared.HarmonicMeanTEPS, bsp.HarmonicMeanTEPS)
	fmt.Printf("%-14s %13.3g %13.3g\n", "max TEPS", shared.MaxTEPS, bsp.MaxTEPS)
	fmt.Printf("\nBSP runs at %.1fx lower harmonic-mean TEPS — the paper's factor-of-10 envelope\n",
		shared.HarmonicMeanTEPS/bsp.HarmonicMeanTEPS)
}
