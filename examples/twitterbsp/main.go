// BSP single-source shortest paths on a Twitter-like graph — the external
// comparison the paper cites: "Kajdanowicz et al. computes Single Source
// Shortest Path on a graph derived from Twitter with 43.7 million vertices
// and 688 million edges ... Giraph completes the algorithm in an average
// of approximately 30 seconds" with flat scaling from 30 to 85 machines.
//
// This example runs the same computation on graphxmt's BSP engine over a
// downscaled synthetic Twitter (scale-free RMAT, weighted edges standing
// in for interaction costs) and reports the simulated Cray XMT scaling
// curve, showing the same flat region once parallelism is exhausted.
//
// Run with: go run ./examples/twitterbsp
package main

import (
	"fmt"
	"log"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

func main() {
	// Synthetic Twitter: scale-free topology, small integer edge weights.
	edges, n, err := gen.RMATEdges(gen.RMATConfig{Scale: 14, EdgeFactor: 16, Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}
	weights := gen.UniformWeights(len(edges), 10, 99)
	g, err := graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true, Weights: weights})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthetic twitter:", g)

	// Root at the loudest account.
	var src, best int64 = 0, -1
	for v := int64(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > best {
			best, src = d, v
		}
	}

	rec := trace.NewRecorder()
	res, err := bspalg.SSSP(g, src, rec)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against sequential Dijkstra.
	want := bspalg.ReferenceSSSP(g, src)
	for v := range want {
		if res.Dist[v] != want[v] {
			log.Fatalf("sssp mismatch at vertex %d", v)
		}
	}
	reached, maxd := 0, int64(0)
	for _, d := range res.Dist {
		if d >= 0 {
			reached++
			if d > maxd {
				maxd = d
			}
		}
	}
	fmt.Printf("sssp from v%d: reached %d vertices, max distance %d, %d supersteps (verified vs Dijkstra)\n",
		src, reached, maxd, res.Supersteps)

	// The Kajdanowicz observation: adding machines stops helping once the
	// per-superstep parallelism is exhausted. Sweep the simulated machine.
	model := machine.NewAnalytic(machine.DefaultConfig())
	fmt.Println("\nsimulated scaling (note the flattening tail, as in the Giraph study):")
	prev := 0.0
	for _, procs := range []int{8, 16, 32, 64, 128} {
		t := machine.Seconds(model, rec.Phases(), procs)
		note := ""
		if prev > 0 {
			speedup := prev / t
			note = fmt.Sprintf("  (x%.2f from previous)", speedup)
		}
		fmt.Printf("  %3d procs: %.5fs%s\n", procs, t, note)
		prev = t
	}
}
