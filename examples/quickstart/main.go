// Quickstart: generate a scale-free graph, run connected components in
// both programming models — the shared-memory GraphCT kernel and the
// vertex-centric BSP engine — verify they agree, and compare simulated
// Cray XMT execution times. This is the paper's core experiment in ~60
// lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/gen"
	"graphxmt/internal/graphct"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

func main() {
	// An undirected RMAT graph with Graph500 parameters: 2^14 vertices,
	// edge factor 16 (the paper's workload at 1/1024 scale).
	g, err := gen.RMAT(gen.RMATConfig{Scale: 14, EdgeFactor: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", g)

	// Shared-memory connected components (the GraphCT baseline).
	ctRec := trace.NewRecorder()
	ct := graphct.ConnectedComponents(g, ctRec)

	// BSP connected components (Algorithm 1 on the Pregel-style engine).
	bspRec := trace.NewRecorder()
	bsp, err := bspalg.ConnectedComponents(g, bspRec)
	if err != nil {
		log.Fatal(err)
	}

	// Both must produce identical component labels.
	for v := range ct.Labels {
		if ct.Labels[v] != bsp.Labels[v] {
			log.Fatalf("label mismatch at vertex %d", v)
		}
	}
	_, largest := graphct.ComponentSizes(ct.Labels)
	fmt.Printf("components agree; largest has %d of %d vertices\n",
		largest, g.NumVertices())

	// Evaluate both work profiles on the simulated 128-processor Cray XMT.
	model := machine.NewAnalytic(machine.DefaultConfig())
	for _, procs := range []int{8, 32, 128} {
		ctTime := machine.Seconds(model, ctRec.Phases(), procs)
		bspTime := machine.Seconds(model, bspRec.Phases(), procs)
		fmt.Printf("%3d procs: GraphCT %8.5fs (%d iterations) | BSP %8.5fs (%d supersteps) | ratio %.1f:1\n",
			procs, ctTime, ct.Iterations, bspTime, bsp.Supersteps, bspTime/ctTime)
	}
	fmt.Println("\nthe paper's result at scale 24 on real hardware: GraphCT 1.31s, BSP 5.40s, 4.1:1")
}
