// Social network analysis workflow: the "massive social network analysis"
// use case GraphCT was built for (the paper's authors used it to mine
// Twitter). A scale-free graph stands in for the social network; the
// workflow chains the kernels a GraphCT user would call: degree
// statistics, connected components, k-core decomposition, clustering
// coefficients, PageRank, and sampled betweenness centrality — then prints
// an analyst-style report with simulated Cray XMT times for each step.
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"

	"graphxmt/internal/gen"
	"graphxmt/internal/graphct"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

const simProcs = 128

func main() {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 14, EdgeFactor: 8, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("social graph:", g)
	model := machine.NewAnalytic(machine.DefaultConfig())
	step := func(name string, rec *trace.Recorder) {
		fmt.Printf("    [%s on %d simulated procs: %.4fs]\n\n",
			name, simProcs, machine.Seconds(model, rec.Phases(), simProcs))
	}

	// 1. Degree structure: is this graph scale-free?
	rec := trace.NewRecorder()
	ds := graphct.Degrees(g, rec)
	fmt.Printf("degrees: mean %.1f, median %d, max %d, gini %.2f (skew!), assortativity %.2f\n",
		ds.Mean, ds.Median, ds.Max, ds.GiniIndex, graphct.Assortativity(g, rec))
	step("degrees", rec)

	// 2. Connectivity: how much of the network is one community of
	// discourse?
	rec = trace.NewRecorder()
	cc := graphct.ConnectedComponents(g, rec)
	sizes, largest := graphct.ComponentSizes(cc.Labels)
	fmt.Printf("connectivity: %d components; giant component holds %.1f%% of vertices\n",
		len(sizes), 100*float64(largest)/float64(g.NumVertices()))
	step("connected components", rec)

	// 3. k-core: the densely engaged core of the network.
	rec = trace.NewRecorder()
	kc := graphct.KCore(g, rec)
	inCore := 0
	for _, c := range kc.Core {
		if c == kc.MaxCore {
			inCore++
		}
	}
	fmt.Printf("engagement: degeneracy %d; %d vertices in the innermost core\n",
		kc.MaxCore, inCore)
	step("k-core", rec)

	// 4. Clustering: do friends of friends know each other?
	rec = trace.NewRecorder()
	ccoef := graphct.ClusteringCoefficients(g, rec)
	fmt.Printf("clustering: %d triangles, global coefficient %.4f\n",
		ccoef.Triangles, ccoef.Global)
	step("clustering coefficients", rec)

	// 5. Influence: PageRank.
	rec = trace.NewRecorder()
	pr := graphct.PageRank(g, graphct.PageRankOptions{}, rec)
	fmt.Printf("influence: pagerank converged in %d iterations; top accounts: %v\n",
		pr.Iterations, topK(pr.Rank, 3))
	step("pagerank", rec)

	// 6. Brokerage: who sits on the most shortest paths? (Sampled Brandes,
	// as GraphCT does on massive graphs.)
	rec = trace.NewRecorder()
	bc := graphct.Betweenness(g, graphct.BetweennessOptions{Samples: 32, Seed: 3}, rec)
	fmt.Printf("brokerage: sampled betweenness (%d sources); top brokers: %v\n",
		len(bc.Sources), topK(bc.Score, 3))
	step("betweenness", rec)
}

func topK(scores []float64, k int) []string {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = fmt.Sprintf("v%d (%.3g)", idx[i], scores[idx[i]])
	}
	return out
}
