// Community detection in both programming models. The paper's authors'
// companion work ("Parallel community detection for massive graphs",
// cited in the paper's related work) motivates community structure as a
// core analytic; this example plants communities in a stochastic block
// model graph and recovers them with label propagation twice — once with
// the shared-memory sweep (labels propagate within an iteration) and once
// with the BSP vertex program (labels are one superstep stale) — then
// compares recovered modularity, iteration counts, and simulated Cray XMT
// time. The iteration gap mirrors the paper's connected-components
// analysis: staleness costs supersteps.
//
// Run with: go run ./examples/communities
package main

import (
	"fmt"
	"log"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/gen"
	"graphxmt/internal/graphct"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

func main() {
	// 16 planted communities of 64 vertices; dense inside, sparse between.
	const communities, size = 16, 64
	g, err := gen.PlantedPartition(communities, size, 0.25, 0.002, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted %d communities of %d in %v\n", communities, size, g)

	// Shared-memory label propagation.
	ctRec := trace.NewRecorder()
	ct := graphct.LabelPropagation(g, graphct.CommunityOptions{}, ctRec)

	// BSP label propagation.
	bspRec := trace.NewRecorder()
	bsp, err := bspalg.LabelPropagation(g, 40, bspRec)
	if err != nil {
		log.Fatal(err)
	}

	model := machine.NewAnalytic(machine.DefaultConfig())
	const procs = 128
	fmt.Printf("\n%-22s %12s %12s %10s %12s\n", "", "communities", "modularity", "iters", "sim time")
	fmt.Printf("%-22s %12d %12.4f %10d %11.5fs\n",
		"shared memory (LPA)", ct.Communities, graphct.Modularity(g, ct.Labels),
		ct.Iterations, machine.Seconds(model, ctRec.Phases(), procs))
	fmt.Printf("%-22s %12d %12.4f %10d %11.5fs\n",
		"BSP (vertex program)", bsp.Communities, graphct.Modularity(g, bsp.Labels),
		bsp.Supersteps, machine.Seconds(model, bspRec.Phases(), procs))

	// How well did each recover the planted structure? Count intra-block
	// agreement.
	agreement := func(labels []int64) float64 {
		agree, total := 0, 0
		for u := int64(0); u < g.NumVertices(); u++ {
			for v := u + 1; v < g.NumVertices(); v++ {
				if u/size == v/size {
					total++
					if labels[u] == labels[v] {
						agree++
					}
				}
			}
		}
		return float64(agree) / float64(total)
	}
	fmt.Printf("\nplanted-pair recovery: shared memory %.1f%%, BSP %.1f%%\n",
		100*agreement(ct.Labels), 100*agreement(bsp.Labels))
	fmt.Println("note the BSP iteration count: stale labels move one hop per superstep,")
	fmt.Println("the same effect the paper measures on connected components (13 vs 6).")
}
