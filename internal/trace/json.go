package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// phaseJSON is the serialized form of a Phase (Detail and the mutex are
// intentionally excluded: detail is a simulation-local aid, not part of
// the portable profile).
type phaseJSON struct {
	Name     string               `json:"name"`
	Index    int                  `json:"index"`
	Tasks    int64                `json:"tasks"`
	Issue    int64                `json:"issue"`
	Loads    int64                `json:"loads"`
	Stores   int64                `json:"stores"`
	MaxTask  int64                `json:"max_task"`
	Barriers int64                `json:"barriers"`
	Hot      [NumHotClasses]int64 `json:"hot"`
}

type profileJSON struct {
	Version int         `json:"version"`
	Phases  []phaseJSON `json:"phases"`
}

// WriteJSON serializes the recorder's phases. A saved profile can be
// re-evaluated later under any machine configuration without re-running
// the kernel — profiles, not timings, are graphxmt's portable artifact.
func (r *Recorder) WriteJSON(w io.Writer) error {
	out := profileJSON{Version: 1}
	for _, p := range r.Phases() {
		out.Phases = append(out.Phases, phaseJSON{
			Name:     p.Name,
			Index:    p.Index,
			Tasks:    p.Tasks,
			Issue:    p.Issue,
			Loads:    p.Loads,
			Stores:   p.Stores,
			MaxTask:  p.MaxTask,
			Barriers: p.Barriers,
			Hot:      p.Hot,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a profile written by WriteJSON into a fresh Recorder.
func ReadJSON(r io.Reader) (*Recorder, error) {
	var in profileJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decoding profile: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported profile version %d", in.Version)
	}
	rec := NewRecorder()
	for _, pj := range in.Phases {
		if pj.Tasks < 0 || pj.Issue < 0 || pj.Loads < 0 || pj.Stores < 0 ||
			pj.MaxTask < 0 || pj.Barriers < 0 {
			return nil, fmt.Errorf("trace: negative counts in phase %q", pj.Name)
		}
		p := rec.StartPhase(pj.Name, pj.Index)
		p.Tasks = pj.Tasks
		p.Issue = pj.Issue
		p.Loads = pj.Loads
		p.Stores = pj.Stores
		p.MaxTask = pj.MaxTask
		p.Barriers = pj.Barriers
		p.Hot = pj.Hot
	}
	return rec, nil
}
