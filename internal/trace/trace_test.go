package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestPhaseAccumulation(t *testing.T) {
	p := &Phase{Name: "x"}
	p.AddTasks(10, 100, 50, 25)
	p.AddTasks(5, 10, 5, 5)
	if p.Tasks != 15 || p.Issue != 110 || p.Loads != 55 || p.Stores != 30 {
		t.Fatalf("got %+v", p)
	}
	if p.Mem() != 85 {
		t.Fatalf("Mem() = %d, want 85", p.Mem())
	}
	p.AddHot(HotMsgCounter, 7)
	p.AddHot(HotMsgCounter, 3)
	p.AddHot(HotQueueTail, 4)
	if p.Hot[HotMsgCounter] != 10 || p.Hot[HotQueueTail] != 4 {
		t.Fatalf("hot = %v", p.Hot)
	}
	if p.HotTotal() != 14 {
		t.Fatalf("HotTotal = %d", p.HotTotal())
	}
	if p.MaxHot() != 10 {
		t.Fatalf("MaxHot = %d", p.MaxHot())
	}
	if p.TotalOps() != 110+85+14 {
		t.Fatalf("TotalOps = %d", p.TotalOps())
	}
}

func TestObserveTaskKeepsMax(t *testing.T) {
	p := &Phase{}
	for _, v := range []int64{5, 100, 7, 99} {
		p.ObserveTask(v)
	}
	if p.MaxTask != 100 {
		t.Fatalf("MaxTask = %d, want 100", p.MaxTask)
	}
}

func TestObserveTaskConcurrent(t *testing.T) {
	p := &Phase{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.ObserveTask(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if p.MaxTask != 7999 {
		t.Fatalf("MaxTask = %d, want 7999", p.MaxTask)
	}
}

func TestPhaseConcurrentAdds(t *testing.T) {
	p := &Phase{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.AddTasks(1, 2, 3, 4)
				p.AddHot(HotReduction, 1)
			}
		}()
	}
	wg.Wait()
	if p.Tasks != 8000 || p.Issue != 16000 || p.Loads != 24000 || p.Stores != 32000 {
		t.Fatalf("got %+v", p)
	}
	if p.Hot[HotReduction] != 8000 {
		t.Fatalf("hot = %d", p.Hot[HotReduction])
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if !r.Discard() {
		t.Fatal("nil recorder should report Discard")
	}
	p := r.StartPhase("x", 0)
	p.AddTasks(1, 1, 1, 1) // must not panic
	if r.Detail() {
		t.Fatal("nil recorder should not request detail")
	}
	if got := r.Phases(); got != nil {
		t.Fatalf("nil recorder Phases = %v", got)
	}
	r.Reset() // must not panic
}

func TestRecorderPhaseOrderAndNames(t *testing.T) {
	r := NewRecorder()
	r.StartPhase("a", 0)
	r.StartPhase("b", 0)
	r.StartPhase("a", 1)
	ph := r.Phases()
	if len(ph) != 3 || ph[0].Name != "a" || ph[1].Name != "b" || ph[2].Index != 1 {
		t.Fatalf("phases = %v", ph)
	}
	as := r.PhasesNamed("a")
	if len(as) != 2 || as[0].Index != 0 || as[1].Index != 1 {
		t.Fatalf("PhasesNamed = %v", as)
	}
}

func TestRecorderTotals(t *testing.T) {
	r := NewRecorder()
	p1 := r.StartPhase("a", 0)
	p1.AddTasks(2, 10, 20, 30)
	p1.AddHot(HotMsgCounter, 5)
	p1.ObserveTask(40)
	p2 := r.StartPhase("b", 0)
	p2.AddTasks(3, 1, 2, 3)
	p2.ObserveTask(99)
	tot := r.Totals()
	if tot.Tasks != 5 || tot.Issue != 11 || tot.Loads != 22 || tot.Stores != 33 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.Hot[HotMsgCounter] != 5 || tot.MaxTask != 99 || tot.Barriers != 2 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.StartPhase("a", 0)
	r.Reset()
	if len(r.Phases()) != 0 {
		t.Fatal("reset did not clear phases")
	}
}

func TestTotalsAdditiveProperty(t *testing.T) {
	// Totals over k identical phases = k * single phase counts.
	f := func(kRaw uint8, issue, loads, stores uint16) bool {
		k := int(kRaw%10) + 1
		r := NewRecorder()
		for i := 0; i < k; i++ {
			p := r.StartPhase("p", i)
			p.AddTasks(1, int64(issue), int64(loads), int64(stores))
		}
		tot := r.Totals()
		return tot.Issue == int64(k)*int64(issue) &&
			tot.Loads == int64(k)*int64(loads) &&
			tot.Stores == int64(k)*int64(stores) &&
			tot.Tasks == int64(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHotClassString(t *testing.T) {
	if HotMsgCounter.String() != "msg-counter" {
		t.Fatalf("got %q", HotMsgCounter.String())
	}
	if HotClass(200).String() == "" {
		t.Fatal("unknown class should still format")
	}
}

func TestAddDetail(t *testing.T) {
	p := &Phase{}
	p.AddDetail(TaskCost{1, 2}, TaskCost{3, 4})
	p.AddDetail(TaskCost{5, 6})
	if len(p.Detail) != 3 || p.Detail[2].Issue != 5 {
		t.Fatalf("detail = %v", p.Detail)
	}
}

func TestPhaseString(t *testing.T) {
	p := &Phase{Name: "bfs/level", Index: 3}
	p.AddTasks(7, 1, 2, 3)
	s := p.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	p1 := r.StartPhase("bsp/superstep", 0)
	p1.AddTasks(100, 200, 300, 400)
	p1.AddHot(HotMsgCounter, 55)
	p1.ObserveTask(42)
	p2 := r.StartPhase("bsp/scan", 1)
	p2.AddTasks(7, 8, 9, 10)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, got := r.Phases(), back.Phases()
	if len(orig) != len(got) {
		t.Fatalf("phases = %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		a, b := orig[i], got[i]
		if a.Name != b.Name || a.Index != b.Index || a.Tasks != b.Tasks ||
			a.Issue != b.Issue || a.Loads != b.Loads || a.Stores != b.Stores ||
			a.MaxTask != b.MaxTask || a.Barriers != b.Barriers || a.Hot != b.Hot {
			t.Fatalf("phase %d mismatch:\n%v\n%v", i, a, b)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99, "phases": []}`,
		`{"version": 1, "phases": [{"name": "x", "tasks": -5}]}`,
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestJSONEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Phases()) != 0 {
		t.Fatal("expected empty profile")
	}
}
