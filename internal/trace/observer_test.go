package trace

// Tests for the host-observability attachment points: the opaque observer
// slot, the StartPhase notification, and the process-wide factory.

import "testing"

type recordingObserver struct {
	names   []string
	indices []int
}

func (o *recordingObserver) PhaseStarted(name string, index int) {
	o.names = append(o.names, name)
	o.indices = append(o.indices, index)
}

func TestPhaseObserverNotified(t *testing.T) {
	r := NewRecorder()
	o := &recordingObserver{}
	r.SetObserver(o)
	if r.Observer() != o {
		t.Fatal("Observer() did not return the attached object")
	}
	r.StartPhase("bfs/level", 0)
	r.StartPhase("bfs/level", 1)
	r.StartPhase("stats/degrees", 0)
	want := []string{"bfs/level", "bfs/level", "stats/degrees"}
	if len(o.names) != len(want) {
		t.Fatalf("observed %d phases, want %d", len(o.names), len(want))
	}
	for i := range want {
		if o.names[i] != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, o.names[i], want[i])
		}
	}
	if o.indices[1] != 1 || o.indices[2] != 0 {
		t.Fatalf("indices = %v, want [0 1 0]", o.indices)
	}
}

// TestObserverNonPhaseObserver: any value can ride on the recorder; only
// PhaseObserver implementations get StartPhase callbacks.
func TestObserverNonPhaseObserver(t *testing.T) {
	r := NewRecorder()
	r.SetObserver("opaque payload")
	r.StartPhase("cc/iter", 0) // must not panic
	if got := r.Observer(); got != "opaque payload" {
		t.Fatalf("Observer() = %v", got)
	}
	r.SetObserver(nil)
	if r.Observer() != nil {
		t.Fatal("Observer() not cleared")
	}
}

func TestNilRecorderObserverSafe(t *testing.T) {
	var r *Recorder
	r.SetObserver(&recordingObserver{}) // must not panic
	if r.Observer() != nil {
		t.Fatal("nil recorder returned an observer")
	}
}

func TestObserverFactory(t *testing.T) {
	made := 0
	prev := SetObserverFactory(func() any {
		made++
		return &recordingObserver{}
	})
	defer SetObserverFactory(prev)

	r1 := NewRecorder()
	r2 := NewRecorder()
	if made != 2 {
		t.Fatalf("factory invoked %d times, want 2", made)
	}
	o1, ok := r1.Observer().(*recordingObserver)
	if !ok {
		t.Fatal("recorder missing factory observer")
	}
	r1.StartPhase("sv/round", 3)
	if len(o1.names) != 1 || o1.names[0] != "sv/round" {
		t.Fatalf("factory observer saw %v", o1.names)
	}
	if r1.Observer() == r2.Observer() {
		t.Fatal("recorders share one observer; factory must mint fresh ones")
	}

	// Restoring the previous factory stops attachment.
	SetObserverFactory(prev)
	if r := NewRecorder(); r.Observer() != nil && prev == nil {
		t.Fatal("observer attached after factory cleared")
	}
}
