package trace

// Round-trip and error-path tests for the profile JSON format — the
// portable artifact every CLI exchanges. These pin the properties tools
// downstream rely on: hot-class arrays survive a write/read cycle class by
// class, foreign versions are rejected by name, and truncated files fail
// loudly instead of yielding a shorter profile.

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONHotClassArrayRoundTrip populates every hot class with a distinct
// count and checks each survives the round trip in its own slot — a
// regression guard against reordering or dropping classes in phaseJSON.
func TestJSONHotClassArrayRoundTrip(t *testing.T) {
	r := NewRecorder()
	p := r.StartPhase("bsp/superstep", 2)
	for c := HotClass(0); c < NumHotClasses; c++ {
		p.AddHot(c, 100+int64(c))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Phases()
	if len(got) != 1 {
		t.Fatalf("phases = %d, want 1", len(got))
	}
	for c := HotClass(0); c < NumHotClasses; c++ {
		if got[0].Hot[c] != 100+int64(c) {
			t.Errorf("hot class %v = %d, want %d", c, got[0].Hot[c], 100+int64(c))
		}
	}
	if got[0].HotTotal() != p.HotTotal() {
		t.Errorf("hot total = %d, want %d", got[0].HotTotal(), p.HotTotal())
	}
}

// TestJSONUnknownVersionRejected checks unsupported versions fail with an
// error that names the version, for every flavor of "not version 1".
func TestJSONUnknownVersionRejected(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"future", `{"version": 2, "phases": []}`},
		{"zero", `{"version": 0, "phases": []}`},
		{"missing", `{"phases": []}`},
		{"negative", `{"version": -1, "phases": []}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("expected version error")
			}
			if !strings.Contains(err.Error(), "version") {
				t.Fatalf("error %q does not mention the version", err)
			}
		})
	}
}

// TestJSONTruncatedInput cuts a valid profile at several byte offsets and
// requires a decode error from every prefix — a partially copied profile
// must never parse as a shorter valid one.
func TestJSONTruncatedInput(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 4; i++ {
		p := r.StartPhase("cc/iter", i)
		p.AddTasks(10, 20, 30, 40)
		p.AddHot(HotMsgCounter, int64(i))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []int{0, 1, 2, 3} {
		cut := len(full) * frac / 4
		// Skip the empty prefix only if it somehow parses (it must not).
		if _, err := ReadJSON(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes parsed without error", cut, len(full))
		}
	}
	if _, err := ReadJSON(bytes.NewReader(full)); err != nil {
		t.Fatalf("full profile failed to parse: %v", err)
	}
}

// TestJSONRoundTripManyPhases exercises ordering: indices and names come
// back in recording order, not sorted.
func TestJSONRoundTripManyPhases(t *testing.T) {
	r := NewRecorder()
	names := []string{"bfs/level", "bfs/level", "stats/degrees", "bsp/scan"}
	for i, n := range names {
		p := r.StartPhase(n, len(names)-i) // deliberately non-monotone indices
		p.AddTasks(int64(i), 2, 3, 4)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Phases()
	if len(got) != len(names) {
		t.Fatalf("phases = %d, want %d", len(got), len(names))
	}
	for i, n := range names {
		if got[i].Name != n || got[i].Index != len(names)-i || got[i].Tasks != int64(i) {
			t.Fatalf("phase %d = %q/%d tasks=%d, want %q/%d tasks=%d",
				i, got[i].Name, got[i].Index, got[i].Tasks, n, len(names)-i, int64(i))
		}
	}
}
