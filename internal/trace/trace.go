// Package trace records work profiles: compact descriptions of the parallel
// work a graph kernel performed, phase by phase. A phase corresponds to one
// parallel region between barriers (one BSP superstep sub-phase, one
// iteration of a shared-memory kernel's parallel loop, one BFS level, ...).
//
// graphxmt separates correctness from performance: kernels execute for real
// on the host and, as they run, record how much work of each cost class each
// phase performed. The Cray XMT machine model (package machine) then turns a
// profile plus a processor count into simulated execution time. Simulated
// time is therefore a deterministic function of the recorded profile and
// never of host speed or host core count.
//
// Cost classes follow the quantities the paper's analysis is written in:
//
//   - Issue: instructions that retire from a stream without a memory round
//     trip (address arithmetic, compares, branches).
//   - Loads / Stores: reads and writes to the hashed global memory. The
//     paper counts these explicitly (e.g. the 181x write blowup of BSP
//     triangle counting).
//   - Hot ops: atomic fetch-and-add operations aimed at a SINGLE memory
//     word, which serialize in the memory system. The paper names this
//     exact mechanism: "serialization around a single atomic fetch-and-add
//     is possible, inhibiting scalability".
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// HotClass identifies a class of hotspot location. All operations recorded
// under one class within one phase are assumed to target the same memory
// word and therefore serialize against each other.
type HotClass uint8

const (
	// HotMsgCounter is the global message-queue tail counter a BSP engine
	// bumps with fetch-and-add for every message enqueued.
	HotMsgCounter HotClass = iota
	// HotQueueTail is the shared next-frontier queue tail used by the
	// level-synchronous shared-memory BFS.
	HotQueueTail
	// HotReduction is a single accumulator word (e.g. a global triangle
	// counter) updated by fetch-and-add.
	HotReduction
	// HotTermination is the shared vote-to-halt / "changed" flag word.
	HotTermination

	// NumHotClasses is the number of distinct hotspot classes.
	NumHotClasses
)

var hotClassNames = [NumHotClasses]string{
	"msg-counter", "queue-tail", "reduction", "termination",
}

// String returns a short human-readable name for the class.
func (h HotClass) String() string {
	if int(h) < len(hotClassNames) {
		return hotClassNames[h]
	}
	return fmt.Sprintf("hot(%d)", uint8(h))
}

// TaskCost describes one task's cost when detailed recording is enabled.
type TaskCost struct {
	Issue uint32
	Mem   uint32
}

// Phase is the work profile of one parallel region between barriers.
// Fields are updated with atomics so host-parallel kernels may record
// concurrently; use the Add* helpers rather than writing fields directly.
type Phase struct {
	Name  string // kernel-chosen label, e.g. "cc/iter"
	Index int    // iteration / superstep / level number

	Tasks  int64 // number of independent units of parallel work
	Issue  int64 // total issue-class ops across all tasks
	Loads  int64 // total global-memory reads
	Stores int64 // total global-memory writes

	// MaxTask is the cost (issue+mem ops) of the single largest task: the
	// phase's critical path. On scale-free graphs this is typically the
	// highest-degree vertex.
	MaxTask int64

	// Hot counts fetch-and-add operations per hotspot class.
	Hot [NumHotClasses]int64

	// Barriers is the number of full machine barriers this phase ends with
	// (usually 1).
	Barriers int64

	// Detail holds per-task costs when the recorder has detail enabled;
	// consumed by the discrete-event model. Nil otherwise.
	Detail []TaskCost

	detailMu sync.Mutex
}

// AddTasks records n tasks with aggregate costs. It is safe for concurrent
// use. Prefer one call per chunk over one call per element in hot loops.
func (p *Phase) AddTasks(n, issue, loads, stores int64) {
	atomic.AddInt64(&p.Tasks, n)
	atomic.AddInt64(&p.Issue, issue)
	atomic.AddInt64(&p.Loads, loads)
	atomic.AddInt64(&p.Stores, stores)
}

// AddHot records n fetch-and-add ops against the hotspot class c.
func (p *Phase) AddHot(c HotClass, n int64) {
	atomic.AddInt64(&p.Hot[c], n)
}

// ObserveTask updates the critical path with a task of the given total op
// count (issue + memory).
func (p *Phase) ObserveTask(ops int64) {
	for {
		cur := atomic.LoadInt64(&p.MaxTask)
		if ops <= cur || atomic.CompareAndSwapInt64(&p.MaxTask, cur, ops) {
			return
		}
	}
}

// AddDetail appends per-task costs for the discrete-event model.
func (p *Phase) AddDetail(tasks ...TaskCost) {
	p.detailMu.Lock()
	p.Detail = append(p.Detail, tasks...)
	p.detailMu.Unlock()
}

// Mem returns the total number of global memory operations.
func (p *Phase) Mem() int64 { return p.Loads + p.Stores }

// TotalOps returns issue plus memory plus hotspot ops.
func (p *Phase) TotalOps() int64 {
	t := p.Issue + p.Mem()
	for _, h := range p.Hot {
		t += h
	}
	return t
}

// HotTotal returns the total hotspot ops across all classes.
func (p *Phase) HotTotal() int64 {
	var t int64
	for _, h := range p.Hot {
		t += h
	}
	return t
}

// MaxHot returns the largest per-class hotspot count, i.e. the serialization
// bound of the worst single word.
func (p *Phase) MaxHot() int64 {
	var m int64
	for _, h := range p.Hot {
		if h > m {
			m = h
		}
	}
	return m
}

func (p *Phase) String() string {
	return fmt.Sprintf("%s[%d]{tasks=%d issue=%d loads=%d stores=%d hot=%d max=%d}",
		p.Name, p.Index, p.Tasks, p.Issue, p.Loads, p.Stores, p.HotTotal(), p.MaxTask)
}

// PhaseState is the value-type snapshot of a Phase: every profile field
// the machine model and the determinism tests consume, without the
// synchronization state (Phase embeds a mutex, so it cannot be copied as a
// struct). Detail (per-task costs) is intentionally excluded — it exists
// only for the discrete-event model and is not part of the checkpointable
// profile (see docs/ROBUSTNESS.md).
type PhaseState struct {
	Name     string
	Index    int
	Tasks    int64
	Issue    int64
	Loads    int64
	Stores   int64
	MaxTask  int64
	Hot      [NumHotClasses]int64
	Barriers int64
}

// State snapshots the phase's profile fields. The phase must be quiescent
// (no concurrent Add* calls), which holds at any superstep boundary.
func (p *Phase) State() PhaseState {
	return PhaseState{
		Name:     p.Name,
		Index:    p.Index,
		Tasks:    p.Tasks,
		Issue:    p.Issue,
		Loads:    p.Loads,
		Stores:   p.Stores,
		MaxTask:  p.MaxTask,
		Hot:      p.Hot,
		Barriers: p.Barriers,
	}
}

// NewPhaseFromState materializes a phase from a snapshot.
func NewPhaseFromState(s PhaseState) *Phase {
	return &Phase{
		Name:     s.Name,
		Index:    s.Index,
		Tasks:    s.Tasks,
		Issue:    s.Issue,
		Loads:    s.Loads,
		Stores:   s.Stores,
		MaxTask:  s.MaxTask,
		Hot:      s.Hot,
		Barriers: s.Barriers,
	}
}

// StateSnapshot snapshots every recorded phase, in order. Used by the BSP
// engine's checkpoint writer; the recorder must be quiescent.
func (r *Recorder) StateSnapshot() []PhaseState {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PhaseState, len(r.phases))
	for i, p := range r.phases {
		out[i] = p.State()
	}
	return out
}

// RestoreState replaces the recorder's phases with ones materialized from
// the snapshot, preserving the attached observer. Used on resume from a
// checkpoint so the accumulated profile continues bit-identically.
func (r *Recorder) RestoreState(states []PhaseState) {
	if r == nil {
		return
	}
	phases := make([]*Phase, len(states))
	for i, s := range states {
		phases[i] = NewPhaseFromState(s)
	}
	r.mu.Lock()
	r.phases = phases
	r.mu.Unlock()
}

// PhaseObserver receives a host-side notification for every StartPhase
// call on a Recorder it is attached to. It is the cross-link between the
// simulated work profile and host-runtime observability (package obs): a
// phase's wall-clock span is the gap between its StartPhase and the next
// one (or the observer's flush). Observers must not mutate the profile.
type PhaseObserver interface {
	PhaseStarted(name string, index int)
}

// Recorder accumulates the phases of one kernel execution.
type Recorder struct {
	mu     sync.Mutex
	phases []*Phase

	// DetailTasks enables per-task recording in kernels that support it
	// (needed by the discrete-event machine model). Set before running.
	DetailTasks bool

	// obs is an opaque host-observability attachment (set by CLIs, read
	// back by the BSP engine via Observer); po is its cached
	// PhaseObserver view, nil when the attachment doesn't observe phases.
	obs any
	po  PhaseObserver
}

// observerFactory, when set, attaches a fresh observer to every Recorder
// NewRecorder creates — the hook CLIs use to observe kernels that build
// their recorders internally (xmtbench's experiment suite).
var observerFactory func() any

// SetObserverFactory installs (or, with nil, clears) the process-wide
// observer factory and returns the previous one. Not safe to change while
// recorders are being created concurrently; CLIs set it once at startup.
func SetObserverFactory(f func() any) func() any {
	old := observerFactory
	observerFactory = f
	return old
}

// NewRecorder returns an empty Recorder (with the process's default
// observer attached, when a factory is installed).
func NewRecorder() *Recorder {
	r := &Recorder{}
	if observerFactory != nil {
		r.SetObserver(observerFactory())
	}
	return r
}

// SetObserver attaches a host-observability object to the recorder. If it
// implements PhaseObserver, StartPhase will notify it. A nil recorder
// ignores the call; attaching nil detaches.
func (r *Recorder) SetObserver(o any) {
	if r == nil {
		return
	}
	r.obs = o
	r.po, _ = o.(PhaseObserver)
}

// Observer returns the attached host-observability object, or nil.
func (r *Recorder) Observer() any {
	if r == nil {
		return nil
	}
	return r.obs
}

// Discard reports whether the recorder is nil, letting kernels accept a nil
// *Recorder to mean "don't record".
func (r *Recorder) Discard() bool { return r == nil }

// StartPhase appends and returns a new phase with the given name and index.
// A nil recorder returns a throwaway phase so kernels can record
// unconditionally.
func (r *Recorder) StartPhase(name string, index int) *Phase {
	p := &Phase{Name: name, Index: index, Barriers: 1}
	if r == nil {
		return p
	}
	r.mu.Lock()
	r.phases = append(r.phases, p)
	r.mu.Unlock()
	if r.po != nil {
		r.po.PhaseStarted(name, index)
	}
	return p
}

// Detail reports whether per-task detail should be recorded.
func (r *Recorder) Detail() bool { return r != nil && r.DetailTasks }

// Phases returns the recorded phases in order.
func (r *Recorder) Phases() []*Phase {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Phase(nil), r.phases...)
}

// PhasesNamed returns the recorded phases whose Name equals name.
func (r *Recorder) PhasesNamed(name string) []*Phase {
	var out []*Phase
	for _, p := range r.Phases() {
		if p.Name == name {
			out = append(out, p)
		}
	}
	return out
}

// Totals returns a synthetic phase holding the sums over all recorded
// phases (Tasks, ops, hotspots, barriers; MaxTask is the max over phases).
func (r *Recorder) Totals() *Phase {
	t := &Phase{Name: "totals"}
	for _, p := range r.Phases() {
		t.Tasks += p.Tasks
		t.Issue += p.Issue
		t.Loads += p.Loads
		t.Stores += p.Stores
		t.Barriers += p.Barriers
		for c := range p.Hot {
			t.Hot[c] += p.Hot[c]
		}
		if p.MaxTask > t.MaxTask {
			t.MaxTask = p.MaxTask
		}
	}
	return t
}

// Reset discards all recorded phases.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phases = nil
	r.mu.Unlock()
}
