package graph

import (
	"fmt"
	"sort"

	"graphxmt/internal/par"
)

// BuildOptions controls edge-list to CSR conversion.
type BuildOptions struct {
	// Directed selects a directed graph: each input edge becomes exactly
	// one adjacency entry U->V. When false (the default, matching the
	// paper's undirected RMAT inputs), each edge is stored in both
	// directions.
	Directed bool
	// KeepSelfLoops retains U==V edges. GraphCT kernels assume self-loops
	// are removed, so the default drops them.
	KeepSelfLoops bool
	// KeepDuplicates retains parallel edges. RMAT naturally generates
	// duplicates; the default collapses them, as the Graph500 reference
	// does before kernel timing.
	KeepDuplicates bool
	// SortAdjacency sorts every adjacency list ascending. Required by the
	// triangle counting kernels; cheap enough to be the default.
	SortAdjacency bool
	// Weights optionally supplies one weight per input edge (parallel to
	// the edge slice). Nil builds an unweighted graph. Duplicate collapse
	// keeps the minimum weight of a duplicate group.
	Weights []int64
}

// Build converts an edge list into a CSR Graph over vertices [0, n).
// Edges referencing vertices outside [0, n) are rejected.
func Build(n int64, edges []Edge, opt BuildOptions) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if opt.Weights != nil && len(opt.Weights) != len(edges) {
		return nil, fmt.Errorf("graph: %d weights for %d edges", len(opt.Weights), len(edges))
	}
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, n)
		}
	}

	// Materialize the directed entry list (possibly symmetrized), dropping
	// self-loops unless kept.
	type entry struct {
		u, v, w int64
	}
	entries := make([]entry, 0, len(edges)*2)
	for i, e := range edges {
		if e.U == e.V && !opt.KeepSelfLoops {
			continue
		}
		var w int64
		if opt.Weights != nil {
			w = opt.Weights[i]
		}
		entries = append(entries, entry{e.U, e.V, w})
		if !opt.Directed && e.U != e.V {
			entries = append(entries, entry{e.V, e.U, w})
		}
	}
	// A kept self-loop on an undirected graph is stored once (degree
	// contribution 1), matching GraphCT's convention.

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].u != entries[j].u {
			return entries[i].u < entries[j].u
		}
		if entries[i].v != entries[j].v {
			return entries[i].v < entries[j].v
		}
		return entries[i].w < entries[j].w
	})

	if !opt.KeepDuplicates {
		out := entries[:0]
		for _, e := range entries {
			if len(out) > 0 && out[len(out)-1].u == e.u && out[len(out)-1].v == e.v {
				continue // keep first = minimum weight due to sort order
			}
			out = append(out, e)
		}
		entries = out
	}

	g := &Graph{
		n:        n,
		directed: opt.Directed,
		sorted:   true, // entries are sorted by (u, v)
		offsets:  make([]int64, n+1),
		adj:      make([]int64, len(entries)),
	}
	if opt.Weights != nil {
		g.weights = make([]int64, len(entries))
	}
	counts := make([]int64, n)
	for _, e := range entries {
		counts[e.u]++
	}
	par.ExclusivePrefixSum(counts)
	copy(g.offsets, counts)
	g.offsets[n] = int64(len(entries))
	for i, e := range entries {
		g.adj[i] = e.v
		if g.weights != nil {
			g.weights[i] = e.w
		}
	}
	if !opt.SortAdjacency {
		g.sorted = sortedByConstruction(entries)
	}
	g.computeMaxDegree()
	return g, nil
}

// sortedByConstruction reports true because Build always emits entries in
// (u, v) order; kept for clarity if construction order ever changes.
func sortedByConstruction(_ interface{}) bool { return true }

// MustBuild is Build but panics on error; convenient in tests and examples
// with known-good inputs.
func MustBuild(n int64, edges []Edge, opt BuildOptions) *Graph {
	g, err := Build(n, edges, opt)
	if err != nil {
		panic(err)
	}
	return g
}

// FromCSR constructs a Graph directly from CSR arrays, taking ownership of
// the slices. It validates the structure.
func FromCSR(n int64, offsets, adj []int64, weights []int64, directed bool) (*Graph, error) {
	g := &Graph{n: n, offsets: offsets, adj: adj, weights: weights, directed: directed}
	// Validate the raw shape before touching Neighbors, which indexes
	// through offsets.
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.sorted = true
	for v := int64(0); v < n && g.sorted; v++ {
		nbr := g.Neighbors(v)
		for i := 1; i < len(nbr); i++ {
			if nbr[i-1] > nbr[i] {
				g.sorted = false
				break
			}
		}
	}
	g.computeMaxDegree()
	return g, nil
}

// Transpose returns the graph with every directed entry reversed. For an
// undirected graph it returns a structurally equal copy. A compressed
// graph is transposed through its flat twin; the result is flat.
func (g *Graph) Transpose() *Graph {
	if g.Compressed() {
		g = Decompress(g)
	}
	t := &Graph{
		n:        g.n,
		directed: g.directed,
		offsets:  make([]int64, g.n+1),
		adj:      make([]int64, len(g.adj)),
	}
	if g.weights != nil {
		t.weights = make([]int64, len(g.weights))
	}
	counts := make([]int64, g.n)
	for _, w := range g.adj {
		counts[w]++
	}
	par.ExclusivePrefixSum(counts)
	copy(t.offsets, counts)
	t.offsets[g.n] = int64(len(g.adj))
	next := make([]int64, g.n)
	copy(next, t.offsets[:g.n])
	for v := int64(0); v < g.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			w := g.adj[i]
			pos := next[w]
			next[w]++
			t.adj[pos] = v
			if t.weights != nil {
				t.weights[pos] = g.weights[i]
			}
		}
	}
	t.sortAdjacencyInPlace()
	t.computeMaxDegree()
	return t
}

// InducedSubgraph extracts the subgraph induced by the given vertices,
// which are relabeled 0..len(vertices)-1 in the order supplied. Duplicate
// vertices are rejected.
func (g *Graph) InducedSubgraph(vertices []int64) (*Graph, map[int64]int64, error) {
	relabel := make(map[int64]int64, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph: subgraph vertex %d out of range", v)
		}
		if _, dup := relabel[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate subgraph vertex %d", v)
		}
		relabel[v] = int64(i)
	}
	var edges []Edge
	var weights []int64
	for _, v := range vertices {
		nv := relabel[v]
		nbr := g.Neighbors(v)
		for i, w := range nbr {
			nw, ok := relabel[w]
			if !ok {
				continue
			}
			if !g.directed && nv > nw {
				continue // count undirected edges once
			}
			edges = append(edges, Edge{nv, nw})
			if g.weights != nil {
				weights = append(weights, g.NeighborWeights(v)[i])
			}
		}
	}
	opt := BuildOptions{
		Directed:      g.directed,
		SortAdjacency: true,
		KeepSelfLoops: true, // already filtered by the source graph's policy
	}
	if g.weights != nil {
		opt.Weights = weights
	}
	sub, err := Build(int64(len(vertices)), edges, opt)
	if err != nil {
		return nil, nil, err
	}
	return sub, relabel, nil
}

// sortAdjacencyInPlace sorts each adjacency list (with weights, if any).
func (g *Graph) sortAdjacencyInPlace() {
	par.For(int(g.n), func(vi int) {
		v := int64(vi)
		lo, hi := g.offsets[v], g.offsets[v+1]
		if g.weights == nil {
			s := g.adj[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return
		}
		a, w := g.adj[lo:hi], g.weights[lo:hi]
		idx := make([]int, len(a))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return a[idx[i]] < a[idx[j]] })
		na := make([]int64, len(a))
		nw := make([]int64, len(w))
		for i, k := range idx {
			na[i], nw[i] = a[k], w[k]
		}
		copy(a, na)
		copy(w, nw)
	})
	g.sorted = true
}

// EdgeList returns the graph's edges as an edge list. Undirected edges are
// emitted once with U <= V; directed entries are emitted as stored.
func (g *Graph) EdgeList() []Edge {
	var out []Edge
	for v := int64(0); v < g.n; v++ {
		for _, w := range g.Neighbors(v) {
			if g.directed || v <= w {
				out = append(out, Edge{v, w})
			}
		}
	}
	return out
}
