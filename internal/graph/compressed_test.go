package graph_test

import (
	"errors"
	"reflect"
	"testing"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
)

func rmatGraph(t testing.TB, scale, ef int) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.RMATConfig{Scale: scale, EdgeFactor: ef, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCompressRoundtrip checks that every accessor of the compressed twin
// agrees with the flat original, neighbor for neighbor.
func TestCompressRoundtrip(t *testing.T) {
	g := rmatGraph(t, 10, 8)
	c := graph.MustCompress(g)
	if !c.Compressed() || c.Rep() != graph.RepCompressed {
		t.Fatalf("compressed graph reports rep %q", c.Rep())
	}
	if g.Compressed() || g.Rep() != graph.RepFlat {
		t.Fatalf("flat graph reports rep %q", g.Rep())
	}
	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("compressed shape %d/%d, want %d/%d", c.NumVertices(), c.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if c.MaxDegree() != g.MaxDegree() {
		t.Fatalf("compressed max degree %d, want %d", c.MaxDegree(), g.MaxDegree())
	}
	if !c.SortedAdjacency() {
		t.Fatal("compressed graph not sorted")
	}
	if c.Adjacency() != nil {
		t.Fatal("compressed graph exposes a flat adjacency array")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyCompressed(); err != nil {
		t.Fatal(err)
	}
	var buf []int64
	for v := int64(0); v < g.NumVertices(); v++ {
		if c.Degree(v) != g.Degree(v) {
			t.Fatalf("vertex %d: degree %d, want %d", v, c.Degree(v), g.Degree(v))
		}
		want := g.Neighbors(v)
		if got := c.Neighbors(v); !equalInt64s(got, want) {
			t.Fatalf("vertex %d: Neighbors %v, want %v", v, got, want)
		}
		buf = c.DecodeNeighbors(v, buf[:0])
		if !equalInt64s(buf, want) {
			t.Fatalf("vertex %d: DecodeNeighbors %v, want %v", v, buf, want)
		}
		it := c.NeighborDecoder(v)
		for i, w := range want {
			got, ok := it.Next()
			if !ok || got != w {
				t.Fatalf("vertex %d: decoder pos %d = (%d,%v), want (%d,true)", v, i, got, ok, w)
			}
		}
		if got, ok := it.Next(); ok {
			t.Fatalf("vertex %d: decoder overruns with %d", v, got)
		}
	}
	// The blob should actually compress: scale-free varint deltas sit well
	// under the flat 8 bytes/entry.
	flatBytes := 8 * g.NumEdges()
	if got := int64(len(c.CompressedBlob())); got*2 > flatBytes {
		t.Fatalf("blob is %d bytes for %d flat bytes; expected >=2x compression", got, flatBytes)
	}
}

func TestDecompress(t *testing.T) {
	g := rmatGraph(t, 9, 6)
	c := graph.MustCompress(g)
	d := graph.Decompress(c)
	if d.Compressed() {
		t.Fatal("Decompress returned a compressed graph")
	}
	if !reflect.DeepEqual(d.Adjacency(), g.Adjacency()) {
		t.Fatal("decompressed adjacency differs from original")
	}
	if !reflect.DeepEqual(d.Offsets(), g.Offsets()) {
		t.Fatal("decompressed offsets differ from original")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Identity conversions.
	if graph.Decompress(g) != g {
		t.Fatal("Decompress of a flat graph is not the identity")
	}
	if c2, err := graph.Compress(c); err != nil || c2 != c {
		t.Fatalf("Compress of a compressed graph = (%v,%v), want identity", c2, err)
	}
}

func TestWithRep(t *testing.T) {
	g := rmatGraph(t, 8, 4)
	c, err := graph.WithRep(g, graph.RepCompressed)
	if err != nil || !c.Compressed() {
		t.Fatalf("WithRep compressed = (%v, %v)", c, err)
	}
	f, err := graph.WithRep(c, graph.RepFlat)
	if err != nil || f.Compressed() {
		t.Fatalf("WithRep flat = (%v, %v)", f, err)
	}
	if _, err := graph.WithRep(g, "bogus"); err == nil {
		t.Fatal("WithRep accepted an unknown representation")
	}
	if rep, ok := graph.ParseRep("compressed"); !ok || rep != graph.RepCompressed {
		t.Fatalf("ParseRep(compressed) = (%q,%v)", rep, ok)
	}
	if _, ok := graph.ParseRep("sparse"); ok {
		t.Fatal("ParseRep accepted an unknown representation")
	}
}

// TestCompressEdgeCases exercises the encodings the RMAT test cannot:
// backward first neighbors, self-loops (delta encodes v-v=0 via zigzag),
// kept duplicates (plain delta 0), weights, and degenerate graphs.
func TestCompressEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *graph.Graph
	}{
		{"empty", func(t *testing.T) *graph.Graph {
			return graph.MustBuild(0, nil, graph.BuildOptions{SortAdjacency: true})
		}},
		{"isolated", func(t *testing.T) *graph.Graph {
			return graph.MustBuild(5, nil, graph.BuildOptions{SortAdjacency: true})
		}},
		{"selfloop", func(t *testing.T) *graph.Graph {
			return graph.MustBuild(3, []graph.Edge{{U: 1, V: 1}, {U: 0, V: 2}},
				graph.BuildOptions{SortAdjacency: true, KeepSelfLoops: true})
		}},
		{"duplicates", func(t *testing.T) *graph.Graph {
			return graph.MustBuild(4, []graph.Edge{{U: 0, V: 3}, {U: 0, V: 3}, {U: 2, V: 1}},
				graph.BuildOptions{SortAdjacency: true, KeepDuplicates: true})
		}},
		{"weighted", func(t *testing.T) *graph.Graph {
			return graph.MustBuild(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}},
				graph.BuildOptions{SortAdjacency: true, Weights: []int64{7, -2, 9}})
		}},
		{"directed", func(t *testing.T) *graph.Graph {
			return graph.MustBuild(6, []graph.Edge{{U: 5, V: 0}, {U: 5, V: 4}, {U: 3, V: 1}},
				graph.BuildOptions{SortAdjacency: true, Directed: true})
		}},
		{"star", func(t *testing.T) *graph.Graph {
			edges := make([]graph.Edge, 63)
			for i := range edges {
				edges[i] = graph.Edge{U: 0, V: int64(i + 1)}
			}
			return graph.MustBuild(64, edges, graph.BuildOptions{SortAdjacency: true})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			c := graph.MustCompress(g)
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := c.VerifyCompressed(); err != nil {
				t.Fatal(err)
			}
			if c.NumEdges() != g.NumEdges() {
				t.Fatalf("edges %d, want %d", c.NumEdges(), g.NumEdges())
			}
			for v := int64(0); v < g.NumVertices(); v++ {
				if !equalInt64s(c.Neighbors(v), g.Neighbors(v)) {
					t.Fatalf("vertex %d: %v, want %v", v, c.Neighbors(v), g.Neighbors(v))
				}
				if g.Weighted() && !equalInt64s(c.NeighborWeights(v), g.NeighborWeights(v)) {
					t.Fatalf("vertex %d weights: %v, want %v", v, c.NeighborWeights(v), g.NeighborWeights(v))
				}
			}
			d := graph.Decompress(c)
			if !reflect.DeepEqual(d.Adjacency(), g.Adjacency()) {
				t.Fatal("decompress mismatch")
			}
			// HasEdge goes through the decoded list on compressed graphs.
			for v := int64(0); v < g.NumVertices(); v++ {
				for w := int64(0); w < g.NumVertices(); w++ {
					if c.HasEdge(v, w) != g.HasEdge(v, w) {
						t.Fatalf("HasEdge(%d,%d) = %v, flat says %v", v, w, c.HasEdge(v, w), g.HasEdge(v, w))
					}
				}
			}
		})
	}
}

func TestCompressRejectsUnsorted(t *testing.T) {
	g, err := graph.FromCSR(3, []int64{0, 2, 2, 2}, []int64{2, 1}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.SortedAdjacency() {
		t.Fatal("fixture unexpectedly sorted")
	}
	if _, err := graph.Compress(g); err == nil {
		t.Fatal("Compress accepted unsorted adjacency")
	}
}

func TestFromCompressedCSRValidates(t *testing.T) {
	g := rmatGraph(t, 6, 4)
	c := graph.MustCompress(g)
	ok, err := graph.FromCompressedCSR(c.NumVertices(), c.Offsets(), c.CompressedOffsets(), c.CompressedBlob(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok.NumEdges() != g.NumEdges() || !ok.SortedAdjacency() {
		t.Fatalf("reconstructed graph %v", ok)
	}
	n := c.NumVertices()
	bad := []struct {
		name string
		f    func() (*graph.Graph, error)
	}{
		{"short coff", func() (*graph.Graph, error) {
			return graph.FromCompressedCSR(n, c.Offsets(), c.CompressedOffsets()[:n], c.CompressedBlob(), nil, false)
		}},
		{"blob length", func() (*graph.Graph, error) {
			return graph.FromCompressedCSR(n, c.Offsets(), c.CompressedOffsets(), c.CompressedBlob()[:len(c.CompressedBlob())-1], nil, false)
		}},
		{"bytes below degree", func() (*graph.Graph, error) {
			coff := append([]int64(nil), c.CompressedOffsets()...)
			coff[1] = coff[0] // vertex 0 has degree > 0 in this fixture
			return graph.FromCompressedCSR(n, c.Offsets(), coff, c.CompressedBlob(), nil, false)
		}},
		{"weights length", func() (*graph.Graph, error) {
			return graph.FromCompressedCSR(n, c.Offsets(), c.CompressedOffsets(), c.CompressedBlob(), []int64{1, 2}, false)
		}},
	}
	if c.Degree(0) == 0 {
		t.Fatal("fixture vertex 0 has degree 0; pick another seed")
	}
	for _, tc := range bad {
		if _, err := tc.f(); err == nil {
			t.Errorf("%s: FromCompressedCSR accepted corrupt input", tc.name)
		}
	}
}

// TestDecodeAdjacencyErrors pins the typed errors of the checked decoder.
func TestDecodeAdjacencyErrors(t *testing.T) {
	g := graph.MustBuild(8, []graph.Edge{{U: 3, V: 1}, {U: 3, V: 5}, {U: 3, V: 6}},
		graph.BuildOptions{SortAdjacency: true, Directed: true})
	c := graph.MustCompress(g)
	block := append([]byte(nil), c.CompressedBlob()[c.CompressedOffsets()[3]:c.CompressedOffsets()[4]]...)
	want := []int64{1, 5, 6}
	got, err := graph.DecodeAdjacency(3, 8, 3, block, nil)
	if err != nil || !equalInt64s(got, want) {
		t.Fatalf("valid block decoded to (%v, %v), want %v", got, err, want)
	}
	fails := []struct {
		name string
		src  int64
		n    int64
		deg  int64
		data []byte
	}{
		{"truncated", 3, 8, 3, block[:len(block)-1]},
		{"empty with degree", 3, 8, 1, nil},
		{"trailing bytes", 3, 8, 2, block},
		{"overlong varint", 0, 8, 1, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}},
		{"unterminated varint", 0, 8, 1, []byte{0x80, 0x80}},
		{"first neighbor out of range", 0, 2, 1, []byte{0x08}}, // zigzag(4): 0+4 >= 2
		{"first neighbor negative", 1, 8, 1, []byte{0x05}},     // zigzag^-1(5) = -3: 1-3 < 0
		{"delta out of range", 0, 4, 2, []byte{0x02, 0x7f}},    // 1 + 127 >= 4
		{"negative degree", 0, 4, -1, nil},
	}
	for _, tc := range fails {
		_, err := graph.DecodeAdjacency(tc.src, tc.n, tc.deg, tc.data, nil)
		var de *graph.DecodeError
		if !errors.As(err, &de) {
			t.Errorf("%s: got %v, want *DecodeError", tc.name, err)
			continue
		}
		if de.Vertex != tc.src {
			t.Errorf("%s: error names vertex %d, want %d", tc.name, de.Vertex, tc.src)
		}
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
