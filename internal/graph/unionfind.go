package graph

// UnionFind is a disjoint-set forest with union by rank and path halving.
// It serves as the sequential reference for the connected-components
// kernels: both the GraphCT Shiloach-Vishkin kernel and the BSP label
// propagation algorithm must agree with it.
type UnionFind struct {
	parent []int64
	rank   []int8
	sets   int64
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int64) *UnionFind {
	uf := &UnionFind{
		parent: make([]int64, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = int64(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int64) int64 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y, reporting whether a merge happened.
func (uf *UnionFind) Union(x, y int64) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int64 { return uf.sets }

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int64) bool { return uf.Find(x) == uf.Find(y) }

// ReferenceComponents labels every vertex with the smallest vertex ID in
// its connected component using union-find, ignoring edge direction. It is
// the ground truth the parallel kernels are tested against.
func ReferenceComponents(g *Graph) []int64 {
	n := g.NumVertices()
	uf := NewUnionFind(n)
	for v := int64(0); v < n; v++ {
		for _, w := range g.Neighbors(v) {
			uf.Union(v, w)
		}
	}
	// Map each root to the minimum member ID for canonical labels.
	minOf := make(map[int64]int64)
	for v := int64(0); v < n; v++ {
		r := uf.Find(v)
		if m, ok := minOf[r]; !ok || v < m {
			minOf[r] = v
		}
	}
	labels := make([]int64, n)
	for v := int64(0); v < n; v++ {
		labels[v] = minOf[uf.Find(v)]
	}
	return labels
}

// CountComponents returns the number of distinct labels in a component
// labeling.
func CountComponents(labels []int64) int64 {
	seen := make(map[int64]struct{}, 64)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return int64(len(seen))
}

// ReferenceBFS computes single-source hop distances sequentially with a FIFO
// queue, ignoring edge weights; unreachable vertices get -1. Ground truth
// for the BFS kernels.
func ReferenceBFS(g *Graph, source int64) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	if source < 0 || source >= n {
		return dist
	}
	dist[source] = 0
	queue := []int64{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ReferenceTriangles counts triangles by brute force over vertex triples of
// adjacency (via neighbor-pair membership tests). O(sum deg^2); only for
// small test graphs. The graph must be undirected with no self-loops or
// duplicate edges.
func ReferenceTriangles(g *Graph) int64 {
	var count int64
	n := g.NumVertices()
	for v := int64(0); v < n; v++ {
		nbr := g.Neighbors(v)
		for i := 0; i < len(nbr); i++ {
			for j := i + 1; j < len(nbr); j++ {
				a, b := nbr[i], nbr[j]
				if a == v || b == v {
					continue
				}
				if g.HasEdge(a, b) {
					count++
				}
			}
		}
	}
	// Each triangle is counted once per corner.
	return count / 3
}

// LargestComponent extracts the induced subgraph of the largest connected
// component (a GraphCT workflow utility: analyses on scale-free graphs
// usually target the giant component). It returns the subgraph, the
// original vertex IDs of its members (index = new ID), and the component's
// size.
func LargestComponent(g *Graph) (*Graph, []int64, error) {
	labels := ReferenceComponents(g)
	sizes := make(map[int64]int64)
	for _, l := range labels {
		sizes[l]++
	}
	var bestLabel, bestSize int64 = -1, 0
	for l, s := range sizes {
		if s > bestSize || (s == bestSize && l < bestLabel) {
			bestLabel, bestSize = l, s
		}
	}
	var members []int64
	for v := int64(0); v < g.NumVertices(); v++ {
		if labels[v] == bestLabel {
			members = append(members, v)
		}
	}
	sub, _, err := g.InducedSubgraph(members)
	if err != nil {
		return nil, nil, err
	}
	return sub, members, nil
}
