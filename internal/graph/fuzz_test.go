package graph_test

import (
	"errors"
	"testing"

	"graphxmt/internal/graph"
)

// FuzzDecodeAdjacency hammers the checked varint/delta decoder with
// arbitrary byte blocks and degree/shape parameters. The contract under
// fuzz: DecodeAdjacency either returns a fully in-range, length-deg
// neighbor list, or a typed *graph.DecodeError — never a panic, and never
// a read outside the block (a slice over-read would panic and fail the
// fuzz run). Truncated blocks, overlong varints, and deltas that run past
// the vertex count are the seeded corpus.
func FuzzDecodeAdjacency(f *testing.F) {
	// A valid block: neighbors {1,5,6} of vertex 3 in an 8-vertex graph —
	// zigzag(1-3)=3, delta 4, delta 1.
	f.Add(int64(3), int64(8), int64(3), []byte{0x03, 0x04, 0x01})
	// Truncated mid-list and mid-varint.
	f.Add(int64(3), int64(8), int64(3), []byte{0x03, 0x04})
	f.Add(int64(3), int64(8), int64(2), []byte{0x03, 0x80})
	// Overlong varint (11 continuation bytes) and 64-bit overflow.
	f.Add(int64(0), int64(8), int64(1), []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add(int64(0), int64(8), int64(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	// First neighbor out of range (zigzag of a huge offset) and a delta
	// that walks past n.
	f.Add(int64(0), int64(2), int64(1), []byte{0x08})
	f.Add(int64(0), int64(4), int64(2), []byte{0x02, 0x7f})
	// Trailing garbage after a complete list.
	f.Add(int64(3), int64(8), int64(3), []byte{0x03, 0x04, 0x01, 0x00})
	// Degenerate shapes.
	f.Add(int64(0), int64(0), int64(0), []byte{})
	f.Add(int64(0), int64(4), int64(-1), []byte{0x00})

	f.Fuzz(func(t *testing.T, src, n, deg int64, data []byte) {
		if len(data) > 1<<16 || deg > 1<<16 {
			return // bound the work per input, not the coverage
		}
		nbr, err := graph.DecodeAdjacency(src, n, deg, data, nil)
		if err != nil {
			var de *graph.DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("non-typed error %T: %v", err, err)
			}
			if de.Vertex != src {
				t.Fatalf("error names vertex %d, want %d", de.Vertex, src)
			}
			if de.Offset < 0 || de.Offset > len(data) {
				t.Fatalf("error offset %d outside block of %d bytes", de.Offset, len(data))
			}
			return
		}
		// Success: the decode consumed the whole block into exactly deg
		// in-range neighbors.
		if int64(len(nbr)) != deg {
			t.Fatalf("decoded %d neighbors, want %d", len(nbr), deg)
		}
		for i, w := range nbr {
			if w < 0 || w >= n {
				t.Fatalf("neighbor %d = %d out of range [0,%d)", i, w, n)
			}
		}
	})
}
