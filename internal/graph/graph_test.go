package graph

import (
	"testing"
	"testing/quick"

	"graphxmt/internal/rng"
)

// triangleWithTail: 0-1-2 triangle, 2-3 tail, isolated 4.
func triangleWithTail(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(5, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}}, BuildOptions{SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasicUndirected(t *testing.T) {
	g := triangleWithTail(t)
	if g.NumVertices() != 5 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 8 {
		t.Fatalf("directed entries = %d, want 8", g.NumEdges())
	}
	if g.UndirectedEdges() != 4 {
		t.Fatalf("undirected edges = %d, want 4", g.UndirectedEdges())
	}
	if g.Directed() {
		t.Fatal("should be undirected")
	}
	wantDeg := []int64{2, 2, 3, 1, 0}
	for v, d := range wantDeg {
		if g.Degree(int64(v)) != d {
			t.Fatalf("deg(%d) = %d, want %d", v, g.Degree(int64(v)), d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDirected(t *testing.T) {
	g, err := Build(3, []Edge{{0, 1}, {1, 2}, {2, 0}}, BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.UndirectedEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directed edges wrong")
	}
}

func TestBuildDropsSelfLoopsAndDuplicates(t *testing.T) {
	g, err := Build(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {2, 2}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// {0,1} symmetrized = entries (0,1),(1,0); duplicates collapsed.
	if g.NumEdges() != 2 {
		t.Fatalf("entries = %d, want 2", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatal("self loop retained")
	}
}

func TestBuildKeepsSelfLoopsWhenAsked(t *testing.T) {
	g, err := Build(2, []Edge{{0, 0}, {0, 1}}, BuildOptions{KeepSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 0) {
		t.Fatal("self loop dropped")
	}
	if g.Degree(0) != 2 { // loop stored once + edge to 1
		t.Fatalf("deg(0) = %d, want 2", g.Degree(0))
	}
}

func TestBuildKeepsDuplicatesWhenAsked(t *testing.T) {
	g, err := Build(2, []Edge{{0, 1}, {0, 1}}, BuildOptions{KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("deg(0) = %d, want 2", g.Degree(0))
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 5}}, BuildOptions{}); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	if _, err := Build(2, []Edge{{-1, 0}}, BuildOptions{}); err == nil {
		t.Fatal("expected error for negative vertex")
	}
	if _, err := Build(-1, nil, BuildOptions{}); err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestBuildWeighted(t *testing.T) {
	g, err := Build(3, []Edge{{0, 1}, {1, 2}}, BuildOptions{Weights: []int64{7, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	w := g.NeighborWeights(0)
	if len(w) != 1 || w[0] != 7 {
		t.Fatalf("weights(0) = %v", w)
	}
	// Symmetrized entry 1->0 carries the same weight.
	nbr, wts := g.Neighbors(1), g.NeighborWeights(1)
	for i, x := range nbr {
		want := int64(7)
		if x == 2 {
			want = 9
		}
		if wts[i] != want {
			t.Fatalf("weight 1->%d = %d, want %d", x, wts[i], want)
		}
	}
}

func TestBuildWeightedDuplicateKeepsMin(t *testing.T) {
	g, err := Build(2, []Edge{{0, 1}, {0, 1}}, BuildOptions{Weights: []int64{9, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if w := g.NeighborWeights(0); len(w) != 1 || w[0] != 3 {
		t.Fatalf("weights = %v, want [3]", w)
	}
}

func TestBuildWeightsLengthMismatch(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 1}}, BuildOptions{Weights: []int64{1, 2}}); err == nil {
		t.Fatal("expected weights length error")
	}
}

func TestNeighborWeightsPanicsUnweighted(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 1}}, BuildOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.NeighborWeights(0)
}

func TestHasEdgeSortedAndUnsorted(t *testing.T) {
	g := triangleWithTail(t)
	if !g.SortedAdjacency() {
		t.Fatal("expected sorted adjacency")
	}
	cases := []struct {
		u, v int64
		want bool
	}{{0, 1, true}, {1, 0, true}, {0, 3, false}, {3, 2, true}, {4, 0, false}}
	for _, c := range cases {
		if g.HasEdge(c.u, c.v) != c.want {
			t.Fatalf("HasEdge(%d,%d) = %v", c.u, c.v, !c.want)
		}
	}
}

func TestTranspose(t *testing.T) {
	g, err := Build(4, []Edge{{0, 1}, {0, 2}, {3, 0}}, BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 0) || !tr.HasEdge(0, 3) {
		t.Fatal("transpose missing edges")
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", tr.NumEdges(), g.NumEdges())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Transposing twice restores the original.
	trtr := tr.Transpose()
	for v := int64(0); v < 4; v++ {
		a, b := g.Neighbors(v), trtr.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestTransposeUndirectedIsIdentity(t *testing.T) {
	g := triangleWithTail(t)
	tr := g.Transpose()
	for v := int64(0); v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), tr.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d: %v vs %v", v, a, b)
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangleWithTail(t)
	sub, relabel, err := g.InducedSubgraph([]int64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.UndirectedEdges() != 3 {
		t.Fatalf("sub = %v", sub)
	}
	if relabel[0] != 0 || relabel[2] != 2 {
		t.Fatalf("relabel = %v", relabel)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tail vertex excluded: edge 2-3 must not appear.
	if sub.Degree(2) != 2 {
		t.Fatalf("deg(2) in sub = %d, want 2", sub.Degree(2))
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := triangleWithTail(t)
	if _, _, err := g.InducedSubgraph([]int64{0, 0}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, _, err := g.InducedSubgraph([]int64{99}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangleWithTail(t)
	edges := g.EdgeList()
	if len(edges) != 4 {
		t.Fatalf("edge list = %v", edges)
	}
	g2, err := Build(g.NumVertices(), edges, BuildOptions{SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestFromCSR(t *testing.T) {
	g, err := FromCSR(3, []int64{0, 1, 2, 2}, []int64{1, 0}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong")
	}
	if _, err := FromCSR(3, []int64{0, 1}, []int64{1}, nil, false); err == nil {
		t.Fatal("expected offsets length error")
	}
	if _, err := FromCSR(2, []int64{0, 1, 2}, []int64{5, 0}, nil, true); err == nil {
		t.Fatal("expected out-of-range adjacency error")
	}
}

func TestMaxDegreeAndHistogram(t *testing.T) {
	g := triangleWithTail(t)
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
	h := g.DegreeHistogram()
	if h[0] != 1 || h[1] != 1 || h[2] != 2 || h[3] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestMaxDegreeMemoizedByEveryConstructor(t *testing.T) {
	// MaxDegree is computed at build time; verify each constructor fills it
	// by comparing against a fresh offsets scan.
	scan := func(g *Graph) int64 {
		var max int64
		for v := int64(0); v < g.NumVertices(); v++ {
			if d := g.Degree(v); d > max {
				max = d
			}
		}
		return max
	}

	// Build, with a hub of degree n-1 (star).
	n := int64(64)
	edges := make([]Edge, 0, n-1)
	for v := int64(1); v < n; v++ {
		edges = append(edges, Edge{0, v})
	}
	star := MustBuild(n, edges, BuildOptions{SortAdjacency: true})
	if got := star.MaxDegree(); got != n-1 || got != scan(star) {
		t.Fatalf("star MaxDegree = %d, want %d", got, n-1)
	}

	// FromCSR.
	csr, err := FromCSR(3, []int64{0, 2, 2, 2}, []int64{1, 2}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := csr.MaxDegree(); got != 2 || got != scan(csr) {
		t.Fatalf("FromCSR MaxDegree = %d, want 2", got)
	}

	// Transpose flips the star: max in-degree becomes 1.
	dirStar := MustBuild(n, edges, BuildOptions{Directed: true, SortAdjacency: true})
	tr := dirStar.Transpose()
	if got := tr.MaxDegree(); got != 1 || got != scan(tr) {
		t.Fatalf("transpose MaxDegree = %d, want 1", got)
	}

	// Empty graph.
	empty := MustBuild(0, nil, BuildOptions{})
	if empty.MaxDegree() != 0 {
		t.Fatalf("empty MaxDegree = %d, want 0", empty.MaxDegree())
	}
}

func TestStringForms(t *testing.T) {
	g := triangleWithTail(t)
	if g.String() == "" {
		t.Fatal("empty String()")
	}
}

// randomEdges builds a deterministic random edge list for property tests.
func randomEdges(seed uint64, n int64, m int) []Edge {
	r := rng.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{int64(r.Uint64n(uint64(n))), int64(r.Uint64n(uint64(n)))}
	}
	return edges
}

func TestBuildPropertyInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%50) + 1
		m := int(mRaw % 200)
		g, err := Build(n, randomEdges(seed, n, m), BuildOptions{SortAdjacency: true})
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSymmetryProperty(t *testing.T) {
	// Every undirected graph must have u in N(v) iff v in N(u).
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%30) + 2
		m := int(mRaw % 100)
		g, err := Build(n, randomEdges(seed, n, m), BuildOptions{})
		if err != nil {
			return false
		}
		for v := int64(0); v < n; v++ {
			for _, w := range g.Neighbors(v) {
				if !g.HasEdge(w, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("unions failed")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union reported as merge")
	}
	if uf.Sets() != 3 {
		t.Fatalf("sets = %d", uf.Sets())
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Fatal("Same wrong")
	}
}

func TestReferenceComponents(t *testing.T) {
	g := triangleWithTail(t)
	labels := ReferenceComponents(g)
	want := []int64{0, 0, 0, 0, 4}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	if CountComponents(labels) != 2 {
		t.Fatalf("components = %d", CountComponents(labels))
	}
}

func TestReferenceBFS(t *testing.T) {
	g := triangleWithTail(t)
	dist := ReferenceBFS(g, 0)
	want := []int64{0, 1, 1, 2, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
	if d := ReferenceBFS(g, -1); d[0] != -1 {
		t.Fatal("invalid source should give all -1")
	}
}

func TestReferenceTriangles(t *testing.T) {
	g := triangleWithTail(t)
	if n := ReferenceTriangles(g); n != 1 {
		t.Fatalf("triangles = %d, want 1", n)
	}
	// Complete graph K5 has C(5,3) = 10 triangles.
	var edges []Edge
	for i := int64(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	k5 := MustBuild(5, edges, BuildOptions{SortAdjacency: true})
	if n := ReferenceTriangles(k5); n != 10 {
		t.Fatalf("K5 triangles = %d, want 10", n)
	}
}

func TestReferenceBFSEdgeProperty(t *testing.T) {
	// For every edge (u,v) in a component, |d(u)-d(v)| <= 1.
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%40) + 2
		m := int(mRaw % 150)
		g, err := Build(n, randomEdges(seed, n, m), BuildOptions{})
		if err != nil {
			return false
		}
		dist := ReferenceBFS(g, 0)
		for v := int64(0); v < n; v++ {
			for _, w := range g.Neighbors(v) {
				dv, dw := dist[v], dist[w]
				if (dv < 0) != (dw < 0) {
					return false // one reachable, neighbor not
				}
				if dv >= 0 && dw >= 0 && dv-dw > 1 || dw-dv > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsMatchUnionFindProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%40) + 1
		m := int(mRaw % 150)
		g, err := Build(n, randomEdges(seed, n, m), BuildOptions{})
		if err != nil {
			return false
		}
		labels := ReferenceComponents(g)
		// Same label <=> connected via union-find built independently.
		uf := NewUnionFind(n)
		for _, e := range g.EdgeList() {
			uf.Union(e.U, e.V)
		}
		for v := int64(0); v < n; v++ {
			for w := int64(0); w < n; w++ {
				if (labels[v] == labels[w]) != uf.Same(v, w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLargestComponent(t *testing.T) {
	// Components: {0,1,2,3} (path), {4,5} (edge), {6} isolated.
	g := MustBuild(7, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}},
		BuildOptions{SortAdjacency: true})
	sub, members, err := LargestComponent(g)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 4 || len(members) != 4 {
		t.Fatalf("giant size = %d", sub.NumVertices())
	}
	for i, m := range members {
		if m != int64(i) {
			t.Fatalf("members = %v", members)
		}
	}
	if CountComponents(ReferenceComponents(sub)) != 1 {
		t.Fatal("giant component subgraph should be connected")
	}
	// An empty graph yields an empty component.
	empty := MustBuild(0, nil, BuildOptions{})
	sub2, members2, err := LargestComponent(empty)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.NumVertices() != 0 || len(members2) != 0 {
		t.Fatal("empty graph should give empty component")
	}
}

func TestLargestComponentProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%40) + 1
		g, err := Build(n, randomEdges(seed, n, int(mRaw%120)), BuildOptions{SortAdjacency: true})
		if err != nil {
			return false
		}
		sub, members, err := LargestComponent(g)
		if err != nil {
			return false
		}
		// Size matches the true largest component size.
		labels := ReferenceComponents(g)
		counts := map[int64]int64{}
		var best int64
		for _, l := range labels {
			counts[l]++
			if counts[l] > best {
				best = counts[l]
			}
		}
		return int64(len(members)) == best && sub.NumVertices() == best &&
			CountComponents(ReferenceComponents(sub)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetsAdjacencyAccessors(t *testing.T) {
	g := triangleWithTail(t)
	off := g.Offsets()
	adj := g.Adjacency()
	if int64(len(off)) != g.NumVertices()+1 {
		t.Fatalf("offsets len = %d", len(off))
	}
	if int64(len(adj)) != g.NumEdges() {
		t.Fatalf("adjacency len = %d", len(adj))
	}
	// Neighbors views must window into the flat arrays.
	for v := int64(0); v < g.NumVertices(); v++ {
		nbr := g.Neighbors(v)
		for i, w := range nbr {
			if adj[off[v]+int64(i)] != w {
				t.Fatalf("accessor mismatch at %d", v)
			}
		}
	}
}

func TestMustBuildPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustBuild(1, []Edge{{U: 0, V: 9}}, BuildOptions{})
}

func TestHasEdgeUnsortedPath(t *testing.T) {
	// FromCSR with deliberately unsorted adjacency exercises the linear
	// scan in HasEdge.
	g, err := FromCSR(3, []int64{0, 2, 3, 4}, []int64{2, 1, 0, 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.SortedAdjacency() {
		t.Skip("unexpectedly sorted")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(0, 1) || g.HasEdge(0, 0) {
		t.Fatal("unsorted HasEdge wrong")
	}
}

func TestValidateDetectsCorruptCSR(t *testing.T) {
	cases := []struct {
		n       int64
		offsets []int64
		adj     []int64
	}{
		{2, []int64{0, 2, 1}, []int64{1, 0}}, // decreasing offsets... offsets[n] != len? 1 != 2
		{2, []int64{1, 1, 2}, []int64{1, 0}}, // offsets[0] != 0
		{2, []int64{0, 1, 2}, []int64{1, 5}}, // adjacency out of range
		{2, []int64{0, 1}, []int64{1}},       // offsets too short
	}
	for i, c := range cases {
		if _, err := FromCSR(c.n, c.offsets, c.adj, nil, true); err == nil {
			t.Fatalf("case %d: corruption not detected", i)
		}
	}
}

func TestValidateLargeSymmetric(t *testing.T) {
	// Exercise the count-based symmetry path vs the degree-based one by
	// building a graph with > 2^20 entries? Too big for a unit test;
	// instead directly test the degree-based check through an asymmetric
	// large-ish CSR flagged undirected.
	// 3 vertices: 0->1 stored, but 1->0 missing.
	if _, err := FromCSR(3, []int64{0, 1, 1, 1}, []int64{1}, nil, false); err == nil {
		t.Fatal("asymmetric undirected CSR accepted")
	}
}

func TestStringDirected(t *testing.T) {
	g := MustBuild(2, []Edge{{U: 0, V: 1}}, BuildOptions{Directed: true})
	if g.String() == "" || g.String() == triangleWithTail(t).String() {
		t.Fatal("directed String() wrong")
	}
}

func TestSortAdjacencyInPlaceWeighted(t *testing.T) {
	// Transpose of a weighted directed graph exercises the weighted sort.
	g, err := Build(4, []Edge{{U: 3, V: 0}, {U: 3, V: 2}, {U: 3, V: 1}},
		BuildOptions{Directed: true, Weights: []int64{30, 32, 31}})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Transpose()
	// In the transpose, vertices 0,1,2 each point to 3 with their weight.
	for v := int64(0); v < 3; v++ {
		if w := tr.NeighborWeights(v); len(w) != 1 || w[0] != 30+v {
			t.Fatalf("transposed weight at %d = %v", v, w)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
