// Package graph provides the in-memory graph representation shared by every
// kernel in graphxmt: a compressed sparse row (CSR) structure equivalent to
// GraphCT's single, read-only graph data representation. The paper's two
// programming models (GraphCT shared-memory kernels and the BSP engine) both
// operate on this structure, exactly as the paper implements its BSP
// variants "with GraphCT in order to obtain a comparison with fewer
// variables".
//
// Vertices are identified by int64 IDs in [0, NumVertices()). Undirected
// graphs store each edge in both adjacency lists; NumEdges reports the
// number of stored (directed) entries, and UndirectedEdges reports
// NumEdges/2 for undirected graphs.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"graphxmt/internal/par"
)

// Edge is one endpoint pair of an edge list. For undirected graphs an edge
// should appear once in the list; Build symmetrizes it.
type Edge struct {
	U, V int64
}

// Graph is an immutable CSR graph. The zero value is an empty graph.
//
// The adjacency is stored in one of two representations (see compressed.go):
// flat (adj holds the int64 neighbor array) or delta-varint compressed
// (coff/blob hold per-vertex byte offsets and the encoded byte stream; adj
// is nil). The degree prefix sum (offsets) and the flat weight array are
// identical in both.
type Graph struct {
	n        int64
	offsets  []int64 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj      []int64 // flat representation; nil when compressed
	weights  []int64 // nil for unweighted; else parallel to the decoded adjacency
	directed bool
	sorted   bool  // every adjacency list is ascending
	maxDeg   int64 // memoized maximum out-degree (computed at build time)

	// Compressed representation (nil on flat graphs): the adjacency of v is
	// the delta-varint stream blob[coff[v]:coff[v+1]].
	coff []int64 // len n+1; byte offsets into blob
	blob []byte  // delta-varint encoded adjacency
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int64 { return g.n }

// NumEdges returns the number of stored directed adjacency entries. For an
// undirected graph this is twice the number of undirected edges.
func (g *Graph) NumEdges() int64 {
	if g.coff != nil {
		return g.offsets[g.n]
	}
	return int64(len(g.adj))
}

// UndirectedEdges returns the number of undirected edges (NumEdges/2) for
// undirected graphs, and NumEdges for directed graphs.
func (g *Graph) UndirectedEdges() int64 {
	if g.directed {
		return g.NumEdges()
	}
	return g.NumEdges() / 2
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// SortedAdjacency reports whether every adjacency list is in ascending
// order (required by the intersection-based triangle counting kernels).
func (g *Graph) SortedAdjacency() bool { return g.sorted }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int64) int64 {
	return g.offsets[v+1] - g.offsets[v]
}

// Neighbors returns the adjacency list of v. On flat graphs it is the
// shared, read-only CSR slice; callers must not modify it. On compressed
// graphs it decodes into a fresh slice — hot loops should prefer
// DecodeNeighbors (caller-owned buffer) or NeighborDecoder (streaming).
func (g *Graph) Neighbors(v int64) []int64 {
	if g.coff != nil {
		return g.DecodeNeighbors(v, nil)
	}
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v). It panics
// on unweighted graphs.
func (g *Graph) NeighborWeights(v int64) []int64 {
	if g.weights == nil {
		panic("graph: NeighborWeights on unweighted graph")
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the directed entry u->v is stored. O(log d) on
// sorted graphs, O(d) otherwise.
func (g *Graph) HasEdge(u, v int64) bool {
	nbr := g.Neighbors(u)
	if g.sorted {
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= v })
		return i < len(nbr) && nbr[i] == v
	}
	for _, w := range nbr {
		if w == v {
			return true
		}
	}
	return false
}

// Offsets exposes the CSR row offsets (len NumVertices+1). Read-only.
// Offsets is also the graph's degree prefix sum — Offsets()[v] is the total
// out-degree of vertices [0, v) — which is what the BSP engine's
// degree-weighted sweep chunking splits into near-equal edge-work chunks.
// Identical in both representations.
func (g *Graph) Offsets() []int64 { return g.offsets }

// Adjacency exposes the flat adjacency array; nil on compressed graphs
// (use NumEdges for the entry count, Neighbors/NeighborDecoder to read).
// Read-only.
func (g *Graph) Adjacency() []int64 { return g.adj }

// Weights exposes the flat weight array parallel to the (decoded)
// adjacency, or nil on unweighted graphs; identical in both
// representations. Read-only.
func (g *Graph) Weights() []int64 { return g.weights }

// MaxDegree returns the maximum out-degree, or 0 for an empty graph. The
// value is memoized at build time (Build, FromCSR, Transpose), so calls
// are O(1).
func (g *Graph) MaxDegree() int64 { return g.maxDeg }

// computeMaxDegree scans the offsets once; called by every constructor
// after the CSR arrays are final.
func (g *Graph) computeMaxDegree() {
	g.maxDeg = par.MaxInt64(int(g.n), 0, func(v int) int64 {
		return g.offsets[v+1] - g.offsets[v]
	})
}

// DegreeHistogram returns counts of vertices per degree value, as a map
// from degree to vertex count.
func (g *Graph) DegreeHistogram() map[int64]int64 {
	h := make(map[int64]int64)
	for v := int64(0); v < g.n; v++ {
		h[g.Degree(v)]++
	}
	return h
}

// Validate checks structural invariants and returns the first violation.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return errors.New("graph: negative vertex count")
	}
	if int64(len(g.offsets)) != g.n+1 {
		return fmt.Errorf("graph: offsets len %d, want %d", len(g.offsets), g.n+1)
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	for v := int64(0); v < g.n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets decrease at %d", v)
		}
	}
	if g.coff != nil {
		// Compressed representation: O(n) structural checks only — the
		// varint stream is validated by the encoder (Compress) or an
		// explicit VerifyCompressed sweep, never on the load path.
		return g.validateCompressed()
	}
	if g.offsets[g.n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[g.n], len(g.adj))
	}
	for i, w := range g.adj {
		if w < 0 || w >= g.n {
			return fmt.Errorf("graph: adj[%d] = %d out of range", i, w)
		}
	}
	if g.weights != nil && len(g.weights) != len(g.adj) {
		return fmt.Errorf("graph: weights len %d != adj len %d", len(g.weights), len(g.adj))
	}
	if g.sorted {
		for v := int64(0); v < g.n; v++ {
			nbr := g.Neighbors(v)
			for i := 1; i < len(nbr); i++ {
				if nbr[i-1] > nbr[i] {
					return fmt.Errorf("graph: adjacency of %d not sorted", v)
				}
			}
		}
	}
	if !g.directed {
		if err := g.checkSymmetric(); err != nil {
			return err
		}
	}
	return nil
}

func (g *Graph) checkSymmetric() error {
	// Count-based symmetry check: multiset of (u,v) must equal multiset of
	// (v,u). We verify via per-pair counting with a map on small graphs and
	// via reverse-degree counting on large ones.
	if g.NumEdges() <= 1<<20 {
		count := make(map[Edge]int64, g.NumEdges())
		for v := int64(0); v < g.n; v++ {
			for _, w := range g.Neighbors(v) {
				count[Edge{v, w}]++
			}
		}
		for e, c := range count {
			if count[Edge{e.V, e.U}] != c {
				return fmt.Errorf("graph: asymmetric edge %d->%d", e.U, e.V)
			}
		}
		return nil
	}
	inDeg := make([]int64, g.n)
	for _, w := range g.adj {
		inDeg[w]++
	}
	for v := int64(0); v < g.n; v++ {
		if inDeg[v] != g.Degree(v) {
			return fmt.Errorf("graph: vertex %d in-degree %d != out-degree %d",
				v, inDeg[v], g.Degree(v))
		}
	}
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s, %d vertices, %d edges}", kind, g.n, g.UndirectedEdges())
}
