package graph

import (
	"encoding/binary"
	"errors"
	"fmt"

	"graphxmt/internal/par"
)

// Compressed CSR backing: sorted adjacency lists stored as delta-encoded
// varints instead of flat int64s, the GBBS-style byte compression that cuts
// graph-resident memory 2-5x on scale-free inputs at equal sweep
// throughput. The layout per vertex v is
//
//	zigzag-varint(nbr[0] - v), varint(nbr[1]-nbr[0]), varint(nbr[2]-nbr[1]), ...
//
// — the first neighbor is signed (a neighbor may precede its source), every
// later delta is non-negative because the list is sorted. A parallel byte
// offsets array coff (len n+1, the byte prefix sum) locates each vertex's
// block in the blob, and the ordinary degree prefix sum (Graph.Offsets)
// stays uncompressed, so Degree, degree-weighted sweep chunking, and the
// direction heuristic's unvisited-edge counters work unchanged on either
// representation.

// Rep names a graph representation; CLIs expose it as -graph-rep.
type Rep string

const (
	// RepFlat is the ordinary int64 CSR (16 bytes/edge when weighted,
	// 8 bytes/edge otherwise).
	RepFlat Rep = "flat"
	// RepCompressed is the delta-varint byte-compressed CSR.
	RepCompressed Rep = "compressed"
)

// ParseRep parses a -graph-rep flag value.
func ParseRep(s string) (Rep, bool) {
	switch Rep(s) {
	case RepFlat, RepCompressed:
		return Rep(s), true
	}
	return "", false
}

// Compressed reports whether the graph stores its adjacency in the
// delta-varint compressed form.
func (g *Graph) Compressed() bool { return g.coff != nil }

// Rep returns the graph's representation name.
func (g *Graph) Rep() Rep {
	if g.Compressed() {
		return RepCompressed
	}
	return RepFlat
}

// CompressedOffsets exposes the per-vertex byte offsets into the compressed
// blob (len NumVertices+1); nil on flat graphs. Read-only.
func (g *Graph) CompressedOffsets() []int64 { return g.coff }

// CompressedBlob exposes the delta-varint adjacency bytes; nil on flat
// graphs. Read-only.
func (g *Graph) CompressedBlob() []byte { return g.blob }

// DecodeError reports a structurally invalid compressed adjacency block:
// truncation, an overlong varint, or a decoded neighbor outside [0, n).
// The checked decoder (DecodeAdjacency) returns it instead of panicking or
// reading past the block, whatever bytes it is handed.
type DecodeError struct {
	// Vertex is the source vertex whose block failed.
	Vertex int64
	// Offset is the byte offset within the vertex's block.
	Offset int
	// Reason describes the violation.
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("graph: corrupt adjacency of vertex %d at byte %d: %s", e.Vertex, e.Offset, e.Reason)
}

// zigzag maps a signed delta onto an unsigned varint payload so small
// negative first-neighbor offsets stay short.
func zigzag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the encoded size of x (1-10 bytes).
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// DecodeAdjacency is the checked decoder: it decodes exactly deg neighbors
// of src from data into buf (reusing its capacity) and validates every
// step — truncated blocks, overlong varints (more than 10 bytes or 64-bit
// overflow), neighbors outside [0, n), and trailing bytes all return a
// typed *DecodeError without panicking or reading outside data. The hot
// paths (DecodeNeighbors, NeighborDecoder) skip these checks because the
// blob is validated at construction; this entry point is for loaders,
// verification sweeps, and the fuzz harness.
func DecodeAdjacency(src, n, deg int64, data []byte, buf []int64) ([]int64, error) {
	fail := func(off int, reason string) ([]int64, error) {
		return nil, &DecodeError{Vertex: src, Offset: off, Reason: reason}
	}
	if deg < 0 {
		return fail(0, fmt.Sprintf("negative degree %d", deg))
	}
	if int64(cap(buf)) < deg {
		buf = make([]int64, deg)
	}
	buf = buf[:deg]
	pos := 0
	prev := int64(0)
	for i := int64(0); i < deg; i++ {
		u, k := binary.Uvarint(data[pos:])
		if k == 0 {
			return fail(pos, "truncated varint")
		}
		if k < 0 {
			return fail(pos, "overlong varint")
		}
		if i == 0 {
			// First neighbor: zig-zag offset from the source. Bound the
			// offset before adding so src+d cannot overflow.
			d := unzigzag(u)
			if d < -src || d > n-1-src {
				return fail(pos, fmt.Sprintf("first neighbor %d+(%d) out of range [0,%d)", src, d, n))
			}
			prev = src + d
		} else {
			// Later deltas are non-negative; bound before adding so
			// prev+delta cannot overflow.
			if u > uint64(n-1-prev) {
				return fail(pos, fmt.Sprintf("delta %d from %d out of range [0,%d)", u, prev, n))
			}
			prev += int64(u)
		}
		buf[i] = prev
		pos += k
	}
	if pos != len(data) {
		return fail(pos, fmt.Sprintf("%d trailing bytes after %d neighbors", len(data)-pos, deg))
	}
	return buf, nil
}

// fastUvarint is the unchecked hot-path varint read: single-byte values
// (the overwhelming majority of deltas on a sorted scale-free graph) take
// one branch. Reads beyond the block slice bounds-check-panic rather than
// over-reading; the blob's structure is validated at construction
// (Compress, FromCompressedCSR), so that cannot happen on a valid graph.
func fastUvarint(b []byte, pos int) (uint64, int) {
	c := b[pos]
	if c < 0x80 {
		return uint64(c), pos + 1
	}
	x := uint64(c & 0x7f)
	shift := uint(7)
	for {
		pos++
		c = b[pos]
		x |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return x, pos + 1
		}
		shift += 7
	}
}

// DecodeNeighbors returns the adjacency list of v. On flat graphs it is
// Neighbors — the shared CSR slice, zero copy, buf unused. On compressed
// graphs it decodes into buf (reusing its capacity, growing as needed) and
// returns buf[:degree]; passing the previous call's return value amortizes
// the allocation to the run's maximum degree. Callers must not modify the
// result on flat graphs.
func (g *Graph) DecodeNeighbors(v int64, buf []int64) []int64 {
	if g.coff == nil {
		return g.adj[g.offsets[v]:g.offsets[v+1]]
	}
	deg := g.offsets[v+1] - g.offsets[v]
	if int64(cap(buf)) < deg {
		buf = make([]int64, deg)
	}
	buf = buf[:deg]
	data := g.blob[g.coff[v]:g.coff[v+1]]
	pos := 0
	var prev int64
	for i := range buf {
		u, next := fastUvarint(data, pos)
		pos = next
		if i == 0 {
			prev = v + unzigzag(u)
		} else {
			prev += int64(u)
		}
		buf[i] = prev
	}
	return buf
}

// NeighborDecoder streams the adjacency list of one vertex without
// materializing it — the decode-on-scatter path: a broadcast scatter or
// pull sweep walks edges one Next at a time, so pure-broadcast supersteps
// on a compressed graph never allocate decoded lists. The zero value is an
// exhausted decoder. On flat graphs it iterates the shared CSR slice.
type NeighborDecoder struct {
	flat []int64 // flat-representation source; nil on compressed graphs
	data []byte  // vertex's compressed block
	pos  int
	prev int64
	i    int64
	deg  int64
	src  int64
}

// NeighborDecoder returns a streaming decoder positioned at v's first
// neighbor.
func (g *Graph) NeighborDecoder(v int64) NeighborDecoder {
	if g.coff == nil {
		nbr := g.adj[g.offsets[v]:g.offsets[v+1]]
		return NeighborDecoder{flat: nbr, deg: int64(len(nbr))}
	}
	return NeighborDecoder{
		data: g.blob[g.coff[v]:g.coff[v+1]],
		deg:  g.offsets[v+1] - g.offsets[v],
		src:  v,
	}
}

// Next returns the next neighbor, or ok=false when the list is exhausted.
func (d *NeighborDecoder) Next() (int64, bool) {
	if d.i >= d.deg {
		return 0, false
	}
	if d.flat != nil {
		w := d.flat[d.i]
		d.i++
		return w, true
	}
	u, next := fastUvarint(d.data, d.pos)
	d.pos = next
	if d.i == 0 {
		d.prev = d.src + unzigzag(u)
	} else {
		d.prev += int64(u)
	}
	d.i++
	return d.prev, true
}

// Compress returns the delta-varint compressed twin of g, sharing the
// degree prefix sum and the (flat) weight array. The encoder is the
// parallel two-pass scheme: a sizing sweep per vertex, an exclusive prefix
// sum over the byte lengths, then an encoding sweep into the final blob —
// no per-vertex allocation, deterministic output bytes. Compressing a
// compressed graph returns it unchanged; unsorted adjacency is rejected
// because the delta encoding requires non-decreasing lists.
func Compress(g *Graph) (*Graph, error) {
	if g.Compressed() {
		return g, nil
	}
	if !g.sorted {
		return nil, errors.New("graph: Compress requires sorted adjacency")
	}
	n := g.n
	coff := make([]int64, n+1)
	par.ForChunked(int(n), func(lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := int64(vi)
			nbr := g.adj[g.offsets[v]:g.offsets[v+1]]
			var sz int64
			if len(nbr) > 0 {
				sz = int64(uvarintLen(zigzag(nbr[0] - v)))
				for i := 1; i < len(nbr); i++ {
					sz += int64(uvarintLen(uint64(nbr[i] - nbr[i-1])))
				}
			}
			coff[v] = sz
		}
	})
	total := par.ParallelExclusivePrefixSum(coff[:n])
	coff[n] = total
	blob := make([]byte, total)
	par.ForChunked(int(n), func(lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := int64(vi)
			nbr := g.adj[g.offsets[v]:g.offsets[v+1]]
			if len(nbr) == 0 {
				continue
			}
			pos := coff[v]
			pos += int64(binary.PutUvarint(blob[pos:coff[v+1]], zigzag(nbr[0]-v)))
			for i := 1; i < len(nbr); i++ {
				pos += int64(binary.PutUvarint(blob[pos:coff[v+1]], uint64(nbr[i]-nbr[i-1])))
			}
		}
	})
	return &Graph{
		n:        n,
		offsets:  g.offsets,
		weights:  g.weights,
		directed: g.directed,
		sorted:   true,
		maxDeg:   g.maxDeg,
		coff:     coff,
		blob:     blob,
	}, nil
}

// MustCompress is Compress but panics on error; convenient in tests with
// known-sorted inputs.
func MustCompress(g *Graph) *Graph {
	c, err := Compress(g)
	if err != nil {
		panic(err)
	}
	return c
}

// Decompress returns the flat twin of a compressed graph (sharing offsets
// and weights); a flat graph is returned unchanged.
func Decompress(g *Graph) *Graph {
	if !g.Compressed() {
		return g
	}
	adj := make([]int64, g.offsets[g.n])
	par.ForChunked(int(g.n), func(lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := int64(vi)
			g.DecodeNeighbors(v, adj[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]])
		}
	})
	return &Graph{
		n:        g.n,
		offsets:  g.offsets,
		adj:      adj,
		weights:  g.weights,
		directed: g.directed,
		sorted:   true,
		maxDeg:   g.maxDeg,
	}
}

// WithRep converts g to the requested representation (no-op when it is
// already there).
func WithRep(g *Graph, rep Rep) (*Graph, error) {
	switch rep {
	case RepFlat:
		return Decompress(g), nil
	case RepCompressed:
		return Compress(g)
	}
	return nil, fmt.Errorf("graph: unknown representation %q", rep)
}

// FromCompressedCSR constructs a compressed Graph from its stored arrays,
// taking ownership of the slices — the zero-copy entry point the GXMTCSR2
// mmap loader uses. Validation is strictly O(n) (shape, monotonicity, and
// per-vertex byte-count bounds): the blob's varint stream is NOT decoded,
// so loading stays an open+map regardless of edge count. Run
// VerifyCompressed for the full O(E) checked decode.
//
// Adjacency lists are sorted by format contract (the encoder only accepts
// sorted lists), so SortedAdjacency reports true.
func FromCompressedCSR(n int64, offsets, coff []int64, blob []byte, weights []int64, directed bool) (*Graph, error) {
	g := &Graph{
		n:        n,
		offsets:  offsets,
		weights:  weights,
		directed: directed,
		sorted:   true,
		coff:     coff,
		blob:     blob,
	}
	if g.coff == nil {
		g.coff = make([]int64, 1)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.computeMaxDegree()
	return g, nil
}

// VerifyCompressed runs the checked decoder over every vertex of a
// compressed graph — the O(E) integrity sweep FromCompressedCSR skips. It
// returns the first *DecodeError, a sortedness violation, or nil. On flat
// graphs it returns nil.
func (g *Graph) VerifyCompressed() error {
	if !g.Compressed() {
		return nil
	}
	var buf []int64
	for v := int64(0); v < g.n; v++ {
		deg := g.offsets[v+1] - g.offsets[v]
		nbr, err := DecodeAdjacency(v, g.n, deg, g.blob[g.coff[v]:g.coff[v+1]], buf)
		if err != nil {
			return err
		}
		buf = nbr[:0]
		for i := 1; i < len(nbr); i++ {
			if nbr[i-1] > nbr[i] {
				return &DecodeError{Vertex: v, Offset: 0, Reason: "adjacency not sorted"}
			}
		}
	}
	return nil
}

// validateCompressed is the O(n) structural check for the compressed
// representation (called from Validate): offsets and coff shapes, byte
// counts consistent with degrees (a degree-d block is 1-10 bytes per
// neighbor, zero iff d is zero), and the weight array parallel to the
// decoded adjacency.
func (g *Graph) validateCompressed() error {
	if int64(len(g.coff)) != g.n+1 {
		return fmt.Errorf("graph: compressed offsets len %d, want %d", len(g.coff), g.n+1)
	}
	if g.coff[0] != 0 {
		return fmt.Errorf("graph: compressed offsets[0] = %d, want 0", g.coff[0])
	}
	if g.coff[g.n] != int64(len(g.blob)) {
		return fmt.Errorf("graph: compressed offsets[n] = %d, want blob length %d", g.coff[g.n], len(g.blob))
	}
	for v := int64(0); v < g.n; v++ {
		deg := g.offsets[v+1] - g.offsets[v]
		bytes := g.coff[v+1] - g.coff[v]
		if bytes < 0 {
			return fmt.Errorf("graph: compressed offsets decrease at %d", v)
		}
		// Every encoded neighbor is 1-10 bytes; an empty list is 0 bytes.
		if bytes < deg || bytes > 10*deg {
			return fmt.Errorf("graph: vertex %d has %d compressed bytes for degree %d", v, bytes, deg)
		}
	}
	if g.weights != nil && int64(len(g.weights)) != g.offsets[g.n] {
		return fmt.Errorf("graph: weights len %d != edge count %d", len(g.weights), g.offsets[g.n])
	}
	return nil
}
