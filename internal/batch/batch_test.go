package batch

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNewPlanStableDedupe(t *testing.T) {
	p, err := NewPlan([]int64{5, 9, 5, 2, 9, 5, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantSources := []int64{5, 9, 2, 0}
	if !reflect.DeepEqual(p.Sources, wantSources) {
		t.Fatalf("Sources = %v, want %v", p.Sources, wantSources)
	}
	wantLane := []int{0, 1, 0, 2, 1, 0, 3}
	if !reflect.DeepEqual(p.Lane, wantLane) {
		t.Fatalf("Lane = %v, want %v", p.Lane, wantLane)
	}
	if p.Occupancy() != 4 {
		t.Fatalf("Occupancy = %d, want 4", p.Occupancy())
	}
	if p.String() != "5,9,2,0" {
		t.Fatalf("String = %q, want %q", p.String(), "5,9,2,0")
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan(nil, 10); err == nil {
		t.Error("empty source list: want error")
	}
	if _, err := NewPlan([]int64{10}, 10); err == nil {
		t.Error("out-of-range source: want error")
	}
	if _, err := NewPlan([]int64{-1}, 10); err == nil {
		t.Error("negative source: want error")
	}
	over := make([]int64, MaxLanes+1)
	for i := range over {
		over[i] = int64(i)
	}
	if _, err := NewPlan(over, 1000); err == nil {
		t.Errorf("%d unique sources: want error", MaxLanes+1)
	}
	if p, err := NewPlan(over[:MaxLanes], 1000); err != nil || p.Occupancy() != MaxLanes {
		t.Errorf("exactly %d unique sources should plan; got %v, err %v", MaxLanes, p, err)
	}
}

// TestNewPlanProperty: any source list with at most MaxLanes unique
// in-range entries (duplicates free) maps stably — lane order is first
// occurrence, every query's lane answers its source, and re-planning the
// same list reproduces the assignment bit-for-bit.
func TestNewPlanProperty(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		uniq := 1 + rng.Intn(MaxLanes)
		pool := rng.Perm(n)[:uniq]
		list := make([]int64, 1+rng.Intn(3*MaxLanes))
		for i := range list {
			list[i] = int64(pool[rng.Intn(uniq)])
		}
		p, err := NewPlan(list, n)
		if err != nil {
			t.Fatalf("trial %d: %v (list %v)", trial, err, list)
		}
		// Lane order is first occurrence.
		seen := map[int64]bool{}
		var firsts []int64
		for _, s := range list {
			if !seen[s] {
				seen[s] = true
				firsts = append(firsts, s)
			}
		}
		if !reflect.DeepEqual(p.Sources, firsts) {
			t.Fatalf("trial %d: Sources = %v, want first-occurrence order %v", trial, p.Sources, firsts)
		}
		// Every query maps to the lane owning its source.
		for i, s := range list {
			if p.Sources[p.Lane[i]] != s {
				t.Fatalf("trial %d: query %d (source %d) mapped to lane %d owning %d",
					trial, i, s, p.Lane[i], p.Sources[p.Lane[i]])
			}
		}
		// Stability: same list, same plan.
		again, err := NewPlan(list, n)
		if err != nil || !reflect.DeepEqual(p, again) {
			t.Fatalf("trial %d: replanning diverged: %v vs %v (err %v)", trial, p, again, err)
		}
	}
}

func TestParseSources(t *testing.T) {
	got, err := ParseSources(" 5,17 , 99,5", 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{5, 17, 99, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseSources = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "5,,7", "abc", "5,x", "100", "-1", "5, 100"} {
		if _, err := ParseSources(bad, 100); err == nil {
			t.Errorf("ParseSources(%q): want error", bad)
		}
	}
}

func TestFormatSources(t *testing.T) {
	if got := FormatSources([]int64{3, 1, 2}); got != "3,1,2" {
		t.Fatalf("FormatSources = %q", got)
	}
	if got := FormatSources(nil); got != "" {
		t.Fatalf("FormatSources(nil) = %q, want empty", got)
	}
}
