// Package batch plans multi-source batched query execution: up to 64
// same-algorithm queries share one BSP engine run, each query owning one
// bit lane of a per-vertex uint64 frontier mask (MS-BFS style — see
// internal/bspalg's MultiBFS). The planner is deliberately tiny and
// deterministic: a source list maps to the same lane assignment on every
// host, at every worker count, and across checkpoint/resume — the lane
// order is pinned in checkpoint fingerprints, so this stability is a
// correctness property, not a convenience.
//
// The package also owns ParseSources, the comma-separated source-list
// validation shared by cmd/bspgraph and cmd/xmtbench, so both CLIs reject
// malformed or out-of-range lists identically.
package batch

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxLanes is the batch width: one query per bit of the per-vertex uint64
// lane mask.
const MaxLanes = 64

// Plan is a deterministic lane assignment for one batched run. Lane i is
// owned by Sources[i]; Lane maps each input query (in the order given to
// NewPlan, duplicates included) to the lane that answers it.
type Plan struct {
	// Sources holds the deduplicated sources in lane order: Sources[i]
	// owns bit i of the per-vertex lane mask.
	Sources []int64
	// Lane maps input query index -> lane index, so callers that submitted
	// duplicate sources can route every query to its shared lane.
	Lane []int
}

// NewPlan assigns the given sources to lanes: duplicates collapse onto the
// first occurrence's lane (stable first-occurrence order), every source
// must be a valid vertex of an n-vertex graph, and at most MaxLanes unique
// sources fit one batch. The assignment is a pure function of the input
// list, so two runs planned from the same list — or a run and its resumed
// continuation — agree on every lane.
func NewPlan(sources []int64, numVertices int64) (*Plan, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("batch: no sources given")
	}
	p := &Plan{Lane: make([]int, len(sources))}
	lane := make(map[int64]int, len(sources))
	for i, s := range sources {
		if s < 0 || s >= numVertices {
			return nil, fmt.Errorf("batch: source %d out of range [0,%d)", s, numVertices)
		}
		l, ok := lane[s]
		if !ok {
			l = len(p.Sources)
			if l == MaxLanes {
				return nil, fmt.Errorf("batch: more than %d unique sources (lane mask is one uint64)", MaxLanes)
			}
			lane[s] = l
			p.Sources = append(p.Sources, s)
		}
		p.Lane[i] = l
	}
	return p, nil
}

// Occupancy is the number of lanes the plan fills (unique sources).
func (p *Plan) Occupancy() int { return len(p.Sources) }

// String renders the lane assignment as a comma-separated source list in
// lane order — the form pinned into checkpoint fingerprints and printed by
// the CLIs.
func (p *Plan) String() string {
	return FormatSources(p.Sources)
}

// FormatSources renders sources as a comma-separated list ("5,17,99").
func FormatSources(sources []int64) string {
	var sb strings.Builder
	for i, s := range sources {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(s, 10))
	}
	return sb.String()
}

// ParseSources parses a comma-separated vertex list ("5, 17,99") and
// validates every entry against an n-vertex graph. Duplicates are kept —
// NewPlan collapses them onto shared lanes — so a caller can report
// per-query results in submission order. The error messages are what
// cmd/bspgraph and cmd/xmtbench surface as usage errors (exit 2).
func ParseSources(list string, numVertices int64) ([]int64, error) {
	parts := strings.Split(list, ",")
	out := make([]int64, 0, len(parts))
	for _, part := range parts {
		tok := strings.TrimSpace(part)
		if tok == "" {
			return nil, fmt.Errorf("batch: empty source in list %q", list)
		}
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("batch: source %q is not a vertex ID", tok)
		}
		if v < 0 || v >= numVertices {
			return nil, fmt.Errorf("batch: source %d out of range [0,%d)", v, numVertices)
		}
		out = append(out, v)
	}
	return out, nil
}
