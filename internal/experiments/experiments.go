// Package experiments regenerates every table and figure of the paper's
// evaluation: Table I (total execution times, BSP vs GraphCT), Figure 1
// (connected components time per iteration across processor counts),
// Figure 2 (BFS frontier size vs BSP messages per level), Figure 3 (BFS
// per-level scalability), Figure 4 (triangle counting scalability), and the
// auxiliary counts the text quotes (superstep counts, candidate-message and
// write blowups).
//
// Each experiment runs the real kernels once on the host, collects their
// work profiles, and evaluates the profiles under the machine model at any
// processor count — profiles are processor-independent, so one execution
// yields the whole scaling curve deterministically.
package experiments

import (
	"fmt"
	"time"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/core"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

// Setup fixes an experiment configuration.
type Setup struct {
	// Scale and EdgeFactor parameterize the RMAT workload. The paper's
	// graph is scale 24, edge factor 16 (16.7M vertices, 268M edges); the
	// default downscales to scale 16 so the full suite, including the
	// wedge-heavy triangle counting, runs on a laptop. See EXPERIMENTS.md.
	Scale      int
	EdgeFactor int
	// Seed selects the deterministic RMAT instance.
	Seed uint64
	// Procs is the machine size evaluated for headline numbers (128 in
	// the paper); scaling figures sweep 8..Procs.
	Procs int
	// Model evaluates work profiles; nil selects the analytic model with
	// the default (PNNL Cray XMT) configuration.
	Model machine.Model
	// Direction selects the BSP engine's superstep direction mode for the
	// pull-capable kernels (CC, BFS, label propagation). The zero value is
	// core.DirAuto; core.DirPush is the forced-push A/B control.
	Direction core.DirectionMode
	// Retries, StepTimeout and RunTimeout arm the engine's run supervisor
	// for every BSP pass an experiment performs (see docs/ROBUSTNESS.md).
	// Zero values leave supervision off — the benchmark's default, since
	// the retry snapshot costs one state copy per superstep boundary.
	Retries     int
	StepTimeout time.Duration
	RunTimeout  time.Duration
}

// engineOpts returns the core options every BSP engine pass of an
// experiment shares: direction mode plus, when armed, the supervisor
// knobs.
func (s Setup) engineOpts() []core.Option {
	opts := []core.Option{core.WithDirection(s.Direction)}
	if s.Retries > 0 {
		opts = append(opts, core.WithRetries(s.Retries))
	}
	if s.StepTimeout > 0 {
		opts = append(opts, core.WithStepTimeout(s.StepTimeout))
	}
	if s.RunTimeout > 0 {
		opts = append(opts, core.WithRunTimeout(s.RunTimeout))
	}
	return opts
}

// DefaultSetup returns the configuration the committed EXPERIMENTS.md
// numbers were produced with.
func DefaultSetup() Setup {
	return Setup{Scale: 16, EdgeFactor: 16, Seed: 1, Procs: 128}
}

func (s Setup) withDefaults() Setup {
	if s.Scale == 0 {
		s.Scale = 16
	}
	if s.EdgeFactor == 0 {
		s.EdgeFactor = 16
	}
	if s.Procs == 0 {
		s.Procs = 128
	}
	if s.Model == nil {
		s.Model = machine.NewAnalytic(machine.DefaultConfig())
	}
	return s
}

// BuildGraph generates the experiment's RMAT input.
func BuildGraph(s Setup) (*graph.Graph, error) {
	s = s.withDefaults()
	return gen.RMAT(gen.RMATConfig{Scale: s.Scale, EdgeFactor: s.EdgeFactor, Seed: s.Seed})
}

// BFSSource picks the experiment's BFS root: the maximum-degree vertex,
// which sits in the giant component of any scale-free instance.
func BFSSource(g *graph.Graph) int64 {
	var src, best int64 = 0, -1
	for v := int64(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > best {
			best, src = d, v
		}
	}
	return src
}

// Table1Row is one line of Table I.
type Table1Row struct {
	Algorithm string
	BSP       float64 // seconds at Setup.Procs
	GraphCT   float64 // seconds at Setup.Procs
	Ratio     float64 // BSP / GraphCT
}

// Table1Result reproduces Table I plus the iteration counts the text
// quotes alongside it.
type Table1Result struct {
	Rows []Table1Row
	// BSPCCSupersteps vs GraphCTCCIterations: the ">= factor of two"
	// iteration gap (13 vs 6 in the paper).
	BSPCCSupersteps     int
	GraphCTCCIterations int
}

// Table1 runs all three algorithm pairs on g and returns the table.
func Table1(g *graph.Graph, s Setup) (*Table1Result, error) {
	s = s.withDefaults()
	res := &Table1Result{}

	// Connected components.
	bspRec := trace.NewRecorder()
	bspCC, err := bspalg.ConnectedComponents(g, bspRec, s.engineOpts()...)
	if err != nil {
		return nil, fmt.Errorf("experiments: bsp cc: %w", err)
	}
	ctRec := trace.NewRecorder()
	ctCC := graphct.ConnectedComponents(g, ctRec)
	if err := sameLabels(bspCC.Labels, ctCC.Labels); err != nil {
		return nil, err
	}
	res.BSPCCSupersteps = bspCC.Supersteps
	res.GraphCTCCIterations = ctCC.Iterations
	res.Rows = append(res.Rows, row("Connected Components",
		machine.Seconds(s.Model, bspRec.Phases(), s.Procs),
		machine.Seconds(s.Model, ctRec.Phases(), s.Procs)))

	// Breadth-first search.
	src := BFSSource(g)
	bspRec = trace.NewRecorder()
	bspBFS, err := bspalg.BFS(g, src, bspRec, s.engineOpts()...)
	if err != nil {
		return nil, fmt.Errorf("experiments: bsp bfs: %w", err)
	}
	ctRec = trace.NewRecorder()
	ctBFS := graphct.BFS(g, src, ctRec)
	for v := range bspBFS.Dist {
		if bspBFS.Dist[v] != ctBFS.Dist[v] {
			return nil, fmt.Errorf("experiments: bfs mismatch at vertex %d", v)
		}
	}
	res.Rows = append(res.Rows, row("Breadth-first Search",
		machine.Seconds(s.Model, bspRec.Phases(), s.Procs),
		machine.Seconds(s.Model, ctRec.Phases(), s.Procs)))

	// Triangle counting (streaming evaluator: identical cost profile to
	// the engine without materializing wedges).
	bspRec = trace.NewRecorder()
	bspTC := bspalg.StreamingTriangles(g, bspRec)
	ctRec = trace.NewRecorder()
	ctTC := graphct.Triangles(g, ctRec)
	if bspTC.Count != ctTC.Count {
		return nil, fmt.Errorf("experiments: triangle counts differ: %d vs %d", bspTC.Count, ctTC.Count)
	}
	res.Rows = append(res.Rows, row("Triangle Counting",
		machine.Seconds(s.Model, bspRec.Phases(), s.Procs),
		machine.Seconds(s.Model, ctRec.Phases(), s.Procs)))
	return res, nil
}

func row(name string, bsp, ct float64) Table1Row {
	r := Table1Row{Algorithm: name, BSP: bsp, GraphCT: ct}
	if ct > 0 {
		r.Ratio = bsp / ct
	}
	return r
}

func sameLabels(a, b []int64) error {
	for v := range a {
		if a[v] != b[v] {
			return fmt.Errorf("experiments: component labels diverge at vertex %d", v)
		}
	}
	return nil
}

// Fig1Result reproduces Figure 1: connected-components execution time per
// iteration, one curve per processor count, for both models.
type Fig1Result struct {
	Procs []int
	// BSP[i][s] is the time of BSP superstep s at Procs[i]; GraphCT[i][k]
	// likewise for shared-memory iteration k.
	BSP     [][]float64
	GraphCT [][]float64
	// Totals at the largest processor count.
	BSPTotal, GraphCTTotal float64
}

// Fig1 runs both connected-components kernels and evaluates per-iteration
// times across the processor sweep.
func Fig1(g *graph.Graph, s Setup) (*Fig1Result, error) {
	s = s.withDefaults()
	bspRec := trace.NewRecorder()
	if _, err := bspalg.ConnectedComponents(g, bspRec, s.engineOpts()...); err != nil {
		return nil, err
	}
	ctRec := trace.NewRecorder()
	graphct.ConnectedComponents(g, ctRec)

	res := &Fig1Result{Procs: machine.ProcSweep(s.Procs)}
	bspPhases := bspRec.Phases() // scan + compute regions, grouped by superstep
	ctPhases := ctRec.PhasesNamed("cc/iter")
	for _, p := range res.Procs {
		res.BSP = append(res.BSP, perIndexSeconds(s.Model, bspPhases, p))
		res.GraphCT = append(res.GraphCT, machine.PhaseSeconds(s.Model, ctPhases, p))
	}
	res.BSPTotal = machine.Seconds(s.Model, bspPhases, s.Procs)
	res.GraphCTTotal = machine.Seconds(s.Model, ctPhases, s.Procs)
	return res, nil
}

// perIndexSeconds sums each phase's simulated time into its Index slot, so
// a superstep's scan and compute regions report as one number.
func perIndexSeconds(m machine.Model, phases []*trace.Phase, procs int) []float64 {
	maxIdx := -1
	for _, p := range phases {
		if p.Index > maxIdx {
			maxIdx = p.Index
		}
	}
	out := make([]float64, maxIdx+1)
	for _, p := range phases {
		out[p.Index] += m.Config().Seconds(m.PhaseCycles(p, procs))
	}
	return out
}

// Fig2Result reproduces Figure 2: the true BFS frontier per level against
// the number of BSP messages generated per superstep.
type Fig2Result struct {
	Source   int64
	Frontier []int64 // size of level-s frontier (GraphCT's exact frontier)
	Messages []int64 // messages generated by BSP superstep s
}

// Fig2 runs BSP BFS and reports frontier vs messages per level.
func Fig2(g *graph.Graph, s Setup) (*Fig2Result, error) {
	src := BFSSource(g)
	bsp, err := bspalg.BFS(g, src, nil, s.engineOpts()...)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Source: src, Frontier: bsp.FrontierPerStep}
	// Trim the message series to the levels that expanded anything.
	res.Messages = bsp.MessagesPerStep
	return res, nil
}

// Fig3Result reproduces Figure 3: per-level BFS execution time versus
// processor count for both models.
type Fig3Result struct {
	Source int64
	Procs  []int
	// BSP[s][i] is the time of BSP superstep s at Procs[i]; GraphCT[l][i]
	// likewise per shared-memory level.
	BSP     [][]float64
	GraphCT [][]float64
	// Totals at the largest processor count.
	BSPTotal, GraphCTTotal float64
}

// Fig3 runs both BFS kernels and evaluates per-level scalability.
func Fig3(g *graph.Graph, s Setup) (*Fig3Result, error) {
	s = s.withDefaults()
	src := BFSSource(g)
	bspRec := trace.NewRecorder()
	if _, err := bspalg.BFS(g, src, bspRec, s.engineOpts()...); err != nil {
		return nil, err
	}
	ctRec := trace.NewRecorder()
	graphct.BFS(g, src, ctRec)

	res := &Fig3Result{Source: src, Procs: machine.ProcSweep(s.Procs)}
	bspPhases := bspRec.Phases()
	ctPhases := ctRec.PhasesNamed("bfs/level")
	for _, p := range res.Procs {
		for i, t := range perIndexSeconds(s.Model, bspPhases, p) {
			if i >= len(res.BSP) {
				res.BSP = append(res.BSP, nil)
			}
			res.BSP[i] = append(res.BSP[i], t)
		}
		for i, t := range machine.PhaseSeconds(s.Model, ctPhases, p) {
			if i >= len(res.GraphCT) {
				res.GraphCT = append(res.GraphCT, nil)
			}
			res.GraphCT[i] = append(res.GraphCT[i], t)
		}
	}
	res.BSPTotal = machine.Seconds(s.Model, bspPhases, s.Procs)
	res.GraphCTTotal = machine.Seconds(s.Model, ctPhases, s.Procs)
	return res, nil
}

// Fig4Result reproduces Figure 4: triangle counting execution time versus
// processor count for both models.
type Fig4Result struct {
	Procs   []int
	BSP     []float64
	GraphCT []float64
	// Counts behind the curves.
	Triangles  int64
	Candidates int64
}

// Fig4 runs both triangle kernels and evaluates the scaling curves.
func Fig4(g *graph.Graph, s Setup) (*Fig4Result, error) {
	s = s.withDefaults()
	bspRec := trace.NewRecorder()
	bspTC := bspalg.StreamingTriangles(g, bspRec)
	ctRec := trace.NewRecorder()
	ctTC := graphct.Triangles(g, ctRec)
	if bspTC.Count != ctTC.Count {
		return nil, fmt.Errorf("experiments: triangle counts differ: %d vs %d", bspTC.Count, ctTC.Count)
	}
	res := &Fig4Result{
		Procs:      machine.ProcSweep(s.Procs),
		Triangles:  bspTC.Count,
		Candidates: bspTC.CandidateMessages,
	}
	for _, p := range res.Procs {
		res.BSP = append(res.BSP, machine.Seconds(s.Model, bspRec.Phases(), p))
		res.GraphCT = append(res.GraphCT, machine.Seconds(s.Model, ctRec.Phases(), p))
	}
	return res, nil
}

// AuxResult collects the counts the paper's text quotes outside tables:
// superstep/iteration gap, message and write blowups.
type AuxResult struct {
	// CC iteration gap (paper: 13 BSP supersteps vs 6 shared-memory
	// iterations).
	BSPCCSupersteps, GraphCTCCIterations int
	// Triangle counting counts (paper: 5.5e9 candidates -> 30.9M
	// triangles; 181x writes).
	Candidates, Triangles    int64
	BSPWrites, GraphCTWrites int64
	WriteRatio               float64
	// BFS message excess (paper: messages an order of magnitude above the
	// frontier after the apex).
	BFSMessages, BFSFrontier int64
	MessageExcess            float64
}

// Aux computes the auxiliary counts on g.
func Aux(g *graph.Graph, s Setup) (*AuxResult, error) {
	s = s.withDefaults()
	res := &AuxResult{}

	bspCC, err := bspalg.ConnectedComponents(g, nil, s.engineOpts()...)
	if err != nil {
		return nil, err
	}
	res.BSPCCSupersteps = bspCC.Supersteps
	res.GraphCTCCIterations = graphct.ConnectedComponents(g, nil).Iterations

	rec := trace.NewRecorder()
	tc := bspalg.StreamingTriangles(g, rec)
	res.Candidates = tc.CandidateMessages
	res.Triangles = tc.Count
	// Every BSP message is materialized with SendStoresPerMsg writes; the
	// headline blowup compares raw message writes to GraphCT's one write
	// per triangle, so count one write per message, as the paper does.
	res.BSPWrites = tc.TotalMessages
	res.GraphCTWrites = graphct.Triangles(g, nil).Writes
	if res.GraphCTWrites > 0 {
		res.WriteRatio = float64(res.BSPWrites) / float64(res.GraphCTWrites)
	}

	bfs, err := bspalg.BFS(g, BFSSource(g), nil, s.engineOpts()...)
	if err != nil {
		return nil, err
	}
	for _, m := range bfs.MessagesPerStep {
		res.BFSMessages += m
	}
	for _, f := range bfs.FrontierPerStep {
		res.BFSFrontier += f
	}
	if res.BFSFrontier > 0 {
		res.MessageExcess = float64(res.BFSMessages) / float64(res.BFSFrontier)
	}
	return res, nil
}
