package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/graphio"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

// TestEndToEndPipeline exercises the full user workflow: generate a
// workload, persist it, reload it, run a kernel recording a profile,
// serialize the profile, reload it, and confirm the machine model produces
// identical simulated times from the round-tripped artifacts.
func TestEndToEndPipeline(t *testing.T) {
	s := testSetup()
	g, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Persist and reload the graph.
	gpath := filepath.Join(dir, "workload.gxmt")
	if err := graphio.WriteBinaryFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graphio.LoadFile(gpath)
	if err != nil {
		t.Fatal(err)
	}

	// Run BFS on the reloaded graph, recording a profile.
	rec := trace.NewRecorder()
	src := BFSSource(g2)
	res, err := bspalg.BFS(g2, src, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps == 0 {
		t.Fatal("no supersteps")
	}

	// Serialize the profile and reload it.
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ppath := filepath.Join(dir, "bfs.profile.json")
	if err := os.WriteFile(ppath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ppath)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := trace.ReadJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	// The round-tripped profile evaluates identically at every processor
	// count and under modified machine parameters.
	model := machine.NewAnalytic(machine.DefaultConfig())
	for _, procs := range []int{8, 64, 128} {
		orig := machine.Seconds(model, rec.Phases(), procs)
		back := machine.Seconds(model, rec2.Phases(), procs)
		if orig != back {
			t.Fatalf("%d procs: %.9f vs %.9f after round trip", procs, orig, back)
		}
	}
	slow := machine.DefaultConfig()
	slow.MemLatency *= 4
	slowModel := machine.NewAnalytic(slow)
	if a, b := machine.Seconds(slowModel, rec.Phases(), 128), machine.Seconds(slowModel, rec2.Phases(), 128); a != b {
		t.Fatalf("slow machine: %.9f vs %.9f", a, b)
	}
}

// TestDeterminism asserts the repository's reproducibility guarantee: two
// identical runs produce bit-identical simulated times for every
// experiment artifact.
func TestDeterminism(t *testing.T) {
	s := testSetup()
	g1, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Table1(g1, s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(g2, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].BSP != b.Rows[i].BSP || a.Rows[i].GraphCT != b.Rows[i].GraphCT {
			t.Fatalf("%s: times differ across identical runs", a.Rows[i].Algorithm)
		}
	}
	f1a, err := Fig1(g1, s)
	if err != nil {
		t.Fatal(err)
	}
	f1b, err := Fig1(g2, s)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range f1a.BSP {
		for it := range f1a.BSP[pi] {
			if f1a.BSP[pi][it] != f1b.BSP[pi][it] {
				t.Fatalf("fig1 differs at procs[%d] iter %d", pi, it)
			}
		}
	}
}
