package experiments

// Batched multi-source BFS throughput: the query-serving experiment the
// MS-BFS layer exists for. One 64-lane batched run answers 64 BFS queries
// in a single engine pass; the control runs the same 64 queries as
// sequential single-source passes. Both sides produce bit-identical
// per-query distances (asserted here, not assumed), so the comparison
// isolates the amortization: every lane-packed broadcast serves all lanes
// crossing that edge, dividing the per-edge frontier traffic — the paper's
// dominant BSP cost — by the batch width.

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"graphxmt/internal/batch"
	"graphxmt/internal/bspalg"
	"graphxmt/internal/graph"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

// MSBFSResult compares one batched multi-source run against sequential
// single-source runs over the same sources.
type MSBFSResult struct {
	// Plan is the lane assignment both sides answered.
	Plan *batch.Plan

	// BatchWall / SeqWall are host wall times: one batched engine pass vs
	// the sum of the per-source passes.
	BatchWall, SeqWall time.Duration
	// BatchSim / SeqSim are simulated XMT seconds at Setup.Procs, from the
	// recorded work profiles.
	BatchSim, SeqSim float64
	// BatchMessages / SeqMessages are total logical messages: the batched
	// side counts each lane-packed record once, so the ratio against
	// SeqMessages is the realized traffic amortization.
	BatchMessages, SeqMessages int64
	// BatchSupersteps is the batched run's superstep count (the deepest
	// lane plus the terminal step).
	BatchSupersteps int
	// Speedup is SeqWall / BatchWall; QueriesPerSec and PerQuery rate the
	// batched pass as a query server (occupancy / BatchWall).
	Speedup       float64
	QueriesPerSec float64
	PerQuery      time.Duration
	// AmortizedEdges is BatchMessages / occupancy: logical edge traversals
	// charged to each query after lane-packing.
	AmortizedEdges float64
}

// MSBFSSources picks the default batch: MaxLanes sources spread uniformly
// across the vertex ID range (stride n/64), the deterministic stand-in for
// a query mix. Duplicates from tiny graphs collapse in the planner.
func MSBFSSources(g *graph.Graph) []int64 {
	n := g.NumVertices()
	srcs := make([]int64, 0, batch.MaxLanes)
	for i := int64(0); i < batch.MaxLanes; i++ {
		srcs = append(srcs, i*n/batch.MaxLanes)
	}
	return srcs
}

// MSBFS runs the batched-vs-sequential comparison for the given sources
// (nil selects MSBFSSources) and verifies the two sides agree bit-exactly
// on every lane's distances before reporting any number.
func MSBFS(g *graph.Graph, s Setup, sources []int64) (*MSBFSResult, error) {
	s = s.withDefaults()
	if sources == nil {
		sources = MSBFSSources(g)
	}
	plan, err := batch.NewPlan(sources, g.NumVertices())
	if err != nil {
		return nil, err
	}

	batchRec := trace.NewRecorder()
	batchStart := time.Now()
	mr, err := bspalg.MultiBFS(g, plan, batchRec, s.engineOpts()...)
	if err != nil {
		return nil, err
	}
	r := &MSBFSResult{
		Plan:            plan,
		BatchWall:       time.Since(batchStart),
		BatchSim:        machine.Seconds(s.Model, batchRec.Phases(), s.Procs),
		BatchSupersteps: mr.Supersteps,
	}
	for _, m := range mr.MessagesPerStep {
		r.BatchMessages += m
	}

	for lane, src := range plan.Sources {
		seqRec := trace.NewRecorder()
		seqStart := time.Now()
		sr, err := bspalg.BFS(g, src, seqRec, s.engineOpts()...)
		if err != nil {
			return nil, err
		}
		r.SeqWall += time.Since(seqStart)
		r.SeqSim += machine.Seconds(s.Model, seqRec.Phases(), s.Procs)
		for _, m := range sr.MessagesPerStep {
			r.SeqMessages += m
		}
		if !reflect.DeepEqual(mr.Dist(lane), sr.Dist) {
			return nil, fmt.Errorf("msbfs: lane %d (source %d) distances diverge from the single-source run", lane, src)
		}
	}

	occ := plan.Occupancy()
	if r.BatchWall > 0 {
		r.Speedup = float64(r.SeqWall) / float64(r.BatchWall)
		r.QueriesPerSec = float64(occ) / r.BatchWall.Seconds()
	}
	r.PerQuery = r.BatchWall / time.Duration(occ)
	r.AmortizedEdges = float64(r.BatchMessages) / float64(occ)
	return r, nil
}

// RenderMSBFS writes the batched-query throughput comparison.
func RenderMSBFS(w io.Writer, r *MSBFSResult, procs int) {
	occ := r.Plan.Occupancy()
	fmt.Fprintf(w, "MS-BFS batched queries: %d lanes, %d supersteps (verified bit-identical to %d sequential runs)\n",
		occ, r.BatchSupersteps, occ)
	fmt.Fprintf(w, "  %-28s %14s %14s\n", "", "batched (1 run)", fmt.Sprintf("sequential (%d)", occ))
	fmt.Fprintf(w, "  %-28s %14v %14v\n", "host wall", r.BatchWall.Round(time.Microsecond), r.SeqWall.Round(time.Microsecond))
	fmt.Fprintf(w, "  %-28s %14.4f %14.4f\n", fmt.Sprintf("simulated s (%d procs)", procs), r.BatchSim, r.SeqSim)
	fmt.Fprintf(w, "  %-28s %14d %14d\n", "logical messages", r.BatchMessages, r.SeqMessages)
	fmt.Fprintf(w, "  speedup %.2fx wall, %.2fx messages; %.0f queries/s, %v per query, %.0f amortized edge traversals/query\n",
		r.Speedup, float64(r.SeqMessages)/float64(r.BatchMessages),
		r.QueriesPerSec, r.PerQuery.Round(time.Microsecond), r.AmortizedEdges)
}
