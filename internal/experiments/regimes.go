package experiments

import (
	"fmt"
	"io"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

// RegimePhase is one phase's diagnosis.
type RegimePhase struct {
	Name    string
	Index   int
	Regime  machine.Regime
	Share   float64 // dominant bound's share of the phase's cycles
	Seconds float64
}

// RegimeResult diagnoses which machine bound dominates every phase of the
// paper's kernels — the quantitative form of the paper's per-iteration
// scalability arguments ("as the number of active vertices becomes small,
// the parallelism that can be exposed also becomes small").
type RegimeResult struct {
	Procs  int
	BSPCC  []RegimePhase
	CTCC   []RegimePhase
	BSPBFS []RegimePhase
	CTBFS  []RegimePhase
}

// Regimes runs CC and BFS in both models and diagnoses every recorded
// phase under the analytic model.
func Regimes(g *graph.Graph, s Setup) (*RegimeResult, error) {
	s = s.withDefaults()
	analytic, ok := s.Model.(*machine.Analytic)
	if !ok {
		analytic = machine.NewAnalytic(machine.DefaultConfig())
	}
	res := &RegimeResult{Procs: s.Procs}

	diagnose := func(phases []*trace.Phase) []RegimePhase {
		var out []RegimePhase
		for _, p := range phases {
			r, share := analytic.Diagnose(p, s.Procs)
			out = append(out, RegimePhase{
				Name:    p.Name,
				Index:   p.Index,
				Regime:  r,
				Share:   share,
				Seconds: analytic.Config().Seconds(analytic.PhaseCycles(p, s.Procs)),
			})
		}
		return out
	}

	rec := trace.NewRecorder()
	if _, err := bspalg.ConnectedComponents(g, rec); err != nil {
		return nil, err
	}
	res.BSPCC = diagnose(rec.PhasesNamed("bsp/superstep"))

	rec = trace.NewRecorder()
	graphct.ConnectedComponents(g, rec)
	res.CTCC = diagnose(rec.Phases())

	src := BFSSource(g)
	rec = trace.NewRecorder()
	if _, err := bspalg.BFS(g, src, rec); err != nil {
		return nil, err
	}
	res.BSPBFS = diagnose(rec.PhasesNamed("bsp/superstep"))

	rec = trace.NewRecorder()
	graphct.BFS(g, src, rec)
	res.CTBFS = diagnose(rec.Phases())
	return res, nil
}

// RenderRegimes prints the diagnosis.
func RenderRegimes(w io.Writer, r *RegimeResult) {
	fmt.Fprintf(w, "REGIME DIAGNOSIS at %d processors (dominant bound per phase)\n", r.Procs)
	sections := []struct {
		name   string
		phases []RegimePhase
	}{
		{"BSP connected components", r.BSPCC},
		{"GraphCT connected components", r.CTCC},
		{"BSP breadth-first search", r.BSPBFS},
		{"GraphCT breadth-first search", r.CTBFS},
	}
	for _, sec := range sections {
		fmt.Fprintf(w, "%s:\n", sec.name)
		for _, p := range sec.phases {
			fmt.Fprintf(w, "  %-16s[%2d] %-14s (%.0f%% of phase, %.6fs)\n",
				p.Name, p.Index, p.Regime, 100*p.Share, p.Seconds)
		}
	}
}
