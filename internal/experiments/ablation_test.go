package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationActivation(t *testing.T) {
	g, s := testGraph(t)
	res, err := AblationActivation(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.SparseTotal >= res.FullScanTotal {
		t.Fatalf("sparse activation (%.6fs) should beat full scan (%.6fs)",
			res.SparseTotal, res.FullScanTotal)
	}
	// The gap concentrates in the low-activity tail supersteps: the final
	// superstep must shrink by more than the apex superstep does.
	last := len(res.Procs) - 1
	apex := 0
	for i := range res.FullScan {
		if res.FullScan[i][last] > res.FullScan[apex][last] {
			apex = i
		}
	}
	tail := len(res.FullScan) - 1
	if tail == apex {
		t.Skip("degenerate instance: apex is the last superstep")
	}
	apexGain := res.FullScan[apex][last] / res.Sparse[apex][last]
	tailGain := res.FullScan[tail][last] / res.Sparse[tail][last]
	if tailGain <= apexGain {
		t.Fatalf("tail gain %.2fx should exceed apex gain %.2fx (scan overhead lives in the tail)",
			tailGain, apexGain)
	}
}

func TestAblationHotspot(t *testing.T) {
	g, s := testGraph(t)
	res, err := AblationHotspot(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 1 (full serialization) must be slower and scale worse than the
	// largest chunk.
	first, last := 0, len(res.Chunks)-1
	if res.TimeAtMax[first] <= res.TimeAtMax[last] {
		t.Fatalf("chunk=1 time %.6f should exceed chunk=%d time %.6f",
			res.TimeAtMax[first], res.Chunks[last], res.TimeAtMax[last])
	}
	if res.Speedup[first] >= res.Speedup[last] {
		t.Fatalf("chunk=1 speedup %.2f should be below chunk=%d speedup %.2f",
			res.Speedup[first], res.Chunks[last], res.Speedup[last])
	}
	// Times must be monotone non-increasing in chunk size.
	for i := 1; i < len(res.Chunks); i++ {
		if res.TimeAtMax[i] > res.TimeAtMax[i-1]*1.0001 {
			t.Fatalf("time increased from chunk %d to %d", res.Chunks[i-1], res.Chunks[i])
		}
	}
}

func TestAblationCombiner(t *testing.T) {
	g, s := testGraph(t)
	res, err := AblationCombiner(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredCombined >= res.DeliveredPlain {
		t.Fatalf("combiner delivered %d >= plain %d", res.DeliveredCombined, res.DeliveredPlain)
	}
	if res.Plain <= 0 || res.Combined <= 0 {
		t.Fatal("times must be positive")
	}
}

func TestSensitivityMachine(t *testing.T) {
	g, s := testGraph(t)
	res, err := SensitivityMachine(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// Time is monotone non-decreasing in latency...
	for i := 1; i < len(res.LatencyTimes); i++ {
		if res.LatencyTimes[i] < res.LatencyTimes[i-1]*0.999 {
			t.Fatalf("time decreased with higher latency: %v", res.LatencyTimes)
		}
	}
	// ...and non-increasing in streams per processor.
	for i := 1; i < len(res.StreamTimes); i++ {
		if res.StreamTimes[i] > res.StreamTimes[i-1]*1.001 {
			t.Fatalf("time increased with more streams: %v", res.StreamTimes)
		}
	}
}

func TestRenderAblations(t *testing.T) {
	g, s := testGraph(t)
	var buf bytes.Buffer

	act, err := AblationActivation(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderActivation(&buf, act)
	if !strings.Contains(buf.String(), "sparse activation") {
		t.Fatal("activation render missing")
	}

	buf.Reset()
	hot, err := AblationHotspot(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderHotspot(&buf, hot, s.Procs)
	if !strings.Contains(buf.String(), "chunk") {
		t.Fatal("hotspot render missing")
	}

	buf.Reset()
	comb, err := AblationCombiner(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderCombiner(&buf, comb, s.Procs)
	if !strings.Contains(buf.String(), "combiner") {
		t.Fatal("combiner render missing")
	}

	buf.Reset()
	sens, err := SensitivityMachine(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderSensitivity(&buf, sens, s.Procs)
	if !strings.Contains(buf.String(), "latency") {
		t.Fatal("sensitivity render missing")
	}
}

func TestRegimes(t *testing.T) {
	g, s := testGraph(t)
	res, err := Regimes(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BSPCC) == 0 || len(res.CTCC) == 0 || len(res.BSPBFS) == 0 || len(res.CTBFS) == 0 {
		t.Fatal("missing diagnoses")
	}
	// The first BSP CC superstep is work-dominated, not overhead.
	if res.BSPCC[0].Regime == "overhead" {
		t.Fatalf("first superstep diagnosed as overhead: %+v", res.BSPCC[0])
	}
	// The last BFS levels sit in a non-scaling regime (latency or
	// overhead), which is the paper's flat-tail observation.
	tail := res.CTBFS[len(res.CTBFS)-1]
	if tail.Regime == "issue-bound" {
		t.Fatalf("tail BFS level diagnosed issue-bound: %+v", tail)
	}
	for _, p := range append(res.BSPCC, res.CTBFS...) {
		if p.Share < 0 || p.Share > 1.01 {
			t.Fatalf("share out of range: %+v", p)
		}
		if p.Seconds <= 0 {
			t.Fatalf("non-positive seconds: %+v", p)
		}
	}
	var buf bytes.Buffer
	RenderRegimes(&buf, res)
	if !strings.Contains(buf.String(), "REGIME DIAGNOSIS") {
		t.Fatal("render missing header")
	}
}

func TestExtensions(t *testing.T) {
	g, s := testGraph(t)
	res, err := Extensions(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.BSP <= 0 || row.GraphCT <= 0 {
			t.Fatalf("%s: non-positive times", row.Algorithm)
		}
		// The paper's generalization: BSP pays a constant factor but stays
		// within roughly an order of magnitude (allow slack: betweenness
		// runs many tiny supersteps).
		if row.Ratio > 40 {
			t.Fatalf("%s: ratio %.1f far outside the envelope", row.Algorithm, row.Ratio)
		}
	}
	// Staleness gaps: BSP needs at least as many rounds where comparable.
	for name, gap := range res.IterationGaps {
		if name == "k-core" {
			continue // peel rounds and h-index supersteps count different things
		}
		if gap[0] < gap[1] {
			t.Fatalf("%s: bsp %d < shared-memory %d", name, gap[0], gap[1])
		}
	}
	var buf bytes.Buffer
	RenderExtensions(&buf, res, s.Procs)
	if !strings.Contains(buf.String(), "EXTENSIONS") {
		t.Fatal("render missing")
	}
}

func TestCSVWriters(t *testing.T) {
	g, s := testGraph(t)

	f1, err := Fig1(g, s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f1.WriteFig1CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "iteration,bsp_8p") {
		t.Fatalf("fig1 header = %q", lines[0])
	}
	// One data row per iteration of the longer series.
	wantRows := len(f1.BSP[0])
	if len(f1.GraphCT[0]) > wantRows {
		wantRows = len(f1.GraphCT[0])
	}
	if len(lines)-1 != wantRows {
		t.Fatalf("fig1 rows = %d, want %d", len(lines)-1, wantRows)
	}

	f2, err := Fig2(g, s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f2.WriteFig2CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "level,frontier,messages") {
		t.Fatalf("fig2 header: %q", buf.String()[:40])
	}

	f3, err := Fig3(g, s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f3.WriteFig3CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graphct,0,") {
		t.Fatal("fig3 missing graphct rows")
	}

	f4, err := Fig4(g, s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f4.WriteFig4CSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(rows)-1 != len(f4.Procs) {
		t.Fatalf("fig4 rows = %d, want %d", len(rows)-1, len(f4.Procs))
	}
}
