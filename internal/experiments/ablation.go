package experiments

import (
	"fmt"
	"io"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

// This file holds ablations of the design choices DESIGN.md calls out.
// Each isolates one mechanism the paper blames for a BSP overhead and
// shows the overhead move when the mechanism changes:
//
//   - AblationActivation removes the full per-superstep vertex scan
//     (paper: early/late BSP iterations cost "two orders of magnitude"
//     more than shared memory).
//   - AblationHotspot varies the chunk size of fetch-and-add buffer
//     allocation (paper: "serialization around a single atomic
//     fetch-and-add is possible, inhibiting scalability").
//   - AblationCombiner toggles Pregel's combiner optimization on the
//     min-label connected components.
//   - SensitivityMachine sweeps memory latency and streams-per-processor
//     to show which regimes each kernel sits in.

// ActivationResult is the output of AblationActivation.
type ActivationResult struct {
	Procs []int
	// FullScan[s][i] and Sparse[s][i] are per-superstep BFS times at
	// Procs[i] under the two runtimes.
	FullScan [][]float64
	Sparse   [][]float64
	// Totals at the largest processor count.
	FullScanTotal, SparseTotal float64
}

// AblationActivation runs BSP BFS under the paper's full-scan runtime and
// under a sparse-activation worklist runtime, and compares per-superstep
// times. Results (distances) are identical; only scheduling work differs.
func AblationActivation(g *graph.Graph, s Setup) (*ActivationResult, error) {
	s = s.withDefaults()
	src := BFSSource(g)

	fullRec := trace.NewRecorder()
	full, err := core.Run(core.Config{
		Graph:    g,
		Program:  bspalg.BFSProgram{Source: src},
		Recorder: fullRec,
	})
	if err != nil {
		return nil, err
	}
	sparseRec := trace.NewRecorder()
	sparse, err := core.Run(core.Config{
		Graph:            g,
		Program:          bspalg.BFSProgram{Source: src},
		Recorder:         sparseRec,
		SparseActivation: true,
	})
	if err != nil {
		return nil, err
	}
	for v := range full.States {
		if full.States[v] != sparse.States[v] {
			return nil, fmt.Errorf("experiments: activation ablation changed results at vertex %d", v)
		}
	}

	res := &ActivationResult{Procs: machine.ProcSweep(s.Procs)}
	for _, p := range res.Procs {
		for i, t := range perIndexSeconds(s.Model, fullRec.Phases(), p) {
			if i >= len(res.FullScan) {
				res.FullScan = append(res.FullScan, nil)
			}
			res.FullScan[i] = append(res.FullScan[i], t)
		}
		for i, t := range perIndexSeconds(s.Model, sparseRec.Phases(), p) {
			if i >= len(res.Sparse) {
				res.Sparse = append(res.Sparse, nil)
			}
			res.Sparse[i] = append(res.Sparse[i], t)
		}
	}
	res.FullScanTotal = machine.Seconds(s.Model, fullRec.Phases(), s.Procs)
	res.SparseTotal = machine.Seconds(s.Model, sparseRec.Phases(), s.Procs)
	return res, nil
}

// RenderActivation prints the activation ablation.
func RenderActivation(w io.Writer, r *ActivationResult) {
	fmt.Fprintln(w, "ABLATION: per-superstep vertex scan (paper runtime) vs sparse activation")
	fmt.Fprintln(w, "BSP BFS, full scan:")
	renderLevelSeries(w, r.Procs, r.FullScan)
	fmt.Fprintln(w, "BSP BFS, sparse activation:")
	renderLevelSeries(w, r.Procs, r.Sparse)
	fmt.Fprintf(w, "Totals at %d procs: full scan %.5fs, sparse %.5fs (%.2fx)\n",
		r.Procs[len(r.Procs)-1], r.FullScanTotal, r.SparseTotal,
		r.FullScanTotal/r.SparseTotal)
}

// HotspotResult is the output of AblationHotspot.
type HotspotResult struct {
	// Chunks lists the fetch-and-add allocation chunk sizes swept.
	Chunks []int64
	// TimeAtMax[i] is total BSP BFS time at Setup.Procs for Chunks[i].
	TimeAtMax []float64
	// Speedup[i] is the 8 -> Procs speedup for Chunks[i]; serialized
	// allocation (chunk 1) flattens it.
	Speedup []float64
}

// AblationHotspot sweeps the message-buffer allocation chunk size, the
// knob controlling how hard sends serialize on the single global
// fetch-and-add cursor.
func AblationHotspot(g *graph.Graph, s Setup) (*HotspotResult, error) {
	s = s.withDefaults()
	src := BFSSource(g)
	res := &HotspotResult{Chunks: []int64{1, 4, 16, 64, 256}}
	for _, chunk := range res.Chunks {
		costs := core.DefaultCosts()
		costs.HotMsgChunk = chunk
		rec := trace.NewRecorder()
		if _, err := core.Run(core.Config{
			Graph:    g,
			Program:  bspalg.BFSProgram{Source: src},
			Recorder: rec,
			Costs:    &costs,
		}); err != nil {
			return nil, err
		}
		tMax := machine.Seconds(s.Model, rec.Phases(), s.Procs)
		t8 := machine.Seconds(s.Model, rec.Phases(), 8)
		res.TimeAtMax = append(res.TimeAtMax, tMax)
		res.Speedup = append(res.Speedup, t8/tMax)
	}
	return res, nil
}

// RenderHotspot prints the hotspot ablation.
func RenderHotspot(w io.Writer, r *HotspotResult, procs int) {
	fmt.Fprintln(w, "ABLATION: fetch-and-add allocation chunk (hotspot serialization)")
	fmt.Fprintf(w, "  %-8s %14s %14s\n", "chunk", fmt.Sprintf("time@%dP", procs), "speedup 8->max")
	for i, c := range r.Chunks {
		fmt.Fprintf(w, "  %-8d %14.5f %13.1fx\n", c, r.TimeAtMax[i], r.Speedup[i])
	}
	fmt.Fprintln(w, "chunk=1 serializes every message on one memory word, flattening scalability")
}

// CombinerResult is the output of AblationCombiner.
type CombinerResult struct {
	// Plain and Combined are total CC times at Setup.Procs.
	Plain, Combined float64
	// DeliveredPlain and DeliveredCombined are total delivered messages.
	DeliveredPlain, DeliveredCombined int64
	Supersteps                        int
}

// AblationCombiner toggles the min-combiner on BSP connected components.
func AblationCombiner(g *graph.Graph, s Setup) (*CombinerResult, error) {
	s = s.withDefaults()
	plainRec := trace.NewRecorder()
	plain, err := core.Run(core.Config{Graph: g, Program: bspalg.CCProgram{}, Recorder: plainRec})
	if err != nil {
		return nil, err
	}
	combRec := trace.NewRecorder()
	comb, err := core.Run(core.Config{Graph: g, Program: bspalg.CCProgram{}, Recorder: combRec, Combiner: core.Min})
	if err != nil {
		return nil, err
	}
	for v := range plain.States {
		if plain.States[v] != comb.States[v] {
			return nil, fmt.Errorf("experiments: combiner changed results at vertex %d", v)
		}
	}
	res := &CombinerResult{
		Plain:      machine.Seconds(s.Model, plainRec.Phases(), s.Procs),
		Combined:   machine.Seconds(s.Model, combRec.Phases(), s.Procs),
		Supersteps: plain.Supersteps,
	}
	for _, d := range plain.DeliveredPerStep {
		res.DeliveredPlain += d
	}
	for _, d := range comb.DeliveredPerStep {
		res.DeliveredCombined += d
	}
	return res, nil
}

// RenderCombiner prints the combiner ablation.
func RenderCombiner(w io.Writer, r *CombinerResult, procs int) {
	fmt.Fprintln(w, "ABLATION: Pregel min-combiner on BSP connected components")
	fmt.Fprintf(w, "  plain:    %.5fs at %dP, %d messages delivered\n", r.Plain, procs, r.DeliveredPlain)
	fmt.Fprintf(w, "  combined: %.5fs at %dP, %d messages delivered (%.1f%% fewer)\n",
		r.Combined, procs, r.DeliveredCombined,
		100*(1-float64(r.DeliveredCombined)/float64(r.DeliveredPlain)))
}

// SensitivityResult is the output of SensitivityMachine.
type SensitivityResult struct {
	Latencies    []int
	LatencyTimes []float64 // GraphCT CC time at Setup.Procs per latency
	Streams      []int
	StreamTimes  []float64 // same, per streams-per-processor
}

// SensitivityMachine sweeps the machine model's memory latency and
// streams-per-processor over a fixed shared-memory CC profile, exposing
// the latency-tolerance mechanism: with enough streams, time is
// insensitive to latency; starve the streams and latency bites.
func SensitivityMachine(g *graph.Graph, s Setup) (*SensitivityResult, error) {
	s = s.withDefaults()
	rec := trace.NewRecorder()
	if _, err := bspalg.ConnectedComponents(g, rec); err != nil {
		return nil, err
	}
	res := &SensitivityResult{
		Latencies: []int{100, 300, 600, 1200, 2400},
		Streams:   []int{8, 32, 128, 512},
	}
	for _, lat := range res.Latencies {
		cfg := machine.DefaultConfig()
		cfg.MemLatency = lat
		res.LatencyTimes = append(res.LatencyTimes,
			machine.Seconds(machine.NewAnalytic(cfg), rec.Phases(), s.Procs))
	}
	for _, st := range res.Streams {
		cfg := machine.DefaultConfig()
		cfg.StreamsPerProc = st
		res.StreamTimes = append(res.StreamTimes,
			machine.Seconds(machine.NewAnalytic(cfg), rec.Phases(), s.Procs))
	}
	return res, nil
}

// RenderSensitivity prints the machine sensitivity sweep.
func RenderSensitivity(w io.Writer, r *SensitivityResult, procs int) {
	fmt.Fprintln(w, "SENSITIVITY: machine parameters (BSP CC profile)")
	fmt.Fprintf(w, "  memory latency sweep at %dP:\n", procs)
	for i, lat := range r.Latencies {
		fmt.Fprintf(w, "    L=%5d cycles: %.5fs\n", lat, r.LatencyTimes[i])
	}
	fmt.Fprintf(w, "  streams-per-processor sweep at %dP:\n", procs)
	for i, st := range r.Streams {
		fmt.Fprintf(w, "    S=%5d: %.5fs\n", st, r.StreamTimes[i])
	}
}
