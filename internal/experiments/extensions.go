package experiments

import (
	"fmt"
	"io"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

// ExtensionsResult applies Table I's methodology to the algorithm pairs
// beyond the paper's three: k-core decomposition, label-propagation
// communities, betweenness centrality, and weighted SSSP, each implemented
// in both programming models. It tests whether the paper's conclusion —
// BSP within roughly an order of magnitude of hand-tuned shared memory —
// generalizes past its benchmark set.
type ExtensionsResult struct {
	Rows []Table1Row
	// IterationGaps records BSP supersteps vs shared-memory iterations
	// where the pair exposes them (kcore, lp, sssp).
	IterationGaps map[string][2]int
}

// Extensions runs the four extension pairs on g. SSSP runs on a weighted
// copy of g (unit-range random weights derived from s.Seed).
func Extensions(g *graph.Graph, s Setup) (*ExtensionsResult, error) {
	s = s.withDefaults()
	res := &ExtensionsResult{IterationGaps: map[string][2]int{}}

	// k-core.
	bspRec := trace.NewRecorder()
	bspKC, err := bspalg.KCore(g, bspRec)
	if err != nil {
		return nil, err
	}
	ctRec := trace.NewRecorder()
	ctKC := graphct.KCore(g, ctRec)
	for v := range ctKC.Core {
		if bspKC.Core[v] != ctKC.Core[v] {
			return nil, fmt.Errorf("experiments: kcore mismatch at vertex %d", v)
		}
	}
	res.Rows = append(res.Rows, row("k-core decomposition",
		machine.Seconds(s.Model, bspRec.Phases(), s.Procs),
		machine.Seconds(s.Model, ctRec.Phases(), s.Procs)))
	res.IterationGaps["k-core"] = [2]int{bspKC.Supersteps, ctKC.Rounds}

	// Label propagation. Results differ legitimately between the models
	// (synchronous vs in-place sweeps); quality is compared by modularity
	// in the communities example, so only time is tabulated here.
	bspRec = trace.NewRecorder()
	bspLP, err := bspalg.LabelPropagation(g, 40, bspRec, s.engineOpts()...)
	if err != nil {
		return nil, err
	}
	ctRec = trace.NewRecorder()
	ctLP := graphct.LabelPropagation(g, graphct.CommunityOptions{}, ctRec)
	res.Rows = append(res.Rows, row("label propagation",
		machine.Seconds(s.Model, bspRec.Phases(), s.Procs),
		machine.Seconds(s.Model, ctRec.Phases(), s.Procs)))
	res.IterationGaps["label propagation"] = [2]int{bspLP.Supersteps, ctLP.Iterations}

	// Betweenness (sampled; same sources both sides via the same seed).
	const bcSamples = 8
	bspRec = trace.NewRecorder()
	if _, err := bspalg.Betweenness(g, bspalg.BetweennessOptions{Samples: bcSamples, Seed: s.Seed}, bspRec); err != nil {
		return nil, err
	}
	ctRec = trace.NewRecorder()
	graphct.Betweenness(g, graphct.BetweennessOptions{Samples: bcSamples, Seed: s.Seed}, ctRec)
	res.Rows = append(res.Rows, row("betweenness (sampled)",
		machine.Seconds(s.Model, bspRec.Phases(), s.Procs),
		machine.Seconds(s.Model, ctRec.Phases(), s.Procs)))

	// SSSP over a weighted copy.
	edges := g.EdgeList()
	weights := gen.UniformWeights(len(edges), 10, s.Seed)
	wg, err := graph.Build(g.NumVertices(), edges, graph.BuildOptions{
		SortAdjacency: true, Weights: weights})
	if err != nil {
		return nil, err
	}
	src := BFSSource(wg)
	bspRec = trace.NewRecorder()
	bspSP, err := bspalg.SSSP(wg, src, bspRec)
	if err != nil {
		return nil, err
	}
	ctRec = trace.NewRecorder()
	ctSP := graphct.BellmanFordSSSP(wg, src, ctRec)
	for v := range ctSP.Dist {
		if bspSP.Dist[v] != ctSP.Dist[v] {
			return nil, fmt.Errorf("experiments: sssp mismatch at vertex %d", v)
		}
	}
	res.Rows = append(res.Rows, row("SSSP (weighted)",
		machine.Seconds(s.Model, bspRec.Phases(), s.Procs),
		machine.Seconds(s.Model, ctRec.Phases(), s.Procs)))
	res.IterationGaps["SSSP"] = [2]int{bspSP.Supersteps, ctSP.Iterations}

	return res, nil
}

// RenderExtensions prints the extensions table.
func RenderExtensions(w io.Writer, r *ExtensionsResult, procs int) {
	fmt.Fprintln(w, "EXTENSIONS: Table I methodology on algorithm pairs beyond the paper's three")
	fmt.Fprintf(w, "%-24s %12s %12s %8s\n", "Algorithm", "BSP (s)", "GraphCT (s)", "Ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %12.4f %12.4f %7.1f:1\n", row.Algorithm, row.BSP, row.GraphCT, row.Ratio)
	}
	fmt.Fprintln(w, "iteration gaps (BSP supersteps vs shared-memory rounds):")
	for _, name := range []string{"k-core", "label propagation", "SSSP"} {
		if gap, ok := r.IterationGaps[name]; ok {
			fmt.Fprintf(w, "  %-20s %d vs %d\n", name, gap[0], gap[1])
		}
	}
	_ = procs
}
