package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderTable1 prints Table I in the paper's layout.
func RenderTable1(w io.Writer, r *Table1Result) {
	fmt.Fprintln(w, "TABLE I: EXECUTION TIMES (simulated Cray XMT, 128 processors)")
	fmt.Fprintln(w, "---------------------------------------------------------------")
	fmt.Fprintf(w, "%-24s %12s %12s %8s\n", "Algorithm", "BSP (s)", "GraphCT (s)", "Ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %12.3f %12.3f %7.1f:1\n", row.Algorithm, row.BSP, row.GraphCT, row.Ratio)
	}
	fmt.Fprintf(w, "\nCC iterations: BSP %d supersteps vs GraphCT %d iterations\n",
		r.BSPCCSupersteps, r.GraphCTCCIterations)
}

// RenderFig1 prints Figure 1's series: per-iteration time for each
// processor count, BSP beside GraphCT.
func RenderFig1(w io.Writer, r *Fig1Result) {
	fmt.Fprintln(w, "FIGURE 1: Connected components execution time by iteration (seconds)")
	fmt.Fprintln(w, "BSP:")
	renderIterationSeries(w, r.Procs, r.BSP)
	fmt.Fprintln(w, "GraphCT:")
	renderIterationSeries(w, r.Procs, r.GraphCT)
	fmt.Fprintf(w, "Totals at %d procs: BSP %.3fs, GraphCT %.3fs\n",
		r.Procs[len(r.Procs)-1], r.BSPTotal, r.GraphCTTotal)
}

func renderIterationSeries(w io.Writer, procs []int, series [][]float64) {
	if len(series) == 0 {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-6s", "iter")
	for _, p := range procs {
		fmt.Fprintf(&sb, " %11s", fmt.Sprintf("%dP", p))
	}
	fmt.Fprintln(w, sb.String())
	iters := len(series[0])
	for it := 0; it < iters; it++ {
		var row strings.Builder
		fmt.Fprintf(&row, "  %-6d", it)
		for pi := range procs {
			fmt.Fprintf(&row, " %11.5f", series[pi][it])
		}
		fmt.Fprintln(w, row.String())
	}
}

// RenderFig2 prints Figure 2's two series per level.
func RenderFig2(w io.Writer, r *Fig2Result) {
	fmt.Fprintln(w, "FIGURE 2: BFS frontier size vs BSP messages per level")
	fmt.Fprintf(w, "source vertex: %d\n", r.Source)
	fmt.Fprintf(w, "  %-6s %14s %14s %8s\n", "level", "frontier", "messages", "ratio")
	for s := 0; s < len(r.Messages); s++ {
		var f int64
		if s < len(r.Frontier) {
			f = r.Frontier[s]
		}
		ratio := "-"
		if s+1 < len(r.Frontier) && r.Frontier[s+1] > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(r.Messages[s])/float64(r.Frontier[s+1]))
		}
		fmt.Fprintf(w, "  %-6d %14d %14d %8s\n", s, f, r.Messages[s], ratio)
	}
	fmt.Fprintln(w, "ratio = messages sent at level s / true next frontier")
}

// RenderFig3 prints Figure 3: per-level time against processor count.
func RenderFig3(w io.Writer, r *Fig3Result) {
	fmt.Fprintln(w, "FIGURE 3: BFS per-level scalability (seconds)")
	fmt.Fprintf(w, "source vertex: %d\n", r.Source)
	fmt.Fprintln(w, "BSP:")
	renderLevelSeries(w, r.Procs, r.BSP)
	fmt.Fprintln(w, "GraphCT:")
	renderLevelSeries(w, r.Procs, r.GraphCT)
	fmt.Fprintf(w, "Totals at %d procs: BSP %.3fs, GraphCT %.3fs\n",
		r.Procs[len(r.Procs)-1], r.BSPTotal, r.GraphCTTotal)
}

func renderLevelSeries(w io.Writer, procs []int, series [][]float64) {
	var hdr strings.Builder
	fmt.Fprintf(&hdr, "  %-6s", "level")
	for _, p := range procs {
		fmt.Fprintf(&hdr, " %11s", fmt.Sprintf("%dP", p))
	}
	fmt.Fprintln(w, hdr.String())
	for lvl, times := range series {
		var row strings.Builder
		fmt.Fprintf(&row, "  %-6d", lvl)
		for _, t := range times {
			fmt.Fprintf(&row, " %11.6f", t)
		}
		fmt.Fprintln(w, row.String())
	}
}

// RenderFig4 prints Figure 4's two scaling curves.
func RenderFig4(w io.Writer, r *Fig4Result) {
	fmt.Fprintln(w, "FIGURE 4: Triangle counting scalability (seconds)")
	fmt.Fprintf(w, "triangles: %d, candidate messages: %d\n", r.Triangles, r.Candidates)
	fmt.Fprintf(w, "  %-8s %12s %12s\n", "procs", "BSP", "GraphCT")
	for i, p := range r.Procs {
		fmt.Fprintf(w, "  %-8d %12.3f %12.3f\n", p, r.BSP[i], r.GraphCT[i])
	}
}

// RenderAux prints the auxiliary counts.
func RenderAux(w io.Writer, r *AuxResult) {
	fmt.Fprintln(w, "AUXILIARY COUNTS")
	fmt.Fprintf(w, "  CC: BSP %d supersteps vs GraphCT %d iterations (paper: 13 vs 6)\n",
		r.BSPCCSupersteps, r.GraphCTCCIterations)
	fmt.Fprintf(w, "  TC: %d candidate messages -> %d triangles (paper: 5.5e9 -> 30.9M)\n",
		r.Candidates, r.Triangles)
	fmt.Fprintf(w, "  TC writes: BSP %d vs GraphCT %d = %.0fx (paper: 181x)\n",
		r.BSPWrites, r.GraphCTWrites, r.WriteRatio)
	fmt.Fprintf(w, "  BFS: %d messages vs %d frontier vertices = %.1fx excess\n",
		r.BFSMessages, r.BFSFrontier, r.MessageExcess)
}
