package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters for the figures, so the series can be re-plotted with any
// external tool. One file per figure, one row per x-axis point, one column
// per series — the layout gnuplot and pandas both ingest directly.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func itoa(v int64) string   { return strconv.FormatInt(v, 10) }

// WriteFig1CSV emits Figure 1's per-iteration times: one row per
// iteration, one column per (model, processor count) pair.
func (r *Fig1Result) WriteFig1CSV(w io.Writer) error {
	header := []string{"iteration"}
	for _, p := range r.Procs {
		header = append(header, fmt.Sprintf("bsp_%dp", p))
	}
	for _, p := range r.Procs {
		header = append(header, fmt.Sprintf("graphct_%dp", p))
	}
	iters := len(r.BSP[0])
	ctIters := len(r.GraphCT[0])
	maxIter := iters
	if ctIters > maxIter {
		maxIter = ctIters
	}
	var rows [][]string
	for it := 0; it < maxIter; it++ {
		row := []string{strconv.Itoa(it)}
		for pi := range r.Procs {
			if it < iters {
				row = append(row, ftoa(r.BSP[pi][it]))
			} else {
				row = append(row, "")
			}
		}
		for pi := range r.Procs {
			if it < ctIters {
				row = append(row, ftoa(r.GraphCT[pi][it]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return writeCSV(w, header, rows)
}

// WriteFig2CSV emits Figure 2: level, frontier, messages.
func (r *Fig2Result) WriteFig2CSV(w io.Writer) error {
	header := []string{"level", "frontier", "messages"}
	var rows [][]string
	for s := 0; s < len(r.Messages); s++ {
		var f int64
		if s < len(r.Frontier) {
			f = r.Frontier[s]
		}
		rows = append(rows, []string{strconv.Itoa(s), itoa(f), itoa(r.Messages[s])})
	}
	return writeCSV(w, header, rows)
}

// WriteFig3CSV emits Figure 3: one row per (model, level), columns per
// processor count.
func (r *Fig3Result) WriteFig3CSV(w io.Writer) error {
	header := []string{"model", "level"}
	for _, p := range r.Procs {
		header = append(header, fmt.Sprintf("t_%dp", p))
	}
	var rows [][]string
	emit := func(model string, series [][]float64) {
		for lvl, times := range series {
			row := []string{model, strconv.Itoa(lvl)}
			for _, t := range times {
				row = append(row, ftoa(t))
			}
			rows = append(rows, row)
		}
	}
	emit("bsp", r.BSP)
	emit("graphct", r.GraphCT)
	return writeCSV(w, header, rows)
}

// WriteFig4CSV emits Figure 4: procs, bsp, graphct.
func (r *Fig4Result) WriteFig4CSV(w io.Writer) error {
	header := []string{"procs", "bsp", "graphct"}
	var rows [][]string
	for i, p := range r.Procs {
		rows = append(rows, []string{strconv.Itoa(p), ftoa(r.BSP[i]), ftoa(r.GraphCT[i])})
	}
	return writeCSV(w, header, rows)
}
