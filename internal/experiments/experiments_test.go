package experiments

import (
	"bytes"
	"strings"
	"testing"

	"graphxmt/internal/graph"
	"graphxmt/internal/machine"
)

// testSetup keeps unit tests fast: a scale-12 instance of the default
// workload (the committed EXPERIMENTS.md numbers use scale 16).
func testSetup() Setup {
	s := DefaultSetup()
	s.Scale = 12
	return s
}

func testGraph(t *testing.T) (*graph.Graph, Setup) {
	t.Helper()
	s := testSetup()
	g, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestTable1Shape(t *testing.T) {
	g, s := testGraph(t)
	res, err := Table1(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// GraphCT wins every algorithm, and BSP stays within roughly an
		// order of magnitude — the paper's headline claim.
		if row.Ratio < 1.2 {
			t.Fatalf("%s: BSP (%.4fs) not slower than GraphCT (%.4fs)",
				row.Algorithm, row.BSP, row.GraphCT)
		}
		if row.Ratio > 20 {
			t.Fatalf("%s: ratio %.1f exceeds the within-a-factor-of-10 band",
				row.Algorithm, row.Ratio)
		}
	}
	// The BSP iteration gap (paper: 13 vs 6).
	if res.BSPCCSupersteps < res.GraphCTCCIterations {
		t.Fatalf("bsp %d supersteps < graphct %d iterations",
			res.BSPCCSupersteps, res.GraphCTCCIterations)
	}
}

func TestFig1Shape(t *testing.T) {
	g, s := testGraph(t)
	res, err := Fig1(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Procs) == 0 || len(res.BSP) != len(res.Procs) {
		t.Fatalf("series sizes wrong: %d procs, %d bsp", len(res.Procs), len(res.BSP))
	}
	last := len(res.Procs) - 1

	// BSP per-iteration time collapses from the first to the last
	// superstep as the active set shrinks.
	// (At scale 12 the collapse is bounded by fixed per-superstep
	// overheads; the full >= 2-orders-of-magnitude span shows at the
	// EXPERIMENTS.md scale.)
	bsp128 := res.BSP[last]
	if bsp128[0] < 3*bsp128[len(bsp128)-1] {
		t.Fatalf("bsp iteration times did not collapse: first %.6f last %.6f",
			bsp128[0], bsp128[len(bsp128)-1])
	}
	// GraphCT iteration time is roughly constant (constant work per
	// iteration).
	ct128 := res.GraphCT[last]
	minT, maxT := ct128[0], ct128[0]
	for _, v := range ct128 {
		if v < minT {
			minT = v
		}
		if v > maxT {
			maxT = v
		}
	}
	if maxT > 1.6*minT {
		t.Fatalf("graphct iteration times not flat: min %.6f max %.6f", minT, maxT)
	}
	// Early BSP iterations scale with processors; the tail does not.
	speedupFirst := res.BSP[0][0] / res.BSP[last][0]
	tail := len(bsp128) - 1
	speedupTail := res.BSP[0][tail] / res.BSP[last][tail]
	if speedupFirst < 4 {
		t.Fatalf("first superstep speedup 8->128 = %.2f, want near-linear", speedupFirst)
	}
	if speedupTail > speedupFirst/2 {
		t.Fatalf("tail superstep speedup %.2f not much below first %.2f",
			speedupTail, speedupFirst)
	}
	if res.BSPTotal <= res.GraphCTTotal {
		t.Fatal("BSP total should exceed GraphCT total")
	}
}

func TestFig2Shape(t *testing.T) {
	g, s := testGraph(t)
	res, err := Fig2(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) < 3 {
		t.Fatalf("too few levels: %v", res.Frontier)
	}
	// Messages at level s bound the next frontier from above.
	for i := 0; i+1 < len(res.Frontier) && i < len(res.Messages); i++ {
		if res.Messages[i] < res.Frontier[i+1] {
			t.Fatalf("level %d: messages %d < next frontier %d",
				i, res.Messages[i], res.Frontier[i+1])
		}
	}
	// Aggregate excess of messages over true frontier (Figure 2's gap).
	var msgs, frontier int64
	for _, m := range res.Messages {
		msgs += m
	}
	for _, f := range res.Frontier {
		frontier += f
	}
	if msgs < 5*frontier {
		t.Fatalf("messages %d vs frontier %d: no order-of-magnitude gap", msgs, frontier)
	}
	// Both series decline after the apex.
	apex := 0
	for i, f := range res.Frontier {
		if f > res.Frontier[apex] {
			apex = i
		}
	}
	lastF := res.Frontier[len(res.Frontier)-1]
	if lastF >= res.Frontier[apex] {
		t.Fatal("frontier did not contract after apex")
	}
}

func TestFig3Shape(t *testing.T) {
	g, s := testGraph(t)
	res, err := Fig3(g, s)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Procs) - 1
	// Find GraphCT's apex level (most work).
	apex := 0
	for i := range res.GraphCT {
		if res.GraphCT[i][0] > res.GraphCT[apex][0] {
			apex = i
		}
	}
	// The apex level scales; the final level does not.
	apexSpeedup := res.GraphCT[apex][0] / res.GraphCT[apex][last]
	if apexSpeedup < 3 {
		t.Fatalf("graphct apex level speedup = %.2f, want scaling", apexSpeedup)
	}
	lastLevel := len(res.GraphCT) - 1
	tailSpeedup := res.GraphCT[lastLevel][0] / res.GraphCT[lastLevel][last]
	if tailSpeedup > apexSpeedup/2 {
		t.Fatalf("graphct tail level speedup %.2f vs apex %.2f: tail should be flat",
			tailSpeedup, apexSpeedup)
	}
	// BSP inner levels scale too (the paper's levels 5-7).
	bapex := 0
	for i := range res.BSP {
		if res.BSP[i][0] > res.BSP[bapex][0] {
			bapex = i
		}
	}
	bspSpeedup := res.BSP[bapex][0] / res.BSP[bapex][last]
	if bspSpeedup < 2 {
		t.Fatalf("bsp apex level speedup = %.2f", bspSpeedup)
	}
	if res.BSPTotal <= res.GraphCTTotal {
		t.Fatal("BSP BFS should be slower in total")
	}
}

func TestFig4Shape(t *testing.T) {
	g, s := testGraph(t)
	res, err := Fig4(g, s)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Procs) - 1
	// Both kernels scale near-linearly (paper: both linear to 128).
	bspSpeedup := res.BSP[0] / res.BSP[last]
	ctSpeedup := res.GraphCT[0] / res.GraphCT[last]
	ideal := float64(res.Procs[last] / res.Procs[0])
	if bspSpeedup < ideal/3 {
		t.Fatalf("bsp TC speedup %.1f of ideal %.0f", bspSpeedup, ideal)
	}
	if ctSpeedup < ideal/3 {
		t.Fatalf("graphct TC speedup %.1f of ideal %.0f", ctSpeedup, ideal)
	}
	// BSP pays a large constant factor.
	if res.BSP[last] < 2*res.GraphCT[last] {
		t.Fatalf("bsp %.4fs vs graphct %.4fs: factor too small",
			res.BSP[last], res.GraphCT[last])
	}
	if res.Candidates <= res.Triangles {
		t.Fatal("candidate messages should exceed triangles")
	}
}

func TestAuxShape(t *testing.T) {
	g, s := testGraph(t)
	res, err := Aux(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.BSPCCSupersteps < res.GraphCTCCIterations {
		t.Fatal("iteration gap missing")
	}
	if res.WriteRatio < 2 {
		t.Fatalf("write ratio = %.1f, want write blowup", res.WriteRatio)
	}
	if res.MessageExcess < 5 {
		t.Fatalf("bfs message excess = %.1f", res.MessageExcess)
	}
}

func TestRenderers(t *testing.T) {
	g, s := testGraph(t)
	var buf bytes.Buffer

	t1, err := Table1(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable1(&buf, t1)
	if !strings.Contains(buf.String(), "TABLE I") || !strings.Contains(buf.String(), "Triangle Counting") {
		t.Fatalf("table output missing sections:\n%s", buf.String())
	}

	buf.Reset()
	f1, err := Fig1(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderFig1(&buf, f1)
	if !strings.Contains(buf.String(), "FIGURE 1") || !strings.Contains(buf.String(), "128P") {
		t.Fatalf("fig1 output wrong:\n%s", buf.String())
	}

	buf.Reset()
	f2, err := Fig2(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderFig2(&buf, f2)
	if !strings.Contains(buf.String(), "FIGURE 2") {
		t.Fatal("fig2 output wrong")
	}

	buf.Reset()
	f3, err := Fig3(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderFig3(&buf, f3)
	if !strings.Contains(buf.String(), "FIGURE 3") {
		t.Fatal("fig3 output wrong")
	}

	buf.Reset()
	f4, err := Fig4(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderFig4(&buf, f4)
	if !strings.Contains(buf.String(), "FIGURE 4") {
		t.Fatal("fig4 output wrong")
	}

	buf.Reset()
	aux, err := Aux(g, s)
	if err != nil {
		t.Fatal(err)
	}
	RenderAux(&buf, aux)
	if !strings.Contains(buf.String(), "181x") {
		t.Fatal("aux output wrong")
	}
}

func TestBFSSourcePicksMaxDegree(t *testing.T) {
	g, _ := testGraph(t)
	src := BFSSource(g)
	d := g.Degree(src)
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > d {
			t.Fatalf("vertex %d has higher degree than source %d", v, src)
		}
	}
}

func TestTable1UnderDESModel(t *testing.T) {
	// The full pipeline also runs under the discrete-event Threadstorm
	// model (small scale: the DES simulates op-by-op). The analytic and
	// DES evaluations must tell the same story: GraphCT wins everything.
	s := DefaultSetup()
	s.Scale = 9
	cfg := machine.DefaultConfig()
	s.Model = machine.NewDES(cfg)
	g, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	des, err := Table1(g, s)
	if err != nil {
		t.Fatal(err)
	}
	s.Model = machine.NewAnalytic(cfg)
	ana, err := Table1(g, s)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range des.Rows {
		if row.Ratio < 1 {
			t.Fatalf("DES: %s ratio %.2f < 1", row.Algorithm, row.Ratio)
		}
		// Per-row agreement between models within a modest factor.
		for _, pair := range [][2]float64{{row.BSP, ana.Rows[i].BSP}, {row.GraphCT, ana.Rows[i].GraphCT}} {
			r := pair[0] / pair[1]
			if r < 1/3.0 || r > 3.0 {
				t.Fatalf("%s: DES %.5fs vs analytic %.5fs (ratio %.2f)",
					row.Algorithm, pair[0], pair[1], r)
			}
		}
	}
}
