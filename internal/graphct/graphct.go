// Package graphct is a Go port of the shared-memory graph kernels the paper
// uses as its baseline: GraphCT's hand-tuned XMT-C algorithms, written
// against the loop-level parallelism of the Cray XMT. Kernels execute for
// real on the host and record a work profile (package trace) whose op
// counts follow the XMT-C implementations' memory-access structure, so the
// machine model (package machine) can reproduce the paper's timings.
//
// Provided kernels mirror GraphCT's published feature list: connected
// components (Shiloach-Vishkin style with in-iteration label propagation),
// level-synchronous breadth-first search, triangle counting and clustering
// coefficients, k-core decomposition, PageRank, sampled betweenness
// centrality, st-connectivity, and degree statistics.
package graphct

import (
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// Cost constants shared by the kernels: the per-operation charges that
// mirror each XMT-C loop body. They are package-level (not per-call)
// because they describe the implementations, not the inputs.
const (
	// ccLoadsPerEdge: adjacency entry + both endpoint labels.
	ccLoadsPerEdge = 3
	// ccIssuePerEdge: compare + branch.
	ccIssuePerEdge = 2

	// bfsLoadsPerEdge: adjacency entry + distance check of the target.
	bfsLoadsPerEdge = 2
	// bfsIssuePerEdge: compare + branch.
	bfsIssuePerEdge = 2
	// bfsStoresPerDiscovery: distance write + queue slot write.
	bfsStoresPerDiscovery = 2
	// bfsClaimChunk: enqueue slots are claimed from the shared queue tail
	// in chunks (per-thread buffering), so one fetch-and-add serves this
	// many discoveries. Bader-Madduri style chunked claiming.
	bfsClaimChunk = 8

	// triIssuePerCmp / triLoadsPerCmp: one merge step of the sorted
	// neighbor-list intersection.
	triIssuePerCmp = 1
	triLoadsPerCmp = 1
)

// CCResult is the output of ConnectedComponents.
type CCResult struct {
	// Labels maps each vertex to its component label (the smallest vertex
	// ID in the component once converged).
	Labels []int64
	// Iterations is the number of full edge-relaxation sweeps needed.
	Iterations int
	// LabelUpdates counts label writes per iteration.
	LabelUpdates []int64
}

// ConnectedComponents labels vertices by connected component using the
// GraphCT shared-memory algorithm: every iteration relaxes all edges,
// propagating smaller labels; a label written early in an iteration is
// visible to later edge relaxations in the same iteration ("label
// propagation in shared memory decreases the number of iterations", as the
// paper's Figure 1 discussion explains). Iterations repeat until a sweep
// makes no update.
//
// The relaxation sweep runs in ascending edge order so that results and
// iteration counts are reproducible; the XMT's unordered sweep converges in
// a statistically identical number of iterations.
func ConnectedComponents(g *graph.Graph, rec *trace.Recorder) *CCResult {
	n := g.NumVertices()
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	res := &CCResult{Labels: labels}
	for {
		ph := rec.StartPhase("cc/iter", res.Iterations)
		var updates int64
		// Gauss-Seidel sweep: labels update in place.
		for v := int64(0); v < n; v++ {
			lv := labels[v]
			for _, w := range g.Neighbors(v) {
				if lw := labels[w]; lw < lv {
					lv = lw
				}
			}
			if lv < labels[v] {
				labels[v] = lv
				updates++
			}
		}
		m := g.NumEdges()
		ph.AddTasks(m, ccIssuePerEdge*m, ccLoadsPerEdge*m, updates)
		ph.ObserveTask(ccIssuePerEdge + ccLoadsPerEdge + 1)
		res.Iterations++
		res.LabelUpdates = append(res.LabelUpdates, updates)
		if updates == 0 {
			break
		}
	}
	return res
}

// BFSResult is the output of BFS.
type BFSResult struct {
	// Dist holds hop distances from the source; -1 for unreachable.
	Dist []int64
	// FrontierSizes holds the number of vertices at each BFS level,
	// starting with level 0 (the source).
	FrontierSizes []int64
	// EdgesScanned holds, per level, the number of adjacency entries
	// examined while expanding that level's frontier.
	EdgesScanned []int64
	// Levels is the number of levels expanded (the eccentricity + 1).
	Levels int
}

// BFS runs the level-synchronous shared-memory breadth-first search of
// Bader and Madduri: each level expands the exact frontier, marking
// undiscovered neighbors and enqueueing each exactly once via chunked
// fetch-and-add claims on the shared next-frontier queue.
func BFS(g *graph.Graph, source int64, rec *trace.Recorder) *BFSResult {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	res := &BFSResult{Dist: dist}
	if source < 0 || source >= n {
		return res
	}
	dist[source] = 0
	frontier := []int64{source}
	level := 0
	for len(frontier) > 0 {
		res.FrontierSizes = append(res.FrontierSizes, int64(len(frontier)))
		ph := rec.StartPhase("bfs/level", level)
		var next []int64
		var edges int64
		for _, v := range frontier {
			nbr := g.Neighbors(v)
			edges += int64(len(nbr))
			for _, w := range nbr {
				if dist[w] < 0 {
					dist[w] = int64(level + 1)
					next = append(next, w)
				}
			}
		}
		discovered := int64(len(next))
		ph.AddTasks(edges, bfsIssuePerEdge*edges, bfsLoadsPerEdge*edges+int64(len(frontier)),
			bfsStoresPerDiscovery*discovered)
		ph.AddHot(trace.HotQueueTail, (discovered+bfsClaimChunk-1)/bfsClaimChunk)
		ph.ObserveTask(bfsIssuePerEdge + bfsLoadsPerEdge + bfsStoresPerDiscovery)
		res.EdgesScanned = append(res.EdgesScanned, edges)
		frontier = next
		level++
	}
	res.Levels = level
	return res
}

// TriangleResult is the output of Triangles.
type TriangleResult struct {
	// Count is the number of distinct triangles in the graph.
	Count int64
	// Writes is the number of memory writes the kernel performed: one per
	// triangle found, the quantity the paper compares against BSP's
	// message writes (30.9M vs 5.6B, a 181x ratio).
	Writes int64
	// CompareOps is the number of sorted-intersection merge steps.
	CompareOps int64
}

// Triangles counts distinct triangles with the shared-memory kernel: for
// every edge (v,u) with v < u, merge the sorted adjacency lists of v and u
// counting common neighbors w > u, so each triangle v < u < w is found
// exactly once. The only writes are the per-discovery counter increments,
// matching the paper's analysis ("the shared memory implementation only
// produces a write when a triangle is detected").
//
// The graph must be undirected with sorted adjacency.
func Triangles(g *graph.Graph, rec *trace.Recorder) *TriangleResult {
	if !g.SortedAdjacency() {
		panic("graphct: Triangles requires sorted adjacency")
	}
	n := g.NumVertices()
	ph := rec.StartPhase("tri/count", 0)
	// With detailed recording on, capture each pair's true merge cost so
	// the discrete-event model sees the real task-size skew (hub pairs are
	// thousands of times costlier than leaf pairs on scale-free graphs).
	const detailCap = 1 << 20
	recordDetail := rec.Detail() && g.NumEdges()/2 <= detailCap
	var count, cmps int64
	var maxPair int64
	for v := int64(0); v < n; v++ {
		nv := g.Neighbors(v)
		for _, u := range nv {
			if u <= v {
				continue
			}
			nu := g.Neighbors(u)
			c, steps := countCommonGreater(nv, nu, u)
			count += c
			cmps += steps
			if pair := int64(len(nv) + len(nu)); pair > maxPair {
				maxPair = pair
			}
			if recordDetail {
				ph.AddDetail(trace.TaskCost{
					Issue: uint32(steps * triIssuePerCmp),
					Mem:   uint32(steps*triLoadsPerCmp + 2),
				})
			}
		}
	}
	m := g.NumEdges() / 2 // (v,u) pairs with v < u
	ph.AddTasks(m, triIssuePerCmp*cmps, triLoadsPerCmp*cmps+2*m, count)
	ph.ObserveTask(maxPair * (triIssuePerCmp + triLoadsPerCmp))
	return &TriangleResult{Count: count, Writes: count, CompareOps: cmps}
}

// countCommonGreater merges sorted lists a and b counting common elements
// strictly greater than floor; it also reports merge steps taken.
func countCommonGreater(a, b []int64, floor int64) (count, steps int64) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		steps++
		switch {
		case a[i] == b[j]:
			if a[i] > floor {
				count++
			}
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return count, steps
}

// ClusteringResult is the output of ClusteringCoefficients.
type ClusteringResult struct {
	// PerVertex holds each vertex's local clustering coefficient:
	// triangles(v) / (deg(v) * (deg(v)-1) / 2); 0 for degree < 2.
	PerVertex []float64
	// TrianglesPerVertex holds the number of triangles through each vertex.
	TrianglesPerVertex []int64
	// Global is the graph transitivity: 3*triangles / open+closed wedges.
	Global float64
	// Triangles is the distinct triangle count.
	Triangles int64
}

// ClusteringCoefficients computes local and global clustering coefficients
// using the triangle kernel's intersection structure, crediting each
// triangle to all three corners.
func ClusteringCoefficients(g *graph.Graph, rec *trace.Recorder) *ClusteringResult {
	if !g.SortedAdjacency() {
		panic("graphct: ClusteringCoefficients requires sorted adjacency")
	}
	n := g.NumVertices()
	perVertex := make([]int64, n)
	ph := rec.StartPhase("ccoef/count", 0)
	var count, cmps int64
	for v := int64(0); v < n; v++ {
		nv := g.Neighbors(v)
		for _, u := range nv {
			if u <= v {
				continue
			}
			nu := g.Neighbors(u)
			i, j := 0, 0
			for i < len(nv) && j < len(nu) {
				cmps++
				switch {
				case nv[i] == nu[j]:
					if w := nv[i]; w > u {
						count++
						perVertex[v]++
						perVertex[u]++
						perVertex[w]++
					}
					i++
					j++
				case nv[i] < nu[j]:
					i++
				default:
					j++
				}
			}
		}
	}
	m := g.NumEdges() / 2
	ph.AddTasks(m, cmps, cmps+2*m, 3*count)

	res := &ClusteringResult{
		PerVertex:          make([]float64, n),
		TrianglesPerVertex: perVertex,
		Triangles:          count,
	}
	var wedges int64
	for v := int64(0); v < n; v++ {
		d := g.Degree(v)
		possible := d * (d - 1) / 2
		wedges += possible
		if possible > 0 {
			res.PerVertex[v] = float64(perVertex[v]) / float64(possible)
		}
	}
	if wedges > 0 {
		res.Global = 3 * float64(count) / float64(wedges)
	}
	return res
}

// STConnectivity reports whether t is reachable from s, and the hop
// distance if so (-1 otherwise). It runs the level-synchronous BFS and
// stops as soon as t's level completes.
func STConnectivity(g *graph.Graph, s, t int64, rec *trace.Recorder) (bool, int64) {
	n := g.NumVertices()
	if s < 0 || s >= n || t < 0 || t >= n {
		return false, -1
	}
	if s == t {
		return true, 0
	}
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	frontier := []int64{s}
	level := 0
	for len(frontier) > 0 {
		ph := rec.StartPhase("stcon/level", level)
		var next []int64
		var edges int64
		for _, v := range frontier {
			nbr := g.Neighbors(v)
			edges += int64(len(nbr))
			for _, w := range nbr {
				if dist[w] < 0 {
					dist[w] = int64(level + 1)
					next = append(next, w)
				}
			}
		}
		ph.AddTasks(edges, bfsIssuePerEdge*edges, bfsLoadsPerEdge*edges, 2*int64(len(next)))
		if dist[t] >= 0 {
			return true, dist[t]
		}
		frontier = next
		level++
	}
	return false, -1
}
