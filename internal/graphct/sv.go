package graphct

import (
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// SVResult is the output of ConnectedComponentsSV.
type SVResult struct {
	// Labels maps each vertex to the smallest vertex ID in its component.
	Labels []int64
	// Iterations is the number of hook+compress rounds.
	Iterations int
	// Hooks and Jumps count the tree mutations performed, for
	// cross-checking work against the relaxation kernel.
	Hooks, Jumps int64
}

// ConnectedComponentsSV is the classical Shiloach-Vishkin algorithm the
// paper names as GraphCT's basis: vertices live in a pointer forest;
// every round (1) hooks — for every edge (u,v), the root of the
// higher-labeled endpoint is pointed at the lower label — and (2)
// compresses — every vertex jumps its pointer to its grandparent until the
// forest is flat. Rounds repeat until a full pass changes nothing. The
// result equals ConnectedComponents' labels (tests enforce it); the two
// kernels differ only in intra-iteration work structure.
func ConnectedComponentsSV(g *graph.Graph, rec *trace.Recorder) *SVResult {
	n := g.NumVertices()
	parent := make([]int64, n)
	for i := range parent {
		parent[i] = int64(i)
	}
	res := &SVResult{}
	for {
		ph := rec.StartPhase("sv/round", res.Iterations)
		var changed int64

		// Hook: connect roots along edges toward smaller labels.
		var hooks int64
		for u := int64(0); u < n; u++ {
			for _, v := range g.Neighbors(u) {
				pu, pv := parent[u], parent[v]
				// Hook only roots to keep the forest acyclic
				// (Shiloach-Vishkin's conditional hook).
				if pv < pu && parent[pu] == pu {
					parent[pu] = pv
					hooks++
					changed++
				}
			}
		}

		// Compress: pointer jumping until every vertex points at a root.
		var jumps int64
		for {
			var jumped int64
			for v := int64(0); v < n; v++ {
				p := parent[v]
				gp := parent[p]
				if gp != p {
					parent[v] = gp
					jumped++
				}
			}
			jumps += jumped
			if jumped == 0 {
				break
			}
		}

		m := g.NumEdges()
		// Hook pass reads each edge + two parents; compress passes read
		// parent chains.
		ph.AddTasks(m+n, 2*(m+n), 3*m+2*(jumps+n), hooks+jumps)
		ph.ObserveTask(6)
		res.Hooks += hooks
		res.Jumps += jumps
		res.Iterations++
		if changed == 0 {
			break
		}
	}
	res.Labels = parent
	return res
}

// ApproxDiameter estimates the graph's diameter (longest shortest path in
// the largest component) with the standard double-sweep heuristic GraphCT
// workflows use: BFS from a start vertex, then BFS again from the farthest
// vertex found, repeating a few times; the largest eccentricity seen is a
// lower bound that is exact on trees and extremely tight on small-world
// graphs.
func ApproxDiameter(g *graph.Graph, start int64, sweeps int, rec *trace.Recorder) int64 {
	if sweeps <= 0 {
		sweeps = 4
	}
	n := g.NumVertices()
	if n == 0 || start < 0 || start >= n {
		return -1
	}
	best := int64(-1)
	src := start
	for s := 0; s < sweeps; s++ {
		res := BFS(g, src, rec)
		var far, ecc int64 = src, -1
		for v := int64(0); v < n; v++ {
			if res.Dist[v] > ecc {
				ecc, far = res.Dist[v], v
			}
		}
		if ecc <= best {
			break // converged: no farther vertex found
		}
		best = ecc
		src = far
	}
	return best
}
