package graphct

import (
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// SSSPResult is the output of BellmanFordSSSP.
type SSSPResult struct {
	// Dist holds shortest-path distances from the source; -1 when
	// unreachable.
	Dist []int64
	// Iterations is the number of full relaxation sweeps (including the
	// final fixed-point check).
	Iterations int
	// Relaxations counts successful distance improvements.
	Relaxations int64
}

// BellmanFordSSSP is the shared-memory single-source shortest paths kernel
// in GraphCT's style: full Bellman-Ford edge-relaxation sweeps over the
// whole edge set until a sweep improves nothing, with in-sweep propagation
// (a distance written early in a sweep is visible to later relaxations) —
// the same Gauss-Seidel structure as the connected-components kernel, and
// the shared-memory counterpart of the BSP SSSP program. Weights must be
// non-negative.
func BellmanFordSSSP(g *graph.Graph, source int64, rec *trace.Recorder) *SSSPResult {
	if !g.Weighted() {
		panic("graphct: BellmanFordSSSP requires a weighted graph")
	}
	n := g.NumVertices()
	const inf = int64(1) << 62
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	res := &SSSPResult{}
	if source >= 0 && source < n {
		dist[source] = 0
		for {
			ph := rec.StartPhase("sssp/iter", res.Iterations)
			var relaxed int64
			for v := int64(0); v < n; v++ {
				dv := dist[v]
				if dv >= inf {
					continue
				}
				nbr := g.Neighbors(v)
				wts := g.NeighborWeights(v)
				for i, w := range nbr {
					if nd := dv + wts[i]; nd < dist[w] {
						dist[w] = nd
						relaxed++
					}
				}
			}
			m := g.NumEdges()
			// Sweep reads every live vertex's adjacency + weights, writes
			// per successful relaxation.
			ph.AddTasks(m, 2*m, 4*m, relaxed)
			ph.ObserveTask(7)
			res.Iterations++
			res.Relaxations += relaxed
			if relaxed == 0 {
				break
			}
		}
	}
	for i, d := range dist {
		if d >= inf {
			dist[i] = -1
		}
	}
	res.Dist = dist
	return res
}
