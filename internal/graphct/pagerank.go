package graphct

import (
	"math"

	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// PageRankOptions configures PageRank.
type PageRankOptions struct {
	// Damping is the damping factor; 0 selects the customary 0.85.
	Damping float64
	// Tolerance is the L1 convergence threshold; 0 selects 1e-8.
	Tolerance float64
	// MaxIterations bounds the power iteration; 0 selects 100.
	MaxIterations int
}

// PageRankResult is the output of PageRank.
type PageRankResult struct {
	// Rank holds the stationary probability of each vertex; sums to 1.
	Rank []float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// Delta is the final L1 change.
	Delta float64
	// Converged reports whether Delta <= Tolerance within MaxIterations.
	Converged bool
}

// PageRank runs the classical power iteration over the graph. Directed
// graphs follow edge direction (rank flows u -> v along u's out-edges);
// undirected graphs treat each stored entry as an out-edge, the standard
// symmetric formulation. Vertices without out-edges distribute their rank
// uniformly (the dangling-node correction).
func PageRank(g *graph.Graph, opt PageRankOptions, rec *trace.Recorder) *PageRankResult {
	if opt.Damping == 0 {
		opt.Damping = 0.85
	}
	if opt.Tolerance == 0 {
		opt.Tolerance = 1e-8
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 100
	}
	n := g.NumVertices()
	res := &PageRankResult{}
	if n == 0 {
		return res
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	d := opt.Damping
	for res.Iterations < opt.MaxIterations {
		ph := rec.StartPhase("pagerank/iter", res.Iterations)
		var dangling float64
		for v := int64(0); v < n; v++ {
			if g.Degree(v) == 0 {
				dangling += rank[v]
			}
		}
		base := (1-d)*inv + d*dangling*inv
		for i := range next {
			next[i] = base
		}
		for v := int64(0); v < n; v++ {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			share := d * rank[v] / float64(deg)
			for _, w := range g.Neighbors(v) {
				next[w] += share
			}
		}
		var delta float64
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		res.Iterations++
		res.Delta = delta
		m := g.NumEdges()
		// Scatter loop: read rank + degree per vertex, read adjacency +
		// read-modify-write target per edge.
		ph.AddTasks(m, 2*m, 2*m+2*n, m+n)
		ph.ObserveTask(5)
		if delta <= opt.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Rank = rank
	return res
}
