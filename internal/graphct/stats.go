package graphct

import (
	"math"
	"sort"

	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// DegreeStats summarizes a graph's degree distribution; GraphCT exposes the
// same summary as a workflow utility.
type DegreeStats struct {
	Min, Max  int64
	Mean      float64
	Variance  float64
	Median    int64
	P99, P999 int64
	Isolated  int64 // vertices of degree 0
	GiniIndex float64
}

// Degrees computes degree distribution statistics. The Gini index measures
// skew (0 = all equal, ->1 = extreme concentration), a compact signal of
// the scale-free property the paper's background section discusses.
func Degrees(g *graph.Graph, rec *trace.Recorder) DegreeStats {
	n := g.NumVertices()
	ph := rec.StartPhase("stats/degrees", 0)
	ph.AddTasks(n, n, n, 0)
	var s DegreeStats
	if n == 0 {
		return s
	}
	degs := make([]int64, n)
	var sum, sumSq float64
	s.Min = math.MaxInt64
	for v := int64(0); v < n; v++ {
		d := g.Degree(v)
		degs[v] = d
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.Mean = sum / float64(n)
	s.Variance = sumSq/float64(n) - s.Mean*s.Mean
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	s.Median = degs[n/2]
	s.P99 = degs[min64(n-1, n*99/100)]
	s.P999 = degs[min64(n-1, n*999/1000)]
	if sum > 0 {
		// Gini over the sorted degree sequence.
		var cum float64
		for i, d := range degs {
			cum += float64(d) * float64(2*(i+1)-int(n)-1)
		}
		s.GiniIndex = cum / (float64(n) * sum)
	}
	return s
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ComponentSizes returns the size of each component given a labeling, as a
// map label -> size, plus the size of the largest component.
func ComponentSizes(labels []int64) (map[int64]int64, int64) {
	sizes := make(map[int64]int64)
	for _, l := range labels {
		sizes[l]++
	}
	var max int64
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return sizes, max
}

// Assortativity computes the degree assortativity coefficient (Newman's
// Pearson correlation of degrees across edges): positive when high-degree
// vertices attach to high-degree vertices, negative when hubs attach to
// leaves. Scale-free graphs like RMAT are typically disassortative, a
// property the paper's background section's "skewed degree distribution"
// discussion implies. Returns 0 for graphs with fewer than 2 edges or no
// degree variance.
func Assortativity(g *graph.Graph, rec *trace.Recorder) float64 {
	m := g.NumEdges()
	ph := rec.StartPhase("stats/assortativity", 0)
	ph.AddTasks(m, m, 2*m, 0)
	if m < 2 {
		return 0
	}
	// Pearson correlation over directed entries (each undirected edge
	// contributes both orientations, the standard convention).
	var sx, sy, sxx, syy, sxy float64
	for v := int64(0); v < g.NumVertices(); v++ {
		dv := float64(g.Degree(v))
		for _, w := range g.Neighbors(v) {
			dw := float64(g.Degree(w))
			sx += dv
			sy += dw
			sxx += dv * dv
			syy += dw * dw
			sxy += dv * dw
		}
	}
	n := float64(m)
	cov := sxy/n - (sx/n)*(sy/n)
	varx := sxx/n - (sx/n)*(sx/n)
	vary := syy/n - (sy/n)*(sy/n)
	if varx <= 0 || vary <= 0 {
		return 0
	}
	return cov / math.Sqrt(varx*vary)
}
