package graphct

import (
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// KCoreResult is the output of KCore.
type KCoreResult struct {
	// Core holds the core number of each vertex: the largest k such that
	// the vertex belongs to the k-core (the maximal subgraph where every
	// vertex has degree >= k).
	Core []int64
	// MaxCore is the degeneracy of the graph.
	MaxCore int64
	// Rounds is the number of parallel peeling rounds performed.
	Rounds int
}

// KCore computes the full k-core decomposition with parallel peeling, the
// style GraphCT's k-core kernel uses on the XMT: for k = 1, 2, ... the
// kernel repeatedly removes all vertices whose residual degree is below k
// until none remain, assigning core numbers as vertices fall out.
func KCore(g *graph.Graph, rec *trace.Recorder) *KCoreResult {
	n := g.NumVertices()
	deg := make([]int64, n)
	for v := int64(0); v < n; v++ {
		deg[v] = g.Degree(v)
	}
	core := make([]int64, n)
	removed := make([]bool, n)
	remaining := n
	res := &KCoreResult{Core: core}

	for k := int64(1); remaining > 0; k++ {
		// Peel everything of residual degree < k, cascading.
		for {
			ph := rec.StartPhase("kcore/peel", res.Rounds)
			res.Rounds++
			var peel []int64
			for v := int64(0); v < n; v++ {
				if !removed[v] && deg[v] < k {
					peel = append(peel, v)
				}
			}
			// One scan over the vertex set plus degree updates along the
			// peeled vertices' edges.
			var touched int64
			for _, v := range peel {
				removed[v] = true
				core[v] = k - 1
				remaining--
				for _, w := range g.Neighbors(v) {
					touched++
					if !removed[w] {
						deg[w]--
					}
				}
			}
			ph.AddTasks(n+touched, n+2*touched, n+2*touched, int64(len(peel))+touched)
			if len(peel) == 0 {
				break
			}
		}
		if remaining > 0 && k-1 > res.MaxCore {
			res.MaxCore = k - 1
		}
	}
	for _, c := range core {
		if c > res.MaxCore {
			res.MaxCore = c
		}
	}
	return res
}
