package graphct

import (
	"sync/atomic"

	"graphxmt/internal/fullempty"
	"graphxmt/internal/graph"
	"graphxmt/internal/par"
	"graphxmt/internal/trace"
)

// ParallelBFS is the level-synchronous BFS written the way the XMT-C
// kernel actually is: host-parallel over the frontier, with discoveries
// claimed via compare-and-swap on the distance array and next-frontier
// slots claimed with fetch-and-add on a shared tail counter
// (fullempty.FetchAdd — the int_fetch_add of the machine). It produces
// exactly the same distances, frontier sizes and work profile as BFS (the
// sequential-host twin); tests enforce the equivalence. Use it when the
// host has cores to spare; use BFS when strict sequential determinism of
// intermediate orderings matters.
func ParallelBFS(g *graph.Graph, source int64, rec *trace.Recorder) *BFSResult {
	n := g.NumVertices()
	dist := make([]int64, n)
	par.FillInt64(dist, -1)
	res := &BFSResult{Dist: dist}
	if source < 0 || source >= n {
		return res
	}
	dist[source] = 0
	frontier := []int64{source}
	next := make([]int64, n)
	level := 0
	for len(frontier) > 0 {
		res.FrontierSizes = append(res.FrontierSizes, int64(len(frontier)))
		ph := rec.StartPhase("bfs/level", level)
		var tail int64 // shared next-frontier queue tail, claimed by fetch-and-add
		var edges int64
		lvl := int64(level)
		par.ForChunked(len(frontier), func(lo, hi int) {
			var localEdges int64
			for i := lo; i < hi; i++ {
				v := frontier[i]
				nbr := g.Neighbors(v)
				localEdges += int64(len(nbr))
				for _, w := range nbr {
					// Claim the vertex: only one thread wins the CAS from
					// -1, exactly like the XMT's synchronized store.
					if atomic.LoadInt64(&dist[w]) >= 0 {
						continue
					}
					if atomic.CompareAndSwapInt64(&dist[w], -1, lvl+1) {
						slot := fullempty.FetchAdd(&tail, 1)
						next[slot] = w
					}
				}
			}
			atomic.AddInt64(&edges, localEdges)
		})
		discovered := tail
		ph.AddTasks(edges, bfsIssuePerEdge*edges, bfsLoadsPerEdge*edges+int64(len(frontier)),
			bfsStoresPerDiscovery*discovered)
		ph.AddHot(trace.HotQueueTail, (discovered+bfsClaimChunk-1)/bfsClaimChunk)
		ph.ObserveTask(bfsIssuePerEdge + bfsLoadsPerEdge + bfsStoresPerDiscovery)
		res.EdgesScanned = append(res.EdgesScanned, edges)
		frontier = append(frontier[:0], next[:discovered]...)
		level++
	}
	res.Levels = level
	return res
}
