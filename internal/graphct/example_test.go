package graphct_test

import (
	"fmt"

	"graphxmt/internal/gen"
	"graphxmt/internal/graphct"
	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

// ExampleConnectedComponents labels a clique chain (a single component),
// then evaluates the recorded work profile on the simulated Cray XMT. A
// tiny 12-vertex graph is barrier-dominated, so adding processors does not
// help — the flat-scaling regime the paper observes on small frontiers; a
// real workload (see the package tests) scales.
func ExampleConnectedComponents() {
	g := gen.CliqueChain(3, 4) // one connected component of 12 vertices
	rec := trace.NewRecorder()
	res := graphct.ConnectedComponents(g, rec)
	sizes, largest := graphct.ComponentSizes(res.Labels)
	fmt.Println("components:", len(sizes))
	fmt.Println("largest:", largest)

	model := machine.NewAnalytic(machine.DefaultConfig())
	t8 := machine.Seconds(model, rec.Phases(), 8)
	t128 := machine.Seconds(model, rec.Phases(), 128)
	fmt.Println("tiny graph scales with processors:", t128 < t8)
	// Output:
	// components: 1
	// largest: 12
	// tiny graph scales with processors: false
}

// ExampleBFS traverses a 4x4 grid, reporting frontier sizes per level —
// the quantity behind the paper's Figure 2.
func ExampleBFS() {
	g := gen.Grid(4, 4)
	res := graphct.BFS(g, 0, nil)
	fmt.Println("levels:", res.Levels)
	fmt.Println("frontiers:", res.FrontierSizes)
	// Output:
	// levels: 7
	// frontiers: [1 2 3 4 3 2 1]
}

// ExampleTriangles counts triangles in a complete graph: K5 has C(5,3)=10.
func ExampleTriangles() {
	res := graphct.Triangles(gen.Complete(5), nil)
	fmt.Println("triangles:", res.Count)
	fmt.Println("writes:", res.Writes)
	// Output:
	// triangles: 10
	// writes: 10
}

// ExampleKCore decomposes a clique with a pendant vertex.
func ExampleKCore() {
	// K4 plus a pendant hanging off vertex 3.
	g := gen.CliqueChain(1, 4)
	res := graphct.KCore(g, nil)
	fmt.Println("degeneracy:", res.MaxCore)
	// Output:
	// degeneracy: 3
}
