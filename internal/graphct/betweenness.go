package graphct

import (
	"graphxmt/internal/graph"
	"graphxmt/internal/rng"
	"graphxmt/internal/trace"
)

// BetweennessOptions configures Betweenness.
type BetweennessOptions struct {
	// Samples is the number of source vertices for the approximate
	// algorithm; 0 computes exact betweenness from every vertex. GraphCT's
	// k-betweenness kernels are sampled in exactly this style on massive
	// graphs [Madduri, Ediger, Jiang, Bader, Chavarria-Miranda, MTAAP'09].
	Samples int
	// Seed selects the sampled sources deterministically.
	Seed uint64
}

// BetweennessResult is the output of Betweenness.
type BetweennessResult struct {
	// Score holds each vertex's (approximate) betweenness centrality. For
	// sampled runs scores are scaled by n/samples so they estimate the
	// exact values.
	Score []float64
	// Sources lists the BFS roots actually used.
	Sources []int64
}

// Betweenness computes betweenness centrality with Brandes' algorithm:
// one BFS per source builds shortest-path counts, then a reverse sweep
// accumulates pair dependencies. Unweighted graphs only. For undirected
// graphs each pair is counted twice (standard convention; halve if needed).
func Betweenness(g *graph.Graph, opt BetweennessOptions, rec *trace.Recorder) *BetweennessResult {
	n := g.NumVertices()
	res := &BetweennessResult{Score: make([]float64, n)}
	if n == 0 {
		return res
	}
	if opt.Samples <= 0 || int64(opt.Samples) >= n {
		for s := int64(0); s < n; s++ {
			res.Sources = append(res.Sources, s)
		}
	} else {
		r := rng.New(opt.Seed)
		seen := make(map[int64]bool, opt.Samples)
		for len(res.Sources) < opt.Samples {
			s := int64(r.Uint64n(uint64(n)))
			if !seen[s] {
				seen[s] = true
				res.Sources = append(res.Sources, s)
			}
		}
	}

	scale := 1.0
	if len(res.Sources) > 0 && int64(len(res.Sources)) < n {
		scale = float64(n) / float64(len(res.Sources))
	}

	sigma := make([]float64, n)
	dist := make([]int64, n)
	delta := make([]float64, n)
	order := make([]int64, 0, n)

	for si, s := range res.Sources {
		ph := rec.StartPhase("bc/source", si)
		for i := int64(0); i < n; i++ {
			sigma[i], dist[i], delta[i] = 0, -1, 0
		}
		order = order[:0]
		sigma[s] = 1
		dist[s] = 0
		frontier := []int64{s}
		var edges int64
		for len(frontier) > 0 {
			order = append(order, frontier...)
			var next []int64
			for _, v := range frontier {
				dv := dist[v]
				for _, w := range g.Neighbors(v) {
					edges++
					if dist[w] < 0 {
						dist[w] = dv + 1
						next = append(next, w)
					}
					if dist[w] == dv+1 {
						sigma[w] += sigma[v]
					}
				}
			}
			frontier = next
		}
		// Reverse sweep: accumulate dependencies from the leaves inward.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			dw := dist[w]
			for _, v := range g.Neighbors(w) {
				edges++
				if dist[v] == dw-1 && sigma[w] > 0 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if w != s {
				res.Score[w] += delta[w] * scale
			}
		}
		ph.AddTasks(edges, 3*edges, 3*edges, 2*int64(len(order)))
		ph.ObserveTask(6)
	}
	return res
}
