package graphct

import (
	"sync"
	"testing"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
)

var (
	benchOnce sync.Once
	benchG    *graph.Graph
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchG, err = gen.RMAT(gen.RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 1})
		if err != nil {
			panic(err)
		}
	})
	return benchG
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g, nil)
	}
}

func BenchmarkConnectedComponentsSV(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponentsSV(g, nil)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0, nil)
	}
}

func BenchmarkParallelBFS(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelBFS(g, 0, nil)
	}
}

func BenchmarkTriangles(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Triangles(g, nil)
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, PageRankOptions{MaxIterations: 10, Tolerance: 1e-12}, nil)
	}
}

func BenchmarkKCore(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KCore(g, nil)
	}
}
