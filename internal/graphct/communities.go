package graphct

import (
	"math"

	"graphxmt/internal/graph"
	"graphxmt/internal/rng"
	"graphxmt/internal/trace"
)

// PluralityLabel picks the winning label from neighbor-label counts: the
// most frequent label, keeping the current label when it ties for the
// maximum, and otherwise breaking ties with a per-round hash. A plain
// minimum tie-break would degenerate label propagation into min-label
// flooding (i.e. connected components) during the all-labels-distinct
// opening rounds; hashing keeps the choice deterministic without that
// bias. Shared by the shared-memory and BSP variants.
func PluralityLabel(counts map[int64]int64, current int64, round int) int64 {
	var maxCount int64 = -1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount <= 0 {
		return current
	}
	if counts[current] == maxCount {
		return current
	}
	best := current
	bestH := uint64(math.MaxUint64)
	for l, c := range counts {
		if c != maxCount {
			continue
		}
		h := rng.Mix64(uint64(l) ^ uint64(round)*0x9e3779b97f4a7c15)
		if h < bestH || (h == bestH && l < best) {
			best, bestH = l, h
		}
	}
	return best
}

// CommunityOptions configures LabelPropagation.
type CommunityOptions struct {
	// MaxIterations bounds the sweeps; 0 selects 50.
	MaxIterations int
}

// CommunityResult is the output of LabelPropagation.
type CommunityResult struct {
	// Labels assigns each vertex a community label.
	Labels []int64
	// Communities is the number of distinct labels.
	Communities int64
	// Iterations performed.
	Iterations int
	// Converged reports whether a full sweep made no change.
	Converged bool
}

// LabelPropagation detects communities with the label propagation
// algorithm of Raghavan, Albert and Kumara, in the shared-memory style of
// the authors' "parallel community detection for massive graphs" line of
// work: every sweep each vertex adopts the label held by the plurality of
// its neighbors (smallest label wins ties, which makes the sweep
// deterministic), reading labels in place so updates propagate within a
// sweep — the same in-iteration propagation that distinguishes the
// shared-memory connected-components kernel from its BSP counterpart.
func LabelPropagation(g *graph.Graph, opt CommunityOptions, rec *trace.Recorder) *CommunityResult {
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 50
	}
	n := g.NumVertices()
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	res := &CommunityResult{Labels: labels}
	counts := make(map[int64]int64)
	for res.Iterations < opt.MaxIterations {
		ph := rec.StartPhase("lp/iter", res.Iterations)
		var changes int64
		for v := int64(0); v < n; v++ {
			nbr := g.Neighbors(v)
			if len(nbr) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, w := range nbr {
				counts[labels[w]]++
			}
			best := PluralityLabel(counts, labels[v], res.Iterations)
			if best != labels[v] {
				labels[v] = best
				changes++
			}
		}
		m := g.NumEdges()
		ph.AddTasks(m, 2*m, 2*m+n, changes)
		res.Iterations++
		if changes == 0 {
			res.Converged = true
			break
		}
	}
	res.Communities = graph.CountComponents(labels)
	return res
}

// Modularity computes the Newman modularity Q of a labeling on an
// undirected graph: the fraction of edges inside communities minus the
// expectation under the configuration model. Useful for judging community
// quality across algorithms.
func Modularity(g *graph.Graph, labels []int64) float64 {
	m2 := float64(g.NumEdges()) // = 2m for undirected storage
	if m2 == 0 {
		return 0
	}
	var inside float64
	degSum := make(map[int64]float64)
	for v := int64(0); v < g.NumVertices(); v++ {
		degSum[labels[v]] += float64(g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if labels[v] == labels[w] {
				inside++
			}
		}
	}
	q := inside / m2
	for _, d := range degSum {
		q -= (d / m2) * (d / m2)
	}
	return q
}
