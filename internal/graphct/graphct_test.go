package graphct

import (
	"math"
	"testing"
	"testing/quick"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/machine"
	"graphxmt/internal/par"
	"graphxmt/internal/rng"
	"graphxmt/internal/trace"
)

func randomGraph(seed uint64, n int64, m int) *graph.Graph {
	r := rng.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int64(r.Uint64n(uint64(n))), V: int64(r.Uint64n(uint64(n)))}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{SortAdjacency: true})
}

func TestConnectedComponentsMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := randomGraph(seed, 60, 90)
		got := ConnectedComponents(g, nil)
		want := graph.ReferenceComponents(g)
		for v := range want {
			if got.Labels[v] != want[v] {
				t.Fatalf("seed %d: labels[%d] = %d, want %d", seed, v, got.Labels[v], want[v])
			}
		}
	}
}

func TestConnectedComponentsOnRMAT(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 11, EdgeFactor: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := ConnectedComponents(g, nil)
	want := graph.ReferenceComponents(g)
	for v := range want {
		if got.Labels[v] != want[v] {
			t.Fatalf("labels[%d] = %d, want %d", v, got.Labels[v], want[v])
		}
	}
	// Small-world graphs converge in a handful of sweeps.
	if got.Iterations > 10 {
		t.Fatalf("iterations = %d, expected few", got.Iterations)
	}
	// The final iteration is the fixed-point check with zero updates.
	if got.LabelUpdates[len(got.LabelUpdates)-1] != 0 {
		t.Fatal("last iteration should make no updates")
	}
}

func TestConnectedComponentsRecordsPhases(t *testing.T) {
	g := gen.Ring(32)
	rec := trace.NewRecorder()
	res := ConnectedComponents(g, rec)
	phases := rec.PhasesNamed("cc/iter")
	if len(phases) != res.Iterations {
		t.Fatalf("phases = %d, iterations = %d", len(phases), res.Iterations)
	}
	for _, p := range phases {
		if p.Tasks != g.NumEdges() {
			t.Fatalf("phase tasks = %d, want %d edges", p.Tasks, g.NumEdges())
		}
		if p.Loads != ccLoadsPerEdge*g.NumEdges() {
			t.Fatalf("phase loads = %d", p.Loads)
		}
	}
}

func TestBFSMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := randomGraph(seed, 50, 80)
		got := BFS(g, 0, nil)
		want := graph.ReferenceBFS(g, 0)
		for v := range want {
			if got.Dist[v] != want[v] {
				t.Fatalf("seed %d: dist[%d] = %d, want %d", seed, v, got.Dist[v], want[v])
			}
		}
	}
}

func TestBFSFrontierAccounting(t *testing.T) {
	g := gen.Path(6) // 0-1-2-3-4-5
	rec := trace.NewRecorder()
	res := BFS(g, 0, rec)
	if res.Levels != 6 {
		t.Fatalf("levels = %d, want 6", res.Levels)
	}
	for i, f := range res.FrontierSizes {
		if f != 1 {
			t.Fatalf("frontier[%d] = %d, want 1", i, f)
		}
	}
	// Frontier sizes must sum to the reachable vertex count.
	var sum int64
	for _, f := range res.FrontierSizes {
		sum += f
	}
	if sum != 6 {
		t.Fatalf("frontier sum = %d", sum)
	}
	if len(rec.PhasesNamed("bfs/level")) != res.Levels {
		t.Fatal("one phase per level expected")
	}
}

func TestBFSInvalidSource(t *testing.T) {
	g := gen.Ring(4)
	res := BFS(g, -1, nil)
	for _, d := range res.Dist {
		if d != -1 {
			t.Fatal("invalid source should reach nothing")
		}
	}
	if res.Levels != 0 {
		t.Fatalf("levels = %d", res.Levels)
	}
}

func TestBFSEdgesScannedEqualsFrontierDegrees(t *testing.T) {
	g := randomGraph(7, 40, 100)
	res := BFS(g, 0, nil)
	// Sum of edges scanned must equal sum of degrees of reachable vertices.
	var scanned, wantScanned int64
	for _, e := range res.EdgesScanned {
		scanned += e
	}
	for v := int64(0); v < g.NumVertices(); v++ {
		if res.Dist[v] >= 0 {
			wantScanned += g.Degree(v)
		}
	}
	if scanned != wantScanned {
		t.Fatalf("edges scanned %d, want %d", scanned, wantScanned)
	}
}

func TestTrianglesKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"K4", gen.Complete(4), 4},
		{"K6", gen.Complete(6), 20},
		{"ring", gen.Ring(10), 0},
		{"tree", gen.BinaryTree(15), 0},
		{"cliquechain", gen.CliqueChain(3, 5), 30},
	}
	for _, c := range cases {
		got := Triangles(c.g, nil)
		if got.Count != c.want {
			t.Fatalf("%s: triangles = %d, want %d", c.name, got.Count, c.want)
		}
		if got.Writes != c.want {
			t.Fatalf("%s: writes = %d, want one per triangle", c.name, got.Writes)
		}
	}
}

func TestTrianglesMatchReferenceProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%25) + 3
		m := int(mRaw % 120)
		g := randomGraph(seed, n, m)
		return Triangles(g, nil).Count == graph.ReferenceTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTrianglesRequiresSorted(t *testing.T) {
	// FromCSR with unsorted adjacency.
	g, err := graph.FromCSR(2, []int64{0, 1, 2}, []int64{1, 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	// Build an unsorted graph artificially: descending adjacency.
	g2, err := graph.FromCSR(3, []int64{0, 2, 3, 4}, []int64{2, 1, 0, 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.SortedAdjacency() {
		t.Skip("construction unexpectedly sorted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted adjacency")
		}
	}()
	Triangles(g2, nil)
}

func TestClusteringCoefficients(t *testing.T) {
	// Triangle with a tail: 0-1-2-0, 2-3.
	g := graph.MustBuild(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}},
		graph.BuildOptions{SortAdjacency: true})
	res := ClusteringCoefficients(g, nil)
	if res.Triangles != 1 {
		t.Fatalf("triangles = %d", res.Triangles)
	}
	if res.PerVertex[0] != 1 || res.PerVertex[1] != 1 {
		t.Fatalf("cc(0,1) = %v, %v, want 1", res.PerVertex[0], res.PerVertex[1])
	}
	// Vertex 2 has degree 3 -> 3 possible pairs, 1 closed.
	if math.Abs(res.PerVertex[2]-1.0/3) > 1e-12 {
		t.Fatalf("cc(2) = %v, want 1/3", res.PerVertex[2])
	}
	if res.PerVertex[3] != 0 {
		t.Fatalf("cc(3) = %v, want 0", res.PerVertex[3])
	}
	// Transitivity: 3*1 / (1 + 1 + 3 + 0) = 0.6.
	if math.Abs(res.Global-0.6) > 1e-12 {
		t.Fatalf("global = %v, want 0.6", res.Global)
	}
	// Per-vertex triangle counts sum to 3 * count.
	var sum int64
	for _, c := range res.TrianglesPerVertex {
		sum += c
	}
	if sum != 3*res.Triangles {
		t.Fatalf("corner sum = %d", sum)
	}
}

func TestClusteringCompleteGraph(t *testing.T) {
	res := ClusteringCoefficients(gen.Complete(7), nil)
	for v, c := range res.PerVertex {
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("cc(%d) = %v, want 1", v, c)
		}
	}
	if math.Abs(res.Global-1) > 1e-12 {
		t.Fatalf("global = %v", res.Global)
	}
}

func TestSTConnectivity(t *testing.T) {
	g := gen.Path(8)
	ok, d := STConnectivity(g, 0, 7, nil)
	if !ok || d != 7 {
		t.Fatalf("stcon = %v, %d", ok, d)
	}
	ok, d = STConnectivity(g, 3, 3, nil)
	if !ok || d != 0 {
		t.Fatalf("self stcon = %v, %d", ok, d)
	}
	// Disconnected pair.
	g2 := graph.MustBuild(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, graph.BuildOptions{})
	ok, d = STConnectivity(g2, 0, 3, nil)
	if ok || d != -1 {
		t.Fatalf("disconnected stcon = %v, %d", ok, d)
	}
	if ok, _ := STConnectivity(g, -1, 2, nil); ok {
		t.Fatal("invalid source should be unreachable")
	}
}

func TestSTConnectivityMatchesBFSProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw, tRaw uint8) bool {
		n := int64(nRaw%30) + 2
		g := randomGraph(seed, n, int(mRaw%80))
		tgt := int64(tRaw) % n
		ok, d := STConnectivity(g, 0, tgt, nil)
		want := graph.ReferenceBFS(g, 0)[tgt]
		return (ok && d == want) || (!ok && want == -1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKCore(t *testing.T) {
	// A K4 with a pendant: clique vertices are 3-core, pendant is 1-core.
	g := graph.MustBuild(5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}, {U: 3, V: 4},
	}, graph.BuildOptions{SortAdjacency: true})
	res := KCore(g, nil)
	want := []int64{3, 3, 3, 3, 1}
	for v := range want {
		if res.Core[v] != want[v] {
			t.Fatalf("core = %v, want %v", res.Core, want)
		}
	}
	if res.MaxCore != 3 {
		t.Fatalf("max core = %d", res.MaxCore)
	}
}

func TestKCoreRing(t *testing.T) {
	res := KCore(gen.Ring(12), nil)
	for v, c := range res.Core {
		if c != 2 {
			t.Fatalf("ring core[%d] = %d, want 2", v, c)
		}
	}
}

func TestKCoreDefinitionProperty(t *testing.T) {
	// Every vertex with core number k must have >= k neighbors with core
	// number >= k (a standard necessary condition).
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%25) + 2
		g := randomGraph(seed, n, int(mRaw%80))
		res := KCore(g, nil)
		for v := int64(0); v < n; v++ {
			k := res.Core[v]
			var cnt int64
			for _, w := range g.Neighbors(v) {
				if res.Core[w] >= k {
					cnt++
				}
			}
			if cnt < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankUniformOnRing(t *testing.T) {
	g := gen.Ring(10)
	res := PageRank(g, PageRankOptions{}, nil)
	if !res.Converged {
		t.Fatal("should converge")
	}
	for v, r := range res.Rank {
		if math.Abs(r-0.1) > 1e-6 {
			t.Fatalf("rank[%d] = %v, want 0.1", v, r)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := randomGraph(3, 50, 120)
	res := PageRank(g, PageRankOptions{}, nil)
	var sum float64
	for _, r := range res.Rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("rank sum = %v", sum)
	}
}

func TestPageRankHubOutranksLeaves(t *testing.T) {
	g := gen.Star(20)
	res := PageRank(g, PageRankOptions{}, nil)
	for v := 1; v < 20; v++ {
		if res.Rank[0] <= res.Rank[v] {
			t.Fatalf("hub rank %v <= leaf rank %v", res.Rank[0], res.Rank[v])
		}
	}
}

func TestPageRankEmptyAndDangling(t *testing.T) {
	empty := graph.MustBuild(0, nil, graph.BuildOptions{})
	if res := PageRank(empty, PageRankOptions{}, nil); res.Rank != nil {
		t.Fatal("empty graph should produce no ranks")
	}
	// Directed chain with a dangling sink: ranks still sum to 1.
	g := graph.MustBuild(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}},
		graph.BuildOptions{Directed: true})
	res := PageRank(g, PageRankOptions{}, nil)
	var sum float64
	for _, r := range res.Rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("dangling rank sum = %v", sum)
	}
	if !(res.Rank[2] > res.Rank[0]) {
		t.Fatal("sink should accumulate rank")
	}
}

func TestPageRankMaxIterations(t *testing.T) {
	g := randomGraph(9, 30, 60)
	res := PageRank(g, PageRankOptions{MaxIterations: 2, Tolerance: 1e-15}, nil)
	if res.Converged || res.Iterations != 2 {
		t.Fatalf("iterations = %d converged = %v", res.Iterations, res.Converged)
	}
}

func TestBetweennessPath(t *testing.T) {
	// On a path 0-1-2-3-4, vertex 2 carries the most shortest paths.
	g := gen.Path(5)
	res := Betweenness(g, BetweennessOptions{}, nil)
	// Exact values (undirected double counting): v1: pairs (0,2),(0,3),(0,4) and reverse -> 6; v2: (0,3),(0,4),(1,3),(1,4) x2 = 8.
	if !(res.Score[2] > res.Score[1] && res.Score[1] > res.Score[0]) {
		t.Fatalf("scores = %v", res.Score)
	}
	if math.Abs(res.Score[2]-8) > 1e-9 {
		t.Fatalf("score[2] = %v, want 8", res.Score[2])
	}
	if res.Score[0] != 0 || res.Score[4] != 0 {
		t.Fatalf("endpoints should have zero betweenness: %v", res.Score)
	}
}

func TestBetweennessStarHub(t *testing.T) {
	g := gen.Star(10)
	res := Betweenness(g, BetweennessOptions{}, nil)
	// Hub lies on all 9*8 ordered leaf pairs.
	if math.Abs(res.Score[0]-72) > 1e-9 {
		t.Fatalf("hub score = %v, want 72", res.Score[0])
	}
	for v := 1; v < 10; v++ {
		if res.Score[v] != 0 {
			t.Fatalf("leaf %d score = %v", v, res.Score[v])
		}
	}
}

func TestBetweennessSampledDeterministic(t *testing.T) {
	g := randomGraph(11, 60, 150)
	a := Betweenness(g, BetweennessOptions{Samples: 8, Seed: 5}, nil)
	b := Betweenness(g, BetweennessOptions{Samples: 8, Seed: 5}, nil)
	for v := range a.Score {
		if a.Score[v] != b.Score[v] {
			t.Fatal("sampled betweenness not deterministic")
		}
	}
	if len(a.Sources) != 8 {
		t.Fatalf("sources = %d", len(a.Sources))
	}
}

func TestDegreesStats(t *testing.T) {
	g := gen.Star(11) // hub degree 10, leaves degree 1
	s := Degrees(g, nil)
	if s.Min != 1 || s.Max != 10 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if math.Abs(s.Mean-20.0/11) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Median != 1 {
		t.Fatalf("median = %d", s.Median)
	}
	if s.Isolated != 0 {
		t.Fatalf("isolated = %d", s.Isolated)
	}
	if s.GiniIndex <= 0 {
		t.Fatalf("gini = %v, star should be skewed", s.GiniIndex)
	}
	ring := Degrees(gen.Ring(10), nil)
	if math.Abs(ring.GiniIndex) > 1e-9 {
		t.Fatalf("ring gini = %v, want 0", ring.GiniIndex)
	}
}

func TestComponentSizes(t *testing.T) {
	sizes, max := ComponentSizes([]int64{0, 0, 0, 3, 3, 5})
	if sizes[0] != 3 || sizes[3] != 2 || sizes[5] != 1 || max != 3 {
		t.Fatalf("sizes = %v max = %d", sizes, max)
	}
}

func TestConnectedComponentsSVMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := randomGraph(seed, 60, 90)
		got := ConnectedComponentsSV(g, nil)
		want := graph.ReferenceComponents(g)
		for v := range want {
			if got.Labels[v] != want[v] {
				t.Fatalf("seed %d: labels[%d] = %d, want %d", seed, v, got.Labels[v], want[v])
			}
		}
	}
}

func TestConnectedComponentsSVOnRMAT(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 11, EdgeFactor: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sv := ConnectedComponentsSV(g, nil)
	relax := ConnectedComponents(g, nil)
	for v := range relax.Labels {
		if sv.Labels[v] != relax.Labels[v] {
			t.Fatalf("labels[%d]: sv %d vs relax %d", v, sv.Labels[v], relax.Labels[v])
		}
	}
	if sv.Hooks == 0 || sv.Jumps == 0 {
		t.Fatalf("sv did no work: hooks=%d jumps=%d", sv.Hooks, sv.Jumps)
	}
	// Pointer jumping converges in O(log n) rounds.
	if sv.Iterations > 15 {
		t.Fatalf("sv iterations = %d", sv.Iterations)
	}
}

func TestConnectedComponentsSVProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%40) + 1
		g := randomGraph(seed, n, int(mRaw%150))
		sv := ConnectedComponentsSV(g, nil)
		want := graph.ReferenceComponents(g)
		for v := range want {
			if sv.Labels[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxDiameter(t *testing.T) {
	// Exact on paths and trees.
	if d := ApproxDiameter(gen.Path(10), 4, 4, nil); d != 9 {
		t.Fatalf("path diameter = %d, want 9", d)
	}
	if d := ApproxDiameter(gen.BinaryTree(15), 0, 4, nil); d != 6 {
		t.Fatalf("tree diameter = %d, want 6 (leaf to leaf)", d)
	}
	// Ring of 12: true diameter 6; double sweep finds it.
	if d := ApproxDiameter(gen.Ring(12), 0, 4, nil); d != 6 {
		t.Fatalf("ring diameter = %d, want 6", d)
	}
	// Star: diameter 2.
	if d := ApproxDiameter(gen.Star(9), 3, 4, nil); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
	// Degenerate inputs.
	if d := ApproxDiameter(gen.Ring(4), -1, 4, nil); d != -1 {
		t.Fatalf("invalid start = %d", d)
	}
}

func TestApproxDiameterLowerBoundProperty(t *testing.T) {
	// The estimate never exceeds the true eccentricity maximum and is
	// always >= the eccentricity of the start vertex.
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%30) + 2
		g := randomGraph(seed, n, int(mRaw%100)+int(n))
		est := ApproxDiameter(g, 0, 4, nil)
		// True diameter over the start's component via all-pairs BFS.
		var trueDiam int64 = -1
		comp := graph.ReferenceComponents(g)
		for v := int64(0); v < n; v++ {
			if comp[v] != comp[0] {
				continue
			}
			for _, d := range graph.ReferenceBFS(g, v) {
				if d > trueDiam {
					trueDiam = d
				}
			}
		}
		return est <= trueDiam && est >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelBFSMatchesSequential(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(4))
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(seed, 80, 300)
		seq := BFS(g, 0, nil)
		pl := ParallelBFS(g, 0, nil)
		for v := range seq.Dist {
			if seq.Dist[v] != pl.Dist[v] {
				t.Fatalf("seed %d: dist[%d] = %d vs %d", seed, v, seq.Dist[v], pl.Dist[v])
			}
		}
		if len(seq.FrontierSizes) != len(pl.FrontierSizes) {
			t.Fatalf("seed %d: level counts differ", seed)
		}
		for l := range seq.FrontierSizes {
			if seq.FrontierSizes[l] != pl.FrontierSizes[l] {
				t.Fatalf("seed %d level %d: frontier %d vs %d",
					seed, l, seq.FrontierSizes[l], pl.FrontierSizes[l])
			}
			if seq.EdgesScanned[l] != pl.EdgesScanned[l] {
				t.Fatalf("seed %d level %d: edges %d vs %d",
					seed, l, seq.EdgesScanned[l], pl.EdgesScanned[l])
			}
		}
	}
}

func TestParallelBFSProfileMatchesSequential(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(4))
	g, err := gen.RMAT(gen.RMATConfig{Scale: 11, EdgeFactor: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seqRec := trace.NewRecorder()
	BFS(g, 0, seqRec)
	plRec := trace.NewRecorder()
	ParallelBFS(g, 0, plRec)
	seqPh := seqRec.PhasesNamed("bfs/level")
	plPh := plRec.PhasesNamed("bfs/level")
	if len(seqPh) != len(plPh) {
		t.Fatalf("phase counts: %d vs %d", len(seqPh), len(plPh))
	}
	for i := range seqPh {
		a, b := seqPh[i], plPh[i]
		if a.Loads != b.Loads || a.Stores != b.Stores || a.Issue != b.Issue ||
			a.Tasks != b.Tasks || a.Hot != b.Hot {
			t.Fatalf("level %d profile mismatch: %v vs %v", i, a, b)
		}
	}
}

func TestParallelBFSInvalidSource(t *testing.T) {
	g := gen.Ring(6)
	res := ParallelBFS(g, 99, nil)
	for _, d := range res.Dist {
		if d != -1 {
			t.Fatal("invalid source should reach nothing")
		}
	}
}

func TestTrianglesDetailRecording(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 9, EdgeFactor: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	rec.DetailTasks = true
	res := Triangles(g, rec)
	phases := rec.PhasesNamed("tri/count")
	if len(phases) != 1 {
		t.Fatalf("phases = %d", len(phases))
	}
	p := phases[0]
	if int64(len(p.Detail)) != p.Tasks {
		t.Fatalf("detail tasks %d != recorded tasks %d", len(p.Detail), p.Tasks)
	}
	// Per-task detail must sum to the aggregate issue count.
	var issue int64
	for _, tc := range p.Detail {
		issue += int64(tc.Issue)
	}
	if issue != p.Issue {
		t.Fatalf("detail issue %d != aggregate %d", issue, p.Issue)
	}
	// Skew: the costliest pair dwarfs the median on a scale-free graph.
	maxTask := uint32(0)
	for _, tc := range p.Detail {
		if tc.Issue > maxTask {
			maxTask = tc.Issue
		}
	}
	if int64(maxTask)*int64(len(p.Detail)) < 2*p.Issue {
		t.Fatalf("no task skew: max %d, mean %d", maxTask, p.Issue/int64(len(p.Detail)))
	}
	_ = res
}

func TestTrianglesDetailFeedsDES(t *testing.T) {
	// The DES consumes the recorded per-task detail; compare against the
	// same phase without detail (synthetic uniform tasks) — both must be
	// finite and within a band of each other.
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	detRec := trace.NewRecorder()
	detRec.DetailTasks = true
	Triangles(g, detRec)
	plainRec := trace.NewRecorder()
	Triangles(g, plainRec)

	des := machine.NewDES(machine.DefaultConfig())
	tDetail := machine.Seconds(des, detRec.Phases(), 16)
	tPlain := machine.Seconds(des, plainRec.Phases(), 16)
	if tDetail <= 0 || tPlain <= 0 {
		t.Fatalf("times: %v, %v", tDetail, tPlain)
	}
	if r := tDetail / tPlain; r < 0.25 || r > 4 {
		t.Fatalf("detail (%v) vs synthetic (%v) diverge: %vx", tDetail, tPlain, r)
	}
}

func TestAssortativity(t *testing.T) {
	// A star is maximally disassortative: hubs connect only to leaves.
	if a := Assortativity(gen.Star(20), nil); a > -0.999 {
		t.Fatalf("star assortativity = %v, want -1", a)
	}
	// A ring is degree-regular: zero variance, defined as 0.
	if a := Assortativity(gen.Ring(20), nil); a != 0 {
		t.Fatalf("ring assortativity = %v, want 0", a)
	}
	// Two disjoint cliques of different sizes: within-clique degrees are
	// equal, so edges connect equal degrees -> perfectly assortative.
	var edges []graph.Edge
	for i := int64(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	for i := int64(4); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	g := graph.MustBuild(10, edges, graph.BuildOptions{SortAdjacency: true})
	if a := Assortativity(g, nil); a < 0.999 {
		t.Fatalf("disjoint cliques assortativity = %v, want 1", a)
	}
	// RMAT is disassortative.
	rm, err := gen.RMAT(gen.RMATConfig{Scale: 11, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a := Assortativity(rm, nil); a >= 0 {
		t.Fatalf("rmat assortativity = %v, want negative", a)
	}
	// Tiny graphs are defined as 0.
	if a := Assortativity(graph.MustBuild(2, nil, graph.BuildOptions{}), nil); a != 0 {
		t.Fatalf("empty = %v", a)
	}
}
