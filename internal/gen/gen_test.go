package gen

import (
	"math"
	"sort"
	"testing"

	"graphxmt/internal/graph"
	"graphxmt/internal/par"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 42}
	e1, n1, err := RMATEdges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, n2, err := RMATEdges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || n1 != 1024 {
		t.Fatalf("n = %d, %d", n1, n2)
	}
	if len(e1) != len(e2) || len(e1) != 8*1024 {
		t.Fatalf("m = %d, %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestRMATDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := RMATConfig{Scale: 9, EdgeFactor: 4, Seed: 7}
	defer par.SetWorkers(par.SetWorkers(1))
	e1, _, _ := RMATEdges(cfg)
	par.SetWorkers(8)
	e2, _, _ := RMATEdges(cfg)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d depends on worker count", i)
		}
	}
}

func TestRMATSeedChangesOutput(t *testing.T) {
	e1, _, _ := RMATEdges(RMATConfig{Scale: 8, EdgeFactor: 4, Seed: 1})
	e2, _, _ := RMATEdges(RMATConfig{Scale: 8, EdgeFactor: 4, Seed: 2})
	same := 0
	for i := range e1 {
		if e1[i] == e2[i] {
			same++
		}
	}
	if same > len(e1)/10 {
		t.Fatalf("%d/%d edges identical across seeds", same, len(e1))
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// RMAT with Graph500 parameters must produce a highly skewed degree
	// distribution: max degree far above mean, many low-degree vertices.
	g, err := RMAT(RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	mean := float64(g.NumEdges()) / float64(n)
	maxDeg := float64(g.MaxDegree())
	if maxDeg < 8*mean {
		t.Fatalf("max degree %v not skewed vs mean %v", maxDeg, mean)
	}
	lowDeg := 0
	for v := int64(0); v < n; v++ {
		if g.Degree(v) <= int64(mean)/2 {
			lowDeg++
		}
	}
	if float64(lowDeg) < 0.3*float64(n) {
		t.Fatalf("only %d/%d vertices below half mean degree", lowDeg, n)
	}
}

func TestRMATValidGraph(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Directed() {
		t.Fatal("RMAT graph should be undirected")
	}
	if !g.SortedAdjacency() {
		t.Fatal("adjacency should be sorted")
	}
	// Self-loops must be gone.
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.HasEdge(v, v) {
			t.Fatalf("self loop at %d", v)
		}
	}
}

func TestRMATBadParams(t *testing.T) {
	if _, _, err := RMATEdges(RMATConfig{Scale: 0}); err == nil {
		t.Fatal("scale 0 should error")
	}
	if _, _, err := RMATEdges(RMATConfig{Scale: 50}); err == nil {
		t.Fatal("scale 50 should error")
	}
	if _, _, err := RMATEdges(RMATConfig{Scale: 4, A: 0.9, B: 0.1, C: 0.1}); err == nil {
		t.Fatal("a+b+c >= 1 should error")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(1000, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// ER degrees concentrate near the mean: max degree should be modest.
	mean := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) > 6*mean+10 {
		t.Fatalf("ER max degree %d too skewed for mean %v", g.MaxDegree(), mean)
	}
	if _, err := ErdosRenyi(0, 5, 1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := ErdosRenyi(5, -1, 1); err == nil {
		t.Fatal("m<0 should error")
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, every vertex has degree exactly k.
	g, err := WattsStrogatz(100, 4, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("deg(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestWattsStrogatzRewired(t *testing.T) {
	g, err := WattsStrogatz(500, 6, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rewiring must change some degrees away from k.
	changed := false
	for v := int64(0); v < g.NumVertices() && !changed; v++ {
		changed = g.Degree(v) != 6
	}
	if !changed {
		t.Fatal("beta=0.3 produced an unmodified lattice")
	}
	// Mean degree stays ~k (rewiring moves endpoints; duplicates collapse
	// loses only a few).
	mean := float64(g.NumEdges()) / float64(g.NumVertices())
	if math.Abs(mean-6) > 0.5 {
		t.Fatalf("mean degree %v, want ~6", mean)
	}
}

func TestWattsStrogatzBadParams(t *testing.T) {
	cases := []struct {
		n    int64
		k    int
		beta float64
	}{{2, 2, 0}, {10, 3, 0}, {10, 12, 0}, {10, 2, -0.1}, {10, 2, 1.5}}
	for _, c := range cases {
		if _, err := WattsStrogatz(c.n, c.k, c.beta, 1); err == nil {
			t.Fatalf("WS(%d,%d,%v) should error", c.n, c.k, c.beta)
		}
	}
}

func TestRing(t *testing.T) {
	g := Ring(10)
	if g.UndirectedEdges() != 10 {
		t.Fatalf("ring edges = %d", g.UndirectedEdges())
	}
	for v := int64(0); v < 10; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("deg = %d", g.Degree(v))
		}
	}
	dist := graph.ReferenceBFS(g, 0)
	if dist[5] != 5 {
		t.Fatalf("d(5) = %d, want 5", dist[5])
	}
}

func TestStar(t *testing.T) {
	g := Star(11)
	if g.Degree(0) != 10 {
		t.Fatalf("hub degree = %d", g.Degree(0))
	}
	for v := int64(1); v < 11; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf degree = %d", g.Degree(v))
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.UndirectedEdges() != 15 {
		t.Fatalf("K6 edges = %d", g.UndirectedEdges())
	}
	if graph.ReferenceTriangles(g) != 20 { // C(6,3)
		t.Fatalf("K6 triangles = %d", graph.ReferenceTriangles(g))
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges.
	if g.UndirectedEdges() != 17 {
		t.Fatalf("edges = %d, want 17", g.UndirectedEdges())
	}
	dist := graph.ReferenceBFS(g, 0)
	if dist[11] != 5 { // Manhattan distance corner to corner
		t.Fatalf("d(corner) = %d, want 5", dist[11])
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(15) // complete 4-level tree
	if g.UndirectedEdges() != 14 {
		t.Fatalf("tree edges = %d", g.UndirectedEdges())
	}
	dist := graph.ReferenceBFS(g, 0)
	maxd := int64(0)
	for _, d := range dist {
		if d > maxd {
			maxd = d
		}
	}
	if maxd != 3 {
		t.Fatalf("tree depth = %d, want 3", maxd)
	}
	if graph.ReferenceTriangles(g) != 0 {
		t.Fatal("tree has no triangles")
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Each K4 has 4 triangles; bridges add none.
	if got := graph.ReferenceTriangles(g); got != 12 {
		t.Fatalf("triangles = %d, want 12", got)
	}
	labels := graph.ReferenceComponents(g)
	if graph.CountComponents(labels) != 1 {
		t.Fatal("chain should be connected")
	}
}

func TestPath(t *testing.T) {
	g := Path(7)
	if g.UndirectedEdges() != 6 {
		t.Fatalf("edges = %d", g.UndirectedEdges())
	}
	dist := graph.ReferenceBFS(g, 0)
	if dist[6] != 6 {
		t.Fatalf("d(6) = %d", dist[6])
	}
}

func TestUniformWeights(t *testing.T) {
	w := UniformWeights(1000, 10, 3)
	seen := map[int64]bool{}
	for _, x := range w {
		if x < 1 || x > 10 {
			t.Fatalf("weight %d out of [1,10]", x)
		}
		seen[x] = true
	}
	if len(seen) < 8 {
		t.Fatalf("weights cover only %d values", len(seen))
	}
	w2 := UniformWeights(1000, 10, 3)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("weights not deterministic")
		}
	}
}

func TestRMATSmallDiameter(t *testing.T) {
	// Small-world property: BFS from the giant component's busiest vertex
	// should reach everything reachable within a handful of hops.
	g, err := RMAT(RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var src, best int64
	for v := int64(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > best {
			best, src = d, v
		}
	}
	dist := graph.ReferenceBFS(g, src)
	var maxd int64
	reached := 0
	for _, d := range dist {
		if d >= 0 {
			reached++
			if d > maxd {
				maxd = d
			}
		}
	}
	if maxd > 12 {
		t.Fatalf("RMAT eccentricity %d, expected small-world (<12)", maxd)
	}
	if reached < int(g.NumVertices())/3 {
		t.Fatalf("giant component only %d/%d", reached, g.NumVertices())
	}
}

func TestRMATQuadrantBias(t *testing.T) {
	// With a=0.57 the low half of the ID space must attract more edge
	// endpoints than the high half.
	edges, n, err := RMATEdges(RMATConfig{Scale: 10, EdgeFactor: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	half := n / 2
	low := 0
	for _, e := range edges {
		if e.U < half {
			low++
		}
		if e.V < half {
			low++
		}
	}
	frac := float64(low) / float64(2*len(edges))
	if frac < 0.6 {
		t.Fatalf("low-half endpoint fraction %v, want > 0.6 for a=0.57", frac)
	}
}

func TestDegreeDistributionHeavyTail(t *testing.T) {
	// Compare the RMAT tail against ER with the same size: RMAT's 99.9th
	// percentile degree must exceed ER's by a wide margin.
	rm, err := RMAT(RMATConfig{Scale: 12, EdgeFactor: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(rm.NumVertices(), rm.NumEdges()/2, 21)
	if err != nil {
		t.Fatal(err)
	}
	p999 := func(g *graph.Graph) int64 {
		degs := make([]int64, g.NumVertices())
		for v := range degs {
			degs[v] = g.Degree(int64(v))
		}
		sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
		return degs[len(degs)*999/1000]
	}
	if p999(rm) < 2*p999(er) {
		t.Fatalf("RMAT p99.9 %d vs ER %d: no heavy tail", p999(rm), p999(er))
	}
}

func TestPlantedPartition(t *testing.T) {
	g, err := PlantedPartition(3, 10, 0.8, 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 30 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-community edges must dominate.
	var in, out int64
	for v := int64(0); v < 30; v++ {
		for _, w := range g.Neighbors(v) {
			if v/10 == w/10 {
				in++
			} else {
				out++
			}
		}
	}
	if in < 5*out {
		t.Fatalf("intra %d vs inter %d: planted structure too weak", in, out)
	}
	// Determinism.
	g2, err := PlantedPartition(3, 10, 0.8, 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("not deterministic")
	}
}

func TestPlantedPartitionErrors(t *testing.T) {
	if _, err := PlantedPartition(0, 5, 0.5, 0.1, 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := PlantedPartition(2, 0, 0.5, 0.1, 1); err == nil {
		t.Fatal("s=0 should error")
	}
	if _, err := PlantedPartition(2, 5, 1.5, 0.1, 1); err == nil {
		t.Fatal("pIn>1 should error")
	}
	if _, err := PlantedPartition(2, 5, 0.5, -0.1, 1); err == nil {
		t.Fatal("pOut<0 should error")
	}
}

func BenchmarkRMATGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := RMATEdges(RMATConfig{Scale: 14, EdgeFactor: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMATBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(RMATConfig{Scale: 12, EdgeFactor: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(2000, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Connected by construction.
	labels := graph.ReferenceComponents(g)
	if graph.CountComponents(labels) != 1 {
		t.Fatal("BA graph should be connected")
	}
	// Scale-free tail: max degree far above the mean.
	mean := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 5*mean {
		t.Fatalf("max degree %d vs mean %.1f: no hub", g.MaxDegree(), mean)
	}
	// Every latecomer has degree >= m.
	for v := int64(5); v < g.NumVertices(); v++ {
		if g.Degree(v) < 4 {
			t.Fatalf("vertex %d degree %d < m", v, g.Degree(v))
		}
	}
	// Deterministic.
	g2, err := BarabasiAlbert(2000, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("not deterministic")
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(10, 0, 1); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, err := BarabasiAlbert(3, 5, 1); err == nil {
		t.Fatal("m>=n should error")
	}
}

func TestBarabasiAlbertKernelsAgree(t *testing.T) {
	// The model comparison holds on a non-RMAT scale-free topology too.
	g, err := BarabasiAlbert(1500, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.ReferenceComponents(g)
	if graph.CountComponents(ref) != 1 {
		t.Fatal("expected connected")
	}
	if graph.ReferenceTriangles(g) <= 0 {
		t.Fatal("BA graphs have triangles")
	}
}
