// Package gen generates the synthetic input graphs used by the paper's
// experiments and by the examples.
//
// The paper's workload is an undirected scale-free RMAT graph [Chakrabarti,
// Zhan, Faloutsos 2004] with 2^24 vertices and 268M edges; RMAT here uses
// the Graph500 parameters (a=0.57, b=0.19, c=0.19, d=0.05) with parameter
// noise per recursion level, like the Graph500 reference generator. The
// package also provides Erdős–Rényi and Watts–Strogatz generators (the
// paper's background section frames real-world graphs against small-world
// models) plus deterministic structured graphs for tests.
//
// All generators are deterministic functions of their seed: each edge is
// derived from an independent PRNG stream seeded by rng.Mix64(seed, index),
// so generation order and host parallelism never change the output.
package gen

import (
	"fmt"

	"graphxmt/internal/graph"
	"graphxmt/internal/par"
	"graphxmt/internal/rng"
)

// RMATConfig parameterizes the recursive matrix generator.
type RMATConfig struct {
	// Scale is log2 of the number of vertices.
	Scale int
	// EdgeFactor is the number of undirected edges per vertex; the paper's
	// graph uses 16 (2^24 vertices, 268M ~= 16 * 2^24 edges).
	EdgeFactor int
	// A, B, C are the quadrant probabilities (D = 1-A-B-C). Zero values
	// select the Graph500 defaults 0.57/0.19/0.19.
	A, B, C float64
	// Noise perturbs the parameters at every recursion level, +-Noise*U,
	// which prevents exact self-similarity; Graph500 uses 0.1. Negative
	// disables. Zero selects 0.1.
	Noise float64
	// Seed selects the deterministic edge stream.
	Seed uint64
}

func (c RMATConfig) withDefaults() RMATConfig {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 16
	}
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
	if c.Noise == 0 {
		c.Noise = 0.1
	}
	if c.Noise < 0 {
		c.Noise = 0
	}
	return c
}

// RMATEdges generates the raw RMAT edge list (with duplicates and
// self-loops, as the recursive process naturally produces them).
func RMATEdges(cfg RMATConfig) ([]graph.Edge, int64, error) {
	cfg = cfg.withDefaults()
	if cfg.Scale < 1 || cfg.Scale > 40 {
		return nil, 0, fmt.Errorf("gen: rmat scale %d out of range [1,40]", cfg.Scale)
	}
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || cfg.A+cfg.B+cfg.C >= 1 {
		return nil, 0, fmt.Errorf("gen: rmat parameters a=%v b=%v c=%v invalid", cfg.A, cfg.B, cfg.C)
	}
	n := int64(1) << uint(cfg.Scale)
	m := n * int64(cfg.EdgeFactor)
	edges := make([]graph.Edge, m)
	seedMix := rng.Mix64(cfg.Seed)
	par.ForChunked(int(m), func(lo, hi int) {
		var r rng.Xoshiro
		for i := lo; i < hi; i++ {
			r.Reseed(seedMix ^ rng.Mix64(uint64(i)+0x517cc1b727220a95))
			edges[i] = rmatEdge(&r, cfg)
		}
	})
	return edges, n, nil
}

// rmatEdge draws one edge by descending the recursive quadrant matrix.
func rmatEdge(r *rng.Xoshiro, cfg RMATConfig) graph.Edge {
	var u, v int64
	a, b, c := cfg.A, cfg.B, cfg.C
	d := 1 - a - b - c
	for level := 0; level < cfg.Scale; level++ {
		// Per-level parameter noise (Graph500-style): scale each parameter
		// by 1 +- Noise*U then renormalize.
		na, nb, nc, nd := a, b, c, d
		if cfg.Noise > 0 {
			na *= 1 - cfg.Noise/2 + cfg.Noise*r.Float64()
			nb *= 1 - cfg.Noise/2 + cfg.Noise*r.Float64()
			nc *= 1 - cfg.Noise/2 + cfg.Noise*r.Float64()
			nd *= 1 - cfg.Noise/2 + cfg.Noise*r.Float64()
			sum := na + nb + nc + nd
			na, nb, nc, nd = na/sum, nb/sum, nc/sum, nd/sum
		}
		_ = nd
		x := r.Float64()
		u <<= 1
		v <<= 1
		switch {
		case x < na:
			// top-left: no bits set
		case x < na+nb:
			v |= 1
		case x < na+nb+nc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return graph.Edge{U: u, V: v}
}

// RMAT generates an undirected RMAT graph: edges are deduplicated,
// self-loops removed, adjacency sorted (the form the paper's kernels use).
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	edges, n, err := RMATEdges(cfg)
	if err != nil {
		return nil, err
	}
	return graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// ErdosRenyi generates a G(n, m) uniform random multigraph as an undirected
// simple graph (duplicates collapsed, self-loops dropped).
func ErdosRenyi(n int64, m int64, seed uint64) (*graph.Graph, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("gen: invalid ER parameters n=%d m=%d", n, m)
	}
	edges := make([]graph.Edge, m)
	seedMix := rng.Mix64(seed)
	par.ForChunked(int(m), func(lo, hi int) {
		var r rng.Xoshiro
		for i := lo; i < hi; i++ {
			r.Reseed(seedMix ^ rng.Mix64(uint64(i)+0x2545f4914f6cdd1d))
			edges[i] = graph.Edge{
				U: int64(r.Uint64n(uint64(n))),
				V: int64(r.Uint64n(uint64(n))),
			}
		}
	})
	return graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// WattsStrogatz generates a small-world graph: a ring lattice of n vertices
// each connected to k nearest neighbors (k even), with each edge rewired to
// a uniform random endpoint with probability beta.
func WattsStrogatz(n int64, k int, beta float64, seed uint64) (*graph.Graph, error) {
	if n < 3 || k < 2 || k%2 != 0 || int64(k) >= n {
		return nil, fmt.Errorf("gen: invalid WS parameters n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: invalid WS beta %v", beta)
	}
	var edges []graph.Edge
	r := rng.New(seed)
	for v := int64(0); v < n; v++ {
		for j := 1; j <= k/2; j++ {
			w := (v + int64(j)) % n
			if r.Float64() < beta {
				// Rewire the far endpoint, avoiding self-loops; duplicate
				// edges are collapsed by Build.
				w = int64(r.Uint64n(uint64(n)))
				for w == v {
					w = int64(r.Uint64n(uint64(n)))
				}
			}
			edges = append(edges, graph.Edge{U: v, V: w})
		}
	}
	return graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// Ring returns the cycle graph C_n.
func Ring(n int64) *graph.Graph {
	edges := make([]graph.Edge, n)
	for v := int64(0); v < n; v++ {
		edges[v] = graph.Edge{U: v, V: (v + 1) % n}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// Star returns the star graph: vertex 0 connected to 1..n-1.
func Star(n int64) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for v := int64(1); v < n; v++ {
		edges[v-1] = graph.Edge{U: 0, V: v}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// Complete returns the complete graph K_n.
func Complete(n int64) *graph.Graph {
	var edges []graph.Edge
	for i := int64(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// Grid returns the rows x cols 2D mesh.
func Grid(rows, cols int64) *graph.Graph {
	var edges []graph.Edge
	id := func(r, c int64) int64 { return r*cols + c }
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return graph.MustBuild(rows*cols, edges, graph.BuildOptions{SortAdjacency: true})
}

// BinaryTree returns a complete binary tree with n vertices (vertex i's
// children are 2i+1 and 2i+2).
func BinaryTree(n int64) *graph.Graph {
	var edges []graph.Edge
	for v := int64(0); v < n; v++ {
		if 2*v+1 < n {
			edges = append(edges, graph.Edge{U: v, V: 2*v + 1})
		}
		if 2*v+2 < n {
			edges = append(edges, graph.Edge{U: v, V: 2*v + 2})
		}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// CliqueChain returns k cliques of size s connected in a chain by single
// bridge edges; useful for exercising connected components and triangle
// counting together (each clique contributes C(s,3) triangles).
func CliqueChain(k, s int64) *graph.Graph {
	n := k * s
	var edges []graph.Edge
	for c := int64(0); c < k; c++ {
		base := c * s
		for i := int64(0); i < s; i++ {
			for j := i + 1; j < s; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j})
			}
		}
		if c+1 < k {
			edges = append(edges, graph.Edge{U: base + s - 1, V: base + s})
		}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// Path returns the path graph P_n.
func Path(n int64) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := int64(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// UniformWeights returns a deterministic pseudo-random weight in [1, maxW]
// for each of m edges, for building weighted test graphs.
func UniformWeights(m int, maxW int64, seed uint64) []int64 {
	w := make([]int64, m)
	for i := range w {
		w[i] = 1 + int64(rng.Mix64(seed^uint64(i)*0x9e3779b97f4a7c15)%uint64(maxW))
	}
	return w
}

// PlantedPartition generates a planted-partition (stochastic block model)
// graph: k communities of size s; each intra-community vertex pair is an
// edge with probability pIn and each inter-community pair with probability
// pOut. With pIn >> pOut the planted communities are recoverable, which the
// community-detection tests rely on.
func PlantedPartition(k, s int64, pIn, pOut float64, seed uint64) (*graph.Graph, error) {
	if k <= 0 || s <= 0 {
		return nil, fmt.Errorf("gen: invalid partition k=%d s=%d", k, s)
	}
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, fmt.Errorf("gen: invalid probabilities pIn=%v pOut=%v", pIn, pOut)
	}
	n := k * s
	r := rng.New(seed)
	var edges []graph.Edge
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/s == v/s {
				p = pIn
			}
			if r.Float64() < p {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	return graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true})
}

// BarabasiAlbert generates a scale-free graph by preferential attachment:
// starting from a small clique, each new vertex attaches m edges to
// existing vertices with probability proportional to their degree. The
// second classic scale-free model beside RMAT (the paper's background
// frames real-world networks as small-world, skewed-degree graphs); useful
// for checking that results do not hinge on RMAT's particular structure.
func BarabasiAlbert(n int64, m int, seed uint64) (*graph.Graph, error) {
	if m < 1 || int64(m) >= n {
		return nil, fmt.Errorf("gen: invalid BA parameters n=%d m=%d", n, m)
	}
	r := rng.New(seed)
	// Repeated-endpoint list: picking a uniform element of targets samples
	// vertices proportionally to degree.
	var edges []graph.Edge
	targets := make([]int64, 0, 2*int(n)*m)
	// Seed clique of m+1 vertices.
	for i := int64(0); i <= int64(m); i++ {
		for j := i + 1; j <= int64(m); j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
			targets = append(targets, i, j)
		}
	}
	for v := int64(m) + 1; v < n; v++ {
		chosen := make(map[int64]bool, m)
		for len(chosen) < m {
			w := targets[r.Intn(len(targets))]
			if w != v {
				chosen[w] = true
			}
		}
		for w := range chosen {
			edges = append(edges, graph.Edge{U: v, V: w})
			targets = append(targets, v, w)
		}
	}
	return graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true})
}
