package metrics

// Prometheus text exposition (format 0.0.4) writer and validator. The
// writer renders the registry without any client library; the validator is
// the other half of the contract — CI scrapes a live /metrics endpoint
// mid-run and asserts the output parses back cleanly (well-formed names,
// labels, and values; HELP/TYPE before samples; cumulative, +Inf-terminated
// histogram buckets).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the text exposition format.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, name := range r.names {
		f := r.fams[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case KindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case KindHistogram:
				writeHistogram(bw, f.name, s.labels, s.h)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative _bucket samples
// with ascending le bounds ending at +Inf, then _sum and _count.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	counts := h.BucketCounts()
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", strconv.FormatInt(bound, 10)), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}

// withLabel merges one extra label into an already-rendered label string.
func withLabel(labels, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidateExposition parses a text-exposition document and returns the
// first well-formedness violation, or nil. Checks: metric and label names
// are legal; label bodies and values parse; every sample of a TYPEd family
// follows its TYPE line; no series is duplicated; histogram families have
// cumulative, non-decreasing buckets ending in an +Inf bucket whose value
// equals _count.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	typed := map[string]string{} // family name → type
	seen := map[string]bool{}    // name+labels → sample seen
	hists := map[string]*histCheck{}
	line := 0
	sawSample := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			kind, name, rest, ok := parseComment(text)
			if !ok {
				continue // free-form comment
			}
			if !validName(name) {
				return fmt.Errorf("metrics: line %d: invalid metric name %q in %s", line, name, kind)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("metrics: line %d: unknown TYPE %q for %s", line, rest, name)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("metrics: line %d: duplicate TYPE for %s", line, name)
				}
				typed[name] = rest
				if rest == "histogram" {
					hists[name] = &histCheck{}
				}
			}
			continue
		}
		sawSample = true
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("metrics: line %d: %w", line, err)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("metrics: line %d: duplicate series %s", line, key)
		}
		seen[key] = true
		fam, suffix := histFamily(name, typed)
		if fam != "" {
			if err := hists[fam].sample(suffix, labels, value); err != nil {
				return fmt.Errorf("metrics: line %d: %s: %w", line, name, err)
			}
			continue
		}
		if typ, ok := typed[name]; ok && typ == "histogram" {
			return fmt.Errorf("metrics: line %d: bare sample %s for histogram family", line, name)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !sawSample {
		return fmt.Errorf("metrics: exposition contains no samples")
	}
	for name, h := range hists {
		if err := h.finish(); err != nil {
			return fmt.Errorf("metrics: histogram %s: %w", name, err)
		}
	}
	return nil
}

// parseComment splits "# HELP name rest" / "# TYPE name rest"; ok is false
// for any other comment.
func parseComment(text string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 3 || fields[0] != "#" || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", "", false
	}
	rest = ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parseSample splits a sample line into name, rendered label body (without
// braces), and value, validating each part. Optional trailing timestamps
// are accepted.
func parseSample(text string) (name, labels string, value float64, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest[i:], '}')
		if j < 0 {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", text)
		}
		labels = rest[i+1 : i+j]
		rest = strings.TrimSpace(rest[i+j+1:])
		if err := validateLabelBody(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("sample %q has no value", text)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("sample %q has %d value fields, want 1 or 2", text, len(fields))
	}
	value, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil && fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
		return "", "", 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// validateLabelBody checks a k="v",k2="v2" label body.
func validateLabelBody(body string) error {
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("label %q has no =", rest)
		}
		key := rest[:eq]
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		rest = rest[1:]
		// Scan to the closing quote, honoring escapes.
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
		}
		if i >= len(rest) {
			return fmt.Errorf("label %s value unterminated", key)
		}
		rest = rest[i+1:]
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return fmt.Errorf("label body %q: expected , after value", body)
		}
		rest = rest[1:]
	}
	return nil
}

// histFamily maps a histogram-component sample name to its family, when
// that family was declared as a histogram. suffix is "bucket", "sum", or
// "count".
func histFamily(name string, typed map[string]string) (fam, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typed[base] == "histogram" {
			return base, suf[1:]
		}
	}
	return "", ""
}

// histCheck accumulates one histogram family's samples across all its
// series, verifying per-series bucket monotonicity, +Inf termination, and
// bucket/count agreement.
type histCheck struct {
	buckets map[string][]bucketSample // series labels (sans le) → samples in order
	counts  map[string]float64
	hasCnt  map[string]bool
}

type bucketSample struct {
	le  string
	val float64
}

func (h *histCheck) sample(suffix, labels string, value float64) error {
	if h.buckets == nil {
		h.buckets = map[string][]bucketSample{}
		h.counts = map[string]float64{}
		h.hasCnt = map[string]bool{}
	}
	switch suffix {
	case "bucket":
		le, rest, err := extractLE(labels)
		if err != nil {
			return err
		}
		h.buckets[rest] = append(h.buckets[rest], bucketSample{le: le, val: value})
	case "sum":
		// Sums carry no invariant the validator can check alone.
	case "count":
		h.counts[labels] = value
		h.hasCnt[labels] = true
	}
	return nil
}

func (h *histCheck) finish() error {
	for series, bs := range h.buckets {
		if len(bs) == 0 || bs[len(bs)-1].le != "+Inf" {
			return fmt.Errorf("series {%s} has no +Inf bucket", series)
		}
		prev := -1.0
		for _, b := range bs {
			if b.val < prev {
				return fmt.Errorf("series {%s}: bucket le=%q count %g below previous %g (not cumulative)", series, b.le, b.val, prev)
			}
			prev = b.val
		}
		if h.hasCnt[series] && h.counts[series] != bs[len(bs)-1].val {
			return fmt.Errorf("series {%s}: _count %g != +Inf bucket %g", series, h.counts[series], bs[len(bs)-1].val)
		}
	}
	for series := range h.hasCnt {
		if len(h.buckets[series]) == 0 {
			return fmt.Errorf("series {%s} has _count but no buckets", series)
		}
	}
	return nil
}

// extractLE removes the le label from a rendered label body, returning its
// value and the remaining body (the series identity).
func extractLE(body string) (le, rest string, err error) {
	parts := splitLabels(body)
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return "", "", fmt.Errorf("label %q has no =", p)
		}
		if k == "le" {
			le = strings.Trim(v, `"`)
			continue
		}
		out = append(out, p)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket sample without le label in {%s}", body)
	}
	sort.Strings(out)
	return le, strings.Join(out, ","), nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		parts = append(parts, body[start:])
	}
	return parts
}
