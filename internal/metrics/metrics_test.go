package metrics_test

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"graphxmt/internal/metrics"
)

func TestCounterGauge(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("graphxmt_test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Get-or-create: the same (name, labels) hands back the same instrument.
	if r.Counter("graphxmt_test_total", "a counter") != c {
		t.Fatal("second Counter call returned a different instrument")
	}
	g := r.Gauge("graphxmt_test_gauge", "a gauge", metrics.Label{Key: "shard", Value: "0"})
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g2 := r.Gauge("graphxmt_test_gauge", "a gauge", metrics.Label{Key: "shard", Value: "1"})
	if g2 == g {
		t.Fatal("different labels returned the same instrument")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := metrics.NewHistogram(metrics.Pow2Bounds(16))
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if got := h.Sum(); got != 500500 {
		t.Fatalf("sum = %d, want 500500", got)
	}
	// Log2 buckets resolve within a factor of two; the p50 of 1..1000 is
	// 500, which lands in the (256,512] bucket.
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 512 {
		t.Fatalf("p50 = %d, want within (256,512]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 512 || p99 > 1024 {
		t.Fatalf("p99 = %d, want within (512,1024]", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
	var empty = metrics.NewHistogram(metrics.Pow2Bounds(4))
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// Overflow values land in +Inf and report the largest finite bound.
	over := metrics.NewHistogram(metrics.Pow2Bounds(4))
	over.Observe(1 << 20)
	if got := over.Quantile(0.5); got != 8 {
		t.Fatalf("+Inf bucket quantile = %d, want 8 (largest finite bound)", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := metrics.NewHistogram(metrics.DurationBounds)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(seed + i)
			}
		}(int64(w * 100))
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("graphxmt_messages_logical_total", "logical messages").Add(12345)
	r.Counter("graphxmt_worker_busy_us_total", "per-worker busy", metrics.Label{Key: "worker", Value: "0"}).Add(10)
	r.Counter("graphxmt_worker_busy_us_total", "per-worker busy", metrics.Label{Key: "worker", Value: "1"}).Add(20)
	r.Gauge("graphxmt_frontier_edges", "frontier size").Set(99)
	h := r.Histogram("graphxmt_superstep_wall_us", "superstep wall", metrics.Pow2Bounds(8))
	h.Observe(3)
	h.Observe(100)
	h.Observe(1 << 30) // +Inf bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE graphxmt_messages_logical_total counter",
		"graphxmt_messages_logical_total 12345",
		`graphxmt_worker_busy_us_total{worker="0"} 10`,
		`graphxmt_worker_busy_us_total{worker="1"} 20`,
		"# TYPE graphxmt_frontier_edges gauge",
		"graphxmt_frontier_edges 99",
		"# TYPE graphxmt_superstep_wall_us histogram",
		`graphxmt_superstep_wall_us_bucket{le="4"} 1`,
		`graphxmt_superstep_wall_us_bucket{le="128"} 2`,
		`graphxmt_superstep_wall_us_bucket{le="+Inf"} 3`,
		"graphxmt_superstep_wall_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := metrics.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition does not validate: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty", "\n# just a comment\n"},
		{"bad metric name", "1bad_name 3\n"},
		{"bad value", "graphxmt_x{a=\"b\"} notanumber\n"},
		{"bad label name", "graphxmt_x{1a=\"b\"} 3\n"},
		{"unquoted label", "graphxmt_x{a=b} 3\n"},
		{"duplicate series", "graphxmt_x 1\ngraphxmt_x 2\n"},
		{"duplicate type", "# TYPE graphxmt_x counter\n# TYPE graphxmt_x gauge\ngraphxmt_x 1\n"},
		{"unknown type", "# TYPE graphxmt_x widget\ngraphxmt_x 1\n"},
		{
			"histogram without +Inf",
			"# TYPE graphxmt_h histogram\ngraphxmt_h_bucket{le=\"1\"} 1\ngraphxmt_h_sum 1\ngraphxmt_h_count 1\n",
		},
		{
			"histogram not cumulative",
			"# TYPE graphxmt_h histogram\ngraphxmt_h_bucket{le=\"1\"} 5\ngraphxmt_h_bucket{le=\"+Inf\"} 3\ngraphxmt_h_sum 1\ngraphxmt_h_count 3\n",
		},
		{
			"histogram count mismatch",
			"# TYPE graphxmt_h histogram\ngraphxmt_h_bucket{le=\"1\"} 1\ngraphxmt_h_bucket{le=\"+Inf\"} 3\ngraphxmt_h_sum 1\ngraphxmt_h_count 4\n",
		},
		{
			"bucket without le",
			"# TYPE graphxmt_h histogram\ngraphxmt_h_bucket{x=\"1\"} 1\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := metrics.ValidateExposition(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("validator accepted %s:\n%s", tc.name, tc.doc)
			}
		})
	}
}

// TestExpositionFile validates an externally captured exposition document —
// CI scrapes a live bspgraph -http endpoint mid-run and points this test at
// the saved body.
func TestExpositionFile(t *testing.T) {
	path := os.Getenv("GRAPHXMT_METRICS_FILE")
	if path == "" {
		t.Skip("GRAPHXMT_METRICS_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := metrics.ValidateExposition(f); err != nil {
		t.Fatalf("exposition at %s invalid: %v", path, err)
	}
}

func TestInvalidRegistrationPanics(t *testing.T) {
	r := metrics.NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad name", func() { r.Counter("0bad", "") })
	mustPanic("bad label", func() { r.Counter("graphxmt_ok_total", "", metrics.Label{Key: "0bad", Value: "x"}) })
	r.Counter("graphxmt_kind_total", "")
	mustPanic("kind mismatch", func() { r.Gauge("graphxmt_kind_total", "") })
	mustPanic("unsorted bounds", func() { metrics.NewHistogram([]int64{4, 2}) })
}
