// Package metrics is a dependency-free, low-overhead metrics registry for
// the live observability layer: atomic counters and gauges, fixed-bucket
// log-scale histograms, and a Prometheus text-exposition writer
// (prometheus.go) — everything the introspection endpoint serves without
// pulling a client library into the module.
//
// Instruments are plain atomics, so updating one from the engine's driving
// goroutine while an HTTP scrape reads it is race-free and costs one atomic
// RMW per update. Values are int64 throughout; producers pick the unit and
// encode it in the metric name (`_us` for microsecond durations, `_total`
// for monotone counters, `_permille` for scaled fractions — see
// docs/OBSERVABILITY.md for the naming conventions).
//
// The registry hands out get-or-create instruments keyed by (name, labels)
// and renders them in registration order, so exposition output is stable
// run to run — the property the CI well-formedness check and the
// determinism matrix lean on.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready to
// use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d must be >= 0 for the exposition to
// stay Prometheus-legal; the registry does not police it).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: bucket i counts observations v
// with v <= bounds[i] (and > bounds[i-1]); one implicit +Inf bucket catches
// the rest. Observations and reads are lock-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
}

// DurationBounds are the default log2-scale bounds for microsecond
// durations: 1µs, 2µs, 4µs, ... 2^35µs (~34s), then +Inf. 36 buckets
// resolve any latency to within a factor of two — coarse enough to stay
// tiny, fine enough for p50/p90/p99 tail reporting.
var DurationBounds = Pow2Bounds(36)

// CountBounds are the default log2-scale bounds for counts (messages,
// edges): 1, 2, 4, ... 2^47, then +Inf.
var CountBounds = Pow2Bounds(48)

// Pow2Bounds returns n ascending power-of-two bucket bounds: 1, 2, 4, ...,
// 2^(n-1).
func Pow2Bounds(n int) []int64 {
	b := make([]int64, n)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}

// NewHistogram returns a histogram over the given ascending bucket bounds
// (a +Inf bucket is implicit). It panics on empty or unsorted bounds —
// instrument construction is programmer-controlled, not data-driven.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %d <= %d", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts, the +Inf bucket last. A concurrent Observe may land between
// bucket loads; each individual count is still exact.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed values
// by linear interpolation within the covering bucket — accurate to the
// bucket's width, i.e. within a factor of two on the default log2 bounds.
// Values in the +Inf bucket report the largest finite bound. Returns 0
// when nothing was observed.
func (h *Histogram) Quantile(q float64) int64 {
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(counts)-1 {
			if i >= len(h.bounds) {
				// +Inf bucket: no finite upper bound to interpolate to.
				return h.bounds[len(h.bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// Label is one name=value pair attached to a metric series.
type Label struct{ Key, Value string }

// Kind is the exposition type of a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (labels → instrument) binding inside a family.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
	byKey  map[string]*series
}

// Registry is a set of named metric families. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	names []string
	fams  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Counter returns the counter named name with the given labels, creating it
// on first use. Reusing a name with a different kind panics (a wiring bug,
// not a runtime condition).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.seriesFor(name, help, KindCounter, labels)
	return s.c
}

// Gauge returns the gauge named name with the given labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.seriesFor(name, help, KindGauge, labels)
	return s.g
}

// Histogram returns the histogram named name with the given labels and
// bucket bounds, creating it on first use (later calls may pass nil bounds;
// the first call's bounds win).
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindHistogram)
	key := renderLabels(labels)
	if s, ok := f.byKey[key]; ok {
		return s.h
	}
	if bounds == nil {
		bounds = DurationBounds
	}
	s := &series{labels: key, h: NewHistogram(bounds)}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s.h
}

func (r *Registry) seriesFor(name, help string, kind Kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kind)
	key := renderLabels(labels)
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: key}
	switch kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

func (r *Registry) familyLocked(name, help string, kind Kind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
	r.fams[name] = f
	r.names = append(r.names, name)
	return f
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name is a legal Prometheus label name.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels renders a sorted, escaped {k="v",...} string — the series
// key and the exposition form. Empty label sets render as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := "{"
	for i, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q", l.Key))
		}
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return out + "}"
}

func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}
