// Package ckpt implements superstep-boundary checkpointing for the BSP
// engine: versioned, CRC32-checksummed, atomically written snapshots of
// everything a run needs to resume bit-identically — vertex states, the
// halted set, the in-flight message queue, per-step counters, aggregator
// values, and the accumulated trace profile — plus a config fingerprint so
// resuming against the wrong graph or program is a typed error rather than
// silent corruption.
//
// The engine's determinism invariant (Result and profile are bit-identical
// at any host worker count) extends through this package: a run killed at
// any superstep boundary and resumed from its checkpoint produces exactly
// the Result and profile of an uninterrupted run (see
// internal/core/recovery_test.go and docs/ROBUSTNESS.md).
package ckpt

import (
	"fmt"
	"io"

	"graphxmt/internal/trace"
)

// Policy configures checkpointing for a run. With no Policy at all the
// engine's hot path pays a single pointer check.
type Policy struct {
	// Dir is the directory checkpoints are written to (created if absent).
	// An empty Dir makes the policy label-only: nothing is written, but
	// Label still participates in resume fingerprint validation — the
	// shape of a run that resumes a checkpoint without taking new ones.
	Dir string
	// EveryN writes a checkpoint after every Nth superstep boundary;
	// 0 selects 1 (every boundary). Interrupts (Config.Stop) force a write
	// regardless of the cadence.
	EveryN int
	// Keep retains only the newest Keep periodic checkpoints, pruning older
	// ones after each successful write; 0 keeps everything. Emergency
	// checkpoints (written on a vertex-program panic) are never pruned.
	Keep int
	// Label identifies the run beyond the engine-visible configuration —
	// CLIs put the algorithm and its parameters here (e.g. "bfs src=5").
	// Resume fails with a MismatchError if labels differ.
	Label string
	// Hooks, when non-nil, lets the fault-injection harness intercept
	// checkpoint writes and simulate kills. Nil in production.
	Hooks *Hooks
}

// Hooks are the fault-injection harness's interception points
// (internal/faultinject). Both are consulted at superstep boundaries only.
type Hooks struct {
	// WrapWrite, when non-nil, wraps the writer a checkpoint is encoded
	// into — returning a writer that fails mid-stream simulates a crash
	// during the write.
	WrapWrite func(step int64, w io.Writer) io.Writer
	// Kill, when non-nil and returning true for a step, makes the engine
	// behave as if it received a termination signal at that boundary: it
	// writes a checkpoint and returns InterruptedError.
	Kill func(step int64) bool
	// TornWrite, when non-nil and returning true for a step, makes
	// WriteFile bypass its temp+rename protocol for that step's
	// checkpoint: a truncated payload is written directly to the final
	// name and reported as success — the shape of a crash mid-write on a
	// filesystem without atomic rename. The damage surfaces at resume,
	// where the fallback chain must skip the torn file.
	TornWrite func(step int64) bool
}

// Fingerprint identifies the configuration a checkpoint was taken under.
// Resume compares the stored fingerprint against the resuming run's and
// rejects any difference with a MismatchError.
type Fingerprint struct {
	// GraphCRC is a CRC32 (Castagnoli) over the graph's CSR arrays.
	GraphCRC uint32
	Vertices int64
	Edges    int64
	// Program is the vertex program's name (core.ProgramNameOf).
	Program string
	// Label is Policy.Label — program parameters live here, since the
	// engine cannot introspect program struct fields portably.
	Label string
	// Combiner records whether a combiner was configured. The function
	// itself cannot be fingerprinted; the label should disambiguate
	// algorithms with optional combiners.
	Combiner bool
	// Sparse is Config.SparseActivation.
	Sparse bool
	// Schedule names the sweep chunk schedule the run uses ("degree" or
	// "fixed"). Aggregator fold trees follow chunk boundaries, so a run may
	// only resume under the schedule it started with; version-1 checkpoints
	// decode as "fixed", the only schedule that existed then.
	Schedule string
	// MaxSupersteps / MaxMessages are the resolved engine bounds.
	MaxSupersteps int64
	MaxMessages   int64
	// CostsCRC is a CRC32 over the resolved cost schedule.
	CostsCRC uint32
	// Direction is the run's direction mode ("auto", "push" or "pull" —
	// core.DirectionMode). The push/pull decision sequence is a pure
	// function of the mode and the run's logical counters, so a run may
	// only resume under the mode it started with; v1-v3 checkpoints decode
	// as "auto", the only behavior that existed then.
	Direction string
	// Retries is the run's Config.MaxRetries bound. The retry loop
	// re-executes a faulting superstep from the boundary snapshot, so the
	// retry budget shapes which faults a run survives; a resumed run must
	// keep the bound it started with for Result.RetriesPerStep to stay
	// comparable. v1-v4 checkpoints decode as 0 (retry did not exist).
	Retries int64
	// Rep is the graph's adjacency representation ("flat" or "compressed"
	// — graph.Rep). GraphCRC hashes the stored arrays — the flat adjacency
	// or the delta-varint bytes — so the same logical graph fingerprints
	// differently per representation, and a run may only resume under the
	// representation it checkpointed with. v1-v5 checkpoints decode as
	// "flat", the only representation that existed then.
	Rep string
	// Lanes is the batched run's lane assignment — the comma-separated
	// source list in lane order (core.LaneProgram) — or "" for unbatched
	// runs. Per-vertex lane masks and the aux level words are meaningful
	// only under the assignment they were written with, so a batch may
	// only resume under the exact source order it started with. v1-v6
	// checkpoints decode as "" (batching did not exist).
	Lanes string
}

// Check compares fp (from a checkpoint) against want (the resuming run)
// field by field, returning a MismatchError naming the first difference.
func (fp Fingerprint) Check(want Fingerprint) error {
	type cmp struct {
		field     string
		got, want string
	}
	cs := []cmp{
		{"graph checksum", fmt.Sprintf("%08x", fp.GraphCRC), fmt.Sprintf("%08x", want.GraphCRC)},
		{"vertices", fmt.Sprint(fp.Vertices), fmt.Sprint(want.Vertices)},
		{"edges", fmt.Sprint(fp.Edges), fmt.Sprint(want.Edges)},
		{"program", fp.Program, want.Program},
		{"label", fp.Label, want.Label},
		{"combiner", fmt.Sprint(fp.Combiner), fmt.Sprint(want.Combiner)},
		{"sparse activation", fmt.Sprint(fp.Sparse), fmt.Sprint(want.Sparse)},
		{"chunk schedule", fp.Schedule, want.Schedule},
		{"direction", fp.Direction, want.Direction},
		{"max supersteps", fmt.Sprint(fp.MaxSupersteps), fmt.Sprint(want.MaxSupersteps)},
		{"max messages", fmt.Sprint(fp.MaxMessages), fmt.Sprint(want.MaxMessages)},
		{"max retries", fmt.Sprint(fp.Retries), fmt.Sprint(want.Retries)},
		{"representation", fp.Rep, want.Rep},
		{"lane assignment", fp.Lanes, want.Lanes},
		{"cost schedule", fmt.Sprintf("%08x", fp.CostsCRC), fmt.Sprintf("%08x", want.CostsCRC)},
	}
	for _, c := range cs {
		if c.got != c.want {
			return &MismatchError{Field: c.field, Got: c.got, Want: c.want}
		}
	}
	return nil
}

// Aggregate is one named aggregator's persisted state.
type Aggregate struct {
	Name   string
	Value  int64
	Seeded bool
}

// Snapshot is the complete engine state at one superstep boundary: the
// boundary after superstep Step completed, before Step+1 begins. Messages
// are the ones sent during Step (they are delivered to inboxes when the
// run resumes). All slices are stored by value in the checkpoint file.
type Snapshot struct {
	FP Fingerprint
	// Step is the last completed superstep.
	Step int64
	// Live is the number of non-halted vertices after Step.
	Live int64
	// States and Halted are per-vertex (length FP.Vertices).
	States []int64
	Halted []bool
	// MsgDest/MsgVal are the in-flight message queue (sent in Step,
	// consumed by Step+1), parallel slices in send order.
	MsgDest []int64
	MsgVal  []int64
	// BcastSrc/BcastVal/BcastSeq are the in-flight broadcast records
	// (format v3): one entry per SendToNeighbors call the engine kept as a
	// record instead of expanding per edge — source vertex, payload, and
	// the record's position in the unicast stream (BcastSeq[i] unicasts
	// precede record i; non-decreasing). Parallel slices in record order
	// (ascending source). Empty for runs whose boundary traffic was
	// expanded, and for v1/v2 checkpoints.
	BcastSrc []int64
	BcastVal []int64
	BcastSeq []int64
	// Per-step counters, each of length Step+1.
	ActivePerStep    []int64
	MessagesPerStep  []int64
	DeliveredPerStep []int64
	// Directions is the per-superstep push/pull decision sequence (format
	// v4): one entry per completed superstep (length Step+1), values 1
	// (push) or 2 (pull) — core.DirectionMode. Visited is the direction
	// heuristic's visited-vertex bitmap (length FP.Vertices). Both are
	// present together when the run's direction layer was active, and both
	// empty otherwise (and for v1-v3 checkpoints).
	Directions []int64
	Visited    []bool
	// RetriesPerStep is the per-superstep retry count (format v5): one
	// entry per completed superstep (length Step+1) when the run's retry
	// supervisor was active, empty otherwise (and for v1-v4 checkpoints).
	RetriesPerStep []int64
	// Aux is the program's auxiliary state (format v7) — the deep copy of
	// core.AuxProgram's backing slice at this boundary (e.g. MultiBFS's
	// packed per-vertex per-lane levels). Its length and encoding are
	// program-defined; FP.Lanes plus FP.Program pin the interpretation.
	// Empty for programs without aux state and for v1-v6 checkpoints.
	Aux []int64
	// Aggregates and PrevAggregates (the Pregel previous-superstep view),
	// sorted by name.
	Aggregates     []Aggregate
	PrevAggregates []Aggregate
	// Phases is the accumulated trace profile.
	Phases []trace.PhaseState
}
