package ckpt_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"graphxmt/internal/ckpt"
	"graphxmt/internal/trace"
)

// randSnapshot builds a structurally valid random snapshot: the decoder's
// cross-checks (array lengths vs fingerprint, live count vs halted set,
// message destinations in range) must all hold or Load would reject it.
func randSnapshot(rng *rand.Rand) *ckpt.Snapshot {
	n := int64(1 + rng.Intn(200))
	step := int64(rng.Intn(20))
	s := &ckpt.Snapshot{
		FP: ckpt.Fingerprint{
			GraphCRC:      rng.Uint32(),
			Vertices:      n,
			Edges:         int64(rng.Intn(1000)),
			Program:       "prog-" + strings.Repeat("x", rng.Intn(8)),
			Label:         "label" + string(rune('a'+rng.Intn(26))),
			Combiner:      rng.Intn(2) == 0,
			Sparse:        rng.Intn(2) == 0,
			Schedule:      []string{"degree", "fixed"}[rng.Intn(2)],
			MaxSupersteps: int64(rng.Intn(1 << 20)),
			MaxMessages:   int64(rng.Intn(1 << 30)),
			CostsCRC:      rng.Uint32(),
			Direction:     []string{"auto", "push", "pull"}[rng.Intn(3)],
			Retries:       int64(rng.Intn(4)),
			Rep:           []string{"flat", "compressed"}[rng.Intn(2)],
			Lanes:         []string{"", "3,17,42", "0"}[rng.Intn(3)],
		},
		Step:   step,
		States: make([]int64, n),
		Halted: make([]bool, n),
	}
	for i := range s.States {
		s.States[i] = rng.Int63() - rng.Int63()
		s.Halted[i] = rng.Intn(3) == 0
	}
	for _, h := range s.Halted {
		if !h {
			s.Live++
		}
	}
	m := rng.Intn(300)
	if m > 0 { // the decoder yields nil (not empty) slices for zero lengths
		s.MsgDest = make([]int64, m)
		s.MsgVal = make([]int64, m)
		for i := 0; i < m; i++ {
			s.MsgDest[i] = int64(rng.Intn(int(n)))
			s.MsgVal[i] = rng.Int63() - rng.Int63()
		}
	}
	if k := rng.Intn(4); k > 0 {
		// In-flight broadcast records: seqs must be non-decreasing and at
		// most the unicast count.
		seqs := make([]int64, k)
		for i := range seqs {
			seqs[i] = int64(rng.Intn(m + 1))
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for i := 0; i < k; i++ {
			s.BcastSrc = append(s.BcastSrc, int64(rng.Intn(int(n))))
			s.BcastVal = append(s.BcastVal, rng.Int63()-rng.Int63())
			s.BcastSeq = append(s.BcastSeq, seqs[i])
		}
	}
	for i := int64(0); i <= step; i++ {
		s.ActivePerStep = append(s.ActivePerStep, int64(rng.Intn(1000)))
		s.MessagesPerStep = append(s.MessagesPerStep, int64(rng.Intn(1000)))
		s.DeliveredPerStep = append(s.DeliveredPerStep, int64(rng.Intn(1000)))
	}
	if rng.Intn(2) == 0 {
		// Direction-layer state (v4): present together — one push/pull
		// decision per completed superstep plus the per-vertex visited
		// bitmap.
		for i := int64(0); i <= step; i++ {
			s.Directions = append(s.Directions, int64(1+rng.Intn(2)))
		}
		s.Visited = make([]bool, n)
		for i := range s.Visited {
			s.Visited[i] = rng.Intn(2) == 0
		}
	}
	if rng.Intn(2) == 0 {
		// Retry-supervisor state (v5): one retry count per completed
		// superstep.
		for i := int64(0); i <= step; i++ {
			s.RetriesPerStep = append(s.RetriesPerStep, int64(rng.Intn(3)))
		}
	}
	if rng.Intn(2) == 0 {
		// Program-owned aux state (v7): program-defined length, opaque to
		// the decoder.
		s.Aux = make([]int64, 1+rng.Intn(64))
		for i := range s.Aux {
			s.Aux[i] = rng.Int63() - rng.Int63()
		}
	}
	for i, k := 0, rng.Intn(3); i < k; i++ {
		s.Aggregates = append(s.Aggregates, ckpt.Aggregate{
			Name: "agg" + string(rune('a'+i)), Value: rng.Int63n(1 << 40), Seeded: rng.Intn(2) == 0,
		})
		s.PrevAggregates = append(s.PrevAggregates, ckpt.Aggregate{
			Name: "agg" + string(rune('a'+i)), Value: rng.Int63n(1 << 40), Seeded: true,
		})
	}
	for i, k := 0, rng.Intn(6); i < k; i++ {
		ph := trace.PhaseState{
			Name: "bsp/superstep", Index: i,
			Tasks: rng.Int63n(1 << 30), Issue: rng.Int63n(1 << 30),
			Loads: rng.Int63n(1 << 30), Stores: rng.Int63n(1 << 30),
			MaxTask: rng.Int63n(1 << 20), Barriers: 1,
		}
		for c := range ph.Hot {
			ph.Hot[c] = rng.Int63n(1 << 20)
		}
		s.Phases = append(s.Phases, ph)
	}
	return s
}

// setStep retargets a random snapshot to a specific superstep, resizing
// the per-step counters the decoder cross-checks against Step.
func setStep(s *ckpt.Snapshot, step int64) {
	s.Step = step
	resize := func(a []int64) []int64 {
		for int64(len(a)) < step+1 {
			a = append(a, int64(len(a)))
		}
		return a[:step+1]
	}
	s.ActivePerStep = resize(s.ActivePerStep)
	s.MessagesPerStep = resize(s.MessagesPerStep)
	s.DeliveredPerStep = resize(s.DeliveredPerStep)
	if len(s.Directions) > 0 {
		for int64(len(s.Directions)) < step+1 {
			s.Directions = append(s.Directions, 1)
		}
		s.Directions = s.Directions[:step+1]
	}
	if len(s.RetriesPerStep) > 0 {
		s.RetriesPerStep = resize(s.RetriesPerStep)
	}
}

// TestRoundTripProperty: Write/Load is the identity over random valid
// snapshots.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	for i := 0; i < 50; i++ {
		want := randSnapshot(rng)
		path, err := ckpt.WriteFile(dir, want, ckpt.FileName(want.Step), nil)
		if err != nil {
			t.Fatalf("iter %d: write: %v", i, err)
		}
		got, err := ckpt.Load(path)
		if err != nil {
			t.Fatalf("iter %d: load: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("iter %d: round trip mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestCorruptionRejected: a bit flip anywhere in the file, or truncation
// at any sampled length, is rejected with a typed error.
func TestCorruptionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	s := randSnapshot(rng)
	path, err := ckpt.WriteFile(dir, s, ckpt.FileName(s.Step), nil)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipped := filepath.Join(dir, "flipped.gxckpt")
	stride := len(orig)/97 + 1
	for off := 0; off < len(orig); off += stride {
		data := append([]byte(nil), orig...)
		data[off] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(flipped, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ckpt.Load(flipped)
		if err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
		var ce *ckpt.CorruptError
		var ve *ckpt.VersionError
		if !errors.As(err, &ce) && !errors.As(err, &ve) {
			t.Fatalf("bit flip at offset %d: error not typed: %v", off, err)
		}
	}

	truncated := filepath.Join(dir, "truncated.gxckpt")
	for _, keep := range []int{0, 1, 7, 8, 15, 16, 17, len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(truncated, orig[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ckpt.Load(truncated)
		var ce *ckpt.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation to %d bytes: want CorruptError, got %v", keep, err)
		}
	}

	// Appending trailing garbage breaks the checksum; replacing the
	// checksum too must still fail on the trailing bytes.
	data := append(append([]byte(nil), orig...), 0xAB, 0xCD)
	if err := os.WriteFile(truncated, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Load(truncated); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestInvalidBroadcastRecordsRejected: broadcast-record damage that a
// checksum cannot catch — a well-formed encode of semantically impossible
// records — is rejected by the decoder's structural cross-checks with a
// typed CorruptError.
func TestInvalidBroadcastRecordsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := randSnapshot(rng)
	for len(base.BcastSrc) < 2 || len(base.MsgDest) == 0 {
		base = randSnapshot(rng)
	}
	mutations := []struct {
		name string
		mut  func(s *ckpt.Snapshot)
	}{
		{"length mismatch", func(s *ckpt.Snapshot) {
			s.BcastVal = s.BcastVal[:len(s.BcastVal)-1]
		}},
		{"out-of-range source", func(s *ckpt.Snapshot) {
			s.BcastSrc[0] = s.FP.Vertices
		}},
		{"decreasing seq", func(s *ckpt.Snapshot) {
			s.BcastSeq[0] = s.BcastSeq[len(s.BcastSeq)-1] + 1
		}},
		{"seq beyond unicast count", func(s *ckpt.Snapshot) {
			s.BcastSeq[len(s.BcastSeq)-1] = int64(len(s.MsgDest)) + 1
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			s := *base
			s.BcastSrc = append([]int64(nil), base.BcastSrc...)
			s.BcastVal = append([]int64(nil), base.BcastVal...)
			s.BcastSeq = append([]int64(nil), base.BcastSeq...)
			m.mut(&s)
			dir := t.TempDir()
			path, err := ckpt.WriteFile(dir, &s, ckpt.FileName(s.Step), nil)
			if err != nil {
				t.Fatal(err)
			}
			_, err = ckpt.Load(path)
			var ce *ckpt.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("want CorruptError, got %v", err)
			}
		})
	}
}

func TestUnknownVersionRejected(t *testing.T) {
	dir := t.TempDir()
	s := randSnapshot(rand.New(rand.NewSource(3)))
	path, err := ckpt.WriteFile(dir, s, ckpt.FileName(s.Step), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[8] = 99 // version field
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var ve *ckpt.VersionError
	if _, err := ckpt.Load(path); !errors.As(err, &ve) {
		t.Fatalf("want VersionError, got %v", err)
	} else if ve.Version != 99 {
		t.Fatalf("VersionError.Version = %d, want 99", ve.Version)
	}
}

func TestFingerprintCheck(t *testing.T) {
	base := ckpt.Fingerprint{
		GraphCRC: 1, Vertices: 10, Edges: 20, Program: "bfs", Label: "src=0",
		Combiner: true, Sparse: false, MaxSupersteps: 1000, MaxMessages: 1 << 28, CostsCRC: 2,
		Direction: "auto",
	}
	if err := base.Check(base); err != nil {
		t.Fatalf("identical fingerprints rejected: %v", err)
	}
	cases := []struct {
		field  string
		mutate func(*ckpt.Fingerprint)
	}{
		{"graph checksum", func(f *ckpt.Fingerprint) { f.GraphCRC++ }},
		{"vertices", func(f *ckpt.Fingerprint) { f.Vertices++ }},
		{"edges", func(f *ckpt.Fingerprint) { f.Edges++ }},
		{"program", func(f *ckpt.Fingerprint) { f.Program = "cc" }},
		{"label", func(f *ckpt.Fingerprint) { f.Label = "src=1" }},
		{"combiner", func(f *ckpt.Fingerprint) { f.Combiner = false }},
		{"sparse activation", func(f *ckpt.Fingerprint) { f.Sparse = true }},
		{"chunk schedule", func(f *ckpt.Fingerprint) { f.Schedule = "degree" }},
		{"direction", func(f *ckpt.Fingerprint) { f.Direction = "pull" }},
		{"max supersteps", func(f *ckpt.Fingerprint) { f.MaxSupersteps = 5 }},
		{"max messages", func(f *ckpt.Fingerprint) { f.MaxMessages = 5 }},
		{"lane assignment", func(f *ckpt.Fingerprint) { f.Lanes = "3,17" }},
		{"cost schedule", func(f *ckpt.Fingerprint) { f.CostsCRC++ }},
	}
	for _, tc := range cases {
		want := base
		tc.mutate(&want)
		err := base.Check(want)
		var me *ckpt.MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("%s: want MismatchError, got %v", tc.field, err)
		}
		if me.Field != tc.field {
			t.Fatalf("mismatch field = %q, want %q", me.Field, tc.field)
		}
	}
}

// TestWriteAtomicity: a mid-stream write failure must leave no final file
// behind, no temp litter, and previously written checkpoints intact.
func TestWriteAtomicity(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	ok := randSnapshot(rng)
	setStep(ok, 3)
	if _, err := ckpt.WriteFile(dir, ok, ckpt.FileName(3), nil); err != nil {
		t.Fatal(err)
	}

	bad := randSnapshot(rng)
	setStep(bad, 4)
	hooks := &ckpt.Hooks{
		WrapWrite: func(step int64, w io.Writer) io.Writer { return failAfter{w: w} },
	}
	_, err := ckpt.WriteFile(dir, bad, ckpt.FileName(4), hooks)
	var we *ckpt.WriteError
	if !errors.As(err, &we) {
		t.Fatalf("want WriteError, got %v", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != ckpt.FileName(3) {
			t.Fatalf("unexpected file after failed write: %s", e.Name())
		}
	}
	if _, err := ckpt.Load(filepath.Join(dir, ckpt.FileName(3))); err != nil {
		t.Fatalf("previous checkpoint damaged by failed write: %v", err)
	}
}

type failAfter struct{ w io.Writer }

func (f failAfter) Write(b []byte) (int, error) {
	if len(b) > 4 {
		f.w.Write(b[:4])
		return 4, errors.New("boom")
	}
	return f.w.Write(b)
}

func TestLatestPathAndPrune(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	for _, step := range []int64{0, 2, 5, 9} {
		s := randSnapshot(rng)
		setStep(s, step)
		if _, err := ckpt.WriteFile(dir, s, ckpt.FileName(step), nil); err != nil {
			t.Fatal(err)
		}
	}
	// An emergency checkpoint must be invisible to LatestPath and Prune.
	em := randSnapshot(rng)
	setStep(em, 11)
	if _, err := ckpt.WriteFile(dir, em, ckpt.EmergencyFileName(11), nil); err != nil {
		t.Fatal(err)
	}

	latest, err := ckpt.LatestPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != ckpt.FileName(9) {
		t.Fatalf("latest = %s, want %s", latest, ckpt.FileName(9))
	}

	if err := ckpt.Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	var names []string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{ckpt.FileName(5), ckpt.FileName(9), ckpt.EmergencyFileName(11)}
	if len(names) != len(want) {
		t.Fatalf("after prune: %v, want %v", names, want)
	}
	for _, w := range want {
		if _, err := os.Stat(filepath.Join(dir, w)); err != nil {
			t.Fatalf("after prune, %s missing", w)
		}
	}

	if latest, _ = ckpt.LatestPath(t.TempDir()); latest != "" {
		t.Fatalf("latest in empty dir = %q, want empty", latest)
	}
}

// spliceVersion reconstructs the exact byte layout of an older-format file
// from a current-version encode of s: versions below 7 drop the
// Fingerprint Lanes string (after Rep) and the Aux array (after
// RetriesPerStep); versions below 6 drop the
// Fingerprint Rep string (after Retries); versions below 5 also drop
// FP.Retries and the RetriesPerStep array; versions below 4 drop the
// Fingerprint Direction string after Schedule and the Directions/Visited
// arrays after DeliveredPerStep; version 2 also drops the
// broadcast-record arrays (added in v3, after MsgVal); version 1
// additionally drops the Schedule string. The header version and checksum
// are rewritten to match. Offsets are computed against the original
// current-version layout and spliced back to front so earlier offsets
// stay valid.
func spliceVersion(t *testing.T, s *ckpt.Snapshot, data []byte, ver uint32) []byte {
	t.Helper()
	const header = 16
	out := append([]byte{}, data...)

	schedOff := header + 4 + 8 + 8 +
		4 + len(s.FP.Program) +
		4 + len(s.FP.Label) +
		1 + 1
	schedLen := 4 + len(s.FP.Schedule)
	dirStrOff := schedOff + schedLen
	dirStrLen := 4 + len(s.FP.Direction)
	// FP.Retries (v5) sits after the Direction string, and the FP.Rep
	// string (v6) after that.
	retryFPOff := dirStrOff + dirStrLen
	const retryFPLen = 8
	repStrOff := retryFPOff + retryFPLen
	repStrLen := 4 + len(s.FP.Rep)
	// The FP.Lanes string (v7) sits after the Rep string.
	lanesStrOff := repStrOff + repStrLen
	lanesStrLen := 4 + len(s.FP.Lanes)
	// Broadcast arrays sit after MsgVal: three length-prefixed int64 slices.
	bcastOff := lanesStrOff + lanesStrLen +
		8 + 8 + 4 + // MaxSupersteps, MaxMessages, CostsCRC
		8 + 8 + // Step, Live
		8 + 8*len(s.States) +
		8 + len(s.Halted) +
		8 + 8*len(s.MsgDest) +
		8 + 8*len(s.MsgVal)
	bcastLen := 3*8 + 8*(len(s.BcastSrc)+len(s.BcastVal)+len(s.BcastSeq))
	dirArrOff := bcastOff + bcastLen +
		8 + 8*len(s.ActivePerStep) +
		8 + 8*len(s.MessagesPerStep) +
		8 + 8*len(s.DeliveredPerStep)
	dirArrLen := 8 + 8*len(s.Directions) +
		8 + len(s.Visited)
	// RetriesPerStep (v5) sits after the Visited bitmap, and the Aux
	// array (v7) after that.
	retryArrOff := dirArrOff + dirArrLen
	retryArrLen := 8 + 8*len(s.RetriesPerStep)
	auxOff := retryArrOff + retryArrLen
	auxLen := 8 + 8*len(s.Aux)

	if ver < 7 {
		out = append(out[:auxOff], out[auxOff+auxLen:]...)
	}
	if ver < 5 {
		out = append(out[:retryArrOff], out[retryArrOff+retryArrLen:]...)
	}
	if ver < 4 {
		out = append(out[:dirArrOff], out[dirArrOff+dirArrLen:]...)
	}
	if ver < 3 {
		out = append(out[:bcastOff], out[bcastOff+bcastLen:]...)
	}
	if ver < 7 {
		out = append(out[:lanesStrOff], out[lanesStrOff+lanesStrLen:]...)
	}
	if ver < 6 {
		out = append(out[:repStrOff], out[repStrOff+repStrLen:]...)
	}
	if ver < 5 {
		out = append(out[:retryFPOff], out[retryFPOff+retryFPLen:]...)
	}
	if ver < 4 {
		out = append(out[:dirStrOff], out[dirStrOff+dirStrLen:]...)
	}
	if ver < 2 {
		out = append(out[:schedOff], out[schedOff+schedLen:]...)
	}
	binary.LittleEndian.PutUint32(out[8:12], ver)
	binary.LittleEndian.PutUint32(out[12:16], crc32.Checksum(out[header:], crc32.MakeTable(crc32.Castagnoli)))
	return out
}

// TestLoadVersion1DefaultsSchedule: a version-1 checkpoint (written before
// chunk schedules existed) must load with Schedule "fixed" — the only
// schedule version-1 runs could have used. The test splices the Schedule
// string and the v3 broadcast arrays out of a current-version file and
// rewrites the header, reconstructing the exact v1 byte layout.
func TestLoadVersion1DefaultsSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randSnapshot(rng)
	dir := t.TempDir()
	path, err := ckpt.WriteFile(dir, s, ckpt.FileName(s.Step), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v1 := spliceVersion(t, s, data, 1)

	v1path := filepath.Join(dir, "v1"+ckpt.Ext)
	if err := os.WriteFile(v1path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(v1path)
	if err != nil {
		t.Fatalf("loading version-1 checkpoint: %v", err)
	}
	if got.FP.Schedule != "fixed" {
		t.Fatalf("v1 Schedule = %q, want \"fixed\"", got.FP.Schedule)
	}
	want := *s
	want.FP.Schedule = "fixed"
	want.FP.Direction = "auto"
	want.FP.Retries = 0
	want.FP.Rep = "flat"
	want.FP.Lanes = ""
	want.BcastSrc, want.BcastVal, want.BcastSeq = nil, nil, nil
	want.Directions, want.Visited = nil, nil
	want.RetriesPerStep = nil
	want.Aux = nil
	if !reflect.DeepEqual(&want, got) {
		t.Fatalf("v1 round trip mismatch beyond Schedule:\nwant %+v\ngot  %+v", &want, got)
	}
}

// TestLoadVersion2NoBroadcasts: a version-2 checkpoint (written before
// broadcast records existed) must load with empty record slices and
// everything else intact — the traffic a v2 run checkpointed is fully
// expanded in MsgDest/MsgVal, so resume re-delivers it unchanged.
func TestLoadVersion2NoBroadcasts(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := randSnapshot(rng)
	dir := t.TempDir()
	path, err := ckpt.WriteFile(dir, s, ckpt.FileName(s.Step), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v2 := spliceVersion(t, s, data, 2)

	v2path := filepath.Join(dir, "v2"+ckpt.Ext)
	if err := os.WriteFile(v2path, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(v2path)
	if err != nil {
		t.Fatalf("loading version-2 checkpoint: %v", err)
	}
	want := *s
	want.FP.Direction = "auto"
	want.FP.Retries = 0
	want.FP.Rep = "flat"
	want.FP.Lanes = ""
	want.BcastSrc, want.BcastVal, want.BcastSeq = nil, nil, nil
	want.Directions, want.Visited = nil, nil
	want.RetriesPerStep = nil
	want.Aux = nil
	if !reflect.DeepEqual(&want, got) {
		t.Fatalf("v2 round trip mismatch:\nwant %+v\ngot  %+v", &want, got)
	}
}

// TestLoadVersion3NoDirection: a version-3 checkpoint (written before the
// direction layer existed) must load with Direction "auto" — direction
// optimization shipped defaulting to auto, and pre-direction runs behave
// exactly as auto runs over push-only programs — and nil direction arrays,
// with the broadcast records intact.
func TestLoadVersion3NoDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := randSnapshot(rng)
	dir := t.TempDir()
	path, err := ckpt.WriteFile(dir, s, ckpt.FileName(s.Step), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v3 := spliceVersion(t, s, data, 3)

	v3path := filepath.Join(dir, "v3"+ckpt.Ext)
	if err := os.WriteFile(v3path, v3, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(v3path)
	if err != nil {
		t.Fatalf("loading version-3 checkpoint: %v", err)
	}
	want := *s
	want.FP.Direction = "auto"
	want.FP.Retries = 0
	want.FP.Rep = "flat"
	want.FP.Lanes = ""
	want.Directions, want.Visited = nil, nil
	want.RetriesPerStep = nil
	want.Aux = nil
	if !reflect.DeepEqual(&want, got) {
		t.Fatalf("v3 round trip mismatch:\nwant %+v\ngot  %+v", &want, got)
	}
}

// TestLoadVersion4NoRetries: a version-4 checkpoint (written before the
// run supervisor existed) must load with Retries 0 and a nil
// RetriesPerStep, with direction state and broadcast records intact.
func TestLoadVersion4NoRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	s := randSnapshot(rng)
	dir := t.TempDir()
	path, err := ckpt.WriteFile(dir, s, ckpt.FileName(s.Step), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v4 := spliceVersion(t, s, data, 4)

	v4path := filepath.Join(dir, "v4"+ckpt.Ext)
	if err := os.WriteFile(v4path, v4, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(v4path)
	if err != nil {
		t.Fatalf("loading version-4 checkpoint: %v", err)
	}
	want := *s
	want.FP.Retries = 0
	want.FP.Rep = "flat"
	want.FP.Lanes = ""
	want.RetriesPerStep = nil
	want.Aux = nil
	if !reflect.DeepEqual(&want, got) {
		t.Fatalf("v4 round trip mismatch:\nwant %+v\ngot  %+v", &want, got)
	}
}

// TestLoadVersion5NoRep: a version-5 checkpoint (written before compressed
// adjacency existed) must load with Rep "flat" — the only representation
// version-5 runs could have used — with retry state intact.
func TestLoadVersion5NoRep(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := randSnapshot(rng)
	dir := t.TempDir()
	path, err := ckpt.WriteFile(dir, s, ckpt.FileName(s.Step), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v5 := spliceVersion(t, s, data, 5)
	v5path := filepath.Join(dir, "v5"+ckpt.Ext)
	if err := os.WriteFile(v5path, v5, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(v5path)
	if err != nil {
		t.Fatalf("loading version-5 checkpoint: %v", err)
	}
	want := *s
	want.FP.Rep = "flat"
	want.FP.Lanes = ""
	want.Aux = nil
	if !reflect.DeepEqual(&want, got) {
		t.Fatalf("v5 round trip mismatch:\nwant %+v\ngot  %+v", &want, got)
	}
}

// TestLoadVersion6NoLanes: a version-6 checkpoint (written before batched
// multi-source runs existed) must load with an empty lane assignment and a
// nil Aux array — pre-batch runs carried neither — with everything newer
// than v5 (the Rep string) intact.
func TestLoadVersion6NoLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := randSnapshot(rng)
	dir := t.TempDir()
	path, err := ckpt.WriteFile(dir, s, ckpt.FileName(s.Step), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v6 := spliceVersion(t, s, data, 6)
	v6path := filepath.Join(dir, "v6"+ckpt.Ext)
	if err := os.WriteFile(v6path, v6, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(v6path)
	if err != nil {
		t.Fatalf("loading version-6 checkpoint: %v", err)
	}
	want := *s
	want.FP.Lanes = ""
	want.Aux = nil
	if !reflect.DeepEqual(&want, got) {
		t.Fatalf("v6 round trip mismatch:\nwant %+v\ngot  %+v", &want, got)
	}
}
