package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"graphxmt/internal/trace"
)

// File format: an 8-byte magic, a little-endian uint32 format version, a
// little-endian uint32 CRC32 (Castagnoli) over the payload, then the
// payload. The payload is a flat little-endian encoding of Snapshot with
// length-prefixed slices and strings; every length is validated against
// the remaining bytes during decode, so a truncated or bit-flipped file
// yields a typed CorruptError, never a panic or a silently wrong state.
//
// Version history:
//
//	1 — initial format. Runs predate the chunk-schedule fingerprint field
//	    and were always taken under fixed vertex-count chunking, so decode
//	    fills Schedule with "fixed".
//	2 — Fingerprint gains Schedule (the sweep chunk schedule name), encoded
//	    after the Sparse flag.
//	3 — Snapshot gains the in-flight broadcast records (BcastSrc/BcastVal/
//	    BcastSeq), encoded after MsgVal. v1/v2 checkpoints predate broadcast
//	    records — their boundary traffic is fully expanded in MsgDest/MsgVal
//	    — so decode leaves the record slices empty and resume re-delivers
//	    the expanded queue, which is bit-identical.
//	4 — direction-optimizing supersteps: Fingerprint gains Direction (the
//	    run's direction mode, encoded after Schedule; older checkpoints
//	    decode as "auto", the only behavior that existed then) and Snapshot
//	    gains the per-superstep decision sequence Directions plus the
//	    heuristic's Visited bitmap (encoded after DeliveredPerStep; empty
//	    in older checkpoints and when the direction layer was inactive).
//	5 — run supervisor: Fingerprint gains Retries (Config.MaxRetries,
//	    encoded after Direction; older checkpoints decode as 0) and
//	    Snapshot gains RetriesPerStep, the per-superstep retry counts
//	    (encoded after Visited; empty in older checkpoints and when the
//	    retry supervisor was inactive).
//	6 — graph representations: Fingerprint gains Rep (the graph's adjacency
//	    representation, "flat" or "compressed", encoded after Retries).
//	    The GraphCRC of a compressed graph hashes the delta-varint bytes
//	    directly, so the same logical graph has a different CRC per
//	    representation; older checkpoints decode as "flat", the only
//	    representation that existed then.
//	7 — batched multi-source runs: Fingerprint gains Lanes (the batch's
//	    lane assignment as a comma-separated source list, encoded after
//	    Rep; "" for unbatched runs and older checkpoints) and Snapshot
//	    gains Aux, the program-owned auxiliary state (core.AuxProgram —
//	    e.g. MultiBFS's packed per-lane levels; encoded after
//	    RetriesPerStep, empty for programs without aux state and for
//	    older checkpoints).
const (
	magic      = "GXMTCKP1"
	version    = 7
	minVersion = 1

	// Ext is the checkpoint file extension.
	Ext = ".gxckpt"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a checkpoint file that failed structural validation
// (bad magic, checksum mismatch, truncation, or an impossible length).
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ckpt: corrupt checkpoint %s: %s", e.Path, e.Reason)
}

// VersionError reports a checkpoint written by an unknown format version.
type VersionError struct {
	Path    string
	Version uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("ckpt: checkpoint %s has unsupported format version %d (supported: %d-%d)", e.Path, e.Version, minVersion, version)
}

// MismatchError reports a fingerprint field that differs between a
// checkpoint and the run trying to resume from it.
type MismatchError struct {
	Field string
	Got   string // value stored in the checkpoint
	Want  string // value of the resuming run
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("ckpt: checkpoint %s mismatch: checkpoint has %q, run has %q", e.Field, e.Got, e.Want)
}

// WriteError reports a failed checkpoint write. The temp file is removed
// and any previous checkpoint is left intact.
type WriteError struct {
	Path string
	Err  error
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("ckpt: writing checkpoint %s: %v", e.Path, e.Err)
}

func (e *WriteError) Unwrap() error { return e.Err }

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i64(v int64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) int64s(s []int64) {
	e.i64(int64(len(s)))
	for _, v := range s {
		e.i64(v)
	}
}

func (e *encoder) bools(s []bool) {
	e.i64(int64(len(s)))
	for _, v := range s {
		e.boolean(v)
	}
}

type decoder struct {
	data []byte
	pos  int
	path string
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = &CorruptError{Path: d.path, Reason: fmt.Sprintf(format, args...)}
	}
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.data)-d.pos < n {
		d.fail("truncated at offset %d (need %d bytes, have %d)", d.pos, n, len(d.data)-d.pos)
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.data[d.pos]
	d.pos++
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v
}

func (d *decoder) i64() int64 {
	if !d.need(8) {
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

func (d *decoder) boolean() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid boolean at offset %d", d.pos-1)
		return false
	}
}

func (d *decoder) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

// length reads a slice length and validates it against the bytes that a
// slice of elemSize-byte elements would occupy.
func (d *decoder) length(elemSize int) int {
	n := d.i64()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > int64(len(d.data)-d.pos)/int64(elemSize) {
		d.fail("impossible slice length %d at offset %d", n, d.pos-8)
		return 0
	}
	return int(n)
}

func (d *decoder) int64s() []int64 {
	n := d.length(8)
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = d.i64()
	}
	return s
}

func (d *decoder) bools() []bool {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]bool, n)
	for i := range s {
		s[i] = d.boolean()
	}
	return s
}

// Encode serializes the snapshot payload (without magic/version/checksum —
// WriteFile adds the envelope).
func Encode(s *Snapshot) []byte {
	e := &encoder{buf: make([]byte, 0, 64+8*(len(s.States)+len(s.MsgDest)+len(s.MsgVal))+len(s.Halted))}
	e.u32(s.FP.GraphCRC)
	e.i64(s.FP.Vertices)
	e.i64(s.FP.Edges)
	e.str(s.FP.Program)
	e.str(s.FP.Label)
	e.boolean(s.FP.Combiner)
	e.boolean(s.FP.Sparse)
	e.str(s.FP.Schedule)
	e.str(s.FP.Direction)
	e.i64(s.FP.Retries)
	e.str(s.FP.Rep)
	e.str(s.FP.Lanes)
	e.i64(s.FP.MaxSupersteps)
	e.i64(s.FP.MaxMessages)
	e.u32(s.FP.CostsCRC)

	e.i64(s.Step)
	e.i64(s.Live)
	e.int64s(s.States)
	e.bools(s.Halted)
	e.int64s(s.MsgDest)
	e.int64s(s.MsgVal)
	e.int64s(s.BcastSrc)
	e.int64s(s.BcastVal)
	e.int64s(s.BcastSeq)
	e.int64s(s.ActivePerStep)
	e.int64s(s.MessagesPerStep)
	e.int64s(s.DeliveredPerStep)
	e.int64s(s.Directions)
	e.bools(s.Visited)
	e.int64s(s.RetriesPerStep)
	e.int64s(s.Aux)

	encAggs := func(aggs []Aggregate) {
		e.i64(int64(len(aggs)))
		for _, a := range aggs {
			e.str(a.Name)
			e.i64(a.Value)
			e.boolean(a.Seeded)
		}
	}
	encAggs(s.Aggregates)
	encAggs(s.PrevAggregates)

	e.i64(int64(len(s.Phases)))
	for _, p := range s.Phases {
		e.str(p.Name)
		e.i64(int64(p.Index))
		e.i64(p.Tasks)
		e.i64(p.Issue)
		e.i64(p.Loads)
		e.i64(p.Stores)
		e.i64(p.MaxTask)
		e.u8(uint8(trace.NumHotClasses))
		for _, h := range p.Hot {
			e.i64(h)
		}
		e.i64(p.Barriers)
	}
	return e.buf
}

// Decode parses a current-version snapshot payload. path is used only in
// error messages.
func Decode(payload []byte, path string) (*Snapshot, error) {
	return decodeVersion(payload, path, version)
}

// decodeVersion parses a snapshot payload written by the given format
// version (Load dispatches on the header).
func decodeVersion(payload []byte, path string, ver uint32) (*Snapshot, error) {
	d := &decoder{data: payload, path: path}
	s := &Snapshot{}
	s.FP.GraphCRC = d.u32()
	s.FP.Vertices = d.i64()
	s.FP.Edges = d.i64()
	s.FP.Program = d.str()
	s.FP.Label = d.str()
	s.FP.Combiner = d.boolean()
	s.FP.Sparse = d.boolean()
	if ver >= 2 {
		s.FP.Schedule = d.str()
	} else {
		// Version-1 checkpoints predate selectable chunk schedules and were
		// always taken under the fixed schedule.
		s.FP.Schedule = "fixed"
	}
	if ver >= 4 {
		s.FP.Direction = d.str()
	} else {
		// Pre-v4 checkpoints predate direction modes; every run behaved as
		// direction "auto".
		s.FP.Direction = "auto"
	}
	if ver >= 5 {
		s.FP.Retries = d.i64()
	}
	if ver >= 6 {
		s.FP.Rep = d.str()
	} else {
		// Pre-v6 checkpoints predate compressed adjacency; every run was
		// flat.
		s.FP.Rep = "flat"
	}
	if ver >= 7 {
		// Pre-v7 checkpoints predate batching; Lanes stays "".
		s.FP.Lanes = d.str()
	}
	s.FP.MaxSupersteps = d.i64()
	s.FP.MaxMessages = d.i64()
	s.FP.CostsCRC = d.u32()

	s.Step = d.i64()
	s.Live = d.i64()
	s.States = d.int64s()
	s.Halted = d.bools()
	s.MsgDest = d.int64s()
	s.MsgVal = d.int64s()
	if ver >= 3 {
		s.BcastSrc = d.int64s()
		s.BcastVal = d.int64s()
		s.BcastSeq = d.int64s()
	}
	s.ActivePerStep = d.int64s()
	s.MessagesPerStep = d.int64s()
	s.DeliveredPerStep = d.int64s()
	if ver >= 4 {
		s.Directions = d.int64s()
		s.Visited = d.bools()
	}
	if ver >= 5 {
		s.RetriesPerStep = d.int64s()
	}
	if ver >= 7 {
		// Program-defined length — no structural cross-check is possible
		// beyond the slice-length sanity d.length already applies; a
		// mismatched length is caught by the engine at restore time.
		s.Aux = d.int64s()
	}

	decAggs := func() []Aggregate {
		n := d.length(13) // name len + value + seeded lower-bounds an entry
		if d.err != nil || n == 0 {
			return nil
		}
		aggs := make([]Aggregate, n)
		for i := range aggs {
			aggs[i] = Aggregate{Name: d.str(), Value: d.i64(), Seeded: d.boolean()}
		}
		return aggs
	}
	s.Aggregates = decAggs()
	s.PrevAggregates = decAggs()

	nPh := d.length(4)
	if d.err == nil && nPh > 0 {
		s.Phases = make([]trace.PhaseState, nPh)
		for i := range s.Phases {
			p := &s.Phases[i]
			p.Name = d.str()
			p.Index = int(d.i64())
			p.Tasks = d.i64()
			p.Issue = d.i64()
			p.Loads = d.i64()
			p.Stores = d.i64()
			p.MaxTask = d.i64()
			if nh := d.u8(); d.err == nil && nh != uint8(trace.NumHotClasses) {
				d.fail("phase %d has %d hot classes, want %d", i, nh, trace.NumHotClasses)
			}
			for c := range p.Hot {
				p.Hot[c] = d.i64()
			}
			p.Barriers = d.i64()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("%d trailing bytes after payload", len(d.data)-d.pos)}
	}
	// Structural cross-checks: catch damage that survives within a field.
	if int64(len(s.States)) != s.FP.Vertices || int64(len(s.Halted)) != s.FP.Vertices {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("state arrays sized %d/%d, fingerprint says %d vertices", len(s.States), len(s.Halted), s.FP.Vertices)}
	}
	if len(s.MsgDest) != len(s.MsgVal) {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("message queue slices differ in length (%d dests, %d values)", len(s.MsgDest), len(s.MsgVal))}
	}
	for i, v := range s.MsgDest {
		if v < 0 || v >= s.FP.Vertices {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("message %d addressed to out-of-range vertex %d", i, v)}
		}
	}
	if len(s.BcastSrc) != len(s.BcastVal) || len(s.BcastSrc) != len(s.BcastSeq) {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("broadcast record slices differ in length (%d sources, %d values, %d seqs)", len(s.BcastSrc), len(s.BcastVal), len(s.BcastSeq))}
	}
	var prevSeq int64
	for i, v := range s.BcastSrc {
		if v < 0 || v >= s.FP.Vertices {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("broadcast record %d from out-of-range vertex %d", i, v)}
		}
		if q := s.BcastSeq[i]; q < prevSeq || q > int64(len(s.MsgDest)) {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("broadcast record %d has invalid seq %d (previous %d, %d unicasts)", i, q, prevSeq, len(s.MsgDest))}
		} else {
			prevSeq = q
		}
	}
	want := s.Step + 1
	if int64(len(s.ActivePerStep)) != want || int64(len(s.MessagesPerStep)) != want || int64(len(s.DeliveredPerStep)) != want {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("per-step counters sized %d/%d/%d, want %d (step %d)", len(s.ActivePerStep), len(s.MessagesPerStep), len(s.DeliveredPerStep), want, s.Step)}
	}
	// Retry counts are empty (supervisor inactive) or cover every
	// completed superstep with non-negative values.
	if len(s.RetriesPerStep) > 0 {
		if int64(len(s.RetriesPerStep)) != want {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("retry counters sized %d, want %d (step %d)", len(s.RetriesPerStep), want, s.Step)}
		}
		for i, v := range s.RetriesPerStep {
			if v < 0 {
				return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("retry counter %d is negative (%d)", i, v)}
			}
		}
	}
	// Direction-layer arrays are present together or not at all; when
	// present, the decision sequence covers every completed superstep with
	// push/pull values and the visited bitmap is per-vertex.
	if (len(s.Directions) == 0) != (len(s.Visited) == 0) {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("direction arrays mismatched (%d decisions, %d visited)", len(s.Directions), len(s.Visited))}
	}
	if len(s.Directions) > 0 {
		if int64(len(s.Directions)) != want {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("direction sequence sized %d, want %d (step %d)", len(s.Directions), want, s.Step)}
		}
		if int64(len(s.Visited)) != s.FP.Vertices {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("visited bitmap sized %d, fingerprint says %d vertices", len(s.Visited), s.FP.Vertices)}
		}
		for i, v := range s.Directions {
			if v != 1 && v != 2 {
				return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("direction %d has invalid value %d (want 1=push or 2=pull)", i, v)}
			}
		}
	}
	var live int64
	for _, h := range s.Halted {
		if !h {
			live++
		}
	}
	if live != s.Live {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("halted set has %d live vertices, header says %d", live, s.Live)}
	}
	return s, nil
}

// FileName returns the canonical file name for the checkpoint at the given
// superstep boundary.
func FileName(step int64) string {
	return fmt.Sprintf("ckpt-%09d%s", step, Ext)
}

// EmergencyFileName returns the file name used for the emergency
// checkpoint written when a vertex program panics during superstep step.
func EmergencyFileName(step int64) string {
	return fmt.Sprintf("emergency-%09d%s", step, Ext)
}

// WriteFile atomically writes the snapshot to dir/FileName(s.Step): encode
// into a temp file in dir, sync, rename. wrap (the fault-injection hook)
// may interpose a failing writer; any failure removes the temp file,
// leaves existing checkpoints untouched, and returns a WriteError.
func WriteFile(dir string, s *Snapshot, name string, hooks *Hooks) (string, error) {
	final := filepath.Join(dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", &WriteError{Path: final, Err: err}
	}
	if hooks != nil && hooks.TornWrite != nil && hooks.TornWrite(s.Step) {
		return tornWrite(final, s)
	}
	f, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return "", &WriteError{Path: final, Err: err}
	}
	tmp := f.Name()
	failed := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", &WriteError{Path: final, Err: err}
	}
	payload := Encode(s)
	var w io.Writer = f
	if hooks != nil && hooks.WrapWrite != nil {
		w = hooks.WrapWrite(s.Step, f)
	}
	var hdr [16]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return failed(err)
	}
	if _, err := w.Write(payload); err != nil {
		return failed(err)
	}
	if err := f.Sync(); err != nil {
		return failed(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", &WriteError{Path: final, Err: err}
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", &WriteError{Path: final, Err: err}
	}
	return final, nil
}

// tornWrite simulates a crash mid-write on a filesystem without atomic
// rename (Hooks.TornWrite): a valid header followed by half the payload
// lands directly at the final name, and the write reports success so the
// run carries on oblivious. A later Load of the file fails its CRC check.
func tornWrite(final string, s *Snapshot) (string, error) {
	payload := Encode(s)
	var hdr [16]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, castagnoli))
	torn := append(hdr[:], payload[:len(payload)/2]...)
	if err := os.WriteFile(final, torn, 0o644); err != nil {
		return "", &WriteError{Path: final, Err: err}
	}
	return final, nil
}

// Load reads, validates, and decodes the checkpoint at path.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 16 {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("file is %d bytes, shorter than the %d-byte header", len(data), 16)}
	}
	if string(data[:8]) != magic {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("bad magic %q", data[:8])}
	}
	v := binary.LittleEndian.Uint32(data[8:12])
	if v < minVersion || v > version {
		return nil, &VersionError{Path: path, Version: v}
	}
	want := binary.LittleEndian.Uint32(data[12:16])
	payload := data[16:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("checksum mismatch: header %08x, payload %08x", want, got)}
	}
	return decodeVersion(payload, path, v)
}

// LatestPath returns the highest-step periodic checkpoint in dir, or ""
// when dir contains none (emergency checkpoints are not considered — they
// capture the boundary before a crashed superstep and the caller should
// name them explicitly to resume from one).
func LatestPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestStep := "", int64(-1)
	for _, e := range entries {
		var step int64
		if n, err := fmt.Sscanf(e.Name(), "ckpt-%d"+Ext, &step); err != nil || n != 1 {
			continue
		}
		if step > bestStep {
			best, bestStep = filepath.Join(dir, e.Name()), step
		}
	}
	return best, nil
}

// Verify cheaply checks the structural integrity of the checkpoint at
// path: header shape, magic, known version, and payload CRC. It does not
// decode the payload or compare fingerprints — a nil return means the
// bytes on disk are the bytes that were written, which is the guarantee
// Prune and the fallback chain need.
func Verify(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < 16 {
		return &CorruptError{Path: path, Reason: fmt.Sprintf("file is %d bytes, shorter than the %d-byte header", len(data), 16)}
	}
	if string(data[:8]) != magic {
		return &CorruptError{Path: path, Reason: fmt.Sprintf("bad magic %q", data[:8])}
	}
	v := binary.LittleEndian.Uint32(data[8:12])
	if v < minVersion || v > version {
		return &VersionError{Path: path, Version: v}
	}
	want := binary.LittleEndian.Uint32(data[12:16])
	if got := crc32.Checksum(data[16:], castagnoli); got != want {
		return &CorruptError{Path: path, Reason: fmt.Sprintf("checksum mismatch: header %08x, payload %08x", want, got)}
	}
	return nil
}

// NoValidCheckpointError reports that ResumeLatestValid walked every
// periodic checkpoint in a directory without finding one that loads.
type NoValidCheckpointError struct {
	// Dir is the directory that was searched.
	Dir string
	// Skipped is the number of damaged checkpoints passed over.
	Skipped int
}

func (e *NoValidCheckpointError) Error() string {
	if e.Skipped == 0 {
		return fmt.Sprintf("ckpt: no periodic checkpoints in %s", e.Dir)
	}
	return fmt.Sprintf("ckpt: no valid periodic checkpoint in %s (%d damaged snapshots skipped)", e.Dir, e.Skipped)
}

// ResumeLatestValid walks dir's periodic checkpoints newest-first and
// returns the first one that loads and matches the fingerprint, along
// with its path. Structurally damaged snapshots — CorruptError (torn or
// bit-flipped files, truncation) and VersionError — are skipped, each
// reported through onSkip (may be nil), so a run whose newest checkpoint
// was lost mid-write falls back to the one before it. A fingerprint
// mismatch is a hard error: the snapshot is intact, it just belongs to a
// different run, and silently skipping it would resume wildly stale
// state. When no checkpoint survives the walk the error is a
// *NoValidCheckpointError.
func ResumeLatestValid(dir string, want Fingerprint, onSkip func(path string, err error)) (*Snapshot, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var steps []int64
	for _, e := range entries {
		var step int64
		if n, err := fmt.Sscanf(e.Name(), "ckpt-%d"+Ext, &step); err == nil && n == 1 {
			steps = append(steps, step)
		}
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] > steps[j] })
	skipped := 0
	for _, step := range steps {
		path := filepath.Join(dir, FileName(step))
		s, err := Load(path)
		if err != nil {
			var ce *CorruptError
			var ve *VersionError
			if errors.As(err, &ce) || errors.As(err, &ve) {
				skipped++
				if onSkip != nil {
					onSkip(path, err)
				}
				continue
			}
			return nil, "", err
		}
		if err := s.FP.Check(want); err != nil {
			return nil, "", err
		}
		return s, path, nil
	}
	return nil, "", &NoValidCheckpointError{Dir: dir, Skipped: skipped}
}

// Prune removes all but the newest keep periodic checkpoints from dir.
// keep <= 0 keeps everything. Emergency checkpoints are never removed,
// and neither is the newest *valid* periodic checkpoint: when the most
// recent write was torn or bit-flipped, the retention window must not
// age out the snapshot the fallback chain will actually resume from.
func Prune(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var steps []int64
	for _, e := range entries {
		var step int64
		if n, err := fmt.Sscanf(e.Name(), "ckpt-%d"+Ext, &step); err == nil && n == 1 {
			steps = append(steps, step)
		}
	}
	if len(steps) <= keep {
		return nil
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] > steps[j] })
	// Find the newest structurally valid snapshot. Only checkpoints inside
	// the doomed tail need verification once a valid one is known to sit
	// inside the retention window.
	newestValid := int64(-1)
	for _, step := range steps {
		if Verify(filepath.Join(dir, FileName(step))) == nil {
			newestValid = step
			break
		}
	}
	for _, step := range steps[keep:] {
		if step == newestValid {
			continue
		}
		if err := os.Remove(filepath.Join(dir, FileName(step))); err != nil {
			return err
		}
	}
	return nil
}
