package ckpt_test

// The resume fallback chain: ResumeLatestValid walks periodic checkpoints
// newest-first, skipping structurally damaged snapshots (torn writes, bit
// flips, truncation, unknown versions) and reporting each skip, and Prune
// never ages out the newest valid snapshot — the one the chain would
// actually resume from.

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"graphxmt/internal/ckpt"
	"graphxmt/internal/faultinject"
)

// writeChain writes one run's snapshots (same fingerprint, steps 0..n-1)
// into dir and returns the fingerprint.
func writeChain(t *testing.T, dir string, n int64) ckpt.Fingerprint {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	base := randSnapshot(rng)
	for step := int64(0); step < n; step++ {
		setStep(base, step)
		if _, err := ckpt.WriteFile(dir, base, ckpt.FileName(step), nil); err != nil {
			t.Fatal(err)
		}
	}
	return base.FP
}

func TestResumeLatestValidFallsBack(t *testing.T) {
	dir := t.TempDir()
	fp := writeChain(t, dir, 5)

	// Damage the newest two snapshots: a mid-file bit flip in ckpt-4 and a
	// torn tail on ckpt-3. The chain must land on ckpt-2.
	newest := filepath.Join(dir, ckpt.FileName(4))
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipBit(newest, fi.Size()/2, 5); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.TruncateTail(filepath.Join(dir, ckpt.FileName(3)), 40); err != nil {
		t.Fatal(err)
	}

	var skips []string
	s, path, err := ckpt.ResumeLatestValid(dir, fp, func(p string, cause error) {
		if cause == nil {
			t.Fatalf("skip of %s carried no cause", p)
		}
		skips = append(skips, filepath.Base(p))
	})
	if err != nil {
		t.Fatalf("ResumeLatestValid: %v", err)
	}
	if s.Step != 2 || path != filepath.Join(dir, ckpt.FileName(2)) {
		t.Fatalf("resumed step %d from %s, want step 2 from %s", s.Step, path, ckpt.FileName(2))
	}
	want := []string{ckpt.FileName(4), ckpt.FileName(3)}
	if len(skips) != 2 || skips[0] != want[0] || skips[1] != want[1] {
		t.Fatalf("skips = %v, want %v (newest first)", skips, want)
	}
}

func TestResumeLatestValidEmptyAndExhausted(t *testing.T) {
	// Empty directory: NoValidCheckpointError with zero skips — the signal
	// callers use to fall through to a fresh start.
	dir := t.TempDir()
	_, _, err := ckpt.ResumeLatestValid(dir, ckpt.Fingerprint{}, nil)
	var nv *ckpt.NoValidCheckpointError
	if !errors.As(err, &nv) || nv.Skipped != 0 {
		t.Fatalf("empty dir: got %v, want NoValidCheckpointError with 0 skipped", err)
	}

	// Every snapshot damaged: the error counts them all.
	fp := writeChain(t, dir, 3)
	for step := int64(0); step < 3; step++ {
		if err := faultinject.TruncateTail(filepath.Join(dir, ckpt.FileName(step)), 25); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = ckpt.ResumeLatestValid(dir, fp, nil)
	if !errors.As(err, &nv) || nv.Skipped != 3 {
		t.Fatalf("all damaged: got %v, want NoValidCheckpointError with 3 skipped", err)
	}
}

// TestResumeLatestValidRejectsMismatch: an intact snapshot from a different
// run is a hard MismatchError, never silently skipped — falling past it
// would resume wildly stale state.
func TestResumeLatestValidRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	fp := writeChain(t, dir, 2)
	other := fp
	other.Program = fp.Program + "-other"
	_, _, err := ckpt.ResumeLatestValid(dir, other, func(string, error) {
		t.Fatal("fingerprint mismatch must not be reported as a skip")
	})
	var me *ckpt.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("got %v, want MismatchError", err)
	}
}

// TestPrunePreservesNewestValid: when the retention window holds only
// damaged snapshots, Prune keeps the newest valid one alive even though it
// falls outside the window.
func TestPrunePreservesNewestValid(t *testing.T) {
	dir := t.TempDir()
	writeChain(t, dir, 5)
	for _, step := range []int64{3, 4} {
		if err := faultinject.TruncateTail(filepath.Join(dir, ckpt.FileName(step)), 30); err != nil {
			t.Fatal(err)
		}
	}
	if err := ckpt.Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range entries {
		got[e.Name()] = true
	}
	// Window = {4, 3} (both damaged), plus the preserved newest valid 2.
	for _, step := range []int64{2, 3, 4} {
		if !got[ckpt.FileName(step)] {
			t.Fatalf("Prune removed %s; dir = %v", ckpt.FileName(step), got)
		}
	}
	for _, step := range []int64{0, 1} {
		if got[ckpt.FileName(step)] {
			t.Fatalf("Prune kept %s outside the window; dir = %v", ckpt.FileName(step), got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("dir after prune = %v, want exactly ckpt-2..4", got)
	}
}
