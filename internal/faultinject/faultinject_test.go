package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graphxmt/internal/core"
	"graphxmt/internal/graph"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("panic@3:42; failwrite@2;kill@5 ; panic@init:7")
	if err != nil {
		t.Fatal(err)
	}
	if p.PanicAt[3] != 42 || p.PanicAt[InitStep] != 7 {
		t.Fatalf("PanicAt = %v", p.PanicAt)
	}
	if !p.FailWriteAt[2] || !p.KillAt[5] {
		t.Fatalf("FailWriteAt = %v, KillAt = %v", p.FailWriteAt, p.KillAt)
	}

	if p, err := ParsePlan(""); err != nil || p == nil {
		t.Fatalf("empty spec: %v, %v", p, err)
	}

	for _, bad := range []string{
		"panic@3",        // missing vertex
		"panic@x:1",      // bad superstep
		"panic@3:q",      // bad vertex
		"failwrite@",     // missing superstep
		"kill@-2",        // negative superstep
		"explode@3",      // unknown directive
		"failwrite@init", // init has no checkpoint boundary
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestHooksNilWhenUnused(t *testing.T) {
	p, err := ParsePlan("panic@1:2")
	if err != nil {
		t.Fatal(err)
	}
	if h := p.Hooks(); h != nil {
		t.Fatalf("panic-only plan produced hooks %+v", h)
	}
	if (&Plan{}).Hooks() != nil {
		t.Fatal("empty plan produced hooks")
	}
}

func TestFailingWriter(t *testing.T) {
	p, err := ParsePlan("failwrite@4")
	if err != nil {
		t.Fatal(err)
	}
	h := p.Hooks()
	if h == nil || h.WrapWrite == nil {
		t.Fatal("failwrite plan produced no write hook")
	}

	// Untargeted steps pass through untouched.
	var clean bytes.Buffer
	w := h.WrapWrite(3, &clean)
	if n, err := w.Write(make([]byte, 100)); n != 100 || err != nil {
		t.Fatalf("untargeted write: n=%d err=%v", n, err)
	}

	// The targeted step lets a partial header through, then fails every
	// subsequent write — the stream is cut mid-file, not cleanly at zero.
	var cut bytes.Buffer
	w = h.WrapWrite(4, &cut)
	n, err := w.Write(make([]byte, 100))
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("targeted write: err=%v", err)
	}
	if n == 0 || n >= 100 {
		t.Fatalf("targeted write reported n=%d; want a strict partial write", n)
	}
	if cut.Len() != n {
		t.Fatalf("wrote %d bytes to the underlying stream, reported %d", cut.Len(), n)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("second write after failure: %v", err)
	}
}

func TestKillHook(t *testing.T) {
	p, err := ParsePlan("kill@7")
	if err != nil {
		t.Fatal(err)
	}
	h := p.Hooks()
	if h == nil || h.Kill == nil {
		t.Fatal("kill plan produced no kill hook")
	}
	if h.Kill(6) || !h.Kill(7) {
		t.Fatal("kill hook fires at the wrong boundary")
	}
}

type probeProgram struct{ name string }

func (probeProgram) InitialState(*graph.Graph, int64) int64 { return 0 }
func (probeProgram) Compute(v *core.VertexContext)          { v.VoteToHalt() }
func (p probeProgram) ProgramName() string                  { return p.name }

func TestWrapProgram(t *testing.T) {
	inner := probeProgram{name: "probe"}
	if p := (&Plan{}).WrapProgram(inner); p != core.Program(inner) {
		t.Fatal("plan with no panics should return the program unchanged")
	}

	plan, err := ParsePlan("panic@2:9")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := plan.WrapProgram(inner)
	if wrapped == core.Program(inner) {
		t.Fatal("panic plan did not wrap the program")
	}
	// The wrapper must forward the inner program's identity so resume
	// fingerprints match the unwrapped program.
	if got := core.ProgramNameOf(wrapped); got != "probe" {
		t.Fatalf("wrapped program name %q, want %q", got, "probe")
	}
}

func TestFlipBitAndTruncateTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte{0x00, 0xff, 0x10, 0x20}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 1, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0x00, 0xfe, 0x10, 0x20}) {
		t.Fatalf("after FlipBit: % x", data)
	}
	if err := FlipBit(path, 99, 0); err == nil {
		t.Fatal("FlipBit past EOF accepted")
	}

	if err := TruncateTail(path, 3); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0x00}) {
		t.Fatalf("after TruncateTail: % x", data)
	}
	if err := TruncateTail(path, 5); err == nil {
		t.Fatal("TruncateTail beyond file size accepted")
	}
}
