package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"graphxmt/internal/core"
	"graphxmt/internal/graph"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("panic@3:42; failwrite@2;kill@5 ; panic@init:7")
	if err != nil {
		t.Fatal(err)
	}
	if p.PanicAt[3] != 42 || p.PanicAt[InitStep] != 7 {
		t.Fatalf("PanicAt = %v", p.PanicAt)
	}
	if !p.FailWriteAt[2] || !p.KillAt[5] {
		t.Fatalf("FailWriteAt = %v, KillAt = %v", p.FailWriteAt, p.KillAt)
	}

	if p, err := ParsePlan(""); err != nil || p == nil {
		t.Fatalf("empty spec: %v, %v", p, err)
	}

	for _, bad := range []string{
		"panic@3",        // missing vertex
		"panic@x:1",      // bad superstep
		"panic@3:q",      // bad vertex
		"failwrite@",     // missing superstep
		"kill@-2",        // negative superstep
		"explode@3",      // unknown directive
		"failwrite@init", // init has no checkpoint boundary
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestParsePlanRobustnessVerbs(t *testing.T) {
	p, err := ParsePlan("panicn@2:17:3; slowstep@1:250; enospc@4; tornwrite@6")
	if err != nil {
		t.Fatal(err)
	}
	pn := p.PanicNAt[2]
	if pn == nil || pn.Vertex != 17 {
		t.Fatalf("PanicNAt = %v", p.PanicNAt)
	}
	// The remaining counter fires exactly Count times, once per attempt.
	fired := 0
	for i := 0; i < 5; i++ {
		if pn.remaining.Add(-1) >= 0 {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("panicn@2:17:3 fired %d times, want 3", fired)
	}
	if ss := p.SlowStepAt[1]; ss == nil || ss.Millis != 250 {
		t.Fatalf("SlowStepAt = %v", p.SlowStepAt)
	}
	if !p.ENOSPCAt[4] || !p.TornWriteAt[6] {
		t.Fatalf("ENOSPCAt = %v, TornWriteAt = %v", p.ENOSPCAt, p.TornWriteAt)
	}

	for _, bad := range []string{
		"panicn@1:2",     // missing count
		"panicn@1:2:0",   // count must be >= 1
		"panicn@1:2:x",   // bad count
		"panicn@-1:2:1",  // negative superstep
		"panicn@1:-2:1",  // negative vertex
		"slowstep@1",     // missing millis
		"slowstep@1:0",   // stall must be >= 1ms
		"slowstep@x:5",   // bad superstep
		"enospc@",        // missing superstep
		"enospc@init",    // init has no checkpoint boundary
		"tornwrite@-1",   // negative superstep
		"tornwrite@2:3",  // superstep only
		"panicn@1:2:3:4", // too many fields
		"slowstep@1:2:3", // too many fields
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestENOSPCWriter(t *testing.T) {
	p, err := ParsePlan("enospc@2")
	if err != nil {
		t.Fatal(err)
	}
	h := p.Hooks()
	if h == nil || h.WrapWrite == nil {
		t.Fatal("enospc plan produced no write hook")
	}
	var cut bytes.Buffer
	w := h.WrapWrite(2, &cut)
	_, werr := w.Write(make([]byte, 100))
	if !errors.Is(werr, ErrInjectedENOSPC) {
		t.Fatalf("targeted write: err=%v, want ErrInjectedENOSPC", werr)
	}
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("injected error does not wrap syscall.ENOSPC: %v", werr)
	}
}

func TestTornWriteHook(t *testing.T) {
	p, err := ParsePlan("tornwrite@3")
	if err != nil {
		t.Fatal(err)
	}
	h := p.Hooks()
	if h == nil || h.TornWrite == nil {
		t.Fatal("tornwrite plan produced no torn-write hook")
	}
	if h.TornWrite(2) || !h.TornWrite(3) {
		t.Fatal("torn-write hook fires at the wrong boundary")
	}
}

func TestHooksNilWhenUnused(t *testing.T) {
	p, err := ParsePlan("panic@1:2")
	if err != nil {
		t.Fatal(err)
	}
	if h := p.Hooks(); h != nil {
		t.Fatalf("panic-only plan produced hooks %+v", h)
	}
	if (&Plan{}).Hooks() != nil {
		t.Fatal("empty plan produced hooks")
	}
}

func TestFailingWriter(t *testing.T) {
	p, err := ParsePlan("failwrite@4")
	if err != nil {
		t.Fatal(err)
	}
	h := p.Hooks()
	if h == nil || h.WrapWrite == nil {
		t.Fatal("failwrite plan produced no write hook")
	}

	// Untargeted steps pass through untouched.
	var clean bytes.Buffer
	w := h.WrapWrite(3, &clean)
	if n, err := w.Write(make([]byte, 100)); n != 100 || err != nil {
		t.Fatalf("untargeted write: n=%d err=%v", n, err)
	}

	// The targeted step lets a partial header through, then fails every
	// subsequent write — the stream is cut mid-file, not cleanly at zero.
	var cut bytes.Buffer
	w = h.WrapWrite(4, &cut)
	n, err := w.Write(make([]byte, 100))
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("targeted write: err=%v", err)
	}
	if n == 0 || n >= 100 {
		t.Fatalf("targeted write reported n=%d; want a strict partial write", n)
	}
	if cut.Len() != n {
		t.Fatalf("wrote %d bytes to the underlying stream, reported %d", cut.Len(), n)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("second write after failure: %v", err)
	}
}

func TestKillHook(t *testing.T) {
	p, err := ParsePlan("kill@7")
	if err != nil {
		t.Fatal(err)
	}
	h := p.Hooks()
	if h == nil || h.Kill == nil {
		t.Fatal("kill plan produced no kill hook")
	}
	if h.Kill(6) || !h.Kill(7) {
		t.Fatal("kill hook fires at the wrong boundary")
	}
}

type probeProgram struct{ name string }

func (probeProgram) InitialState(*graph.Graph, int64) int64 { return 0 }
func (probeProgram) Compute(v *core.VertexContext)          { v.VoteToHalt() }
func (p probeProgram) ProgramName() string                  { return p.name }

func TestWrapProgram(t *testing.T) {
	inner := probeProgram{name: "probe"}
	if p := (&Plan{}).WrapProgram(inner); p != core.Program(inner) {
		t.Fatal("plan with no panics should return the program unchanged")
	}

	plan, err := ParsePlan("panic@2:9")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := plan.WrapProgram(inner)
	if wrapped == core.Program(inner) {
		t.Fatal("panic plan did not wrap the program")
	}
	// The wrapper must forward the inner program's identity so resume
	// fingerprints match the unwrapped program.
	if got := core.ProgramNameOf(wrapped); got != "probe" {
		t.Fatalf("wrapped program name %q, want %q", got, "probe")
	}
}

func TestFlipBitAndTruncateTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte{0x00, 0xff, 0x10, 0x20}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 1, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0x00, 0xfe, 0x10, 0x20}) {
		t.Fatalf("after FlipBit: % x", data)
	}
	if err := FlipBit(path, 99, 0); err == nil {
		t.Fatal("FlipBit past EOF accepted")
	}

	if err := TruncateTail(path, 3); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0x00}) {
		t.Fatalf("after TruncateTail: % x", data)
	}
	if err := TruncateTail(path, 5); err == nil {
		t.Fatal("TruncateTail beyond file size accepted")
	}
}
