// Package faultinject is a deterministic fault-injection harness for the
// BSP engine's checkpoint/recovery machinery. A Plan is keyed by superstep
// (and, for program panics, vertex) and can:
//
//   - panic a vertex program at an exact (superstep, vertex), or in the
//     InitialState sweep;
//   - fail a checkpoint write mid-stream (exercising write atomicity);
//   - deliver a simulated kill at a superstep boundary (the engine
//     behaves exactly as for SIGTERM: checkpoint, then InterruptedError);
//   - corrupt checkpoints already on disk (bit flips, truncation).
//
// Everything is deterministic — no timers, no signals, no randomness — so
// the recovery tests can kill a run at every superstep boundary and assert
// bit-identical resumption. cmd/bspgraph exposes plans through the hidden
// -fault-plan flag for CI's signal-free smoke tests.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/graph"
)

// InitStep is the pseudo-superstep identifying the InitialState sweep in
// panic directives ("panic@init:V").
const InitStep = int64(-1)

// ErrInjectedWrite is the error injected write failures surface.
var ErrInjectedWrite = errors.New("faultinject: injected checkpoint write failure")

// Plan is a deterministic fault schedule. The zero value injects nothing.
type Plan struct {
	// PanicAt maps superstep → vertex whose program panics in that
	// superstep (InitStep for the InitialState sweep).
	PanicAt map[int64]int64
	// FailWriteAt holds the superstep boundaries whose checkpoint write
	// fails mid-stream.
	FailWriteAt map[int64]bool
	// KillAt holds the superstep boundaries at which a simulated kill is
	// delivered.
	KillAt map[int64]bool
}

// ParsePlan parses a fault-plan spec: semicolon-separated directives of
// the forms
//
//	panic@S:V     panic vertex V's program in superstep S (S may be "init")
//	failwrite@S   fail the checkpoint write at the boundary after superstep S
//	kill@S        simulated kill at the boundary after superstep S
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, dir := range strings.Split(spec, ";") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		kind, arg, ok := strings.Cut(dir, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: directive %q has no @", dir)
		}
		switch kind {
		case "panic":
			stepStr, vertStr, ok := strings.Cut(arg, ":")
			if !ok {
				return nil, fmt.Errorf("faultinject: panic directive %q needs step:vertex", dir)
			}
			step := InitStep
			if stepStr != "init" {
				var err error
				step, err = strconv.ParseInt(stepStr, 10, 64)
				if err != nil || step < 0 {
					return nil, fmt.Errorf("faultinject: bad superstep %q in %q", stepStr, dir)
				}
			}
			vertex, err := strconv.ParseInt(vertStr, 10, 64)
			if err != nil || vertex < 0 {
				return nil, fmt.Errorf("faultinject: bad vertex %q in %q", vertStr, dir)
			}
			if p.PanicAt == nil {
				p.PanicAt = map[int64]int64{}
			}
			p.PanicAt[step] = vertex
		case "failwrite", "kill":
			step, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || step < 0 {
				return nil, fmt.Errorf("faultinject: bad superstep %q in %q", arg, dir)
			}
			m := &p.FailWriteAt
			if kind == "kill" {
				m = &p.KillAt
			}
			if *m == nil {
				*m = map[int64]bool{}
			}
			(*m)[step] = true
		default:
			return nil, fmt.Errorf("faultinject: unknown directive kind %q in %q", kind, dir)
		}
	}
	return p, nil
}

// Hooks returns the ckpt hooks realizing the plan's write failures and
// kills, or nil when the plan has neither.
func (p *Plan) Hooks() *ckpt.Hooks {
	if p == nil || (len(p.FailWriteAt) == 0 && len(p.KillAt) == 0) {
		return nil
	}
	return &ckpt.Hooks{
		WrapWrite: func(step int64, w io.Writer) io.Writer {
			if !p.FailWriteAt[step] {
				return w
			}
			// Let part of the header through so the failure lands
			// mid-stream, after bytes have already hit the temp file.
			return &failingWriter{w: w, remaining: 12}
		},
		Kill: func(step int64) bool { return p.KillAt[step] },
	}
}

type failingWriter struct {
	w         io.Writer
	remaining int
}

func (f *failingWriter) Write(b []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, ErrInjectedWrite
	}
	if len(b) > f.remaining {
		n, err := f.w.Write(b[:f.remaining])
		f.remaining = 0
		if err != nil {
			return n, err
		}
		return n, ErrInjectedWrite
	}
	f.remaining -= len(b)
	return f.w.Write(b)
}

// WrapProgram wraps prog so it panics at the plan's (superstep, vertex)
// coordinates. The wrapper forwards the inner program's fingerprint name,
// so wrapped and unwrapped runs produce interchangeable checkpoints. A
// plan with no panics returns prog unchanged (zero engine overhead).
func (p *Plan) WrapProgram(prog core.Program) core.Program {
	if p == nil || len(p.PanicAt) == 0 {
		return prog
	}
	return &panicProgram{inner: prog, plan: p}
}

type panicProgram struct {
	inner core.Program
	plan  *Plan
}

func (pp *panicProgram) InitialState(g *graph.Graph, v int64) int64 {
	if target, ok := pp.plan.PanicAt[InitStep]; ok && target == v {
		panic(fmt.Sprintf("faultinject: planned panic in InitialState at vertex %d", v))
	}
	return pp.inner.InitialState(g, v)
}

func (pp *panicProgram) Compute(v *core.VertexContext) {
	if target, ok := pp.plan.PanicAt[int64(v.Superstep())]; ok && target == v.ID() {
		panic(fmt.Sprintf("faultinject: planned panic at superstep %d, vertex %d", v.Superstep(), v.ID()))
	}
	pp.inner.Compute(v)
}

// ProgramName forwards the inner program's fingerprint identity.
func (pp *panicProgram) ProgramName() string {
	return core.ProgramNameOf(pp.inner)
}

// PullCapable forwards the inner program's pull capability, so wrapping
// never changes direction decisions (or fingerprints) versus the
// unwrapped run.
func (pp *panicProgram) PullCapable() bool {
	if p, ok := pp.inner.(core.PullProgram); ok {
		return p.PullCapable()
	}
	return false
}

// FlipBit flips the given bit of the byte at offset in the file at path —
// the on-disk corruption primitive for checkpoint validation tests.
func FlipBit(path string, offset int64, bit uint) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 || offset >= int64(len(data)) {
		return fmt.Errorf("faultinject: offset %d out of range for %d-byte file %s", offset, len(data), path)
	}
	data[offset] ^= 1 << (bit % 8)
	return os.WriteFile(path, data, 0o644)
}

// TruncateTail removes the final n bytes of the file at path.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 || n > fi.Size() {
		return fmt.Errorf("faultinject: cannot truncate %d bytes from %d-byte file %s", n, fi.Size(), path)
	}
	return os.Truncate(path, fi.Size()-n)
}
