// Package faultinject is a deterministic fault-injection harness for the
// BSP engine's checkpoint/recovery machinery. A Plan is keyed by superstep
// (and, for program panics, vertex) and can:
//
//   - panic a vertex program at an exact (superstep, vertex), or in the
//     InitialState sweep — permanently, or a bounded number of times
//     (the transient fault the engine's deterministic retry absorbs);
//   - fail a checkpoint write mid-stream (exercising write atomicity),
//     with ENOSPC as a named variant;
//   - tear a checkpoint write: bypass temp+rename and leave a truncated
//     file under the final name (the fallback chain must skip it);
//   - stall a superstep (one bounded sleep) to trip the engine watchdog;
//   - deliver a simulated kill at a superstep boundary (the engine
//     behaves exactly as for SIGTERM: checkpoint, then InterruptedError);
//   - corrupt checkpoints already on disk (bit flips, truncation).
//
// Everything is deterministic — no timers, no signals, no randomness — so
// the recovery tests can kill a run at every superstep boundary and assert
// bit-identical resumption. cmd/bspgraph exposes plans through the hidden
// -fault-plan flag for CI's signal-free smoke tests.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/graph"
)

// InitStep is the pseudo-superstep identifying the InitialState sweep in
// panic directives ("panic@init:V").
const InitStep = int64(-1)

// ErrInjectedWrite is the error injected write failures surface.
var ErrInjectedWrite = errors.New("faultinject: injected checkpoint write failure")

// ErrInjectedENOSPC is the error injected out-of-space write failures
// surface; it wraps syscall.ENOSPC so errors.Is(err, syscall.ENOSPC) holds.
var ErrInjectedENOSPC = fmt.Errorf("faultinject: injected checkpoint write failure: %w", syscall.ENOSPC)

// PanicN is a transient fault: vertex Vertex's program panics on its first
// Count executions of one superstep, then succeeds — the shape the
// engine's bounded deterministic retry absorbs. Each retry attempt runs
// Compute exactly once for the vertex, so Count is the number of attempts
// consumed before success.
type PanicN struct {
	Vertex    int64
	remaining atomic.Int64
}

// NewPanicN builds a transient-panic spec that fires count times.
func NewPanicN(vertex, count int64) *PanicN {
	pn := &PanicN{Vertex: vertex}
	pn.remaining.Store(count)
	return pn
}

// SlowStep is a one-shot superstep stall: the first Compute call of the
// superstep sleeps Millis milliseconds (once per process, not per vertex),
// long enough to trip a Config.StepTimeout watchdog without distorting
// every subsequent attempt or superstep.
type SlowStep struct {
	Millis int64
	done   atomic.Bool
}

// Plan is a deterministic fault schedule. The zero value injects nothing.
type Plan struct {
	// PanicAt maps superstep → vertex whose program panics in that
	// superstep (InitStep for the InitialState sweep).
	PanicAt map[int64]int64
	// PanicNAt maps superstep → a transient panic spec for that superstep.
	PanicNAt map[int64]*PanicN
	// SlowStepAt maps superstep → a one-shot stall for that superstep.
	SlowStepAt map[int64]*SlowStep
	// FailWriteAt holds the superstep boundaries whose checkpoint write
	// fails mid-stream.
	FailWriteAt map[int64]bool
	// ENOSPCAt holds the superstep boundaries whose checkpoint write fails
	// mid-stream with ENOSPC.
	ENOSPCAt map[int64]bool
	// TornWriteAt holds the superstep boundaries whose checkpoint write is
	// torn: a truncated payload lands under the final name with no
	// temp+rename, reported as success (ckpt.Hooks.TornWrite).
	TornWriteAt map[int64]bool
	// KillAt holds the superstep boundaries at which a simulated kill is
	// delivered.
	KillAt map[int64]bool
}

// ParsePlan parses a fault-plan spec: semicolon-separated directives of
// the forms
//
//	panic@S:V     panic vertex V's program in superstep S (S may be "init")
//	panicn@S:V:K  panic vertex V's program K times in superstep S, then
//	              succeed (transient fault; retry fodder)
//	slowstep@S:MS stall superstep S once for MS milliseconds (watchdog
//	              fodder)
//	failwrite@S   fail the checkpoint write at the boundary after superstep S
//	enospc@S      same, but the failure is ENOSPC
//	tornwrite@S   tear the checkpoint write at the boundary after superstep
//	              S: truncated bytes under the final name, reported as
//	              success
//	kill@S        simulated kill at the boundary after superstep S
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, dir := range strings.Split(spec, ";") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		kind, arg, ok := strings.Cut(dir, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: directive %q has no @", dir)
		}
		switch kind {
		case "panic":
			stepStr, vertStr, ok := strings.Cut(arg, ":")
			if !ok {
				return nil, fmt.Errorf("faultinject: panic directive %q needs step:vertex", dir)
			}
			step := InitStep
			if stepStr != "init" {
				var err error
				step, err = strconv.ParseInt(stepStr, 10, 64)
				if err != nil || step < 0 {
					return nil, fmt.Errorf("faultinject: bad superstep %q in %q", stepStr, dir)
				}
			}
			vertex, err := strconv.ParseInt(vertStr, 10, 64)
			if err != nil || vertex < 0 {
				return nil, fmt.Errorf("faultinject: bad vertex %q in %q", vertStr, dir)
			}
			if p.PanicAt == nil {
				p.PanicAt = map[int64]int64{}
			}
			p.PanicAt[step] = vertex
		case "panicn":
			parts := strings.Split(arg, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("faultinject: panicn directive %q needs step:vertex:count", dir)
			}
			step, err := strconv.ParseInt(parts[0], 10, 64)
			if err != nil || step < 0 {
				return nil, fmt.Errorf("faultinject: bad superstep %q in %q", parts[0], dir)
			}
			vertex, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil || vertex < 0 {
				return nil, fmt.Errorf("faultinject: bad vertex %q in %q", parts[1], dir)
			}
			count, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || count < 1 {
				return nil, fmt.Errorf("faultinject: bad panic count %q in %q", parts[2], dir)
			}
			if p.PanicNAt == nil {
				p.PanicNAt = map[int64]*PanicN{}
			}
			p.PanicNAt[step] = NewPanicN(vertex, count)
		case "slowstep":
			stepStr, msStr, ok := strings.Cut(arg, ":")
			if !ok {
				return nil, fmt.Errorf("faultinject: slowstep directive %q needs step:millis", dir)
			}
			step, err := strconv.ParseInt(stepStr, 10, 64)
			if err != nil || step < 0 {
				return nil, fmt.Errorf("faultinject: bad superstep %q in %q", stepStr, dir)
			}
			ms, err := strconv.ParseInt(msStr, 10, 64)
			if err != nil || ms < 1 {
				return nil, fmt.Errorf("faultinject: bad stall duration %q in %q", msStr, dir)
			}
			if p.SlowStepAt == nil {
				p.SlowStepAt = map[int64]*SlowStep{}
			}
			p.SlowStepAt[step] = &SlowStep{Millis: ms}
		case "failwrite", "enospc", "tornwrite", "kill":
			step, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || step < 0 {
				return nil, fmt.Errorf("faultinject: bad superstep %q in %q", arg, dir)
			}
			m := &p.FailWriteAt
			switch kind {
			case "enospc":
				m = &p.ENOSPCAt
			case "tornwrite":
				m = &p.TornWriteAt
			case "kill":
				m = &p.KillAt
			}
			if *m == nil {
				*m = map[int64]bool{}
			}
			(*m)[step] = true
		default:
			return nil, fmt.Errorf("faultinject: unknown directive kind %q in %q", kind, dir)
		}
	}
	return p, nil
}

// Hooks returns the ckpt hooks realizing the plan's write failures, torn
// writes, and kills, or nil when the plan has none.
func (p *Plan) Hooks() *ckpt.Hooks {
	if p == nil || (len(p.FailWriteAt) == 0 && len(p.ENOSPCAt) == 0 &&
		len(p.TornWriteAt) == 0 && len(p.KillAt) == 0) {
		return nil
	}
	return &ckpt.Hooks{
		WrapWrite: func(step int64, w io.Writer) io.Writer {
			// Let part of the header through so the failure lands
			// mid-stream, after bytes have already hit the temp file.
			if p.FailWriteAt[step] {
				return &failingWriter{w: w, remaining: 12, err: ErrInjectedWrite}
			}
			if p.ENOSPCAt[step] {
				return &failingWriter{w: w, remaining: 12, err: ErrInjectedENOSPC}
			}
			return w
		},
		TornWrite: func(step int64) bool { return p.TornWriteAt[step] },
		Kill:      func(step int64) bool { return p.KillAt[step] },
	}
}

type failingWriter struct {
	w         io.Writer
	remaining int
	err       error
}

func (f *failingWriter) Write(b []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, f.err
	}
	if len(b) > f.remaining {
		n, err := f.w.Write(b[:f.remaining])
		f.remaining = 0
		if err != nil {
			return n, err
		}
		return n, f.err
	}
	f.remaining -= len(b)
	return f.w.Write(b)
}

// WrapProgram wraps prog so it realizes the plan's program-level faults:
// panics (permanent and transient) at the plan's (superstep, vertex)
// coordinates and one-shot superstep stalls. The wrapper forwards the
// inner program's fingerprint name, so wrapped and unwrapped runs produce
// interchangeable checkpoints. A plan with no program-level faults
// returns prog unchanged (zero engine overhead).
func (p *Plan) WrapProgram(prog core.Program) core.Program {
	if p == nil || (len(p.PanicAt) == 0 && len(p.PanicNAt) == 0 && len(p.SlowStepAt) == 0) {
		return prog
	}
	return &panicProgram{inner: prog, plan: p}
}

type panicProgram struct {
	inner core.Program
	plan  *Plan
}

func (pp *panicProgram) InitialState(g *graph.Graph, v int64) int64 {
	if target, ok := pp.plan.PanicAt[InitStep]; ok && target == v {
		panic(fmt.Sprintf("faultinject: planned panic in InitialState at vertex %d", v))
	}
	return pp.inner.InitialState(g, v)
}

func (pp *panicProgram) Compute(v *core.VertexContext) {
	step := int64(v.Superstep())
	if ss, ok := pp.plan.SlowStepAt[step]; ok && ss.done.CompareAndSwap(false, true) {
		time.Sleep(time.Duration(ss.Millis) * time.Millisecond)
	}
	if target, ok := pp.plan.PanicAt[step]; ok && target == v.ID() {
		panic(fmt.Sprintf("faultinject: planned panic at superstep %d, vertex %d", step, v.ID()))
	}
	if pn, ok := pp.plan.PanicNAt[step]; ok && pn.Vertex == v.ID() && pn.remaining.Add(-1) >= 0 {
		panic(fmt.Sprintf("faultinject: transient panic at superstep %d, vertex %d", step, v.ID()))
	}
	pp.inner.Compute(v)
}

// ProgramName forwards the inner program's fingerprint identity.
func (pp *panicProgram) ProgramName() string {
	return core.ProgramNameOf(pp.inner)
}

// PullCapable forwards the inner program's pull capability, so wrapping
// never changes direction decisions (or fingerprints) versus the
// unwrapped run.
func (pp *panicProgram) PullCapable() bool {
	if p, ok := pp.inner.(core.PullProgram); ok {
		return p.PullCapable()
	}
	return false
}

// Lanes forwards the inner program's lane assignment (core.LaneProgram);
// nil when the inner program is unbatched, which the engine treats as
// absent — so wrapping never changes fingerprints or lane reporting.
func (pp *panicProgram) Lanes() []int64 {
	if p, ok := pp.inner.(core.LaneProgram); ok {
		return p.Lanes()
	}
	return nil
}

// AuxState forwards the inner program's auxiliary state (core.AuxProgram)
// so checkpoints taken through the wrapper snapshot and restore it.
func (pp *panicProgram) AuxState() []int64 {
	if p, ok := pp.inner.(core.AuxProgram); ok {
		return p.AuxState()
	}
	return nil
}

// FlipBit flips the given bit of the byte at offset in the file at path —
// the on-disk corruption primitive for checkpoint validation tests.
func FlipBit(path string, offset int64, bit uint) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 || offset >= int64(len(data)) {
		return fmt.Errorf("faultinject: offset %d out of range for %d-byte file %s", offset, len(data), path)
	}
	data[offset] ^= 1 << (bit % 8)
	return os.WriteFile(path, data, 0o644)
}

// TruncateTail removes the final n bytes of the file at path.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 || n > fi.Size() {
		return fmt.Errorf("faultinject: cannot truncate %d bytes from %d-byte file %s", n, fi.Size(), path)
	}
	return os.Truncate(path, fi.Size()-n)
}
