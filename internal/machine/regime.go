package machine

import (
	"math"

	"graphxmt/internal/trace"
)

// Regime names the bound that dominates a phase's execution time.
type Regime string

// The four regimes of the analytic model. Overhead marks phases whose
// barrier/dispatch floor exceeds their work.
const (
	IssueBound    Regime = "issue-bound"   // throughput-limited: scales with P
	LatencyBound  Regime = "latency-bound" // too little parallelism to hide memory latency
	CriticalPath  Regime = "critical-path" // one giant task serializes the phase
	HotspotBound  Regime = "hotspot-bound" // fetch-and-adds serialize on one word
	OverheadBound Regime = "overhead"      // barrier + dispatch floor dominates
)

// Diagnose reports which bound dominates the phase at the given processor
// count under the analytic model, along with that bound's share of the
// phase's total cycles. This is the analysis tool behind statements like
// "the tail iterations are latency-bound": the paper's scalability
// arguments are claims about which regime each phase sits in.
func (a *Analytic) Diagnose(p *trace.Phase, procs int) (Regime, float64) {
	if procs <= 0 {
		procs = a.cfg.Procs
	}
	c := a.cfg
	P := float64(procs)
	S := float64(c.StreamsPerProc)
	L := float64(c.MemLatency)

	issue := float64(p.Issue)
	mem := float64(p.Loads + p.Stores)
	hot := float64(p.HotTotal())
	tasks := math.Max(float64(p.Tasks), 1)

	issueBound := (issue + mem + hot) / P
	latencyBound := mem * L / math.Min(tasks, P*S)
	memFrac := 0.0
	if issue+mem > 0 {
		memFrac = mem / (issue + mem)
	}
	critical := float64(p.MaxTask) * (memFrac*L + (1 - memFrac))
	hotspotBound := float64(p.MaxHot()) * float64(c.HotspotCycles)
	overhead := float64(p.Barriers)*c.barrierCycles(procs) + float64(c.DispatchCycles)

	best, bestVal := OverheadBound, overhead
	for _, cand := range []struct {
		r Regime
		v float64
	}{
		{IssueBound, issueBound},
		{LatencyBound, latencyBound},
		{CriticalPath, critical},
		{HotspotBound, hotspotBound},
	} {
		if cand.v > bestVal {
			best, bestVal = cand.r, cand.v
		}
	}
	total := a.PhaseCycles(p, procs)
	if total <= 0 {
		return best, 0
	}
	return best, bestVal / total
}
