package machine

import (
	"math"

	"graphxmt/internal/trace"
)

// Analytic is the closed-form machine model. For one phase it computes the
// four classical bounds and takes their maximum (the bound that binds is
// the phase's regime), then adds barrier and dispatch overhead:
//
//	issueBound   = (issue + mem + hot) / P
//	latencyBound = mem * L / min(tasks, P*S)
//	critical     = largest task, serialized through memory latency
//	hotspotBound = worst single-word fetch-and-add chain * HotspotCycles
//
// The smooth-max below avoids non-physical kinks where two bounds cross;
// the transitions the paper's figures show (linear scaling rolling off into
// flat) come out of latencyBound saturating as P grows past tasks/S.
type Analytic struct {
	cfg Config
}

// NewAnalytic returns an analytic model with the given configuration. It
// panics on invalid configurations (programmer error, not input error).
func NewAnalytic(cfg Config) *Analytic {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Analytic{cfg: cfg}
}

// Config returns the hardware parameters.
func (a *Analytic) Config() Config { return a.cfg }

// PhaseCycles implements Model.
func (a *Analytic) PhaseCycles(p *trace.Phase, procs int) float64 {
	if procs <= 0 {
		procs = a.cfg.Procs
	}
	c := a.cfg
	P := float64(procs)
	S := float64(c.StreamsPerProc)
	L := float64(c.MemLatency)

	issue := float64(p.Issue)
	mem := float64(p.Loads + p.Stores)
	hot := float64(p.HotTotal())
	tasks := float64(p.Tasks)
	if tasks < 1 {
		tasks = 1
	}

	// Every operation, memory or not, consumes an issue slot.
	issueBound := (issue + mem + hot) / P

	// Memory latency is hidden only by concurrent streams. The number of
	// streams that can be kept busy is bounded by available tasks and by
	// the hardware.
	concurrency := math.Min(tasks, P*S)
	latencyBound := mem * L / concurrency

	// The largest single task runs its ops serially on one stream. Memory
	// ops dominate its length; assume the phase's global memory fraction
	// applies to the critical task and that a stream overlaps nothing
	// within one task.
	memFrac := 0.0
	if issue+mem > 0 {
		memFrac = mem / (issue + mem)
	}
	critical := float64(p.MaxTask) * (memFrac*L + (1 - memFrac))

	// Fetch-and-adds to one word retire serially at that word.
	hotspotBound := float64(p.MaxHot()) * float64(c.HotspotCycles)

	work := smoothMax(smoothMax(issueBound, latencyBound), smoothMax(critical, hotspotBound))

	overhead := float64(p.Barriers)*c.barrierCycles(procs) + float64(c.DispatchCycles)
	return work + overhead
}

// smoothMax is a softened maximum: max(a,b) <= smoothMax(a,b) <= a+b, exact
// when one side dominates. Using (a^k+b^k)^(1/k) with k=4 keeps curves
// smooth across regime changes without distorting the asymptotes.
func smoothMax(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	// Factor out the larger term for numerical stability.
	if b > a {
		a, b = b, a
	}
	r := b / a
	const k = 4.0
	return a * math.Pow(1+math.Pow(r, k), 1/k)
}
