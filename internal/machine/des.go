package machine

import (
	"container/heap"

	"graphxmt/internal/trace"
)

// DES is the discrete-event Threadstorm simulator. It simulates every
// processor's 128 hardware streams executing the phase's tasks: a processor
// issues one ready operation per cycle, a memory operation parks its stream
// for MemLatency cycles, hotspot fetch-and-adds additionally serialize
// through a per-word token, and streams pull tasks from a shared queue as
// they finish — the XMT runtime's dynamic loop scheduling.
//
// DES exists to validate the analytic model (they must agree within a
// tolerance across regimes; see TestModelsAgree) and to let small
// experiments run with full fidelity. Phases whose total op count exceeds
// MaxOps fall back to the analytic model so the Model interface stays total
// on big inputs.
type DES struct {
	cfg Config
	// MaxOps bounds the number of simulated operations per phase; beyond
	// it the analytic model is used. Zero selects a default of 8M ops.
	MaxOps   int64
	fallback *Analytic
}

// NewDES returns a discrete-event model with the given configuration.
func NewDES(cfg Config) *DES {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DES{cfg: cfg, fallback: NewAnalytic(cfg)}
}

// Config returns the hardware parameters.
func (d *DES) Config() Config { return d.cfg }

func (d *DES) maxOps() int64 {
	if d.MaxOps > 0 {
		return d.MaxOps
	}
	return 8 << 20
}

// desTask is one task's remaining work inside the simulator.
type desTask struct {
	issue int64
	mem   int64
	hot   [trace.NumHotClasses]int64
}

func (t *desTask) done() bool {
	if t.issue > 0 || t.mem > 0 {
		return false
	}
	for _, h := range t.hot {
		if h > 0 {
			return false
		}
	}
	return true
}

// nextOp pops the next operation, interleaving memory ops evenly among
// issue ops so a task is neither all-latency-up-front nor all-at-the-end.
// Returned kind: 0 issue, 1 mem, 2.. hotspot class + 2.
func (t *desTask) nextOp() int {
	for c := range t.hot {
		if t.hot[c] > 0 {
			// Hotspot ops are interleaved first at a fixed cadence.
			if t.hot[c]*8 >= t.issue+t.mem || (t.issue == 0 && t.mem == 0) {
				t.hot[c]--
				return 2 + c
			}
			break
		}
	}
	if t.mem > 0 && (t.mem >= t.issue || t.issue == 0) {
		t.mem--
		return 1
	}
	t.issue--
	return 0
}

// streamEvent is a stream becoming ready at a given time.
type streamEvent struct {
	ready int64
	proc  int
	task  *desTask
}

type eventHeap []streamEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].ready < h[j].ready }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(streamEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// PhaseCycles implements Model.
func (d *DES) PhaseCycles(p *trace.Phase, procs int) float64 {
	if procs <= 0 {
		procs = d.cfg.Procs
	}
	if p.TotalOps() > d.maxOps() {
		return d.fallback.PhaseCycles(p, procs)
	}
	tasks := d.materialize(p)
	overhead := float64(p.Barriers)*d.cfg.barrierCycles(procs) + float64(d.cfg.DispatchCycles)
	if len(tasks) == 0 {
		return overhead
	}

	L := int64(d.cfg.MemLatency)
	S := d.cfg.StreamsPerProc

	// Shared dynamic task queue.
	next := 0
	pull := func() *desTask {
		for next < len(tasks) {
			t := &tasks[next]
			next++
			if !t.done() {
				return t
			}
		}
		return nil
	}

	// Seed streams: round-robin tasks across processors' streams.
	var events eventHeap
	for proc := 0; proc < procs; proc++ {
		for s := 0; s < S; s++ {
			t := pull()
			if t == nil {
				break
			}
			events = append(events, streamEvent{ready: 0, proc: proc, task: t})
		}
	}
	heap.Init(&events)

	procNextIssue := make([]int64, procs)
	var hotNext [trace.NumHotClasses]int64
	var finish int64

	for events.Len() > 0 {
		ev := heap.Pop(&events).(streamEvent)
		if ev.task.done() {
			if t := pull(); t != nil {
				ev.task = t
			} else {
				if ev.ready > finish {
					finish = ev.ready
				}
				continue
			}
		}
		// The stream issues its next op at the first free issue slot of its
		// processor at or after its ready time.
		issueAt := ev.ready
		if procNextIssue[ev.proc] > issueAt {
			issueAt = procNextIssue[ev.proc]
		}
		procNextIssue[ev.proc] = issueAt + 1

		kind := ev.task.nextOp()
		var ready int64
		switch {
		case kind == 0: // pure issue op
			ready = issueAt + 1
		case kind == 1: // memory op
			ready = issueAt + 1 + L
		default: // hotspot fetch-and-add: serialize at the word, then latency
			c := kind - 2
			start := issueAt + 1
			if hotNext[c] > start {
				start = hotNext[c]
			}
			hotNext[c] = start + int64(d.cfg.HotspotCycles)
			ready = start + L
		}
		if ready > finish {
			finish = ready
		}
		heap.Push(&events, streamEvent{ready: ready, proc: ev.proc, task: ev.task})
	}
	return float64(finish) + overhead
}

// materialize converts a phase profile into concrete tasks. Recorded detail
// is used verbatim; otherwise tasks are synthesized with the phase's
// average costs, with one task carrying the recorded critical path and
// hotspot ops spread across tasks.
func (d *DES) materialize(p *trace.Phase) []desTask {
	if len(p.Detail) > 0 {
		tasks := make([]desTask, len(p.Detail))
		for i, tc := range p.Detail {
			tasks[i] = desTask{issue: int64(tc.Issue), mem: int64(tc.Mem)}
		}
		d.spreadHot(p, tasks)
		return tasks
	}
	n := p.Tasks
	if n <= 0 {
		if p.TotalOps() == 0 {
			return nil
		}
		n = 1
	}
	tasks := make([]desTask, n)
	issueEach := p.Issue / n
	memEach := (p.Loads + p.Stores) / n
	issueRem := p.Issue % n
	memRem := (p.Loads + p.Stores) % n
	for i := range tasks {
		tasks[i] = desTask{issue: issueEach, mem: memEach}
		if int64(i) < issueRem {
			tasks[i].issue++
		}
		if int64(i) < memRem {
			tasks[i].mem++
		}
	}
	// Grow task 0 to the recorded critical path, preserving mem fraction.
	if p.MaxTask > tasks[0].issue+tasks[0].mem {
		extra := p.MaxTask - tasks[0].issue - tasks[0].mem
		total := p.Issue + p.Loads + p.Stores
		if total > 0 {
			memShare := extra * (p.Loads + p.Stores) / total
			tasks[0].mem += memShare
			tasks[0].issue += extra - memShare
		} else {
			tasks[0].issue += extra
		}
	}
	d.spreadHot(p, tasks)
	return tasks
}

func (d *DES) spreadHot(p *trace.Phase, tasks []desTask) {
	if len(tasks) == 0 {
		return
	}
	for c := 0; c < int(trace.NumHotClasses); c++ {
		h := p.Hot[c]
		if h == 0 {
			continue
		}
		each := h / int64(len(tasks))
		rem := h % int64(len(tasks))
		for i := range tasks {
			tasks[i].hot[c] += each
			if int64(i) < rem {
				tasks[i].hot[c]++
			}
		}
	}
}
