package machine_test

import (
	"fmt"

	"graphxmt/internal/machine"
	"graphxmt/internal/trace"
)

// Example shows the machine model's central behaviour: the same work
// profile evaluated at different processor counts. A phase with abundant
// parallelism (1M tasks) keeps every added processor's streams busy and
// scales; a phase with only 256 tasks cannot feed even one processor's
// 128 hardware streams, so added processors change nothing — the two
// behaviours behind every scaling curve in the paper.
func Example() {
	model := machine.NewAnalytic(machine.DefaultConfig())

	abundant := &trace.Phase{Name: "abundant", Barriers: 1}
	abundant.AddTasks(1<<20, 1<<24, 1<<24, 0)
	abundant.ObserveTask(32)

	starved := &trace.Phase{Name: "starved", Barriers: 1}
	starved.AddTasks(256, 1<<14, 1<<22, 0) // 256 tasks cannot feed 16K streams
	starved.ObserveTask(1 << 14)

	for _, p := range []*trace.Phase{abundant, starved} {
		t8 := model.Config().Seconds(model.PhaseCycles(p, 8))
		t128 := model.Config().Seconds(model.PhaseCycles(p, 128))
		regime, _ := model.Diagnose(p, 128)
		fmt.Printf("%s: speedup 8->128 = %.1fx (%s)\n", p.Name, t8/t128, regime)
	}
	// Output:
	// abundant: speedup 8->128 = 15.8x (latency-bound)
	// starved: speedup 8->128 = 1.0x (latency-bound)
}
