package machine

import (
	"math"
	"testing"
	"testing/quick"

	"graphxmt/internal/trace"
)

func phaseWith(tasks, issue, loads, stores, maxTask int64) *trace.Phase {
	p := &trace.Phase{Name: "test", Barriers: 1}
	p.AddTasks(tasks, issue, loads, stores)
	p.ObserveTask(maxTask)
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.StreamsPerProc = 0 },
		func(c *Config) { c.MemLatency = -1 },
		func(c *Config) { c.HotspotCycles = 0 },
		func(c *Config) { c.Procs = 0 },
		func(c *Config) { c.BarrierBase = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestNewAnalyticPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAnalytic(Config{})
}

// Issue-bound regime: abundant tasks of pure compute scale linearly in P.
func TestAnalyticIssueBoundLinearScaling(t *testing.T) {
	m := NewAnalytic(DefaultConfig())
	p := phaseWith(1<<22, 1<<30, 0, 0, 300)
	t64 := m.PhaseCycles(p, 64)
	t128 := m.PhaseCycles(p, 128)
	speedup := t64 / t128
	if speedup < 1.8 || speedup > 2.1 {
		t.Fatalf("issue-bound speedup 64->128 = %v, want ~2", speedup)
	}
}

// Latency-bound regime: with only 64 tasks, adding processors past the
// point where streams outnumber tasks must not help.
func TestAnalyticLatencyBoundFlatScaling(t *testing.T) {
	m := NewAnalytic(DefaultConfig())
	p := phaseWith(64, 0, 1<<24, 0, 1<<24/64)
	t8 := m.PhaseCycles(p, 8)
	t128 := m.PhaseCycles(p, 128)
	if t8/t128 > 1.2 {
		t.Fatalf("latency-bound phase sped up %vx from 8 to 128 procs", t8/t128)
	}
}

// Hotspot regime: a single-word fetch-and-add chain is P-independent and
// costs ~HotspotCycles per op.
func TestAnalyticHotspotBound(t *testing.T) {
	cfg := DefaultConfig()
	m := NewAnalytic(cfg)
	p := phaseWith(1<<20, 0, 0, 0, 4)
	p.AddHot(trace.HotMsgCounter, 1<<24)
	t16 := m.PhaseCycles(p, 16)
	t128 := m.PhaseCycles(p, 128)
	if t16/t128 > 1.15 {
		t.Fatalf("hotspot phase sped up %vx", t16/t128)
	}
	want := float64(int64(1<<24) * int64(cfg.HotspotCycles))
	if t128 < want || t128 > 1.3*want {
		t.Fatalf("hotspot time %v, want ~%v", t128, want)
	}
}

// Critical path: one giant task bounds the phase regardless of P.
func TestAnalyticCriticalPath(t *testing.T) {
	m := NewAnalytic(DefaultConfig())
	p := phaseWith(1<<16, 0, 1<<20, 0, 1<<19) // one task holds half the memory ops
	t128 := m.PhaseCycles(p, 128)
	// The critical task alone needs maxTask * L cycles.
	atLeast := float64(1<<19) * float64(DefaultConfig().MemLatency) * 0.9
	if t128 < atLeast {
		t.Fatalf("critical-path phase %v cycles, want >= %v", t128, atLeast)
	}
}

func TestAnalyticEmptyPhaseIsOverheadOnly(t *testing.T) {
	cfg := DefaultConfig()
	m := NewAnalytic(cfg)
	p := &trace.Phase{Barriers: 1}
	got := m.PhaseCycles(p, 128)
	want := cfg.barrierCycles(128) + float64(cfg.DispatchCycles)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("empty phase = %v, want %v", got, want)
	}
}

func TestAnalyticMonotonicInProcs(t *testing.T) {
	m := NewAnalytic(DefaultConfig())
	f := func(tasks uint16, issue, mem uint32) bool {
		p := phaseWith(int64(tasks)+1, int64(issue), int64(mem), 0, int64(issue+mem)/(int64(tasks)+1)+1)
		prev := math.Inf(1)
		for _, procs := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			cur := m.PhaseCycles(p, procs)
			if cur > prev*1.001 { // allow fp slack
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticMonotonicInWork(t *testing.T) {
	m := NewAnalytic(DefaultConfig())
	f := func(issue, mem uint32) bool {
		small := phaseWith(1024, int64(issue), int64(mem), 0, 8)
		big := phaseWith(1024, int64(issue)*2+1, int64(mem)*2+1, 0, 8)
		return m.PhaseCycles(big, 64) >= m.PhaseCycles(small, 64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothMax(t *testing.T) {
	cases := []struct{ a, b float64 }{{0, 5}, {5, 0}, {3, 4}, {1000, 1}, {7, 7}}
	for _, c := range cases {
		got := smoothMax(c.a, c.b)
		lo := math.Max(c.a, c.b)
		hi := c.a + c.b
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("smoothMax(%v,%v) = %v outside [%v,%v]", c.a, c.b, got, lo, hi)
		}
	}
	// Dominant side should be nearly exact.
	if got := smoothMax(1000, 1); got > 1000.01 {
		t.Fatalf("smoothMax(1000,1) = %v, want ~1000", got)
	}
}

func TestSecondsAndPhaseSeconds(t *testing.T) {
	cfg := DefaultConfig()
	m := NewAnalytic(cfg)
	phases := []*trace.Phase{
		phaseWith(1<<16, 1<<20, 1<<20, 0, 64),
		phaseWith(1<<10, 1<<14, 1<<14, 0, 32),
	}
	total := Seconds(m, phases, 128)
	per := PhaseSeconds(m, phases, 128)
	if len(per) != 2 {
		t.Fatalf("per-phase len = %d", len(per))
	}
	if math.Abs(total-(per[0]+per[1])) > 1e-12 {
		t.Fatalf("total %v != sum %v", total, per[0]+per[1])
	}
	if per[0] <= per[1] {
		t.Fatal("bigger phase should take longer")
	}
}

func TestProcSweep(t *testing.T) {
	got := ProcSweep(128)
	want := []int{8, 16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	if got := ProcSweep(4); len(got) != 1 || got[0] != 4 {
		t.Fatalf("sweep(4) = %v", got)
	}
}

// ---- DES ----

func TestDESIssueBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DispatchCycles = 0
	cfg.BarrierBase = 0
	cfg.BarrierPerLogP = 0
	d := NewDES(cfg)
	// 4096 pure-issue tasks of 64 ops on 2 procs: 4096*64/2 cycles.
	p := phaseWith(4096, 4096*64, 0, 0, 64)
	p.Barriers = 0
	got := d.PhaseCycles(p, 2)
	want := float64(4096 * 64 / 2)
	if got < want || got > 1.1*want {
		t.Fatalf("DES issue-bound = %v, want ~%v", got, want)
	}
}

func TestDESLatencyVisible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DispatchCycles = 0
	cfg.BarrierBase = 0
	cfg.BarrierPerLogP = 0
	d := NewDES(cfg)
	// A single task of 100 serial memory ops: no parallelism can hide
	// latency; time ~ 100 * (L+1).
	p := phaseWith(1, 0, 100, 0, 100)
	p.Barriers = 0
	got := d.PhaseCycles(p, 8)
	want := float64(100 * (cfg.MemLatency + 1))
	if got < 0.9*want || got > 1.2*want {
		t.Fatalf("DES serial latency = %v, want ~%v", got, want)
	}
}

func TestDESHotspotSerializes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DispatchCycles = 0
	cfg.BarrierBase = 0
	cfg.BarrierPerLogP = 0
	d := NewDES(cfg)
	p := &trace.Phase{}
	p.AddTasks(1024, 0, 0, 0)
	p.AddHot(trace.HotMsgCounter, 100000)
	got := d.PhaseCycles(p, 128)
	want := float64(100000 * cfg.HotspotCycles)
	if got < want {
		t.Fatalf("DES hotspot = %v, want >= %v", got, want)
	}
	if got > 1.3*want {
		t.Fatalf("DES hotspot = %v, want ~%v", got, want)
	}
}

func TestDESUsesDetailTasks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DispatchCycles = 0
	cfg.BarrierBase = 0
	cfg.BarrierPerLogP = 0
	d := NewDES(cfg)
	p := &trace.Phase{}
	p.AddTasks(2, 1000, 0, 0)
	p.AddDetail(trace.TaskCost{Issue: 999, Mem: 0}, trace.TaskCost{Issue: 1, Mem: 0})
	// On one processor the imbalanced detail still sums to 1000 issue ops.
	got := d.PhaseCycles(p, 1)
	if got < 1000 || got > 1100 {
		t.Fatalf("DES with detail = %v, want ~1000", got)
	}
}

func TestDESFallsBackOnHugePhases(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDES(cfg)
	d.MaxOps = 1000
	p := phaseWith(1<<16, 1<<20, 1<<20, 0, 64)
	a := NewAnalytic(cfg)
	if got, want := d.PhaseCycles(p, 64), a.PhaseCycles(p, 64); got != want {
		t.Fatalf("fallback = %v, want analytic %v", got, want)
	}
}

func TestDESEmptyPhase(t *testing.T) {
	d := NewDES(DefaultConfig())
	p := &trace.Phase{Barriers: 1}
	got := d.PhaseCycles(p, 16)
	cfg := DefaultConfig()
	want := cfg.barrierCycles(16) + float64(cfg.DispatchCycles)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("empty DES phase = %v, want %v", got, want)
	}
}

// The two models must agree within a modest factor across regimes; the
// analytic model is a bound-based approximation of the DES.
func TestModelsAgree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DispatchCycles = 0
	cfg.BarrierBase = 0
	cfg.BarrierPerLogP = 0
	a := NewAnalytic(cfg)
	d := NewDES(cfg)
	cases := []*trace.Phase{
		phaseWith(1<<14, 1<<18, 1<<18, 0, 32),     // balanced
		phaseWith(1<<14, 1<<20, 0, 0, 64),         // issue heavy
		phaseWith(200, 0, 1<<16, 0, 330),          // latency bound (few tasks)
		phaseWith(1<<12, 1<<14, 1<<17, 1<<15, 96), // memory heavy
	}
	hot := phaseWith(1<<12, 1<<14, 1<<14, 0, 16)
	hot.AddHot(trace.HotQueueTail, 1<<16)
	cases = append(cases, hot)
	for _, procs := range []int{4, 32, 128} {
		for i, p := range cases {
			p.Barriers = 0
			ta := a.PhaseCycles(p, procs)
			td := d.PhaseCycles(p, procs)
			ratio := ta / td
			if ratio < 1/2.5 || ratio > 2.5 {
				t.Errorf("case %d procs %d: analytic %v vs DES %v (ratio %.2f)",
					i, procs, ta, td, ratio)
			}
		}
	}
}

// DES scaling sanity: issue-bound profile speeds up close to 2x per
// processor doubling, like the analytic model says it must.
func TestDESScalesIssueBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DispatchCycles = 0
	cfg.BarrierBase = 0
	cfg.BarrierPerLogP = 0
	d := NewDES(cfg)
	p := phaseWith(1<<14, 1<<21, 0, 0, 128)
	p.Barriers = 0
	t4 := d.PhaseCycles(p, 4)
	t8 := d.PhaseCycles(p, 8)
	if s := t4 / t8; s < 1.7 || s > 2.2 {
		t.Fatalf("DES issue-bound speedup 4->8 = %v", s)
	}
}

func BenchmarkAnalyticPhase(b *testing.B) {
	m := NewAnalytic(DefaultConfig())
	p := phaseWith(1<<20, 1<<28, 1<<28, 1<<26, 4096)
	for i := 0; i < b.N; i++ {
		m.PhaseCycles(p, 128)
	}
}

func BenchmarkDESPhase(b *testing.B) {
	cfg := DefaultConfig()
	d := NewDES(cfg)
	p := phaseWith(1<<10, 1<<14, 1<<14, 0, 48)
	for i := 0; i < b.N; i++ {
		d.PhaseCycles(p, 16)
	}
}

func TestDiagnoseRegimes(t *testing.T) {
	m := NewAnalytic(DefaultConfig())
	cases := []struct {
		name  string
		phase *trace.Phase
		procs int
		want  Regime
	}{
		{"issue", phaseWith(1<<22, 1<<30, 0, 0, 300), 128, IssueBound},
		{"latency", phaseWith(64, 0, 1<<24, 0, 1<<24/64), 128, LatencyBound},
		{"critical", phaseWith(1<<16, 0, 1<<20, 0, 1<<19), 128, CriticalPath},
		{"overhead", &trace.Phase{Barriers: 1}, 128, OverheadBound},
	}
	hot := phaseWith(1<<20, 0, 0, 0, 4)
	hot.AddHot(trace.HotMsgCounter, 1<<24)
	cases = append(cases, struct {
		name  string
		phase *trace.Phase
		procs int
		want  Regime
	}{"hotspot", hot, 128, HotspotBound})

	for _, c := range cases {
		got, share := m.Diagnose(c.phase, c.procs)
		if got != c.want {
			t.Fatalf("%s: regime = %s, want %s", c.name, got, c.want)
		}
		if share < 0 || share > 1.01 {
			t.Fatalf("%s: share = %v out of range", c.name, share)
		}
	}
}

func TestDiagnoseRegimeChangesWithProcs(t *testing.T) {
	// A moderate-parallelism phase is issue-bound at low P and
	// latency-bound once P*S exceeds its task count.
	m := NewAnalytic(DefaultConfig())
	p := phaseWith(2048, 1<<24, 1<<22, 0, 1<<22/2048)
	low, _ := m.Diagnose(p, 1)
	high, _ := m.Diagnose(p, 128)
	if low != IssueBound {
		t.Fatalf("at 1 proc: %s, want issue-bound", low)
	}
	if high != LatencyBound {
		t.Fatalf("at 128 procs: %s, want latency-bound", high)
	}
}

func TestDESRespectsLowerBoundsProperty(t *testing.T) {
	// The DES simulates the mechanism the analytic bounds abstract, so its
	// finish time must respect each hard lower bound: issue slots and
	// hotspot serialization.
	cfg := DefaultConfig()
	cfg.DispatchCycles = 0
	cfg.BarrierBase = 0
	cfg.BarrierPerLogP = 0
	d := NewDES(cfg)
	f := func(tasksRaw, issueRaw, memRaw uint16, hotRaw uint8, procsRaw uint8) bool {
		tasks := int64(tasksRaw%2048) + 1
		issue := int64(issueRaw % 8192)
		mem := int64(memRaw % 8192)
		hot := int64(hotRaw % 64)
		procs := int(procsRaw%16) + 1
		p := phaseWith(tasks, issue, mem, 0, (issue+mem)/tasks+1)
		p.Barriers = 0
		p.AddHot(trace.HotMsgCounter, hot)
		got := d.PhaseCycles(p, procs)
		issueBound := float64(issue+mem+hot) / float64(procs)
		hotBound := float64(hot * int64(cfg.HotspotCycles))
		return got >= issueBound-1 && got >= hotBound-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsConversion(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.Seconds(5e8); got != 1.0 {
		t.Fatalf("5e8 cycles at 500MHz = %v s, want 1", got)
	}
}

func TestPhaseCyclesDefaultProcs(t *testing.T) {
	// procs <= 0 selects the configured machine size.
	m := NewAnalytic(DefaultConfig())
	p := phaseWith(1<<16, 1<<20, 1<<20, 0, 40)
	if m.PhaseCycles(p, 0) != m.PhaseCycles(p, DefaultConfig().Procs) {
		t.Fatal("default procs not applied")
	}
	d := NewDES(DefaultConfig())
	if d.PhaseCycles(p, 0) != d.PhaseCycles(p, DefaultConfig().Procs) {
		t.Fatal("DES default procs not applied")
	}
}
