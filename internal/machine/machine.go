// Package machine models the Cray XMT's execution of a recorded work
// profile. It is the substitution for the paper's hardware (see DESIGN.md):
// graphxmt has no 128-processor Threadstorm machine, so kernels execute on
// the host for correctness and this package converts their work profiles
// into simulated XMT time.
//
// # The machine being modeled
//
// Each Threadstorm processor holds 128 hardware streams and issues one
// instruction per cycle from any stream that is ready. A stream that issues
// a memory operation blocks until the (long-latency, network-hashed) memory
// system responds; with enough ready streams the processor never stalls.
// This gives the XMT its defining behaviour, and gives the paper its
// scalability arguments:
//
//   - Issue-bound: with >= 128 concurrent tasks per processor, throughput is
//     one op per cycle per processor -> time ~ work/P: linear scaling.
//   - Latency-bound: with fewer tasks than hardware streams, memory latency
//     cannot be hidden -> time ~ (memory ops x latency)/concurrency, which
//     stops improving once P*128 exceeds the available parallelism: the
//     flat scaling the paper shows for small BFS frontiers and the tail
//     iterations of BSP connected components.
//   - Hotspot-bound: atomic fetch-and-adds aimed at one memory word retire
//     serially at that word regardless of P: the reduced scalability the
//     paper attributes to message-queue counters.
//
// Two interchangeable models implement this: Analytic (closed-form bounds,
// used for full experiments) and DES (a discrete-event stream simulator,
// used to validate the analytic model at small scale). Both consume
// trace.Phase profiles and are deterministic.
package machine

import (
	"fmt"
	"math"

	"graphxmt/internal/trace"
)

// Config holds the hardware parameters of the simulated machine. The zero
// value is not valid; use DefaultConfig (the PNNL system in the paper).
type Config struct {
	// ClockHz is the processor clock; Threadstorm runs at 500 MHz.
	ClockHz float64
	// StreamsPerProc is the number of hardware streams per processor (128).
	StreamsPerProc int
	// MemLatency is the round-trip latency of a global memory operation in
	// cycles. The XMT's hashed memory makes all accesses remote; several
	// hundred cycles is the published ballpark.
	MemLatency int
	// HotspotCycles is the minimum spacing, in cycles, between successive
	// atomic fetch-and-adds retiring at one memory word.
	HotspotCycles int
	// BarrierBase and BarrierPerLogP give the cost in cycles of a full
	// machine barrier: BarrierBase + BarrierPerLogP * log2(P).
	BarrierBase    int
	BarrierPerLogP int
	// DispatchCycles is the fixed cost of starting a parallel region
	// (runtime loop spawn / teardown), charged once per phase.
	DispatchCycles int
	// Procs is the number of processors of the full machine (128 at PNNL);
	// experiment sweeps go up to this.
	Procs int
}

// DefaultConfig returns the configuration of the 128-processor Cray XMT at
// PNNL described in the paper.
func DefaultConfig() Config {
	return Config{
		ClockHz:        500e6,
		StreamsPerProc: 128,
		MemLatency:     600,
		HotspotCycles:  6,
		BarrierBase:    3000,
		BarrierPerLogP: 300,
		DispatchCycles: 2500,
		Procs:          128,
	}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	switch {
	case c.ClockHz <= 0:
		return fmt.Errorf("machine: ClockHz %v <= 0", c.ClockHz)
	case c.StreamsPerProc <= 0:
		return fmt.Errorf("machine: StreamsPerProc %d <= 0", c.StreamsPerProc)
	case c.MemLatency <= 0:
		return fmt.Errorf("machine: MemLatency %d <= 0", c.MemLatency)
	case c.HotspotCycles <= 0:
		return fmt.Errorf("machine: HotspotCycles %d <= 0", c.HotspotCycles)
	case c.Procs <= 0:
		return fmt.Errorf("machine: Procs %d <= 0", c.Procs)
	case c.BarrierBase < 0 || c.BarrierPerLogP < 0 || c.DispatchCycles < 0:
		return fmt.Errorf("machine: negative overhead parameters")
	}
	return nil
}

// barrierCycles returns the cost of one full barrier across procs.
func (c Config) barrierCycles(procs int) float64 {
	return float64(c.BarrierBase) + float64(c.BarrierPerLogP)*math.Log2(float64(procs)+1)
}

// Seconds converts cycles to seconds under this configuration.
func (c Config) Seconds(cycles float64) float64 { return cycles / c.ClockHz }

// Model converts a recorded phase into simulated time on procs processors.
type Model interface {
	// PhaseCycles returns the simulated execution time of one phase, in
	// cycles, on the given number of processors.
	PhaseCycles(p *trace.Phase, procs int) float64
	// Config returns the hardware parameters in use.
	Config() Config
}

// Seconds runs every phase of a profile through the model and returns total
// simulated seconds on procs processors.
func Seconds(m Model, phases []*trace.Phase, procs int) float64 {
	var cycles float64
	for _, p := range phases {
		cycles += m.PhaseCycles(p, procs)
	}
	return m.Config().Seconds(cycles)
}

// PhaseSeconds returns per-phase simulated seconds on procs processors.
func PhaseSeconds(m Model, phases []*trace.Phase, procs int) []float64 {
	out := make([]float64, len(phases))
	for i, p := range phases {
		out[i] = m.Config().Seconds(m.PhaseCycles(p, procs))
	}
	return out
}

// ProcSweep holds the standard processor counts of the paper's scaling
// figures: doubling from 8 up to the machine size.
func ProcSweep(maxProcs int) []int {
	var out []int
	for p := 8; p <= maxProcs; p *= 2 {
		out = append(out, p)
	}
	if len(out) == 0 {
		out = []int{maxProcs}
	}
	return out
}
