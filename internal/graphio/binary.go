// Package graphio reads and writes graphs in two formats, mirroring
// GraphCT's "graph data-file input and output" capability:
//
//   - A binary CSR snapshot ("GXMTCSR1"): the exact in-memory representation
//     with a small header, suited to large generated graphs that are reused
//     across experiment runs.
//   - A DIMACS-style text format: "c" comment lines, a "p edge <n> <m>"
//     problem line, and "e <u> <v> [w]" edge lines with 1-based vertex IDs,
//     for interchange with other tools and for small hand-written graphs.
package graphio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"

	"graphxmt/internal/graph"
)

// magic identifies the binary CSR snapshot format, version 1.
var magic = [8]byte{'G', 'X', 'M', 'T', 'C', 'S', 'R', '1'}

const (
	flagDirected = 1 << iota
	flagWeighted
)

// WriteBinary writes g as a binary CSR snapshot. The snapshot is the flat
// representation: a compressed graph is written through its flat twin
// (use WriteCSR2 to persist the compressed form).
func WriteBinary(w io.Writer, g *graph.Graph) error {
	if g.Compressed() {
		g = graph.Decompress(g)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var flags uint64
	if g.Directed() {
		flags |= flagDirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}
	hdr := []uint64{flags, uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := writeInt64s(bw, g.Offsets()); err != nil {
		return err
	}
	if err := writeInt64s(bw, g.Adjacency()); err != nil {
		return err
	}
	if g.Weighted() {
		// The flat weight array is exactly the per-vertex weight slices
		// concatenated in vertex order — one pass, no per-vertex calls.
		if err := writeInt64s(bw, g.Weights()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeInt64s(w io.Writer, s []int64) error {
	var buf [8]byte
	for _, v := range s {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary reads a binary CSR snapshot written by WriteBinary. Any
// defect in the stream — bad magic, unknown flags, implausible sizes,
// truncation, trailing garbage, or CSR arrays that fail the structural
// invariants (monotone offsets, in-range adjacency, matching weights) —
// is reported as a *CorruptError naming the offending section.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var gotMagic [8]byte
	if _, err := io.ReadFull(br, gotMagic[:]); err != nil {
		return nil, &CorruptError{Section: "magic", Reason: "short read", Err: err}
	}
	if gotMagic != magic {
		return nil, &CorruptError{Section: "magic", Reason: fmt.Sprintf("bad magic %q", gotMagic[:])}
	}
	var flags, n, m uint64
	for _, p := range []*uint64{&flags, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, &CorruptError{Section: "header", Reason: "short read", Err: err}
		}
	}
	if unknown := flags &^ (flagDirected | flagWeighted); unknown != 0 {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("unknown flag bits %#x", unknown)}
	}
	const sane = 1 << 40
	if n > sane || m > sane {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("implausible sizes n=%d m=%d", n, m)}
	}
	offsets, err := readInt64s(br, int(n)+1)
	if err != nil {
		return nil, &CorruptError{Section: "offsets", Reason: "short read", Err: err}
	}
	adj, err := readInt64s(br, int(m))
	if err != nil {
		return nil, &CorruptError{Section: "adjacency", Reason: "short read", Err: err}
	}
	var weights []int64
	if flags&flagWeighted != 0 {
		if weights, err = readInt64s(br, int(m)); err != nil {
			return nil, &CorruptError{Section: "weights", Reason: "short read", Err: err}
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, &CorruptError{Section: "trailer", Reason: "trailing bytes after snapshot"}
	}
	g, err := graph.FromCSR(int64(n), offsets, adj, weights, flags&flagDirected != 0)
	if err != nil {
		return nil, &CorruptError{Section: "structure", Reason: err.Error(), Err: err}
	}
	return g, nil
}

func readInt64s(r io.Reader, n int) ([]int64, error) {
	// Grow incrementally rather than trusting the header's count: a
	// corrupt header cannot force an allocation larger than the bytes the
	// stream actually delivers (plus append's growth factor).
	s := make([]int64, 0, min(n, 1<<16))
	buf := make([]byte, 8*4096)
	i := 0
	for i < n {
		want := (n - i) * 8
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, err
		}
		for j := 0; j < want; j += 8 {
			s = append(s, int64(binary.LittleEndian.Uint64(buf[j:j+8])))
			i++
		}
	}
	return s, nil
}

// WriteBinaryFile writes g to path as a binary snapshot.
func WriteBinaryFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads a binary snapshot from path.
func ReadBinaryFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// LoadFile reads a graph from path, choosing the format by extension:
// ".dimacs" and ".txt" parse as DIMACS text, ".el"/".edges" as a plain
// edge list, anything else as the binary snapshot. A trailing ".gz" on any
// of these decompresses transparently. The cmd/ tools share this loader.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	base := path
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("graphio: opening gzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
		base = strings.TrimSuffix(path, ".gz")
	}
	switch {
	case strings.HasSuffix(base, ".dimacs") || strings.HasSuffix(base, ".txt"):
		return ReadDIMACS(r, DIMACSOptions{})
	case strings.HasSuffix(base, ".el") || strings.HasSuffix(base, ".edges"):
		return ReadEdgeList(r, EdgeListOptions{})
	}
	return ReadBinary(r)
}
