package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphxmt/internal/graph"
)

// DIMACSOptions controls text parsing.
type DIMACSOptions struct {
	// Directed builds a directed graph from the edge lines.
	Directed bool
	// KeepDuplicates keeps parallel edges instead of collapsing them.
	KeepDuplicates bool
	// MaxVertices bounds the problem line's vertex count so a hostile or
	// corrupt file cannot force an enormous allocation; 0 selects 1<<26
	// (67M vertices, ~1 GiB of CSR offsets). Raise it for genuinely huge
	// text files.
	MaxVertices int64
}

// ReadDIMACS parses a DIMACS-style graph:
//
//	c <comment>
//	p edge <numVertices> <numEdges>
//	e <u> <v> [weight]
//
// Vertex IDs are 1-based in the file and converted to 0-based. A missing
// problem line is an error; edge-count mismatches are tolerated (the actual
// edges read win) because many published files get m wrong.
func ReadDIMACS(r io.Reader, opt DIMACSOptions) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int64 = -1
	var edges []graph.Edge
	var weights []int64
	sawWeight := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "c":
			// comment
		case "p":
			if n >= 0 {
				return nil, parseErrf(line, "duplicate problem line")
			}
			if len(fields) < 4 {
				return nil, parseErrf(line, "malformed problem line")
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || v < 0 {
				return nil, parseErrf(line, "bad vertex count %q", fields[2])
			}
			maxN := opt.MaxVertices
			if maxN <= 0 {
				maxN = 1 << 26
			}
			if v > maxN {
				return nil, parseErrf(line, "vertex count %d exceeds limit %d (raise DIMACSOptions.MaxVertices)", v, maxN)
			}
			n = v
		case "e", "a":
			if n < 0 {
				return nil, parseErrf(line, "edge before problem line")
			}
			if len(fields) < 3 {
				return nil, parseErrf(line, "malformed edge")
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 64)
			v, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, parseErrf(line, "bad edge endpoints")
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, parseErrf(line, "endpoint out of [1,%d]", n)
			}
			edges = append(edges, graph.Edge{U: u - 1, V: v - 1})
			var w int64 = 1
			if len(fields) >= 4 {
				pw, err := strconv.ParseInt(fields[3], 10, 64)
				if err != nil {
					return nil, parseErrf(line, "bad weight %q", fields[3])
				}
				w = pw
				sawWeight = true
			}
			weights = append(weights, w)
		default:
			return nil, parseErrf(line, "unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: line + 1, Reason: "read error", Err: err}
	}
	if n < 0 {
		return nil, &ParseError{Reason: "missing problem line"}
	}
	bopt := graph.BuildOptions{
		Directed:       opt.Directed,
		KeepDuplicates: opt.KeepDuplicates,
		SortAdjacency:  true,
	}
	if sawWeight {
		bopt.Weights = weights
	}
	return graph.Build(n, edges, bopt)
}

// WriteDIMACS writes g in the DIMACS text format read by ReadDIMACS.
// Undirected edges are written once with u <= v.
func WriteDIMACS(w io.Writer, g *graph.Graph, comment string) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "c %s\n", line); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.NumVertices(), g.UndirectedEdges()); err != nil {
		return err
	}
	for v := int64(0); v < g.NumVertices(); v++ {
		nbr := g.Neighbors(v)
		for i, u := range nbr {
			if !g.Directed() && v > u {
				continue
			}
			if g.Weighted() {
				if _, err := fmt.Fprintf(bw, "e %d %d %d\n", v+1, u+1, g.NeighborWeights(v)[i]); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", v+1, u+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
