//go:build linux && (amd64 || arm64 || riscv64)

package graphio

// The zero-copy CSR2 load path: the snapshot is mapped read-only and the
// graph's arrays alias the mapping, so "loading" a scale-30 graph is a
// handful of page-table entries — the adjacency bytes fault in lazily and
// stay shared across processes through the page cache. Gated to
// little-endian linux targets because the int64 sections are
// reinterpreted in native byte order.

import (
	"io"
	"os"
	"syscall"
)

type munmapCloser struct{ data []byte }

func (m *munmapCloser) Close() error { return syscall.Munmap(m.data) }

// mmapFile maps path read-only. Any mapping failure (including an empty
// file) reports errNoMmap so callers fall back to the streaming reader,
// which produces the real diagnostic.
func mmapFile(path string) ([]byte, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, errNoMmap
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, errNoMmap
	}
	return data, &munmapCloser{data}, nil
}
