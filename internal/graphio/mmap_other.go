//go:build !linux || !(amd64 || arm64 || riscv64)

package graphio

import "io"

// mmapFile on platforms without the zero-copy path: always fall back to
// the streaming CSR2 reader.
func mmapFile(string) ([]byte, io.Closer, error) { return nil, nil, errNoMmap }
