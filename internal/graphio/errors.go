package graphio

import "fmt"

// ParseError reports a defect in a text-format graph file (DIMACS or edge
// list). Line is 1-based; 0 means the defect is not attributable to a
// single line (e.g. a missing problem line).
type ParseError struct {
	// Line is the 1-based line number, or 0 for whole-file defects.
	Line int
	// Reason describes the defect.
	Reason string
	// Err is the underlying error, if any.
	Err error
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("graphio: line %d: %s", e.Line, e.Reason)
	}
	return fmt.Sprintf("graphio: %s", e.Reason)
}

func (e *ParseError) Unwrap() error { return e.Err }

// parseErrf builds a *ParseError with a formatted reason.
func parseErrf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Reason: fmt.Sprintf(format, args...)}
}

// CorruptError reports a binary CSR snapshot that is truncated, damaged,
// or structurally invalid. Section names the part of the file where the
// defect was detected.
type CorruptError struct {
	// Section is one of "magic", "header", "offsets", "adjacency",
	// "weights", "trailer", or "structure".
	Section string
	// Reason describes the defect.
	Reason string
	// Err is the underlying error, if any.
	Err error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("graphio: corrupt snapshot (%s): %s", e.Section, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }
