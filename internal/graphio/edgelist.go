package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphxmt/internal/graph"
)

// EdgeListOptions controls plain edge-list parsing.
type EdgeListOptions struct {
	// Directed builds a directed graph.
	Directed bool
	// ZeroBased treats vertex IDs as already 0-based (the default assumes
	// nothing and simply uses the IDs as given; the vertex count is
	// maxID+1 either way, so this flag exists only for documentation
	// symmetry with DIMACS and is accepted for forward compatibility).
	ZeroBased bool
	// MaxVertices bounds the inferred vertex count; 0 selects 1<<26.
	MaxVertices int64
}

// ReadEdgeList parses the ubiquitous whitespace-separated edge-list text
// format (SNAP-style): one "u v [w]" pair per line, '#' or '%' comment
// lines, blank lines ignored, vertex count inferred as maxID+1. A third
// numeric column makes the graph weighted.
func ReadEdgeList(r io.Reader, opt EdgeListOptions) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	var weights []int64
	sawWeight := false
	var maxID int64 = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, parseErrf(line, "need two vertex IDs")
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 64)
		v, err2 := strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil || u < 0 || v < 0 {
			return nil, parseErrf(line, "bad vertex IDs %q %q", fields[0], fields[1])
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, graph.Edge{U: u, V: v})
		var w int64 = 1
		if len(fields) >= 3 {
			pw, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, parseErrf(line, "bad weight %q", fields[2])
			}
			w = pw
			sawWeight = true
		}
		weights = append(weights, w)
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: line + 1, Reason: "read error", Err: err}
	}
	maxN := opt.MaxVertices
	if maxN <= 0 {
		maxN = 1 << 26
	}
	if maxID+1 > maxN {
		return nil, parseErrf(0, "inferred vertex count %d exceeds limit %d", maxID+1, maxN)
	}
	bopt := graph.BuildOptions{Directed: opt.Directed, SortAdjacency: true}
	if sawWeight {
		bopt.Weights = weights
	}
	return graph.Build(maxID+1, edges, bopt)
}

// WriteEdgeList writes g as a plain edge list ("u v" or "u v w" per line),
// undirected edges once with u <= v.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# graphxmt edge list: %v\n", g)
	for v := int64(0); v < g.NumVertices(); v++ {
		nbr := g.Neighbors(v)
		for i, u := range nbr {
			if !g.Directed() && v > u {
				continue
			}
			if g.Weighted() {
				fmt.Fprintf(bw, "%d %d %d\n", v, u, g.NeighborWeights(v)[i])
			} else {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}
