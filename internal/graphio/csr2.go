package graphio

// GXMTCSR2: the compressed, memory-mappable CSR snapshot. Where GXMTCSR1
// streams the flat in-memory arrays, CSR2 stores the delta-varint
// compressed adjacency (graph/compressed.go) with every section placed at
// a page-aligned offset, so a loader can mmap the file read-only and hand
// the engine zero-copy views of the arrays — load time is O(1) in the
// edge count, and the adjacency bytes stay page-cache-resident and shared
// across processes.
//
// Layout (all integers little-endian):
//
//	[0, 40)        header: magic "GXMTCSR2", then u64 flags, n, m, blobLen
//	[40, 4096)     zero padding
//	page-aligned   offsets: (n+1) int64 — the degree prefix sum
//	page-aligned   coff:    (n+1) int64 — byte offsets into blob
//	page-aligned   blob:    blobLen bytes of delta-varint adjacency
//	page-aligned   weights: m int64, present iff flagWeighted
//
// Each section starts at the next multiple of csr2Align after the
// previous one ends; the file ends where the last section ends (no
// trailing pad). The varint stream is trusted from the format's contract
// (offsets/coff shape is re-validated on load in O(n); use
// graph.VerifyCompressed for a full O(E) audit) — a corrupt stream
// surfaces as a typed graph.DecodeError at decode time, never a panic.

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"unsafe"

	"graphxmt/internal/graph"
)

// errNoMmap is the build-tagged mmapFile's signal that the platform has
// no (little-endian) mmap path; loaders fall back to a streaming read.
var errNoMmap = errors.New("graphio: mmap unavailable")

// int64View reinterprets count int64s at byte offset off of data without
// copying. Only called over page-aligned sections of a validated CSR2
// image on little-endian mmap platforms.
func int64View(data []byte, off, count int64) []int64 {
	if count == 0 {
		return make([]int64, 0)
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), count)
}

var magic2 = [8]byte{'G', 'X', 'M', 'T', 'C', 'S', 'R', '2'}

const (
	// csr2Align is the section alignment: one page on every platform the
	// toolchain targets, so mmap'd section offsets are valid int64 slices.
	csr2Align = 4096
	// csr2Header is the byte length of the header fields before padding.
	csr2Header = 8 + 4*8
)

// csr2Pad returns the zero-padding needed to advance off to the next
// csr2Align boundary.
func csr2Pad(off int64) int64 {
	return (csr2Align - off%csr2Align) % csr2Align
}

// csr2Layout computes the section offsets for a graph of n vertices, m
// edges, and blobLen adjacency bytes. The returned total is the file size.
func csr2Layout(n, m, blobLen int64, weighted bool) (offsetsOff, coffOff, blobOff, weightsOff, total int64) {
	off := int64(csr2Header)
	off += csr2Pad(off)
	offsetsOff = off
	off += (n + 1) * 8
	off += csr2Pad(off)
	coffOff = off
	off += (n + 1) * 8
	off += csr2Pad(off)
	blobOff = off
	off += blobLen
	if weighted {
		off += csr2Pad(off)
		weightsOff = off
		off += m * 8
	}
	return offsetsOff, coffOff, blobOff, weightsOff, off
}

// WriteCSR2 writes g as a compressed memory-mappable snapshot. A flat
// graph is compressed first (which requires sorted adjacency); a
// compressed graph is written as-is.
func WriteCSR2(w io.Writer, g *graph.Graph) error {
	if !g.Compressed() {
		var err error
		if g, err = graph.Compress(g); err != nil {
			return fmt.Errorf("graphio: compressing for CSR2: %w", err)
		}
	}
	n, m := g.NumVertices(), g.NumEdges()
	blob := g.CompressedBlob()
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic2[:]); err != nil {
		return err
	}
	var flags uint64
	if g.Directed() {
		flags |= flagDirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}
	for _, v := range []uint64{flags, uint64(n), uint64(m), uint64(len(blob))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	pos := int64(csr2Header)
	pad := func() error {
		k := csr2Pad(pos)
		pos += k
		for k > 0 {
			chunk := k
			if chunk > int64(len(csr2Zeros)) {
				chunk = int64(len(csr2Zeros))
			}
			if _, err := bw.Write(csr2Zeros[:chunk]); err != nil {
				return err
			}
			k -= chunk
		}
		return nil
	}
	writeSec := func(s []int64) error {
		if err := pad(); err != nil {
			return err
		}
		pos += int64(len(s)) * 8
		return writeInt64s(bw, s)
	}
	if err := writeSec(g.Offsets()); err != nil {
		return err
	}
	if err := writeSec(g.CompressedOffsets()); err != nil {
		return err
	}
	if err := pad(); err != nil {
		return err
	}
	pos += int64(len(blob))
	if _, err := bw.Write(blob); err != nil {
		return err
	}
	if g.Weighted() {
		if err := writeSec(g.Weights()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

var csr2Zeros [csr2Align]byte

// WriteCSR2File writes g to path as a compressed snapshot.
func WriteCSR2File(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSR2(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// csr2Header fields parsed from the first page.
type csr2Hdr struct {
	flags      uint64
	n, m, blob int64
}

func parseCSR2Header(b []byte) (csr2Hdr, error) {
	var h csr2Hdr
	if len(b) < csr2Header {
		return h, &CorruptError{Section: "header", Reason: "short read"}
	}
	if [8]byte(b[:8]) != magic2 {
		return h, &CorruptError{Section: "magic", Reason: fmt.Sprintf("bad magic %q", b[:8])}
	}
	h.flags = binary.LittleEndian.Uint64(b[8:16])
	n := binary.LittleEndian.Uint64(b[16:24])
	m := binary.LittleEndian.Uint64(b[24:32])
	blob := binary.LittleEndian.Uint64(b[32:40])
	if unknown := h.flags &^ (flagDirected | flagWeighted); unknown != 0 {
		return h, &CorruptError{Section: "header", Reason: fmt.Sprintf("unknown flag bits %#x", unknown)}
	}
	const sane = 1 << 40
	if n > sane || m > sane || blob > sane {
		return h, &CorruptError{Section: "header", Reason: fmt.Sprintf("implausible sizes n=%d m=%d blob=%d", n, m, blob)}
	}
	h.n, h.m, h.blob = int64(n), int64(m), int64(blob)
	return h, nil
}

// ReadCSR2 reads a compressed snapshot from a byte stream — the portable
// path, used for gzip-wrapped files and platforms without mmap. The
// arrays are copied out of the stream; OpenCSR2 is the zero-copy loader.
func ReadCSR2(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hb [csr2Header]byte
	if _, err := io.ReadFull(br, hb[:]); err != nil {
		return nil, &CorruptError{Section: "header", Reason: "short read", Err: err}
	}
	h, err := parseCSR2Header(hb[:])
	if err != nil {
		return nil, err
	}
	pos := int64(csr2Header)
	skipPad := func() error {
		k := csr2Pad(pos)
		pos += k
		if _, err := io.CopyN(io.Discard, br, k); err != nil {
			return &CorruptError{Section: "padding", Reason: "short read", Err: err}
		}
		return nil
	}
	readSec := func(name string, count int64) ([]int64, error) {
		if err := skipPad(); err != nil {
			return nil, err
		}
		s, err := readInt64s(br, int(count))
		if err != nil {
			return nil, &CorruptError{Section: name, Reason: "short read", Err: err}
		}
		pos += count * 8
		return s, nil
	}
	offsets, err := readSec("offsets", h.n+1)
	if err != nil {
		return nil, err
	}
	coff, err := readSec("coff", h.n+1)
	if err != nil {
		return nil, err
	}
	if err := skipPad(); err != nil {
		return nil, err
	}
	blob := make([]byte, h.blob)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, &CorruptError{Section: "blob", Reason: "short read", Err: err}
	}
	pos += h.blob
	var weights []int64
	if h.flags&flagWeighted != 0 {
		if weights, err = readSec("weights", h.m); err != nil {
			return nil, err
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, &CorruptError{Section: "trailer", Reason: "trailing bytes after snapshot"}
	}
	g, err := graph.FromCompressedCSR(h.n, offsets, coff, blob, weights, h.flags&flagDirected != 0)
	if err != nil {
		return nil, &CorruptError{Section: "structure", Reason: err.Error(), Err: err}
	}
	return g, nil
}

// ReadCSR2File reads a compressed snapshot from path by streaming copy.
func ReadCSR2File(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSR2(f)
}

// nopCloser is the Closer returned when a load holds no OS resource.
type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// OpenCSR2 loads a compressed snapshot with zero copies where the
// platform allows: on linux little-endian hosts the file is mmap'd
// read-only and the graph's arrays are views into the mapping — O(1)
// load regardless of graph size. Elsewhere it falls back to a streaming
// read. The returned Closer must be held until the graph is no longer in
// use (closing it unmaps the arrays); it is a no-op on the fallback path.
func OpenCSR2(path string) (*graph.Graph, io.Closer, error) {
	data, closer, err := mmapFile(path)
	if err == errNoMmap {
		g, rerr := ReadCSR2File(path)
		return g, nopCloser{}, rerr
	}
	if err != nil {
		return nil, nil, err
	}
	g, err := csr2FromMapping(data)
	if err != nil {
		closer.Close()
		return nil, nil, err
	}
	return g, closer, nil
}

// csr2FromMapping builds the graph over an mmap'd (or fully read) file
// image without copying the arrays.
func csr2FromMapping(data []byte) (*graph.Graph, error) {
	h, err := parseCSR2Header(data)
	if err != nil {
		return nil, err
	}
	offsetsOff, coffOff, blobOff, weightsOff, total := csr2Layout(h.n, h.m, h.blob, h.flags&flagWeighted != 0)
	if int64(len(data)) != total {
		return nil, &CorruptError{Section: "trailer",
			Reason: fmt.Sprintf("file is %d bytes, layout needs %d", len(data), total)}
	}
	offsets := int64View(data, offsetsOff, h.n+1)
	coff := int64View(data, coffOff, h.n+1)
	blob := data[blobOff : blobOff+h.blob]
	var weights []int64
	if h.flags&flagWeighted != 0 {
		weights = int64View(data, weightsOff, h.m)
	}
	g, err := graph.FromCompressedCSR(h.n, offsets, coff, blob, weights, h.flags&flagDirected != 0)
	if err != nil {
		return nil, &CorruptError{Section: "structure", Reason: err.Error(), Err: err}
	}
	return g, nil
}

// Open loads a graph from path, detecting the format from content rather
// than extension: gzip by its 2-byte magic (decompressed transparently),
// then GXMTCSR2 (mmap'd when possible), GXMTCSR1, and otherwise text —
// DIMACS if the first non-blank line starts with 'c' or 'p', else a plain
// edge list. The returned Closer owns any mapping backing the graph and
// must be held while the graph is in use; for every non-mmap path it is a
// no-op.
func Open(path string) (*graph.Graph, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	head, err := br.Peek(2)
	if err != nil {
		return nil, nil, &CorruptError{Section: "magic", Reason: "short read", Err: err}
	}
	gzipped := head[0] == 0x1f && head[1] == 0x8b
	if gzipped {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: opening gzip %s: %w", path, err)
		}
		defer gz.Close()
		br = bufio.NewReaderSize(gz, 1<<20)
	}
	sniff, _ := br.Peek(8)
	switch {
	case len(sniff) >= 8 && [8]byte(sniff) == magic2:
		if !gzipped {
			// Plain CSR2 file: reopen through the zero-copy loader.
			return OpenCSR2(path)
		}
		g, err := ReadCSR2(br)
		return g, nopCloser{}, err
	case len(sniff) >= 8 && [8]byte(sniff) == magic:
		g, err := ReadBinary(br)
		return g, nopCloser{}, err
	}
	g, err := readText(br)
	return g, nopCloser{}, err
}

// readText dispatches a text stream to the DIMACS or edge-list parser by
// its first non-blank, non-'#'/'%'-comment content: DIMACS files open
// with 'c' comments or the 'p' problem line.
func readText(br *bufio.Reader) (*graph.Graph, error) {
	probe, _ := br.Peek(1 << 16)
	isDIMACS := false
	for i := 0; i < len(probe); {
		j := i
		for j < len(probe) && probe[j] != '\n' {
			j++
		}
		line := probe[i:j]
		i = j + 1
		// Trim leading spaces.
		k := 0
		for k < len(line) && (line[k] == ' ' || line[k] == '\t' || line[k] == '\r') {
			k++
		}
		line = line[k:]
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			continue // blank or edge-list comment; keep scanning
		}
		isDIMACS = line[0] == 'c' || line[0] == 'p'
		break
	}
	if isDIMACS {
		return ReadDIMACS(br, DIMACSOptions{})
	}
	return ReadEdgeList(br, EdgeListOptions{})
}
