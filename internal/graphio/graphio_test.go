package graphio

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/rng"
)

func graphsEqual(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %v vs %v", a, b)
	}
	if a.Directed() != b.Directed() || a.Weighted() != b.Weighted() {
		t.Fatalf("flags mismatch")
	}
	for v := int64(0); v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency mismatch at %d: %v vs %v", v, na, nb)
			}
		}
		if a.Weighted() {
			wa, wb := a.NeighborWeights(v), b.NeighborWeights(v)
			for i := range wa {
				if wa[i] != wb[i] {
					t.Fatalf("weight mismatch at %d", v)
				}
			}
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestBinaryRoundTripWeightedDirected(t *testing.T) {
	g, err := graph.Build(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 4, V: 0}},
		graph.BuildOptions{Directed: true, Weights: []int64{3, 7, 11}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
	// Valid magic, truncated header.
	if _, err := ReadBinary(bytes.NewReader([]byte("GXMTCSR1\x01"))); err == nil {
		t.Fatal("expected truncated header error")
	}
}

func TestBinaryRejectsImplausibleSizes(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("GXMTCSR1")
	// flags=0, n=2^60, m=0
	buf.Write(make([]byte, 8))
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0x10})
	buf.Write(make([]byte, 8))
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("expected implausible-size error")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := gen.Ring(64)
	path := filepath.Join(t.TempDir(), "ring.gxmt")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
	if _, err := ReadBinaryFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := gen.CliqueChain(2, 4)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, "clique chain\ntwo lines"); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&buf, DIMACSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestDIMACSWeightedRoundTrip(t *testing.T) {
	g, err := graph.Build(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}},
		graph.BuildOptions{Weights: []int64{5, 9}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&buf, DIMACSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestDIMACSParsing(t *testing.T) {
	in := `c a comment

p edge 4 3
e 1 2
e 2 3 7
e 4 4
`
	g, err := ReadDIMACS(strings.NewReader(in), DIMACSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 1) {
		t.Fatal("edges missing")
	}
	if g.HasEdge(3, 3) {
		t.Fatal("self loop should be dropped by default build")
	}
	if !g.Weighted() {
		t.Fatal("weight column should make the graph weighted")
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := []string{
		"e 1 2\n",                  // edge before problem line
		"p edge 2 1\np edge 2 1\n", // duplicate problem line
		"p edge\n",                 // malformed problem line
		"p edge -3 1\n",            // bad n
		"p edge 2 1\ne 1\n",        // malformed edge
		"p edge 2 1\ne 0 1\n",      // out of range low
		"p edge 2 1\ne 1 5\n",      // out of range high
		"p edge 2 1\ne a b\n",      // non-numeric
		"p edge 2 1\ne 1 2 zz\n",   // bad weight
		"p edge 2 1\nq what\n",     // unknown record
		"",                         // missing problem line
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in), DIMACSOptions{}); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestDIMACSDirected(t *testing.T) {
	in := "p edge 3 2\na 1 2\na 2 3\n"
	g, err := ReadDIMACS(strings.NewReader(in), DIMACSOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directed parse wrong")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%30) + 1
		m := int(mRaw % 120)
		r := rng.New(seed)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int64(r.Uint64n(uint64(n))), V: int64(r.Uint64n(uint64(n)))}
		}
		g, err := graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g.NumEdges() != g2.NumEdges() || g.NumVertices() != g2.NumVertices() {
			return false
		}
		for v := int64(0); v < n; v++ {
			a, b := g.Neighbors(v), g2.Neighbors(v)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFileByExtension(t *testing.T) {
	g := gen.CliqueChain(2, 3)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "g.gxmt")
	if err := WriteBinaryFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, fromBin)

	dimacsPath := filepath.Join(dir, "g.dimacs")
	f, err := os.Create(dimacsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDIMACS(f, g, "test"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fromText, err := LoadFile(dimacsPath)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, fromText)

	if _, err := LoadFile(filepath.Join(dir, "missing.gxmt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.CliqueChain(2, 4)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	g, err := graph.Build(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}},
		graph.BuildOptions{Weights: []int64{5, 7}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestEdgeListParsing(t *testing.T) {
	in := `# SNAP-style comment
% matrix-market-style comment

0 1
1 2
5 0
`
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("inferred n = %d, want 6", g.NumVertices())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 5) {
		t.Fatal("edges missing")
	}
	if g.Weighted() {
		t.Fatal("should be unweighted without a third column")
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",      // one field
		"a b\n",    // non-numeric
		"-1 2\n",   // negative
		"0 1 zz\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{}); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
	// Inferred size limit.
	if _, err := ReadEdgeList(strings.NewReader("0 99999999999\n"), EdgeListOptions{}); err == nil {
		t.Fatal("expected vertex-count limit error")
	}
}

func TestEdgeListDirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"), EdgeListOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || g.HasEdge(1, 0) {
		t.Fatal("directed parse wrong")
	}
}

func TestLoadFileGzip(t *testing.T) {
	g := gen.CliqueChain(2, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.gxmt.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if err := WriteBinary(gz, g); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)

	// Gzipped text formats resolve by the inner extension.
	tpath := filepath.Join(dir, "g.dimacs.gz")
	tf, err := os.Create(tpath)
	if err != nil {
		t.Fatal(err)
	}
	tgz := gzip.NewWriter(tf)
	if err := WriteDIMACS(tgz, g, "gz"); err != nil {
		t.Fatal(err)
	}
	if err := tgz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	g3, err := LoadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g3)

	// Corrupt gzip header errors cleanly.
	bad := filepath.Join(dir, "bad.gxmt.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("expected gzip error")
	}
}
