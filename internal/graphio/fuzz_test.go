package graphio

import (
	"bytes"
	"strings"
	"testing"

	"graphxmt/internal/gen"
)

// FuzzReadDIMACS checks the text parser never panics and that anything it
// accepts is a structurally valid graph.
func FuzzReadDIMACS(f *testing.F) {
	f.Add("p edge 4 3\ne 1 2\ne 2 3 7\ne 4 4\n")
	f.Add("c comment\np edge 2 1\ne 1 2\n")
	f.Add("")
	f.Add("p edge 0 0\n")
	f.Add("p edge 1000000 1\ne 1 1\n")
	f.Add("e 1 2\np edge 2 1\n")
	f.Add("p edge 3 2\na 1 2 -5\na 2 3 9223372036854775807\n")
	f.Add("p edge 2 1\ne 1 2 extra fields here\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadDIMACS(strings.NewReader(input), DIMACSOptions{})
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", verr, input)
		}
	})
}

// FuzzReadBinary checks the binary reader never panics on corrupt bytes
// and that accepted payloads validate.
func FuzzReadBinary(f *testing.F) {
	// Seed with a real snapshot and some mutations of it.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.CliqueChain(2, 3)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("GXMTCSR1"))
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	if len(flipped) > 20 {
		flipped[18] ^= 0xff // corrupt the header
	}
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
	})
}
