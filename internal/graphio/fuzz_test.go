package graphio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"graphxmt/internal/gen"
)

// FuzzReadDIMACS checks the text parser never panics, rejects defects with
// a typed *ParseError, and that anything it accepts is a structurally
// valid graph.
func FuzzReadDIMACS(f *testing.F) {
	f.Add("p edge 4 3\ne 1 2\ne 2 3 7\ne 4 4\n")
	f.Add("c comment\np edge 2 1\ne 1 2\n")
	f.Add("")
	f.Add("p edge 0 0\n")
	f.Add("p edge 1000000 1\ne 1 1\n")
	f.Add("e 1 2\np edge 2 1\n")
	f.Add("p edge 3 2\na 1 2 -5\na 2 3 9223372036854775807\n")
	f.Add("p edge 2 1\ne 1 2 extra fields here\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadDIMACS(strings.NewReader(input), DIMACSOptions{})
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is not a *ParseError: %T %v\ninput: %q", err, err, input)
			}
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", verr, input)
		}
	})
}

// FuzzReadEdgeList checks the SNAP-style edge-list parser never panics,
// rejects defects with a typed *ParseError, and that accepted inputs
// build valid graphs.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("# comment\n% another\n3 4 17\n")
	f.Add("")
	f.Add("5 5\n")
	f.Add("0 1 2 trailing junk\n")
	f.Add("-1 2\n")
	f.Add("0 99999999999999999999\n")
	f.Add("0 1 notanumber\n")
	f.Add("1000000000 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), EdgeListOptions{})
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is not a *ParseError: %T %v\ninput: %q", err, err, input)
			}
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", verr, input)
		}
	})
}

// FuzzReadBinary checks the binary reader never panics on corrupt bytes,
// rejects every defect with a typed *CorruptError, and that accepted
// payloads validate.
func FuzzReadBinary(f *testing.F) {
	// Seed with a real snapshot and some mutations of it.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.CliqueChain(2, 3)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("GXMTCSR1"))
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	if len(flipped) > 20 {
		flipped[18] ^= 0xff // corrupt the header
	}
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), 0)) // trailing garbage
	badFlags := append([]byte(nil), valid...)
	badFlags[8] |= 0x80 // unknown flag bit
	f.Add(badFlags)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection is not a *CorruptError: %T %v", err, err)
			}
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
	})
}

// TestBinaryRejectionsTyped pins the Section names for the common defect
// classes — these are part of the loader's error contract.
func TestBinaryRejectionsTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.CliqueChain(2, 3)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		section string
	}{
		{"empty", func(b []byte) []byte { return nil }, "magic"},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		}, "magic"},
		{"truncated header", func(b []byte) []byte { return b[:12] }, "header"},
		{"unknown flags", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[8] |= 0x80
			return c
		}, "header"},
		{"truncated offsets", func(b []byte) []byte { return b[:40] }, "offsets"},
		{"truncated adjacency", func(b []byte) []byte { return b[:len(b)-8] }, "adjacency"},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xEE) }, "trailer"},
		{"broken CSR", func(b []byte) []byte {
			// Point an adjacency entry out of range.
			c := append([]byte(nil), b...)
			for i := len(c) - 8; i < len(c); i++ {
				c[i] = 0x7f
			}
			return c
		}, "structure"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.mutate(valid)))
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("want *CorruptError, got %T %v", err, err)
			}
			if ce.Section != tc.section {
				t.Fatalf("section %q, want %q (err: %v)", ce.Section, tc.section, ce)
			}
		})
	}
}

// TestParseErrorsTyped pins line attribution for the text parsers.
func TestParseErrorsTyped(t *testing.T) {
	_, err := ReadEdgeList(strings.NewReader("0 1\nbogus\n"), EdgeListOptions{})
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T %v", err, err)
	}
	if pe.Line != 2 {
		t.Fatalf("edge list defect attributed to line %d, want 2", pe.Line)
	}

	_, err = ReadDIMACS(strings.NewReader("c ok\np edge 2 1\ne 1 9\n"), DIMACSOptions{})
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T %v", err, err)
	}
	if pe.Line != 3 {
		t.Fatalf("DIMACS defect attributed to line %d, want 3", pe.Line)
	}

	_, err = ReadDIMACS(strings.NewReader("c only comments\n"), DIMACSOptions{})
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T %v", err, err)
	}
	if pe.Line != 0 {
		t.Fatalf("whole-file defect attributed to line %d, want 0", pe.Line)
	}
}
