package graphio

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
)

func csr2TestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCSR2RoundTripStream: WriteCSR2 then the streaming ReadCSR2 is the
// identity on the logical graph, from both flat and compressed inputs,
// and the result is compressed.
func TestCSR2RoundTripStream(t *testing.T) {
	flat := csr2TestGraph(t)
	comp, err := graph.Compress(flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []*graph.Graph{flat, comp} {
		var buf bytes.Buffer
		if err := WriteCSR2(&buf, src); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadCSR2(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !g2.Compressed() {
			t.Fatal("CSR2 load is not compressed")
		}
		graphsEqual(t, flat, g2)
	}
}

// TestCSR2ByteStability: writing the flat graph and its compressed twin
// yields byte-identical snapshots — the format is a pure function of the
// logical graph.
func TestCSR2ByteStability(t *testing.T) {
	flat := csr2TestGraph(t)
	comp, err := graph.Compress(flat)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteCSR2(&a, flat); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSR2(&b, comp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("flat-sourced and compressed-sourced CSR2 bytes differ")
	}
}

// TestCSR2RoundTripWeightedDirected covers the weights section and the
// directed flag.
func TestCSR2RoundTripWeightedDirected(t *testing.T) {
	g, err := graph.Build(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 4, V: 0}},
		graph.BuildOptions{Directed: true, Weights: []int64{3, 7, 11}, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr2")
	if err := WriteCSR2File(path, g); err != nil {
		t.Fatal(err)
	}
	g2, closer, err := OpenCSR2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	graphsEqual(t, g, g2)
}

// TestCSR2MmapLoad: the zero-copy loader agrees with the streaming reader
// and with the in-memory compressed twin, including a checked O(E) audit
// of the mapped varint stream.
func TestCSR2MmapLoad(t *testing.T) {
	flat := csr2TestGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr2")
	if err := WriteCSR2File(path, flat); err != nil {
		t.Fatal(err)
	}
	g2, closer, err := OpenCSR2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if !g2.Compressed() {
		t.Fatal("OpenCSR2 result is not compressed")
	}
	if err := g2.VerifyCompressed(); err != nil {
		t.Fatalf("mapped stream fails verification: %v", err)
	}
	graphsEqual(t, flat, g2)
	streamed, err := ReadCSR2File(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, streamed, g2)
}

// TestCSR2SectionsPageAligned pins the layout contract: every section
// starts on a csr2Align boundary.
func TestCSR2SectionsPageAligned(t *testing.T) {
	offs, coff, blob, w, _ := csr2Layout(12345, 67890, 99999, true)
	for name, off := range map[string]int64{"offsets": offs, "coff": coff, "blob": blob, "weights": w} {
		if off%csr2Align != 0 {
			t.Fatalf("%s section at %d, not %d-aligned", name, off, csr2Align)
		}
	}
}

// TestCSR2RejectsCorruption: truncation, bad magic, flipped header sizes,
// and trailing bytes are typed CorruptErrors on both load paths.
func TestCSR2RejectsCorruption(t *testing.T) {
	flat := csr2TestGraph(t)
	var buf bytes.Buffer
	if err := WriteCSR2(&buf, flat); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	dir := t.TempDir()
	check := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		mutated := mutate(append([]byte{}, data...))
		var ce *CorruptError
		if _, err := ReadCSR2(bytes.NewReader(mutated)); !errors.As(err, &ce) {
			t.Fatalf("%s: streaming read gave %v, want CorruptError", name, err)
		}
		path := filepath.Join(dir, name+".csr2")
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		g, closer, err := OpenCSR2(path)
		if err == nil {
			closer.Close()
			t.Fatalf("%s: OpenCSR2 accepted corrupt file (graph %v)", name, g)
		}
	}
	check("badmagic", func(b []byte) []byte { b[0] = 'X'; return b })
	check("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	check("trailing", func(b []byte) []byte { return append(b, 0xEE) })
	check("hugesizes", func(b []byte) []byte {
		b[23] = 0xFF // n's top byte -> implausible
		return b
	})
	check("shortheader", func(b []byte) []byte { return b[:12] })
}

// TestOpenAutoDetects: Open dispatches on content — CSR1, CSR2, gzipped
// CSR2, DIMACS text, and plain edge lists — regardless of extension.
func TestOpenAutoDetects(t *testing.T) {
	flat := csr2TestGraph(t)
	dir := t.TempDir()

	write := func(name string, fill func(f *os.File) error) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fill(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Every file gets a deliberately unhelpful extension.
	csr1 := write("a.dat", func(f *os.File) error { return WriteBinary(f, flat) })
	csr2 := write("b.dat", func(f *os.File) error { return WriteCSR2(f, flat) })
	csr2gz := write("c.dat", func(f *os.File) error {
		gz := gzip.NewWriter(f)
		if err := WriteCSR2(gz, flat); err != nil {
			return err
		}
		return gz.Close()
	})
	dimacs := write("d.dat", func(f *os.File) error {
		return WriteDIMACS(f, flat, "auto-detect fixture")
	})
	el := write("e.dat", func(f *os.File) error {
		return WriteEdgeList(f, flat)
	})

	// An edge list stores no vertex count, so trailing isolated vertices
	// do not survive it; the expectation for that case is its own parse.
	var elBuf bytes.Buffer
	if err := WriteEdgeList(&elBuf, flat); err != nil {
		t.Fatal(err)
	}
	elWant, err := ReadEdgeList(&elBuf, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, path string
		want       *graph.Graph
		compressed bool
	}{
		{"csr1", csr1, flat, false},
		{"csr2", csr2, flat, true},
		{"csr2.gz", csr2gz, flat, true},
		{"dimacs", dimacs, flat, false},
		{"edgelist", el, elWant, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, closer, err := Open(tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer closer.Close()
			if g.Compressed() != tc.compressed {
				t.Fatalf("Compressed() = %v, want %v", g.Compressed(), tc.compressed)
			}
			graphsEqual(t, tc.want, g)
		})
	}
}
