package bspalg

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"graphxmt/internal/batch"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
	"graphxmt/internal/par"
)

func multiTestGraph(t *testing.T, scale int) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// multiTestSources builds a deterministic ~48-query source list with
// duplicates, spread across the vertex range.
func multiTestSources(n int64) []int64 {
	var src []int64
	for i := int64(0); i < 40; i++ {
		src = append(src, (i*n)/40)
	}
	// Duplicates: resubmit every fifth source.
	for i := 0; i < len(src); i += 5 {
		src = append(src, src[i])
	}
	return src
}

// TestMultiBFSEquivalenceMatrix is the tentpole correctness assertion:
// every lane of a batched run unpacks to distances bit-identical to an
// independent single-source BFS, across worker counts, graph
// representations, direction modes, and both broadcast treatments.
func TestMultiBFSEquivalenceMatrix(t *testing.T) {
	flat := multiTestGraph(t, 11)
	comp := graph.MustCompress(flat)
	plan, err := batch.NewPlan(multiTestSources(flat.NumVertices()), flat.NumVertices())
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: one single-source BFS per lane.
	base := make([][]int64, plan.Occupancy())
	for lane, s := range plan.Sources {
		res, err := BFS(flat, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		base[lane] = res.Dist
	}

	reps := []struct {
		name string
		g    *graph.Graph
	}{{"flat", flat}, {"compressed", comp}}
	dirs := []core.DirectionMode{core.DirAuto, core.DirPush, core.DirPull}
	for _, w := range []int{1, 3, 8} {
		for _, rep := range reps {
			for _, dir := range dirs {
				for _, expand := range []bool{false, true} {
					name := fmt.Sprintf("w=%d/%s/%s/expand=%v", w, rep.name, dir, expand)
					t.Run(name, func(t *testing.T) {
						defer par.SetWorkers(par.SetWorkers(w))
						opts := []core.Option{core.WithDirection(dir)}
						if expand {
							opts = append(opts, func(c *core.Config) { c.ExpandBroadcasts = true })
						}
						mr, err := MultiBFS(rep.g, plan, nil, opts...)
						if err != nil {
							t.Fatal(err)
						}
						for lane := range plan.Sources {
							if got := mr.Dist(lane); !reflect.DeepEqual(got, base[lane]) {
								for v := range got {
									if got[v] != base[lane][v] {
										t.Fatalf("lane %d (source %d): dist[%d] = %d, want %d",
											lane, plan.Sources[lane], v, got[v], base[lane][v])
									}
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestMultiReachMatchesCC: reachability lanes agree with the reference
// connected components — lane i reaches exactly its source's component,
// and Connected mirrors label equality.
func TestMultiReachMatchesCC(t *testing.T) {
	g := multiTestGraph(t, 10)
	n := g.NumVertices()
	sources := []int64{0, n / 7, n / 3, n / 2, 2 * n / 3, n - 1}
	plan, err := batch.NewPlan(sources, n)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := MultiReach(g, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Dist(0) != nil {
		t.Fatal("reachability batch should carry no levels")
	}
	labels := graph.ReferenceComponents(g)
	for lane, s := range plan.Sources {
		reached := mr.Reached(lane)
		for v := int64(0); v < n; v++ {
			if want := labels[v] == labels[s]; reached[v] != want {
				t.Fatalf("lane %d (source %d): reached[%d] = %v, want %v", lane, s, v, reached[v], want)
			}
		}
		for other := range plan.Sources {
			if want := labels[plan.Sources[other]] == labels[s]; mr.Connected(lane, other) != want {
				t.Fatalf("Connected(%d,%d) = %v, want %v", lane, other, !want, want)
			}
		}
	}
}

// laneSink captures RunStart info and per-step lane counts.
type laneSink struct {
	info  obs.RunInfo
	lanes []int64
}

func (s *laneSink) RunStart(i obs.RunInfo) { s.info = i }
func (s *laneSink) Span(obs.Span)          {}
func (s *laneSink) Step(st obs.StepStats)  { s.lanes = append(s.lanes, st.Lanes) }
func (s *laneSink) Mem(obs.MemSample)      {}
func (s *laneSink) RunEnd(time.Duration)   {}

// TestMultiBFSObsLanes: the obs layer reports lane occupancy at RunStart
// and a per-superstep active-lane count that is a pure function of the
// logical traffic — identical under both broadcast treatments.
func TestMultiBFSObsLanes(t *testing.T) {
	g := multiTestGraph(t, 10)
	plan, err := batch.NewPlan(multiTestSources(g.NumVertices()), g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	run := func(expand bool) *laneSink {
		sink := &laneSink{}
		opts := []core.Option{func(c *core.Config) { c.Obs = sink }}
		if expand {
			opts = append(opts, func(c *core.Config) { c.ExpandBroadcasts = true })
		}
		if _, err := MultiBFS(g, plan, nil, opts...); err != nil {
			t.Fatal(err)
		}
		return sink
	}
	rec, exp := run(false), run(true)
	if rec.info.Lanes != plan.Occupancy() {
		t.Fatalf("RunInfo.Lanes = %d, want occupancy %d", rec.info.Lanes, plan.Occupancy())
	}
	if len(rec.lanes) == 0 || rec.lanes[0] == 0 {
		t.Fatalf("superstep 0 reported %v active lanes, want > 0", rec.lanes)
	}
	for i, l := range rec.lanes {
		if l < 0 || l > int64(plan.Occupancy()) {
			t.Fatalf("step %d: %d active lanes out of range [0,%d]", i, l, plan.Occupancy())
		}
	}
	if !reflect.DeepEqual(rec.lanes, exp.lanes) {
		t.Fatalf("lane counts differ across broadcast treatments:\n  record %v\n  expand %v", rec.lanes, exp.lanes)
	}
}

// multiRecDist collects every lane's distances for equality checks.
func multiRecDist(mr *MultiResult) [][]int64 {
	out := make([][]int64, mr.Plan.Occupancy())
	for lane := range out {
		out[lane] = mr.Dist(lane)
	}
	return out
}

// TestMultiBFSRecoveryMatrix is the satellite's kill-at-every-boundary
// test for a full 64-source batch: a batched run killed at any superstep
// boundary and resumed — lane assignment pinned in the fingerprint, packed
// levels restored from the snapshot's aux words — finishes with distances
// and superstep counts bit-identical to the uninterrupted run.
func TestMultiBFSRecoveryMatrix(t *testing.T) {
	g := multiTestGraph(t, 12)
	n := g.NumVertices()
	sources := make([]int64, batch.MaxLanes)
	for i := range sources {
		sources[i] = (int64(i) * n) / batch.MaxLanes
	}
	plan, err := batch.NewPlan(sources, n)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Occupancy() != batch.MaxLanes {
		t.Fatalf("occupancy = %d, want %d", plan.Occupancy(), batch.MaxLanes)
	}
	label := "multibfs lanes=" + plan.String()

	for _, w := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			defer par.SetWorkers(par.SetWorkers(w))
			base, err := MultiBFS(g, plan, nil)
			if err != nil {
				t.Fatal(err)
			}
			baseDist := multiRecDist(base)
			for k := 0; k <= base.Supersteps-2; k++ {
				dir := t.TempDir()
				fp := &faultinject.Plan{KillAt: map[int64]bool{int64(k): true}}
				_, err := MultiBFS(g, plan, nil,
					core.WithCheckpoint(&ckpt.Policy{Dir: dir, Label: label, Hooks: fp.Hooks()}))
				var ie *core.InterruptedError
				if !errors.As(err, &ie) {
					t.Fatalf("kill@%d: want InterruptedError, got %v", k, err)
				}
				if ie.Superstep != k || ie.CheckpointPath == "" {
					t.Fatalf("kill@%d: InterruptedError = %+v", k, ie)
				}
				res, err := MultiBFS(g, plan, nil,
					core.WithCheckpoint(&ckpt.Policy{Dir: dir, Label: label}),
					core.WithResume(ie.CheckpointPath))
				if err != nil {
					t.Fatalf("resume from kill@%d: %v", k, err)
				}
				if res.Supersteps != base.Supersteps {
					t.Fatalf("kill@%d: resumed %d supersteps, want %d", k, res.Supersteps, base.Supersteps)
				}
				if !reflect.DeepEqual(multiRecDist(res), baseDist) {
					t.Fatalf("kill@%d: resumed distances differ from uninterrupted run", k)
				}
				if !reflect.DeepEqual(res.MessagesPerStep, base.MessagesPerStep) {
					t.Fatalf("kill@%d: resumed message counts differ", k)
				}
			}
		})
	}
}

// TestMultiBFSResumeRejectsLaneMismatch: a checkpoint taken under one lane
// assignment refuses to resume under a permuted one — the typed error
// names the "lane assignment" fingerprint field.
func TestMultiBFSResumeRejectsLaneMismatch(t *testing.T) {
	g := multiTestGraph(t, 10)
	planA, err := batch.NewPlan([]int64{5, 9, 17}, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	planB, err := batch.NewPlan([]int64{5, 17, 9}, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fp := &faultinject.Plan{KillAt: map[int64]bool{1: true}}
	_, err = MultiBFS(g, planA, nil,
		core.WithCheckpoint(&ckpt.Policy{Dir: dir, Label: "batch", Hooks: fp.Hooks()}))
	var ie *core.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}
	_, err = MultiBFS(g, planB, nil,
		core.WithCheckpoint(&ckpt.Policy{Dir: dir, Label: "batch"}),
		core.WithResume(ie.CheckpointPath))
	var me *ckpt.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("permuted lanes: want MismatchError, got %v", err)
	}
	if me.Field != "lane assignment" {
		t.Fatalf("mismatch field = %q, want \"lane assignment\"", me.Field)
	}
}

// TestMultiBFSRetryTransient: a transient vertex panic mid-batch is
// absorbed by deterministic retry — the rolled-back attempt's recorded
// levels are discarded with the rest of the boundary state, and the
// surviving run is bit-identical to a fault-free one.
func TestMultiBFSRetryTransient(t *testing.T) {
	g := multiTestGraph(t, 10)
	plan, err := batch.NewPlan(multiTestSources(g.NumVertices()), g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	base, err := MultiBFS(g, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	var target int64 = -1
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > 0 {
			target = v
			break
		}
	}
	fp, err := faultinject.ParsePlan(fmt.Sprintf("panicn@2:%d:1", target))
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiBFS(g, plan, nil,
		core.WithRetries(2),
		func(c *core.Config) { c.Program = fp.WrapProgram(c.Program) })
	if err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if res.Supersteps != base.Supersteps || !reflect.DeepEqual(multiRecDist(res), multiRecDist(base)) {
		t.Fatal("retried batch differs from fault-free run")
	}
}
