package bspalg

import (
	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/rng"
	"graphxmt/internal/trace"
)

// MISProgram is Luby's maximal independent set as a vertex program — the
// standard demonstration that randomized symmetry-breaking fits the BSP
// model (the Pregel paper's matching example uses the same trick). Rounds
// alternate two supersteps:
//
//	select phase: every undecided vertex draws a deterministic pseudo-
//	random priority for the round and sends it to its undecided
//	neighbors;
//
//	resolve phase: a vertex whose priority beat every received priority
//	joins the set and notifies its neighbors, which become excluded.
//
// States: misUndecided, misIn, misOut.
const (
	misUndecided = int64(0)
	misIn        = int64(1)
	misOut       = int64(2)
)

// MISProgram implements core.Program.
type MISProgram struct {
	// Seed makes the per-round priorities deterministic.
	Seed uint64
}

// InitialState implements core.Program.
func (MISProgram) InitialState(*graph.Graph, int64) int64 { return misUndecided }

// priority derives the vertex's priority for a round; ties are broken by
// ID because Mix64 is injective over (v, round) pairs only with high
// probability, so the low bits carry the ID.
func (p MISProgram) priority(v int64, round int) int64 {
	h := rng.Mix64(uint64(v)*0x9e3779b97f4a7c15 ^ uint64(round)*0xbf58476d1ce4e5b9 ^ p.Seed)
	// Positive value; fold the vertex ID into the low bits for total order.
	return int64((h>>16)&0x7fffffffffff)<<16 | (v & 0xffff)
}

// Compute implements core.Program.
func (p MISProgram) Compute(v *core.VertexContext) {
	round := v.Superstep() / 2
	if v.Superstep()%2 == 0 {
		// Select phase. Winner notifications from the previous round's
		// resolve phase arrive here: a notified vertex is excluded before
		// it bids again.
		for _, m := range v.Messages() {
			if m < 0 && v.State() == misUndecided {
				v.SetState(misOut)
			}
		}
		if v.State() != misUndecided {
			v.VoteToHalt()
			return
		}
		v.SendToNeighbors(p.priority(v.ID(), round))
		if v.Degree() == 0 {
			// Isolated vertices join immediately.
			v.SetState(misIn)
		}
		// Stay awake for the resolve phase even if no messages arrive
		// (all neighbors may already be decided).
		return
	}
	// Resolve phase.
	switch v.State() {
	case misIn:
		v.VoteToHalt()
		return
	case misOut:
		v.VoteToHalt()
		return
	}
	mine := p.priority(v.ID(), round)
	won := true
	for _, m := range v.Messages() {
		// Winner notifications are encoded as negative values.
		if m < 0 {
			v.SetState(misOut)
			v.VoteToHalt()
			return
		}
		if m > mine {
			won = false
		}
	}
	if won {
		v.SetState(misIn)
		v.SendToNeighbors(-1)
		v.VoteToHalt()
		return
	}
	// Lost this round: stay undecided and awake for the next select phase.
}

// MISResult is the output of MaximalIndependentSet.
type MISResult struct {
	// InSet marks the members of the maximal independent set.
	InSet []bool
	// Rounds is the number of Luby rounds (2 supersteps each).
	Rounds int
	// Supersteps executed.
	Supersteps int
}

// MaximalIndependentSet computes an MIS with Luby's algorithm on the BSP
// engine. The result is deterministic for a given seed.
func MaximalIndependentSet(g *graph.Graph, seed uint64, rec *trace.Recorder, opts ...core.Option) (*MISResult, error) {
	cfg := core.Config{
		Graph:    g,
		Program:  MISProgram{Seed: seed},
		Recorder: rec,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &MISResult{
		InSet:      make([]bool, len(res.States)),
		Supersteps: res.Supersteps,
		Rounds:     (res.Supersteps + 1) / 2,
	}
	for v, s := range res.States {
		out.InSet[v] = s == misIn
	}
	return out, nil
}

// GreedyMIS is the sequential shared-memory reference: scan vertices in
// order, adding each whose neighbors are all outside the set. Used to
// cross-check the MIS invariants (the sets themselves legitimately differ).
func GreedyMIS(g *graph.Graph) []bool {
	n := g.NumVertices()
	in := make([]bool, n)
	for v := int64(0); v < n; v++ {
		ok := true
		for _, w := range g.Neighbors(v) {
			if in[w] {
				ok = false
				break
			}
		}
		in[v] = ok
	}
	return in
}

// ValidateMIS reports whether in marks an independent set that is maximal.
func ValidateMIS(g *graph.Graph, in []bool) bool {
	n := g.NumVertices()
	for v := int64(0); v < n; v++ {
		if in[v] {
			// Independence: no two adjacent members.
			for _, w := range g.Neighbors(v) {
				if in[w] && w != v {
					return false
				}
			}
			continue
		}
		// Maximality: every non-member has a member neighbor.
		covered := false
		for _, w := range g.Neighbors(v) {
			if in[w] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
