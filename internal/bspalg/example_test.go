package bspalg_test

import (
	"fmt"
	"log"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/gen"
)

// ExampleConnectedComponents runs the paper's Algorithm 1 on a ring. The
// minimum label moves one hop per superstep (the BSP staleness the paper
// analyzes), so a ring of 10 needs supersteps proportional to its radius.
func ExampleConnectedComponents() {
	g := gen.Ring(10)
	res, err := bspalg.ConnectedComponents(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("supersteps:", res.Supersteps)
	fmt.Println("all zero:", allEqual(res.Labels, 0))
	// Output:
	// supersteps: 7
	// all zero: true
}

// ExampleBFS runs Algorithm 2: messages flow to every neighbor of the
// frontier, so per-superstep message counts exceed the true frontier
// (Figure 2's gap).
func ExampleBFS() {
	g := gen.Star(6) // hub 0 with 5 leaves
	res, err := bspalg.BFS(g, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frontier per level:", res.FrontierPerStep)
	fmt.Println("messages per step:", res.MessagesPerStep)
	// Output:
	// frontier per level: [1 5]
	// messages per step: [5 5 0]
}

// ExampleTriangles runs Algorithm 3 on K4: three supersteps enumerate the
// ordered wedges as messages and a fourth delivers the triangle
// notifications. Candidate messages exceed actual triangles, the write
// blowup the paper quantifies at 181x on its workload.
func ExampleTriangles() {
	res, err := bspalg.Triangles(gen.Complete(4), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("triangles:", res.Count)
	fmt.Println("candidate messages:", res.CandidateMessages)
	fmt.Println("supersteps:", res.Supersteps)
	// Output:
	// triangles: 4
	// candidate messages: 4
	// supersteps: 4
}

func allEqual(s []int64, v int64) bool {
	for _, x := range s {
		if x != v {
			return false
		}
	}
	return true
}
