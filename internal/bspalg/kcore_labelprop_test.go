package bspalg

import (
	"testing"
	"testing/quick"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
	"graphxmt/internal/trace"
)

func TestBSPKCoreMatchesGraphCT(t *testing.T) {
	cases := []*graph.Graph{
		gen.Ring(20),
		gen.Star(15),
		gen.Complete(8),
		gen.CliqueChain(3, 5),
		gen.BinaryTree(31),
		randomGraph(3, 50, 140),
		randomGraph(9, 80, 300),
	}
	for i, g := range cases {
		bsp, err := KCore(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		ct := graphct.KCore(g, nil)
		for v := range ct.Core {
			if bsp.Core[v] != ct.Core[v] {
				t.Fatalf("case %d: core[%d] = %d (bsp) vs %d (graphct)",
					i, v, bsp.Core[v], ct.Core[v])
			}
		}
		if bsp.MaxCore != ct.MaxCore {
			t.Fatalf("case %d: degeneracy %d vs %d", i, bsp.MaxCore, ct.MaxCore)
		}
	}
}

func TestBSPKCoreProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%30) + 2
		g := randomGraph(seed, n, int(mRaw%120))
		bsp, err := KCore(g, nil)
		if err != nil {
			return false
		}
		ct := graphct.KCore(g, nil)
		for v := range ct.Core {
			if bsp.Core[v] != ct.Core[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBSPKCoreOnRMAT(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	bsp, err := KCore(g, rec)
	if err != nil {
		t.Fatal(err)
	}
	ct := graphct.KCore(g, nil)
	for v := range ct.Core {
		if bsp.Core[v] != ct.Core[v] {
			t.Fatalf("core[%d] mismatch", v)
		}
	}
	if len(rec.PhasesNamed("bsp/superstep")) != bsp.Supersteps {
		t.Fatal("phase count mismatch")
	}
	// Estimates only decrease, so convergence is fast on small-world
	// graphs.
	if bsp.Supersteps > 40 {
		t.Fatalf("supersteps = %d, expected quick convergence", bsp.Supersteps)
	}
}

func TestHIndex(t *testing.T) {
	cases := []struct {
		values []int32
		maxK   int32
		want   int32
	}{
		{nil, 0, 0},
		{nil, 5, 0},
		{[]int32{3, 3, 3}, 3, 3},
		{[]int32{1, 1, 1, 1}, 4, 1},
		{[]int32{5, 4, 3, 2, 1}, 5, 3},
		{[]int32{9, 9}, 2, 2},
		{[]int32{9, 9}, 5, 2}, // only two values >= anything
		{[]int32{0, 0, 0}, 3, 0},
	}
	for _, c := range cases {
		if got := hIndex(c.values, c.maxK); got != c.want {
			t.Fatalf("hIndex(%v, %d) = %d, want %d", c.values, c.maxK, got, c.want)
		}
	}
}

func TestBSPLabelPropagationPlanted(t *testing.T) {
	// Four dense communities, sparse noise between them: label propagation
	// must recover a grouping where intra-community pairs share labels.
	g, err := gen.PlantedPartition(4, 16, 0.7, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LabelPropagation(g, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Communities should collapse to roughly the planted count.
	if res.Communities > 10 {
		t.Fatalf("found %d communities, planted 4", res.Communities)
	}
	// Modularity of the found labeling should be clearly positive.
	if q := graphct.Modularity(g, res.Labels); q < 0.3 {
		t.Fatalf("modularity = %v, want planted structure recovered", q)
	}
	// Majority of intra-block pairs share a label.
	agree, total := 0, 0
	for u := int64(0); u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			if u/16 == v/16 {
				total++
				if res.Labels[u] == res.Labels[v] {
					agree++
				}
			}
		}
	}
	if float64(agree) < 0.8*float64(total) {
		t.Fatalf("only %d/%d intra-community pairs agree", agree, total)
	}
}

func TestGraphCTLabelPropagationPlanted(t *testing.T) {
	g, err := gen.PlantedPartition(4, 16, 0.7, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	res := graphct.LabelPropagation(g, graphct.CommunityOptions{}, nil)
	if !res.Converged {
		t.Fatal("shared-memory LPA should converge on a planted graph")
	}
	if res.Communities > 10 {
		t.Fatalf("found %d communities", res.Communities)
	}
	if q := graphct.Modularity(g, res.Labels); q < 0.3 {
		t.Fatalf("modularity = %v", q)
	}
}

func TestLabelPropagationStalenessCostsIterations(t *testing.T) {
	// The paper's CC analysis generalizes: the BSP variant works on stale
	// labels and should need at least as many iterations as the in-place
	// shared-memory sweep.
	g, err := gen.PlantedPartition(3, 20, 0.5, 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := LabelPropagation(g, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct := graphct.LabelPropagation(g, graphct.CommunityOptions{}, nil)
	if bsp.Supersteps < ct.Iterations {
		t.Fatalf("bsp %d supersteps < shared-memory %d iterations",
			bsp.Supersteps, ct.Iterations)
	}
}

func TestModularity(t *testing.T) {
	// Two disconnected triangles with per-component labels: strong
	// community structure.
	g := gen.CliqueChain(1, 3)
	edges := g.EdgeList()
	for i := range edges {
		edges[i] = graph.Edge{U: edges[i].U + 3, V: edges[i].V + 3}
	}
	both := append(gen.CliqueChain(1, 3).EdgeList(), edges...)
	g2 := graph.MustBuild(6, both, graph.BuildOptions{SortAdjacency: true})
	labels := []int64{0, 0, 0, 1, 1, 1}
	q := graphct.Modularity(g2, labels)
	if q < 0.45 || q > 0.55 { // exactly 0.5 for two equal disconnected cliques
		t.Fatalf("modularity = %v, want 0.5", q)
	}
	// All-in-one labeling has modularity 0.
	all := []int64{0, 0, 0, 0, 0, 0}
	if q := graphct.Modularity(g2, all); q > 1e-9 {
		t.Fatalf("single-community modularity = %v, want ~0", q)
	}
	// Empty graph.
	if q := graphct.Modularity(graph.MustBuild(2, nil, graph.BuildOptions{}), []int64{0, 1}); q != 0 {
		t.Fatalf("empty modularity = %v", q)
	}
}
