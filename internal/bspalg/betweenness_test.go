package bspalg

import (
	"math"
	"testing"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
)

func scoresClose(t *testing.T, bsp, ct []float64, tol float64) {
	t.Helper()
	for v := range ct {
		diff := math.Abs(bsp[v] - ct[v])
		if diff > tol && diff > tol*math.Abs(ct[v]) {
			t.Fatalf("score[%d]: bsp %v vs shared-memory %v", v, bsp[v], ct[v])
		}
	}
}

func TestBSPBetweennessPath(t *testing.T) {
	g := gen.Path(5)
	bsp, err := Betweenness(g, BetweennessOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct := graphct.Betweenness(g, graphct.BetweennessOptions{}, nil)
	scoresClose(t, bsp.Score, ct.Score, 1e-6)
	if math.Abs(bsp.Score[2]-8) > 1e-6 {
		t.Fatalf("center score = %v, want 8", bsp.Score[2])
	}
}

func TestBSPBetweennessStar(t *testing.T) {
	g := gen.Star(10)
	bsp, err := Betweenness(g, BetweennessOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bsp.Score[0]-72) > 1e-6 {
		t.Fatalf("hub score = %v, want 72", bsp.Score[0])
	}
	for v := 1; v < 10; v++ {
		if math.Abs(bsp.Score[v]) > 1e-9 {
			t.Fatalf("leaf score = %v", bsp.Score[v])
		}
	}
}

func TestBSPBetweennessMatchesSharedMemory(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := randomGraph(seed, 40, 120)
		bsp, err := Betweenness(g, BetweennessOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ct := graphct.Betweenness(g, graphct.BetweennessOptions{}, nil)
		// Fixed-point messaging bounds accuracy; hold to 0.5% relative or
		// 0.01 absolute per vertex.
		scoresClose(t, bsp.Score, ct.Score, 5e-3)
	}
}

func TestBSPBetweennessOnCliqueChain(t *testing.T) {
	// Bridge endpoints dominate betweenness in a chain of cliques.
	g := gen.CliqueChain(3, 4)
	bsp, err := Betweenness(g, BetweennessOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct := graphct.Betweenness(g, graphct.BetweennessOptions{}, nil)
	scoresClose(t, bsp.Score, ct.Score, 5e-3)
	// Vertices 3 and 4 (first bridge) outrank interior clique vertices.
	if !(bsp.Score[3] > bsp.Score[1] && bsp.Score[4] > bsp.Score[1]) {
		t.Fatalf("bridge scores %v, %v not above interior %v",
			bsp.Score[3], bsp.Score[4], bsp.Score[1])
	}
}

func TestBSPBetweennessSampled(t *testing.T) {
	g := randomGraph(9, 60, 180)
	a, err := Betweenness(g, BetweennessOptions{Samples: 8, Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Betweenness(g, BetweennessOptions{Samples: 8, Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sources) != 8 {
		t.Fatalf("sources = %d", len(a.Sources))
	}
	for v := range a.Score {
		if a.Score[v] != b.Score[v] {
			t.Fatal("sampled run not deterministic")
		}
	}
}

func TestBSPBetweennessEmptyAndDisconnected(t *testing.T) {
	empty := graph.MustBuild(0, nil, graph.BuildOptions{})
	res, err := Betweenness(empty, BetweennessOptions{}, nil)
	if err != nil || len(res.Score) != 0 {
		t.Fatalf("empty: %v, %v", res, err)
	}
	// Disconnected: scores restricted to each component.
	g := graph.MustBuild(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}},
		graph.BuildOptions{SortAdjacency: true})
	bsp, err := Betweenness(g, BetweennessOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct := graphct.Betweenness(g, graphct.BetweennessOptions{}, nil)
	scoresClose(t, bsp.Score, ct.Score, 1e-6)
	if bsp.Score[1] != 2 || bsp.Score[4] != 2 {
		t.Fatalf("middle scores = %v", bsp.Score)
	}
}
