package bspalg

import (
	"sort"

	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
	"graphxmt/internal/trace"
)

// LPProgram is synchronous label-propagation community detection as a
// vertex program. Each vertex keeps a cache of its neighbors' labels (its
// Pregel vertex value beyond the int64 state slot); a vertex whose label
// changes broadcasts (sender, newLabel), receivers update their caches and
// adopt the plurality label over the full cached neighborhood, with the
// shared tie-breaking of graphct.PluralityLabel. Labels observed are always
// one superstep stale — the same staleness the paper analyzes for
// connected components — so the BSP variant needs at least as many
// iterations as the in-place shared-memory sweep, and Rounds caps
// oscillation on symmetric structures.
//
// Messages encode (sender, label) as sender<<32 | label.
type LPProgram struct {
	// Rounds is the maximum number of propagation supersteps.
	Rounds int
	// cache[v][i] is the latest label received from Neighbors(v)[i].
	cache [][]int64
}

// NewLPProgram returns a program instance sized for g.
func NewLPProgram(g *graph.Graph, rounds int) *LPProgram {
	n := g.NumVertices()
	p := &LPProgram{Rounds: rounds, cache: make([][]int64, n)}
	for v := int64(0); v < n; v++ {
		// Initial labels are the neighbor IDs themselves.
		p.cache[v] = append([]int64(nil), g.Neighbors(v)...)
	}
	return p
}

// InitialState implements core.Program: every vertex starts in its own
// community.
func (*LPProgram) InitialState(_ *graph.Graph, v int64) int64 { return v }

// PullCapable implements core.PullProgram: label propagation broadcasts
// only via SendToNeighbors and at most once per vertex per superstep, so
// direction-optimizing supersteps may execute its exchanges as pull
// sweeps.
func (*LPProgram) PullCapable() bool { return true }

// Compute implements core.Program.
func (p *LPProgram) Compute(v *core.VertexContext) {
	if v.Superstep() == 0 {
		// Everyone knows everyone's initial label already (it is the
		// vertex ID); kick off the first exchange by recomputing from the
		// initial cache below, without a broadcast round.
	}
	nbr := v.Neighbors()
	cache := p.cache[v.ID()]
	for _, m := range v.Messages() {
		sender := m >> 32
		label := m & 0xffffffff
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= sender })
		if i < len(nbr) && nbr[i] == sender {
			cache[i] = label
		}
		v.Charge(4, 4, 1)
	}
	if len(cache) > 0 {
		counts := make(map[int64]int64, len(cache))
		for _, l := range cache {
			counts[l]++
		}
		v.Charge(int64(len(cache)), int64(len(cache)), 0)
		best := graphct.PluralityLabel(counts, v.State(), v.Superstep())
		if best != v.State() {
			v.SetState(best)
			if v.Superstep() < p.Rounds {
				v.SendToNeighbors(v.ID()<<32 | best)
			}
		}
	}
	v.VoteToHalt()
}

// LPResult is the output of LabelPropagation.
type LPResult struct {
	// Labels assigns each vertex a community label.
	Labels []int64
	// Communities is the number of distinct labels.
	Communities int64
	// Supersteps executed.
	Supersteps int
}

// LabelPropagation runs BSP community detection for at most rounds
// propagation supersteps (0 selects 30). The graph must have sorted
// adjacency.
func LabelPropagation(g *graph.Graph, rounds int, rec *trace.Recorder, opts ...core.Option) (*LPResult, error) {
	if rounds <= 0 {
		rounds = 30
	}
	if !g.SortedAdjacency() {
		panic("bspalg: LabelPropagation requires sorted adjacency")
	}
	cfg := core.Config{
		Graph:         g,
		Program:       NewLPProgram(g, rounds),
		Recorder:      rec,
		MaxSupersteps: rounds + 2,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &LPResult{
		Labels:      res.States,
		Communities: graph.CountComponents(res.States),
		Supersteps:  res.Supersteps,
	}, nil
}
