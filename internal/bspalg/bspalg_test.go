package bspalg

import (
	"math"
	"testing"
	"testing/quick"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
	"graphxmt/internal/rng"
	"graphxmt/internal/trace"
)

func randomGraph(seed uint64, n int64, m int) *graph.Graph {
	r := rng.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int64(r.Uint64n(uint64(n))), V: int64(r.Uint64n(uint64(n)))}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{SortAdjacency: true})
}

func TestBSPCCMatchesReferenceAndGraphCT(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g := randomGraph(seed, 60, 90)
		bsp, err := ConnectedComponents(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.ReferenceComponents(g)
		ct := graphct.ConnectedComponents(g, nil)
		for v := range want {
			if bsp.Labels[v] != want[v] {
				t.Fatalf("seed %d: bsp labels[%d] = %d, want %d", seed, v, bsp.Labels[v], want[v])
			}
			if ct.Labels[v] != want[v] {
				t.Fatalf("seed %d: graphct labels[%d] = %d, want %d", seed, v, ct.Labels[v], want[v])
			}
		}
	}
}

func TestBSPCCNeedsMoreIterationsThanSharedMemory(t *testing.T) {
	// The paper's central CC observation: messages cannot move forward
	// within a superstep, so BSP needs at least ~2x the iterations of the
	// label-propagating shared-memory kernel on small-world graphs.
	g, err := gen.RMAT(gen.RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := ConnectedComponents(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct := graphct.ConnectedComponents(g, nil)
	if bsp.Supersteps < ct.Iterations {
		t.Fatalf("bsp %d supersteps < graphct %d iterations", bsp.Supersteps, ct.Iterations)
	}
	// Label flooding moves the minimum one hop per superstep; the
	// shared-memory sweep propagates within an iteration.
	if float64(bsp.Supersteps) < 1.5*float64(ct.Iterations) {
		t.Logf("warning: bsp %d vs graphct %d below the 2x the paper reports",
			bsp.Supersteps, ct.Iterations)
	}
}

func TestBSPCCActiveSetCollapses(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := ConnectedComponents(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := bsp.ActivePerStep[0]
	last := bsp.ActivePerStep[len(bsp.ActivePerStep)-1]
	if first != g.NumVertices() {
		t.Fatalf("superstep 0 active = %d, want all %d", first, g.NumVertices())
	}
	if last*10 > first {
		t.Fatalf("final active %d not a small fraction of %d", last, first)
	}
}

func TestBSPCCCombinedEquivalent(t *testing.T) {
	g := randomGraph(3, 100, 250)
	plain, err := ConnectedComponents(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := ConnectedComponentsCombined(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Supersteps != combined.Supersteps {
		t.Fatalf("supersteps: %d vs %d", plain.Supersteps, combined.Supersteps)
	}
	for v := range plain.Labels {
		if plain.Labels[v] != combined.Labels[v] {
			t.Fatal("combiner changed the result")
		}
	}
}

func TestBSPBFSMatchesReferenceAndGraphCT(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g := randomGraph(seed, 50, 80)
		bsp, err := BFS(g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.ReferenceBFS(g, 0)
		ct := graphct.BFS(g, 0, nil)
		for v := range want {
			if bsp.Dist[v] != want[v] {
				t.Fatalf("seed %d: bsp dist[%d] = %d, want %d", seed, v, bsp.Dist[v], want[v])
			}
			if ct.Dist[v] != want[v] {
				t.Fatalf("seed %d: graphct dist[%d] = %d, want %d", seed, v, ct.Dist[v], want[v])
			}
		}
	}
}

func TestBSPBFSMessagesExceedFrontier(t *testing.T) {
	// Figure 2's observation: a message goes to every neighbor of the
	// frontier, so messages >= next frontier at every level, and messages
	// equal edges incident on the frontier.
	g, err := gen.RMAT(gen.RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Root at the largest-degree vertex for a full traversal.
	var src int64
	var best int64 = -1
	for v := int64(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > best {
			best, src = d, v
		}
	}
	bsp, err := BFS(g, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct := graphct.BFS(g, src, nil)
	// Frontier sizes agree with the shared-memory BFS levels.
	if len(bsp.FrontierPerStep) != len(ct.FrontierSizes) {
		t.Fatalf("levels: %d vs %d", len(bsp.FrontierPerStep), len(ct.FrontierSizes))
	}
	for i := range ct.FrontierSizes {
		if bsp.FrontierPerStep[i] != ct.FrontierSizes[i] {
			t.Fatalf("level %d: frontier %d vs %d", i, bsp.FrontierPerStep[i], ct.FrontierSizes[i])
		}
	}
	// Messages in superstep s = edges incident on the level-s frontier.
	for s := 0; s < len(ct.EdgesScanned) && s < len(bsp.MessagesPerStep); s++ {
		if bsp.MessagesPerStep[s] != ct.EdgesScanned[s] {
			t.Fatalf("superstep %d: messages %d != frontier edges %d",
				s, bsp.MessagesPerStep[s], ct.EdgesScanned[s])
		}
		if s+1 < len(bsp.FrontierPerStep) && bsp.MessagesPerStep[s] < bsp.FrontierPerStep[s+1] {
			t.Fatalf("superstep %d: messages %d < next frontier %d",
				s, bsp.MessagesPerStep[s], bsp.FrontierPerStep[s+1])
		}
	}
	// Aggregate message excess: every frontier vertex messages all of its
	// neighbors, so total messages track total frontier-incident edges —
	// an order of magnitude above the frontier itself on an edge-factor-16
	// graph (Figure 2's gap).
	var totalMsgs, totalFrontier int64
	for _, m := range bsp.MessagesPerStep {
		totalMsgs += m
	}
	for _, f := range bsp.FrontierPerStep {
		totalFrontier += f
	}
	if totalMsgs < 5*totalFrontier {
		t.Fatalf("total messages %d not >> total frontier %d", totalMsgs, totalFrontier)
	}
}

func TestBSPBFSDistanceEdgeProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%40) + 2
		g := randomGraph(seed, n, int(mRaw%120))
		res, err := BFS(g, 0, nil)
		if err != nil {
			return false
		}
		for v := int64(0); v < n; v++ {
			for _, w := range g.Neighbors(v) {
				dv, dw := res.Dist[v], res.Dist[w]
				if (dv < 0) != (dw < 0) {
					return false
				}
				if dv >= 0 && (dv-dw > 1 || dw-dv > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBSPTrianglesKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"K4", gen.Complete(4), 4},
		{"K6", gen.Complete(6), 20},
		{"ring", gen.Ring(12), 0},
		{"cliquechain", gen.CliqueChain(3, 4), 12},
	}
	for _, c := range cases {
		res, err := Triangles(c.g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != c.want {
			t.Fatalf("%s: bsp triangles = %d, want %d", c.name, res.Count, c.want)
		}
		// Triangle-bearing graphs need the full 4 supersteps (notification
		// delivery); triangle-free runs terminate one step earlier.
		wantSteps := 4
		if c.want == 0 {
			wantSteps = 3
		}
		if res.Supersteps != wantSteps {
			t.Fatalf("%s: supersteps = %d, want %d", c.name, res.Supersteps, wantSteps)
		}
	}
}

func TestBSPTrianglesMatchGraphCTProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%25) + 3
		g := randomGraph(seed, n, int(mRaw%100))
		bsp, err := Triangles(g, nil)
		if err != nil {
			return false
		}
		return bsp.Count == graphct.Triangles(g, nil).Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBSPTrianglesMessageBlowup(t *testing.T) {
	// The candidate messages of superstep 1 must dwarf the triangle count
	// on a sparse graph (5.5e9 vs 30.9M in the paper — which notes its
	// RMAT input "contains far fewer triangles than a real-world graph").
	g, err := gen.ErdosRenyi(1<<12, 1<<15, 14)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Triangles(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Skip("degenerate sample with no triangles")
	}
	if res.CandidateMessages < 50*res.Count {
		t.Fatalf("candidates %d not >> triangles %d", res.CandidateMessages, res.Count)
	}
	// Total BSP writes (messages) vastly exceed GraphCT's one write per
	// triangle.
	ct := graphct.Triangles(g, nil)
	if res.TotalMessages < 50*ct.Writes {
		t.Fatalf("bsp writes %d vs graphct %d: blowup too small", res.TotalMessages, ct.Writes)
	}
	// On the skewed RMAT input the blowup is smaller at small scale but
	// must still be a multiple.
	rm, err := gen.RMAT(gen.RMATConfig{Scale: 11, EdgeFactor: 8, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := Triangles(rm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Count > 0 && rres.CandidateMessages < 2*rres.Count {
		t.Fatalf("rmat candidates %d vs triangles %d", rres.CandidateMessages, rres.Count)
	}
}

func TestStreamingTrianglesMatchesEngine(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(seed, 40, 160)
		eng, err := Triangles(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		str := StreamingTriangles(g, nil)
		if eng.Count != str.Count {
			t.Fatalf("seed %d: count %d vs %d", seed, eng.Count, str.Count)
		}
		if eng.CandidateMessages != str.CandidateMessages {
			t.Fatalf("seed %d: candidates %d vs %d", seed, eng.CandidateMessages, str.CandidateMessages)
		}
		if eng.TotalMessages != str.TotalMessages {
			t.Fatalf("seed %d: total messages %d vs %d", seed, eng.TotalMessages, str.TotalMessages)
		}
		for s := range eng.MessagesPerStep {
			if eng.MessagesPerStep[s] != str.MessagesPerStep[s] {
				t.Fatalf("seed %d step %d: %v vs %v", seed, s, eng.MessagesPerStep, str.MessagesPerStep)
			}
		}
	}
}

func TestStreamingTrianglesProfileMatchesEngine(t *testing.T) {
	g := gen.CliqueChain(4, 5)
	engRec := trace.NewRecorder()
	if _, err := Triangles(g, engRec); err != nil {
		t.Fatal(err)
	}
	strRec := trace.NewRecorder()
	StreamingTriangles(g, strRec)
	engPh := engRec.PhasesNamed("bsp/superstep")
	strPh := strRec.PhasesNamed("bsp/superstep")
	if len(engPh) != len(strPh) {
		t.Fatalf("phase counts: %d vs %d", len(engPh), len(strPh))
	}
	for i := range engPh {
		e, s := engPh[i], strPh[i]
		if e.Loads != s.Loads || e.Stores != s.Stores || e.Issue != s.Issue {
			t.Fatalf("superstep %d: engine {%d %d %d} vs streaming {%d %d %d}",
				i, e.Issue, e.Loads, e.Stores, s.Issue, s.Loads, s.Stores)
		}
		if e.Hot != s.Hot {
			t.Fatalf("superstep %d: hot %v vs %v", i, e.Hot, s.Hot)
		}
		if e.Tasks != s.Tasks {
			t.Fatalf("superstep %d: tasks %d vs %d", i, e.Tasks, s.Tasks)
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.New(seed)
		n := int64(40)
		m := 120
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int64(r.Uint64n(uint64(n))), V: int64(r.Uint64n(uint64(n)))}
		}
		weights := gen.UniformWeights(m, 9, seed)
		g, err := graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true, Weights: weights})
		if err != nil {
			t.Fatal(err)
		}
		bsp, err := SSSP(g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceSSSP(g, 0)
		for v := range want {
			if bsp.Dist[v] != want[v] {
				t.Fatalf("seed %d: dist[%d] = %d, want %d", seed, v, bsp.Dist[v], want[v])
			}
		}
	}
}

func TestSSSPUnweightedPanics(t *testing.T) {
	g := gen.Ring(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unweighted graph")
		}
	}()
	_, _ = SSSP(g, 0, nil)
}

func TestSSSPEqualsBFSOnUnitWeights(t *testing.T) {
	g0 := randomGraph(5, 50, 120)
	edges := g0.EdgeList()
	weights := make([]int64, len(edges))
	for i := range weights {
		weights[i] = 1
	}
	g, err := graph.Build(g0.NumVertices(), edges, graph.BuildOptions{SortAdjacency: true, Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SSSP(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := BFS(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range sp.Dist {
		if sp.Dist[v] != bfs.Dist[v] {
			t.Fatalf("dist[%d]: sssp %d vs bfs %d", v, sp.Dist[v], bfs.Dist[v])
		}
	}
}

func TestBSPPageRankMatchesGraphCT(t *testing.T) {
	g := randomGraph(8, 60, 200)
	rounds := 40
	bsp, err := PageRank(g, rounds, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct := graphct.PageRank(g, graphct.PageRankOptions{MaxIterations: rounds, Tolerance: 1e-14}, nil)
	// The two formulations differ in dangling-mass handling; on a graph
	// where every vertex has degree > 0 they coincide.
	hasIsolated := false
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.Degree(v) == 0 {
			hasIsolated = true
		}
	}
	if hasIsolated {
		t.Skip("sample has isolated vertices")
	}
	for v := range bsp.Rank {
		if math.Abs(bsp.Rank[v]-ct.Rank[v]) > 1e-4 {
			t.Fatalf("rank[%d]: bsp %v vs graphct %v", v, bsp.Rank[v], ct.Rank[v])
		}
	}
}

func TestBSPPageRankRingUniform(t *testing.T) {
	res, err := PageRank(gen.Ring(10), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res.Rank {
		if math.Abs(r-0.1) > 1e-6 {
			t.Fatalf("rank[%d] = %v", v, r)
		}
	}
}

func TestBFSUnreachableNormalized(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, graph.BuildOptions{SortAdjacency: true})
	res, err := BFS(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != -1 || res.Dist[3] != -1 {
		t.Fatalf("dist = %v", res.Dist)
	}
	if res.Dist[1] != 1 {
		t.Fatalf("dist[1] = %d", res.Dist[1])
	}
	// FrontierPerStep only covers reached levels.
	if len(res.FrontierPerStep) != 2 || res.FrontierPerStep[0] != 1 || res.FrontierPerStep[1] != 1 {
		t.Fatalf("frontier = %v", res.FrontierPerStep)
	}
}

func TestSSSPBothModelsMatchDijkstra(t *testing.T) {
	// The shared-memory Bellman-Ford kernel and the BSP program must agree
	// with each other and with Dijkstra, and the BSP variant needs at
	// least as many iterations (staleness, as with connected components).
	for seed := uint64(0); seed < 8; seed++ {
		r := rng.New(seed)
		n := int64(50)
		m := 160
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int64(r.Uint64n(uint64(n))), V: int64(r.Uint64n(uint64(n)))}
		}
		g, err := graph.Build(n, edges, graph.BuildOptions{
			SortAdjacency: true, Weights: gen.UniformWeights(m, 9, seed)})
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceSSSP(g, 0)
		bsp, err := SSSP(g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		ct := graphct.BellmanFordSSSP(g, 0, nil)
		for v := range want {
			if bsp.Dist[v] != want[v] {
				t.Fatalf("seed %d: bsp dist[%d] = %d, want %d", seed, v, bsp.Dist[v], want[v])
			}
			if ct.Dist[v] != want[v] {
				t.Fatalf("seed %d: bellman-ford dist[%d] = %d, want %d", seed, v, ct.Dist[v], want[v])
			}
		}
		if bsp.Supersteps < ct.Iterations {
			t.Fatalf("seed %d: bsp %d supersteps < shared-memory %d sweeps",
				seed, bsp.Supersteps, ct.Iterations)
		}
	}
}

func TestBellmanFordUnweightedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	graphct.BellmanFordSSSP(gen.Ring(4), 0, nil)
}

func TestBellmanFordInvalidSource(t *testing.T) {
	g, err := graph.Build(3, []graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{Weights: []int64{2}})
	if err != nil {
		t.Fatal(err)
	}
	res := graphct.BellmanFordSSSP(g, -1, nil)
	for _, d := range res.Dist {
		if d != -1 {
			t.Fatal("invalid source should reach nothing")
		}
	}
}

func TestBSPApproxDiameterMatchesSharedMemory(t *testing.T) {
	cases := []*graph.Graph{
		gen.Path(10), gen.Ring(12), gen.Star(9), gen.BinaryTree(31),
		randomGraph(4, 50, 200),
	}
	for i, g := range cases {
		bsp, err := ApproxDiameter(g, 0, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		ct := graphct.ApproxDiameter(g, 0, 4, nil)
		if bsp != ct {
			t.Fatalf("case %d: bsp diameter %d vs shared-memory %d", i, bsp, ct)
		}
	}
	if d, err := ApproxDiameter(gen.Ring(4), -1, 4, nil); err != nil || d != -1 {
		t.Fatalf("invalid start: %d, %v", d, err)
	}
}

func TestMISValidOnKnownGraphs(t *testing.T) {
	cases := []*graph.Graph{
		gen.Ring(10), gen.Star(9), gen.Complete(7), gen.Path(11),
		gen.BinaryTree(31), gen.CliqueChain(3, 5), gen.Grid(5, 5),
	}
	for i, g := range cases {
		res, err := MaximalIndependentSet(g, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ValidateMIS(g, res.InSet) {
			t.Fatalf("case %d: invalid MIS", i)
		}
		// Greedy reference also validates (sanity on the validator).
		if !ValidateMIS(g, GreedyMIS(g)) {
			t.Fatalf("case %d: greedy MIS invalid", i)
		}
	}
	// K7: any MIS has exactly one member.
	res, err := MaximalIndependentSet(gen.Complete(7), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	members := 0
	for _, in := range res.InSet {
		if in {
			members++
		}
	}
	if members != 1 {
		t.Fatalf("K7 MIS has %d members", members)
	}
}

func TestMISProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int64(nRaw%40) + 1
		g := randomGraph(seed, n, int(mRaw%150))
		res, err := MaximalIndependentSet(g, seed^0xabc, nil)
		if err != nil {
			return false
		}
		return ValidateMIS(g, res.InSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMISDeterministicAndFast(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 11, EdgeFactor: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := MaximalIndependentSet(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximalIndependentSet(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatal("MIS not deterministic")
		}
	}
	if !ValidateMIS(g, a.InSet) {
		t.Fatal("invalid MIS on RMAT")
	}
	// Luby converges in O(log n) rounds with high probability.
	if a.Rounds > 20 {
		t.Fatalf("rounds = %d, expected O(log n)", a.Rounds)
	}
	// Different seeds generally give different sets.
	c, err := MaximalIndependentSet(g, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.InSet {
		if a.InSet[v] != c.InSet[v] {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: identical MIS across seeds (possible but unlikely)")
	}
}

func TestValidateMISCatchesViolations(t *testing.T) {
	g := gen.Path(4) // 0-1-2-3
	// Adjacent members: not independent.
	if ValidateMIS(g, []bool{true, true, false, false}) {
		t.Fatal("validator accepted adjacent members")
	}
	// Not maximal: vertex 3 uncovered.
	if ValidateMIS(g, []bool{true, false, false, false}) {
		t.Fatal("validator accepted non-maximal set")
	}
	// Valid: {0, 2} covers everything... 3 is adjacent to 2.
	if !ValidateMIS(g, []bool{true, false, true, false}) {
		t.Fatal("validator rejected a valid MIS")
	}
}
