package bspalg

import (
	"math/bits"
	"sort"

	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// TCProgram is Algorithm 3: BSP triangle counting under a total vertex
// ordering. Superstep 0: every vertex v sends its ID to each neighbor
// n > v. Superstep 1: each received ID m is retransmitted to every
// neighbor n with m < v < n — enumerating every ordered wedge (m, v, n) as
// an explicit message, the "overwhelming number of writes" the paper
// measures. Superstep 2: a vertex receiving m checks whether m is a
// neighbor; if so the wedge closes and a triangle is reported by sending m
// back to its origin. The triangle count is the number of superstep-2
// messages.
type TCProgram struct{}

// InitialState implements core.Program.
func (TCProgram) InitialState(*graph.Graph, int64) int64 { return 0 }

// Compute implements core.Program.
func (TCProgram) Compute(v *core.VertexContext) {
	switch v.Superstep() {
	case 0:
		nbr := v.Neighbors()
		// Sorted adjacency: the suffix after v holds all n > v.
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] > v.ID() })
		v.Charge(int64(len(nbr)), int64(len(nbr)), 0)
		for _, n := range nbr[i:] {
			v.Send(n, v.ID())
		}
	case 1:
		nbr := v.Neighbors()
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] > v.ID() })
		// Algorithm 3 scans the full neighbor list once per message.
		v.Charge(int64(len(v.Messages()))*int64(len(nbr)),
			int64(len(v.Messages()))*int64(len(nbr)), 0)
		for _, m := range v.Messages() {
			if m >= v.ID() {
				continue
			}
			for _, n := range nbr[i:] {
				v.Send(n, m)
			}
		}
	case 2:
		// Membership check per candidate: binary search in the sorted
		// adjacency list.
		searchCost := int64(bits.Len64(uint64(v.Degree())) + 1)
		for _, m := range v.Messages() {
			v.Charge(searchCost, searchCost, 0)
			if v.HasNeighbor(m) {
				v.Send(m, 1)
				v.Aggregate("triangles", 1, core.Sum)
			}
		}
	default:
		// Superstep 3: triangle notifications arrive; nothing to compute.
	}
	v.VoteToHalt()
}

// TCResult is the output of Triangles.
type TCResult struct {
	// Count is the number of distinct triangles.
	Count int64
	// CandidateMessages is the number of wedge messages superstep 1
	// emitted — the paper's "possible triangles" (5.5 billion at their
	// scale, versus 30.9 million actual).
	CandidateMessages int64
	// TotalMessages is every message sent across all supersteps; with the
	// engine's per-message writes this is the BSP write count the paper
	// compares at 181x the shared-memory kernel's.
	TotalMessages int64
	// MessagesPerStep breaks TotalMessages down by superstep.
	MessagesPerStep []int64
	// Supersteps executed (4: three compute steps plus delivery of the
	// triangle notifications).
	Supersteps int
}

// Triangles runs Algorithm 3 through the generic engine, materializing
// every wedge message. Use StreamingTriangles for graphs whose wedge count
// exceeds memory.
func Triangles(g *graph.Graph, rec *trace.Recorder, opts ...core.Option) (*TCResult, error) {
	if !g.SortedAdjacency() {
		panic("bspalg: Triangles requires sorted adjacency")
	}
	cfg := core.Config{
		Graph:    g,
		Program:  TCProgram{},
		Recorder: rec,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &TCResult{
		Count:           res.Aggregates["triangles"],
		MessagesPerStep: res.MessagesPerStep,
		Supersteps:      res.Supersteps,
	}
	if len(res.MessagesPerStep) > 1 {
		out.CandidateMessages = res.MessagesPerStep[1]
	}
	for _, m := range res.MessagesPerStep {
		out.TotalMessages += m
	}
	return out, nil
}

// StreamingTriangles computes exactly what Triangles computes — triangle
// count, per-superstep message counts, and the work profile under the same
// cost schedule — without materializing the wedge messages. Wedges are
// generated and consumed per middle vertex. This is the substitution that
// stands in for the paper's 1 TiB of XMT memory (DESIGN.md): behaviour and
// charged cost are identical, only peak host memory differs, which tests
// verify against the engine path on small graphs.
func StreamingTriangles(g *graph.Graph, rec *trace.Recorder) *TCResult {
	if !g.SortedAdjacency() {
		panic("bspalg: StreamingTriangles requires sorted adjacency")
	}
	costs := core.DefaultCosts()
	n := g.NumVertices()

	// Per-vertex counts of neighbors below/above the vertex ID.
	lt := make([]int64, n)
	gt := make([]int64, n)
	for v := int64(0); v < n; v++ {
		nbr := g.Neighbors(v)
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] > v })
		lt[v] = int64(i)
		gt[v] = int64(len(nbr) - i)
	}

	out := &TCResult{}

	// Superstep 0: v sends to each neighbor > v.
	var s0 int64
	var scan0 int64
	for v := int64(0); v < n; v++ {
		s0 += gt[v]
		scan0 += g.Degree(v)
	}

	// Superstep 1: each incoming m < v is retransmitted to each n > v.
	// Active vertices are those that received superstep-0 messages.
	var s1, active1, scan1 int64
	for v := int64(0); v < n; v++ {
		if lt[v] == 0 {
			continue
		}
		active1++
		s1 += lt[v] * gt[v]
		scan1 += lt[v] * g.Degree(v)
	}
	out.CandidateMessages = s1

	// Superstep 2: wedges (m, v, n) with m < v < n arrive at n; a triangle
	// closes when m is adjacent to n. Generate wedges per middle vertex
	// and test membership immediately instead of buffering.
	var s2, active2, searchOps int64
	seen := make([]bool, n)   // which n received anything (for active count)
	origin := make([]bool, n) // which m had a wedge close (receives in step 3)
	for v := int64(0); v < n; v++ {
		nbr := g.Neighbors(v)
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] > v })
		lows, highs := nbr[:i], nbr[i:]
		if len(lows) == 0 || len(highs) == 0 {
			continue
		}
		for _, nn := range highs {
			if !seen[nn] {
				seen[nn] = true
				active2++
			}
			cost := int64(bits.Len64(uint64(g.Degree(nn))) + 1)
			for _, m := range lows {
				searchOps += cost
				if g.HasEdge(nn, m) {
					s2++
					origin[m] = true
				}
			}
		}
	}
	out.Count = s2

	// Superstep 3: triangle notifications delivered; receivers run and
	// halt.
	var active3 int64
	for _, b := range origin {
		if b {
			active3++
		}
	}

	// Charge superstep phases with the engine's exact structure, stopping
	// after the first superstep that sends nothing — the point where
	// core.Run detects termination (every vertex votes to halt each step).
	steps := []struct {
		active, received, sent, extra int64
	}{
		{n, 0, s0, scan0},
		{active1, s0, s1, scan1},
		{active2, s1, s2, searchOps},
		{active3, s2, 0, 0},
	}
	for i, st := range steps {
		chargeSuperstep(rec, i, costs, n, st.active, st.received, st.sent, st.extra, st.extra)
		out.MessagesPerStep = append(out.MessagesPerStep, st.sent)
		out.TotalMessages += st.sent
		out.Supersteps++
		if st.sent == 0 {
			break
		}
	}
	return out
}

// chargeSuperstep records one synthetic BSP superstep phase with the same
// cost structure core.Run charges.
func chargeSuperstep(rec *trace.Recorder, step int, costs core.CostSchedule,
	n, active, received, sent, extraIssue, extraLoads int64) {
	scan := rec.StartPhase("bsp/scan", step)
	scan.AddTasks(n, 0, costs.ScanLoadsPerVertex*n, 0)
	scan.ObserveTask(costs.ScanLoadsPerVertex)
	ph := rec.StartPhase("bsp/superstep", step)
	ph.AddTasks(active+sent,
		costs.ActiveIssuePerVertex*active+costs.RecvIssuePerMsg*received+costs.SendIssuePerMsg*sent+extraIssue,
		costs.ActiveLoadsPerVertex*active+costs.RecvLoadsPerMsg*received+costs.SendLoadsPerMsg*sent+extraLoads,
		costs.ActiveStoresPerVertex*active+costs.SendStoresPerMsg*sent)
	ph.AddHot(trace.HotMsgCounter, hotOps(costs, sent))
	ph.AddTasks(0, 0, costs.DeliverLoadsPerMsg*sent, costs.DeliverStoresPerMsg*sent)
	ph.ObserveTask(costs.ActiveIssuePerVertex + costs.ActiveLoadsPerVertex +
		costs.RecvIssuePerMsg + costs.RecvLoadsPerMsg)
}

func hotOps(c core.CostSchedule, msgs int64) int64 {
	chunk := c.HotMsgChunk
	if chunk <= 0 {
		chunk = 1
	}
	return (msgs + chunk - 1) / chunk
}
