package bspalg

import (
	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// SSSPProgram is single-source shortest paths in the BSP model — the
// canonical Pregel example and the algorithm Kajdanowicz et al. use in the
// Giraph comparison the paper cites. Vertex state is the best known
// distance; a vertex that improves its distance relaxes all outgoing edges
// by sending dist + weight.
type SSSPProgram struct {
	// Source is the root vertex.
	Source int64
}

// InitialState implements core.Program.
func (p SSSPProgram) InitialState(_ *graph.Graph, v int64) int64 {
	if v == p.Source {
		return 0
	}
	return Unreachable
}

// Compute implements core.Program.
func (p SSSPProgram) Compute(v *core.VertexContext) {
	d := v.State()
	changed := false
	for _, m := range v.Messages() {
		if m < d {
			d = m
			changed = true
		}
	}
	if changed {
		v.SetState(d)
	}
	if (v.Superstep() == 0 && v.ID() == p.Source) || changed {
		nbr := v.Neighbors()
		wts := v.NeighborWeights()
		for i, n := range nbr {
			v.Send(n, d+wts[i])
		}
	}
	v.VoteToHalt()
}

// SSSPResult is the output of SSSP.
type SSSPResult struct {
	// Dist holds shortest-path distances; -1 for unreachable.
	Dist []int64
	// Supersteps is the superstep count until convergence.
	Supersteps int
	// MessagesPerStep holds relaxation messages per superstep.
	MessagesPerStep []int64
}

// SSSP runs BSP single-source shortest paths on a weighted graph with
// non-negative weights, using a min-combiner.
func SSSP(g *graph.Graph, source int64, rec *trace.Recorder, opts ...core.Option) (*SSSPResult, error) {
	if !g.Weighted() {
		panic("bspalg: SSSP requires a weighted graph")
	}
	cfg := core.Config{
		Graph:    g,
		Program:  SSSPProgram{Source: source},
		Combiner: core.Min,
		Recorder: rec,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &SSSPResult{
		Dist:            res.States,
		Supersteps:      res.Supersteps,
		MessagesPerStep: res.MessagesPerStep,
	}
	for i, d := range out.Dist {
		if d >= Unreachable {
			out.Dist[i] = -1
		}
	}
	return out, nil
}

// ReferenceSSSP is a sequential Dijkstra used to verify the BSP program;
// -1 marks unreachable vertices. Weights must be non-negative.
func ReferenceSSSP(g *graph.Graph, source int64) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	if source < 0 || source >= n {
		return dist
	}
	// Binary-heap Dijkstra.
	type item struct {
		v, d int64
	}
	heapArr := []item{{source, 0}}
	push := func(it item) {
		heapArr = append(heapArr, it)
		i := len(heapArr) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heapArr[p].d <= heapArr[i].d {
				break
			}
			heapArr[p], heapArr[i] = heapArr[i], heapArr[p]
			i = p
		}
	}
	pop := func() item {
		top := heapArr[0]
		last := len(heapArr) - 1
		heapArr[0] = heapArr[last]
		heapArr = heapArr[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heapArr[l].d < heapArr[small].d {
				small = l
			}
			if r < last && heapArr[r].d < heapArr[small].d {
				small = r
			}
			if small == i {
				break
			}
			heapArr[i], heapArr[small] = heapArr[small], heapArr[i]
			i = small
		}
		return top
	}
	for len(heapArr) > 0 {
		it := pop()
		if dist[it.v] >= 0 {
			continue
		}
		dist[it.v] = it.d
		nbr := g.Neighbors(it.v)
		wts := g.NeighborWeights(it.v)
		for i, w := range nbr {
			if dist[w] < 0 {
				push(item{w, it.d + wts[i]})
			}
		}
	}
	return dist
}
