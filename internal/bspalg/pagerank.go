package bspalg

import (
	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// prScale is the fixed-point scale for PageRank state and messages: the
// engine's message payloads are int64, so probabilities travel as
// round(p * prScale). With 10^12 resolution the quantization error after
// tens of iterations stays far below the convergence tolerances anyone
// uses.
const prScale = 1_000_000_000_000

// PageRankProgram is vertex-centric PageRank with a fixed iteration count,
// the formulation of the Pregel paper: for Rounds supersteps each vertex
// sets rank = (1-d)/N + d * sum(messages) and scatters rank/degree to its
// neighbors; afterwards every vertex votes to halt.
type PageRankProgram struct {
	// Damping in fixed-point thousandths; 850 = 0.85.
	DampingMilli int64
	// Rounds is the number of rank-update supersteps.
	Rounds int
}

// InitialState implements core.Program: uniform 1/N in fixed point.
func (p PageRankProgram) InitialState(g *graph.Graph, _ int64) int64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return prScale / g.NumVertices()
}

// Compute implements core.Program.
func (p PageRankProgram) Compute(v *core.VertexContext) {
	d := p.DampingMilli
	if v.Superstep() > 0 {
		var sum int64
		for _, m := range v.Messages() {
			sum += m
		}
		base := (1000 - d) * (prScale / v.NumVertices()) / 1000
		v.SetState(base + d*sum/1000)
	}
	if v.Superstep() < p.Rounds {
		if deg := v.Degree(); deg > 0 {
			v.SendToNeighbors(v.State() / deg)
		}
	}
	v.VoteToHalt()
}

// PageRankResult is the output of PageRank.
type PageRankResult struct {
	// Rank holds each vertex's PageRank as float64 (approximately sums
	// to 1; dangling mass is not redistributed, matching the Pregel
	// paper's formulation).
	Rank []float64
	// Supersteps executed.
	Supersteps int
}

// PageRank runs fixed-point BSP PageRank for rounds supersteps with
// damping 0.85, combining messages by summation.
func PageRank(g *graph.Graph, rounds int, rec *trace.Recorder, opts ...core.Option) (*PageRankResult, error) {
	if rounds <= 0 {
		rounds = 30
	}
	cfg := core.Config{
		Graph:    g,
		Program:  PageRankProgram{DampingMilli: 850, Rounds: rounds},
		Combiner: core.Sum,
		Recorder: rec,
		// The program runs exactly rounds+2 supersteps (power iteration,
		// then drain); a rounds above the default budget is intentional,
		// not a runaway.
		MaxSupersteps: rounds + 2,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &PageRankResult{
		Rank:       make([]float64, len(res.States)),
		Supersteps: res.Supersteps,
	}
	for i, s := range res.States {
		out.Rank[i] = float64(s) / prScale
	}
	return out, nil
}
