package bspalg

// Batched multi-source BFS (MS-BFS style, after Then et al., "The More the
// Merrier: Efficient Multi-Source Graph Traversal"): up to 64 BFS queries
// share one BSP run. Per-vertex state is a uint64 lane bitmask — bit i set
// means lane i's search has reached the vertex — and messages are
// OR-combined bitmasks, so one edge traversal carries every lane's
// frontier at once. This attacks the source paper's core finding head-on:
// BSP BFS drowns in per-edge frontier traffic, so dividing that traffic by
// the batch width is the single biggest throughput lever for query-heavy
// workloads (the cmd/graphd service of ROADMAP item 4).
//
// Correctness rests on an induction the tests assert bit-exactly: a vertex
// broadcasts exactly the lane bits it acquired this superstep ("fresh"
// bits), so lane i's bit propagates one hop per superstep from its source
// — the same wavefront single-source BFSProgram produces — and the
// superstep at which a vertex's bit first set IS its BFS level. Levels are
// recorded out-of-band in a packed array (four 16-bit levels per int64
// word) exposed through core.AuxProgram, so checkpoint/resume and
// superstep retry preserve them exactly like vertex states.
//
// OR is commutative, associative, and idempotent, so every fold order the
// engine uses — chunk merges, combiner reduction, pull-sweep gathers,
// either broadcast treatment — yields the same masks; MultiBFS declares
// PullCapable and sets core.Or as its combiner, making the full
// direction-optimizing machinery available to batched runs.

import (
	"fmt"
	"math/bits"

	"graphxmt/internal/batch"
	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// Packed level layout: four 16-bit levels per int64 word, so a 64-lane
// batch costs 16 words (128 bytes) per vertex. 0xFFFF marks "not yet
// reached"; a freshly allocated array is filled with -1 (every field
// unset). The 0xFFFE cap is far above the engine's default superstep
// budget (1000), so it is a structural invariant, not a practical limit.
const (
	laneLevelBits     = 16
	laneLevelsPerWord = 64 / laneLevelBits
	laneLevelMask     = 1<<laneLevelBits - 1
	laneLevelUnset    = laneLevelMask
	laneLevelMax      = laneLevelMask - 1
)

// MultiBFSProgram is the batched multi-source vertex program. Construct it
// through MultiBFS/MultiReach (the zero value is not runnable).
type MultiBFSProgram struct {
	// lanes is the lane assignment: lanes[i] owns bit i (batch.Plan.Sources).
	lanes []int64
	// srcMask maps a source vertex to its lane bit. Read-only after
	// construction, so concurrent InitialState calls are safe.
	srcMask map[int64]uint64
	// levels is the packed per-vertex per-lane first-set superstep
	// (laneWords words per vertex), exposed via AuxState so checkpoints
	// carry it. nil for reachability-only batches, which skip the level
	// bookkeeping entirely.
	levels    []int64
	laneWords int
}

func newMultiProgram(g *graph.Graph, plan *batch.Plan, withLevels bool) *MultiBFSProgram {
	p := &MultiBFSProgram{
		lanes:   plan.Sources,
		srcMask: make(map[int64]uint64, len(plan.Sources)),
	}
	for i, s := range plan.Sources {
		p.srcMask[s] |= 1 << uint(i)
	}
	if withLevels {
		p.laneWords = (len(plan.Sources) + laneLevelsPerWord - 1) / laneLevelsPerWord
		p.levels = make([]int64, g.NumVertices()*int64(p.laneWords))
		for i := range p.levels {
			p.levels[i] = -1 // every 16-bit field = laneLevelUnset
		}
	}
	return p
}

// InitialState implements core.Program: sources start with their own lane
// bit set (level 0); everyone else starts empty.
func (p *MultiBFSProgram) InitialState(_ *graph.Graph, v int64) int64 {
	m, ok := p.srcMask[v]
	if !ok {
		return 0
	}
	if p.levels != nil {
		p.setLevels(v, m, 0)
	}
	return int64(m)
}

// PullCapable implements core.PullProgram: like single-source BFS, the
// program broadcasts at most once per vertex per superstep via
// SendToNeighbors only, so direction-optimizing supersteps may execute its
// floods as pull sweeps.
func (*MultiBFSProgram) PullCapable() bool { return true }

// ProgramName implements core.ProgramNamer.
func (p *MultiBFSProgram) ProgramName() string {
	if p.levels == nil {
		return "multireach"
	}
	return "multibfs"
}

// Lanes implements core.LaneProgram: checkpoints pin the assignment and
// obs reports lane occupancy.
func (p *MultiBFSProgram) Lanes() []int64 { return p.lanes }

// AuxState implements core.AuxProgram: the packed levels ride in every
// boundary snapshot (checkpoint format v7), so resumed and retried batches
// keep the levels recorded before the boundary. nil (absent) for
// reachability-only batches.
func (p *MultiBFSProgram) AuxState() []int64 { return p.levels }

// Compute implements core.Program. A vertex ORs its incoming masks,
// extracts the bits it has not seen ("fresh"), records their levels, and
// broadcasts exactly those fresh bits — the per-lane traffic pattern of
// single-source BFS, packed 64 lanes wide.
func (p *MultiBFSProgram) Compute(v *core.VertexContext) {
	if v.Superstep() == 0 {
		// Sources flood their lane bit; everyone else sleeps until woken.
		if m := uint64(v.State()); m != 0 {
			v.SendToNeighbors(int64(m))
		}
		v.VoteToHalt()
		return
	}
	var in uint64
	for _, m := range v.Messages() {
		in |= uint64(m)
	}
	visited := uint64(v.State())
	if fresh := in &^ visited; fresh != 0 {
		v.SetState(int64(visited | fresh))
		if p.levels != nil {
			p.setLevels(v.ID(), fresh, int64(v.Superstep()))
		}
		v.SendToNeighbors(int64(fresh))
	}
	v.VoteToHalt()
}

// setLevels records step as the first-set level of every lane in mask for
// vertex v. Writes touch only v's own words (the engine's vertex-confined
// side-effect rule), and each lane's field is written at most once per run
// — a bit is fresh exactly once.
func (p *MultiBFSProgram) setLevels(v int64, mask uint64, step int64) {
	if step > laneLevelMax {
		panic(fmt.Sprintf("bspalg: superstep %d exceeds the packed level range %d", step, laneLevelMax))
	}
	base := v * int64(p.laneWords)
	for mask != 0 {
		lane := bits.TrailingZeros64(mask)
		mask &= mask - 1
		wi := base + int64(lane/laneLevelsPerWord)
		sh := uint(lane%laneLevelsPerWord) * laneLevelBits
		w := uint64(p.levels[wi])
		p.levels[wi] = int64(w&^(uint64(laneLevelMask)<<sh) | uint64(step)<<sh)
	}
}

// MultiResult is the unpacked outcome of one batched run.
type MultiResult struct {
	// Plan is the lane assignment the batch ran under; Plan.Lane routes
	// each submitted query (duplicates included) to its lane.
	Plan *batch.Plan
	// Supersteps is the batched run's superstep count: the deepest lane's
	// BFS depth plus the terminal superstep.
	Supersteps int
	// ActivePerStep / MessagesPerStep are the engine's per-superstep
	// counters for the one shared run. MessagesPerStep counts each
	// lane-packed broadcast once per edge — not once per lane per edge —
	// which is precisely the amortization the batch buys.
	ActivePerStep   []int64
	MessagesPerStep []int64
	// Masks holds every vertex's final lane bitmask: bit i set means lane
	// i's search reached the vertex.
	Masks []int64
	// levels/laneWords back Dist; nil for reachability-only batches.
	levels    []int64
	laneWords int
}

// Reached reports lane's reached set as a per-vertex bitmap.
func (r *MultiResult) Reached(lane int) []bool {
	bit := int64(1) << uint(lane)
	out := make([]bool, len(r.Masks))
	for v, m := range r.Masks {
		out[v] = m&bit != 0
	}
	return out
}

// Connected reports whether lanes a and b started in the same connected
// component (undirected graphs): lane a's search reaches lane b's source
// iff the two sources are connected.
func (r *MultiResult) Connected(a, b int) bool {
	return r.Masks[r.Plan.Sources[b]]&(1<<uint(a)) != 0
}

// Dist unpacks lane's per-vertex hop distances (-1 for unreachable),
// bit-identical to a single-source BFS from Plan.Sources[lane]. nil for
// reachability-only batches, which record no levels.
func (r *MultiResult) Dist(lane int) []int64 {
	if r.levels == nil {
		return nil
	}
	bit := int64(1) << uint(lane)
	wi := int64(lane / laneLevelsPerWord)
	sh := uint(lane%laneLevelsPerWord) * laneLevelBits
	out := make([]int64, len(r.Masks))
	for v := range r.Masks {
		if r.Masks[v]&bit == 0 {
			out[v] = -1
			continue
		}
		out[v] = int64(uint64(r.levels[int64(v)*r.laneWordsI()+wi]) >> sh & laneLevelMask)
	}
	return out
}

func (r *MultiResult) laneWordsI() int64 { return int64(r.laneWords) }

// MultiBFS runs up to 64 BFS queries as one batched engine pass and
// recovers every lane's per-vertex distances. Trailing options configure
// engine extras exactly as for BFS — including checkpointing: the lane
// assignment is pinned in the fingerprint (ckpt format v7) and the packed
// levels ride in every snapshot, so a killed batch resumes bit-identically.
func MultiBFS(g *graph.Graph, plan *batch.Plan, rec *trace.Recorder, opts ...core.Option) (*MultiResult, error) {
	return runMulti(g, plan, rec, true, opts)
}

// MultiReach runs the same batched pass without level bookkeeping —
// reachability / CC-membership queries (MultiResult.Reached, Connected)
// where per-hop distances are not needed.
func MultiReach(g *graph.Graph, plan *batch.Plan, rec *trace.Recorder, opts ...core.Option) (*MultiResult, error) {
	return runMulti(g, plan, rec, false, opts)
}

func runMulti(g *graph.Graph, plan *batch.Plan, rec *trace.Recorder, withLevels bool, opts []core.Option) (*MultiResult, error) {
	if plan == nil || plan.Occupancy() == 0 {
		return nil, fmt.Errorf("bspalg: empty batch plan")
	}
	prog := newMultiProgram(g, plan, withLevels)
	cfg := core.Config{
		Graph:    g,
		Program:  prog,
		Combiner: core.Or,
		Recorder: rec,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &MultiResult{
		Plan:            plan,
		Supersteps:      res.Supersteps,
		ActivePerStep:   res.ActivePerStep,
		MessagesPerStep: res.MessagesPerStep,
		Masks:           res.States,
		levels:          prog.levels,
		laneWords:       prog.laneWords,
	}, nil
}
