// Package bspalg implements the paper's vertex-centric BSP algorithms on
// the core engine: connected components (Algorithm 1), breadth-first
// search (Algorithm 2) and triangle counting (Algorithm 3), plus the
// natural extensions a Pregel-style framework ships with (SSSP, PageRank)
// and a streaming triangle-counting evaluator for graphs whose candidate
// messages do not fit in memory.
package bspalg

import (
	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// CCProgram is Algorithm 1: BSP connected components by minimum-label
// flooding, "as in the Shiloach-Vishkin approach". Each vertex's state is
// its component label, initially itself. On every superstep an active
// vertex adopts the smallest label among its messages and, if the label
// changed (or on superstep 0), floods it to all neighbors. Labels move one
// hop per superstep — the stale-data property that makes the BSP variant
// need at least twice the iterations of the shared-memory kernel.
type CCProgram struct{}

// InitialState implements core.Program: each vertex starts in its own
// component.
func (CCProgram) InitialState(_ *graph.Graph, v int64) int64 { return v }

// PullCapable implements core.PullProgram: CC broadcasts only via
// SendToNeighbors and at most once per vertex per superstep, so
// direction-optimizing supersteps may execute its floods as pull sweeps.
func (CCProgram) PullCapable() bool { return true }

// Compute implements core.Program.
func (CCProgram) Compute(v *core.VertexContext) {
	label := v.State()
	changed := false
	for _, m := range v.Messages() {
		if m < label {
			label = m
			changed = true
		}
	}
	if changed {
		v.SetState(label)
	}
	if v.Superstep() == 0 || changed {
		v.SendToNeighbors(label)
	}
	v.VoteToHalt()
}

// CCResult is the output of ConnectedComponents.
type CCResult struct {
	// Labels maps each vertex to its component label (the smallest vertex
	// ID in its component).
	Labels []int64
	// Supersteps is the number of supersteps until convergence.
	Supersteps int
	// ActivePerStep and MessagesPerStep expose the engine's per-superstep
	// counters (the quantities behind the paper's Figure 1 discussion).
	ActivePerStep   []int64
	MessagesPerStep []int64
}

// ConnectedComponents runs Algorithm 1 to convergence.
func ConnectedComponents(g *graph.Graph, rec *trace.Recorder, opts ...core.Option) (*CCResult, error) {
	cfg := core.Config{
		Graph:    g,
		Program:  CCProgram{},
		Recorder: rec,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &CCResult{
		Labels:          res.States,
		Supersteps:      res.Supersteps,
		ActivePerStep:   res.ActivePerStep,
		MessagesPerStep: res.MessagesPerStep,
	}, nil
}

// ConnectedComponentsCombined runs Algorithm 1 with a min-combiner, the
// Pregel optimization that collapses same-destination messages at the
// superstep boundary. Results are identical; delivered message counts
// shrink.
func ConnectedComponentsCombined(g *graph.Graph, rec *trace.Recorder, opts ...core.Option) (*CCResult, error) {
	cfg := core.Config{
		Graph:    g,
		Program:  CCProgram{},
		Combiner: core.Min,
		Recorder: rec,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &CCResult{
		Labels:          res.States,
		Supersteps:      res.Supersteps,
		ActivePerStep:   res.ActivePerStep,
		MessagesPerStep: res.MessagesPerStep,
	}, nil
}
