package bspalg

import (
	"sort"

	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// KCoreProgram is the distributed k-core decomposition of Montresor, De
// Pellegrini and Miorandi expressed as a vertex program — the natural BSP
// formulation of GraphCT's peeling kernel. Every vertex maintains a
// coreness estimate, initially its degree, and a cache of its neighbors'
// latest estimates. On each superstep a vertex whose estimate changed
// broadcasts it; receivers update their caches and recompute the h-index
// operator
//
//	est(v) = max k such that at least k cached neighbor estimates are >= k
//
// (clamped by degree). Estimates only decrease, so the computation
// converges to the exact core numbers.
//
// Messages encode (sender, estimate) as sender<<32 | estimate, which bounds
// the program to graphs with fewer than 2^31 vertices and degrees — far
// beyond anything this repository simulates.
type KCoreProgram struct {
	// cache[v][i] is the latest estimate received from Neighbors(v)[i].
	// This is the vertex's Pregel "value" beyond the int64 state slot.
	cache [][]int32
}

// NewKCoreProgram returns a program instance sized for g.
func NewKCoreProgram(g *graph.Graph) *KCoreProgram {
	n := g.NumVertices()
	p := &KCoreProgram{cache: make([][]int32, n)}
	for v := int64(0); v < n; v++ {
		nbr := g.Neighbors(v)
		c := make([]int32, len(nbr))
		for i, w := range nbr {
			c[i] = int32(g.Degree(w))
		}
		p.cache[v] = c
	}
	return p
}

// InitialState implements core.Program: the initial estimate is the degree.
func (p *KCoreProgram) InitialState(g *graph.Graph, v int64) int64 {
	return g.Degree(v)
}

// Compute implements core.Program.
func (p *KCoreProgram) Compute(v *core.VertexContext) {
	nbr := v.Neighbors()
	cache := p.cache[v.ID()]
	for _, m := range v.Messages() {
		sender := m >> 32
		est := int32(m & 0xffffffff)
		// Locate the sender in the sorted adjacency list.
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= sender })
		if i < len(nbr) && nbr[i] == sender {
			cache[i] = est
		}
		v.Charge(4, 4, 1)
	}
	est := hIndex(cache, int32(len(nbr)))
	v.Charge(int64(len(cache)), int64(len(cache)), 0)
	changed := int64(est) < v.State() || v.Superstep() == 0
	if int64(est) < v.State() {
		v.SetState(int64(est))
	}
	if changed {
		msg := v.ID()<<32 | int64(est)
		v.SendToNeighbors(msg)
	}
	v.VoteToHalt()
}

// hIndex computes max k <= cap such that at least k values are >= k, via a
// counting pass (O(d) time, O(1) extra beyond the counter array).
func hIndex(values []int32, maxK int32) int32 {
	if maxK == 0 {
		return 0
	}
	counts := make([]int32, maxK+1)
	for _, x := range values {
		if x > maxK {
			x = maxK
		}
		if x > 0 {
			counts[x]++
		}
	}
	var cum int32
	for k := maxK; k >= 1; k-- {
		cum += counts[k]
		if cum >= k {
			return k
		}
	}
	return 0
}

// KCoreResult is the output of KCore.
type KCoreResult struct {
	// Core holds each vertex's core number.
	Core []int64
	// MaxCore is the degeneracy.
	MaxCore int64
	// Supersteps until convergence.
	Supersteps int
}

// KCore runs the BSP k-core decomposition to convergence. The graph must
// have sorted adjacency.
func KCore(g *graph.Graph, rec *trace.Recorder, opts ...core.Option) (*KCoreResult, error) {
	if !g.SortedAdjacency() {
		panic("bspalg: KCore requires sorted adjacency")
	}
	cfg := core.Config{
		Graph:    g,
		Program:  NewKCoreProgram(g),
		Recorder: rec,
	}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &KCoreResult{Core: res.States, Supersteps: res.Supersteps}
	for _, c := range out.Core {
		if c > out.MaxCore {
			out.MaxCore = c
		}
	}
	return out, nil
}
