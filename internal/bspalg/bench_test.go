package bspalg

import (
	"sync"
	"testing"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
)

var (
	benchOnce sync.Once
	benchG    *graph.Graph
)

func benchRMAT(b *testing.B) *graph.Graph {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchG, err = gen.RMAT(gen.RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 1})
		if err != nil {
			panic(err)
		}
	})
	return benchG
}

func BenchmarkBSPConnectedComponents(b *testing.B) {
	g := benchRMAT(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConnectedComponents(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBSPBFS(b *testing.B) {
	g := benchRMAT(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BFS(g, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBSPTrianglesEngine(b *testing.B) {
	g := benchRMAT(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Triangles(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBSPTrianglesStreaming(b *testing.B) {
	g := benchRMAT(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StreamingTriangles(g, nil)
	}
}

func BenchmarkBSPKCore(b *testing.B) {
	g := benchRMAT(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KCore(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}
