package bspalg

import (
	"fmt"

	"graphxmt/internal/core"
	"graphxmt/internal/graph"
	"graphxmt/internal/rng"
	"graphxmt/internal/trace"
)

// BSP betweenness centrality: Brandes' algorithm expressed as two
// vertex-centric passes per source, the standard Pregel formulation.
//
// Forward pass (sigmaProgram): a level-synchronous BFS in which a vertex
// settling at level t sums the shortest-path counts (sigma) arriving from
// its level-(t-1) predecessors and floods its own sigma onward — the BSP
// model's superstep boundary IS the level synchronization, so path counts
// are exact by construction.
//
// Backward pass (deltaProgram): dependencies flow back one level per
// superstep. A vertex at level L acts at superstep (maxLevel - L): it sums
// the contributions (1+delta(w))/sigma(w) sent by its level-(L+1)
// successors, multiplies by its own sigma, and relays its own contribution
// to its predecessors. Contributions travel as fixed-point int64 messages
// (deltaScale), bounding precision; tests hold the result to the exact
// shared-memory kernel within a small relative error.
const deltaScale = 1_000_000_000

// sigmaProgram runs the forward pass. State is the vertex's BFS level
// (Unreachable until settled); sigma lives in the program (the vertex
// value beyond the engine's int64 state slot).
type sigmaProgram struct {
	source int64
	sigma  []int64
}

func (p *sigmaProgram) InitialState(_ *graph.Graph, v int64) int64 {
	if v == p.source {
		return 0
	}
	return Unreachable
}

func (p *sigmaProgram) Compute(v *core.VertexContext) {
	if v.Superstep() == 0 {
		if v.ID() == p.source {
			p.sigma[v.ID()] = 1
			v.SendToNeighbors(1)
		}
		v.VoteToHalt()
		return
	}
	if v.State() >= Unreachable {
		// First messages: settle at this level with the summed path count.
		var sum int64
		for _, m := range v.Messages() {
			sum += m
		}
		v.SetState(int64(v.Superstep()))
		p.sigma[v.ID()] = sum
		v.SendToNeighbors(sum)
	}
	// Already-settled vertices discard duplicate-frontier messages, like
	// Algorithm 2's BFS.
	v.VoteToHalt()
}

// deltaProgram runs the backward pass. dist and sigma come from the
// forward pass; delta accumulates fixed-point dependencies.
type deltaProgram struct {
	dist     []int64
	sigma    []int64
	delta    []int64 // fixed-point
	maxLevel int64
}

func (p *deltaProgram) InitialState(*graph.Graph, int64) int64 { return 0 }

func (p *deltaProgram) Compute(v *core.VertexContext) {
	d := p.dist[v.ID()]
	if d < 0 || d >= Unreachable || p.sigma[v.ID()] == 0 {
		v.VoteToHalt()
		return
	}
	myStep := p.maxLevel - d
	step := int64(v.Superstep())
	if step < myStep {
		return // stay active until our level's turn
	}
	if step > myStep {
		v.VoteToHalt() // late stray activation; nothing to do
		return
	}
	// Our turn: sum successor contributions, then relay ours upstream.
	// Messages are fixed-point (1+delta(w))/sigma(w); multiplying by our
	// sigma keeps delta in fixed point.
	var sum int64
	for _, m := range v.Messages() {
		sum += m
	}
	delta := sum * p.sigma[v.ID()]
	p.delta[v.ID()] = delta
	if d > 0 {
		contribution := (deltaScale + delta) / p.sigma[v.ID()]
		for _, w := range v.Neighbors() {
			if p.dist[w] == d-1 {
				v.Send(w, contribution)
			}
		}
		v.Charge(v.Degree(), v.Degree(), 0)
	}
	v.VoteToHalt()
}

// BetweennessOptions configures Betweenness.
type BetweennessOptions struct {
	// Samples is the number of source vertices (0 = every vertex).
	Samples int
	// Seed selects sampled sources deterministically.
	Seed uint64
}

// BetweennessResult is the output of Betweenness.
type BetweennessResult struct {
	// Score holds (approximate) betweenness per vertex, scaled like the
	// shared-memory kernel's (each pair counted in both directions;
	// sampled runs scaled by n/samples).
	Score []float64
	// Sources are the BFS roots used.
	Sources []int64
	// Supersteps is the total supersteps across all passes.
	Supersteps int
}

// Betweenness computes BSP betweenness centrality over unweighted graphs.
// Trailing engine options apply to every pass (both directions of every
// sampled source) — how callers thread retry and watchdog supervision
// through a multi-run algorithm. Checkpoint/resume options are not
// supported here: the passes share no resumable state.
func Betweenness(g *graph.Graph, opt BetweennessOptions, rec *trace.Recorder, opts ...core.Option) (*BetweennessResult, error) {
	n := g.NumVertices()
	res := &BetweennessResult{Score: make([]float64, n)}
	if n == 0 {
		return res, nil
	}
	if opt.Samples <= 0 || int64(opt.Samples) >= n {
		for s := int64(0); s < n; s++ {
			res.Sources = append(res.Sources, s)
		}
	} else {
		r := rng.New(opt.Seed)
		seen := make(map[int64]bool, opt.Samples)
		for len(res.Sources) < opt.Samples {
			s := int64(r.Uint64n(uint64(n)))
			if !seen[s] {
				seen[s] = true
				res.Sources = append(res.Sources, s)
			}
		}
	}
	scale := 1.0
	if int64(len(res.Sources)) < n {
		scale = float64(n) / float64(len(res.Sources))
	}

	sigma := make([]int64, n)
	delta := make([]int64, n)
	for _, s := range res.Sources {
		for i := range sigma {
			sigma[i], delta[i] = 0, 0
		}
		fwd := &sigmaProgram{source: s, sigma: sigma}
		fwdCfg := core.Config{Graph: g, Program: fwd, Recorder: rec}
		for _, o := range opts {
			o(&fwdCfg)
		}
		fres, err := core.Run(fwdCfg)
		if err != nil {
			return nil, fmt.Errorf("bspalg: betweenness forward pass: %w", err)
		}
		res.Supersteps += fres.Supersteps

		var maxLevel int64
		for v := int64(0); v < n; v++ {
			if d := fres.States[v]; d < Unreachable && d > maxLevel {
				maxLevel = d
			}
		}
		bwd := &deltaProgram{dist: fres.States, sigma: sigma, delta: delta, maxLevel: maxLevel}
		bwdCfg := core.Config{
			Graph:         g,
			Program:       bwd,
			Recorder:      rec,
			MaxSupersteps: int(maxLevel) + 3,
		}
		for _, o := range opts {
			o(&bwdCfg)
		}
		bres, err := core.Run(bwdCfg)
		if err != nil {
			return nil, fmt.Errorf("bspalg: betweenness backward pass: %w", err)
		}
		res.Supersteps += bres.Supersteps

		for v := int64(0); v < n; v++ {
			if v != s {
				res.Score[v] += float64(delta[v]) / deltaScale * scale
			}
		}
	}
	return res, nil
}
