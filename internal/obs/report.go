package obs

import (
	"fmt"
	"io"
	"time"

	"graphxmt/internal/metrics"
)

// Report is the in-memory aggregating sink: it folds the event stream into
// per-run, per-superstep tables and renders a human-readable run report —
// the host-side analogue of the paper's per-phase figures, but in wall
// clock instead of simulated cycles.
type Report struct {
	// MaxRows bounds the per-superstep table; longer runs elide the
	// middle. 0 selects 48.
	MaxRows int

	runs []*reportRun
	cur  *reportRun
}

type reportRun struct {
	info RunInfo
	wall time.Duration

	phaseOrder  []string
	phaseTotals map[string]time.Duration
	busyTotals  []time.Duration

	// Chunk-granularity imbalance stats per phase, folded from the spans'
	// Chunks / MaxChunk / WorkerBusy fields.
	phaseChunks map[string]int64
	phaseBusy   map[string]time.Duration
	phaseMaxCh  map[string]time.Duration

	steps   []*stepRow
	stepIdx map[int]int
	// hasDir marks that at least one superstep carried a direction
	// decision; the dir/front/unvis columns render only then, so runs
	// without the direction layer keep the legacy table shape.
	hasDir bool
	// hasRetry marks that at least one superstep was retried or stalled;
	// the retry/stall columns render only then — clean runs (supervised
	// or not) keep the legacy table shape.
	hasRetry bool
	// hasLanes marks a batched multi-source run (RunInfo.Lanes > 0); the
	// lanes column and the batch amortization footer render only then.
	hasLanes bool

	memFirst, memLast MemSample
	memPeak           uint64
	memSamples        int
}

type stepRow struct {
	step                              int
	active, sent, physical, delivered int64
	scratch                           int64
	direction                         string
	frontier, unvisited               int64
	retries                           int64
	stalled                           bool
	lanes                             int64
	hasStats                          bool
	phases                            map[string]time.Duration

	// Per-step chunk stats across the step's timed spans, for the imbal
	// column (max single chunk over mean chunk busy time).
	chunks   int64
	busy     time.Duration
	maxChunk time.Duration
}

// NewReport returns an empty report sink.
func NewReport() *Report { return &Report{} }

// RunStart implements Sink.
func (r *Report) RunStart(info RunInfo) {
	r.cur = &reportRun{
		info:        info,
		phaseTotals: map[string]time.Duration{},
		phaseChunks: map[string]int64{},
		phaseBusy:   map[string]time.Duration{},
		phaseMaxCh:  map[string]time.Duration{},
		stepIdx:     map[int]int{},
		hasLanes:    info.Lanes > 0,
	}
	r.runs = append(r.runs, r.cur)
}

func (r *reportRun) row(step int) *stepRow {
	if i, ok := r.stepIdx[step]; ok {
		return r.steps[i]
	}
	row := &stepRow{step: step, phases: map[string]time.Duration{}}
	r.stepIdx[step] = len(r.steps)
	r.steps = append(r.steps, row)
	return row
}

// Span implements Sink.
func (r *Report) Span(s Span) {
	run := r.cur
	if run == nil {
		return
	}
	if _, seen := run.phaseTotals[s.Name]; !seen {
		run.phaseOrder = append(run.phaseOrder, s.Name)
	}
	run.phaseTotals[s.Name] += s.Dur
	for len(run.busyTotals) < len(s.WorkerBusy) {
		run.busyTotals = append(run.busyTotals, 0)
	}
	var busy time.Duration
	for w, b := range s.WorkerBusy {
		run.busyTotals[w] += b
		busy += b
	}
	if s.Chunks > 0 {
		run.phaseChunks[s.Name] += s.Chunks
		run.phaseBusy[s.Name] += busy
		if s.MaxChunk > run.phaseMaxCh[s.Name] {
			run.phaseMaxCh[s.Name] = s.MaxChunk
		}
	}
	if s.Step >= 0 {
		row := run.row(s.Step)
		row.phases[s.Name] += s.Dur
		if s.Chunks > 0 {
			row.chunks += s.Chunks
			row.busy += busy
			if s.MaxChunk > row.maxChunk {
				row.maxChunk = s.MaxChunk
			}
		}
	}
}

// Step implements Sink.
func (r *Report) Step(st StepStats) {
	run := r.cur
	if run == nil {
		return
	}
	row := run.row(st.Step)
	row.active, row.sent, row.physical, row.delivered = st.Active, st.Sent, st.SentPhysical, st.Delivered
	row.scratch = st.ScratchBytes
	row.direction, row.frontier, row.unvisited = st.Direction, st.FrontierEdges, st.UnvisitedEdges
	if st.Direction != "" {
		run.hasDir = true
	}
	row.retries, row.stalled = st.Retries, st.Stalled
	if st.Retries > 0 || st.Stalled {
		run.hasRetry = true
	}
	row.lanes = st.Lanes
	row.hasStats = true
}

// Mem implements Sink.
func (r *Report) Mem(m MemSample) {
	run := r.cur
	if run == nil {
		return
	}
	if run.memSamples == 0 {
		run.memFirst = m
	}
	run.memLast = m
	if m.HeapAlloc > run.memPeak {
		run.memPeak = m.HeapAlloc
	}
	run.memSamples++
}

// RunEnd implements Sink.
func (r *Report) RunEnd(wall time.Duration) {
	if r.cur != nil {
		r.cur.wall = wall
		r.cur = nil
	}
}

// Render writes the report for every observed run.
func (r *Report) Render(w io.Writer) error {
	maxRows := r.MaxRows
	if maxRows <= 0 {
		maxRows = 48
	}
	for i, run := range r.runs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := run.render(w, maxRows); err != nil {
			return err
		}
	}
	if len(r.runs) == 0 {
		_, err := fmt.Fprintln(w, "obs: no runs observed")
		return err
	}
	return nil
}

func (r *reportRun) render(w io.Writer, maxRows int) error {
	fmt.Fprintf(w, "== run %q: %d workers", r.info.Label, r.info.Workers)
	if r.info.Vertices > 0 {
		fmt.Fprintf(w, ", %d vertices, %d edges", r.info.Vertices, r.info.Edges)
	}
	if r.info.Lanes > 0 {
		fmt.Fprintf(w, ", %d lanes", r.info.Lanes)
	}
	fmt.Fprintf(w, ", wall %s ==\n", fmtDur(r.wall))

	// Per-superstep table: counters first, then one column per phase in
	// first-seen order.
	fmt.Fprintf(w, "%6s %10s %10s %10s %10s %9s", "step", "active", "sent", "phys", "delivered", "scratch")
	if r.hasDir {
		fmt.Fprintf(w, " %4s %10s %10s", "dir", "front", "unvis")
	}
	if r.hasRetry {
		fmt.Fprintf(w, " %5s %5s", "retry", "stall")
	}
	if r.hasLanes {
		fmt.Fprintf(w, " %5s", "lanes")
	}
	fmt.Fprintf(w, " %6s", "imbal")
	for _, name := range r.phaseOrder {
		fmt.Fprintf(w, " %10s", tail(name, 10))
	}
	fmt.Fprintln(w)
	rows := r.steps
	elided := 0
	if len(rows) > maxRows {
		head := maxRows * 3 / 4
		tail := maxRows - head
		elided = len(rows) - head - tail
		printRows(w, rows[:head], r.phaseOrder, r.hasDir, r.hasRetry, r.hasLanes)
		fmt.Fprintf(w, "%6s  ... %d supersteps elided ...\n", "", elided)
		rows = rows[len(rows)-tail:]
	}
	printRows(w, rows, r.phaseOrder, r.hasDir, r.hasRetry, r.hasLanes)

	// Phase totals with share of wall time.
	fmt.Fprintf(w, "phases:")
	for _, name := range r.phaseOrder {
		d := r.phaseTotals[name]
		share := 0.0
		if r.wall > 0 {
			share = 100 * float64(d) / float64(r.wall)
		}
		fmt.Fprintf(w, "  %s %s (%.0f%%)", name, fmtDur(d), share)
	}
	fmt.Fprintln(w)

	// Load imbalance per phase: the run's longest single chunk over the
	// mean chunk busy time. 1.0x means perfectly even chunks; a large
	// factor on "compute" is the signature of a degree-skewed graph under
	// fixed vertex-count chunking (the degree-weighted schedule drives it
	// toward 1).
	if imb := r.imbalanceLine(); imb != "" {
		fmt.Fprintf(w, "chunk imbalance (max/mean):%s\n", imb)
	}

	// Superstep latency percentiles, estimated through the same log2
	// histograms the live /metrics endpoint exposes: superstep wall (the
	// engine phases; the checkpoint span is I/O, not superstep work) and
	// the deliver phase alone, the superstep-boundary cost the paper's
	// message-volume figures are about.
	if line := r.latencyLine(); line != "" {
		fmt.Fprintf(w, "latency: %s\n", line)
	}

	// Worker utilization: busy folded from par's chunk timing, divided by
	// run wall time. Low numbers on a multi-worker run mean the phases ran
	// sequential paths or the workers starved.
	if len(r.busyTotals) > 0 {
		fmt.Fprintf(w, "worker busy/wall:")
		for wkr, b := range r.busyTotals {
			util := 0.0
			if r.wall > 0 {
				util = 100 * float64(b) / float64(r.wall)
			}
			fmt.Fprintf(w, "  w%d %s (%.0f%%)", wkr, fmtDur(b), util)
		}
		fmt.Fprintln(w)
	}

	// Batch amortization: one lane-packed broadcast serves every lane
	// crossing the edge that superstep, so the per-query edge cost is the
	// run's logical sends divided by lane occupancy — the figure the MS-BFS
	// layer exists to shrink.
	if r.info.Lanes > 0 {
		var sent int64
		for _, row := range r.steps {
			sent += row.sent
		}
		fmt.Fprintf(w, "batch: %d lanes, %d lane-packed sends, %.0f amortized edge traversals/query\n",
			r.info.Lanes, sent, float64(sent)/float64(r.info.Lanes))
	}

	if r.memSamples > 0 {
		gcs := r.memLast.NumGC - r.memFirst.NumGC
		pause := r.memLast.PauseTotal - r.memFirst.PauseTotal
		fmt.Fprintf(w, "mem: heap %s -> %s (peak %s), %d GCs, %s pause",
			fmtBytes(r.memFirst.HeapAlloc), fmtBytes(r.memLast.HeapAlloc),
			fmtBytes(r.memPeak), gcs, fmtDur(pause))
		// Peak RSS covers what heap figures miss — mmap'd graph sections
		// under the zero-copy CSR2 load path. Zero when procfs is absent.
		if r.memLast.VmHWM > 0 {
			fmt.Fprintf(w, ", rss peak %s", fmtBytes(r.memLast.VmHWM))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func printRows(w io.Writer, rows []*stepRow, phaseOrder []string, hasDir, hasRetry, hasLanes bool) {
	for _, row := range rows {
		if row.hasStats {
			fmt.Fprintf(w, "%6d %10d %10d %10d %10d %9s", row.step, row.active, row.sent, row.physical, row.delivered, fmtBytes(uint64(row.scratch)))
		} else {
			fmt.Fprintf(w, "%6d %10s %10s %10s %10s %9s", row.step, "-", "-", "-", "-", "-")
		}
		if hasDir {
			if row.direction != "" {
				fmt.Fprintf(w, " %4s %10d %10d", row.direction, row.frontier, row.unvisited)
			} else {
				fmt.Fprintf(w, " %4s %10s %10s", "-", "-", "-")
			}
		}
		if hasRetry {
			stall := "-"
			if row.stalled {
				stall = "yes"
			}
			fmt.Fprintf(w, " %5d %5s", row.retries, stall)
		}
		if hasLanes {
			if row.hasStats {
				fmt.Fprintf(w, " %5d", row.lanes)
			} else {
				fmt.Fprintf(w, " %5s", "-")
			}
		}
		fmt.Fprintf(w, " %6s", fmtImbalance(row.chunks, row.busy, row.maxChunk))
		for _, name := range phaseOrder {
			if d, ok := row.phases[name]; ok {
				fmt.Fprintf(w, " %10s", fmtDur(d))
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// latencyLine renders run-level p50/p90/p99 for superstep wall and the
// deliver phase, or "" when no superstep carried phase timing. The
// estimates go through metrics.Histogram (log2 buckets, interpolated), so
// the report footer and a /metrics scrape of the same run quote the same
// numbers.
func (r *reportRun) latencyLine() string {
	stepWall := metrics.NewHistogram(metrics.DurationBounds)
	deliver := metrics.NewHistogram(metrics.DurationBounds)
	for _, row := range r.steps {
		if row.step < 0 {
			continue
		}
		var wall time.Duration
		for name, d := range row.phases {
			if name == "checkpoint" {
				continue
			}
			wall += d
		}
		if wall > 0 {
			stepWall.Observe(wall.Microseconds())
		}
		if d, ok := row.phases["deliver"]; ok {
			deliver.Observe(d.Microseconds())
		}
	}
	out := ""
	for _, h := range []struct {
		name string
		hist *metrics.Histogram
	}{{"superstep", stepWall}, {"deliver", deliver}} {
		if h.hist.Count() == 0 {
			continue
		}
		out += fmt.Sprintf("  %s p50/p90/p99 %s/%s/%s", h.name,
			fmtDur(time.Duration(h.hist.Quantile(0.5))*time.Microsecond),
			fmtDur(time.Duration(h.hist.Quantile(0.9))*time.Microsecond),
			fmtDur(time.Duration(h.hist.Quantile(0.99))*time.Microsecond))
	}
	return out
}

// imbalanceLine renders the per-phase max/mean chunk factors in phase
// order, or "" when no chunk timing was collected.
func (r *reportRun) imbalanceLine() string {
	out := ""
	for _, name := range r.phaseOrder {
		n := r.phaseChunks[name]
		if n == 0 {
			continue
		}
		out += fmt.Sprintf("  %s %s (%d chunks, max %s)",
			name, fmtImbalance(n, r.phaseBusy[name], r.phaseMaxCh[name]), n, fmtDur(r.phaseMaxCh[name]))
	}
	return out
}

// fmtImbalance renders max-chunk over mean-chunk as "N.Nx", or "-" when no
// chunks were timed or the mean rounds to zero.
func fmtImbalance(chunks int64, busy, maxChunk time.Duration) string {
	if chunks == 0 || busy <= 0 {
		return "-"
	}
	mean := float64(busy) / float64(chunks)
	if mean <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(maxChunk)/mean)
}

// tail truncates s to its last n runes (phase names share long prefixes).
func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

// fmtDur renders a duration with ~3 significant digits.
func fmtDur(d time.Duration) string {
	switch {
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Nanoseconds())/1e3)
	case d < 10*time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
