package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome exports the event stream in the Chrome trace-event format (JSON
// object form, "traceEvents" array of duration/counter/metadata events) —
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. The layout:
//
//   - tid 0 ("engine") carries one complete ("X") event per superstep
//     phase, plus counter tracks for active vertices / messages / heap.
//   - tid w+1 ("worker w") carries one complete event per phase whose
//     duration is that worker's busy time within the phase — one track
//     per host worker, so a starved worker is visible as a short bar
//     against the engine's full-phase bar above it.
//
// Timestamps are microseconds on a single process clock, so consecutive
// runs (e.g. graphct kernel workflows) land on one shared timeline.
type Chrome struct {
	bw      *bufio.Writer
	base    time.Time
	runBase time.Duration
	label   string

	headerDone bool
	first      bool
	threads    int // worker tracks emitted so far
	err        error
}

// NewChrome returns a sink writing to w. Call Close to finish the JSON.
func NewChrome(w io.Writer) *Chrome {
	return &Chrome{bw: bufio.NewWriter(w), base: time.Now(), first: true}
}

// chromeEvent is one trace event. dur is always emitted — a zero-duration
// busy span means "this worker was idle for the whole phase", which must
// stay distinguishable from a malformed event with no duration at all.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func (c *Chrome) emit(ev chromeEvent) {
	if c.err != nil {
		return
	}
	if !c.headerDone {
		if _, c.err = c.bw.WriteString(`{"traceEvents":[` + "\n"); c.err != nil {
			return
		}
		c.headerDone = true
	}
	if !c.first {
		if _, c.err = c.bw.WriteString(",\n"); c.err != nil {
			return
		}
	}
	c.first = false
	b, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	_, c.err = c.bw.Write(b)
}

func (c *Chrome) meta(tid int, key, name string) {
	c.emit(chromeEvent{Name: key, Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": name}})
	c.emit(chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"sort_index": tid}})
}

// RunStart implements Sink.
func (c *Chrome) RunStart(info RunInfo) {
	c.runBase = time.Since(c.base)
	c.label = info.Label
	if c.threads == 0 {
		c.emit(chromeEvent{Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
			Args: map[string]any{"name": "graphxmt"}})
		c.meta(0, "thread_name", "engine")
	}
	for c.threads < info.Workers {
		c.meta(c.threads+1, "thread_name", fmt.Sprintf("worker %d", c.threads))
		c.threads++
	}
	c.emit(chromeEvent{Name: "run:" + info.Label, Ph: "i", Ts: us(c.runBase),
		Pid: 1, Tid: 0, Args: map[string]any{
			"workers": info.Workers, "vertices": info.Vertices, "edges": info.Edges,
		}})
}

// Span implements Sink.
func (c *Chrome) Span(s Span) {
	ts := us(c.runBase + s.Start)
	c.emit(chromeEvent{Name: s.Name, Ph: "X", Cat: "phase", Ts: ts,
		Dur: us(s.Dur), Pid: 1, Tid: 0,
		Args: map[string]any{"step": s.Step, "run": c.label}})
	for w, b := range s.WorkerBusy {
		c.emit(chromeEvent{Name: s.Name, Ph: "X", Cat: "busy", Ts: ts,
			Dur: us(b), Pid: 1, Tid: w + 1,
			Args: map[string]any{"step": s.Step}})
	}
}

// Step implements Sink.
func (c *Chrome) Step(st StepStats) {
	// Counters are stamped at emission time (end of the superstep).
	now := us(time.Since(c.base))
	c.emit(chromeEvent{Name: "superstep", Ph: "C", Ts: now, Pid: 1, Tid: 0,
		Args: map[string]any{"active": st.Active, "sent": st.Sent, "delivered": st.Delivered}})
	c.emit(chromeEvent{Name: "scratch_bytes", Ph: "C", Ts: now, Pid: 1, Tid: 0,
		Args: map[string]any{"bytes": st.ScratchBytes}})
}

// Mem implements Sink.
func (c *Chrome) Mem(m MemSample) {
	now := us(c.runBase + m.At)
	c.emit(chromeEvent{Name: "heap", Ph: "C", Ts: now, Pid: 1, Tid: 0,
		Args: map[string]any{"alloc": m.HeapAlloc, "sys": m.HeapSys}})
}

// RunEnd implements Sink.
func (c *Chrome) RunEnd(wall time.Duration) {
	c.emit(chromeEvent{Name: "run_end:" + c.label, Ph: "i",
		Ts: us(c.runBase + wall), Pid: 1, Tid: 0})
}

// Close terminates the traceEvents array and flushes.
func (c *Chrome) Close() error {
	if c.err == nil && !c.headerDone {
		// No events at all: still produce a valid, empty trace.
		_, c.err = c.bw.WriteString(`{"traceEvents":[`)
		c.headerDone = true
	}
	if c.err == nil {
		_, c.err = c.bw.WriteString("\n]," + `"displayTimeUnit":"ms"}` + "\n")
	}
	if err := c.bw.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}

// ValidateChromeTrace checks that r holds a structurally valid trace-event
// file as emitted by Chrome: a traceEvents array whose complete events
// carry name/ts/dur/pid/tid, whose tids are all named by thread_name
// metadata, with an engine track of non-overlapping phase spans and one
// named track per worker, each carrying at least one span. It is the
// schema check CI runs against a bspgraph-produced trace.
func ValidateChromeTrace(r io.Reader) error {
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(file.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}

	threadNames := map[int]string{}
	type span struct{ ts, dur float64 }
	var engine []span
	spansPerTid := map[int]int{}
	for i, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" && ev.Tid != nil {
				name, _ := ev.Args["name"].(string)
				threadNames[*ev.Tid] = name
			}
		case "X":
			if ev.Name == "" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
				return fmt.Errorf("obs: event %d: complete event missing name/ts/dur/pid/tid", i)
			}
			if *ev.Dur < 0 {
				return fmt.Errorf("obs: event %d: negative duration", i)
			}
			spansPerTid[*ev.Tid]++
			if *ev.Tid == 0 {
				if _, ok := ev.Args["step"]; !ok {
					return fmt.Errorf("obs: event %d: engine span %q has no step arg", i, ev.Name)
				}
				engine = append(engine, span{*ev.Ts, *ev.Dur})
			}
		case "C", "i", "I":
			if ev.Ts == nil {
				return fmt.Errorf("obs: event %d: %q event missing ts", i, ev.Ph)
			}
		case "":
			return fmt.Errorf("obs: event %d: missing ph", i)
		}
	}

	if threadNames[0] != "engine" {
		return fmt.Errorf("obs: no engine track (tid 0 thread_name)")
	}
	workers := 0
	for tid, name := range threadNames {
		if tid == 0 {
			continue
		}
		want := fmt.Sprintf("worker %d", tid-1)
		if name != want {
			return fmt.Errorf("obs: tid %d named %q, want %q", tid, name, want)
		}
		workers++
	}
	if workers == 0 {
		return fmt.Errorf("obs: no worker tracks")
	}
	for tid := 1; tid <= workers; tid++ {
		if _, ok := threadNames[tid]; !ok {
			return fmt.Errorf("obs: worker tids not contiguous: missing tid %d", tid)
		}
		if spansPerTid[tid] == 0 {
			return fmt.Errorf("obs: worker track tid %d has no spans", tid)
		}
	}
	for tid := range spansPerTid {
		if _, ok := threadNames[tid]; !ok {
			return fmt.Errorf("obs: spans on unnamed tid %d", tid)
		}
	}
	if len(engine) == 0 {
		return fmt.Errorf("obs: engine track has no phase spans")
	}
	// Engine phases execute sequentially, so their spans must not overlap.
	sort.Slice(engine, func(a, b int) bool { return engine[a].ts < engine[b].ts })
	const epsilon = 1.0 // µs of timer slop
	for i := 1; i < len(engine); i++ {
		if engine[i].ts+epsilon < engine[i-1].ts+engine[i-1].dur {
			return fmt.Errorf("obs: engine spans overlap at ts=%.1fµs", engine[i].ts)
		}
	}
	return nil
}
