package obs

import (
	"strings"
	"time"

	"graphxmt/internal/par"
)

// RecorderObserver adapts a Sink into a trace.PhaseObserver: attached to a
// trace.Recorder (Recorder.SetObserver), it converts the recorder's phase
// stream into wall-clock spans — a phase's span runs from its StartPhase
// call to the next one, or to Finish. This instruments the shared-memory
// GraphCT kernels' top-level phases ("cc/iter", "bfs/level", ...) without
// touching a single kernel signature, and cross-links each span to the
// trace phase it profiles by name and index.
//
// Phases named "bsp/..." are skipped: the BSP engine discovers the sink
// through the observer (SinkProvider) and emits its own, finer-grained
// spans (compute/terminate/deliver/worklist per superstep) directly.
//
// The observer is lazy: RunStart is emitted on the first non-bsp phase
// (labelled by the phase name's prefix up to the first '/'), and a
// par.WorkerTimer is installed then so kernel spans carry per-worker busy
// time. Finish flushes the open span, emits RunEnd, and restores the
// previous timer; a CLI session (see cli.go) finishes its observers
// automatically on Close.
type RecorderObserver struct {
	sink      Sink
	vertices  int64
	edges     int64
	started   bool
	finished  bool
	runStart  time.Time
	timer     *par.WorkerTimer
	prevTimer *par.WorkerTimer
	workers   int

	open     bool
	curName  string
	curIndex int
	curT0    time.Time
}

// NewRecorderObserver returns an observer feeding sink. vertices/edges
// describe the input graph when known (zero otherwise); they only annotate
// RunInfo.
func NewRecorderObserver(sink Sink, vertices, edges int64) *RecorderObserver {
	return &RecorderObserver{sink: sink, vertices: vertices, edges: edges}
}

// ObsSink implements SinkProvider, handing the BSP engine the sink behind
// this observer.
func (o *RecorderObserver) ObsSink() Sink { return o.sink }

// PhaseStarted implements trace.PhaseObserver.
func (o *RecorderObserver) PhaseStarted(name string, index int) {
	if o.finished || strings.HasPrefix(name, "bsp/") {
		return
	}
	now := time.Now()
	if !o.started {
		o.started = true
		o.runStart = now
		o.workers = par.Workers()
		o.timer = par.NewWorkerTimer(o.workers)
		o.prevTimer = par.SetTimer(o.timer)
		label := name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			label = name[:i]
		}
		o.sink.RunStart(RunInfo{
			Label:    label,
			Workers:  o.workers,
			Vertices: o.vertices,
			Edges:    o.edges,
		})
	}
	o.flushSpan(now)
	o.curName, o.curIndex, o.curT0, o.open = name, index, now, true
}

func (o *RecorderObserver) flushSpan(now time.Time) {
	if !o.open {
		return
	}
	busy := make([]time.Duration, o.workers)
	o.timer.Drain(busy)
	o.sink.Span(Span{
		Name:       o.curName,
		Step:       o.curIndex,
		Start:      o.curT0.Sub(o.runStart),
		Dur:        now.Sub(o.curT0),
		WorkerBusy: busy,
	})
	o.open = false
}

// Finish closes the open span (if any), emits RunEnd, and restores the
// previously installed worker timer. Idempotent; a never-started observer
// finishes silently.
func (o *RecorderObserver) Finish() {
	if o.finished {
		return
	}
	o.finished = true
	if !o.started {
		return
	}
	now := time.Now()
	o.flushSpan(now)
	par.SetTimer(o.prevTimer)
	o.sink.RunEnd(now.Sub(o.runStart))
}
