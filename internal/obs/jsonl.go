package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"time"
)

// JSONL streams events as line-delimited JSON, one object per event, with
// an "ev" discriminator — the machine-readable export for ad-hoc tooling
// (jq, pandas). Durations are microseconds (floats); byte counts are raw.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing to w. Call Close to flush.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func (j *JSONL) emit(v any) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(v)
}

// RunStart implements Sink.
func (j *JSONL) RunStart(info RunInfo) {
	j.emit(struct {
		Ev       string `json:"ev"`
		Label    string `json:"label"`
		Workers  int    `json:"workers"`
		Vertices int64  `json:"vertices,omitempty"`
		Edges    int64  `json:"edges,omitempty"`
		Lanes    int    `json:"lanes,omitempty"`
	}{"run_start", info.Label, info.Workers, info.Vertices, info.Edges, info.Lanes})
}

// Span implements Sink.
func (j *JSONL) Span(s Span) {
	var busy []float64
	if len(s.WorkerBusy) > 0 {
		busy = make([]float64, len(s.WorkerBusy))
		for i, b := range s.WorkerBusy {
			busy[i] = us(b)
		}
	}
	j.emit(struct {
		Ev         string    `json:"ev"`
		Name       string    `json:"name"`
		Step       int       `json:"step"`
		StartUs    float64   `json:"start_us"`
		DurUs      float64   `json:"dur_us"`
		BusyUs     []float64 `json:"worker_busy_us,omitempty"`
		Chunks     int64     `json:"chunks,omitempty"`
		MaxChunkUs float64   `json:"max_chunk_us,omitempty"`
	}{"span", s.Name, s.Step, us(s.Start), us(s.Dur), busy, s.Chunks, us(s.MaxChunk)})
}

// Step implements Sink.
func (j *JSONL) Step(st StepStats) {
	j.emit(struct {
		Ev        string `json:"ev"`
		Step      int    `json:"step"`
		Active    int64  `json:"active"`
		Sent      int64  `json:"sent"`
		Physical  int64  `json:"msgs_physical"`
		Deliver   int64  `json:"delivered"`
		Received  int64  `json:"received"`
		Scratch   int64  `json:"scratch_bytes"`
		Direction string `json:"direction,omitempty"`
		Frontier  int64  `json:"frontier_edges,omitempty"`
		Unvisited int64  `json:"unvisited_edges,omitempty"`
		Retries   int64  `json:"retries,omitempty"`
		Stalled   bool   `json:"stalled,omitempty"`
		Lanes     int64  `json:"lanes,omitempty"`
	}{"step", st.Step, st.Active, st.Sent, st.SentPhysical, st.Delivered, st.Received, st.ScratchBytes,
		st.Direction, st.FrontierEdges, st.UnvisitedEdges, st.Retries, st.Stalled, st.Lanes})
}

// NoteFallback implements FallbackNoter: each damaged checkpoint the
// resume fallback chain skips becomes a "ckpt_fallback" event.
func (j *JSONL) NoteFallback(path string, cause error) {
	j.emit(struct {
		Ev    string `json:"ev"`
		Path  string `json:"path"`
		Cause string `json:"cause"`
	}{"ckpt_fallback", path, cause.Error()})
}

// Mem implements Sink.
func (j *JSONL) Mem(m MemSample) {
	j.emit(struct {
		Ev        string  `json:"ev"`
		Step      int     `json:"step"`
		AtUs      float64 `json:"at_us"`
		HeapAlloc uint64  `json:"heap_alloc"`
		HeapSys   uint64  `json:"heap_sys"`
		NumGC     uint32  `json:"num_gc"`
		PauseUs   float64 `json:"gc_pause_us"`
	}{"mem", m.Step, us(m.At), m.HeapAlloc, m.HeapSys, m.NumGC, us(m.PauseTotal)})
}

// RunEnd implements Sink.
func (j *JSONL) RunEnd(wall time.Duration) {
	j.emit(struct {
		Ev     string  `json:"ev"`
		WallUs float64 `json:"wall_us"`
	}{"run_end", us(wall)})
}

// Close flushes buffered events and reports the first write error.
func (j *JSONL) Close() error {
	if err := j.bw.Flush(); j.err == nil {
		j.err = err
	}
	return j.err
}
