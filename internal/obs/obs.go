// Package obs is the host-runtime observability layer: where package trace
// records the *simulated* Cray XMT cost of a kernel, obs records what the
// host actually did while executing it — wall-clock spans for every engine
// phase of every superstep, per-worker busy time folded from package par's
// chunk-level timing, per-superstep counters, and sampled runtime.MemStats.
// It exists to answer the questions the simulated profile cannot: where
// does host wall-clock time go as the frontier grows and shrinks, and why
// is w=8 not 8x faster than w=1.
//
// Producers emit events into a Sink; three sinks are provided:
//
//   - Report: an in-memory aggregator that renders a human-readable run
//     report (per-superstep phase table + worker-utilization summary — the
//     host-side analogue of the paper's Figures 1-2).
//   - JSONL: a line-delimited JSON event stream for ad-hoc tooling.
//   - Chrome: a Chrome trace-event file (load it in Perfetto or
//     chrome://tracing) with one track per host worker.
//
// A nil Sink disables observability at zero hot-path cost: producers guard
// every hook on a single pointer and allocate nothing when it is nil.
// Observability never changes results — spans and counters are derived
// from values the engine computes anyway, and the par.WorkerTimer only
// measures, so a run's Result and recorded XMT profile are bit-identical
// with or without a sink attached (asserted by core's determinism tests).
//
// Sink methods are invoked from the observed kernel's driving goroutine
// only — never from par workers — so sinks need no internal locking, but
// they must copy any slice they retain (Span.WorkerBusy is reused).
package obs

import "time"

// RunInfo opens one observed run (one BSP execution or one shared-memory
// kernel invocation).
type RunInfo struct {
	// Label names the run: "bsp" for engine runs, the kernel's phase-name
	// prefix ("cc", "bfs", ...) for recorder-derived kernel runs.
	Label string
	// Workers is the host worker count (par.Workers()) for the run.
	Workers int
	// Vertices and Edges describe the input graph; zero when unknown.
	Vertices, Edges int64
	// Lanes is the batched run's lane occupancy — how many of the
	// per-vertex mask's 64 bit lanes carry a query (core.LaneProgram);
	// zero for unbatched runs.
	Lanes int
}

// Span is one wall-clock phase of one superstep (or kernel iteration).
type Span struct {
	// Name is the phase name. The BSP engine emits "init", "compute",
	// "terminate", "deliver" and "worklist" (see core.EnginePhases);
	// recorder-derived kernel spans carry the trace phase name ("cc/iter",
	// "bfs/level", ...), cross-linking the span to the recorded profile.
	Name string
	// Step is the superstep / iteration index; -1 for run-level spans.
	Step int
	// Start is the span's start, relative to the run's start.
	Start time.Duration
	// Dur is the span's wall-clock duration.
	Dur time.Duration
	// WorkerBusy holds each worker's busy time within the span, folded
	// from par's chunk-level timing. Busy far below Dur on a parallel
	// phase means the workers were starved (or the phase ran its
	// sequential path). Nil when no per-worker timing was collected; only
	// valid during the Span call — sinks must copy to retain.
	WorkerBusy []time.Duration
	// Chunks is the number of timed chunks the span's parallel loops ran;
	// zero when no chunk timing was collected.
	Chunks int64
	// MaxChunk is the longest single timed chunk within the span. The
	// load-imbalance factor MaxChunk / (busy total / Chunks) — max over
	// mean chunk time — is what degree-weighted sweep chunking drives
	// toward 1 on skewed graphs.
	MaxChunk time.Duration
}

// StepStats are one superstep's counters, emitted once per superstep after
// its phases.
type StepStats struct {
	Step int
	// Active is the number of vertices that ran Compute.
	Active int64
	// Sent is the number of logical messages sent (before combining): one
	// per edge for a broadcast, the paper-fidelity count the cost model
	// charges.
	Sent int64
	// SentPhysical is the number of physically materialized outgoing
	// records: per-edge messages plus one record per broadcast the engine
	// kept in record form. Equal to Sent when every send was per-edge;
	// O(frontier) instead of O(edges) on broadcast-heavy supersteps.
	SentPhysical int64
	// Delivered is the number of messages delivered into inboxes (after
	// combining); zero on the terminal superstep, which delivers nothing.
	Delivered int64
	// Received is the number of messages consumed from inboxes.
	Received int64
	// ScratchBytes approximates the engine's reusable scratch footprint
	// (send buffers, inbox CSR, delivery counters, worklists).
	ScratchBytes int64
	// Direction is the superstep's push/pull decision ("push" or "pull")
	// when the engine's direction layer is active; empty otherwise.
	Direction string
	// FrontierEdges is the broadcast-incident-edge count the direction
	// heuristic compared (logical messages minus unicasts); UnvisitedEdges
	// is the incident-edge count of not-yet-visited vertices. Both zero
	// when Direction is empty.
	FrontierEdges  int64
	UnvisitedEdges int64
	// Retries is the number of times the superstep was re-executed after a
	// trapped fault (core.Config.MaxRetries); zero on a clean superstep or
	// when retry is disabled. Stalled reports that the superstep outlived
	// the watchdog deadline (core.Config.StepTimeout) — it completed, but
	// the run will end with a TimeoutError at this boundary unless the
	// superstep was terminal.
	Retries int64
	Stalled bool
	// Lanes is the number of bit lanes active in the superstep's outgoing
	// traffic (popcount of the OR of every payload) for batched
	// multi-source runs; zero for unbatched runs and for supersteps that
	// sent nothing. A pure function of the logical traffic — identical at
	// any worker count and under either broadcast treatment.
	Lanes int64
}

// MemSample is a sampled runtime.MemStats snapshot.
type MemSample struct {
	// Step is the superstep at which the sample was taken.
	Step int
	// At is the sample time relative to the run's start.
	At time.Duration
	// HeapAlloc and HeapSys are bytes of allocated and OS-reserved heap.
	HeapAlloc, HeapSys uint64
	// NumGC is the cumulative collection count.
	NumGC uint32
	// PauseTotal is the cumulative stop-the-world pause time.
	PauseTotal time.Duration
	// VmHWM is the process peak resident set size in bytes, read from
	// /proc/self/status. Zero where the kernel does not expose it — the
	// report omits the figure rather than print a lie.
	VmHWM uint64
}

// Sink receives one run's observability events: RunStart, then any mix of
// Span / Step / Mem, then RunEnd. Sinks may observe several runs in
// sequence (one per kernel, or one per BSP execution inside a composite
// algorithm like betweenness).
type Sink interface {
	RunStart(RunInfo)
	Span(Span)
	Step(StepStats)
	Mem(MemSample)
	RunEnd(wall time.Duration)
}

// SinkProvider is implemented by recorder observers that carry a Sink; the
// BSP engine uses it to discover the sink attached to its trace.Recorder
// when Config.Obs is nil, so CLIs can attach observability once without
// threading it through every algorithm wrapper.
type SinkProvider interface {
	ObsSink() Sink
}
