package obs

import "time"

// TeeSink fans one observability event stream out to several sinks, in
// order — how a CLI attaches a post-hoc sink (report/JSONL/chrome), the
// live metrics sink, and a flight recorder to the same run without the
// engine knowing about any of them. Construct with Tee.
type TeeSink struct{ sinks []Sink }

// Tee composes sinks into one. Nil sinks are dropped and nested tees are
// flattened; zero remaining sinks return nil (the engine's disabled state)
// and a single remaining sink is returned unwrapped, so the hot path never
// pays for indirection it doesn't need.
func Tee(sinks ...Sink) Sink {
	out := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		switch t := s.(type) {
		case nil:
			continue
		case *TeeSink:
			out = append(out, t.sinks...)
		default:
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return &TeeSink{sinks: out}
}

// Sinks returns the composed sinks in delivery order.
func (t *TeeSink) Sinks() []Sink { return t.sinks }

// RunStart implements Sink.
func (t *TeeSink) RunStart(info RunInfo) {
	for _, s := range t.sinks {
		s.RunStart(info)
	}
}

// Span implements Sink.
func (t *TeeSink) Span(sp Span) {
	for _, s := range t.sinks {
		s.Span(sp)
	}
}

// Step implements Sink.
func (t *TeeSink) Step(st StepStats) {
	for _, s := range t.sinks {
		s.Step(st)
	}
}

// Mem implements Sink.
func (t *TeeSink) Mem(m MemSample) {
	for _, s := range t.sinks {
		s.Mem(m)
	}
}

// RunEnd implements Sink.
func (t *TeeSink) RunEnd(wall time.Duration) {
	for _, s := range t.sinks {
		s.RunEnd(wall)
	}
}

// FlightDumper is implemented by sinks that keep a crash-time ring of
// recent supersteps (the flight recorder in obs/live). DumpFlight writes
// the ring as JSONL into dir, annotated with cause, and returns the file
// path. The BSP engine invokes it when a vertex-program panic forces an
// emergency checkpoint, so the dump lands next to the checkpoint.
type FlightDumper interface {
	DumpFlight(dir, cause string) (string, error)
}

// FindFlightDumper returns the first FlightDumper reachable from s —
// s itself, or a member of a TeeSink — or nil.
func FindFlightDumper(s Sink) FlightDumper {
	if fd, ok := s.(FlightDumper); ok {
		return fd
	}
	if t, ok := s.(*TeeSink); ok {
		for _, inner := range t.sinks {
			if fd, ok := inner.(FlightDumper); ok {
				return fd
			}
		}
	}
	return nil
}

// FallbackNoter is implemented by sinks that want to hear about checkpoint
// fallback: each time the resume chain (ckpt.ResumeLatestValid, wired
// through core.Config.ResumeLatest) skips a damaged snapshot, NoteFallback
// receives the skipped file's path and the validation error. Invoked
// before RunStart, once per skipped checkpoint.
type FallbackNoter interface {
	NoteFallback(path string, cause error)
}

// FindFallbackNoter returns a FallbackNoter covering every sink reachable
// from s — s itself, or the members of a TeeSink — or nil when none
// implement the interface.
func FindFallbackNoter(s Sink) FallbackNoter {
	if t, ok := s.(*TeeSink); ok {
		var out []FallbackNoter
		for _, inner := range t.sinks {
			if fn, ok := inner.(FallbackNoter); ok {
				out = append(out, fn)
			}
		}
		switch len(out) {
		case 0:
			return nil
		case 1:
			return out[0]
		}
		return multiNoter(out)
	}
	if fn, ok := s.(FallbackNoter); ok {
		return fn
	}
	return nil
}

type multiNoter []FallbackNoter

func (m multiNoter) NoteFallback(path string, cause error) {
	for _, fn := range m {
		fn.NoteFallback(path, cause)
	}
}
