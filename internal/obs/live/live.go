// Package live is the in-process introspection layer over the obs event
// stream: a metrics-fed HTTP endpoint and a crash-time flight recorder.
// Where the sinks in package obs are post-hoc (report at run end, JSONL
// for offline tooling), live answers "what is this run doing *right now*"
// — scrape /metrics mid-run, GET /runs/current for the superstep the
// engine is on, attach a profiler through the standard pprof mux — and
// "what was it doing when it died" — the flight recorder's last-N-steps
// ring dumped next to the emergency checkpoint.
//
// A Server composes three sinks behind one obs.Tee (Server.Sink): the
// obs.Metrics registry feeder, a run log for the JSON endpoints, and a
// FlightRecorder. Attach that sink to a run (obs.Session.AddSink, or
// core.Config.Obs directly) and start the listener; the endpoints are:
//
//	/metrics       Prometheus text exposition (format 0.0.4, no client lib)
//	/runs          JSON: the last runs observed, per-step detail included
//	/runs/current  JSON: the in-flight run (404 when none was observed yet)
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Like every sink, the composed sink is fed from the observed run's driving
// goroutine; the HTTP handlers read concurrently through atomics (metrics)
// and a mutex (run log), and observability still never changes results —
// the determinism matrix runs with a live Server attached.
package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"graphxmt/internal/metrics"
	"graphxmt/internal/obs"
)

// maxRuns bounds the run log; the oldest run is evicted first.
const maxRuns = 16

// maxStepsPerRun bounds per-run step detail; beyond it only counters and
// the latest superstep advance (TruncatedSteps counts what was dropped).
const maxStepsPerRun = 4096

// Server is the live introspection endpoint. Construct with NewServer,
// attach Sink() to the runs to observe, then Start (or mount Handler on an
// existing mux).
type Server struct {
	metrics *obs.Metrics
	runs    *runLog
	flight  *FlightRecorder
	sink    obs.Sink

	mu sync.Mutex
	ln net.Listener
	hs *http.Server
}

// NewServer returns a server feeding reg (nil creates a fresh registry)
// with a flight ring of flightDepth supersteps (<= 0 selects
// DefaultFlightDepth).
func NewServer(reg *metrics.Registry, flightDepth int) *Server {
	s := &Server{
		metrics: obs.NewMetrics(reg),
		runs:    &runLog{},
		flight:  NewFlightRecorder(flightDepth),
	}
	s.sink = obs.Tee(s.metrics, s.runs, s.flight)
	return s
}

// Sink returns the sink to attach to observed runs: metrics registry, run
// log, and flight recorder behind one tee. The tee also makes the server
// discoverable by the engine's flight-dump hook (obs.FindFlightDumper).
func (s *Server) Sink() obs.Sink { return s.sink }

// Registry returns the metrics registry the server scrapes.
func (s *Server) Registry() *metrics.Registry { return s.metrics.Registry() }

// Flight returns the server's flight recorder (for SIGQUIT handlers).
func (s *Server) Flight() *FlightRecorder { return s.flight }

// Handler returns the introspection mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/runs/current", s.handleCurrent)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (host:port; ":0" picks a free port — read it back
// with Addr) and serves the introspection mux until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("live: %w", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.hs = ln, hs
	s.mu.Unlock()
	go hs.Serve(ln) // Serve returns ErrServerClosed after Close
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. Safe before Start and after a prior Close.
func (s *Server) Close() error {
	s.mu.Lock()
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ExpositionContentType)
	s.metrics.Registry().WritePrometheus(w)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Runs []runJSON `json:"runs"`
	}{s.runs.snapshot()})
}

func (s *Server) handleCurrent(w http.ResponseWriter, r *http.Request) {
	runs := s.runs.snapshot()
	if len(runs) == 0 {
		http.Error(w, `{"error":"no run observed yet"}`, http.StatusNotFound)
		return
	}
	writeJSON(w, runs[len(runs)-1])
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runLog is the sink behind /runs: a bounded log of observed runs with
// per-superstep detail. It locks internally because HTTP reads race the
// driving goroutine's writes.
type runLog struct {
	mu   sync.Mutex
	runs []*runState
}

type runState struct {
	label     string
	workers   int
	vertices  int64
	edges     int64
	started   time.Time
	steps     []stepJSON
	truncated int
	lastStep  int
	lastCkpt  time.Time // zero = no checkpoint observed
	retries   int64
	stalls    int64
	done      bool
	wall      time.Duration
}

// runJSON is the wire schema of one run (docs/OBSERVABILITY.md).
type runJSON struct {
	Label     string     `json:"label"`
	Workers   int        `json:"workers"`
	Vertices  int64      `json:"vertices,omitempty"`
	Edges     int64      `json:"edges,omitempty"`
	Superstep int        `json:"superstep"`
	Done      bool       `json:"done"`
	WallUs    float64    `json:"wall_us,omitempty"`
	AgeUs     float64    `json:"age_us"`
	CkptAgeUs float64    `json:"last_checkpoint_age_us,omitempty"`
	Truncated int        `json:"truncated_steps,omitempty"`
	Retries   int64      `json:"retries,omitempty"`
	Stalls    int64      `json:"stalls,omitempty"`
	Steps     []stepJSON `json:"steps"`
}

type stepJSON struct {
	Step      int    `json:"step"`
	Active    int64  `json:"active"`
	Sent      int64  `json:"sent"`
	Physical  int64  `json:"msgs_physical"`
	Direction string `json:"direction,omitempty"`
	Frontier  int64  `json:"frontier_edges,omitempty"`
	Unvisited int64  `json:"unvisited_edges,omitempty"`
	Retries   int64  `json:"retries,omitempty"`
	Stalled   bool   `json:"stalled,omitempty"`
}

// RunStart implements obs.Sink.
func (l *runLog) RunStart(info obs.RunInfo) {
	l.mu.Lock()
	if len(l.runs) == maxRuns {
		copy(l.runs, l.runs[1:])
		l.runs = l.runs[:maxRuns-1]
	}
	l.runs = append(l.runs, &runState{
		label:    info.Label,
		workers:  info.Workers,
		vertices: info.Vertices,
		edges:    info.Edges,
		started:  time.Now(),
		lastStep: -1,
	})
	l.mu.Unlock()
}

// Span implements obs.Sink: only the checkpoint span matters here (it
// timestamps "last checkpoint" for the age the JSON reports).
func (l *runLog) Span(s obs.Span) {
	if s.Name != "checkpoint" {
		return
	}
	l.mu.Lock()
	if r := l.current(); r != nil {
		r.lastCkpt = time.Now()
	}
	l.mu.Unlock()
}

// Step implements obs.Sink.
func (l *runLog) Step(st obs.StepStats) {
	l.mu.Lock()
	if r := l.current(); r != nil {
		r.lastStep = st.Step
		r.retries += st.Retries
		if st.Stalled {
			r.stalls++
		}
		if len(r.steps) < maxStepsPerRun {
			r.steps = append(r.steps, stepJSON{
				Step:      st.Step,
				Active:    st.Active,
				Sent:      st.Sent,
				Physical:  st.SentPhysical,
				Direction: st.Direction,
				Frontier:  st.FrontierEdges,
				Unvisited: st.UnvisitedEdges,
				Retries:   st.Retries,
				Stalled:   st.Stalled,
			})
		} else {
			r.truncated++
		}
	}
	l.mu.Unlock()
}

// Mem implements obs.Sink.
func (l *runLog) Mem(obs.MemSample) {}

// RunEnd implements obs.Sink.
func (l *runLog) RunEnd(wall time.Duration) {
	l.mu.Lock()
	if r := l.current(); r != nil {
		r.done = true
		r.wall = wall
	}
	l.mu.Unlock()
}

// current returns the most recent run; callers hold l.mu.
func (l *runLog) current() *runState {
	if len(l.runs) == 0 {
		return nil
	}
	return l.runs[len(l.runs)-1]
}

func (l *runLog) snapshot() []runJSON {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	out := make([]runJSON, len(l.runs))
	for i, r := range l.runs {
		j := runJSON{
			Label:     r.label,
			Workers:   r.workers,
			Vertices:  r.vertices,
			Edges:     r.edges,
			Superstep: r.lastStep,
			Done:      r.done,
			AgeUs:     float64(now.Sub(r.started).Nanoseconds()) / 1e3,
			Truncated: r.truncated,
			Retries:   r.retries,
			Stalls:    r.stalls,
			Steps:     append([]stepJSON(nil), r.steps...),
		}
		if r.done {
			j.WallUs = float64(r.wall.Nanoseconds()) / 1e3
		}
		if !r.lastCkpt.IsZero() {
			j.CkptAgeUs = float64(now.Sub(r.lastCkpt).Nanoseconds()) / 1e3
		}
		out[i] = j
	}
	return out
}
