package live_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/core"
	"graphxmt/internal/gen"
	"graphxmt/internal/metrics"
	"graphxmt/internal/obs"
	"graphxmt/internal/obs/live"
)

// TestServerEndToEnd attaches a started Server to a real BSP run and reads
// every endpoint over HTTP: /metrics must be well-formed Prometheus text
// whose logical counters reconcile exactly with the Result, /runs and
// /runs/current must describe the run step by step, and /debug/pprof must
// answer.
func TestServerEndToEnd(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := live.NewServer(nil, 0)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	res, err := core.Run(core.Config{
		Graph:   g,
		Program: bspalg.BFSProgram{Source: 0},
		Obs:     srv.Sink(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// /metrics: well-formed exposition, counters reconcile with Result.
	body := httpGet(t, base+"/metrics")
	if err := metrics.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics not well-formed: %v\n%s", err, body)
	}
	var wantSent int64
	for _, s := range res.MessagesPerStep {
		wantSent += s
	}
	wantLine := fmt.Sprintf("graphxmt_messages_logical_total %d", wantSent)
	if !strings.Contains(body, wantLine) {
		t.Fatalf("/metrics missing %q:\n%s", wantLine, body)
	}
	if !strings.Contains(body, fmt.Sprintf("graphxmt_supersteps_total %d", res.Supersteps)) {
		t.Fatalf("/metrics superstep total does not match Result.Supersteps = %d", res.Supersteps)
	}
	for _, fam := range []string{
		"graphxmt_superstep_wall_us_bucket",
		`graphxmt_phase_us_bucket{phase="compute",le=`,
		"graphxmt_runs_completed_total 1",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics missing %q", fam)
		}
	}

	// /runs/current: the completed run, step by step.
	var cur struct {
		Label     string  `json:"label"`
		Superstep int     `json:"superstep"`
		Done      bool    `json:"done"`
		WallUs    float64 `json:"wall_us"`
		Steps     []struct {
			Step int   `json:"step"`
			Sent int64 `json:"sent"`
		} `json:"steps"`
	}
	jsonGet(t, base+"/runs/current", &cur)
	if cur.Label != "bsp" || !cur.Done || cur.WallUs <= 0 {
		t.Fatalf("/runs/current = %+v; want done bsp run", cur)
	}
	if len(cur.Steps) != res.Supersteps {
		t.Fatalf("/runs/current has %d steps, Result has %d", len(cur.Steps), res.Supersteps)
	}
	for i, s := range cur.Steps {
		if s.Step != i || s.Sent != res.MessagesPerStep[i] {
			t.Fatalf("step %d: /runs/current sent=%d, Result sent=%d", i, s.Sent, res.MessagesPerStep[i])
		}
	}

	// /runs: wraps the same run.
	var runs struct {
		Runs []json.RawMessage `json:"runs"`
	}
	jsonGet(t, base+"/runs", &runs)
	if len(runs.Runs) != 1 {
		t.Fatalf("/runs has %d runs, want 1", len(runs.Runs))
	}

	// /debug/pprof: the index answers.
	if got := httpGet(t, base+"/debug/pprof/"); !strings.Contains(got, "profiles") {
		t.Fatalf("/debug/pprof/ unexpected body:\n%.200s", got)
	}

	// 404 semantics: unknown runs path under a fresh server.
	fresh := live.NewServer(nil, 0)
	if err := fresh.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	resp, err := http.Get("http://" + fresh.Addr() + "/runs/current")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/runs/current before any run: status %d, want 404", resp.StatusCode)
	}
}

// TestFlightRingDepth drives more supersteps through the recorder than its
// depth and checks the ring keeps exactly the most recent ones.
func TestFlightRingDepth(t *testing.T) {
	fr := live.NewFlightRecorder(8)
	fr.RunStart(obs.RunInfo{Label: "synthetic", Workers: 2})
	for s := 0; s < 20; s++ {
		fr.Span(obs.Span{Name: "compute", Step: s, Dur: time.Microsecond})
		fr.Step(obs.StepStats{Step: s, Active: int64(s)})
	}
	steps := fr.Steps()
	if len(steps) != 8 {
		t.Fatalf("ring holds %d steps, want 8", len(steps))
	}
	for i, s := range steps {
		if s != 12+i {
			t.Fatalf("ring = %v; want supersteps 12..19 oldest first", steps)
		}
	}
	path, err := fr.DumpFlight(t.TempDir(), "synthetic drill")
	if err != nil {
		t.Fatal(err)
	}
	dump := readFile(t, path)
	if !strings.Contains(dump, `"cause":"synthetic drill"`) || !strings.Contains(dump, `"dropped":12`) {
		t.Fatalf("dump missing cause/dropped:\n%s", dump)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, b)
	}
	return string(b)
}

func jsonGet(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(httpGet(t, url)), v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
