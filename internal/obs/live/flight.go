package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"graphxmt/internal/obs"
)

// FlightFileName is the file DumpFlight writes into its target directory —
// next to the emergency checkpoint on a vertex-program panic, or wherever
// the SIGQUIT handler points it. A second dump into the same directory
// overwrites the first: the newest crash context wins.
const FlightFileName = "flight.jsonl"

// DefaultFlightDepth is the default ring capacity in supersteps.
const DefaultFlightDepth = 32

// FlightRecorder is an obs.Sink that keeps the last N supersteps' spans and
// counters in a fixed-size ring — cheap enough to leave attached to every
// checkpointed run — and dumps them as JSONL on demand. The BSP engine
// invokes DumpFlight (through obs.FindFlightDumper) when a vertex-program
// panic forces an emergency checkpoint; CLIs invoke it from their SIGQUIT
// handlers. Unlike other sinks it locks internally, because DumpFlight runs
// on the failing goroutine or a signal goroutine while the run's driving
// goroutine may still be feeding it.
type FlightRecorder struct {
	mu      sync.Mutex
	depth   int
	label   string
	workers int
	pending []obs.Span  // spans of the superstep whose Step event hasn't arrived
	ring    []flightRec // completed supersteps, oldest first
	dropped int64       // supersteps pushed out of the ring
}

type flightRec struct {
	label string
	stats obs.StepStats
	spans []obs.Span
}

// NewFlightRecorder returns a recorder keeping the last depth supersteps
// (depth <= 0 selects DefaultFlightDepth).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{depth: depth}
}

// RunStart implements obs.Sink. The ring persists across runs — after a
// crash early in run k, the tail of run k-1 is still context worth having.
func (f *FlightRecorder) RunStart(info obs.RunInfo) {
	f.mu.Lock()
	f.label, f.workers = info.Label, info.Workers
	f.pending = f.pending[:0]
	f.mu.Unlock()
}

// Span implements obs.Sink. A span whose Step event already passed (the
// checkpoint span arrives after its superstep's counters) is attached to
// the completed ring entry; anything else waits in pending.
func (f *FlightRecorder) Span(s obs.Span) {
	s.WorkerBusy = append([]time.Duration(nil), s.WorkerBusy...)
	f.mu.Lock()
	if n := len(f.ring); n > 0 && f.ring[n-1].stats.Step == s.Step {
		f.ring[n-1].spans = append(f.ring[n-1].spans, s)
	} else {
		f.pending = append(f.pending, s)
	}
	f.mu.Unlock()
}

// Step implements obs.Sink: seals the in-flight superstep into the ring.
func (f *FlightRecorder) Step(st obs.StepStats) {
	f.mu.Lock()
	rec := flightRec{label: f.label, stats: st, spans: f.pending}
	f.pending = nil
	if len(f.ring) == f.depth {
		copy(f.ring, f.ring[1:])
		f.ring[len(f.ring)-1] = rec
		f.dropped++
	} else {
		f.ring = append(f.ring, rec)
	}
	f.mu.Unlock()
}

// Mem implements obs.Sink (samples are not retained — the flight ring is
// about superstep structure, not heap history).
func (f *FlightRecorder) Mem(obs.MemSample) {}

// RunEnd implements obs.Sink.
func (f *FlightRecorder) RunEnd(time.Duration) {}

// Steps returns the superstep indices currently in the ring, oldest first.
func (f *FlightRecorder) Steps() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, len(f.ring))
	for i, r := range f.ring {
		out[i] = r.stats.Step
	}
	return out
}

// DumpFlight implements obs.FlightDumper: writes the ring as JSONL to
// dir/flight.jsonl and returns the path. The first line is a header
// carrying the cause and ring shape; each following line is one superstep
// ("ev":"step") with its counters and spans, field names matching the
// obs JSONL sink (docs/OBSERVABILITY.md documents the schema). Spans still
// pending (the failing superstep's, when its Step event never arrived) are
// dumped as a final partial record.
func (f *FlightRecorder) DumpFlight(dir, cause string) (string, error) {
	f.mu.Lock()
	recs := append([]flightRec(nil), f.ring...)
	if len(f.pending) > 0 {
		recs = append(recs, flightRec{
			label: f.label,
			stats: obs.StepStats{Step: f.pending[len(f.pending)-1].Step},
			spans: append([]obs.Span(nil), f.pending...),
		})
	}
	label, workers, dropped := f.label, f.workers, f.dropped
	f.mu.Unlock()

	path := filepath.Join(dir, FlightFileName)
	file, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("live: flight dump: %w", err)
	}
	bw := bufio.NewWriter(file)
	enc := json.NewEncoder(bw)
	werr := enc.Encode(flightHeaderJSON{
		Ev: "flight", Cause: cause, Label: label, Workers: workers,
		Steps: len(recs), Depth: f.depth, Dropped: dropped,
	})
	for _, r := range recs {
		if werr != nil {
			break
		}
		werr = enc.Encode(flightStepJSON{
			Ev:        "step",
			Step:      r.stats.Step,
			Label:     r.label,
			Active:    r.stats.Active,
			Sent:      r.stats.Sent,
			Physical:  r.stats.SentPhysical,
			Delivered: r.stats.Delivered,
			Received:  r.stats.Received,
			Scratch:   r.stats.ScratchBytes,
			Direction: r.stats.Direction,
			Frontier:  r.stats.FrontierEdges,
			Unvisited: r.stats.UnvisitedEdges,
			Spans:     flightSpans(r.spans),
		})
	}
	if ferr := bw.Flush(); werr == nil {
		werr = ferr
	}
	if cerr := file.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", fmt.Errorf("live: flight dump: %w", werr)
	}
	return path, nil
}

type flightHeaderJSON struct {
	Ev      string `json:"ev"`
	Cause   string `json:"cause"`
	Label   string `json:"label,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Steps   int    `json:"steps"`
	Depth   int    `json:"depth"`
	Dropped int64  `json:"dropped,omitempty"`
}

type flightStepJSON struct {
	Ev        string           `json:"ev"`
	Step      int              `json:"step"`
	Label     string           `json:"label,omitempty"`
	Active    int64            `json:"active"`
	Sent      int64            `json:"sent"`
	Physical  int64            `json:"msgs_physical"`
	Delivered int64            `json:"delivered"`
	Received  int64            `json:"received"`
	Scratch   int64            `json:"scratch_bytes"`
	Direction string           `json:"direction,omitempty"`
	Frontier  int64            `json:"frontier_edges,omitempty"`
	Unvisited int64            `json:"unvisited_edges,omitempty"`
	Spans     []flightSpanJSON `json:"spans"`
}

type flightSpanJSON struct {
	Name    string    `json:"name"`
	Step    int       `json:"step"`
	StartUs float64   `json:"start_us"`
	DurUs   float64   `json:"dur_us"`
	BusyUs  []float64 `json:"worker_busy_us,omitempty"`
}

func flightSpans(spans []obs.Span) []flightSpanJSON {
	out := make([]flightSpanJSON, len(spans))
	for i, s := range spans {
		var busy []float64
		if len(s.WorkerBusy) > 0 {
			busy = make([]float64, len(s.WorkerBusy))
			for w, b := range s.WorkerBusy {
				busy[w] = float64(b.Nanoseconds()) / 1e3
			}
		}
		out[i] = flightSpanJSON{
			Name:    s.Name,
			Step:    s.Step,
			StartUs: float64(s.Start.Nanoseconds()) / 1e3,
			DurUs:   float64(s.Dur.Nanoseconds()) / 1e3,
			BusyUs:  busy,
		}
	}
	return out
}
