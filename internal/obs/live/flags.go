package live

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// Flags is the live-introspection flag set of the graphxmt commands:
//
//	-http host:port      serve /metrics, /runs, /runs/current, /debug/pprof
//	-http-linger D       keep serving for D after the run completes (so a
//	                     scraper can read the final totals before exit)
//
// Register with AddFlags, call Start after flag.Parse (nil Server when
// -http was not given), and defer Close — Close blocks for the linger
// duration before stopping the listener.
type Flags struct {
	Addr   string
	Linger time.Duration
}

// AddFlags registers the live flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Addr, "http", "", "host:port for the live introspection endpoint (/metrics, /runs, /debug/pprof)")
	fs.DurationVar(&f.Linger, "http-linger", 0, "keep the -http endpoint up this long after the run ends")
	return f
}

// Start opens the server when -http was given; a nil, nil return means the
// endpoint is off. Errors are usage errors (bad address) — print and exit 2.
func (f *Flags) Start() (*Server, error) {
	if f.Addr == "" {
		return nil, nil
	}
	srv := NewServer(nil, 0)
	if err := srv.Start(f.Addr); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "live: introspection at http://%s/metrics\n", srv.Addr())
	return srv, nil
}

// Close lingers (when -http-linger was given) and stops srv. Safe on a nil
// server, so callers can defer it unconditionally.
func (f *Flags) Close(srv *Server) error {
	if srv == nil {
		return nil
	}
	if f.Linger > 0 {
		fmt.Fprintf(os.Stderr, "live: lingering %v at http://%s (final scrape window)\n", f.Linger, srv.Addr())
		time.Sleep(f.Linger)
	}
	return srv.Close()
}
