package obs_test

// Sink and observer tests: synthetic event streams through each sink, the
// recorder-observer adaptation, and end-to-end traces from real BSP runs
// validated against the Chrome trace-event schema.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/core"
	"graphxmt/internal/gen"
	"graphxmt/internal/obs"
	"graphxmt/internal/trace"
)

// feedSynthetic drives sink through a small, fixed event stream: one run of
// two supersteps with two workers.
func feedSynthetic(sink obs.Sink) {
	sink.RunStart(obs.RunInfo{Label: "bsp", Workers: 2, Vertices: 100, Edges: 400})
	busy := []time.Duration{3 * time.Millisecond, 2 * time.Millisecond}
	for step := 0; step < 2; step++ {
		at := time.Duration(step) * 10 * time.Millisecond
		sink.Span(obs.Span{Name: "compute", Step: step, Start: at, Dur: 4 * time.Millisecond, WorkerBusy: busy})
		sink.Span(obs.Span{Name: "terminate", Step: step, Start: at + 4*time.Millisecond, Dur: time.Millisecond, WorkerBusy: busy})
		sink.Span(obs.Span{Name: "deliver", Step: step, Start: at + 5*time.Millisecond, Dur: 3 * time.Millisecond, WorkerBusy: busy})
		sink.Step(obs.StepStats{Step: step, Active: 50, Sent: 200, Delivered: 180, Received: 180, ScratchBytes: 1 << 16})
	}
	sink.Mem(obs.MemSample{Step: 1, At: 19 * time.Millisecond, HeapAlloc: 1 << 20, HeapSys: 1 << 22, NumGC: 3})
	sink.RunEnd(20 * time.Millisecond)
}

func TestReportRender(t *testing.T) {
	r := obs.NewReport()
	feedSynthetic(r)
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`== run "bsp": 2 workers, 100 vertices, 400 edges`,
		"step", "active", "sent", "delivered", "scratch",
		"compute", "terminate", "deliver",
		"phases:",
		"worker busy/wall:",
		"mem: heap",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Both superstep rows with their counters.
	if !strings.Contains(out, "50") || !strings.Contains(out, "200") {
		t.Errorf("report missing step counters:\n%s", out)
	}
}

// TestReportPhaseColumnsMatchEngine runs a real sparse BFS and checks the
// rendered table carries a column for every phase name the engine claims to
// emit — the report and the engine cannot drift apart silently.
func TestReportPhaseColumnsMatchEngine(t *testing.T) {
	g := gen.Ring(1 << 10)
	r := obs.NewReport()
	_, err := core.Run(core.Config{
		Graph:            g,
		Program:          bspalg.BFSProgram{Source: 0},
		SparseActivation: true,
		Obs:              r,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range core.EnginePhases() {
		if !strings.Contains(out, name) {
			t.Errorf("report missing engine phase %q:\n%s", name, out)
		}
	}
}

func TestReportElidesLongRuns(t *testing.T) {
	r := obs.NewReport()
	r.MaxRows = 8
	r.RunStart(obs.RunInfo{Label: "bsp", Workers: 1})
	for step := 0; step < 100; step++ {
		r.Span(obs.Span{Name: "compute", Step: step, Dur: time.Millisecond})
		r.Step(obs.StepStats{Step: step, Active: 1})
	}
	r.RunEnd(time.Second)
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "supersteps elided") {
		t.Fatalf("long run not elided:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines > 20 {
		t.Fatalf("elided report still has %d lines", lines)
	}
}

func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	feedSynthetic(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if ev.Ev == "" {
			t.Fatalf("line %q: missing ev discriminator", sc.Text())
		}
		counts[ev.Ev]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"run_start": 1, "span": 6, "step": 2, "mem": 1, "run_end": 1}
	for ev, n := range want {
		if counts[ev] != n {
			t.Errorf("%s events = %d, want %d (all: %v)", ev, counts[ev], n, counts)
		}
	}
}

func TestChromeSyntheticValid(t *testing.T) {
	var buf bytes.Buffer
	c := obs.NewChrome(&buf)
	feedSynthetic(c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("synthetic trace invalid: %v\n%s", err, buf.String())
	}
}

func TestChromeEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	c := obs.NewChrome(&buf)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Still valid JSON...
	var v map[string]any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("empty trace is not JSON: %v\n%s", err, buf.String())
	}
	// ...but fails schema validation, which demands events.
	if err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("empty trace passed validation")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"not-json", "nope"},
		{"no-events", `{"traceEvents":[]}`},
		{"x-missing-dur", `{"traceEvents":[{"name":"compute","ph":"X","ts":1,"pid":1,"tid":0}]}`},
		{"no-engine-track", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"worker 0"}},
			{"name":"compute","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,"args":{"step":0}}]}`},
		{"bad-worker-name", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"engine"}},
			{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"helper"}},
			{"name":"compute","ph":"X","ts":1,"dur":1,"pid":1,"tid":0,"args":{"step":0}},
			{"name":"compute","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,"args":{"step":0}}]}`},
		{"engine-span-no-step", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"engine"}},
			{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"worker 0"}},
			{"name":"compute","ph":"X","ts":1,"dur":1,"pid":1,"tid":0},
			{"name":"compute","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,"args":{"step":0}}]}`},
		{"overlapping-engine-spans", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"engine"}},
			{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"worker 0"}},
			{"name":"a","ph":"X","ts":0,"dur":100,"pid":1,"tid":0,"args":{"step":0}},
			{"name":"b","ph":"X","ts":50,"dur":100,"pid":1,"tid":0,"args":{"step":0}},
			{"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"step":0}}]}`},
		{"spans-on-unnamed-tid", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"engine"}},
			{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"worker 0"}},
			{"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":0,"args":{"step":0}},
			{"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"step":0}},
			{"name":"stray","ph":"X","ts":0,"dur":1,"pid":1,"tid":9,"args":{"step":0}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := obs.ValidateChromeTrace(strings.NewReader(tc.in)); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

// capture records every sink event for assertions.
type capture struct {
	runs  []obs.RunInfo
	spans []obs.Span
	steps []obs.StepStats
	mems  []obs.MemSample
	ends  int
}

func (c *capture) RunStart(i obs.RunInfo) { c.runs = append(c.runs, i) }
func (c *capture) Span(s obs.Span) {
	s.WorkerBusy = append([]time.Duration(nil), s.WorkerBusy...)
	c.spans = append(c.spans, s)
}
func (c *capture) Step(st obs.StepStats)  { c.steps = append(c.steps, st) }
func (c *capture) Mem(m obs.MemSample)    { c.mems = append(c.mems, m) }
func (c *capture) RunEnd(_ time.Duration) { c.ends++ }

func TestRecorderObserverSpans(t *testing.T) {
	sink := &capture{}
	o := obs.NewRecorderObserver(sink, 64, 128)
	rec := trace.NewRecorder()
	rec.SetObserver(o)

	rec.StartPhase("cc/iter", 0)
	rec.StartPhase("cc/iter", 1)
	rec.StartPhase("bsp/scan", 0) // engine-internal: must not become a span
	rec.StartPhase("cc/iter", 2)
	o.Finish()
	o.Finish() // idempotent

	if len(sink.runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(sink.runs))
	}
	if got := sink.runs[0]; got.Label != "cc" || got.Vertices != 64 || got.Edges != 128 {
		t.Fatalf("RunInfo = %+v", got)
	}
	if len(sink.spans) != 3 {
		t.Fatalf("spans = %d, want 3 (bsp/ skipped): %+v", len(sink.spans), sink.spans)
	}
	for i, s := range sink.spans {
		if s.Name != "cc/iter" || s.Step != i {
			t.Fatalf("span %d = %q/%d, want cc/iter/%d", i, s.Name, s.Step, i)
		}
	}
	if sink.ends != 1 {
		t.Fatalf("run_end = %d, want 1", sink.ends)
	}
}

// TestEngineObsEvents drives a real BSP run through a capture sink and pins
// the event stream's shape: phase names from core.EnginePhases, one
// StepStats per superstep, worker-busy slices sized to the worker count.
func TestEngineObsEvents(t *testing.T) {
	g := gen.Ring(1 << 10)
	sink := &capture{}
	res, err := core.Run(core.Config{
		Graph:            g,
		Program:          bspalg.BFSProgram{Source: 0},
		SparseActivation: true,
		Obs:              sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.runs) != 1 || sink.ends != 1 {
		t.Fatalf("runs=%d ends=%d, want 1/1", len(sink.runs), sink.ends)
	}
	if sink.runs[0].Label != "bsp" || sink.runs[0].Vertices != g.NumVertices() {
		t.Fatalf("RunInfo = %+v", sink.runs[0])
	}
	if len(sink.steps) != res.Supersteps {
		t.Fatalf("step events = %d, want %d", len(sink.steps), res.Supersteps)
	}
	known := map[string]bool{"init": true}
	for _, n := range core.EnginePhases() {
		known[n] = true
	}
	seen := map[string]bool{}
	for _, s := range sink.spans {
		if !known[s.Name] {
			t.Fatalf("unexpected span name %q", s.Name)
		}
		seen[s.Name] = true
		if s.WorkerBusy != nil && len(s.WorkerBusy) != sink.runs[0].Workers {
			t.Fatalf("span %q busy slice len %d, want %d", s.Name, len(s.WorkerBusy), sink.runs[0].Workers)
		}
		if s.Dur < 0 || s.Start < 0 {
			t.Fatalf("span %q has negative time: %+v", s.Name, s)
		}
	}
	for _, n := range append([]string{"init"}, core.EnginePhases()...) {
		if !seen[n] {
			t.Errorf("engine never emitted phase %q (saw %v)", n, seen)
		}
	}
	if len(sink.mems) == 0 {
		t.Fatal("no memory samples")
	}
	for _, st := range sink.steps {
		if st.ScratchBytes <= 0 {
			t.Fatalf("step %d scratch bytes = %d", st.Step, st.ScratchBytes)
		}
	}
}

// TestEngineChromeTraceBFS is the end-to-end schema check: a real BFS run
// exported through the Chrome sink must satisfy ValidateChromeTrace — the
// same validation CI applies to a bspgraph-produced scale-16 trace.
func TestEngineChromeTraceBFS(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c := obs.NewChrome(&buf)
	if _, err := core.Run(core.Config{
		Graph:   g,
		Program: bspalg.BFSProgram{Source: 0},
		Obs:     c,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("BFS chrome trace invalid: %v", err)
	}
}

// TestSinkViaRecorderObserver checks the CLI attachment path end to end:
// the engine discovers the sink through the recorder's observer
// (SinkProvider) with Config.Obs unset, exactly as bspgraph attaches it.
func TestSinkViaRecorderObserver(t *testing.T) {
	g := gen.Ring(1 << 8)
	sink := &capture{}
	o := obs.NewRecorderObserver(sink, g.NumVertices(), g.NumEdges())
	rec := trace.NewRecorder()
	rec.SetObserver(o)
	if _, err := bspalg.BFS(g, 0, rec); err != nil {
		t.Fatal(err)
	}
	o.Finish()
	if len(sink.runs) == 0 {
		t.Fatal("engine did not discover the sink through the recorder observer")
	}
	if sink.runs[0].Label != "bsp" {
		t.Fatalf("label = %q, want bsp", sink.runs[0].Label)
	}
	if len(sink.spans) == 0 || len(sink.steps) == 0 {
		t.Fatalf("no spans/steps through observer path: %d/%d", len(sink.spans), len(sink.steps))
	}
}
