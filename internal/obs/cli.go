package obs

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof host:port serves the debug endpoints
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"graphxmt/internal/par"
	"graphxmt/internal/trace"
)

// CLIFlags is the shared observability flag set of the graphxmt commands:
//
//	-workers N      host worker count (also GRAPHXMT_WORKERS; 0 = GOMAXPROCS)
//	-obs-format F   report | jsonl | chrome
//	-obs-out PATH   observability output file (report defaults to stdout)
//	-pprof X        host:port serves net/http/pprof; any other value is a
//	                file path receiving a CPU profile of the run
//
// Register with AddFlags (or AddWorkersFlag for commands that only sweep
// worker counts), then call Start after flag.Parse and Close when done.
type CLIFlags struct {
	Workers int
	Format  string
	Out     string
	PProf   string

	hasObs bool
	envErr error
}

// AddWorkersFlag registers only -workers (with its GRAPHXMT_WORKERS
// default) on fs.
func AddWorkersFlag(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	def := 0
	if v := os.Getenv("GRAPHXMT_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			def = n
		} else {
			c.envErr = fmt.Errorf("obs: invalid GRAPHXMT_WORKERS=%q (want a positive integer)", v)
		}
	}
	fs.IntVar(&c.Workers, "workers", def, "host worker count (0 = GOMAXPROCS; env GRAPHXMT_WORKERS)")
	return c
}

// AddFlags registers the full observability flag set on fs.
func AddFlags(fs *flag.FlagSet) *CLIFlags {
	c := AddWorkersFlag(fs)
	c.hasObs = true
	fs.StringVar(&c.Format, "obs-format", "", "host observability format: report, jsonl, or chrome (empty = off)")
	fs.StringVar(&c.Out, "obs-out", "", "host observability output path (report defaults to stdout)")
	fs.StringVar(&c.PProf, "pprof", "", "host:port to serve net/http/pprof, or a file path for a CPU profile")
	return c
}

// Session is a started observability session: the sink to attach (nil when
// observability is off — -workers and -pprof still applied), plus the
// teardown state Close finalizes.
type Session struct {
	Sink Sink

	report    *Report
	reportOut io.WriteCloser // nil = stdout
	outFile   io.Closer
	jsonl     *JSONL
	chrome    *Chrome
	stopPProf func() error

	mu          sync.Mutex
	observers   []*RecorderObserver
	prevFactory func() any
	factorySet  bool
}

// Start validates the flags and opens the session: applies the worker
// count, starts pprof, and builds the sink. Errors are usage errors — the
// caller should print them and exit 2.
func (c *CLIFlags) Start() (*Session, error) {
	if c.envErr != nil && c.Workers == 0 {
		return nil, c.envErr
	}
	if c.Workers < 0 {
		return nil, fmt.Errorf("obs: -workers must be >= 0 (0 = GOMAXPROCS), got %d", c.Workers)
	}
	par.SetWorkers(c.Workers)

	s := &Session{}
	if c.PProf != "" {
		if err := s.startPProf(c.PProf); err != nil {
			return nil, err
		}
	}

	format := strings.TrimSpace(c.Format)
	if format == "" && c.Out != "" {
		format = "report"
	}
	switch format {
	case "":
		return s, nil
	case "report":
		s.report = NewReport()
		s.Sink = s.report
		if c.Out != "" {
			f, err := os.Create(c.Out)
			if err != nil {
				return nil, fmt.Errorf("obs: %w", err)
			}
			s.reportOut = f
		}
	case "jsonl", "chrome":
		if c.Out == "" {
			return nil, fmt.Errorf("obs: -obs-format %s requires -obs-out", format)
		}
		f, err := os.Create(c.Out)
		if err != nil {
			return nil, fmt.Errorf("obs: %w", err)
		}
		s.outFile = f
		if format == "jsonl" {
			s.jsonl = NewJSONL(f)
			s.Sink = s.jsonl
		} else {
			s.chrome = NewChrome(f)
			s.Sink = s.chrome
		}
	default:
		return nil, fmt.Errorf("obs: unknown -obs-format %q (want report, jsonl, or chrome)", format)
	}
	return s, nil
}

// startPProf interprets spec: "host:port" (no path separator) serves
// net/http/pprof; anything else is a file receiving a CPU profile.
func (s *Session) startPProf(spec string) error {
	if strings.Contains(spec, ":") && !strings.ContainsAny(spec, "/\\") {
		go func() {
			if err := http.ListenAndServe(spec, nil); err != nil {
				fmt.Fprintln(os.Stderr, "obs: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "obs: pprof at http://%s/debug/pprof/\n", spec)
		return nil
	}
	f, err := os.Create(spec)
	if err != nil {
		return fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: cpu profile: %w", err)
	}
	s.stopPProf = func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}
	return nil
}

// AddSink tees extra into the session's sink (before or instead of the
// flag-selected one). Call before Attach/InstallFactory — observers hold the
// sink pointer they were built with. A nil extra is a no-op, so callers can
// pass an optional component's sink unconditionally.
func (s *Session) AddSink(extra Sink) {
	s.Sink = Tee(s.Sink, extra)
}

// Attach wires the session's sink to rec as a RecorderObserver (no-op
// without a sink): shared-memory kernel phases recorded on rec become
// spans, and BSP runs using rec discover the sink through it. vertices and
// edges annotate the run when known (pass 0 otherwise).
func (s *Session) Attach(rec *trace.Recorder, vertices, edges int64) {
	if s.Sink == nil || rec == nil {
		return
	}
	o := NewRecorderObserver(s.Sink, vertices, edges)
	rec.SetObserver(o)
	s.mu.Lock()
	s.observers = append(s.observers, o)
	s.mu.Unlock()
}

// InstallFactory makes every trace.NewRecorder in the process carry a
// session observer — the wiring for commands whose kernels build recorders
// internally (xmtbench). Close restores the previous factory. No-op
// without a sink.
func (s *Session) InstallFactory() {
	if s.Sink == nil {
		return
	}
	s.prevFactory = trace.SetObserverFactory(func() any {
		o := NewRecorderObserver(s.Sink, 0, 0)
		s.mu.Lock()
		s.observers = append(s.observers, o)
		s.mu.Unlock()
		return o
	})
	s.factorySet = true
}

// Close finishes open observers, renders/flushes the sink, stops pprof,
// and closes output files.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.factorySet {
		trace.SetObserverFactory(s.prevFactory)
	}
	s.mu.Lock()
	observers := s.observers
	s.observers = nil
	s.mu.Unlock()
	for _, o := range observers {
		o.Finish()
	}
	if s.report != nil {
		var w io.Writer = os.Stdout
		if s.reportOut != nil {
			w = s.reportOut
		}
		keep(s.report.Render(w))
		if s.reportOut != nil {
			keep(s.reportOut.Close())
		}
	}
	if s.jsonl != nil {
		keep(s.jsonl.Close())
	}
	if s.chrome != nil {
		keep(s.chrome.Close())
	}
	if s.outFile != nil {
		keep(s.outFile.Close())
	}
	if s.stopPProf != nil {
		keep(s.stopPProf())
	}
	return first
}
