package obs

import (
	"strconv"
	"time"

	"graphxmt/internal/metrics"
)

// Metrics feeds a metrics.Registry from the observability event stream —
// the live, scrapeable counterpart of the post-hoc sinks. Where Report
// renders a table after the run and JSONL replays it offline, Metrics keeps
// atomic counters, gauges, and log-scale histograms current *during* the
// run, so an HTTP scrape (obs/live) or an in-process reader sees per-step
// state the moment the engine emits it.
//
// Naming conventions (see docs/OBSERVABILITY.md):
//
//   - everything is prefixed graphxmt_;
//   - counters end in _total and are monotone across runs (a process that
//     observes several runs keeps accumulating — reconcile per run with
//     Result, or scrape deltas);
//   - durations are microseconds, suffix _us; histograms use log2 buckets;
//   - gauges hold the most recent superstep's view (frontier/unvisited
//     edges, scratch bytes, busy fraction in permille).
//
// Like every sink, Metrics is fed from the observed run's driving goroutine
// only; the instruments themselves are atomics, so concurrent HTTP scrapes
// need no further locking. Logical counters reconcile exactly with the
// run's Result: after RunEnd, graphxmt_messages_logical_total equals the
// sum of Result.MessagesPerStep across observed runs (asserted by the
// determinism tests and the obs-live CI job).
type Metrics struct {
	reg *metrics.Registry

	runsStarted *metrics.Counter
	runsDone    *metrics.Counter
	steps       *metrics.Counter
	active      *metrics.Counter
	logical     *metrics.Counter
	physical    *metrics.Counter
	delivered   *metrics.Counter
	received    *metrics.Counter
	retries     *metrics.Counter
	stalls      *metrics.Counter
	fallbacks   *metrics.Counter
	batchRuns   *metrics.Counter
	dirSteps    map[string]*metrics.Counter

	workers   *metrics.Gauge
	vertices  *metrics.Gauge
	edges     *metrics.Gauge
	frontier  *metrics.Gauge
	unvisited *metrics.Gauge
	scratch   *metrics.Gauge
	busyPerm  *metrics.Gauge
	heapAlloc *metrics.Gauge
	heapSys   *metrics.Gauge
	gcCount   *metrics.Gauge
	lanes     *metrics.Gauge
	amortized *metrics.Gauge

	stepWall *metrics.Histogram
	runWall  *metrics.Histogram
	ckptWall *metrics.Histogram
	phase    map[string]*metrics.Histogram
	busyUs   []*metrics.Counter // per worker index

	// Per-run batch accumulation: lane occupancy of the current run and its
	// logical sends so far, so RunEnd can publish the amortized per-query
	// edge cost (sends / lanes) without re-reading the event stream.
	curLanes int
	curSent  int64

	// Per-superstep accumulation between Span and Step events: a
	// superstep's wall is the sum of its engine phase spans
	// (compute/terminate/deliver/worklist — the checkpoint span is charged
	// to its own histogram), and its busy time is the per-worker busy total
	// across those spans.
	curWall time.Duration
	curBusy time.Duration
	curWkrs int
}

// NewMetrics returns a Metrics sink feeding reg (nil creates a fresh
// registry, available via Registry).
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Metrics{
		reg:         reg,
		runsStarted: reg.Counter("graphxmt_runs_started_total", "observed runs started"),
		runsDone:    reg.Counter("graphxmt_runs_completed_total", "observed runs completed"),
		steps:       reg.Counter("graphxmt_supersteps_total", "supersteps executed"),
		active:      reg.Counter("graphxmt_active_vertices_total", "vertices that ran Compute"),
		logical:     reg.Counter("graphxmt_messages_logical_total", "logical messages sent (one per edge for broadcasts; reconciles with Result.MessagesPerStep)"),
		physical:    reg.Counter("graphxmt_messages_physical_total", "physically materialized outgoing records"),
		delivered:   reg.Counter("graphxmt_messages_delivered_total", "messages delivered into inboxes (after combining)"),
		received:    reg.Counter("graphxmt_messages_received_total", "messages consumed from inboxes"),
		retries:     reg.Counter("graphxmt_retries_total", "superstep re-executions after trapped faults (deterministic retry)"),
		stalls:      reg.Counter("graphxmt_watchdog_stalls_total", "supersteps that outlived the watchdog deadline"),
		fallbacks:   reg.Counter("graphxmt_ckpt_fallback_total", "damaged checkpoints skipped by the resume fallback chain"),
		batchRuns:   reg.Counter("graphxmt_batch_runs_total", "batched multi-source runs observed (lane occupancy > 0)"),
		dirSteps:    map[string]*metrics.Counter{},
		workers:     reg.Gauge("graphxmt_run_workers", "host worker count of the current run"),
		vertices:    reg.Gauge("graphxmt_graph_vertices", "vertex count of the current run's graph"),
		edges:       reg.Gauge("graphxmt_graph_edges", "edge count of the current run's graph"),
		frontier:    reg.Gauge("graphxmt_frontier_edges", "broadcast-incident edge count the direction heuristic compared (last superstep)"),
		unvisited:   reg.Gauge("graphxmt_unvisited_edges", "incident-edge count of not-yet-visited vertices (last superstep)"),
		scratch:     reg.Gauge("graphxmt_scratch_bytes", "engine reusable scratch footprint (last superstep)"),
		busyPerm:    reg.Gauge("graphxmt_step_busy_permille", "last superstep's worker busy time over wall*workers, in permille"),
		heapAlloc:   reg.Gauge("graphxmt_heap_alloc_bytes", "heap bytes allocated (last sample)"),
		heapSys:     reg.Gauge("graphxmt_heap_sys_bytes", "heap bytes reserved from the OS (last sample)"),
		gcCount:     reg.Gauge("graphxmt_gc_count", "cumulative GC collections (last sample)"),
		lanes:       reg.Gauge("graphxmt_batch_lanes", "lane occupancy of the current run (0 for unbatched runs)"),
		amortized:   reg.Gauge("graphxmt_batch_amortized_edges_per_query", "logical sends divided by lane occupancy for the last completed batched run"),
		stepWall:    reg.Histogram("graphxmt_superstep_wall_us", "superstep wall time (sum of engine phase spans), microseconds", metrics.DurationBounds),
		runWall:     reg.Histogram("graphxmt_run_wall_us", "whole-run wall time, microseconds", metrics.DurationBounds),
		ckptWall:    reg.Histogram("graphxmt_checkpoint_write_us", "checkpoint snapshot+write latency, microseconds", metrics.DurationBounds),
		phase:       map[string]*metrics.Histogram{},
	}
	for _, d := range []string{"push", "pull"} {
		m.dirSteps[d] = reg.Counter("graphxmt_direction_steps_total",
			"supersteps delivered in each direction", metrics.Label{Key: "direction", Value: d})
	}
	return m
}

// Registry returns the registry this sink feeds.
func (m *Metrics) Registry() *metrics.Registry { return m.reg }

// RunStart implements Sink.
func (m *Metrics) RunStart(info RunInfo) {
	m.runsStarted.Inc()
	m.workers.Set(int64(info.Workers))
	m.vertices.Set(info.Vertices)
	m.edges.Set(info.Edges)
	m.lanes.Set(int64(info.Lanes))
	if info.Lanes > 0 {
		m.batchRuns.Inc()
	}
	m.curLanes, m.curSent = info.Lanes, 0
	m.curWall, m.curBusy, m.curWkrs = 0, 0, info.Workers
	for len(m.busyUs) < info.Workers {
		m.busyUs = append(m.busyUs, m.reg.Counter("graphxmt_worker_busy_us_total",
			"per-worker busy time folded from chunk timing, microseconds",
			metrics.Label{Key: "worker", Value: strconv.Itoa(len(m.busyUs))}))
	}
}

// Span implements Sink.
func (m *Metrics) Span(s Span) {
	h, ok := m.phase[s.Name]
	if !ok {
		h = m.reg.Histogram("graphxmt_phase_us", "engine/kernel phase duration, microseconds",
			metrics.DurationBounds, metrics.Label{Key: "phase", Value: s.Name})
		m.phase[s.Name] = h
	}
	h.Observe(s.Dur.Microseconds())
	var busy time.Duration
	for w, b := range s.WorkerBusy {
		busy += b
		if w < len(m.busyUs) {
			m.busyUs[w].Add(b.Microseconds())
		}
	}
	if s.Name == obsCheckpointPhase {
		m.ckptWall.Observe(s.Dur.Microseconds())
		return
	}
	if s.Step >= 0 {
		m.curWall += s.Dur
		m.curBusy += busy
	}
}

// obsCheckpointPhase mirrors core's checkpoint span name; the engine owns
// the name, the sink only special-cases it (checkpoint latency has its own
// histogram and is excluded from superstep wall).
const obsCheckpointPhase = "checkpoint"

// Step implements Sink.
func (m *Metrics) Step(st StepStats) {
	m.steps.Inc()
	m.active.Add(st.Active)
	m.logical.Add(st.Sent)
	m.curSent += st.Sent
	m.physical.Add(st.SentPhysical)
	m.delivered.Add(st.Delivered)
	m.received.Add(st.Received)
	m.retries.Add(st.Retries)
	if st.Stalled {
		m.stalls.Inc()
	}
	m.scratch.Set(st.ScratchBytes)
	if st.Direction != "" {
		if c, ok := m.dirSteps[st.Direction]; ok {
			c.Inc()
		}
		m.frontier.Set(st.FrontierEdges)
		m.unvisited.Set(st.UnvisitedEdges)
	}
	m.stepWall.Observe(m.curWall.Microseconds())
	if m.curWall > 0 && m.curWkrs > 0 {
		m.busyPerm.Set(int64(m.curBusy) * 1000 / (int64(m.curWall) * int64(m.curWkrs)))
	}
	m.curWall, m.curBusy = 0, 0
}

// NoteFallback implements FallbackNoter: each damaged checkpoint the
// resume fallback chain skips bumps graphxmt_ckpt_fallback_total.
func (m *Metrics) NoteFallback(path string, cause error) {
	m.fallbacks.Inc()
}

// Mem implements Sink.
func (m *Metrics) Mem(s MemSample) {
	m.heapAlloc.Set(int64(s.HeapAlloc))
	m.heapSys.Set(int64(s.HeapSys))
	m.gcCount.Set(int64(s.NumGC))
}

// RunEnd implements Sink.
func (m *Metrics) RunEnd(wall time.Duration) {
	m.runsDone.Inc()
	m.runWall.Observe(wall.Microseconds())
	if m.curLanes > 0 {
		m.amortized.Set(m.curSent / int64(m.curLanes))
	}
}
