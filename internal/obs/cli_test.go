package obs_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"graphxmt/internal/obs"
	"graphxmt/internal/par"
)

// startFlags parses args against a fresh obs flag set and calls Start,
// restoring the global worker count afterward.
func startFlags(t *testing.T, args ...string) (*obs.Session, error) {
	t.Helper()
	prev := par.Workers()
	t.Cleanup(func() { par.SetWorkers(prev) })
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c.Start()
}

func TestCLIFlagsUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-workers", "-2"},
		{"-obs-format", "yaml", "-obs-out", "x"},
		{"-obs-format", "jsonl"},  // requires -obs-out
		{"-obs-format", "chrome"}, // requires -obs-out
	}
	for _, args := range cases {
		if _, err := startFlags(t, args...); err == nil {
			t.Errorf("args %v: expected usage error", args)
		}
	}
}

func TestCLIFlagsOff(t *testing.T) {
	sess, err := startFlags(t)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Sink != nil {
		t.Fatal("sink built with observability off")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCLIFlagsWorkersApplied(t *testing.T) {
	sess, err := startFlags(t, "-workers", "3")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := par.Workers(); got != 3 {
		t.Fatalf("par.Workers() = %d, want 3", got)
	}
}

func TestCLIFlagsWorkersEnv(t *testing.T) {
	t.Setenv("GRAPHXMT_WORKERS", "2")
	sess, err := startFlags(t)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := par.Workers(); got != 2 {
		t.Fatalf("par.Workers() = %d, want 2 from env", got)
	}
}

func TestCLIFlagsWorkersEnvInvalid(t *testing.T) {
	t.Setenv("GRAPHXMT_WORKERS", "lots")
	if _, err := startFlags(t); err == nil {
		t.Fatal("invalid GRAPHXMT_WORKERS accepted")
	}
	// An explicit -workers overrides a broken env var.
	sess, err := startFlags(t, "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
}

// TestCLIChromeOutput runs the jsonl and chrome formats through Start/Close
// against temp files and checks the chrome output validates.
func TestCLIChromeOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trace.json")
	sess, err := startFlags(t, "-obs-format", "chrome", "-obs-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Sink == nil {
		t.Fatal("no sink for chrome format")
	}
	feedSynthetic(sess.Sink)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.ValidateChromeTrace(f); err != nil {
		t.Fatalf("CLI chrome output invalid: %v", err)
	}
}

// TestChromeTraceFile validates an externally produced trace named by
// GRAPHXMT_TRACE_FILE — CI generates one with bspgraph on a scale-16 BFS
// and runs exactly this test against it. Skips when the variable is unset.
func TestChromeTraceFile(t *testing.T) {
	path := os.Getenv("GRAPHXMT_TRACE_FILE")
	if path == "" {
		t.Skip("GRAPHXMT_TRACE_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.ValidateChromeTrace(f); err != nil {
		t.Fatalf("trace %s invalid: %v", path, err)
	}
}
