// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout graphxmt. Determinism matters here: every
// experiment in the paper reproduction must be replayable bit-for-bit from a
// seed, independent of host parallelism, so we avoid math/rand's global
// state and use explicit generator values that can be split into
// independent streams for parallel graph generation.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator used for seeding and for cheap
//     one-shot hashing of integers.
//   - Xoshiro256**: the workhorse generator, seeded from SplitMix64 as its
//     authors recommend.
package rng

import "math"

// SplitMix64 is D. Lemire / S. Vigna's splitmix64 generator. The zero value
// is a valid generator (seeded with 0).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one splitmix64 finalization round. It is a
// stateless convenience used to derive per-index seeds.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro is the xoshiro256** 1.0 generator of Blackman and Vigna.
type Xoshiro struct {
	s [4]uint64
}

// New returns a Xoshiro generator seeded from seed via SplitMix64.
func New(seed uint64) *Xoshiro {
	var x Xoshiro
	x.Reseed(seed)
	return &x
}

// Reseed reinitializes the generator in place, producing exactly the stream
// New(seed) would. It exists for hot loops that draw a fresh per-item
// stream (per-edge graph generation): a stack-allocated Xoshiro reseeded
// each iteration avoids one heap allocation per item.
func (x *Xoshiro) Reseed(seed uint64) {
	sm := SplitMix64{state: seed}
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// All-zero state is the one invalid state; splitmix64 cannot emit four
	// consecutive zeros, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the sequence.
func (x *Xoshiro) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (x *Xoshiro) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (x *Xoshiro) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (x *Xoshiro) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return x.Uint64() & (n - 1)
	}
	threshold := -n % n // == (2^64 - n) mod n
	for {
		v := x.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Split returns a new generator whose stream is independent of the
// receiver's for any practical purpose: it is seeded by hashing the
// receiver's next output with the supplied stream index, so generating from
// the child never perturbs the parent beyond the single Uint64 consumed.
func (x *Xoshiro) Split(stream uint64) *Xoshiro {
	return New(Mix64(x.Uint64()) ^ Mix64(stream*0x9e3779b97f4a7c15+1))
}

// Norm returns a standard normal variate via the Box-Muller transform.
func (x *Xoshiro) Norm() float64 {
	// Avoid log(0).
	u1 := x.Float64()
	for u1 == 0 {
		u1 = x.Float64()
	}
	u2 := x.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (x *Xoshiro) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (x *Xoshiro) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}
