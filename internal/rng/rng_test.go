package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for splitmix64 seeded with 1234567, from the
	// canonical C implementation.
	sm := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := sm.Uint64(); got != w {
			t.Fatalf("splitmix64 output %d = %d, want %d", i, got, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed generators matched %d/1000 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(7)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestUint64nUniform(t *testing.T) {
	x := New(99)
	const buckets = 10
	const n = 500000
	var count [buckets]int
	for i := 0; i < n; i++ {
		count[x.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", b, c, want)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	x := New(5)
	for i := 0; i < 10000; i++ {
		if v := x.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	// The low word must always equal wrapping multiplication.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(1)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children matched %d/1000 outputs", same)
	}
}

func TestSplitDeterministicGivenParentState(t *testing.T) {
	a := New(17)
	b := New(17)
	ca := a.Split(5)
	cb := b.Split(5)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("split is not a deterministic function of parent state")
		}
	}
}

func TestNormMoments(t *testing.T) {
	x := New(123)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := x.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	// A crude sanity check: shuffling [0,1,2] many times should hit all 6
	// arrangements.
	x := New(2024)
	seen := map[[3]int]bool{}
	for i := 0; i < 600; i++ {
		arr := [3]int{0, 1, 2}
		x.Shuffle(3, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		seen[arr] = true
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d/6 arrangements", len(seen))
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}
