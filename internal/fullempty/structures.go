package fullempty

import (
	"fmt"
	"runtime"
)

// Queue is a bounded multi-producer/multi-consumer FIFO built the way XMT
// codes build one: a ring of full/empty-tagged slots plus two fetch-and-add
// ticket counters. A producer takes a ticket, waits for its slot to drain
// (empty), and writeefs the value; a consumer takes a ticket and readfes
// its slot. No locks, no spinning beyond the word-level waits — the idiom
// behind GraphCT's shared frontier queues.
type Queue struct {
	slots []Word
	head  int64 // consumer ticket counter
	tail  int64 // producer ticket counter
}

// NewQueue returns a queue with the given capacity (must be positive).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("fullempty: invalid queue capacity %d", capacity))
	}
	return &Queue{slots: make([]Word, capacity)}
}

// Enqueue blocks until a slot is free, then deposits v.
func (q *Queue) Enqueue(v int64) {
	t := FetchAdd(&q.tail, 1)
	q.slots[t%int64(len(q.slots))].WriteEF(v)
}

// Dequeue blocks until a value is available, then removes and returns it.
func (q *Queue) Dequeue() int64 {
	h := FetchAdd(&q.head, 1)
	return q.slots[h%int64(len(q.slots))].ReadFE()
}

// HashSet is a fixed-capacity open-addressing set of non-negative int64
// keys, with slots claimed via writeef on their full/empty tags — the
// "linear probing with full/empty claiming" strategy of Goodman et al.'s
// XMT hashing study. Concurrent Insert calls are safe; the set does not
// grow.
type HashSet struct {
	slots []Word // empty = free; full = holds a key
	size  int64
}

// NewHashSet returns a set with capacity for n keys (sized to the next
// power of two at least 2n for a sane load factor).
func NewHashSet(n int) *HashSet {
	capacity := 16
	for capacity < 2*n {
		capacity *= 2
	}
	return &HashSet{slots: make([]Word, capacity)}
}

// hashKey spreads keys over the table (splitmix64 finalizer).
func hashKey(k int64) uint64 {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Insert adds key (which must be >= 0), reporting whether it was newly
// added. It returns an error when the table is at capacity.
func (h *HashSet) Insert(key int64) (bool, error) {
	if key < 0 {
		return false, fmt.Errorf("fullempty: negative key %d", key)
	}
	mask := uint64(len(h.slots) - 1)
	idx := hashKey(key) & mask
	for probe := 0; probe < len(h.slots); probe++ {
		slot := &h.slots[idx]
		// Fast path: slot already full — readff never blocks here and
		// never claims.
		if slot.Full() {
			if slot.ReadFF() == key {
				return false, nil
			}
			idx = (idx + 1) & mask
			continue
		}
		// Claim attempt: atomically transition empty -> full with our key
		// via a guarded write (the XMT uses writeef after a readxx check;
		// we need compare-and-claim, so use the word's mutex path).
		if slot.tryClaim(key) {
			FetchAdd(&h.size, 1)
			return true, nil
		}
		// Lost the race: the slot is now full; re-examine it.
	}
	return false, fmt.Errorf("fullempty: hash set full (capacity %d)", len(h.slots))
}

// tryClaim atomically installs v if the word is empty, reporting success.
// This is the one helper that peeks inside Word: the XMT expresses it as a
// writeef bounded by a readxx, which hardware makes atomic.
func (w *Word) tryClaim(v int64) bool {
	w.mu.Lock()
	w.lazyInit()
	if w.full {
		w.mu.Unlock()
		return false
	}
	w.val = v
	w.full = true
	w.cond.Broadcast()
	w.mu.Unlock()
	return true
}

// Contains reports whether key is in the set.
func (h *HashSet) Contains(key int64) bool {
	if key < 0 {
		return false
	}
	mask := uint64(len(h.slots) - 1)
	idx := hashKey(key) & mask
	for probe := 0; probe < len(h.slots); probe++ {
		slot := &h.slots[idx]
		if !slot.Full() {
			return false
		}
		if slot.ReadFF() == key {
			return true
		}
		idx = (idx + 1) & mask
	}
	return false
}

// Len returns the number of keys inserted.
func (h *HashSet) Len() int64 { return h.size }

// Capacity returns the slot count.
func (h *HashSet) Capacity() int { return len(h.slots) }

// Barrier is an n-thread reusable barrier built from fetch-and-add and a
// full/empty generation word — the synchronization idiom BSP supersteps
// compile to on the XMT. The last thread to arrive releases the rest by
// publishing a new generation.
type Barrier struct {
	n       int64
	arrived int64
	gen     Word
}

// NewBarrier returns a barrier for n participants (n must be positive).
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("fullempty: invalid barrier size %d", n))
	}
	b := &Barrier{n: int64(n)}
	b.gen.WriteXF(0)
	return b
}

// Wait blocks until all n participants have called Wait, then releases
// them together. The barrier is reusable.
func (b *Barrier) Wait() {
	gen := b.gen.ReadFF()
	if FetchAdd(&b.arrived, 1) == b.n-1 {
		// Last arrival: reset the count and advance the generation.
		b.arrived = 0
		b.gen.WriteXF(gen + 1)
		return
	}
	// Wait for the generation to advance. readff blocks only on empty, so
	// poll the generation word through the tag-respecting read; the
	// hardware idiom parks streams the same way.
	for b.gen.ReadFF() == gen {
		runtime.Gosched()
	}
}
