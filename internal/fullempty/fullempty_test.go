package fullempty

import (
	"sync"
	"testing"
	"time"
)

func TestWordBasics(t *testing.T) {
	var w Word
	if w.Full() {
		t.Fatal("zero word should be empty")
	}
	w.WriteEF(7)
	if !w.Full() {
		t.Fatal("writeef should set full")
	}
	if v := w.ReadFF(); v != 7 {
		t.Fatalf("readff = %d", v)
	}
	if !w.Full() {
		t.Fatal("readff must leave the word full")
	}
	if v := w.ReadFE(); v != 7 {
		t.Fatalf("readfe = %d", v)
	}
	if w.Full() {
		t.Fatal("readfe must empty the word")
	}
}

func TestWriteXFAndPurge(t *testing.T) {
	w := NewFull(3)
	w.WriteXF(9) // overwrite while full
	if v := w.ReadFF(); v != 9 {
		t.Fatalf("got %d", v)
	}
	w.Purge()
	if w.Full() {
		t.Fatal("purge should empty")
	}
	if _, ok := w.TryReadFE(); ok {
		t.Fatal("tryreadfe on empty should fail")
	}
	w.WriteXF(4)
	if v, ok := w.TryReadFE(); !ok || v != 4 {
		t.Fatalf("tryreadfe = %d, %v", v, ok)
	}
}

func TestReadFEBlocksUntilWrite(t *testing.T) {
	var w Word
	got := make(chan int64, 1)
	go func() { got <- w.ReadFE() }()
	select {
	case <-got:
		t.Fatal("readfe returned before any write")
	case <-time.After(10 * time.Millisecond):
	}
	w.WriteEF(42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("readfe = %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("readfe never woke")
	}
}

func TestWriteEFBlocksUntilEmpty(t *testing.T) {
	w := NewFull(1)
	done := make(chan struct{})
	go func() {
		w.WriteEF(2)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("writeef returned while full")
	case <-time.After(10 * time.Millisecond):
	}
	if v := w.ReadFE(); v != 1 {
		t.Fatalf("readfe = %d", v)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("writeef never woke")
	}
	if v := w.ReadFF(); v != 2 {
		t.Fatalf("second value = %d", v)
	}
}

func TestPingPong(t *testing.T) {
	// Two goroutines pass a token back and forth through a pair of words.
	var a, b Word
	const rounds = 1000
	final := make(chan int64, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			v := a.ReadFE()
			b.WriteEF(v + 1)
		}
	}()
	go func() {
		a.WriteEF(0)
		for i := 0; i < rounds-1; i++ {
			v := b.ReadFE()
			a.WriteEF(v + 1)
		}
		final <- b.ReadFE()
	}()
	// Each hop adds 1; total hops = 2*rounds - 1.
	if sum := <-final; sum != 2*rounds-1 {
		t.Fatalf("final token = %d, want %d", sum, 2*rounds-1)
	}
}

func TestFetchAdd(t *testing.T) {
	var x int64
	if prev := FetchAdd(&x, 5); prev != 0 {
		t.Fatalf("prev = %d", prev)
	}
	if prev := FetchAdd(&x, 3); prev != 5 {
		t.Fatalf("prev = %d", prev)
	}
	if x != 8 {
		t.Fatalf("x = %d", x)
	}
}

func TestFetchAddConcurrent(t *testing.T) {
	var x int64
	var wg sync.WaitGroup
	seen := make([]bool, 8*1000)
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				prev := FetchAdd(&x, 1)
				mu.Lock()
				if seen[prev] {
					t.Errorf("ticket %d issued twice", prev)
				}
				seen[prev] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if x != 8000 {
		t.Fatalf("x = %d", x)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	var l Lock
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Acquire()
				counter++ // protected by the full/empty lock
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != 4000 {
		t.Fatalf("counter = %d, want 4000 (lost updates => broken lock)", counter)
	}
}

func TestQueueFIFOSingleThread(t *testing.T) {
	q := NewQueue(4)
	q.Enqueue(1)
	q.Enqueue(2)
	q.Enqueue(3)
	for want := int64(1); want <= 3; want++ {
		if got := q.Dequeue(); got != want {
			t.Fatalf("dequeue = %d, want %d", got, want)
		}
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	q := NewQueue(2)
	q.Enqueue(1)
	q.Enqueue(2)
	done := make(chan struct{})
	go func() {
		q.Enqueue(3) // must wait for a dequeue
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("enqueue succeeded past capacity")
	case <-time.After(10 * time.Millisecond):
	}
	if q.Dequeue() != 1 {
		t.Fatal("fifo order broken")
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("enqueue never unblocked")
	}
}

func TestQueueMPMCStress(t *testing.T) {
	q := NewQueue(16)
	const producers, perProducer = 4, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(int64(p*perProducer + i))
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[int64]bool, producers*perProducer)
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for i := 0; i < producers*perProducer/4; i++ {
				v := q.Dequeue()
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d consumed twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), producers*perProducer)
	}
}

func TestQueueInvalidCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue(0)
}

func TestHashSetBasics(t *testing.T) {
	h := NewHashSet(100)
	added, err := h.Insert(42)
	if err != nil || !added {
		t.Fatalf("insert: %v, %v", added, err)
	}
	added, err = h.Insert(42)
	if err != nil || added {
		t.Fatalf("duplicate insert: %v, %v", added, err)
	}
	if !h.Contains(42) || h.Contains(43) {
		t.Fatal("contains wrong")
	}
	if h.Len() != 1 {
		t.Fatalf("len = %d", h.Len())
	}
	if _, err := h.Insert(-1); err == nil {
		t.Fatal("negative key should error")
	}
}

func TestHashSetFillsAndErrors(t *testing.T) {
	h := NewHashSet(4) // capacity 16 slots
	inserted := 0
	var lastErr error
	for k := int64(0); k < 100; k++ {
		added, err := h.Insert(k)
		if err != nil {
			lastErr = err
			break
		}
		if added {
			inserted++
		}
	}
	if lastErr == nil {
		t.Fatal("expected capacity error")
	}
	if inserted != h.Capacity() {
		t.Fatalf("inserted %d, capacity %d", inserted, h.Capacity())
	}
}

func TestHashSetConcurrentInsert(t *testing.T) {
	const keys = 4000
	h := NewHashSet(keys)
	var added int64
	var wg sync.WaitGroup
	// Every key inserted from two goroutines; exactly one must win.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := int64(0); k < keys; k++ {
				ok, err := h.Insert(k)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					FetchAdd(&added, 1)
				}
			}
		}()
	}
	wg.Wait()
	if added != keys {
		t.Fatalf("added = %d, want %d (duplicate or lost claims)", added, keys)
	}
	for k := int64(0); k < keys; k++ {
		if !h.Contains(k) {
			t.Fatalf("key %d missing", k)
		}
	}
	if h.Len() != keys {
		t.Fatalf("len = %d", h.Len())
	}
}

func BenchmarkFetchAdd(b *testing.B) {
	var x int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			FetchAdd(&x, 1)
		}
	})
}

func BenchmarkQueuePingPong(b *testing.B) {
	q := NewQueue(64)
	go func() {
		for {
			q.Enqueue(1)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Dequeue()
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const workers, rounds = 6, 50
	b := NewBarrier(workers)
	var counter int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				FetchAdd(&counter, 1)
				b.Wait()
				// After the barrier every worker's increment for this
				// round is visible.
				if got := counter; got < int64((r+1)*workers) {
					errs <- fmtError("round %d: counter %d < %d", r, got, (r+1)*workers)
					return
				}
				b.Wait() // second barrier so no one races ahead a round
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d", counter, workers*rounds)
	}
}

func fmtError(format string, args ...interface{}) error {
	return &barrierErr{msg: format, args: args}
}

type barrierErr struct {
	msg  string
	args []interface{}
}

func (e *barrierErr) Error() string { return e.msg }

func TestBarrierInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}
