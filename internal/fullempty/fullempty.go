// Package fullempty implements the Cray XMT's word-level synchronization
// primitives in Go: every memory word carries a full/empty tag bit, and
// loads/stores can wait on and toggle that bit atomically. The paper's
// background section names these as the machine's fine-grained
// synchronization constructs ("full-empty bits as well as atomic
// fetch-and-add instructions"); GraphCT's hand-tuned kernels are written
// against them.
//
// The semantics follow the MTA/XMT generic operations:
//
//	writeef   wait until EMPTY, write value, set FULL
//	readfe    wait until FULL, read value, set EMPTY
//	readff    wait until FULL, read value, leave FULL
//	writexf   write value, set FULL (no wait)
//	purge     set EMPTY, clear value
//	int_fetch_add  atomic add returning the previous value (no tag change)
//
// On the real machine a waiting stream parks in hardware; here waiting
// goroutines park on a condition variable. The package also provides the
// classic XMT idioms built from these primitives: a lock, a bounded
// multi-producer/multi-consumer queue with full/empty slot handoff, and an
// open-addressing hash set whose slots are claimed with writeef (after
// "Hashing strategies for the Cray XMT", Goodman et al., cited by the
// paper).
package fullempty

import (
	"sync"
	"sync/atomic"
)

// Word is a single int64 memory cell with a full/empty tag. The zero value
// is an empty cell holding 0 — like trap-on-load memory fresh from purge.
type Word struct {
	mu   sync.Mutex
	cond *sync.Cond
	val  int64
	full bool
}

// NewFull returns a word initialized full with the given value.
func NewFull(v int64) *Word {
	w := &Word{val: v, full: true}
	return w
}

func (w *Word) lazyInit() {
	if w.cond == nil {
		w.cond = sync.NewCond(&w.mu)
	}
}

// WriteEF waits until the word is empty, writes v, and sets it full
// (the XMT's writeef).
func (w *Word) WriteEF(v int64) {
	w.mu.Lock()
	w.lazyInit()
	for w.full {
		w.cond.Wait()
	}
	w.val = v
	w.full = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// ReadFE waits until the word is full, reads it, and sets it empty
// (the XMT's readfe).
func (w *Word) ReadFE() int64 {
	w.mu.Lock()
	w.lazyInit()
	for !w.full {
		w.cond.Wait()
	}
	v := w.val
	w.full = false
	w.cond.Broadcast()
	w.mu.Unlock()
	return v
}

// ReadFF waits until the word is full and reads it, leaving it full
// (the XMT's readff).
func (w *Word) ReadFF() int64 {
	w.mu.Lock()
	w.lazyInit()
	for !w.full {
		w.cond.Wait()
	}
	v := w.val
	w.mu.Unlock()
	return v
}

// WriteXF writes v and sets the word full regardless of its state
// (the XMT's writexf).
func (w *Word) WriteXF(v int64) {
	w.mu.Lock()
	w.lazyInit()
	w.val = v
	w.full = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Purge empties the word and zeroes its value (the XMT's purge).
func (w *Word) Purge() {
	w.mu.Lock()
	w.lazyInit()
	w.val = 0
	w.full = false
	w.cond.Broadcast()
	w.mu.Unlock()
}

// TryReadFE attempts a non-blocking readfe, reporting success.
func (w *Word) TryReadFE() (int64, bool) {
	w.mu.Lock()
	w.lazyInit()
	if !w.full {
		w.mu.Unlock()
		return 0, false
	}
	v := w.val
	w.full = false
	w.cond.Broadcast()
	w.mu.Unlock()
	return v, true
}

// Full reports the tag bit (racy by nature, like inspecting it on the
// machine; useful in tests).
func (w *Word) Full() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.full
}

// FetchAdd is the XMT's int_fetch_add on an ordinary (untagged) word:
// atomic add, returning the previous value.
func FetchAdd(addr *int64, delta int64) int64 {
	return atomic.AddInt64(addr, delta) - delta
}

// Lock is the canonical XMT lock idiom: a full word is unlocked; readfe
// acquires (leaving it empty so others wait), writeef releases.
type Lock struct {
	w Word
	o sync.Once
}

// Acquire takes the lock.
func (l *Lock) Acquire() {
	l.o.Do(func() { l.w.WriteXF(1) })
	l.w.ReadFE()
}

// Release returns the lock. Releasing an unheld lock blocks, like the real
// idiom misused.
func (l *Lock) Release() {
	l.w.WriteEF(1)
}
