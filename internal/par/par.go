// Package par provides the host-side parallel primitives used to execute
// graph kernels for real while the Cray XMT machine model accounts for
// simulated time. Everything here affects only host wall-clock speed and
// never the simulated results: simulated time is a pure function of the work
// profile a kernel records, so kernels must produce identical answers and
// identical profiles whether par runs them on 1 or N host cores.
//
// The primitives mirror the loop-level parallelism GraphCT relies on on the
// XMT: flat parallel-for over index ranges, reductions, and prefix sums.
package par

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxProcs is the number of host workers used by default. It is a variable
// so tests can force sequential or oversubscribed execution.
var maxProcs = runtime.GOMAXPROCS(0)

// SetWorkers overrides the number of host workers (<=0 restores the
// default). It returns the previous value. Intended for tests.
func SetWorkers(n int) int {
	old := maxProcs
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxProcs = n
	return old
}

// Workers reports the current number of host workers.
func Workers() int { return maxProcs }

// grainSize is the minimum number of iterations worth shipping to another
// goroutine; below this, spawning costs more than it saves.
const grainSize = 2048

// WorkerTimer accumulates per-worker busy time: the wall-clock time each
// host worker spent inside loop bodies, folded chunk by chunk. It also
// tracks chunk-granularity statistics (chunk count and the single longest
// chunk) so observers can report load imbalance — max over mean per-chunk
// busy time — per phase. It exists for the observability layer (package
// obs) — installing a timer changes only what is measured, never what is
// computed, so the determinism invariant is untouched. Slots are
// cache-line padded so concurrent workers don't false-share.
type WorkerTimer struct {
	slots []timerSlot
}

type timerSlot struct {
	ns     int64
	chunks int64
	maxNs  int64
	_      [5]int64 // pad to a 64-byte line
}

// NewWorkerTimer returns a timer for the given worker count.
func NewWorkerTimer(workers int) *WorkerTimer {
	if workers < 1 {
		workers = 1
	}
	return &WorkerTimer{slots: make([]timerSlot, workers)}
}

// Add folds d into worker w's busy time, counting one chunk. Out-of-range
// workers are dropped (the timer was sized for a different configuration).
func (t *WorkerTimer) Add(w int, d time.Duration) {
	if w < 0 || w >= len(t.slots) {
		return
	}
	s := &t.slots[w]
	atomic.AddInt64(&s.ns, int64(d))
	atomic.AddInt64(&s.chunks, 1)
	for {
		cur := atomic.LoadInt64(&s.maxNs)
		if int64(d) <= cur || atomic.CompareAndSwapInt64(&s.maxNs, cur, int64(d)) {
			return
		}
	}
}

// Drain moves the accumulated busy times into busy (one entry per worker,
// truncated to len(busy)) and resets the timer, returning busy. Callers
// drain at phase boundaries to get per-phase utilization.
func (t *WorkerTimer) Drain(busy []time.Duration) []time.Duration {
	for w := range t.slots {
		ns := atomic.SwapInt64(&t.slots[w].ns, 0)
		atomic.StoreInt64(&t.slots[w].chunks, 0)
		atomic.StoreInt64(&t.slots[w].maxNs, 0)
		if w < len(busy) {
			busy[w] = time.Duration(ns)
		}
	}
	return busy
}

// DrainChunks reads and resets the chunk-granularity statistics: the total
// number of chunks timed since the last drain and the single longest chunk
// across all workers. Callers that want both per-worker busy time and
// chunk stats must call DrainChunks before Drain (Drain resets both).
func (t *WorkerTimer) DrainChunks() (chunks int64, maxChunk time.Duration) {
	for w := range t.slots {
		chunks += atomic.SwapInt64(&t.slots[w].chunks, 0)
		if ns := atomic.SwapInt64(&t.slots[w].maxNs, 0); time.Duration(ns) > maxChunk {
			maxChunk = time.Duration(ns)
		}
	}
	return chunks, maxChunk
}

// Workers returns the worker count the timer was sized for.
func (t *WorkerTimer) Workers() int { return len(t.slots) }

// curTimer is the installed timer; nil (the default) means "don't
// measure", and the only hot-path cost is one atomic pointer load per
// parallel region plus a nil check per chunk.
var curTimer atomic.Pointer[WorkerTimer]

// SetTimer installs t as the process's busy-time collector (nil uninstalls)
// and returns the previous timer so callers can nest and restore. One
// observed kernel at a time: concurrent observed runs would fold into
// whichever timer is installed last.
func SetTimer(t *WorkerTimer) *WorkerTimer {
	return curTimer.Swap(t)
}

// For runs body(i) for every i in [0, n), potentially in parallel.
// Iterations must be independent.
func For(n int, body func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked partitions [0, n) into contiguous chunks and runs body(lo, hi)
// for each chunk, potentially in parallel. It is the preferred form for hot
// loops: the per-iteration closure call of For is hoisted out.
func ForChunked(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxProcs
	if workers <= 1 || n <= grainSize {
		if t := curTimer.Load(); t != nil {
			start := time.Now()
			body(0, n)
			t.Add(0, time.Since(start))
			return
		}
		body(0, n)
		return
	}
	// Dynamic scheduling over fixed-size chunks handles the skewed work
	// distributions of scale-free graphs (one chunk may contain a vertex
	// with a million-edge adjacency list).
	chunk := n / (workers * 8)
	if chunk < grainSize {
		chunk = grainSize
	}
	t := curTimer.Load()
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if t != nil {
					start := time.Now()
					body(lo, hi)
					t.Add(w, time.Since(start))
				} else {
					body(lo, hi)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForCoarse runs body(i) for every i in [0, n), potentially in parallel,
// with one task per iteration. Unlike For, which assumes per-iteration work
// is tiny and batches iterations by grainSize, ForCoarse is for
// coarse-grained bodies (whole chunks, per-chunk merges) where even a
// handful of iterations are worth distributing across workers.
func ForCoarse(n int, body func(i int)) {
	workers := maxProcs
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if t := curTimer.Load(); t != nil {
			start := time.Now()
			for i := 0; i < n; i++ {
				body(i)
			}
			t.Add(0, time.Since(start))
			return
		}
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	t := curTimer.Load()
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if t != nil {
					start := time.Now()
					body(i)
					t.Add(w, time.Since(start))
				} else {
					body(i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForFixedChunks partitions [0, n) into chunks of exactly chunkSize (the
// last chunk may be short) and runs body(c, lo, hi) for every chunk c,
// potentially in parallel. The chunk boundaries depend only on n and
// chunkSize — never on the worker count — so callers that accumulate
// per-chunk partial results and merge them in chunk index order get output
// that is bit-identical whether par runs on 1 or N host cores. This is the
// deterministic-merge building block the BSP engine's host-parallel
// supersteps are built on.
func ForFixedChunks(n, chunkSize int, body func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunkSize <= 0 {
		chunkSize = grainSize
	}
	numChunks := (n + chunkSize - 1) / chunkSize
	ForCoarse(numChunks, func(c int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		body(c, lo, hi)
	})
}

// ForBoundaryChunks runs body(c, boundaries[c], boundaries[c+1]) for every
// chunk c in [0, len(boundaries)-1), potentially in parallel. boundaries
// must be non-decreasing. It is the weighted twin of ForFixedChunks: the
// caller supplies explicit chunk boundaries (typically from
// WeightedBoundaries over a work prefix sum), and the same determinism
// contract applies — as long as the boundaries themselves are computed
// from worker-independent quantities, per-chunk partials merged in chunk
// index order are bit-identical at any worker count.
func ForBoundaryChunks(boundaries []int, body func(c, lo, hi int)) {
	numChunks := len(boundaries) - 1
	if numChunks <= 0 {
		return
	}
	ForCoarse(numChunks, func(c int) {
		body(c, boundaries[c], boundaries[c+1])
	})
}

// WeightedBoundaries splits [0, n) into at most maxChunks contiguous chunks
// of near-equal weight and appends the chunk boundaries to dst (reusing its
// capacity). prefix is the monotone non-decreasing work prefix: prefix(i)
// is the total weight of items [0, i), so prefix(n) is the total weight —
// the CSR degree prefix sum (graph.Offsets) is exactly this shape. The
// returned boundaries start at 0, end at n, are strictly increasing (empty
// chunks are elided, so a single item heavier than a whole chunk target
// gets a chunk to itself), and depend only on n, maxChunks, and the prefix
// values — never on the worker count.
func WeightedBoundaries(dst []int, n, maxChunks int, prefix func(i int) int64) []int {
	dst = dst[:0]
	if n <= 0 {
		return dst
	}
	if maxChunks < 1 {
		maxChunks = 1
	}
	dst = append(dst, 0)
	total := prefix(n)
	if total <= 0 || maxChunks == 1 {
		return append(dst, n)
	}
	lo := 0
	for c := 1; c < maxChunks; c++ {
		// Chunk c-1 ends at the smallest i with prefix(i) >= c*total/maxChunks
		// (integer-rounded target). Binary search over [lo, n].
		target := total * int64(c) / int64(maxChunks)
		b := lo + sort.Search(n-lo, func(k int) bool { return prefix(lo+k) >= target })
		if b <= lo {
			continue // target falls inside the previous item: elide the empty chunk
		}
		if b >= n {
			break
		}
		dst = append(dst, b)
		lo = b
	}
	return append(dst, n)
}

// ReduceInt64 computes the sum of body(i) over i in [0, n) in parallel.
func ReduceInt64(n int, body func(i int) int64) int64 {
	var total int64
	ForChunked(n, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += body(i)
		}
		atomic.AddInt64(&total, local)
	})
	return total
}

// ReduceFloat64 computes the sum of body(i) over i in [0, n).
//
// Note: with more than one worker the association order of the floating
// point sum depends on chunk boundaries, which are deterministic for a given
// worker count, so results are reproducible per configuration.
func ReduceFloat64(n int, body func(i int) float64) float64 {
	if maxProcs <= 1 || n <= grainSize {
		var total float64
		for i := 0; i < n; i++ {
			total += body(i)
		}
		return total
	}
	var mu sync.Mutex
	var total float64
	ForChunked(n, func(lo, hi int) {
		var local float64
		for i := lo; i < hi; i++ {
			local += body(i)
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}

// MaxInt64 returns the maximum of body(i) over i in [0, n), or def when
// n == 0.
func MaxInt64(n int, def int64, body func(i int) int64) int64 {
	if n <= 0 {
		return def
	}
	var mu sync.Mutex
	best := def
	first := true
	ForChunked(n, func(lo, hi int) {
		local := body(lo)
		for i := lo + 1; i < hi; i++ {
			if v := body(i); v > local {
				local = v
			}
		}
		mu.Lock()
		if first || local > best {
			best = local
			first = false
		}
		mu.Unlock()
	})
	return best
}

// CountIf returns the number of i in [0, n) for which pred(i) holds.
func CountIf(n int, pred func(i int) bool) int64 {
	return ReduceInt64(n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// ExclusivePrefixSum replaces counts with its exclusive prefix sum in place
// and returns the total. counts[i] afterwards holds the sum of the original
// counts[0:i]. This is the standard CSR row-offset construction step.
func ExclusivePrefixSum(counts []int64) int64 {
	var sum int64
	for i, c := range counts {
		counts[i] = sum
		sum += c
	}
	return sum
}

// ExclusivePrefixSum32 is ExclusivePrefixSum for int32 counts with an int64
// total (the total may exceed 2^31 even when individual offsets fit).
func ExclusivePrefixSum32(counts []int32) int64 {
	var sum int64
	for i, c := range counts {
		counts[i] = int32(sum)
		sum += int64(c)
	}
	return sum
}

// FillInt64 sets every element of s to v, in parallel for large slices.
func FillInt64(s []int64, v int64) {
	ForChunked(len(s), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s[i] = v
		}
	})
}

// FillInt32 sets every element of s to v, in parallel for large slices.
func FillInt32(s []int32, v int32) {
	ForChunked(len(s), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s[i] = v
		}
	})
}

// Iota fills s with s[i] = i.
func Iota(s []int64) {
	ForChunked(len(s), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s[i] = int64(i)
		}
	})
}

// ParallelExclusivePrefixSum computes the exclusive prefix sum of counts in
// place using the classic two-pass chunked scan (per-chunk sums, serial
// scan of chunk totals, parallel local scans). Semantically identical to
// ExclusivePrefixSum; preferable for very large arrays on multi-core
// hosts. Returns the total.
func ParallelExclusivePrefixSum(counts []int64) int64 {
	n := len(counts)
	workers := maxProcs
	if workers <= 1 || n < 4*grainSize {
		return ExclusivePrefixSum(counts)
	}
	chunks := workers * 4
	chunkSize := (n + chunks - 1) / chunks
	sums := make([]int64, chunks)

	// Pass 1: per-chunk totals.
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * chunkSize
		if lo >= n {
			break
		}
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			var s int64
			for i := lo; i < hi; i++ {
				s += counts[i]
			}
			sums[c] = s
		}(c, lo, hi)
	}
	wg.Wait()

	// Serial scan of chunk totals.
	total := ExclusivePrefixSum(sums)

	// Pass 2: local exclusive scans offset by the chunk base.
	for c := 0; c < chunks; c++ {
		lo := c * chunkSize
		if lo >= n {
			break
		}
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			run := sums[c]
			for i := lo; i < hi; i++ {
				v := counts[i]
				counts[i] = run
				run += v
			}
		}(c, lo, hi)
	}
	wg.Wait()
	return total
}

// RadixSortInt64 sorts a ascending with a stable LSD byte-radix pass,
// O(len(a) * ceil(bits(maxVal)/8)) time. Keys must lie in [0, maxVal].
// scratch must be at least len(a) long; it is clobbered. The sort is
// sequential — it exists to replace comparison sorts on small worklists
// (the BSP engine's sparse-activation candidate list), where O(k) beats
// O(k log k) and the deterministic ascending order must be preserved.
func RadixSortInt64(a, scratch []int64, maxVal int64) {
	if len(a) < 2 {
		return
	}
	var counts [256]int64
	src, dst := a, scratch[:len(a)]
	for shift := uint(0); shift == 0 || maxVal>>shift > 0; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range src {
			counts[(v>>shift)&0xff]++
		}
		var sum int64
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, v := range src {
			b := (v >> shift) & 0xff
			dst[counts[b]] = v
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// ParallelExclusivePrefixSum32 is ParallelExclusivePrefixSum for int32
// counts with an int64 total. The caller must ensure every prefix fits in
// int32 (the BSP engine's message counts do: supersteps are capped well
// below 2^31 messages).
func ParallelExclusivePrefixSum32(counts []int32) int64 {
	n := len(counts)
	workers := maxProcs
	if workers <= 1 || n < 4*grainSize {
		return ExclusivePrefixSum32(counts)
	}
	chunks := workers * 4
	chunkSize := (n + chunks - 1) / chunks
	sums := make([]int64, chunks)

	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * chunkSize
		if lo >= n {
			break
		}
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(counts[i])
			}
			sums[c] = s
		}(c, lo, hi)
	}
	wg.Wait()

	total := ExclusivePrefixSum(sums)

	for c := 0; c < chunks; c++ {
		lo := c * chunkSize
		if lo >= n {
			break
		}
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			run := sums[c]
			for i := lo; i < hi; i++ {
				v := int64(counts[i])
				counts[i] = int32(run)
				run += v
			}
		}(c, lo, hi)
	}
	wg.Wait()
	return total
}
