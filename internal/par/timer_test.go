package par

import (
	"sync"
	"testing"
	"time"
)

func TestWorkerTimerAddDrain(t *testing.T) {
	wt := NewWorkerTimer(4)
	if wt.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", wt.Workers())
	}
	wt.Add(0, 5*time.Millisecond)
	wt.Add(0, 3*time.Millisecond)
	wt.Add(3, time.Second)
	wt.Add(-1, time.Hour) // out of range: dropped, not a panic
	wt.Add(4, time.Hour)

	busy := wt.Drain(make([]time.Duration, 4))
	want := []time.Duration{8 * time.Millisecond, 0, 0, time.Second}
	for i := range want {
		if busy[i] != want[i] {
			t.Fatalf("busy[%d] = %v, want %v", i, busy[i], want[i])
		}
	}
	// Drain resets the accumulators.
	busy = wt.Drain(busy)
	for i, b := range busy {
		if b != 0 {
			t.Fatalf("after drain, busy[%d] = %v, want 0", i, b)
		}
	}
}

func TestWorkerTimerConcurrentAdds(t *testing.T) {
	const workers, adds = 8, 1000
	wt := NewWorkerTimer(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				wt.Add(w, time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	busy := wt.Drain(make([]time.Duration, workers))
	for w, b := range busy {
		if b != adds*time.Microsecond {
			t.Fatalf("worker %d busy = %v, want %v", w, b, adds*time.Microsecond)
		}
	}
}

// TestSetTimerCapturesLoopBusy installs a timer, runs timed loops, and
// checks every worker's accumulated busy time is sane: non-negative, and in
// total at least the serial floor of the timed body is attributed.
func TestSetTimerCapturesLoopBusy(t *testing.T) {
	wt := NewWorkerTimer(Workers())
	prev := SetTimer(wt)
	defer SetTimer(prev)

	var total int64
	var mu sync.Mutex
	ForChunked(1<<16, func(lo, hi int) {
		s := int64(0)
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		mu.Lock()
		total += s
		mu.Unlock()
	})
	const n = 1 << 16
	if want := int64(n) * (n - 1) / 2; total != want {
		t.Fatalf("timed loop altered results: sum = %d, want %d", total, want)
	}
	busy := wt.Drain(make([]time.Duration, wt.Workers()))
	var sum time.Duration
	for w, b := range busy {
		if b < 0 {
			t.Fatalf("worker %d negative busy %v", w, b)
		}
		sum += b
	}
	if sum == 0 {
		t.Fatal("no busy time recorded by timed ForChunked")
	}
}

func TestSetTimerNilUninstalls(t *testing.T) {
	wt := NewWorkerTimer(Workers())
	prev := SetTimer(wt)
	SetTimer(prev)
	ForChunked(1<<12, func(lo, hi int) {})
	busy := wt.Drain(make([]time.Duration, wt.Workers()))
	for w, b := range busy {
		if b != 0 {
			t.Fatalf("worker %d accumulated %v after uninstall", w, b)
		}
	}
}

func TestForCoarseTimed(t *testing.T) {
	wt := NewWorkerTimer(Workers())
	prev := SetTimer(wt)
	defer SetTimer(prev)

	hits := make([]int32, 64)
	ForCoarse(len(hits), func(i int) {
		hits[i]++
		time.Sleep(10 * time.Microsecond)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	busy := wt.Drain(make([]time.Duration, wt.Workers()))
	var sum time.Duration
	for _, b := range busy {
		sum += b
	}
	if sum < 64*10*time.Microsecond {
		t.Fatalf("ForCoarse busy %v, want >= %v", sum, 64*10*time.Microsecond)
	}
}

func TestDrainChunksTracksMax(t *testing.T) {
	wt := NewWorkerTimer(Workers())
	prev := SetTimer(wt)
	defer SetTimer(prev)

	// One slow iteration among fast ones: the max chunk must dominate the
	// mean, whatever granularity the scheduler timed at.
	ForCoarse(32, func(i int) {
		if i == 7 {
			time.Sleep(2 * time.Millisecond)
		}
	})
	chunks, maxChunk := wt.DrainChunks()
	if chunks < 1 {
		t.Fatalf("chunks = %d, want >= 1", chunks)
	}
	if maxChunk < 2*time.Millisecond {
		t.Fatalf("maxChunk = %v, want >= 2ms", maxChunk)
	}
	busy := wt.Drain(make([]time.Duration, wt.Workers()))
	var sum time.Duration
	for _, b := range busy {
		sum += b
	}
	if maxChunk > sum {
		t.Fatalf("maxChunk %v exceeds total busy %v", maxChunk, sum)
	}

	// Both drains reset their stats.
	if c, m := wt.DrainChunks(); c != 0 || m != 0 {
		t.Fatalf("second DrainChunks = (%d, %v), want zeros", c, m)
	}
}

func TestDrainResetsChunkStats(t *testing.T) {
	wt := NewWorkerTimer(Workers())
	prev := SetTimer(wt)
	defer SetTimer(prev)

	ForChunked(1<<16, func(lo, hi int) { time.Sleep(time.Microsecond) })
	wt.Drain(make([]time.Duration, wt.Workers()))
	// Drain resets chunk stats too (the documented DrainChunks-first rule).
	if c, m := wt.DrainChunks(); c != 0 || m != 0 {
		t.Fatalf("DrainChunks after Drain = (%d, %v), want zeros", c, m)
	}
}
