package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, grainSize, grainSize + 1, 3*grainSize + 5} {
		visited := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&visited[i], 1) })
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForChunkedCoversAllIndicesParallel(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	n := 10 * grainSize
	visited := make([]int32, n)
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visited[i], 1)
		}
	})
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForNegativeN(t *testing.T) {
	called := false
	For(-5, func(i int) { called = true })
	if called {
		t.Fatal("body called for negative n")
	}
}

func TestReduceInt64(t *testing.T) {
	n := 4*grainSize + 13
	got := ReduceInt64(n, func(i int) int64 { return int64(i) })
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("ReduceInt64 = %d, want %d", got, want)
	}
}

func TestReduceInt64MatchesSequential(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)
		var seq int64
		for i := 0; i < n; i++ {
			seq += int64(i) ^ seed
		}
		parv := ReduceInt64(n, func(i int) int64 { return int64(i) ^ seed })
		return seq == parv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceFloat64(t *testing.T) {
	n := 2 * grainSize
	got := ReduceFloat64(n, func(i int) float64 { return 0.5 })
	if got != float64(n)/2 {
		t.Fatalf("ReduceFloat64 = %v, want %v", got, float64(n)/2)
	}
}

func TestMaxInt64(t *testing.T) {
	n := 3 * grainSize
	got := MaxInt64(n, -1, func(i int) int64 {
		if i == n/2 {
			return 1 << 40
		}
		return int64(i)
	})
	if got != 1<<40 {
		t.Fatalf("MaxInt64 = %d, want %d", got, int64(1)<<40)
	}
	if got := MaxInt64(0, -7, func(i int) int64 { return 0 }); got != -7 {
		t.Fatalf("MaxInt64 empty = %d, want -7", got)
	}
}

func TestCountIf(t *testing.T) {
	n := 2*grainSize + 100
	got := CountIf(n, func(i int) bool { return i%3 == 0 })
	want := int64((n + 2) / 3)
	if got != want {
		t.Fatalf("CountIf = %d, want %d", got, want)
	}
}

func TestExclusivePrefixSum(t *testing.T) {
	counts := []int64{3, 0, 2, 5, 1}
	total := ExclusivePrefixSum(counts)
	if total != 11 {
		t.Fatalf("total = %d, want 11", total)
	}
	want := []int64{0, 3, 3, 5, 10}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestExclusivePrefixSumEmpty(t *testing.T) {
	if total := ExclusivePrefixSum(nil); total != 0 {
		t.Fatalf("total = %d, want 0", total)
	}
}

func TestExclusivePrefixSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int64, len(raw))
		var want int64
		for i, v := range raw {
			counts[i] = int64(v)
			want += int64(v)
		}
		orig := append([]int64(nil), counts...)
		total := ExclusivePrefixSum(counts)
		if total != want {
			return false
		}
		// counts[i] + orig[i] == counts[i+1] (or total at the end).
		for i := range counts {
			next := total
			if i+1 < len(counts) {
				next = counts[i+1]
			}
			if counts[i]+orig[i] != next {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExclusivePrefixSum32(t *testing.T) {
	counts := []int32{1, 2, 3}
	if total := ExclusivePrefixSum32(counts); total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	if counts[0] != 0 || counts[1] != 1 || counts[2] != 3 {
		t.Fatalf("prefix = %v", counts)
	}
}

func TestFillAndIota(t *testing.T) {
	s := make([]int64, 3*grainSize)
	FillInt64(s, 42)
	for i, v := range s {
		if v != 42 {
			t.Fatalf("s[%d] = %d after fill", i, v)
		}
	}
	Iota(s)
	for i, v := range s {
		if v != int64(i) {
			t.Fatalf("s[%d] = %d after iota", i, v)
		}
	}
	s32 := make([]int32, grainSize*2)
	FillInt32(s32, -1)
	for i, v := range s32 {
		if v != -1 {
			t.Fatalf("s32[%d] = %d after fill", i, v)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	orig := Workers()
	prev := SetWorkers(3)
	if prev != orig {
		t.Fatalf("SetWorkers returned %d, want %d", prev, orig)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() <= 0 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
	SetWorkers(orig)
}

func BenchmarkForChunkedSum(b *testing.B) {
	n := 1 << 20
	data := make([]int64, n)
	Iota(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int64
		ForChunked(n, func(lo, hi int) {
			var local int64
			for j := lo; j < hi; j++ {
				local += data[j]
			}
			atomic.AddInt64(&total, local)
		})
	}
}

func TestParallelExclusivePrefixSumMatchesSerial(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	for _, n := range []int{0, 1, 100, 4 * grainSize, 4*grainSize + 17, 10 * grainSize} {
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(i%13) - 3
			b[i] = a[i]
		}
		ta := ExclusivePrefixSum(a)
		tb := ParallelExclusivePrefixSum(b)
		if ta != tb {
			t.Fatalf("n=%d: totals %d vs %d", n, ta, tb)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: prefix[%d] %d vs %d", n, i, a[i], b[i])
			}
		}
	}
}

func TestParallelExclusivePrefixSumProperty(t *testing.T) {
	defer SetWorkers(SetWorkers(3))
	f := func(raw []uint16) bool {
		counts := make([]int64, len(raw))
		orig := make([]int64, len(raw))
		for i, v := range raw {
			counts[i] = int64(v)
			orig[i] = int64(v)
		}
		total := ParallelExclusivePrefixSum(counts)
		var sum int64
		for i := range counts {
			if counts[i] != sum {
				return false
			}
			sum += orig[i]
		}
		return total == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelPrefixSum(b *testing.B) {
	data := make([]int64, 1<<22)
	for i := range data {
		data[i] = int64(i % 7)
	}
	scratch := make([]int64, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, data)
		ParallelExclusivePrefixSum(scratch)
	}
}

func TestForCoarseCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17, 1000} {
		for _, w := range []int{1, 4, 32} {
			func() {
				defer SetWorkers(SetWorkers(w))
				hits := make([]int32, n)
				ForCoarse(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
					}
				}
			}()
		}
	}
}

func TestForFixedChunksBoundaries(t *testing.T) {
	// Chunk boundaries must be a pure function of (n, chunkSize): every
	// index covered exactly once, every chunk exactly chunkSize long except
	// the last, regardless of worker count.
	for _, w := range []int{1, 5} {
		func() {
			defer SetWorkers(SetWorkers(w))
			const n, cs = 1003, 100
			hits := make([]int32, n)
			var chunks int64
			ForFixedChunks(n, cs, func(c, lo, hi int) {
				atomic.AddInt64(&chunks, 1)
				if lo != c*cs {
					t.Errorf("chunk %d starts at %d, want %d", c, lo, c*cs)
				}
				if hi != lo+cs && hi != n {
					t.Errorf("chunk %d ends at %d", c, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if chunks != 11 {
				t.Fatalf("w=%d: %d chunks, want 11", w, chunks)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("w=%d: index %d hit %d times", w, i, h)
				}
			}
		}()
	}
}

func TestParallelExclusivePrefixSum32MatchesSerial(t *testing.T) {
	defer SetWorkers(SetWorkers(7))
	n := 5*grainSize + 123
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 11)
		b[i] = a[i]
	}
	totA := ExclusivePrefixSum32(a)
	totB := ParallelExclusivePrefixSum32(b)
	if totA != totB {
		t.Fatalf("totals differ: %d vs %d", totA, totB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, b[i], a[i])
		}
	}
}

func TestRadixSortInt64(t *testing.T) {
	for _, tc := range [][]int64{
		{},
		{5},
		{3, 1, 2},
		{0, 0, 0},
		{1 << 40, 7, 1 << 20, 7, 0, 1<<40 - 1},
	} {
		a := append([]int64(nil), tc...)
		scratch := make([]int64, len(a))
		var max int64
		for _, v := range a {
			if v > max {
				max = v
			}
		}
		RadixSortInt64(a, scratch, max)
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				t.Fatalf("not sorted: %v", a)
			}
		}
		if len(a) != len(tc) {
			t.Fatalf("length changed: %d vs %d", len(a), len(tc))
		}
	}
}

func TestRadixSortInt64Large(t *testing.T) {
	const n = 10000
	a := make([]int64, n)
	state := uint64(12345)
	for i := range a {
		state = state*6364136223846793005 + 1442695040888963407
		a[i] = int64(state % 100000)
	}
	scratch := make([]int64, n)
	RadixSortInt64(a, scratch, 99999)
	for i := 1; i < n; i++ {
		if a[i-1] > a[i] {
			t.Fatalf("not sorted at %d: %d > %d", i, a[i-1], a[i])
		}
	}
}
