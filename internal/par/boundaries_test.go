package par

import (
	"testing"
)

// checkBoundaries asserts the WeightedBoundaries contract: strictly
// increasing, starting at 0, ending at n, at most maxChunks chunks.
func checkBoundaries(t *testing.T, b []int, n, maxChunks int) {
	t.Helper()
	if n <= 0 {
		if len(b) != 0 {
			t.Fatalf("boundaries for n=%d: %v, want empty", n, b)
		}
		return
	}
	if len(b) < 2 || b[0] != 0 || b[len(b)-1] != n {
		t.Fatalf("boundaries %v: want 0..%d endpoints", b, n)
	}
	if got := len(b) - 1; got > maxChunks {
		t.Fatalf("%d chunks, max %d: %v", got, maxChunks, b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("boundaries not strictly increasing at %d: %v", i, b)
		}
	}
}

func TestWeightedBoundariesUniform(t *testing.T) {
	const n, chunks = 1000, 10
	// Unit weights: prefix(i) = i. Chunks should be exactly n/chunks wide.
	b := WeightedBoundaries(nil, n, chunks, func(i int) int64 { return int64(i) })
	checkBoundaries(t, b, n, chunks)
	if len(b)-1 != chunks {
		t.Fatalf("got %d chunks, want %d: %v", len(b)-1, chunks, b)
	}
	for i := 1; i < len(b); i++ {
		if w := b[i] - b[i-1]; w != n/chunks {
			t.Fatalf("chunk %d width %d, want %d", i-1, w, n/chunks)
		}
	}
}

func TestWeightedBoundariesSkewed(t *testing.T) {
	// One hub at index 100 carrying half the total weight: the hub must be
	// isolated into a narrow chunk, and every chunk's work must respect the
	// classic bound total/maxChunks + maxWeight.
	const n, chunks = 1000, 16
	weights := make([]int64, n)
	var total int64
	for i := range weights {
		weights[i] = 1
	}
	weights[100] = 1000
	prefix := make([]int64, n+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	total = prefix[n]

	b := WeightedBoundaries(nil, n, chunks, func(i int) int64 { return prefix[i] })
	checkBoundaries(t, b, n, chunks)
	bound := total/int64(chunks) + 1000
	for i := 1; i < len(b); i++ {
		if w := prefix[b[i]] - prefix[b[i-1]]; w > bound {
			t.Fatalf("chunk [%d,%d) work %d exceeds bound %d", b[i-1], b[i], w, bound)
		}
	}
}

func TestWeightedBoundariesEdgeCases(t *testing.T) {
	unit := func(i int) int64 { return int64(i) }
	checkBoundaries(t, WeightedBoundaries(nil, 0, 8, unit), 0, 8)
	// Zero total work: single chunk covering everything.
	b := WeightedBoundaries(nil, 50, 8, func(i int) int64 { return 0 })
	checkBoundaries(t, b, 50, 8)
	if len(b) != 2 {
		t.Fatalf("zero-work boundaries %v, want [0 50]", b)
	}
	// maxChunks 1 (and a nonsense 0, clamped to 1): single chunk.
	for _, mc := range []int{1, 0} {
		b = WeightedBoundaries(b, 50, mc, unit)
		checkBoundaries(t, b, 50, 1)
	}
	// Fewer items than chunks: every chunk is a single item.
	b = WeightedBoundaries(b, 3, 8, unit)
	checkBoundaries(t, b, 3, 8)
	if len(b)-1 != 3 {
		t.Fatalf("3 items gave %d chunks: %v", len(b)-1, b)
	}
}

func TestWeightedBoundariesReusesDst(t *testing.T) {
	unit := func(i int) int64 { return int64(i) }
	first := WeightedBoundaries(nil, 1<<12, 256, unit)
	second := WeightedBoundaries(first, 1<<12, 256, unit)
	if &first[0] != &second[0] {
		t.Fatalf("dst was reallocated despite sufficient capacity")
	}
}

func TestForBoundaryChunksCoversAllOnce(t *testing.T) {
	const n = 10000
	prefix := make([]int64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + int64(i%17) + 1
	}
	b := WeightedBoundaries(nil, n, 64, func(i int) int64 { return prefix[i] })
	checkBoundaries(t, b, n, 64)

	visits := make([]int32, n)
	chunkOf := make([]int32, n)
	ForBoundaryChunks(b, func(c, lo, hi int) {
		if lo != b[c] || hi != b[c+1] {
			t.Errorf("chunk %d got [%d,%d), want [%d,%d)", c, lo, hi, b[c], b[c+1])
		}
		for i := lo; i < hi; i++ {
			visits[i]++
			chunkOf[i] = int32(c)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	for i := 1; i < n; i++ {
		if chunkOf[i] < chunkOf[i-1] {
			t.Fatalf("chunk assignment not monotone at %d", i)
		}
	}
}

func TestForBoundaryChunksEmpty(t *testing.T) {
	ForBoundaryChunks(nil, func(c, lo, hi int) { t.Fatal("body called") })
	ForBoundaryChunks([]int{0}, func(c, lo, hi int) { t.Fatal("body called") })
}
