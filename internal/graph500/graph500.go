// Package graph500 implements a Graph500-style BFS benchmark harness over
// graphxmt's kernels. The paper motivates breadth-first search as "the
// classical graph traversal algorithm ... used in the Graph500 benchmark";
// this package follows the benchmark's structure: generate an RMAT graph
// (kernel 1: construction), run BFS from a set of pseudo-randomly sampled
// search keys (kernel 2), validate every resulting BFS tree against the
// specification's checks, and report traversed-edges-per-second (TEPS)
// statistics — here under the simulated Cray XMT, for both programming
// models.
//
// Validation follows the spirit of the official specification's five
// checks, adapted to distance arrays:
//
//  1. the BFS tree is rooted at the search key (parent[root] = root);
//  2. every tree edge connects vertices whose distances differ by one;
//  3. every edge of the input graph connects vertices whose distances
//     differ by at most one (or both endpoints are unreached);
//  4. every reached vertex appears in the tree, every unreached vertex
//     does not;
//  5. every tree edge exists in the input graph.
package graph500

import (
	"fmt"
	"math"
	"sort"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
	"graphxmt/internal/machine"
	"graphxmt/internal/rng"
	"graphxmt/internal/trace"
)

// Config parameterizes a benchmark run.
type Config struct {
	// Scale and EdgeFactor parameterize the RMAT workload (Graph500's
	// edge factor is 16).
	Scale      int
	EdgeFactor int
	// SearchKeys is the number of BFS roots (the benchmark uses 64).
	SearchKeys int
	// Seed drives generation and key sampling.
	Seed uint64
	// Procs is the simulated machine size.
	Procs int
	// Model evaluates the work profiles; nil selects the analytic model.
	Model machine.Model
	// BSP selects the BSP implementation instead of the shared-memory one.
	BSP bool
}

func (c Config) withDefaults() Config {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 16
	}
	if c.SearchKeys == 0 {
		c.SearchKeys = 64
	}
	if c.Procs == 0 {
		c.Procs = 128
	}
	if c.Model == nil {
		c.Model = machine.NewAnalytic(machine.DefaultConfig())
	}
	return c
}

// Result is the outcome of a benchmark run.
type Result struct {
	Graph *graph.Graph
	// Keys are the BFS roots used.
	Keys []int64
	// TEPS holds traversed edges per (simulated) second for each search.
	TEPS []float64
	// HarmonicMeanTEPS is the benchmark's headline statistic.
	HarmonicMeanTEPS float64
	// MinTEPS, MedianTEPS, MaxTEPS summarize the distribution.
	MinTEPS, MedianTEPS, MaxTEPS float64
	// Validated is the number of searches that passed all checks (must
	// equal len(Keys) for a valid run).
	Validated int
}

// Run executes the benchmark.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("graph500: scale must be positive")
	}
	g, err := gen.RMAT(gen.RMATConfig{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return RunOnGraph(g, cfg)
}

// RunOnGraph executes kernel 2 and validation over a pre-built graph.
func RunOnGraph(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Graph: g}
	res.Keys = SampleKeys(g, cfg.SearchKeys, cfg.Seed)
	if len(res.Keys) == 0 {
		return nil, fmt.Errorf("graph500: no vertices with edges to sample")
	}
	for _, key := range res.Keys {
		rec := trace.NewRecorder()
		var dist []int64
		if cfg.BSP {
			bfs, err := bspalg.BFS(g, key, rec)
			if err != nil {
				return nil, err
			}
			dist = bfs.Dist
		} else {
			dist = graphct.BFS(g, key, rec).Dist
		}
		parent := DeriveParents(g, key, dist)
		if err := Validate(g, key, dist, parent); err != nil {
			return nil, fmt.Errorf("graph500: key %d: %w", key, err)
		}
		res.Validated++

		seconds := machine.Seconds(cfg.Model, rec.Phases(), cfg.Procs)
		var edges int64
		for v := int64(0); v < g.NumVertices(); v++ {
			if dist[v] >= 0 {
				edges += g.Degree(v)
			}
		}
		edges /= 2
		if seconds > 0 {
			res.TEPS = append(res.TEPS, float64(edges)/seconds)
		}
	}
	sortAndSummarize(res)
	return res, nil
}

// SampleKeys draws up to k distinct search keys with degree >= 1, as the
// specification requires, deterministically from seed.
func SampleKeys(g *graph.Graph, k int, seed uint64) []int64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	r := rng.New(rng.Mix64(seed) ^ 0x6772617068353030) // "graph500"
	seen := make(map[int64]bool, k)
	var keys []int64
	// Bound attempts so graphs with few usable vertices terminate.
	for attempts := 0; len(keys) < k && attempts < 100*k+1000; attempts++ {
		v := int64(r.Uint64n(uint64(n)))
		if g.Degree(v) > 0 && !seen[v] {
			seen[v] = true
			keys = append(keys, v)
		}
	}
	return keys
}

// DeriveParents builds a BFS tree from a distance array: each reached
// non-root vertex gets the smallest-ID neighbor one level closer. The
// root's parent is itself; unreached vertices get -1.
func DeriveParents(g *graph.Graph, root int64, dist []int64) []int64 {
	parent := make([]int64, len(dist))
	for v := range parent {
		parent[v] = -1
	}
	if root < 0 || root >= g.NumVertices() || dist[root] != 0 {
		return parent
	}
	parent[root] = root
	for v := int64(0); v < g.NumVertices(); v++ {
		if dist[v] <= 0 {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if dist[w] == dist[v]-1 {
				parent[v] = w
				break
			}
		}
	}
	return parent
}

// Validate applies the benchmark's tree checks; nil means valid.
func Validate(g *graph.Graph, root int64, dist, parent []int64) error {
	n := g.NumVertices()
	if root < 0 || root >= n {
		return fmt.Errorf("invalid root %d", root)
	}
	// (1) rooted tree.
	if parent[root] != root || dist[root] != 0 {
		return fmt.Errorf("root not self-parented at distance 0")
	}
	for v := int64(0); v < n; v++ {
		reached := dist[v] >= 0
		inTree := parent[v] >= 0
		// (4) tree membership matches reachability.
		if reached != inTree {
			return fmt.Errorf("vertex %d: reached=%v but inTree=%v", v, reached, inTree)
		}
		if !reached || v == root {
			continue
		}
		p := parent[v]
		// (5) tree edges exist in the graph.
		if !g.HasEdge(v, p) {
			return fmt.Errorf("tree edge %d-%d not in graph", v, p)
		}
		// (2) tree edges step one level.
		if dist[v] != dist[p]+1 {
			return fmt.Errorf("tree edge %d-%d skips levels (%d vs %d)", v, p, dist[v], dist[p])
		}
	}
	// (3) every graph edge spans at most one level.
	for v := int64(0); v < n; v++ {
		for _, w := range g.Neighbors(v) {
			dv, dw := dist[v], dist[w]
			if (dv < 0) != (dw < 0) {
				return fmt.Errorf("edge %d-%d crosses the reached boundary", v, w)
			}
			if dv >= 0 && (dv-dw > 1 || dw-dv > 1) {
				return fmt.Errorf("edge %d-%d spans %d levels", v, w, dv-dw)
			}
		}
	}
	return nil
}

func sortAndSummarize(res *Result) {
	if len(res.TEPS) == 0 {
		return
	}
	s := append([]float64(nil), res.TEPS...)
	sort.Float64s(s)
	res.MinTEPS = s[0]
	res.MaxTEPS = s[len(s)-1]
	res.MedianTEPS = s[len(s)/2]
	var inv float64
	for _, t := range s {
		inv += 1 / t
	}
	res.HarmonicMeanTEPS = float64(len(s)) / inv
	if math.IsInf(res.HarmonicMeanTEPS, 0) || math.IsNaN(res.HarmonicMeanTEPS) {
		res.HarmonicMeanTEPS = 0
	}
}
