package graph500

import (
	"strings"
	"testing"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/graphct"
)

func TestRunSharedMemory(t *testing.T) {
	res, err := Run(Config{Scale: 10, EdgeFactor: 8, SearchKeys: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Validated != len(res.Keys) || len(res.Keys) != 8 {
		t.Fatalf("validated %d of %d keys", res.Validated, len(res.Keys))
	}
	if res.HarmonicMeanTEPS <= 0 {
		t.Fatalf("harmonic TEPS = %v", res.HarmonicMeanTEPS)
	}
	if res.MinTEPS > res.MedianTEPS || res.MedianTEPS > res.MaxTEPS {
		t.Fatalf("TEPS ordering broken: %v %v %v", res.MinTEPS, res.MedianTEPS, res.MaxTEPS)
	}
	// Harmonic mean lies within [min, max].
	if res.HarmonicMeanTEPS < res.MinTEPS || res.HarmonicMeanTEPS > res.MaxTEPS {
		t.Fatalf("harmonic mean %v outside [%v, %v]", res.HarmonicMeanTEPS, res.MinTEPS, res.MaxTEPS)
	}
}

func TestRunBSPSlowerThanSharedMemory(t *testing.T) {
	shared, err := Run(Config{Scale: 10, EdgeFactor: 8, SearchKeys: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := Run(Config{Scale: 10, EdgeFactor: 8, SearchKeys: 4, Seed: 5, BSP: true})
	if err != nil {
		t.Fatal(err)
	}
	if bsp.HarmonicMeanTEPS >= shared.HarmonicMeanTEPS {
		t.Fatalf("bsp TEPS %v >= shared %v", bsp.HarmonicMeanTEPS, shared.HarmonicMeanTEPS)
	}
	// The paper's envelope: within a factor of ~10-20.
	if shared.HarmonicMeanTEPS > 25*bsp.HarmonicMeanTEPS {
		t.Fatalf("bsp %v vs shared %v: gap too large", bsp.HarmonicMeanTEPS, shared.HarmonicMeanTEPS)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if _, err := Run(Config{Scale: 0}); err == nil {
		t.Fatal("scale 0 should error")
	}
}

func TestSampleKeysProperties(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 9, EdgeFactor: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := SampleKeys(g, 16, 7)
	if len(keys) != 16 {
		t.Fatalf("keys = %d", len(keys))
	}
	seen := map[int64]bool{}
	for _, k := range keys {
		if g.Degree(k) == 0 {
			t.Fatalf("key %d has degree 0", k)
		}
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	// Deterministic.
	again := SampleKeys(g, 16, 7)
	for i := range keys {
		if keys[i] != again[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	// Empty graph.
	empty := graph.MustBuild(0, nil, graph.BuildOptions{})
	if got := SampleKeys(empty, 4, 1); got != nil {
		t.Fatalf("keys from empty graph: %v", got)
	}
	// All-isolated graph terminates with no keys.
	iso := graph.MustBuild(8, nil, graph.BuildOptions{})
	if got := SampleKeys(iso, 4, 1); len(got) != 0 {
		t.Fatalf("keys from isolated graph: %v", got)
	}
}

func TestDeriveParentsAndValidate(t *testing.T) {
	g := gen.Grid(4, 4)
	dist := graphct.BFS(g, 0, nil).Dist
	parent := DeriveParents(g, 0, dist)
	if err := Validate(g, 0, dist, parent); err != nil {
		t.Fatal(err)
	}
	if parent[0] != 0 {
		t.Fatalf("root parent = %d", parent[0])
	}
	for v := int64(1); v < g.NumVertices(); v++ {
		if parent[v] < 0 {
			t.Fatalf("vertex %d unparented in a connected graph", v)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := gen.Ring(8)
	dist := graphct.BFS(g, 0, nil).Dist
	parent := DeriveParents(g, 0, dist)

	cases := []struct {
		name    string
		corrupt func(d, p []int64)
		wantSub string
	}{
		{"root-distance", func(d, p []int64) { d[0] = 1 }, "root"},
		{"root-parent", func(d, p []int64) { p[0] = 3 }, "root"},
		{"level-skip", func(d, p []int64) { d[2] = 5 }, "levels"},
		{"fake-unreached", func(d, p []int64) { d[4] = -1 }, ""},
		{"tree-edge-missing", func(d, p []int64) { p[2] = 6 }, "not in graph"},
		{"tree-without-reach", func(d, p []int64) { p[3] = -1 }, "inTree"},
	}
	for _, c := range cases {
		d := append([]int64(nil), dist...)
		p := append([]int64(nil), parent...)
		c.corrupt(d, p)
		err := Validate(g, 0, d, p)
		if err == nil {
			t.Fatalf("%s: corruption not detected", c.name)
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%s: error %q missing %q", c.name, err, c.wantSub)
		}
	}
}

func TestValidateDisconnected(t *testing.T) {
	// Two components: unreached vertices must be consistently absent.
	g := graph.MustBuild(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}},
		graph.BuildOptions{SortAdjacency: true})
	dist := graphct.BFS(g, 0, nil).Dist
	parent := DeriveParents(g, 0, dist)
	if err := Validate(g, 0, dist, parent); err != nil {
		t.Fatal(err)
	}
	for v := int64(3); v < 6; v++ {
		if parent[v] != -1 || dist[v] != -1 {
			t.Fatalf("vertex %d should be unreached", v)
		}
	}
}

func TestRunOnGraphDeterministic(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunOnGraph(g, Config{Scale: 9, SearchKeys: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnGraph(g, Config{Scale: 9, SearchKeys: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.HarmonicMeanTEPS != b.HarmonicMeanTEPS {
		t.Fatal("TEPS not deterministic")
	}
}
