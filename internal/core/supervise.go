package core

// Run supervision: bounded deterministic retry, watchdog deadlines, and
// the glue that lets both reuse the checkpoint machinery's in-memory
// boundary snapshots.
//
// Retry exploits the engine's barrier structure: a superstep's compute
// sweep reads only boundary state (vertex states, the halted set, the
// previous boundary's inboxes) and writes vertex-confined state, so a
// trapped sweep can be rolled back by restoring the handful of arrays it
// may have touched — states, halt flags, the direction layer's visited
// bitmap, the trace profile — and unseeding the chunk-local aggregator
// partials. Inboxes, the message queue, worklists, and the sparse
// delivery lookasides are never mutated mid-sweep, so re-execution
// consumes exactly the input the failed attempt did and the retried run
// is bit-identical to a fault-free one at any worker count
// (supervise_test.go).
//
// The watchdog is a single goroutine armed only when Config.StepTimeout
// is set. It observes superstep progress through two atomics the engine
// updates at superstep entry, and on expiry persists what it can — an
// emergency checkpoint of the last boundary snapshot (via an atomic
// pointer; snapshots are immutable deep copies) and a flight-recorder
// dump — then latches a stall flag the engine turns into a typed
// *TimeoutError. A superstep that never finishes cannot return an error,
// but its artifacts are already on disk.
//
// With MaxRetries, StepTimeout, and RunTimeout all unset the supervisor
// is nil and the engine pays one pointer check per superstep, the same
// contract as the Obs and Checkpoint layers.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graphxmt/internal/ckpt"
	"graphxmt/internal/trace"
)

// WithRetries bounds deterministic superstep retry (Config.MaxRetries).
func WithRetries(n int) Option {
	return func(c *Config) { c.MaxRetries = n }
}

// WithStepTimeout sets the per-superstep watchdog deadline.
func WithStepTimeout(d time.Duration) Option {
	return func(c *Config) { c.StepTimeout = d }
}

// WithRunTimeout sets the whole-run deadline.
func WithRunTimeout(d time.Duration) Option {
	return func(c *Config) { c.RunTimeout = d }
}

// WithResumeLatest makes the run resume from the newest valid checkpoint
// in the policy's directory (Config.ResumeLatest).
func WithResumeLatest() Option {
	return func(c *Config) { c.ResumeLatest = true }
}

// supRun is the per-run supervisor state. nil when MaxRetries,
// StepTimeout, and RunTimeout are all unset.
type supRun struct {
	maxRetries  int
	stepTimeout time.Duration
	runTimeout  time.Duration
	runStart    time.Time
	// retries is the per-completed-superstep retry count (Result.
	// RetriesPerStep); maintained only when maxRetries > 0.
	retries []int64

	// Watchdog plumbing. lastSnap is the newest boundary snapshot
	// (immutable once published), stepMark/curStep are the in-flight
	// superstep's start time and index, fired latches the one-shot stall.
	o        *obsRun
	dir      string
	hooks    *ckpt.Hooks
	lastSnap atomic.Pointer[ckpt.Snapshot]
	stepMark atomic.Int64 // unix nanos; 0 = no superstep in flight
	curStep  atomic.Int64
	fired    atomic.Bool
	done     chan struct{}

	mu          sync.Mutex
	stallStep   int
	stallCkpt   string
	stallFlight string
}

// startSup resolves the run's supervisor; nil disables everything.
func startSup(cfg *Config) *supRun {
	if cfg.MaxRetries <= 0 && cfg.StepTimeout <= 0 && cfg.RunTimeout <= 0 {
		return nil
	}
	sp := &supRun{
		stepTimeout: cfg.StepTimeout,
		runTimeout:  cfg.RunTimeout,
		runStart:    time.Now(),
	}
	if cfg.MaxRetries > 0 {
		sp.maxRetries = cfg.MaxRetries
	}
	return sp
}

// startWatchdog arms the per-superstep deadline; a no-op without one.
func (sp *supRun) startWatchdog(o *obsRun, p *ckpt.Policy) {
	if sp.stepTimeout <= 0 {
		return
	}
	sp.o = o
	if p != nil {
		sp.dir = p.Dir
		sp.hooks = p.Hooks
	}
	sp.done = make(chan struct{})
	tick := sp.stepTimeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	} else if tick > time.Second {
		tick = time.Second
	}
	go sp.watch(tick)
}

// stop disarms the watchdog. Deferred from Run, so every exit path —
// success, fault, interrupt — reclaims the goroutine.
func (sp *supRun) stop() {
	if sp.done != nil {
		close(sp.done)
	}
}

func (sp *supRun) watch(tick time.Duration) {
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-sp.done:
			return
		case <-t.C:
			if sp.fired.Load() {
				continue
			}
			mark := sp.stepMark.Load()
			if mark == 0 {
				continue
			}
			if time.Since(time.Unix(0, mark)) > sp.stepTimeout {
				sp.fire()
			}
		}
	}
}

// fire persists the stall artifacts and latches the flag. Runs on the
// watchdog goroutine: it touches only the atomic snapshot pointer (deep
// copies, never mutated after publication), the checkpoint directory,
// and the flight recorder (internally locked).
func (sp *supRun) fire() {
	step := int(sp.curStep.Load())
	var ckptPath, flightPath string
	if snap := sp.lastSnap.Load(); snap != nil && sp.dir != "" && snap.Step >= 0 {
		if path, err := ckpt.WriteFile(sp.dir, snap, ckpt.EmergencyFileName(snap.Step), sp.hooks); err == nil {
			ckptPath = path
		}
	}
	if sp.dir != "" {
		flightPath = sp.o.flightDump(sp.dir,
			fmt.Sprintf("watchdog: superstep %d exceeded %v", step, sp.stepTimeout))
	}
	sp.mu.Lock()
	sp.stallStep, sp.stallCkpt, sp.stallFlight = step, ckptPath, flightPath
	sp.mu.Unlock()
	sp.fired.Store(true)
}

// beginStep marks a superstep's entry for the watchdog.
func (sp *supRun) beginStep(step int) {
	if sp.stepTimeout <= 0 {
		return
	}
	sp.curStep.Store(int64(step))
	sp.stepMark.Store(time.Now().UnixNano())
}

// stalledAt reports whether the watchdog fired during the given superstep.
func (sp *supRun) stalledAt(step int) bool {
	if !sp.fired.Load() {
		return false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.stallStep == step
}

// stallErr returns the typed error for a latched stall, or nil. Checked
// at non-terminal superstep boundaries: a stalled superstep that does
// complete still ends the run (the deadline was real), while a stalled
// *terminal* superstep lets the finished run return its Result.
func (sp *supRun) stallErr() error {
	if !sp.fired.Load() {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return &TimeoutError{
		Superstep:          sp.stallStep,
		Limit:              sp.stepTimeout,
		Stalled:            true,
		CheckpointPath:     sp.stallCkpt,
		FlightRecorderPath: sp.stallFlight,
	}
}

// runExpired reports whether the whole-run deadline has passed.
func (sp *supRun) runExpired() bool {
	return sp.runTimeout > 0 && time.Since(sp.runStart) > sp.runTimeout
}

// rollbackTo restores the boundary snapshot over everything a trapped
// compute sweep may have mutated, priming a bit-identical re-execution:
// vertex states and halt flags (vertex-confined writes), the program's
// auxiliary state (AuxProgram writes are vertex-confined too, so the
// attempt may have recorded levels the retry must re-record), the
// direction layer's visited bitmap (its incident-edge sum is folded only
// after the trap check, so the bitmap alone needs restoring), the trace
// profile (the attempt's scan/superstep phases are discarded and
// re-recorded), and the chunk-local aggregator partials (reset
// deliberately preserves seeded partials for mergeAggregates to consume;
// a discarded attempt must unseed them or the retry would double-fold).
func (sp *supRun) rollbackTo(snap *ckpt.Snapshot, halted []bool, aux []int64, master *engineState, ds *dirState, scratch *runScratch, rec *trace.Recorder) {
	copy(master.states, snap.States)
	copy(halted, snap.Halted)
	if len(aux) > 0 && len(snap.Aux) == len(aux) {
		copy(aux, snap.Aux)
	}
	if ds != nil && len(snap.Visited) > 0 {
		copy(ds.visited, snap.Visited)
	}
	for _, cs := range scratch.chunks {
		for _, a := range cs.eng.aggregates {
			a.seeded = false
		}
	}
	rec.RestoreState(snap.Phases)
}
