package core_test

// Representation invariance, asserted end to end: a BSP run's Result and
// recorded trace profile are bit-identical whether the graph's adjacency
// is flat or delta-varint compressed, at any host worker count and under
// both broadcast delivery treatments. The engine's logical counters are
// functions of the neighbor sequences, never of how the bytes are stored,
// so the representation — like host parallelism — must never leak into
// the machine model.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/graph"
)

// TestEngineRepMatrix runs BFS, CC, and PageRank over the flat graph and
// its compressed twin, at 1, 3, and 8 workers, under both broadcast
// treatments (records expanded at delivery vs per-edge expansion at send).
// Every cell must be bit-identical — Result and trace profile — to the
// flat 1-worker record-delivery baseline.
func TestEngineRepMatrix(t *testing.T) {
	flat := detGraph(t)
	comp, err := graph.Compress(flat)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mk   func() core.Config
	}{
		{"bfs/dense", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}}
		}},
		{"cc/combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
		}},
		{"pagerank/combiner", func() core.Config {
			return core.Config{
				Program:  bspalg.PageRankProgram{DampingMilli: 850, Rounds: 15},
				Combiner: core.Sum,
			}
		}},
	}
	reps := []struct {
		name string
		g    *graph.Graph
	}{
		{"flat", flat},
		{"compressed", comp},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseRes, basePh := runDet(t, flat, 1, tc.mk)
			for _, rep := range reps {
				for _, w := range []int{1, 3, 8} {
					for _, expand := range []bool{false, true} {
						mk := func() core.Config {
							cfg := tc.mk()
							cfg.ExpandBroadcasts = expand
							return cfg
						}
						res, ph := runDet(t, rep.g, w, mk)
						if !reflect.DeepEqual(baseRes, res) {
							t.Fatalf("%s w=%d expand=%v: Result differs from flat baseline\n  supersteps %d vs %d\n  active %v vs %v\n  msgs %v vs %v",
								rep.name, w, expand,
								baseRes.Supersteps, res.Supersteps,
								baseRes.ActivePerStep, res.ActivePerStep,
								baseRes.MessagesPerStep, res.MessagesPerStep)
						}
						comparePhases(t, basePh, ph)
					}
				}
			}
		})
	}
}

// TestRecoveryCompressedMatrix kills a compressed-graph run at every
// superstep boundary and resumes it on the same compressed graph: Result
// and profile must be bit-identical to the uninterrupted compressed run —
// which TestEngineRepMatrix already pins to the flat baseline.
func TestRecoveryCompressedMatrix(t *testing.T) {
	comp, err := graph.Compress(detGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mk   func() core.Config
	}{
		{"bfs/dense", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}}
		}},
		{"cc/sparse-combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min, SparseActivation: true}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, basePh, err := runRec(comp, 3, tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= base.Supersteps-2; k++ {
				dir := t.TempDir()
				plan := &faultinject.Plan{KillAt: map[int64]bool{int64(k): true}}
				cfg := tc.mk()
				cfg.Checkpoint = &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()}
				_, _, err := runRec(comp, 3, cfg)
				var ie *core.InterruptedError
				if !errors.As(err, &ie) {
					t.Fatalf("kill@%d: want InterruptedError, got %v", k, err)
				}
				if ie.Superstep != k || ie.CheckpointPath == "" {
					t.Fatalf("kill@%d: InterruptedError = %+v", k, ie)
				}
				cfg = tc.mk()
				cfg.Checkpoint = &ckpt.Policy{Dir: dir}
				cfg.Resume = ie.CheckpointPath
				res, ph, err := runRec(comp, 3, cfg)
				if err != nil {
					t.Fatalf("resume from kill@%d: %v", k, err)
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("kill@%d: resumed Result differs from uninterrupted compressed run", k)
				}
				comparePhases(t, basePh, ph)
			}
		})
	}
}

// TestResumeRejectsRepMismatch: a checkpoint taken on a compressed graph
// cannot resume on the flat twin (and vice versa). The representation is
// part of the fingerprint — the graph CRC hashes the stored bytes, and
// the Rep field names the difference when everything else matches.
func TestResumeRejectsRepMismatch(t *testing.T) {
	flat := detGraph(t)
	comp, err := graph.Compress(flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []struct {
		name       string
		ckptG, rsG *graph.Graph
	}{
		{"compressed-to-flat", comp, flat},
		{"flat-to-compressed", flat, comp},
	} {
		t.Run(dir.name, func(t *testing.T) {
			cdir := t.TempDir()
			plan := &faultinject.Plan{KillAt: map[int64]bool{1: true}}
			cfg := core.Config{
				Program:    bspalg.CCProgram{},
				Combiner:   core.Min,
				Checkpoint: &ckpt.Policy{Dir: cdir, Hooks: plan.Hooks()},
			}
			_, _, err := runRec(dir.ckptG, 3, cfg)
			var ie *core.InterruptedError
			if !errors.As(err, &ie) {
				t.Fatalf("want InterruptedError, got %v", err)
			}
			cfg = core.Config{
				Program:    bspalg.CCProgram{},
				Combiner:   core.Min,
				Checkpoint: &ckpt.Policy{Dir: cdir},
				Resume:     ie.CheckpointPath,
			}
			_, _, err = runRec(dir.rsG, 3, cfg)
			var me *ckpt.MismatchError
			if !errors.As(err, &me) {
				t.Fatalf("cross-representation resume: want MismatchError, got %v", err)
			}
			// The CRC row fires first (it hashes the stored bytes), but
			// either field correctly names the representation change.
			if me.Field != "graph checksum" && me.Field != "representation" {
				t.Fatalf("cross-representation resume: mismatch field %q", me.Field)
			}
		})
	}
}

// TestVertexContextNeighborsCompressed pins the per-vertex decode buffer
// path: a program that reads ctx.Neighbors twice per Compute (and checks
// it against the flat adjacency) over the compressed graph.
func TestVertexContextNeighborsCompressed(t *testing.T) {
	flat := detGraph(t)
	comp, err := graph.Compress(flat)
	if err != nil {
		t.Fatal(err)
	}
	prog := &nbrChecker{flat: flat, fail: make(chan string, 1)}
	_, _, err = runRec(comp, 8, core.Config{Program: prog, MaxSupersteps: 3})
	if err != nil {
		var be *core.BudgetError
		if !errors.As(err, &be) {
			t.Fatal(err)
		}
	}
	select {
	case msg := <-prog.fail:
		t.Fatal(msg)
	default:
	}
}

// nbrChecker compares every ctx.Neighbors() read against the flat twin's
// adjacency; mismatches are reported through a channel since Compute
// cannot fail the test directly.
type nbrChecker struct {
	flat *graph.Graph
	fail chan string
}

func (p *nbrChecker) InitialState(*graph.Graph, int64) int64 { return 0 }

func (p *nbrChecker) Compute(v *core.VertexContext) {
	want := p.flat.Neighbors(v.ID())
	for pass := 0; pass < 2; pass++ {
		got := v.Neighbors()
		if len(got) != len(want) {
			select {
			case p.fail <- fmt.Sprintf("vertex %d: %d neighbors, want %d", v.ID(), len(got), len(want)):
			default:
			}
			return
		}
		for i := range want {
			if got[i] != want[i] {
				select {
				case p.fail <- fmt.Sprintf("vertex %d neighbor %d: %d, want %d", v.ID(), i, got[i], want[i]):
				default:
				}
				return
			}
		}
	}
	v.SendToNeighbors(1)
	v.VoteToHalt()
}
