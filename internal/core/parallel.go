package core

import (
	"math"
	"runtime/debug"
	"sort"

	"graphxmt/internal/graph"
	"graphxmt/internal/par"
)

// Host-parallel execution of the BSP engine.
//
// The engine's invariant (shared with every kernel in this repository) is
// that the host worker count affects only wall-clock time: results and
// recorded work profiles are bit-identical whether par runs on 1 or N
// cores. The machinery here achieves that with deterministic chunking:
//
//   - The compute sweep is partitioned into chunks whose boundaries are a
//     pure function of the graph and the active set — never of the worker
//     count. The default (degree-weighted) schedule splits the CSR degree
//     prefix sum (graph.Offsets, or the candidate-degree prefix sum under
//     sparse activation) into near-equal edge-work chunks, so a hub vertex
//     of a skewed graph cannot make one chunk run targetChunks× longer
//     than its peers; the legacy fixed schedule splits by vertex count.
//     Each chunk runs vertices with a private VertexContext — private send
//     buffer, work-charge accumulators, aggregator partials, wake list and
//     halt-transition counter — and the partials are merged in chunk index
//     order after the sweep. Concatenating per-chunk send buffers in chunk
//     order reproduces exactly the send order of a sequential sweep.
//
//   - Delivery is a stable counting sort: the output grouping (messages
//     per destination, in send order) is unique, so the internal
//     partitioning of the sort is free to follow the worker count. Its
//     fan-in is derived from par.Workers() under a scratch-memory budget
//     (deliverChunks) rather than a fixed cap.
//
//   - Broadcasts (SendToNeighbors) are carried as (source, value) records
//     rather than per-edge messages, and a pure-broadcast superstep is
//     delivered straight from the records: a record-driven stable scatter
//     when no combiner is set (exactly the legacy grouping), or a
//     pull-side fold over destination neighbor lists when one is (see
//     deliverBcasts for the paths and the one associativity caveat).
//     Counters and charges still see one logical message per edge.
//
//   - The combining path groups messages per destination first (the same
//     stable sort) and then left-folds each destination's messages in send
//     order over destination ranges weighted by message count. Groups
//     smaller than hubFoldMin reproduce the sequential combine order for
//     ANY combiner — associativity is not required for determinism across
//     worker counts. A hub group of at least hubFoldMin messages is folded
//     over fixed-size segments whose partials combine in segment order — a
//     tree that is still a pure function of the group length, hence
//     worker-independent, but relies on the associativity Config.Combiner
//     documents to equal the flat left fold.
//
//   - Aggregators fold per chunk and the chunk partials fold in chunk
//     index order. Chunk boundaries are worker-independent, so the fold
//     tree — and therefore the result, even for non-associative
//     reductions — is too. (Because the fold tree follows chunk
//     boundaries, the chunk schedule is part of a checkpoint's fingerprint:
//     a run may only resume under the schedule it started with.)

// ChunkSchedule selects how Run partitions the compute sweep into chunks.
// Both schedules are deterministic — boundaries are a pure function of the
// graph and the active set — so either yields bit-identical results and
// profiles at any worker count; they may differ from each other only for
// non-associative aggregator reductions (the fold tree follows chunk
// boundaries), which is why the schedule is part of checkpoint
// fingerprints.
type ChunkSchedule int

const (
	// ChunkAuto selects the engine default, ChunkDegree.
	ChunkAuto ChunkSchedule = iota
	// ChunkDegree splits the degree prefix sum (the CSR offsets, or the
	// candidate-degree prefix under sparse activation) into near-equal
	// edge-work chunks — the schedule for skewed (RMAT, power-law) graphs,
	// where per-vertex work is dominated by adjacency size.
	ChunkDegree
	// ChunkFixed splits the sweep into fixed vertex-count chunks — the
	// legacy schedule, kept for A/B benchmarking and old checkpoints.
	ChunkFixed
)

// resolve maps ChunkAuto to the engine default.
func (s ChunkSchedule) resolve() ChunkSchedule {
	if s == ChunkAuto {
		return ChunkDegree
	}
	return s
}

// String returns the schedule's fingerprint name ("degree" or "fixed").
func (s ChunkSchedule) String() string {
	if s.resolve() == ChunkFixed {
		return "fixed"
	}
	return "degree"
}

// WithChunking selects the sweep chunk schedule (see Config.Chunking).
func WithChunking(s ChunkSchedule) Option {
	return func(c *Config) { c.Chunking = s }
}

// sweepChunkSize returns the fixed chunk size used to partition a sweep of
// count items. It depends only on count — never on the worker count — so
// chunk boundaries, and every merge keyed on chunk index, are identical
// across host configurations. It drives the ChunkFixed schedule and the
// delivery/worklist compaction sweeps, whose outputs do not depend on the
// partitioning at all.
func sweepChunkSize(count int) int {
	const (
		minChunk     = 64
		targetChunks = 256
	)
	cs := count / targetChunks
	if cs < minChunk {
		cs = minChunk
	}
	return cs
}

// sweepTargetChunks is the chunk-count target of the weighted schedules:
// the same 256-chunk / 64-vertex-minimum shape as sweepChunkSize, expressed
// as a count. Depends only on count.
func sweepTargetChunks(count int) int {
	const (
		minChunk     = 64
		targetChunks = 256
	)
	c := (count + minChunk - 1) / minChunk
	if c > targetChunks {
		c = targetChunks
	}
	if c < 1 {
		c = 1
	}
	return c
}

// sweepVertexWork is the constant per-vertex weight the degree-weighted
// schedule adds to each vertex's degree: it accounts for the fixed
// per-vertex dispatch cost, so zero-degree stretches still split instead
// of collapsing into one chunk.
const sweepVertexWork = 4

// deliverParallelMin is the send-buffer size below which the sequential
// delivery paths win on the host. Both paths produce identical output, so
// the threshold is a pure host-speed knob.
const deliverParallelMin = 1 << 14

// hubFoldMin is the combining-path hub threshold: a destination group of
// at least this many messages is folded over hubFoldSeg-sized segments in
// parallel (see parCombineDeliver). Below it, the exact sequential
// left-fold order is preserved for any combiner.
const (
	hubFoldMin = 1 << 13
	hubFoldSeg = 1 << 11
)

// chunkState is the private state of one sweep chunk: everything a worker
// mutates while running its chunk's vertices, merged deterministically (in
// chunk index order) after the sweep barrier.
type chunkState struct {
	ctx VertexContext
	eng engineState
	// wake collects non-halted vertices (sparse activation only).
	wake []int64
	// active / received mirror the per-superstep counters of the
	// sequential engine, chunk-locally.
	active   int64
	received int64
	// haltDelta is the net change to the live (non-halted) vertex count
	// produced by this chunk's halt-flag transitions.
	haltDelta int64
	// visited is the run's shared visited bitmap (direction.go); nil when
	// the direction layer is inactive. Chunks write only vertices they own
	// (single-owner, no races) and visitedDelta accumulates the degree sum
	// of the vertices this chunk marked this superstep.
	visited      []bool
	visitedDelta int64
	// trap records a vertex-program panic recovered while running this
	// chunk (nil otherwise). The engine folds traps into a ProgramError
	// after the sweep, lowest chunk first.
	trap *programTrap
}

// programTrap is one recovered vertex-program panic.
type programTrap struct {
	vertex int64
	val    any
	stack  []byte
}

// guard converts a vertex-program panic into a chunk-local trap. Deferred
// once per chunk (not per vertex), so its hot-path cost is one defer per
// few hundred vertices. The trapped vertex is whatever the chunk's context
// was positioned on — runVertex sets ctx.id before calling Compute.
func (cs *chunkState) guard() {
	if r := recover(); r != nil {
		cs.trap = &programTrap{vertex: cs.ctx.id, val: r, stack: debug.Stack()}
	}
}

// runRange executes the chunk's vertex range under the panic guard. par
// spawns workers without any recovery of its own, so the guard must live
// inside the per-chunk closure — a program panic that escaped here would
// kill the process.
func (cs *chunkState) runRange(p Program, lo, hi, step int, ib *inboxView, halted []bool, sparse bool, candidates []int64) {
	defer cs.guard()
	if sparse {
		for i := lo; i < hi; i++ {
			cs.runVertex(p, candidates[i], step, ib, halted, true)
		}
	} else {
		for v := lo; v < hi; v++ {
			cs.runVertex(p, int64(v), step, ib, halted, false)
		}
	}
}

// reset prepares the chunk for one superstep. Aggregator partials are not
// cleared here: mergeAggregates unseeds them as it consumes them.
func (cs *chunkState) reset(step int, prevAggs map[string]int64) {
	cs.eng.superstep = step
	cs.eng.sendBuf = cs.eng.sendBuf[:0]
	cs.eng.bcastBuf = cs.eng.bcastBuf[:0]
	cs.eng.sent = 0
	cs.eng.unicast = 0
	cs.eng.extraIssue, cs.eng.extraLoads, cs.eng.extraStores = 0, 0, 0
	cs.eng.prevAggregates = prevAggs
	cs.active, cs.received, cs.haltDelta = 0, 0, 0
	cs.visitedDelta = 0
	cs.wake = cs.wake[:0]
	cs.trap = nil
}

// inboxView is the sweep's read-side of the inbox. Dense mode reads the
// CSR offsets; sparse mode reads a stamped per-vertex lookaside (msgStamp
// / msgLo / msgHi), which lets sparse delivery touch only the receivers
// instead of rebuilding an O(n) CSR every superstep. st is the stamp the
// delivering superstep wrote (consumer step - 1); st < 0 means nothing has
// been delivered yet (superstep 0).
type inboxView struct {
	val    []int64
	off    []int64 // dense CSR offsets
	stamp  []int64 // sparse lookaside
	lo, hi []int64
	st     int64
	sparse bool
}

// slice returns vertex v's incoming messages.
func (ib *inboxView) slice(v int64) []int64 {
	if ib.sparse {
		if ib.st < 0 || ib.stamp[v] != ib.st {
			return nil
		}
		return ib.val[ib.lo[v]:ib.hi[v]]
	}
	return ib.val[ib.off[v]:ib.off[v+1]]
}

// runVertex executes one vertex against this chunk's private context. It
// is the parallel twin of the sequential engine's per-vertex dispatch.
func (cs *chunkState) runVertex(p Program, v int64, step int, ib *inboxView, halted []bool, sparse bool) {
	msgs := ib.slice(v)
	hasMsgs := len(msgs) > 0
	if step > 0 && !hasMsgs && halted[v] {
		return
	}
	cs.active++
	cs.received += int64(len(msgs))
	ctx := &cs.ctx
	ctx.id = v
	ctx.msgs = msgs
	ctx.halt = false
	sentBefore := cs.eng.sent
	p.Compute(ctx)
	if cs.visited != nil && !cs.visited[v] && (hasMsgs || cs.eng.sent > sentBefore) {
		// A vertex is visited once it has received or sent a message — the
		// logical event the direction heuristic's unvisited-edge count
		// tracks. Single-owner write: v belongs to exactly this chunk.
		cs.visited[v] = true
		cs.visitedDelta += cs.eng.graph.Degree(v)
	}
	if ctx.halt != halted[v] {
		halted[v] = ctx.halt
		if ctx.halt {
			cs.haltDelta--
		} else {
			cs.haltDelta++
		}
	}
	if sparse && !ctx.halt {
		cs.wake = append(cs.wake, v)
	}
}

// runScratch holds every buffer the engine reuses across supersteps: the
// per-chunk worker states and the delivery / worklist scratch that the
// sequential engine used to reallocate each superstep.
type runScratch struct {
	chunks   []*chunkState
	sendOff  []int // per-chunk send-buffer offsets for the merge copy
	bcastOff []int // per-chunk broadcast-record offsets for the merge copy
	wake     []int64

	// sawUnicast records whether any superstep of this run has produced
	// unicast messages yet; the per-chunk send-buffer presize (degree-sum
	// capacity) is applied only then, so pure-broadcast runs never allocate
	// per-edge buffers at all. Purely a capacity heuristic — it can never
	// affect results.
	sawUnicast bool

	// Broadcast delivery scratch (see deliverBcasts). expandBuf is the
	// spare message buffer expandTraffic swaps against the engine's send
	// buffer; bcastLook is the value-stamped broadcaster lookaside of the
	// pull paths; pullBnds caches the degree-weighted destination ranges
	// of the parallel pull (graph-constant); bcastWork / bcastBnds
	// partition broadcast records by degree for the parallel scatter.
	expandBuf []Message
	bcastLook []bcastSlot
	pullBnds  []int
	bcastWork []int64
	bcastBnds []int

	// Sequential delivery scratch (the hoisted next/has/acc of the old
	// per-superstep allocations). has is all-false between deliveries:
	// seqCombineDeliver re-clears the flags it set during its compaction
	// sweep, so no O(n) zeroing is ever needed.
	next []int64
	has  []bool
	acc  []int64

	// Parallel delivery scratch.
	counts   []int32 // C*n destination counters, dest-major
	groupOff []int64 // n+1 group boundaries (combining path)
	groupVal []int64 // grouped message values (combining path)
	rangeCnt []int64 // per-range counters for compaction sweeps
	rangeMax []int64 // per-range max group size (hub detection)
	foldBnds []int   // message-weighted fold range boundaries
	hubDest  []int64 // destinations with >= hubFoldMin messages, ascending
	hubVal   []int64 // prefolded hub values, parallel to hubDest
	hubPart  []int64 // per-segment partials of one hub prefold

	// Sweep chunk boundaries (see sweepBoundaries). denseBounds caches the
	// dense degree-weighted boundaries, which depend only on the graph.
	bounds      []int
	denseBounds []int
	candWork    []int64 // candidate-degree prefix sum, len count+1
	// sweepWork is the active sweep's work prefix (nil under ChunkFixed):
	// sweepWork(hi) - sweepWork(lo) - sweepVertexWork*(hi-lo) is the degree
	// sum of chunk [lo, hi) — the presize hint for its send buffer.
	sweepWork   func(i int) int64
	densePrefix func(i int) int64 // memoized closure over the graph offsets
	candPrefix  func(i int) int64 // memoized closure over candWork

	// Sparse-activation scratch.
	sortScratch []int64 // radix-sort ping buffer

	// Sparse inbox lookaside: msgStamp[v] == step marks that v received
	// messages in the superstep stamped step, stored at val[msgLo[v]:
	// msgHi[v]]. Sparse delivery fills only receivers' entries, making the
	// superstep boundary O(sent) instead of O(n).
	msgStamp []int64
	msgLo    []int64
	msgHi    []int64
	recvList []int64
}

// bcastSlot pairs a broadcaster's stamp and value in one 16-byte slot.
// The pull sweeps probe the lookaside once per adjacency entry — random
// accesses over a vertex-length array — so keeping stamp and value on the
// same cache line costs one miss per probe instead of two.
type bcastSlot struct {
	stamp int64
	val   int64
}

// ensureBcastLook sizes the broadcaster lookaside (stamps start at -1,
// which matches no superstep).
func (s *runScratch) ensureBcastLook(n int64) []bcastSlot {
	if int64(len(s.bcastLook)) < n {
		s.bcastLook = make([]bcastSlot, n)
		look := s.bcastLook
		par.ForChunked(int(n), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				look[i].stamp = -1
			}
		})
	}
	return s.bcastLook
}

// ensureSparseInbox sizes the lookaside arrays (stamps start at -1, which
// matches no superstep).
func (s *runScratch) ensureSparseInbox(n int64) {
	if int64(len(s.msgStamp)) >= n {
		return
	}
	s.msgStamp = make([]int64, n)
	par.FillInt64(s.msgStamp, -1)
	s.msgLo = make([]int64, n)
	s.msgHi = make([]int64, n)
}

// ensureChunks guarantees at least numChunks chunk states exist, each
// wired to the run's shared graph/costs/states and (when the direction
// layer is active) the shared visited bitmap.
func (s *runScratch) ensureChunks(numChunks int, master *engineState, visited []bool) {
	for len(s.chunks) < numChunks {
		cs := &chunkState{}
		cs.eng.graph = master.graph
		cs.eng.costs = master.costs
		cs.eng.states = master.states
		cs.eng.expand = master.expand
		cs.ctx.engine = &cs.eng
		s.chunks = append(s.chunks, cs)
	}
	for _, cs := range s.chunks[:numChunks] {
		cs.visited = visited
	}
}

// sweepBoundaries computes the compute sweep's chunk boundaries for one
// superstep: a strictly increasing []int starting at 0 and ending at count,
// a pure function of (schedule, graph offsets, active set) — never of the
// worker count. Under ChunkDegree it splits the work prefix sum (degree +
// sweepVertexWork per item) into sweepTargetChunks near-equal chunks: the
// dense prefix is the CSR offsets themselves (computed once per run and
// cached, since the dense sweep is always over all n vertices); the sparse
// prefix is built per superstep over the candidate degrees. Under
// ChunkFixed it replicates the legacy sweepChunkSize partition. It also
// sets s.sweepWork so callers can presize per-chunk send buffers.
func (s *runScratch) sweepBoundaries(off []int64, candidates []int64, sparse bool, sched ChunkSchedule, count int) []int {
	if count <= 0 {
		s.sweepWork = nil
		s.bounds = append(s.bounds[:0], 0)
		return s.bounds
	}
	if sched.resolve() == ChunkFixed {
		s.sweepWork = nil
		cs := sweepChunkSize(count)
		b := s.bounds[:0]
		for lo := 0; lo < count; lo += cs {
			b = append(b, lo)
		}
		b = append(b, count)
		s.bounds = b
		return b
	}
	if sparse && sweepTargetChunks(count) == 1 {
		// One chunk no matter how the weights fall — skip the per-superstep
		// candidate prefix sum, which relay-style programs (tiny active set,
		// many supersteps) would otherwise pay on every superstep.
		s.sweepWork = nil
		s.bounds = append(s.bounds[:0], 0, count)
		return s.bounds
	}
	if !sparse {
		if s.densePrefix == nil {
			s.densePrefix = func(i int) int64 {
				return off[i] + sweepVertexWork*int64(i)
			}
		}
		s.sweepWork = s.densePrefix
		if len(s.denseBounds) == 0 {
			s.denseBounds = par.WeightedBoundaries(s.denseBounds, count,
				sweepTargetChunks(count), s.densePrefix)
		}
		return s.denseBounds
	}
	// Sparse: candWork[i] = summed work of candidates [0, i), with the total
	// at candWork[count] (exclusive prefix over per-candidate weights plus a
	// trailing zero).
	s.candWork = ensureInt64(s.candWork, count+1)
	cw := s.candWork
	par.ForChunked(count, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := candidates[i]
			cw[i] = (off[v+1] - off[v]) + sweepVertexWork
		}
	})
	cw[count] = 0
	par.ParallelExclusivePrefixSum(cw)
	if s.candPrefix == nil {
		s.candPrefix = func(i int) int64 { return s.candWork[i] }
	}
	s.sweepWork = s.candPrefix
	s.bounds = par.WeightedBoundaries(s.bounds, count,
		sweepTargetChunks(count), s.candPrefix)
	return s.bounds
}

// chunkSendHint returns the presize hint for chunk [lo, hi)'s send buffer:
// its degree sum under the active weighted schedule, or 0 (no hint) under
// ChunkFixed. An exact bound for flood-style programs that send one
// message per edge; a floor for chattier ones.
func (s *runScratch) chunkSendHint(lo, hi int) int {
	if s.sweepWork == nil {
		return 0
	}
	return int(s.sweepWork(hi) - s.sweepWork(lo) - sweepVertexWork*int64(hi-lo))
}

// presize grows the chunk's send buffer capacity to hint entries before
// the chunk runs, so a chunk that sends ~degree-sum messages does one
// allocation instead of log₂(hint) append-doublings. Reset has already
// emptied the buffer, so discarding the old array is safe.
func (cs *chunkState) presize(hint int) {
	if hint > cap(cs.eng.sendBuf) {
		cs.eng.sendBuf = make([]Message, 0, hint)
	}
}

// mergeCounters sums the per-chunk superstep counters (serial over a few
// hundred chunks; the order is irrelevant for integer sums). sent is the
// logical message count — broadcasts count one message per edge, exactly
// what per-edge expansion would have appended.
func (s *runScratch) mergeCounters(numChunks int) (active, received, sent, unicast, extraIssue, extraLoads, extraStores, haltDelta int64) {
	for _, cs := range s.chunks[:numChunks] {
		active += cs.active
		received += cs.received
		sent += cs.eng.sent
		unicast += cs.eng.unicast
		extraIssue += cs.eng.extraIssue
		extraLoads += cs.eng.extraLoads
		extraStores += cs.eng.extraStores
		haltDelta += cs.haltDelta
	}
	return
}

// mergeVisited sums the chunks' newly-visited degree deltas for one
// superstep (an integer sum — worker- and order-independent).
func (s *runScratch) mergeVisited(numChunks int) int64 {
	var d int64
	for _, cs := range s.chunks[:numChunks] {
		d += cs.visitedDelta
	}
	return d
}

// firstTrap returns the ProgramError for the lowest-indexed chunk that
// trapped a vertex-program panic this superstep, or nil. Chunk boundaries
// are worker-independent and each chunk runs its vertices in ascending
// order, so the reported vertex is the lowest panicking vertex — identical
// at any host worker count.
func (s *runScratch) firstTrap(numChunks, step int) *ProgramError {
	for _, cs := range s.chunks[:numChunks] {
		if cs.trap != nil {
			return &ProgramError{
				Vertex:    cs.trap.vertex,
				Superstep: step,
				Phase:     "compute",
				Recovered: cs.trap.val,
				Stack:     cs.trap.stack,
			}
		}
	}
	return nil
}

// concatSends concatenates the per-chunk send buffers into dst in chunk
// index order — exactly the send order a sequential sweep would have
// produced — copying chunks in parallel.
func (s *runScratch) concatSends(dst []Message, numChunks int) []Message {
	if cap(s.sendOff) < numChunks+1 {
		s.sendOff = make([]int, numChunks+1)
	}
	s.sendOff = s.sendOff[:numChunks+1]
	total := 0
	for c := 0; c < numChunks; c++ {
		s.sendOff[c] = total
		total += len(s.chunks[c].eng.sendBuf)
	}
	s.sendOff[numChunks] = total
	if cap(dst) < total {
		dst = make([]Message, total)
	}
	dst = dst[:total]
	par.ForCoarse(numChunks, func(c int) {
		copy(dst[s.sendOff[c]:s.sendOff[c+1]], s.chunks[c].eng.sendBuf)
	})
	return dst
}

// concatBcasts concatenates the per-chunk broadcast records into dst in
// chunk index order — ascending source vertex, the order a sequential
// sweep records them in — globalizing each record's seq by the chunk's
// unicast offset (s.sendOff, so concatSends must run first). The serial
// fast path threads one shared record buffer instead and needs no merge.
func (s *runScratch) concatBcasts(dst []bcastRec, numChunks int) []bcastRec {
	if cap(s.bcastOff) < numChunks+1 {
		s.bcastOff = make([]int, numChunks+1)
	}
	s.bcastOff = s.bcastOff[:numChunks+1]
	total := 0
	for c := 0; c < numChunks; c++ {
		s.bcastOff[c] = total
		total += len(s.chunks[c].eng.bcastBuf)
	}
	s.bcastOff[numChunks] = total
	if cap(dst) < total {
		dst = make([]bcastRec, total)
	}
	dst = dst[:total]
	par.ForCoarse(numChunks, func(c int) {
		base := int64(s.sendOff[c])
		out := dst[s.bcastOff[c]:s.bcastOff[c+1]]
		for i, r := range s.chunks[c].eng.bcastBuf {
			r.seq += base
			out[i] = r
		}
	})
	return dst
}

// mergeWake concatenates the per-chunk wake lists (sparse mode). Order is
// irrelevant downstream — the worklist build stamps or sorts — but chunk
// order keeps it deterministic anyway.
func (s *runScratch) mergeWake(numChunks int) []int64 {
	s.wake = s.wake[:0]
	for _, cs := range s.chunks[:numChunks] {
		s.wake = append(s.wake, cs.wake...)
	}
	return s.wake
}

// mergeAggregates folds each chunk's aggregator partials into the run's
// persistent aggregators in chunk index order, then unseeds the partials
// for the next superstep. Chunk boundaries are worker-independent, so the
// fold order — hence the value, for any reduction — is too.
func (s *runScratch) mergeAggregates(master *engineState, numChunks int) {
	for _, cs := range s.chunks[:numChunks] {
		if cs.eng.aggregates == nil {
			continue
		}
		for name, a := range cs.eng.aggregates {
			if !a.seeded {
				continue
			}
			if master.aggregates == nil {
				master.aggregates = map[string]*aggregator{}
			}
			m, ok := master.aggregates[name]
			if !ok {
				m = &aggregator{reduce: a.reduce}
				master.aggregates[name] = m
			}
			if m.reduce == nil {
				// An aggregator restored from a checkpoint carries its value
				// but not its (unserializable) reduction; adopt the one the
				// resumed program registered.
				m.reduce = a.reduce
			}
			if !m.seeded {
				m.value, m.seeded = a.value, true
			} else {
				m.value = m.reduce(m.value, a.value)
			}
			a.seeded = false
		}
	}
}

func ensureInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// bcastExpandMax is the logical-message count below which a pure-broadcast
// superstep is expanded to per-edge messages instead of delivered from
// records: small supersteps are where the O(sent) sparse lookaside paths
// shine, and expansion there costs what the sequential engine always paid.
// A pure host-speed knob — both treatments deliver the same sequences.
const bcastExpandMax = 1 << 14

// maybeExpand normalizes one superstep's outgoing traffic before delivery.
// Broadcast records are kept (O(frontier) physical traffic) only when the
// superstep is pure broadcast and big enough to amortize the record paths'
// O(n) passes; a mixed Send/SendToNeighbors superstep or a small one is
// expanded to per-edge messages — reproducing the exact interleaved send
// order via each record's seq — and delivered through the legacy paths.
// logical is the logical sent count (one message per broadcast edge), so
// the expansion buffer is sized exactly.
func (s *runScratch) maybeExpand(sendBuf []Message, bcasts []bcastRec, g *graph.Graph, logical int64) ([]Message, []bcastRec) {
	if len(bcasts) == 0 {
		return sendBuf, bcasts
	}
	if len(sendBuf) == 0 && logical >= bcastExpandMax {
		return sendBuf, bcasts
	}
	return s.expandTraffic(sendBuf, bcasts, g, logical), bcasts[:0]
}

// expandTraffic merges the unicast buffer and the broadcast records into
// one per-edge message buffer in the exact order a per-edge SendToNeighbors
// would have produced: record seqs are non-decreasing positions in the
// unicast stream, so a single merge pass reconstructs the interleave. The
// old send buffer is retired into s.expandBuf for reuse next superstep.
func (s *runScratch) expandTraffic(sendBuf []Message, bcasts []bcastRec, g *graph.Graph, logical int64) []Message {
	out := s.expandBuf
	if int64(cap(out)) < logical {
		out = make([]Message, logical)
	}
	out = out[:logical]
	pos, ui := 0, 0
	comp := g.Compressed()
	for _, r := range bcasts {
		for ui < int(r.seq) {
			out[pos] = sendBuf[ui]
			pos++
			ui++
		}
		val := r.val
		if comp {
			it := g.NeighborDecoder(r.src)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				out[pos] = Message{Dest: w, Value: val}
				pos++
			}
		} else {
			for _, w := range g.Neighbors(r.src) {
				out[pos] = Message{Dest: w, Value: val}
				pos++
			}
		}
	}
	for ui < len(sendBuf) {
		out[pos] = sendBuf[ui]
		pos++
		ui++
	}
	s.expandBuf = sendBuf
	return out
}

// deliver routes one superstep's traffic into per-vertex inboxes — dense
// mode builds the CSR arrays (inboxOff, inboxVal); sparse mode fills the
// stamped lookaside with stamp st — combining same-destination messages
// when combine is non-nil, and returns the number of delivered
// (post-combining) messages. Traffic arrives as sendBuf (per-edge unicast
// messages) plus bcasts (broadcast records, non-empty only after
// maybeExpand kept them); when records are present sendBuf is empty and
// the record paths expand them straight into the inbox. Every path
// produces the same per-vertex message sequences (the internal layout of
// inboxVal may differ), so the path choice is a pure host-speed decision;
// see deliverBcasts for the one associativity caveat.
func (s *runScratch) deliver(sendBuf []Message, bcasts []bcastRec, logical int64, g *graph.Graph, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64, sparse bool, st int64, dir DirectionMode) int64 {
	if len(bcasts) > 0 {
		return s.deliverBcasts(bcasts, logical, g, n, combine, inboxOff, inboxVal, sparse, st, dir)
	}
	sent := len(sendBuf)
	parallel := par.Workers() > 1 && sent >= deliverParallelMin && int64(sent) < math.MaxInt32
	if sparse {
		s.ensureSparseInbox(n)
		// The O(sent) lookaside paths win when the send buffer is small
		// relative to the vertex set; once sent rivals n, the CSR build's
		// O(n) passes are amortized and its branch-free counting sort is
		// cheaper per message, so route through it and mirror the offsets
		// into the lookaside afterwards.
		if !parallel && int64(sent) < n {
			if combine == nil {
				return s.seqDeliverSparse(sendBuf, n, inboxVal, st)
			}
			return s.seqCombineDeliverSparse(sendBuf, n, combine, inboxVal, st)
		}
		var delivered int64
		if combine == nil {
			if parallel {
				val := ensureInt64(*inboxVal, sent)
				s.stableGroupByDest(sendBuf, n, *inboxOff, val)
				*inboxVal = val
				delivered = int64(sent)
			} else {
				delivered = s.seqDeliver(sendBuf, n, inboxOff, inboxVal)
			}
		} else if parallel {
			delivered = s.parCombineDeliver(sendBuf, n, combine, inboxOff, inboxVal)
		} else {
			delivered = s.seqCombineDeliver(sendBuf, n, combine, inboxOff, inboxVal)
		}
		off := *inboxOff
		stampArr, lo, hi := s.msgStamp, s.msgLo, s.msgHi
		par.ForChunked(int(n), func(a, b int) {
			for v := a; v < b; v++ {
				if off[v+1] > off[v] {
					stampArr[v] = st
					lo[v] = off[v]
					hi[v] = off[v+1]
				}
			}
		})
		return delivered
	}
	if combine == nil {
		if !parallel {
			return s.seqDeliver(sendBuf, n, inboxOff, inboxVal)
		}
		val := ensureInt64(*inboxVal, sent)
		s.stableGroupByDest(sendBuf, n, *inboxOff, val)
		*inboxVal = val
		return int64(sent)
	}
	if !parallel {
		return s.seqCombineDeliver(sendBuf, n, combine, inboxOff, inboxVal)
	}
	return s.parCombineDeliver(sendBuf, n, combine, inboxOff, inboxVal)
}

// deliverBcasts delivers a pure-broadcast superstep straight from its
// records — the tentpole of the broadcast-aware message path. The paths
// and their determinism obligations:
//
//   - No combiner: scatter. Walk the records in order (ascending source),
//     scattering each record's value to its adjacency through counting-sort
//     cursors. Record order + adjacency order IS the per-edge send order,
//     so the output equals the legacy stable grouping EXACTLY — for any
//     graph, directed or not, with no assumptions on anything.
//
//   - Combiner, frontier covering at least half the adjacency, undirected
//     graph: pull-side fold. Records are stamped into a per-source
//     value lookaside, then every destination walks its own neighbor list
//     and folds the stamped neighbors' values in neighbor order — zero
//     intermediate messages. Neighbor order is a property of the graph, so
//     the fold is bit-identical at any worker count. It equals the legacy
//     send-order fold exactly when adjacency lists are sorted ascending
//     (graph.SortedAdjacency — senders run, hence send, in ascending
//     order); on unsorted graphs, and when one source broadcasts more than
//     once in a superstep (the lookaside pre-folds its values in record
//     order), equality with the per-edge path leans on the commutativity +
//     associativity Config.Combiner documents — the same contract the hub
//     prefolds rely on.
//
//   - Combiner otherwise (directed graph, or a frontier too sparse for an
//     O(edges) pull): sequential push-fold from the records, which is the
//     legacy left fold in the legacy order exactly, minus the intermediate
//     buffer.
//
// Sparse activation routes small supersteps through O(logical) lookaside
// twins of scatter/push-fold and mirrors the CSR offsets for big ones,
// exactly as the legacy sparse delivery does.
func (s *runScratch) deliverBcasts(bcasts []bcastRec, logical int64, g *graph.Graph, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64, sparse bool, st int64, dir DirectionMode) int64 {
	if sparse {
		s.ensureSparseInbox(n)
		if par.Workers() == 1 && logical < n {
			if combine == nil {
				return s.bcastScatterSparse(bcasts, logical, g, inboxVal, st)
			}
			return s.bcastCombineSparse(bcasts, g, combine, inboxVal, st)
		}
		delivered := s.deliverBcastsDense(bcasts, logical, g, n, combine, inboxOff, inboxVal, st, dir)
		off := *inboxOff
		stampArr, lo, hi := s.msgStamp, s.msgLo, s.msgHi
		par.ForChunked(int(n), func(a, b int) {
			for v := a; v < b; v++ {
				if off[v+1] > off[v] {
					stampArr[v] = st
					lo[v] = off[v]
					hi[v] = off[v+1]
				}
			}
		})
		return delivered
	}
	return s.deliverBcastsDense(bcasts, logical, g, n, combine, inboxOff, inboxVal, st, dir)
}

// deliverBcastsDense builds the dense inbox CSR from broadcast records.
// dir is the superstep's recorded direction decision (direction.go):
// DirPull selects the pull sweeps, DirPush the push scatters/folds, and
// DirAuto — the legacy engine, no direction layer — keeps PR 5's
// combiner-pull heuristic. The decision never depends on the worker
// count; parallel-vs-sequential below is the usual host-speed routing
// within the decided direction.
func (s *runScratch) deliverBcastsDense(bcasts []bcastRec, logical int64, g *graph.Graph, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64, st int64, dir DirectionMode) int64 {
	parallel := par.Workers() > 1 && logical >= deliverParallelMin && logical < math.MaxInt32
	if combine == nil {
		// Pull without a combiner: stamp the records into the lookaside and
		// let every destination read its stamped neighbors in adjacency
		// order — equal to the push scatter's (destination, record order)
		// grouping exactly when adjacency is sorted and sources are unique
		// (the pullOK gate checks sortedness; uniqueness is a property of
		// the record stream — one broadcast per vertex per superstep — and
		// the lookaside fill falls back to the scatter if it is violated).
		if dir == DirPull && s.fillBcastLookasideScatter(bcasts, n, st) {
			if parallel {
				return s.parBcastPullScatter(g, n, inboxOff, inboxVal, st, logical)
			}
			return s.seqBcastPullScatter(g, n, inboxOff, inboxVal, st, logical)
		}
		if parallel {
			return s.parBcastScatter(bcasts, logical, g, n, inboxOff, inboxVal)
		}
		return s.seqBcastScatter(bcasts, logical, g, n, inboxOff, inboxVal)
	}
	pull := dir == DirPull
	if dir == DirAuto {
		pull = !g.Directed() && logical*2 >= g.NumEdges()
	}
	if pull {
		s.fillBcastLookaside(bcasts, combine, n, st)
		if parallel {
			return s.parBcastPull(g, n, combine, inboxOff, inboxVal, st)
		}
		return s.seqBcastPull(g, n, combine, inboxOff, inboxVal, st)
	}
	return s.seqBcastCombine(bcasts, g, n, combine, inboxOff, inboxVal)
}

// seqBcastScatter is the record-driven twin of seqDeliver: a stable
// counting sort whose input is enumerated from the records' adjacencies
// instead of a materialized buffer. Identical output to seqDeliver on the
// expanded messages.
func (s *runScratch) seqBcastScatter(bcasts []bcastRec, logical int64, g *graph.Graph, n int64, inboxOff *[]int64, inboxVal *[]int64) int64 {
	off := *inboxOff
	for i := range off {
		off[i] = 0
	}
	comp := g.Compressed()
	for _, r := range bcasts {
		if comp {
			it := g.NeighborDecoder(r.src)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				off[w+1]++
			}
		} else {
			for _, w := range g.Neighbors(r.src) {
				off[w+1]++
			}
		}
	}
	for v := int64(0); v < n; v++ {
		off[v+1] += off[v]
	}
	val := ensureInt64(*inboxVal, int(logical))
	s.next = ensureInt64(s.next, int(n))
	next := s.next
	copy(next, off[:n])
	for _, r := range bcasts {
		v := r.val
		if comp {
			it := g.NeighborDecoder(r.src)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				val[next[w]] = v
				next[w]++
			}
		} else {
			for _, w := range g.Neighbors(r.src) {
				val[next[w]] = v
				next[w]++
			}
		}
	}
	*inboxVal = val
	return logical
}

// parBcastScatter is the parallel record-driven counting sort: records are
// split into degree-weighted ranges (the broadcast analogue of
// stableGroupByDest's message chunks), each range counts per-(destination,
// range) into an int32 matrix, and an exclusive prefix sum in (dest,
// range) order yields cursors that realize the unique stable grouping —
// (destination, record order, adjacency order), which is exactly the
// per-edge send order. The fan-in tracks the worker count freely for the
// same reason stableGroupByDest's does.
func (s *runScratch) parBcastScatter(bcasts []bcastRec, logical int64, g *graph.Graph, n int64, inboxOff *[]int64, inboxVal *[]int64) int64 {
	nrec := len(bcasts)
	s.bcastWork = ensureInt64(s.bcastWork, nrec+1)
	bw := s.bcastWork
	par.ForChunked(nrec, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			bw[i] = g.Degree(bcasts[i].src) + 1
		}
	})
	bw[nrec] = 0
	par.ParallelExclusivePrefixSum(bw)
	C := deliverChunks(n)
	s.bcastBnds = par.WeightedBoundaries(s.bcastBnds, nrec, C, func(i int) int64 { return bw[i] })
	bnds := s.bcastBnds
	R := len(bnds) - 1
	rw := int64(R)
	need := n * rw
	if int64(cap(s.counts)) < need {
		s.counts = make([]int32, need)
	}
	s.counts = s.counts[:need]
	counts := s.counts
	par.FillInt32(counts, 0)

	comp := g.Compressed()
	par.ForBoundaryChunks(bnds, func(r, lo, hi int) {
		rc := int64(r)
		for _, rec := range bcasts[lo:hi] {
			if comp {
				it := g.NeighborDecoder(rec.src)
				for w, ok := it.Next(); ok; w, ok = it.Next() {
					counts[w*rw+rc]++
				}
			} else {
				for _, w := range g.Neighbors(rec.src) {
					counts[w*rw+rc]++
				}
			}
		}
	})
	par.ParallelExclusivePrefixSum32(counts)

	off := *inboxOff
	par.ForChunked(int(n), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			off[v] = int64(counts[int64(v)*rw])
		}
	})
	off[n] = logical

	val := ensureInt64(*inboxVal, int(logical))
	par.ForBoundaryChunks(bnds, func(r, lo, hi int) {
		rc := int64(r)
		for _, rec := range bcasts[lo:hi] {
			v := rec.val
			if comp {
				it := g.NeighborDecoder(rec.src)
				for w, ok := it.Next(); ok; w, ok = it.Next() {
					i := w*rw + rc
					p := counts[i]
					counts[i] = p + 1
					val[p] = v
				}
			} else {
				for _, w := range g.Neighbors(rec.src) {
					i := w*rw + rc
					p := counts[i]
					counts[i] = p + 1
					val[p] = v
				}
			}
		}
	})
	*inboxVal = val
	return logical
}

// fillBcastLookasideScatter stamps each record's value into the
// per-source lookaside for the combinerless pull scatter. Unlike the
// combining fill there is no fold to hide behind: a source appearing in
// more than one record would lose a message, so a duplicate makes the
// fill report false and delivery falls back to the push scatter — a
// deterministic, input-driven fallback (the PullProgram contract says it
// cannot happen; the check makes a contract violation safe rather than
// silently wrong).
func (s *runScratch) fillBcastLookasideScatter(bcasts []bcastRec, n, st int64) bool {
	look := s.ensureBcastLook(n)
	for _, r := range bcasts {
		if look[r.src].stamp == st {
			return false
		}
		look[r.src] = bcastSlot{stamp: st, val: r.val}
	}
	return true
}

// seqBcastPullScatter is the sequential combinerless pull sweep: every
// destination walks its own neighbor list and copies each stamped
// neighbor's broadcast value into its inbox slot, in adjacency order. On
// an undirected graph with sorted adjacency and unique record sources the
// per-vertex inbox sequence — stamped neighbors ascending — is exactly
// the push scatter's (record order is ascending source), so the output
// equals seqBcastScatter bit for bit while never materializing a message.
func (s *runScratch) seqBcastPullScatter(g *graph.Graph, n int64, inboxOff *[]int64, inboxVal *[]int64, st, logical int64) int64 {
	look := s.bcastLook
	off := *inboxOff
	// One slack slot past the logical count: the branchless compaction
	// below stores every probed value at the cursor unconditionally and
	// only advances the cursor for stamped neighbors, so the final store
	// can land one past the last delivered entry. Stamped density in a
	// pull-worthy superstep is far from 0 or 1, so the data-dependent
	// branch would mispredict on a large fraction of the edge walk.
	val := ensureInt64(*inboxVal, int(logical)+1)
	var pos int64
	comp := g.Compressed()
	for v := int64(0); v < n; v++ {
		off[v] = pos
		if comp {
			it := g.NeighborDecoder(v)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				slot := look[w]
				val[pos] = slot.val
				var hit int64
				if slot.stamp == st {
					hit = 1
				}
				pos += hit
			}
		} else {
			for _, w := range g.Neighbors(v) {
				slot := look[w]
				val[pos] = slot.val
				var hit int64
				if slot.stamp == st {
					hit = 1
				}
				pos += hit
			}
		}
	}
	off[n] = pos
	*inboxVal = val
	return pos
}

// parBcastPullScatter runs the combinerless pull sweep over the cached
// degree-weighted destination ranges (the same partition parBcastPull
// uses). Pass 1 counts each range's stamped-neighbor total — a full count,
// not parBcastPull's early-exit receiver count, since every stamped
// neighbor contributes one inbox entry — pass 2 fills through per-range
// cursors. Each destination's entries are confined to its own adjacency
// walk, so the partition cannot perturb the output.
func (s *runScratch) parBcastPullScatter(g *graph.Graph, n int64, inboxOff *[]int64, inboxVal *[]int64, st, logical int64) int64 {
	goff := g.Offsets()
	if len(s.pullBnds) == 0 {
		s.pullBnds = par.WeightedBoundaries(s.pullBnds, int(n),
			sweepTargetChunks(int(n)), func(i int) int64 {
				return goff[i] + int64(i)
			})
	}
	bnds := s.pullBnds
	numR := len(bnds) - 1
	s.rangeCnt = ensureInt64(s.rangeCnt, numR)
	rangeCnt := s.rangeCnt
	look := s.bcastLook
	// The count pass is branchless (stamped density makes the branch
	// unpredictable); the fill pass keeps the conditional store because a
	// range's cursor sits exactly on the next range's first slot once its
	// own entries are exhausted — an unconditional slack store there would
	// race with the neighboring worker.
	comp := g.Compressed()
	par.ForBoundaryChunks(bnds, func(r, lo, hi int) {
		var cnt int64
		for v := lo; v < hi; v++ {
			if comp {
				it := g.NeighborDecoder(int64(v))
				for w, ok := it.Next(); ok; w, ok = it.Next() {
					var hit int64
					if look[w].stamp == st {
						hit = 1
					}
					cnt += hit
				}
			} else {
				for _, w := range g.Neighbors(int64(v)) {
					var hit int64
					if look[w].stamp == st {
						hit = 1
					}
					cnt += hit
				}
			}
		}
		rangeCnt[r] = cnt
	})
	delivered := par.ExclusivePrefixSum(rangeCnt)
	off := *inboxOff
	val := ensureInt64(*inboxVal, int(delivered))
	par.ForBoundaryChunks(bnds, func(r, lo, hi int) {
		pos := rangeCnt[r]
		for v := lo; v < hi; v++ {
			off[v] = pos
			if comp {
				it := g.NeighborDecoder(int64(v))
				for w, ok := it.Next(); ok; w, ok = it.Next() {
					if slot := look[w]; slot.stamp == st {
						val[pos] = slot.val
						pos++
					}
				}
			} else {
				for _, w := range g.Neighbors(int64(v)) {
					if slot := look[w]; slot.stamp == st {
						val[pos] = slot.val
						pos++
					}
				}
			}
		}
	})
	off[n] = delivered
	*inboxVal = val
	return delivered
}

// fillBcastLookaside stamps each record's value into the per-source
// lookaside the pull fold reads. Sequential and in record order, so a
// source that broadcast more than once this superstep pre-folds its values
// deterministically (in record order; equality with the per-edge path then
// leans on the documented combiner laws — see deliverBcasts).
func (s *runScratch) fillBcastLookaside(bcasts []bcastRec, combine func(a, b int64) int64, n, st int64) {
	look := s.ensureBcastLook(n)
	for _, r := range bcasts {
		if look[r.src].stamp == st {
			look[r.src].val = combine(look[r.src].val, r.val)
		} else {
			look[r.src] = bcastSlot{stamp: st, val: r.val}
		}
	}
}

// seqBcastPull is the sequential pull-side fold: every destination walks
// its own neighbor list against the broadcaster lookaside and folds the
// stamped values in neighbor order, writing its combined inbox entry
// directly — no intermediate messages exist at any point.
func (s *runScratch) seqBcastPull(g *graph.Graph, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64, st int64) int64 {
	look := s.bcastLook
	off := *inboxOff
	val := ensureInt64(*inboxVal, int(n))
	var pos int64
	comp := g.Compressed()
	for v := int64(0); v < n; v++ {
		off[v] = pos
		var acc int64
		found := false
		if comp {
			it := g.NeighborDecoder(v)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				if slot := look[w]; slot.stamp == st {
					if found {
						acc = combine(acc, slot.val)
					} else {
						acc = slot.val
						found = true
					}
				}
			}
		} else {
			for _, w := range g.Neighbors(v) {
				if slot := look[w]; slot.stamp == st {
					if found {
						acc = combine(acc, slot.val)
					} else {
						acc = slot.val
						found = true
					}
				}
			}
		}
		if found {
			val[pos] = acc
			pos++
		}
	}
	off[n] = pos
	*inboxVal = val
	return pos
}

// parBcastPull runs the pull fold over degree-weighted destination ranges
// (cached once per run — they depend only on the graph). Each destination's
// fold is confined to its own neighbor list, so the partition cannot
// perturb results. Pass 1 counts receivers per range (early-exiting on the
// first stamped neighbor); pass 2 folds and compacts.
func (s *runScratch) parBcastPull(g *graph.Graph, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64, st int64) int64 {
	goff := g.Offsets()
	if len(s.pullBnds) == 0 {
		s.pullBnds = par.WeightedBoundaries(s.pullBnds, int(n),
			sweepTargetChunks(int(n)), func(i int) int64 {
				return goff[i] + int64(i)
			})
	}
	bnds := s.pullBnds
	numR := len(bnds) - 1
	s.rangeCnt = ensureInt64(s.rangeCnt, numR)
	rangeCnt := s.rangeCnt
	look := s.bcastLook
	comp := g.Compressed()
	par.ForBoundaryChunks(bnds, func(r, lo, hi int) {
		var cnt int64
		for v := lo; v < hi; v++ {
			if comp {
				it := g.NeighborDecoder(int64(v))
				for w, ok := it.Next(); ok; w, ok = it.Next() {
					if look[w].stamp == st {
						cnt++
						break
					}
				}
			} else {
				for _, w := range g.Neighbors(int64(v)) {
					if look[w].stamp == st {
						cnt++
						break
					}
				}
			}
		}
		rangeCnt[r] = cnt
	})
	delivered := par.ExclusivePrefixSum(rangeCnt)
	off := *inboxOff
	val := ensureInt64(*inboxVal, int(delivered))
	par.ForBoundaryChunks(bnds, func(r, lo, hi int) {
		pos := rangeCnt[r]
		for v := lo; v < hi; v++ {
			off[v] = pos
			var acc int64
			found := false
			if comp {
				it := g.NeighborDecoder(int64(v))
				for w, ok := it.Next(); ok; w, ok = it.Next() {
					if slot := look[w]; slot.stamp == st {
						if found {
							acc = combine(acc, slot.val)
						} else {
							acc = slot.val
							found = true
						}
					}
				}
			} else {
				for _, w := range g.Neighbors(int64(v)) {
					if slot := look[w]; slot.stamp == st {
						if found {
							acc = combine(acc, slot.val)
						} else {
							acc = slot.val
							found = true
						}
					}
				}
			}
			if found {
				val[pos] = acc
				pos++
			}
		}
	})
	off[n] = delivered
	*inboxVal = val
	return delivered
}

// seqBcastCombine is the record-driven twin of seqCombineDeliver: push
// each record's value to its adjacency, folding per destination in the
// exact legacy send order — correct for ANY combiner and for directed
// graphs, where the pull fold cannot see in-edges.
func (s *runScratch) seqBcastCombine(bcasts []bcastRec, g *graph.Graph, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64) int64 {
	if int64(len(s.has)) < n {
		s.has = make([]bool, n)
		s.acc = make([]int64, n)
	}
	has, acc := s.has, s.acc
	var delivered int64
	comp := g.Compressed()
	for _, r := range bcasts {
		v := r.val
		if comp {
			it := g.NeighborDecoder(r.src)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				if has[w] {
					acc[w] = combine(acc[w], v)
				} else {
					has[w] = true
					acc[w] = v
					delivered++
				}
			}
		} else {
			for _, w := range g.Neighbors(r.src) {
				if has[w] {
					acc[w] = combine(acc[w], v)
				} else {
					has[w] = true
					acc[w] = v
					delivered++
				}
			}
		}
	}
	val := ensureInt64(*inboxVal, int(delivered))
	off := *inboxOff
	var pos int64
	for v := int64(0); v < n; v++ {
		off[v] = pos
		if has[v] {
			val[pos] = acc[v]
			pos++
			has[v] = false
		}
	}
	off[n] = pos
	*inboxVal = val
	return delivered
}

// bcastScatterSparse is the record-driven twin of seqDeliverSparse:
// O(logical) work touching only receivers, no O(n) pass at all.
func (s *runScratch) bcastScatterSparse(bcasts []bcastRec, logical int64, g *graph.Graph, inboxVal *[]int64, st int64) int64 {
	n := int64(len(s.msgStamp))
	if cap(s.recvList) < int(n) {
		s.recvList = make([]int64, 0, n)
	}
	receivers := s.recvList[:0]
	stamp, lo, hi := s.msgStamp, s.msgLo, s.msgHi
	comp := g.Compressed()
	for _, r := range bcasts {
		if comp {
			it := g.NeighborDecoder(r.src)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				if stamp[w] != st {
					stamp[w] = st
					hi[w] = 1
					receivers = append(receivers, w)
				} else {
					hi[w]++
				}
			}
		} else {
			for _, w := range g.Neighbors(r.src) {
				if stamp[w] != st {
					stamp[w] = st
					hi[w] = 1
					receivers = append(receivers, w)
				} else {
					hi[w]++
				}
			}
		}
	}
	var pos int64
	for _, v := range receivers {
		cnt := hi[v]
		lo[v] = pos
		hi[v] = pos // cursor; restored to end by the scatter below
		pos += cnt
	}
	val := ensureInt64(*inboxVal, int(logical))
	for _, r := range bcasts {
		v := r.val
		if comp {
			it := g.NeighborDecoder(r.src)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				val[hi[w]] = v
				hi[w]++
			}
		} else {
			for _, w := range g.Neighbors(r.src) {
				val[hi[w]] = v
				hi[w]++
			}
		}
	}
	*inboxVal = val
	return logical
}

// bcastCombineSparse is the record-driven twin of seqCombineDeliverSparse:
// fold per destination in exact send order, touching only receivers.
func (s *runScratch) bcastCombineSparse(bcasts []bcastRec, g *graph.Graph, combine func(a, b int64) int64, inboxVal *[]int64, st int64) int64 {
	n := int64(len(s.msgStamp))
	if cap(s.recvList) < int(n) {
		s.recvList = make([]int64, 0, n)
	}
	if int64(len(s.acc)) < n {
		s.acc = make([]int64, n)
	}
	receivers := s.recvList[:0]
	stamp, lo, hi, acc := s.msgStamp, s.msgLo, s.msgHi, s.acc
	comp := g.Compressed()
	for _, r := range bcasts {
		v := r.val
		if comp {
			it := g.NeighborDecoder(r.src)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				if stamp[w] != st {
					stamp[w] = st
					acc[w] = v
					receivers = append(receivers, w)
				} else {
					acc[w] = combine(acc[w], v)
				}
			}
		} else {
			for _, w := range g.Neighbors(r.src) {
				if stamp[w] != st {
					stamp[w] = st
					acc[w] = v
					receivers = append(receivers, w)
				} else {
					acc[w] = combine(acc[w], v)
				}
			}
		}
	}
	delivered := int64(len(receivers))
	val := ensureInt64(*inboxVal, int(delivered))
	for i, v := range receivers {
		val[i] = acc[v]
		lo[v] = int64(i)
		hi[v] = int64(i) + 1
	}
	*inboxVal = val
	return delivered
}

// seqDeliverSparse is the sparse counterpart of seqDeliver: it touches
// only the receivers (O(sent) work, no O(n) offset rebuild), writing the
// stamped lookaside. msgHi serves triple duty: per-destination count, then
// scatter cursor, then final end offset.
func (s *runScratch) seqDeliverSparse(sendBuf []Message, n int64, inboxVal *[]int64, st int64) int64 {
	if cap(s.recvList) < int(n) {
		s.recvList = make([]int64, 0, n)
	}
	receivers := s.recvList[:0]
	stamp, lo, hi := s.msgStamp, s.msgLo, s.msgHi
	for _, m := range sendBuf {
		if stamp[m.Dest] != st {
			stamp[m.Dest] = st
			hi[m.Dest] = 1
			receivers = append(receivers, m.Dest)
		} else {
			hi[m.Dest]++
		}
	}
	var pos int64
	for _, v := range receivers {
		cnt := hi[v]
		lo[v] = pos
		hi[v] = pos // cursor; restored to end by the scatter below
		pos += cnt
	}
	val := ensureInt64(*inboxVal, len(sendBuf))
	for _, m := range sendBuf {
		val[hi[m.Dest]] = m.Value
		hi[m.Dest]++
	}
	*inboxVal = val
	return int64(len(sendBuf))
}

// seqCombineDeliverSparse combines per destination in send order, touching
// only the receivers. acc is guarded by the stamp, so it needs no
// clearing between supersteps.
func (s *runScratch) seqCombineDeliverSparse(sendBuf []Message, n int64, combine func(a, b int64) int64, inboxVal *[]int64, st int64) int64 {
	if cap(s.recvList) < int(n) {
		s.recvList = make([]int64, 0, n)
	}
	if int64(len(s.acc)) < n {
		s.acc = make([]int64, n)
	}
	receivers := s.recvList[:0]
	stamp, lo, hi, acc := s.msgStamp, s.msgLo, s.msgHi, s.acc
	for _, m := range sendBuf {
		if stamp[m.Dest] != st {
			stamp[m.Dest] = st
			acc[m.Dest] = m.Value
			receivers = append(receivers, m.Dest)
		} else {
			acc[m.Dest] = combine(acc[m.Dest], m.Value)
		}
	}
	delivered := int64(len(receivers))
	val := ensureInt64(*inboxVal, int(delivered))
	for i, v := range receivers {
		val[i] = acc[v]
		lo[v] = int64(i)
		hi[v] = int64(i) + 1
	}
	*inboxVal = val
	return delivered
}

// seqDeliver is the sequential non-combining counting sort, with the
// cursor array hoisted into run-level scratch.
func (s *runScratch) seqDeliver(sendBuf []Message, n int64, inboxOff *[]int64, inboxVal *[]int64) int64 {
	off := *inboxOff
	for i := range off {
		off[i] = 0
	}
	for _, m := range sendBuf {
		off[m.Dest+1]++
	}
	for v := int64(0); v < n; v++ {
		off[v+1] += off[v]
	}
	val := ensureInt64(*inboxVal, len(sendBuf))
	s.next = ensureInt64(s.next, int(n))
	next := s.next
	copy(next, off[:n])
	for _, m := range sendBuf {
		val[next[m.Dest]] = m.Value
		next[m.Dest]++
	}
	*inboxVal = val
	return int64(len(sendBuf))
}

// seqCombineDeliver is the sequential combining path: one slot per
// destination that received anything, folded in send order. The has flags
// are cleared during the compaction sweep, restoring the all-false
// invariant without a separate zeroing pass.
func (s *runScratch) seqCombineDeliver(sendBuf []Message, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64) int64 {
	if int64(len(s.has)) < n {
		s.has = make([]bool, n)
		s.acc = make([]int64, n)
	}
	has, acc := s.has, s.acc
	var delivered int64
	for _, m := range sendBuf {
		if has[m.Dest] {
			acc[m.Dest] = combine(acc[m.Dest], m.Value)
		} else {
			has[m.Dest] = true
			acc[m.Dest] = m.Value
			delivered++
		}
	}
	val := ensureInt64(*inboxVal, int(delivered))
	off := *inboxOff
	var pos int64
	for v := int64(0); v < n; v++ {
		off[v] = pos
		if has[v] {
			val[pos] = acc[v]
			pos++
			has[v] = false
		}
	}
	off[n] = pos
	*inboxVal = val
	return delivered
}

// deliverChunkBudget is the counting-sort scratch budget: the fan-in C
// keeps C*n int32 destination counters, and C is chosen so that array
// stays within this many entries (64 MiB) however wide the host is.
const deliverChunkBudget = 1 << 24

// deliverChunks picks the counting-sort fan-in: enough chunks to feed the
// workers (2 per worker so the tail balances), bounded only by the
// scratch-memory budget rather than a fixed cap — a 48-core host gets
// 96-way fan-in on any graph up to ~175k vertices and degrades
// proportionally beyond. The sort's output is the unique stable grouping
// whatever C is, so tracking the worker count here cannot perturb results.
func deliverChunks(n int64) int {
	C := par.Workers() * 2
	if n > 0 {
		if byBudget := int(deliverChunkBudget / n); byBudget < C {
			C = byBudget
		}
	}
	if C < 2 {
		C = 2
	}
	return C
}

// stableGroupByDest scatters sendBuf's values into val grouped by
// destination, preserving send order within each destination (a stable
// two-pass counting sort), and fills off (length n+1) with the group
// boundaries. The output is the unique stable grouping, independent of the
// internal chunking, so the fan-in C may track the worker count freely.
// Requires len(sendBuf) < 2^31 (the caller gates on this).
func (s *runScratch) stableGroupByDest(sendBuf []Message, n int64, off, val []int64) {
	sent := len(sendBuf)
	C := deliverChunks(n)
	cw := int64(C)
	need := n * cw
	if int64(cap(s.counts)) < need {
		s.counts = make([]int32, need)
	}
	s.counts = s.counts[:need]
	counts := s.counts
	par.FillInt32(counts, 0)

	mchunk := (sent + C - 1) / C
	// Pass 1: per-(destination, chunk) counts. Chunk c owns column c of
	// every destination row, so the writes are disjoint.
	par.ForCoarse(C, func(c int) {
		lo, hi := c*mchunk, (c+1)*mchunk
		if hi > sent {
			hi = sent
		}
		if lo >= hi {
			return
		}
		cc := int64(c)
		for _, m := range sendBuf[lo:hi] {
			counts[m.Dest*cw+cc]++
		}
	})

	// Exclusive prefix sum in (dest, chunk) order turns counts into start
	// cursors that realize the stable order: destination-major, then send
	// (chunk, position) order within a destination.
	par.ParallelExclusivePrefixSum32(counts)

	par.ForChunked(int(n), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			off[v] = int64(counts[int64(v)*cw])
		}
	})
	off[n] = int64(sent)

	// Pass 2: scatter through the per-(dest, chunk) cursors.
	par.ForCoarse(C, func(c int) {
		lo, hi := c*mchunk, (c+1)*mchunk
		if hi > sent {
			hi = sent
		}
		if lo >= hi {
			return
		}
		cc := int64(c)
		for _, m := range sendBuf[lo:hi] {
			i := m.Dest*cw + cc
			p := counts[i]
			counts[i] = p + 1
			val[p] = m.Value
		}
	})
}

// parCombineDeliver groups messages per destination with the stable sort,
// then folds each destination's group and compacts the folded values into
// the inbox. Two skew defenses keep a hub inbox from serializing the
// phase:
//
//   - The compaction sweep runs over destination ranges weighted by
//     message count — gOff is itself a message prefix sum, so
//     WeightedBoundaries splits it into near-equal fold-work ranges
//     instead of equal vertex-count ranges.
//
//   - A group of at least hubFoldMin messages (a hub inbox) is prefolded
//     in parallel over hubFoldSeg-sized segments, whose partials combine
//     in segment index order. The segment tree is a pure function of the
//     group length, so it is worker-independent; it equals the flat left
//     fold by the associativity Config.Combiner documents. Groups below
//     the threshold keep the exact sequential left-fold order, preserving
//     determinism for ANY combiner on non-skewed traffic.
func (s *runScratch) parCombineDeliver(sendBuf []Message, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64) int64 {
	sent := len(sendBuf)
	s.groupOff = ensureInt64(s.groupOff, int(n)+1)
	s.groupVal = ensureInt64(s.groupVal, sent)
	s.stableGroupByDest(sendBuf, n, s.groupOff, s.groupVal)
	gOff, gVal := s.groupOff, s.groupVal

	// Fold ranges weighted by messages-per-destination (+1 per vertex so
	// message-free stretches still split).
	s.foldBnds = par.WeightedBoundaries(s.foldBnds, int(n),
		sweepTargetChunks(int(n)), func(i int) int64 {
			return gOff[i] + int64(i)
		})
	numR := len(s.foldBnds) - 1
	s.rangeCnt = ensureInt64(s.rangeCnt, numR)
	s.rangeMax = ensureInt64(s.rangeMax, numR)
	rangeCnt, rangeMax := s.rangeCnt, s.rangeMax
	par.ForBoundaryChunks(s.foldBnds, func(r, lo, hi int) {
		var cnt, maxG int64
		for v := lo; v < hi; v++ {
			if g := gOff[v+1] - gOff[v]; g > 0 {
				cnt++
				if g > maxG {
					maxG = g
				}
			}
		}
		rangeCnt[r] = cnt
		rangeMax[r] = maxG
	})

	// Prefold hub groups. Detection cost is confined to ranges whose max
	// group size crossed the threshold, so the common no-hub superstep pays
	// nothing beyond the max tracking above.
	s.hubDest = s.hubDest[:0]
	for r := 0; r < numR; r++ {
		if rangeMax[r] < hubFoldMin {
			continue
		}
		for v := int64(s.foldBnds[r]); v < int64(s.foldBnds[r+1]); v++ {
			if gOff[v+1]-gOff[v] >= hubFoldMin {
				s.hubDest = append(s.hubDest, v)
			}
		}
	}
	hubs := s.hubDest
	s.hubVal = ensureInt64(s.hubVal, len(hubs))
	for i, h := range hubs {
		seg := gVal[gOff[h]:gOff[h+1]]
		numSeg := (len(seg) + hubFoldSeg - 1) / hubFoldSeg
		s.hubPart = ensureInt64(s.hubPart, numSeg)
		part := s.hubPart
		par.ForFixedChunks(len(seg), hubFoldSeg, func(si, lo, hi int) {
			acc := seg[lo]
			for j := lo + 1; j < hi; j++ {
				acc = combine(acc, seg[j])
			}
			part[si] = acc
		})
		acc := part[0]
		for si := 1; si < numSeg; si++ {
			acc = combine(acc, part[si])
		}
		s.hubVal[i] = acc
	}

	delivered := par.ExclusivePrefixSum(rangeCnt)
	off := *inboxOff
	val := ensureInt64(*inboxVal, int(delivered))
	par.ForBoundaryChunks(s.foldBnds, func(r, lo, hi int) {
		pos := rangeCnt[r]
		for v := lo; v < hi; v++ {
			off[v] = pos
			glo, ghi := gOff[v], gOff[v+1]
			if ghi > glo {
				var acc int64
				if ghi-glo >= hubFoldMin {
					hidx := sort.Search(len(hubs), func(j int) bool {
						return hubs[j] >= int64(v)
					})
					acc = s.hubVal[hidx]
				} else {
					acc = gVal[glo]
					for i := glo + 1; i < ghi; i++ {
						acc = combine(acc, gVal[i])
					}
				}
				val[pos] = acc
				pos++
			}
		}
	})
	off[n] = delivered
	*inboxVal = val
	return delivered
}

// nextWorklist builds the next superstep's sparse-activation candidate
// list — message receivers plus vertices that stayed awake, deduplicated,
// in ascending vertex order — into the candidates backing array (cap n).
// Receivers are enumerated from sendBuf destinations plus the broadcast
// records' adjacencies (logical is the combined logical message count);
// both strategies produce a sorted deduplicated set, so enumeration order
// is irrelevant.
//
// Two equivalent strategies, chosen by deterministic quantities only:
// large worklists use a parallel stamp-ordered dense sweep (ascending by
// construction, O(n)); small ones stamp-deduplicate the receivers and wake
// list and radix-sort, O(k) — the sort.Slice the sequential engine used is
// gone entirely.
func (s *runScratch) nextWorklist(candidates []int64, step int, wake []int64, delivered int64, sendBuf []Message, bcasts []bcastRec, g *graph.Graph, logical int64, stamp []int64, n int64) []int64 {
	st := int64(step)
	msgStamp := s.msgStamp
	if (delivered+int64(len(wake)))*4 >= n || logical >= n {
		// Dense sweep: mark the wake set, then collect every vertex with a
		// freshly stamped inbox or a fresh wake stamp, in index order.
		// Wake entries are unique (a vertex runs at most once per
		// superstep), so the stamp writes are disjoint.
		par.ForChunked(len(wake), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				stamp[wake[i]] = st
			}
		})
		rcs := sweepChunkSize(int(n))
		numR := (int(n) + rcs - 1) / rcs
		s.rangeCnt = ensureInt64(s.rangeCnt, numR)
		rangeCnt := s.rangeCnt
		par.ForFixedChunks(int(n), rcs, func(r, lo, hi int) {
			var cnt int64
			for v := lo; v < hi; v++ {
				if msgStamp[v] == st || stamp[v] == st {
					cnt++
				}
			}
			rangeCnt[r] = cnt
		})
		k := par.ExclusivePrefixSum(rangeCnt)
		out := candidates[:k]
		par.ForFixedChunks(int(n), rcs, func(r, lo, hi int) {
			pos := rangeCnt[r]
			for v := lo; v < hi; v++ {
				if msgStamp[v] == st || stamp[v] == st {
					out[pos] = int64(v)
					pos++
				}
			}
		})
		return out
	}

	out := candidates[:0]
	for _, m := range sendBuf {
		if stamp[m.Dest] != st {
			stamp[m.Dest] = st
			out = append(out, m.Dest)
		}
	}
	for _, r := range bcasts {
		if g.Compressed() {
			it := g.NeighborDecoder(r.src)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				if stamp[w] != st {
					stamp[w] = st
					out = append(out, w)
				}
			}
		} else {
			for _, w := range g.Neighbors(r.src) {
				if stamp[w] != st {
					stamp[w] = st
					out = append(out, w)
				}
			}
		}
	}
	for _, v := range wake {
		if stamp[v] != st {
			stamp[v] = st
			out = append(out, v)
		}
	}
	s.sortScratch = ensureInt64(s.sortScratch, len(out))
	par.RadixSortInt64(out, s.sortScratch, n-1)
	return out
}
