package core

import (
	"fmt"
	"time"
)

// ProgramError reports a vertex-program panic recovered by the engine. No
// panic raised inside Program.InitialState or Program.Compute escapes Run:
// the sweep traps it (deterministically — the lowest panicking vertex wins,
// independent of the host worker count), the engine writes an emergency
// checkpoint of the last completed superstep boundary when a checkpoint
// policy is configured, and Run returns this error.
type ProgramError struct {
	// Vertex is the vertex whose program panicked.
	Vertex int64
	// Superstep is the superstep during which the panic occurred; -1 for
	// the InitialState sweep.
	Superstep int
	// Phase is "init" (InitialState sweep) or "compute" (Compute sweep).
	Phase string
	// Recovered is the value the panic carried.
	Recovered any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
	// CheckpointPath is the emergency checkpoint written before returning,
	// or "" when none was (no policy, or no completed boundary yet).
	CheckpointPath string
	// FlightRecorderPath is the flight-recorder dump (the last N supersteps'
	// spans and counters as JSONL) written next to the emergency checkpoint,
	// or "" when no flight recorder was attached or no checkpoint was
	// written.
	FlightRecorderPath string
}

func (e *ProgramError) Error() string {
	return fmt.Sprintf("core: vertex program panicked at vertex %d, superstep %d, phase %s: %v",
		e.Vertex, e.Superstep, e.Phase, e.Recovered)
}

// InterruptedError reports a run stopped at a superstep boundary by
// Config.Stop or a fault-injected kill. The completed superstep's state was
// checkpointed (when a policy is configured) so the run can resume.
type InterruptedError struct {
	// Superstep is the last completed superstep.
	Superstep int
	// CheckpointPath is the checkpoint covering that boundary, or "" when
	// no checkpoint policy was configured.
	CheckpointPath string
}

func (e *InterruptedError) Error() string {
	if e.CheckpointPath == "" {
		return fmt.Sprintf("core: run interrupted after superstep %d (no checkpoint policy configured)", e.Superstep)
	}
	return fmt.Sprintf("core: run interrupted after superstep %d; checkpoint written to %s", e.Superstep, e.CheckpointPath)
}

// BudgetError reports a run that exceeded Config.MaxSupersteps without
// converging — the runaway guard for non-terminating vertex programs. It
// carries the last completed superstep's counters so the caller can see
// whether the computation was making progress.
type BudgetError struct {
	// MaxSupersteps is the bound that was exceeded.
	MaxSupersteps int
	// LastActive / LastSent / LastDelivered are the final superstep's
	// counters (zero when the budget was 0 supersteps).
	LastActive    int64
	LastSent      int64
	LastDelivered int64
	// Live is the number of non-halted vertices when the run stopped.
	Live int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: no convergence after %d supersteps (last superstep: %d active, %d sent, %d delivered; %d vertices live)",
		e.MaxSupersteps, e.LastActive, e.LastSent, e.LastDelivered, e.Live)
}

// RetryExhaustedError reports a superstep that kept faulting after
// Config.MaxRetries deterministic re-executions from the last boundary
// snapshot. Cause is the final attempt's fault (a *ProgramError for
// vertex-program panics); the emergency checkpoint and flight-recorder
// paths locate the persisted state of the last good boundary.
type RetryExhaustedError struct {
	// Superstep is the superstep that could not be completed.
	Superstep int
	// Attempts is the total number of executions (1 + retries).
	Attempts int
	// Cause is the fault from the final attempt.
	Cause error
	// CheckpointPath is the emergency checkpoint of the last completed
	// boundary, or "" when none could be written.
	CheckpointPath string
	// FlightRecorderPath is the flight-recorder dump written next to the
	// emergency checkpoint, or "" when no flight recorder was attached.
	FlightRecorderPath string
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("core: superstep %d still faulting after %d attempts: %v",
		e.Superstep, e.Attempts, e.Cause)
}

// Unwrap exposes the final attempt's fault to errors.Is/As.
func (e *RetryExhaustedError) Unwrap() error { return e.Cause }

// TimeoutError reports a run stopped by a watchdog deadline: either a
// single superstep outlived Config.StepTimeout (Stalled=true) or the whole
// run outlived Config.RunTimeout. In both cases the engine persists what it
// can — a flight-recorder dump at fire time and an emergency checkpoint of
// the last completed boundary — before returning.
type TimeoutError struct {
	// Superstep is the superstep in flight (step timeout) or the last
	// completed superstep (run timeout).
	Superstep int
	// Limit is the deadline that fired.
	Limit time.Duration
	// Stalled is true for a per-superstep deadline, false for the
	// whole-run deadline.
	Stalled bool
	// CheckpointPath is the emergency (step timeout) or periodic (run
	// timeout) checkpoint persisted before returning, or "".
	CheckpointPath string
	// FlightRecorderPath is the flight-recorder dump, or "".
	FlightRecorderPath string
}

func (e *TimeoutError) Error() string {
	if e.Stalled {
		return fmt.Sprintf("core: superstep %d stalled past the %v watchdog deadline", e.Superstep, e.Limit)
	}
	return fmt.Sprintf("core: run exceeded the %v deadline after superstep %d", e.Limit, e.Superstep)
}

// MessageCapError reports a superstep that exceeded
// Config.MaxMessagesPerSuperstep. Algorithms that legitimately exceed it
// (BSP triangle counting at scale) must use a streaming evaluator.
type MessageCapError struct {
	Superstep int
	Sent      int64
	Cap       int64
}

func (e *MessageCapError) Error() string {
	return fmt.Sprintf("core: superstep %d sent %d messages, exceeding the %d cap; use a streaming evaluator",
		e.Superstep, e.Sent, e.Cap)
}
