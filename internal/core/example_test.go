package core_test

import (
	"fmt"
	"log"

	"graphxmt/internal/core"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
)

// minFlood is the classic Pregel hello-world: flood the minimum vertex ID
// through the graph. Each vertex keeps the smallest ID it has seen and
// forwards improvements to its neighbors.
type minFlood struct{}

func (minFlood) InitialState(_ *graph.Graph, v int64) int64 { return v }

func (minFlood) Compute(v *core.VertexContext) {
	best := v.State()
	for _, m := range v.Messages() {
		if m < best {
			best = m
		}
	}
	if best < v.State() || v.Superstep() == 0 {
		v.SetState(best)
		v.SendToNeighbors(best)
	}
	v.VoteToHalt()
}

// Example demonstrates writing and running a vertex program: the minimum
// vertex ID floods a ring one hop per superstep, so a 8-cycle needs
// supersteps proportional to its radius.
func Example() {
	g := gen.Ring(8)
	res, err := core.Run(core.Config{Graph: g, Program: minFlood{}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("supersteps:", res.Supersteps)
	fmt.Println("states:", res.States)
	// Output:
	// supersteps: 6
	// states: [0 0 0 0 0 0 0 0]
}

// ExampleRun_combiner shows Pregel's combiner optimization: semantically
// identical results with far fewer delivered messages.
func ExampleRun_combiner() {
	g := gen.Complete(6)
	plain, err := core.Run(core.Config{Graph: g, Program: minFlood{}})
	if err != nil {
		log.Fatal(err)
	}
	combined, err := core.Run(core.Config{Graph: g, Program: minFlood{}, Combiner: core.Min})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same result:", plain.States[5] == combined.States[5])
	fmt.Println("plain delivered:", plain.DeliveredPerStep[0])
	fmt.Println("combined delivered:", combined.DeliveredPerStep[0])
	// Output:
	// same result: true
	// plain delivered: 30
	// combined delivered: 6
}
