package core_test

// Engine benchmarks: the host wall-clock cost of the BSP runtime itself
// (sweep, deliver, termination) isolated from any one algorithm's arithmetic.
// The flood-minimum program is the dense BFS/CC superstep pattern the paper
// spends most of its time in; the relay program is the sparse-activation
// worst case (tiny active sets for many supersteps).
//
// Run with -bench Engine; compare par.SetWorkers(1) against the default to
// see the host-parallel speedup. Simulated results and profiles are
// identical at any worker count (see determinism_test.go).

import (
	"fmt"
	"sync"
	"testing"

	"graphxmt/internal/batch"
	"graphxmt/internal/bspalg"
	"graphxmt/internal/core"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
	"graphxmt/internal/par"
)

const engineBenchScale = 18

var (
	engineBenchOnce  sync.Once
	engineBenchGraph *graph.Graph

	engineBenchCompOnce sync.Once
	engineBenchComp     *graph.Graph
)

func engineGraph(b *testing.B) *graph.Graph {
	b.Helper()
	engineBenchOnce.Do(func() {
		g, err := gen.RMAT(gen.RMATConfig{Scale: engineBenchScale, EdgeFactor: 8, Seed: 7})
		if err != nil {
			panic(err)
		}
		engineBenchGraph = g
	})
	return engineBenchGraph
}

// engineGraphCompressed is the delta-varint twin of engineGraph — same
// logical graph, compressed adjacency — for the representation A/B pair.
func engineGraphCompressed(b *testing.B) *graph.Graph {
	b.Helper()
	g := engineGraph(b)
	engineBenchCompOnce.Do(func() {
		c, err := graph.Compress(g)
		if err != nil {
			panic(err)
		}
		engineBenchComp = c
	})
	return engineBenchComp
}

// benchFloodMin floods the minimum vertex ID — the dense CC/BFS superstep
// pattern: every improved vertex re-floods its neighborhood.
type benchFloodMin struct{}

func (benchFloodMin) InitialState(_ *graph.Graph, v int64) int64 { return v }
func (benchFloodMin) Compute(v *core.VertexContext) {
	st := v.State()
	changed := false
	for _, m := range v.Messages() {
		if m < st {
			st = m
			changed = true
		}
	}
	if changed {
		v.SetState(st)
	}
	if v.Superstep() == 0 || changed {
		v.SendToNeighbors(st)
	}
	v.VoteToHalt()
}

func benchRun(b *testing.B, cfg core.Config) {
	b.Helper()
	b.ReportAllocs()
	// The caller built the input graph before this point (a sync.Once RMAT
	// build on first use); without the reset, the first benchmark to run
	// would bill that construction to its first iteration.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineDenseFlood(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: benchFloodMin{}})
}

// BenchmarkEngineDenseFloodExpand is the A/B control for the broadcast
// message path: the same dense flood with Config.ExpandBroadcasts forcing
// the legacy eager per-edge expansion, so the record path's effect is the
// DenseFlood / DenseFloodExpand ratio on identical work.
func BenchmarkEngineDenseFloodExpand(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: benchFloodMin{}, ExpandBroadcasts: true})
}

// BenchmarkEngineDenseFloodCompressed is the representation A/B control:
// the same dense flood over the delta-varint compressed graph, so the
// streaming-decode cost on the engine's scatter and worklist sweeps is the
// DenseFloodCompressed / DenseFlood ratio on identical logical work.
func BenchmarkEngineDenseFloodCompressed(b *testing.B) {
	g := engineGraphCompressed(b)
	benchRun(b, core.Config{Graph: g, Program: benchFloodMin{}})
}

func BenchmarkEngineDenseFloodCombiner(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: benchFloodMin{}, Combiner: core.Min})
}

func BenchmarkEngineSparseFlood(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: benchFloodMin{}, SparseActivation: true})
}

func BenchmarkEngineSparseFloodCombiner(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: benchFloodMin{},
		SparseActivation: true, Combiner: core.Min})
}

// BenchmarkEngineWorkers pins the host worker count so speedup curves can
// be read off directly: -bench EngineWorkers -cpu 1 is not needed, the
// subbenchmark name carries the worker count.
func BenchmarkEngineWorkers(b *testing.B) {
	g := engineGraph(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchName(w), func(b *testing.B) {
			old := par.SetWorkers(w)
			defer par.SetWorkers(old)
			benchRun(b, core.Config{Graph: g, Program: benchFloodMin{}})
		})
	}
}

func benchName(w int) string {
	return fmt.Sprintf("w=%d", w)
}

// Degree-skew benchmarks: the A/B pair for the chunk-schedule comparison.
// Each benchmark runs as sched=degree / sched=fixed sub-benchmarks over the
// same graph, so `go test -bench EngineSkew` (or cmd/benchgate on its JSON
// output) reads the degree-weighted schedule's effect directly. The star is
// the worst case fixed chunking can face — one chunk owns nearly every edge —
// and its hub inbox exercises the combining path's segment prefold; the RMAT
// graph is the paper's skewed-degree workload.
var (
	skewBenchOnce sync.Once
	skewBenchRMAT *graph.Graph
	skewBenchStar *graph.Graph
)

func skewGraphs(b *testing.B) (star, rmat *graph.Graph) {
	b.Helper()
	skewBenchOnce.Do(func() {
		skewBenchStar = gen.Star(1 << 18)
		g, err := gen.RMAT(gen.RMATConfig{Scale: 16, EdgeFactor: 16, Seed: 7})
		if err != nil {
			panic(err)
		}
		skewBenchRMAT = g
	})
	return skewBenchStar, skewBenchRMAT
}

func benchSchedules(b *testing.B, run func(b *testing.B, sched core.ChunkSchedule)) {
	for _, s := range []core.ChunkSchedule{core.ChunkDegree, core.ChunkFixed} {
		b.Run("sched="+s.String(), func(b *testing.B) { run(b, s) })
	}
}

func BenchmarkEngineSkewStarFlood(b *testing.B) {
	star, _ := skewGraphs(b)
	benchSchedules(b, func(b *testing.B, s core.ChunkSchedule) {
		benchRun(b, core.Config{Graph: star, Program: benchFloodMin{}, Combiner: core.Min, Chunking: s})
	})
}

func BenchmarkEngineSkewRMATDenseFlood(b *testing.B) {
	_, rmat := skewGraphs(b)
	benchSchedules(b, func(b *testing.B, s core.ChunkSchedule) {
		benchRun(b, core.Config{Graph: rmat, Program: benchFloodMin{}, Combiner: core.Min, Chunking: s})
	})
}

func BenchmarkEngineSkewRMATSparseFlood(b *testing.B) {
	_, rmat := skewGraphs(b)
	benchSchedules(b, func(b *testing.B, s core.ChunkSchedule) {
		benchRun(b, core.Config{Graph: rmat, Program: benchFloodMin{},
			SparseActivation: true, Combiner: core.Min, Chunking: s})
	})
}

// BenchmarkEngineSkewTC runs the message-heaviest algorithm (triangle
// counting floods adjacency lists as candidate messages, so hubs dominate
// both send and delivery work) on a smaller RMAT instance that keeps the
// candidate-message volume benchable.
func BenchmarkEngineSkewTC(b *testing.B) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 12, EdgeFactor: 8, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	benchSchedules(b, func(b *testing.B, s core.ChunkSchedule) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bspalg.Triangles(g, nil, core.WithChunking(s)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Broadcast-path benchmarks on the star: the extreme frontier-vs-edges
// gap. When every leaf floods, the engine holds one broadcast record per
// leaf instead of one message per edge; the non-combined variant exercises
// the record scatter, the combined variant the pull-side fold over the
// hub's quarter-million stamped neighbors.
func BenchmarkEngineBcastStarFlood(b *testing.B) {
	star, _ := skewGraphs(b)
	benchRun(b, core.Config{Graph: star, Program: benchFloodMin{}})
}

func BenchmarkEngineBcastStarFloodCombiner(b *testing.B) {
	star, _ := skewGraphs(b)
	benchRun(b, core.Config{Graph: star, Program: benchFloodMin{}, Combiner: core.Min})
}

// Direction A/B benchmarks: BFS (no combiner — the pull-scatter path) on
// the scale-18 RMAT graph, auto-direction against the forced-push control.
// The auto run executes apex supersteps as pull sweeps over sorted
// adjacency instead of scattering every frontier record through per-vertex
// counting sort; results and profiles are bit-identical (direction_test.go),
// so the Auto/Push ratio is pure delivery cost on identical work.
func BenchmarkEngineDirBFSAuto(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: bspalg.BFSProgram{Source: 0}, Direction: core.DirAuto})
}

func BenchmarkEngineDirBFSPush(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: bspalg.BFSProgram{Source: 0}, Direction: core.DirPush})
}

// benchRelay passes a hop-counted token around a ring — the sparse
// worst case: one active vertex per superstep for many supersteps, where
// the worklist build and termination check dominate the engine's cost.
type benchRelay struct {
	hops int64
	n    int64
}

func (benchRelay) InitialState(*graph.Graph, int64) int64 { return 0 }
func (p benchRelay) Compute(v *core.VertexContext) {
	if v.Superstep() == 0 {
		if v.ID() == 0 {
			v.Send(1%p.n, 1)
		}
		v.VoteToHalt()
		return
	}
	for _, m := range v.Messages() {
		if m < p.hops {
			v.Send((v.ID()+1)%p.n, m+1)
		}
	}
	v.VoteToHalt()
}

// BenchmarkEngineSparseRelay measures per-superstep engine overhead with a
// single-vertex active set (1024 supersteps per run).
func BenchmarkEngineSparseRelay(b *testing.B) {
	const n = 1 << 16
	g := gen.Ring(n)
	benchRun(b, core.Config{
		Graph:            g,
		Program:          benchRelay{hops: 1024, n: n},
		SparseActivation: true,
		MaxSupersteps:    2000,
	})
}

// Observability-attached variants of the engine benchmarks. Compare against
// the plain benchmarks above to measure the observed-run cost; the nil-sink
// case is the plain benchmarks themselves (Config.Obs nil), which the
// instrumentation must leave within noise (<2%).
func BenchmarkEngineDenseFloodObs(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: benchFloodMin{}, Obs: obs.NewReport()})
}

func BenchmarkEngineSparseRelayObs(b *testing.B) {
	const n = 1 << 16
	g := gen.Ring(n)
	benchRun(b, core.Config{
		Graph:            g,
		Program:          benchRelay{hops: 1024, n: n},
		SparseActivation: true,
		MaxSupersteps:    2000,
		Obs:              obs.NewReport(),
	})
}

// BenchmarkEngineDenseFloodMetrics swaps the report sink for the live
// metrics registry — the sink a -http run keeps attached for its whole
// lifetime, so its overhead (atomic counter/histogram updates per event) is
// what a scraped production run pays. Guarded by the bench gate against
// BenchmarkEngineDenseFlood (nil sink); see PERFORMANCE.md for the measured
// delta.
func BenchmarkEngineDenseFloodMetrics(b *testing.B) {
	g := engineGraph(b)
	benchRun(b, core.Config{Graph: g, Program: benchFloodMin{}, Obs: obs.NewMetrics(nil)})
}

func BenchmarkEngineSparseRelayMetrics(b *testing.B) {
	const n = 1 << 16
	g := gen.Ring(n)
	benchRun(b, core.Config{
		Graph:            g,
		Program:          benchRelay{hops: 1024, n: n},
		SparseActivation: true,
		MaxSupersteps:    2000,
		Obs:              obs.NewMetrics(nil),
	})
}

// MS-BFS A/B pair: one 64-lane batched run against 64 sequential
// single-source runs over the same stride-spread sources — the amortization
// headline (Batch64 vs Sequential64 is the per-batch speedup; divide by 64
// for per-query cost). Per-lane results are asserted bit-identical in
// bspalg's equivalence matrix, so the ratio is pure traffic amortization on
// identical answers. The Compressed twins measure the same batch over
// delta-varint adjacency (the CSR2 serving representation).
func msbfsBenchPlan(b *testing.B, g *graph.Graph) *batch.Plan {
	b.Helper()
	n := g.NumVertices()
	srcs := make([]int64, 0, batch.MaxLanes)
	for i := int64(0); i < batch.MaxLanes; i++ {
		srcs = append(srcs, i*n/batch.MaxLanes)
	}
	plan, err := batch.NewPlan(srcs, n)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

func benchMSBFSBatch(b *testing.B, g *graph.Graph) {
	plan := msbfsBenchPlan(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bspalg.MultiBFS(g, plan, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMSBFSSequential(b *testing.B, g *graph.Graph) {
	plan := msbfsBenchPlan(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range plan.Sources {
			if _, err := bspalg.BFS(g, s, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEngineMSBFSBatch64(b *testing.B) {
	benchMSBFSBatch(b, engineGraph(b))
}

func BenchmarkEngineMSBFSSequential64(b *testing.B) {
	benchMSBFSSequential(b, engineGraph(b))
}

func BenchmarkEngineMSBFSBatch64Compressed(b *testing.B) {
	benchMSBFSBatch(b, engineGraphCompressed(b))
}

func BenchmarkEngineMSBFSSequential64Compressed(b *testing.B) {
	benchMSBFSSequential(b, engineGraphCompressed(b))
}
