package core_test

// Direction-optimizing supersteps, asserted end to end: the push/pull
// decision sequence is a pure function of logical counters, so an
// auto-direction run is bit-identical to the forced-push engine (Result
// minus the decision record, plus the full trace profile) at any worker
// count and under either broadcast treatment; the sequence itself is
// identical across worker counts; and checkpoint/resume replays it exactly,
// including across a push→pull switch. See direction.go and docs/MODEL.md.

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
)

// sansDirections returns a copy of res with the decision record dropped,
// for comparing an auto run against its forced-push control (whose record
// legitimately differs — that is the point of the A/B).
func sansDirections(res *core.Result) *core.Result {
	c := *res
	c.DirectionPerStep = nil
	return &c
}

func hasDir(res *core.Result, want core.DirectionMode) bool {
	for _, d := range res.DirectionPerStep {
		if d == want {
			return true
		}
	}
	return false
}

// TestDirectionDeterminismMatrix: for each pull-capable kernel, the auto
// run equals the forced-push run in every output except the decision
// record, at 1, 3, and 8 workers; the auto runs themselves (decision record
// included) are bit-identical across worker counts; and on the dense
// scale-free graph the heuristic actually fires at least one pull.
func TestDirectionDeterminismMatrix(t *testing.T) {
	g := detGraph(t)
	cases := []struct {
		name string
		// wantPull asserts the auto run pulled at least once, so the
		// equality below is not vacuously about an all-push sequence.
		wantPull bool
		mk       func() core.Config
	}{
		{"bfs", true, func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}}
		}},
		{"cc", true, func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}}
		}},
		{"cc/combiner", true, func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
		}},
		{"lp", false, func() core.Config {
			return core.Config{Program: bspalg.NewLPProgram(g, 20), MaxSupersteps: 22}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			withDir := func(d core.DirectionMode) func() core.Config {
				return func() core.Config {
					cfg := tc.mk()
					cfg.Direction = d
					return cfg
				}
			}
			pushBase, pushPh := runDet(t, g, 1, withDir(core.DirPush))
			autoBase, autoPh := runDet(t, g, 1, withDir(core.DirAuto))

			if tc.wantPull && !hasDir(autoBase, core.DirPull) {
				t.Fatalf("auto run never pulled: %v", autoBase.DirectionPerStep)
			}
			if hasDir(pushBase, core.DirPull) {
				t.Fatalf("forced-push run recorded a pull: %v", pushBase.DirectionPerStep)
			}
			if !reflect.DeepEqual(sansDirections(autoBase), sansDirections(pushBase)) {
				t.Fatalf("auto Result differs from forced-push control\n  auto: steps=%d active=%v msgs=%v\n  push: steps=%d active=%v msgs=%v",
					autoBase.Supersteps, autoBase.ActivePerStep, autoBase.MessagesPerStep,
					pushBase.Supersteps, pushBase.ActivePerStep, pushBase.MessagesPerStep)
			}
			comparePhases(t, pushPh, autoPh)

			for _, w := range []int{3, 8} {
				autoRes, ph := runDet(t, g, w, withDir(core.DirAuto))
				if !reflect.DeepEqual(autoBase, autoRes) {
					t.Fatalf("w=%d: auto Result differs from 1-worker run\n  directions %v vs %v",
						w, autoBase.DirectionPerStep, autoRes.DirectionPerStep)
				}
				comparePhases(t, autoPh, ph)

				pushRes, ph := runDet(t, g, w, withDir(core.DirPush))
				if !reflect.DeepEqual(pushBase, pushRes) {
					t.Fatalf("w=%d: forced-push Result differs from 1-worker run", w)
				}
				comparePhases(t, pushPh, ph)
			}
		})
	}
}

// TestDirectionTreatmentIndependent: the decision sequence (and the whole
// Result) is identical whether broadcasts are kept as records or eagerly
// expanded — expansion removes the physical pull path, but the decision is
// a function of logical counters only, so the record stays the same.
func TestDirectionTreatmentIndependent(t *testing.T) {
	g := detGraph(t)
	run := func(expand bool) *core.Result {
		res, _ := runDet(t, g, 3, func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, ExpandBroadcasts: expand}
		})
		return res
	}
	rec, exp := run(false), run(true)
	if !hasDir(rec, core.DirPull) {
		t.Fatalf("record-path run never pulled: %v", rec.DirectionPerStep)
	}
	if !reflect.DeepEqual(rec, exp) {
		t.Fatalf("Result differs between treatments\n  record:   %v\n  expanded: %v",
			rec.DirectionPerStep, exp.DirectionPerStep)
	}
}

// TestDirectionPullReducesPhysical: on pull-decided supersteps the
// physically materialized traffic collapses to the broadcast records while
// the logical per-edge count — the paper-fidelity quantity the cost model
// charges — is identical to the forced-push control's, step by step.
func TestDirectionPullReducesPhysical(t *testing.T) {
	g := detGraph(t)
	run := func(d core.DirectionMode) []obsStep {
		sink := &stepCapture{}
		cfg := core.Config{Graph: g, Program: bspalg.CCProgram{}, Direction: d, Obs: sink}
		if _, err := core.Run(cfg); err != nil {
			t.Fatal(err)
		}
		out := make([]obsStep, len(sink.steps))
		for i, st := range sink.steps {
			out[i] = obsStep{dir: st.Direction, sent: st.Sent, phys: st.SentPhysical,
				frontier: st.FrontierEdges, unvisited: st.UnvisitedEdges}
		}
		return out
	}
	auto, push := run(core.DirAuto), run(core.DirPush)
	if len(auto) != len(push) {
		t.Fatalf("superstep counts differ: %d vs %d", len(auto), len(push))
	}
	sawPull := false
	for i := range auto {
		if auto[i].sent != push[i].sent {
			t.Fatalf("step %d: logical Sent differs: auto %d vs push %d", i, auto[i].sent, push[i].sent)
		}
		if auto[i].frontier != push[i].frontier || auto[i].unvisited != push[i].unvisited {
			t.Fatalf("step %d: logical edge counters differ between modes: (%d,%d) vs (%d,%d)",
				i, auto[i].frontier, auto[i].unvisited, push[i].frontier, push[i].unvisited)
		}
		if auto[i].dir == "pull" {
			sawPull = true
			if auto[i].phys >= auto[i].sent {
				t.Fatalf("step %d: pull superstep SentPhysical %d not below logical Sent %d",
					i, auto[i].phys, auto[i].sent)
			}
		}
	}
	if !sawPull {
		t.Fatal("no superstep pulled; physical reduction never exercised")
	}
}

type obsStep struct {
	dir                 string
	sent, phys          int64
	frontier, unvisited int64
}

// TestDirectionRecoveryAcrossSwitch kills an auto BFS at every superstep
// boundary — the base run must contain both push and pull supersteps, so
// some kill point sits exactly on the push→pull switch — and asserts the
// resumed Result (decision record included) and profile are bit-identical
// to the uninterrupted run's.
func TestDirectionRecoveryAcrossSwitch(t *testing.T) {
	g := detGraph(t)
	mk := func() core.Config {
		return core.Config{Program: bspalg.BFSProgram{Source: 0}}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !hasDir(base, core.DirPush) || !hasDir(base, core.DirPull) {
		t.Fatalf("base run must mix directions to cover the switch, got %v", base.DirectionPerStep)
	}
	for k := 0; k <= base.Supersteps-2; k++ {
		dir := t.TempDir()
		plan := &faultinject.Plan{KillAt: map[int64]bool{int64(k): true}}
		cfg := mk()
		cfg.Checkpoint = &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()}
		_, _, err := runRec(g, 3, cfg)
		var ie *core.InterruptedError
		if !errors.As(err, &ie) {
			t.Fatalf("kill@%d: want InterruptedError, got %v", k, err)
		}

		cfg = mk()
		cfg.Checkpoint = &ckpt.Policy{Dir: dir}
		cfg.Resume = ie.CheckpointPath
		res, ph, err := runRec(g, 3, cfg)
		if err != nil {
			t.Fatalf("resume from kill@%d: %v", k, err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("kill@%d: resumed Result differs\n  directions %v vs %v",
				k, base.DirectionPerStep, res.DirectionPerStep)
		}
		comparePhases(t, basePh, ph)
	}
}

// TestDirectionResumeRejectsMismatch: the direction mode is part of the
// checkpoint fingerprint, so resuming under a different -direction is a
// typed MismatchError naming the field — never a silent replay under the
// wrong decision rule.
func TestDirectionResumeRejectsMismatch(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plan := &faultinject.Plan{KillAt: map[int64]bool{1: true}}
	cfg := core.Config{
		Program:    bspalg.BFSProgram{Source: 0},
		Checkpoint: &ckpt.Policy{Dir: dir, Label: "bfs src=0", Hooks: plan.Hooks()},
	}
	_, _, err = runRec(g, 3, cfg)
	var ie *core.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}

	cfg = core.Config{
		Program:    bspalg.BFSProgram{Source: 0},
		Direction:  core.DirPush,
		Checkpoint: &ckpt.Policy{Dir: dir, Label: "bfs src=0"},
		Resume:     ie.CheckpointPath,
	}
	_, _, err = runRec(g, 3, cfg)
	var me *ckpt.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("want MismatchError, got %v", err)
	}
	if me.Field != "direction" {
		t.Fatalf("mismatch field %q, want \"direction\"", me.Field)
	}
}

// dirlessProg is a minimal program that does not implement PullProgram.
type dirlessProg struct{}

func (dirlessProg) InitialState(*graph.Graph, int64) int64 { return 0 }
func (dirlessProg) Compute(v *core.VertexContext)          { v.VoteToHalt() }

// TestDirectionErrors: requesting pull for a program without pull
// capability is a typed *DirectionError; push is honored for any program
// (it is the A/B control); out-of-range modes are rejected; and forced
// pull on a capable program still matches the push control.
func TestDirectionErrors(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := core.Run(core.Config{Graph: g, Program: dirlessProg{}, Direction: core.DirPull})
	var de *core.DirectionError
	if !errors.As(runErr, &de) {
		t.Fatalf("pull on non-capable program: want DirectionError, got %v", runErr)
	}
	if de.Mode != core.DirPull {
		t.Fatalf("DirectionError.Mode = %v, want pull", de.Mode)
	}

	if _, err := core.Run(core.Config{Graph: g, Program: dirlessProg{}, Direction: core.DirPush}); err != nil {
		t.Fatalf("push on non-capable program must run: %v", err)
	}
	_, runErr = core.Run(core.Config{Graph: g, Program: dirlessProg{}, Direction: core.DirectionMode(7)})
	if !errors.As(runErr, &de) {
		t.Fatalf("out-of-range mode: want DirectionError, got %v", runErr)
	}

	pull, err := core.Run(core.Config{Graph: g, Program: bspalg.CCProgram{}, Direction: core.DirPull})
	if err != nil {
		t.Fatal(err)
	}
	push, err := core.Run(core.Config{Graph: g, Program: bspalg.CCProgram{}, Direction: core.DirPush})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sansDirections(pull), sansDirections(push)) {
		t.Fatal("forced-pull Result differs from forced-push control")
	}
}

// TestParseDirection pins the CLI flag mapping shared by bspgraph and
// xmtbench.
func TestParseDirection(t *testing.T) {
	for _, tc := range []struct {
		in   string
		mode core.DirectionMode
		ok   bool
	}{
		{"auto", core.DirAuto, true},
		{"push", core.DirPush, true},
		{"pull", core.DirPull, true},
		{"", core.DirAuto, false},
		{"Pull", core.DirAuto, false},
		{"both", core.DirAuto, false},
	} {
		mode, ok := core.ParseDirection(tc.in)
		if mode != tc.mode || ok != tc.ok {
			t.Fatalf("ParseDirection(%q) = (%v,%v), want (%v,%v)", tc.in, mode, ok, tc.mode, tc.ok)
		}
	}
	for _, m := range []core.DirectionMode{core.DirAuto, core.DirPush, core.DirPull} {
		back, ok := core.ParseDirection(m.String())
		if !ok || back != m {
			t.Fatalf("round trip %v via %q failed", m, m.String())
		}
	}
}

// TestDirectionSinkMatchesResult: the sink-visible decision stream is the
// Result's, step by step — on a real auto-mode run that pulls, every
// StepStats.Direction equals Result.DirectionPerStep[i].String(), and the
// JSONL export of the same run carries identical direction/frontier_edges/
// unvisited_edges per step, so offline tooling and the returned value can
// never disagree about what the engine decided.
func TestDirectionSinkMatchesResult(t *testing.T) {
	g := detGraph(t)
	capt := &stepCapture{}
	var buf bytes.Buffer
	jl := obs.NewJSONL(&buf)
	res, err := core.Run(core.Config{
		Graph:   g,
		Program: bspalg.CCProgram{},
		Obs:     obs.Tee(capt, jl),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	if !hasDir(res, core.DirPull) {
		t.Fatalf("auto run never pulled: %v", res.DirectionPerStep)
	}
	if len(capt.steps) != len(res.DirectionPerStep) || len(capt.steps) != res.Supersteps {
		t.Fatalf("sink saw %d steps, Result has %d directions over %d supersteps",
			len(capt.steps), len(res.DirectionPerStep), res.Supersteps)
	}
	type dirStep struct {
		Direction string `json:"direction"`
		Frontier  int64  `json:"frontier_edges"`
		Unvisited int64  `json:"unvisited_edges"`
	}
	var fromJSONL []dirStep
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Ev string `json:"ev"`
			dirStep
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("jsonl line %q: %v", line, err)
		}
		if ev.Ev == "step" {
			fromJSONL = append(fromJSONL, ev.dirStep)
		}
	}
	if len(fromJSONL) != len(capt.steps) {
		t.Fatalf("jsonl has %d step events, sink saw %d", len(fromJSONL), len(capt.steps))
	}
	for i, st := range capt.steps {
		if st.Step != i {
			t.Fatalf("step event %d carries index %d", i, st.Step)
		}
		if want := res.DirectionPerStep[i].String(); st.Direction != want {
			t.Fatalf("step %d: sink direction %q, Result %q", i, st.Direction, want)
		}
		if j := fromJSONL[i]; j.Direction != st.Direction || j.Frontier != st.FrontierEdges || j.Unvisited != st.UnvisitedEdges {
			t.Fatalf("step %d: jsonl (%s,%d,%d) != sink (%s,%d,%d)",
				i, j.Direction, j.Frontier, j.Unvisited, st.Direction, st.FrontierEdges, st.UnvisitedEdges)
		}
	}
}

// TestDirectionStepStats: the report/JSONL counters surface the decision
// and both logical edge counters on every superstep of a direction-active
// run.
func TestDirectionStepStats(t *testing.T) {
	g := detGraph(t)
	sink := &stepCapture{}
	if _, err := core.Run(core.Config{Graph: g, Program: bspalg.BFSProgram{Source: 0}, Obs: sink}); err != nil {
		t.Fatal(err)
	}
	if len(sink.steps) == 0 {
		t.Fatal("no step stats emitted")
	}
	total := int64(len(g.Adjacency()))
	for i, st := range sink.steps {
		if st.Direction != "push" && st.Direction != "pull" {
			t.Fatalf("step %d: Direction = %q, want push or pull", i, st.Direction)
		}
		if st.UnvisitedEdges < 0 || st.UnvisitedEdges > total {
			t.Fatalf("step %d: UnvisitedEdges %d outside [0,%d]", i, st.UnvisitedEdges, total)
		}
		if st.FrontierEdges != st.Sent {
			// BFS never unicasts, so the frontier's incident edges are
			// exactly the logical broadcast count.
			t.Fatalf("step %d: FrontierEdges %d != Sent %d", i, st.FrontierEdges, st.Sent)
		}
	}
}
