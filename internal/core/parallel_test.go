package core

// White-box equivalence tests for the host-parallel building blocks: each
// parallel path must produce bit-identical output to its sequential twin
// on the same input, for any worker count. These call the paths directly,
// bypassing the size thresholds that route small inputs to the sequential
// code in production.

import (
	"testing"

	"graphxmt/internal/par"
	"graphxmt/internal/rng"
)

func randomMessages(r *rng.Xoshiro, count int, n int64) []Message {
	buf := make([]Message, count)
	for i := range buf {
		buf[i] = Message{
			Dest:  int64(r.Uint64n(uint64(n))),
			Value: int64(r.Uint64n(1000)),
		}
	}
	return buf
}

func TestStableGroupByDestMatchesSequential(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct {
		count int
		n     int64
	}{
		{0, 16}, {1, 16}, {100, 7}, {5000, 64}, {40000, 1000}, {40000, 3},
	} {
		buf := randomMessages(r, tc.count, tc.n)

		var seqOff, seqVal []int64
		seqOff = make([]int64, tc.n+1)
		seq := &runScratch{}
		seq.seqDeliver(buf, tc.n, &seqOff, &seqVal)

		for _, w := range []int{1, 4, 9} {
			func() {
				defer par.SetWorkers(par.SetWorkers(w))
				off := make([]int64, tc.n+1)
				val := make([]int64, tc.count)
				(&runScratch{}).stableGroupByDest(buf, tc.n, off, val)
				for i := range seqOff {
					if off[i] != seqOff[i] {
						t.Fatalf("count=%d n=%d w=%d: off[%d] = %d, want %d",
							tc.count, tc.n, w, i, off[i], seqOff[i])
					}
				}
				for i := range seqVal {
					if val[i] != seqVal[i] {
						t.Fatalf("count=%d n=%d w=%d: val[%d] = %d, want %d",
							tc.count, tc.n, w, i, val[i], seqVal[i])
					}
				}
			}()
		}
	}
}

func TestParCombineDeliverMatchesSequential(t *testing.T) {
	r := rng.New(2)
	// A non-commutative, non-associative combiner: the parallel combining
	// path must reproduce the sequential per-destination fold order
	// exactly, so even this pathological combiner stays deterministic.
	weird := func(a, b int64) int64 { return 3*a - b }
	for _, combine := range []func(a, b int64) int64{Min, Sum, weird} {
		for _, tc := range []struct {
			count int
			n     int64
		}{
			{0, 16}, {17, 5}, {5000, 64}, {40000, 1000},
		} {
			buf := randomMessages(r, tc.count, tc.n)

			seqOff := make([]int64, tc.n+1)
			var seqVal []int64
			wantDelivered := (&runScratch{}).seqCombineDeliver(buf, tc.n, combine, &seqOff, &seqVal)

			for _, w := range []int{1, 4, 9} {
				func() {
					defer par.SetWorkers(par.SetWorkers(w))
					off := make([]int64, tc.n+1)
					var val []int64
					delivered := (&runScratch{}).parCombineDeliver(buf, tc.n, combine, &off, &val)
					if delivered != wantDelivered {
						t.Fatalf("count=%d n=%d w=%d: delivered = %d, want %d",
							tc.count, tc.n, w, delivered, wantDelivered)
					}
					for i := range seqOff {
						if off[i] != seqOff[i] {
							t.Fatalf("count=%d n=%d w=%d: off[%d] = %d, want %d",
								tc.count, tc.n, w, i, off[i], seqOff[i])
						}
					}
					for i := int64(0); i < wantDelivered; i++ {
						if val[i] != seqVal[i] {
							t.Fatalf("count=%d n=%d w=%d: val[%d] = %d, want %d",
								tc.count, tc.n, w, i, val[i], seqVal[i])
						}
					}
				}()
			}
		}
	}
}

func TestNextWorklistPathsAgree(t *testing.T) {
	r := rng.New(3)
	const n = int64(2000)
	const step = 5
	// Build a delivered inbox and wake set, then check the dense-sweep and
	// stamp+radix paths produce the same ascending candidate list. The
	// paths are selected by size in production; here we invoke each via
	// crafted inputs on both sides of the threshold and cross-check with a
	// reference set.
	for trial := 0; trial < 10; trial++ {
		msgCount := int(r.Uint64n(3 * uint64(n)))
		buf := randomMessages(r, msgCount, n)
		wakeSet := map[int64]bool{}
		for i := uint64(0); i < r.Uint64n(uint64(n)); i++ {
			wakeSet[int64(r.Uint64n(uint64(n)))] = true
		}
		var wake []int64
		for v := int64(0); v < n; v++ {
			if wakeSet[v] {
				wake = append(wake, v)
			}
		}

		// Reference: the sorted union of receivers and wake vertices.
		recvSet := map[int64]bool{}
		for _, m := range buf {
			recvSet[m.Dest] = true
		}
		want := []int64{}
		for v := int64(0); v < n; v++ {
			if recvSet[v] || wakeSet[v] {
				want = append(want, v)
			}
		}

		for _, w := range []int{1, 6} {
			func() {
				defer par.SetWorkers(par.SetWorkers(w))
				s := &runScratch{}
				inboxOff := make([]int64, n+1)
				var inboxVal []int64
				delivered := s.deliver(buf, nil, int64(len(buf)), nil, n, nil, &inboxOff, &inboxVal, true, int64(step), DirAuto)
				if delivered != int64(len(buf)) {
					t.Fatalf("trial %d w=%d: delivered = %d, want %d", trial, w, delivered, len(buf))
				}
				stamp := make([]int64, n)
				par.FillInt64(stamp, -1)
				got := s.nextWorklist(make([]int64, n), step, wake, delivered, buf, nil, nil, int64(len(buf)), stamp, n)
				if len(got) != len(want) {
					t.Fatalf("trial %d w=%d: worklist len %d, want %d", trial, w, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d w=%d: worklist[%d] = %d, want %d", trial, w, i, got[i], want[i])
					}
				}
			}()
		}
	}
}

// TestSparseDeliverMatchesDense checks that every sparse delivery path —
// the O(sent) stamped lookaside (serial, with and without combiner) and
// the parallel CSR+lookaside mirror — hands each vertex exactly the
// message sequence the dense CSR path would.
func TestSparseDeliverMatchesDense(t *testing.T) {
	r := rng.New(9)
	for _, tc := range []struct {
		count int
		n     int64
	}{
		{0, 64}, {7, 64}, {300, 64}, {40000, 500},
	} {
		for _, combine := range []func(a, b int64) int64{nil, Sum} {
			buf := randomMessages(r, tc.count, tc.n)

			denseOff := make([]int64, tc.n+1)
			var denseVal []int64
			dense := &runScratch{}
			var wantDelivered int64
			if combine == nil {
				wantDelivered = dense.seqDeliver(buf, tc.n, &denseOff, &denseVal)
			} else {
				wantDelivered = dense.seqCombineDeliver(buf, tc.n, combine, &denseOff, &denseVal)
			}

			for _, w := range []int{1, 6} {
				func() {
					defer par.SetWorkers(par.SetWorkers(w))
					const st = int64(3)
					s := &runScratch{}
					off := make([]int64, tc.n+1)
					var val []int64
					delivered := s.deliver(buf, nil, int64(len(buf)), nil, tc.n, combine, &off, &val, true, st, DirAuto)
					if delivered != wantDelivered {
						t.Fatalf("count=%d n=%d w=%d: delivered = %d, want %d",
							tc.count, tc.n, w, delivered, wantDelivered)
					}
					ib := &inboxView{val: val, stamp: s.msgStamp, lo: s.msgLo, hi: s.msgHi, st: st, sparse: true}
					for v := int64(0); v < tc.n; v++ {
						want := denseVal[denseOff[v]:denseOff[v+1]]
						got := ib.slice(v)
						if len(got) != len(want) {
							t.Fatalf("count=%d n=%d w=%d: inbox[%d] len %d, want %d",
								tc.count, tc.n, w, v, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("count=%d n=%d w=%d: inbox[%d][%d] = %d, want %d",
									tc.count, tc.n, w, v, i, got[i], want[i])
							}
						}
					}
				}()
			}
		}
	}
}

// TestSeqCombineDeliverReusesScratch pins the allocation-churn fix: the
// has-flag invariant (all false between deliveries) must hold so repeated
// deliveries on one scratch need no per-superstep zeroing.
func TestSeqCombineDeliverReusesScratch(t *testing.T) {
	s := &runScratch{}
	const n = int64(32)
	off := make([]int64, n+1)
	var val []int64
	for round := 0; round < 3; round++ {
		buf := []Message{{Dest: 3, Value: 5}, {Dest: 3, Value: 2}, {Dest: 7, Value: 1}}
		delivered := s.seqCombineDeliver(buf, n, Min, &off, &val)
		if delivered != 2 {
			t.Fatalf("round %d: delivered = %d, want 2", round, delivered)
		}
		if got := val[off[3]:off[4]]; len(got) != 1 || got[0] != 2 {
			t.Fatalf("round %d: inbox[3] = %v", round, got)
		}
		for v, h := range s.has {
			if h {
				t.Fatalf("round %d: has[%d] left set", round, v)
			}
		}
	}
}

func TestSweepChunkSizeDeterministic(t *testing.T) {
	// Chunk boundaries must depend only on the sweep length, never the
	// worker count — the determinism of every chunk-order merge rests on
	// this.
	for _, count := range []int{0, 1, 63, 64, 4096, 1 << 20} {
		defer par.SetWorkers(par.SetWorkers(1))
		a := sweepChunkSize(count)
		par.SetWorkers(16)
		b := sweepChunkSize(count)
		if a != b {
			t.Fatalf("sweepChunkSize(%d) differs across worker counts: %d vs %d", count, a, b)
		}
	}
}
