package core_test

// This file keeps docs/TUTORIAL.md honest: it implements the tutorial's
// kHopMin program verbatim and verifies it against brute force.

import (
	"testing"
	"testing/quick"

	"graphxmt/internal/core"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/machine"
	"graphxmt/internal/rng"
	"graphxmt/internal/trace"
)

type kHopMin struct{ K int }

func (kHopMin) InitialState(_ *graph.Graph, v int64) int64 { return v }

func (p kHopMin) Compute(v *core.VertexContext) {
	best := v.State()
	changed := false
	for _, m := range v.Messages() {
		if m < best {
			best, changed = m, true
		}
	}
	if changed {
		v.SetState(best)
	}
	if v.Superstep() < p.K && (v.Superstep() == 0 || changed) {
		v.SendToNeighbors(best)
	}
	v.VoteToHalt()
}

// bruteKHopMin computes the minimum ID within k hops of every vertex by
// bounded BFS.
func bruteKHopMin(g *graph.Graph, k int) []int64 {
	n := g.NumVertices()
	out := make([]int64, n)
	for s := int64(0); s < n; s++ {
		minID := s
		dist := map[int64]int{s: 0}
		queue := []int64{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if v < minID {
				minID = v
			}
			if dist[v] == k {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if _, seen := dist[w]; !seen {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		out[s] = minID
	}
	return out
}

func TestTutorialKHopMin(t *testing.T) {
	g := gen.Ring(12)
	res, err := core.Run(core.Config{Graph: g, Program: kHopMin{K: 2}, Combiner: core.Min})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKHopMin(g, 2)
	for v := range want {
		if res.States[v] != want[v] {
			t.Fatalf("state[%d] = %d, want %d", v, res.States[v], want[v])
		}
	}
	// k supersteps of flooding plus the final all-quiet superstep.
	if res.Supersteps != 3 {
		t.Fatalf("supersteps = %d, want 3", res.Supersteps)
	}
}

func TestTutorialKHopMinProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw, kRaw uint8) bool {
		n := int64(nRaw%25) + 2
		k := int(kRaw%4) + 1
		r := rng.New(seed)
		edges := make([]graph.Edge, int(mRaw%80))
		for i := range edges {
			edges[i] = graph.Edge{U: int64(r.Uint64n(uint64(n))), V: int64(r.Uint64n(uint64(n)))}
		}
		g, err := graph.Build(n, edges, graph.BuildOptions{SortAdjacency: true})
		if err != nil {
			return false
		}
		res, err := core.Run(core.Config{Graph: g, Program: kHopMin{K: k}, Combiner: core.Min})
		if err != nil {
			return false
		}
		want := bruteKHopMin(g, k)
		for v := range want {
			if res.States[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTutorialProfileEvaluates(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	if _, err := core.Run(core.Config{Graph: g, Program: kHopMin{K: 2},
		Combiner: core.Min, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	model := machine.NewAnalytic(machine.DefaultConfig())
	t8 := machine.Seconds(model, rec.Phases(), 8)
	t128 := machine.Seconds(model, rec.Phases(), 128)
	if !(t8 > t128) {
		t.Fatalf("no scaling: %v vs %v", t8, t128)
	}
}
