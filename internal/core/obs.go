package core

// Host-runtime observability hooks for the BSP engine. Everything here is
// gated on a single *obsRun pointer: a nil sink yields a nil *obsRun, and
// every per-superstep hook is one pointer comparison — no time syscalls,
// no allocation, no atomic traffic on the hot path (benchmark-verified
// against the engine benchmarks). Observability reads only values the
// engine computes anyway, so Result and the recorded XMT profile are
// bit-identical with or without a sink (see determinism_test.go).

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
	"graphxmt/internal/par"
)

// Engine obs phase names: the host-side structure of one superstep, in
// execution order, mirroring parallel.go. "init" (step -1) is the
// InitialState sweep before superstep 0.
const (
	obsPhaseInit      = "init"
	obsPhaseCompute   = "compute"   // chunked Compute sweep + send-buffer concat
	obsPhaseTerminate = "terminate" // chunk-partial merges + live-count termination check
	obsPhaseDeliver   = "deliver"   // counting-sort delivery / combining
	obsPhaseWorklist  = "worklist"  // sparse-activation worklist build

	// obsPhaseCheckpoint is emitted only when a checkpoint policy is
	// configured (the superstep-boundary snapshot + write), so it is not
	// part of EnginePhases.
	obsPhaseCheckpoint = "checkpoint"
)

// EnginePhases returns the obs span names Run emits for each superstep, in
// execution order ("worklist" only under SparseActivation). The "init"
// span (step -1) precedes superstep 0. Runs with a checkpoint policy
// additionally emit a "checkpoint" span per superstep boundary.
func EnginePhases() []string {
	return []string{obsPhaseCompute, obsPhaseTerminate, obsPhaseDeliver, obsPhaseWorklist}
}

// obsMemSampleEvery is the superstep interval between runtime.MemStats
// samples (ReadMemStats briefly stops the world, so sampling every
// superstep would distort short-superstep runs).
const obsMemSampleEvery = 8

type obsRun struct {
	sink      obs.Sink
	start     time.Time
	timer     *par.WorkerTimer
	prevTimer *par.WorkerTimer
	workers   int
	lastStep  int
}

// runSink resolves the sink for a run: Config.Obs, or the sink carried by
// the recorder's observer (how CLIs attach observability without plumbing
// it through the bspalg wrappers).
func runSink(cfg *Config) obs.Sink {
	if cfg.Obs != nil {
		return cfg.Obs
	}
	if p, ok := cfg.Recorder.Observer().(obs.SinkProvider); ok {
		return p.ObsSink()
	}
	return nil
}

// startObs opens an observed run; a nil return is the disabled state every
// hook checks.
func startObs(cfg *Config, g *graph.Graph) *obsRun {
	sink := runSink(cfg)
	if sink == nil {
		return nil
	}
	w := par.Workers()
	o := &obsRun{
		sink:    sink,
		start:   time.Now(),
		timer:   par.NewWorkerTimer(w),
		workers: w,
	}
	o.prevTimer = par.SetTimer(o.timer)
	sink.RunStart(obs.RunInfo{
		Label:    "bsp",
		Workers:  w,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Lanes:    len(laneSourcesOf(cfg.Program)),
	})
	return o
}

// phase emits the span [t0, now) under name, carrying the per-worker busy
// time and chunk-granularity stats folded since the previous phase
// boundary. DrainChunks must run before Drain — Drain resets both.
func (o *obsRun) phase(name string, step int, t0 time.Time) {
	chunks, maxChunk := o.timer.DrainChunks()
	busy := o.timer.Drain(make([]time.Duration, o.workers))
	o.sink.Span(obs.Span{
		Name:       name,
		Step:       step,
		Start:      t0.Sub(o.start),
		Dur:        time.Since(t0),
		WorkerBusy: busy,
		Chunks:     chunks,
		MaxChunk:   maxChunk,
	})
}

// step emits the superstep counters and, every obsMemSampleEvery
// supersteps, a MemStats sample.
func (o *obsRun) step(st obs.StepStats) {
	o.lastStep = st.Step
	o.sink.Step(st)
	if st.Step%obsMemSampleEvery == 0 {
		o.sampleMem(st.Step)
	}
}

func (o *obsRun) sampleMem(step int) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	o.sink.Mem(obs.MemSample{
		Step:       step,
		At:         time.Since(o.start),
		HeapAlloc:  ms.HeapAlloc,
		HeapSys:    ms.HeapSys,
		NumGC:      ms.NumGC,
		PauseTotal: time.Duration(ms.PauseTotalNs),
		VmHWM:      readVmHWM(),
	})
}

// readVmHWM reads the process peak RSS from /proc/self/status, in bytes.
// Heap figures from runtime.MemStats miss mmap'd graph pages (the
// compressed zero-copy load path), so peak RSS is the honest
// graph-resident number. Returns 0 (sample omitted from reports) on any
// failure — non-linux hosts have no procfs.
func readVmHWM() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10 // procfs reports kB
	}
	return 0
}

// finish restores the previous worker timer, takes a final memory sample,
// and closes the run. Deferred from Run so error exits also restore state.
func (o *obsRun) finish() {
	par.SetTimer(o.prevTimer)
	o.sampleMem(o.lastStep)
	o.sink.RunEnd(time.Since(o.start))
}

// flightDump asks the flight recorder reachable from the run's sink (if
// any) to dump its superstep ring into dir, returning the written path.
// Best-effort: a missing recorder or a write failure yields "" — the dump
// must never mask the ProgramError it annotates. Safe on a nil *obsRun.
func (o *obsRun) flightDump(dir, cause string) string {
	if o == nil || dir == "" {
		return ""
	}
	fd := obs.FindFlightDumper(o.sink)
	if fd == nil {
		return ""
	}
	path, err := fd.DumpFlight(dir, cause)
	if err != nil {
		return ""
	}
	return path
}

// scratchBytes approximates the engine's reusable scratch footprint: the
// run-level buffers plus every chunk's private send buffer and wake list.
// Called once per superstep, and only when a sink is attached.
func (s *runScratch) scratchBytes(sendBuf []Message, bcasts []bcastRec, inboxOff, inboxVal, candidates, stamp []int64) int64 {
	const (
		msgSize = 16 // Message: two int64s
		recSize = 24 // bcastRec: three int64s
	)
	b := int64(cap(sendBuf))*msgSize + int64(cap(bcasts))*recSize
	b += int64(cap(s.expandBuf)) * msgSize
	b += int64(cap(inboxOff)+cap(inboxVal)+cap(candidates)+cap(stamp)) * 8
	b += int64(cap(s.sendOff)+cap(s.bcastOff)) * 8
	b += int64(cap(s.wake)+cap(s.next)+cap(s.acc)) * 8
	b += int64(cap(s.has))
	b += int64(cap(s.counts)) * 4
	b += int64(cap(s.groupOff)+cap(s.groupVal)+cap(s.rangeCnt)+cap(s.sortScratch)) * 8
	b += int64(cap(s.rangeMax)+cap(s.hubDest)+cap(s.hubVal)+cap(s.hubPart)+cap(s.candWork)) * 8
	b += int64(cap(s.foldBnds)+cap(s.bounds)+cap(s.denseBounds)+cap(s.pullBnds)+cap(s.bcastBnds)) * 8
	b += int64(cap(s.msgStamp)+cap(s.msgLo)+cap(s.msgHi)+cap(s.recvList)) * 8
	b += int64(cap(s.bcastLook))*16 + int64(cap(s.bcastWork))*8
	for _, cs := range s.chunks {
		b += int64(cap(cs.eng.sendBuf))*msgSize + int64(cap(cs.eng.bcastBuf))*recSize + int64(cap(cs.wake))*8
	}
	return b
}
