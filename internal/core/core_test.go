package core

import (
	"strings"
	"testing"

	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// haltProgram votes to halt immediately without sending.
type haltProgram struct{}

func (haltProgram) InitialState(*graph.Graph, int64) int64 { return 0 }
func (haltProgram) Compute(v *VertexContext)               { v.VoteToHalt() }

func TestRunTerminatesWhenAllHalt(t *testing.T) {
	g := gen.Ring(8)
	res, err := Run(Config{Graph: g, Program: haltProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Fatalf("supersteps = %d, want 1", res.Supersteps)
	}
	if res.ActivePerStep[0] != 8 {
		t.Fatalf("superstep 0 active = %d, want all", res.ActivePerStep[0])
	}
}

// pingProgram: vertex 0 sends its ID to neighbors at step 0; receivers
// record the max message then halt.
type pingProgram struct{}

func (pingProgram) InitialState(*graph.Graph, int64) int64 { return -1 }
func (pingProgram) Compute(v *VertexContext) {
	if v.Superstep() == 0 {
		if v.ID() == 0 {
			v.SendToNeighbors(42)
		}
		v.VoteToHalt()
		return
	}
	best := v.State()
	for _, m := range v.Messages() {
		if m > best {
			best = m
		}
	}
	v.SetState(best)
	v.VoteToHalt()
}

func TestMessagesCrossSuperstepBoundary(t *testing.T) {
	g := gen.Star(5) // 0 is the hub
	res, err := Run(Config{Graph: g, Program: pingProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 2 {
		t.Fatalf("supersteps = %d, want 2", res.Supersteps)
	}
	for v := int64(1); v < 5; v++ {
		if res.States[v] != 42 {
			t.Fatalf("state[%d] = %d, want 42", v, res.States[v])
		}
	}
	if res.States[0] != -1 {
		t.Fatalf("hub state = %d, want unchanged", res.States[0])
	}
	// Only vertices with messages run in superstep 1.
	if res.ActivePerStep[1] != 4 {
		t.Fatalf("superstep 1 active = %d, want 4", res.ActivePerStep[1])
	}
	if res.MessagesPerStep[0] != 4 || res.MessagesPerStep[1] != 0 {
		t.Fatalf("messages = %v", res.MessagesPerStep)
	}
}

// relayProgram forwards a token along a ring exactly k hops, proving that
// halted vertices are reactivated by messages.
type relayProgram struct{ hops int64 }

func (relayProgram) InitialState(*graph.Graph, int64) int64 { return 0 }
func (p relayProgram) Compute(v *VertexContext) {
	if v.Superstep() == 0 {
		if v.ID() == 0 {
			v.Send((v.ID()+1)%v.NumVertices(), 1)
		}
		v.VoteToHalt()
		return
	}
	for _, m := range v.Messages() {
		v.SetState(v.State() + 1)
		if m < p.hops {
			v.Send((v.ID()+1)%v.NumVertices(), m+1)
		}
	}
	v.VoteToHalt()
}

func TestHaltedVerticesReactivateOnMessage(t *testing.T) {
	g := gen.Ring(5)
	res, err := Run(Config{Graph: g, Program: relayProgram{hops: 7}})
	if err != nil {
		t.Fatal(err)
	}
	// Token visits vertices 1,2,3,4,0,1,2 — vertex 1 and 2 twice.
	if res.States[1] != 2 || res.States[2] != 2 || res.States[3] != 1 {
		t.Fatalf("states = %v", res.States)
	}
	// Step 0 plus 7 hop steps; termination is detected within the final
	// superstep (no extra empty step runs).
	if res.Supersteps != 8 {
		t.Fatalf("supersteps = %d", res.Supersteps)
	}
}

// floodMin floods the minimum ID; used to test combiners (min-combinable).
type floodMin struct{}

func (floodMin) InitialState(_ *graph.Graph, v int64) int64 { return v }
func (floodMin) Compute(v *VertexContext) {
	changed := false
	st := v.State()
	for _, m := range v.Messages() {
		if m < st {
			st = m
			changed = true
		}
	}
	if changed {
		v.SetState(st)
	}
	if v.Superstep() == 0 || changed {
		v.SendToNeighbors(st)
	}
	v.VoteToHalt()
}

func TestCombinerPreservesResult(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 9, EdgeFactor: 6, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(Config{Graph: g, Program: floodMin{}})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(Config{Graph: g, Program: floodMin{}, Combiner: Min})
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.States {
		if plain.States[v] != combined.States[v] {
			t.Fatalf("state[%d]: %d vs %d", v, plain.States[v], combined.States[v])
		}
	}
	if plain.Supersteps != combined.Supersteps {
		t.Fatalf("supersteps differ: %d vs %d", plain.Supersteps, combined.Supersteps)
	}
	// Combining must not increase delivered messages.
	for i := range combined.DeliveredPerStep {
		if combined.DeliveredPerStep[i] > plain.DeliveredPerStep[i] {
			t.Fatalf("step %d: combined delivered %d > plain %d",
				i, combined.DeliveredPerStep[i], plain.DeliveredPerStep[i])
		}
	}
}

// aggProgram exercises aggregators.
type aggProgram struct{}

func (aggProgram) InitialState(*graph.Graph, int64) int64 { return 0 }
func (aggProgram) Compute(v *VertexContext) {
	v.Aggregate("degsum", v.Degree(), Sum)
	v.Aggregate("maxid", v.ID(), Max)
	v.Aggregate("minid", v.ID(), Min)
	v.VoteToHalt()
}

func TestAggregators(t *testing.T) {
	g := gen.Star(6)
	res, err := Run(Config{Graph: g, Program: aggProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates["degsum"] != g.NumEdges() {
		t.Fatalf("degsum = %d, want %d", res.Aggregates["degsum"], g.NumEdges())
	}
	if res.Aggregates["maxid"] != 5 || res.Aggregates["minid"] != 0 {
		t.Fatalf("aggregates = %v", res.Aggregates)
	}
}

func TestRunErrors(t *testing.T) {
	g := gen.Ring(4)
	if _, err := Run(Config{Program: haltProgram{}}); err == nil {
		t.Fatal("nil graph should error")
	}
	if _, err := Run(Config{Graph: g}); err == nil {
		t.Fatal("nil program should error")
	}
}

// chattyProgram never halts and always sends, to exercise the superstep
// bound and the message cap.
type chattyProgram struct{}

func (chattyProgram) InitialState(*graph.Graph, int64) int64 { return 0 }
func (chattyProgram) Compute(v *VertexContext)               { v.SendToNeighbors(1) }

func TestMaxSuperstepsEnforced(t *testing.T) {
	g := gen.Ring(4)
	_, err := Run(Config{Graph: g, Program: chattyProgram{}, MaxSupersteps: 5})
	if err == nil || !strings.Contains(err.Error(), "convergence") {
		t.Fatalf("err = %v", err)
	}
}

func TestMessageCapEnforced(t *testing.T) {
	g := gen.Complete(16)
	_, err := Run(Config{Graph: g, Program: chattyProgram{}, MaxSupersteps: 3,
		MaxMessagesPerSuperstep: 10})
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("err = %v", err)
	}
}

func TestProfileCharging(t *testing.T) {
	g := gen.Star(5)
	rec := trace.NewRecorder()
	costs := DefaultCosts()
	res, err := Run(Config{Graph: g, Program: pingProgram{}, Recorder: rec, Costs: &costs})
	if err != nil {
		t.Fatal(err)
	}
	phases := rec.PhasesNamed("bsp/superstep")
	if len(phases) != res.Supersteps {
		t.Fatalf("phases = %d, supersteps = %d", len(phases), res.Supersteps)
	}
	n := g.NumVertices()
	// Every superstep has a scan region covering the full vertex set.
	scans := rec.PhasesNamed("bsp/scan")
	if len(scans) != res.Supersteps {
		t.Fatalf("scan phases = %d, supersteps = %d", len(scans), res.Supersteps)
	}
	for i, sp := range scans {
		if sp.Loads != costs.ScanLoadsPerVertex*n || sp.Tasks != n {
			t.Fatalf("scan %d: loads %d tasks %d", i, sp.Loads, sp.Tasks)
		}
	}
	// Superstep 0: all 5 active + 4 sends.
	p0 := phases[0]
	wantLoads := costs.ActiveLoadsPerVertex*5 +
		costs.SendLoadsPerMsg*4 + costs.DeliverLoadsPerMsg*4
	if p0.Loads != wantLoads {
		t.Fatalf("superstep 0 loads = %d, want %d", p0.Loads, wantLoads)
	}
	if p0.Hot[trace.HotMsgCounter] != costs.hotOps(4) {
		t.Fatalf("superstep 0 hot = %d", p0.Hot[trace.HotMsgCounter])
	}
	// Superstep 1: 4 active receiving 1 message each, no sends.
	p1 := phases[1]
	wantLoads1 := costs.ActiveLoadsPerVertex*4 + costs.RecvLoadsPerMsg*4
	if p1.Loads != wantLoads1 {
		t.Fatalf("superstep 1 loads = %d, want %d", p1.Loads, wantLoads1)
	}
	if p1.Stores != costs.ActiveStoresPerVertex*4 {
		t.Fatalf("superstep 1 stores = %d", p1.Stores)
	}
}

func TestDeliverNoCombiner(t *testing.T) {
	buf := []Message{{Dest: 2, Value: 5}, {Dest: 0, Value: 1}, {Dest: 2, Value: 7}}
	off := make([]int64, 4)
	var val []int64
	delivered := (&runScratch{}).deliver(buf, nil, 3, nil, 3, nil, &off, &val, false, 0, DirAuto)
	if delivered != 3 {
		t.Fatalf("delivered = %d", delivered)
	}
	if off[0] != 0 || off[1] != 1 || off[2] != 1 || off[3] != 3 {
		t.Fatalf("offsets = %v", off)
	}
	if val[0] != 1 {
		t.Fatalf("vertex 0 inbox = %v", val[0:1])
	}
	got := val[off[2]:off[3]]
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("vertex 2 inbox = %v", got)
	}
}

func TestDeliverWithCombiner(t *testing.T) {
	buf := []Message{{Dest: 1, Value: 5}, {Dest: 1, Value: 3}, {Dest: 1, Value: 9}}
	off := make([]int64, 3)
	var val []int64
	delivered := (&runScratch{}).deliver(buf, nil, 3, nil, 2, Min, &off, &val, false, 0, DirAuto)
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	inbox := val[off[1]:off[2]]
	if len(inbox) != 1 || inbox[0] != 3 {
		t.Fatalf("combined inbox = %v", inbox)
	}
	if off[1]-off[0] != 0 {
		t.Fatal("vertex 0 should have empty inbox")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.MustBuild(0, nil, graph.BuildOptions{})
	res, err := Run(Config{Graph: g, Program: haltProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 || len(res.States) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSendToArbitraryVertex(t *testing.T) {
	// A vertex may message any vertex it can identify, not only neighbors.
	g := gen.Path(4)
	res, err := Run(Config{Graph: g, Program: farSend{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.States[3] != 99 {
		t.Fatalf("state[3] = %d", res.States[3])
	}
}

type farSend struct{}

func (farSend) InitialState(*graph.Graph, int64) int64 { return 0 }
func (farSend) Compute(v *VertexContext) {
	if v.Superstep() == 0 && v.ID() == 0 {
		v.Send(3, 99) // not a neighbor on the path
	}
	for _, m := range v.Messages() {
		v.SetState(m)
	}
	v.VoteToHalt()
}

func TestSparseActivationEquivalence(t *testing.T) {
	// Sparse activation must not change any observable result: states,
	// superstep counts, active counts, message counts.
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range []Program{floodMin{}, pingProgram{}, relayProgram{hops: 5}} {
		full, err := Run(Config{Graph: g, Program: prog})
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := Run(Config{Graph: g, Program: prog, SparseActivation: true})
		if err != nil {
			t.Fatal(err)
		}
		if full.Supersteps != sparse.Supersteps {
			t.Fatalf("%T: supersteps %d vs %d", prog, full.Supersteps, sparse.Supersteps)
		}
		for v := range full.States {
			if full.States[v] != sparse.States[v] {
				t.Fatalf("%T: state[%d] differs", prog, v)
			}
		}
		for s := range full.ActivePerStep {
			if full.ActivePerStep[s] != sparse.ActivePerStep[s] {
				t.Fatalf("%T: active[%d] %d vs %d", prog, s,
					full.ActivePerStep[s], sparse.ActivePerStep[s])
			}
			if full.MessagesPerStep[s] != sparse.MessagesPerStep[s] {
				t.Fatalf("%T: messages[%d] differ", prog, s)
			}
		}
	}
}

func TestSparseActivationReducesScanCharges(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fullRec := trace.NewRecorder()
	if _, err := Run(Config{Graph: g, Program: floodMin{}, Recorder: fullRec}); err != nil {
		t.Fatal(err)
	}
	sparseRec := trace.NewRecorder()
	if _, err := Run(Config{Graph: g, Program: floodMin{}, Recorder: sparseRec,
		SparseActivation: true}); err != nil {
		t.Fatal(err)
	}
	fullScans := fullRec.PhasesNamed("bsp/scan")
	sparseScans := sparseRec.PhasesNamed("bsp/scan")
	if len(fullScans) != len(sparseScans) {
		t.Fatalf("scan phase counts differ: %d vs %d", len(fullScans), len(sparseScans))
	}
	// Every full scan covers n vertices; sparse scans cover at most that,
	// and strictly less in the converged tail.
	n := g.NumVertices()
	for i := range fullScans {
		if fullScans[i].Tasks != n {
			t.Fatalf("full scan %d covers %d, want %d", i, fullScans[i].Tasks, n)
		}
		if sparseScans[i].Tasks > n {
			t.Fatalf("sparse scan %d covers %d > n", i, sparseScans[i].Tasks)
		}
	}
	lastSparse := sparseScans[len(sparseScans)-1]
	if lastSparse.Tasks*4 > n {
		t.Fatalf("tail sparse scan covers %d of %d vertices; worklist not shrinking",
			lastSparse.Tasks, n)
	}
}

// aggReader checks Pregel aggregator visibility: values aggregated in
// superstep s are readable in superstep s+1, and nothing is visible at
// superstep 0.
type aggReader struct {
	sawAtStep0 bool
	read       []int64
}

func (*aggReader) InitialState(*graph.Graph, int64) int64 { return 0 }
func (p *aggReader) Compute(v *VertexContext) {
	if v.Superstep() == 0 {
		if _, ok := v.PreviousAggregate("count"); ok {
			p.sawAtStep0 = true
		}
	} else if v.ID() == 0 {
		if val, ok := v.PreviousAggregate("count"); ok {
			p.read = append(p.read, val)
		}
	}
	v.Aggregate("count", 1, Sum)
	if v.Superstep() < 2 {
		v.SendToNeighbors(1) // keep the computation alive two more steps
	}
	v.VoteToHalt()
}

func TestPreviousAggregateVisibility(t *testing.T) {
	g := gen.Ring(5)
	prog := &aggReader{}
	res, err := Run(Config{Graph: g, Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if prog.sawAtStep0 {
		t.Fatal("aggregate visible at superstep 0")
	}
	if len(prog.read) == 0 {
		t.Fatal("no aggregate snapshots read")
	}
	// After superstep 0 (all 5 vertices aggregated 1), vertex 0 reads 5.
	if prog.read[0] != 5 {
		t.Fatalf("superstep-1 snapshot = %d, want 5", prog.read[0])
	}
	// Aggregators are cumulative across the run.
	var totalActive int64
	for _, a := range res.ActivePerStep {
		totalActive += a
	}
	if res.Aggregates["count"] != totalActive {
		t.Fatalf("final aggregate %d, want %d", res.Aggregates["count"], totalActive)
	}
}

// orderProgram records the order messages arrive at vertex 0.
type orderProgram struct{ got []int64 }

func (*orderProgram) InitialState(*graph.Graph, int64) int64 { return 0 }
func (p *orderProgram) Compute(v *VertexContext) {
	if v.Superstep() == 0 {
		// Every vertex sends its ID to vertex 0; sends happen in
		// ascending vertex order because the engine runs vertices in
		// order within a superstep.
		v.Send(0, v.ID())
		v.VoteToHalt()
		return
	}
	if v.ID() == 0 {
		p.got = append(p.got, v.Messages()...)
	}
	v.VoteToHalt()
}

func TestInboxPreservesSendOrder(t *testing.T) {
	// The delivery counting sort is stable, so a vertex's inbox holds
	// messages in global send order — a documented determinism guarantee
	// programs may rely on for reproducibility (not for semantics).
	g := gen.Ring(6)
	prog := &orderProgram{}
	if _, err := Run(Config{Graph: g, Program: prog}); err != nil {
		t.Fatal(err)
	}
	if len(prog.got) != 6 {
		t.Fatalf("messages = %v", prog.got)
	}
	for i, m := range prog.got {
		if m != int64(i) {
			t.Fatalf("inbox order = %v, want ascending", prog.got)
		}
	}
}
