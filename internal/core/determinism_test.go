package core_test

// The host-parallelism invariant, asserted end to end: a BSP run's Result
// (states, per-step counters, aggregates) and its recorded trace profile
// are bit-identical whether par executes on 1 or N host workers. Simulated
// time is a pure function of the profile, so this is exactly the guarantee
// that host parallelism never leaks into the machine model.

import (
	"reflect"
	"testing"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/core"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
	"graphxmt/internal/obs/live"
	"graphxmt/internal/par"
	"graphxmt/internal/trace"
)

// detGraph is shared by all determinism cases: large enough that the sweep
// splits into many chunks and dense supersteps cross the parallel-delivery
// threshold, small enough to stay fast under -race.
func detGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.RMATConfig{Scale: 12, EdgeFactor: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runDet executes cfg (with a fresh program from mk, since some programs
// carry per-run state) under w workers and returns result + profile. Every
// run carries the full observability stack — report sink, metrics
// registry, and a started live introspection server, teed together:
// attaching them must never change the Result or the recorded profile, so
// the determinism assertions double as the obs-is-passive guarantee. After
// the run, the metrics registry's logical counters are reconciled exactly
// against the Result.
func runDet(t *testing.T, g *graph.Graph, w int, mk func() core.Config) (*core.Result, []*trace.Phase) {
	t.Helper()
	defer par.SetWorkers(par.SetWorkers(w))
	rec := trace.NewRecorder()
	cfg := mk()
	cfg.Graph = g
	cfg.Recorder = rec
	m := obs.NewMetrics(nil)
	srv := live.NewServer(nil, 0)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cfg.Obs = obs.Tee(obs.NewReport(), m, srv.Sink())
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reconcileMetrics(t, m, res)
	return res, rec.Phases()
}

// reconcileMetrics asserts the metrics registry's counters agree exactly
// with the run's Result — the live view and the returned value are two
// reads of the same facts.
func reconcileMetrics(t *testing.T, m *obs.Metrics, res *core.Result) {
	t.Helper()
	reg := m.Registry()
	var wantSent, wantActive int64
	for _, s := range res.MessagesPerStep {
		wantSent += s
	}
	for _, a := range res.ActivePerStep {
		wantActive += a
	}
	if got := reg.Counter("graphxmt_messages_logical_total", "").Value(); got != wantSent {
		t.Fatalf("metrics logical messages = %d, Result sums to %d", got, wantSent)
	}
	if got := reg.Counter("graphxmt_active_vertices_total", "").Value(); got != wantActive {
		t.Fatalf("metrics active vertices = %d, Result sums to %d", got, wantActive)
	}
	if got := reg.Counter("graphxmt_supersteps_total", "").Value(); got != int64(res.Supersteps) {
		t.Fatalf("metrics supersteps = %d, Result has %d", got, res.Supersteps)
	}
}

func comparePhases(t *testing.T, want, got []*trace.Phase) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("phase count %d != %d", len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Name != b.Name || a.Index != b.Index ||
			a.Tasks != b.Tasks || a.Issue != b.Issue ||
			a.Loads != b.Loads || a.Stores != b.Stores ||
			a.MaxTask != b.MaxTask || a.Hot != b.Hot ||
			a.Barriers != b.Barriers {
			t.Fatalf("phase %d (%s/%d) differs:\n  1 worker: %+v\n  N workers: %+v",
				i, a.Name, a.Index, a, b)
		}
	}
}

func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	g := detGraph(t)
	cases := []struct {
		name string
		mk   func() core.Config
	}{
		{"bfs/dense", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}}
		}},
		{"bfs/sparse", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}, SparseActivation: true}
		}},
		{"cc/dense", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}}
		}},
		{"cc/combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
		}},
		{"cc/sparse-combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min, SparseActivation: true}
		}},
		{"pagerank/combiner", func() core.Config {
			return core.Config{
				Program:  bspalg.PageRankProgram{DampingMilli: 850, Rounds: 15},
				Combiner: core.Sum,
			}
		}},
		{"triangles/aggregator", func() core.Config {
			return core.Config{
				Program:                 bspalg.TCProgram{},
				MaxMessagesPerSuperstep: 1 << 26,
			}
		}},
		{"kcore/sparse", func() core.Config {
			return core.Config{Program: bspalg.NewKCoreProgram(g), SparseActivation: true}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseRes, basePh := runDet(t, g, 1, tc.mk)
			for _, w := range []int{3, 8} {
				res, ph := runDet(t, g, w, tc.mk)
				if !reflect.DeepEqual(baseRes, res) {
					t.Fatalf("w=%d: Result differs from 1-worker run\n  supersteps %d vs %d\n  active %v vs %v\n  msgs %v vs %v\n  aggregates %v vs %v",
						w, baseRes.Supersteps, res.Supersteps,
						baseRes.ActivePerStep, res.ActivePerStep,
						baseRes.MessagesPerStep, res.MessagesPerStep,
						baseRes.Aggregates, res.Aggregates)
				}
				comparePhases(t, basePh, ph)
			}
		})
	}
}

// TestEngineMatchesReference pins the parallel engine's answers to
// independent references on the same graph, so determinism cannot hide a
// systematic error shared by every worker count.
func TestEngineMatchesReference(t *testing.T) {
	g := detGraph(t)
	defer par.SetWorkers(par.SetWorkers(8))

	bfs, err := bspalg.BFS(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: simple sequential BFS over the CSR graph.
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int64{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	for v := int64(0); v < n; v++ {
		if bfs.Dist[v] != dist[v] {
			t.Fatalf("bfs dist[%d] = %d, want %d", v, bfs.Dist[v], dist[v])
		}
	}

	cc, err := bspalg.ConnectedComponents(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// In a connected component the label is the minimum member; check
	// label consistency across every edge.
	for v := int64(0); v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if cc.Labels[v] != cc.Labels[w] {
				t.Fatalf("cc labels differ across edge (%d,%d): %d vs %d",
					v, w, cc.Labels[v], cc.Labels[w])
			}
		}
	}
}
