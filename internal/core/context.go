package core

import "graphxmt/internal/graph"

// bcastRec is one recorded broadcast: SendToNeighbors stores a single
// (source, value) record instead of materializing one Message per edge.
// seq is the number of unicast messages in the same send buffer at record
// time — the record's position in the interleaved send stream — so
// expandTraffic can reconstruct the exact per-edge send order when a
// superstep mixes Send and SendToNeighbors. Within one buffer seq is
// non-decreasing by construction (vertices run in ascending order and the
// buffer only grows).
type bcastRec struct {
	src, val, seq int64
}

// engineState is the per-run state shared by all VertexContext calls.
type engineState struct {
	graph     *graph.Graph
	costs     CostSchedule
	states    []int64
	superstep int
	sendBuf   []Message
	// bcastBuf collects SendToNeighbors records in call order (ascending
	// source vertex within a chunk). sent counts logical messages — one per
	// edge for a broadcast — so counters, charges, and budgets see exactly
	// the traffic the per-edge expansion would have produced.
	bcastBuf []bcastRec
	sent     int64
	// unicast counts Send calls only (never SendToNeighbors, under either
	// broadcast treatment), so sent-unicast is the frontier's
	// broadcast-incident-edge count the direction heuristic reads — a
	// logical quantity identical across treatments and worker counts.
	unicast int64
	// expand reverts SendToNeighbors to eager per-edge expansion
	// (Config.ExpandBroadcasts) for A/B comparison.
	expand     bool
	aggregates map[string]*aggregator
	// prevAggregates snapshots the aggregators as of the end of the
	// previous superstep (Pregel semantics: a value aggregated in
	// superstep s is visible to every vertex in superstep s+1).
	prevAggregates map[string]int64

	// extra* accumulate Charge calls within one superstep.
	extraIssue, extraLoads, extraStores int64
}

type aggregator struct {
	value  int64
	reduce func(a, b int64) int64
	seeded bool
}

// VertexContext is the view a vertex program gets of one vertex during one
// superstep: its identity, state, incoming messages, and the operations the
// BSP model permits (local computation, sending, voting to halt).
type VertexContext struct {
	engine *engineState
	id     int64
	msgs   []int64
	halt   bool
	nbrBuf []int64 // decode buffer for Neighbors on compressed graphs; reused across vertices
}

// ID returns the vertex's identifier.
func (v *VertexContext) ID() int64 { return v.id }

// Superstep returns the current superstep number, starting at 0.
func (v *VertexContext) Superstep() int { return v.engine.superstep }

// State returns the vertex's current state.
func (v *VertexContext) State() int64 { return v.engine.states[v.id] }

// SetState replaces the vertex's state.
func (v *VertexContext) SetState(s int64) { v.engine.states[v.id] = s }

// Messages returns the messages received this superstep (sent during the
// previous superstep). The slice is read-only and valid only within
// Compute.
func (v *VertexContext) Messages() []int64 { return v.msgs }

// Degree returns the vertex's out-degree.
func (v *VertexContext) Degree() int64 { return v.engine.graph.Degree(v.id) }

// Neighbors returns the vertex's adjacency list ("the vertex implicitly
// knows its neighbors"). Read-only, and valid only within Compute: on
// compressed graphs the slice is a per-context decode buffer reused for
// the next vertex.
func (v *VertexContext) Neighbors() []int64 {
	g := v.engine.graph
	if g.Compressed() {
		v.nbrBuf = g.DecodeNeighbors(v.id, v.nbrBuf)
		return v.nbrBuf
	}
	return g.Neighbors(v.id)
}

// NeighborWeights returns the edge weights parallel to Neighbors. It
// panics on unweighted graphs, like graph.Graph.NeighborWeights.
func (v *VertexContext) NeighborWeights() []int64 {
	return v.engine.graph.NeighborWeights(v.id)
}

// HasNeighbor reports whether w is adjacent to this vertex (binary search
// on sorted graphs). The membership loads it implies must be charged via
// Charge by programs that care about fidelity.
func (v *VertexContext) HasNeighbor(w int64) bool {
	return v.engine.graph.HasEdge(v.id, w)
}

// Charge records algorithm-specific work beyond the engine's fixed
// per-vertex and per-message costs — e.g. the adjacency scans of the
// triangle counting program. The charges are added to the current
// superstep's phase.
func (v *VertexContext) Charge(issue, loads, stores int64) {
	v.engine.extraIssue += issue
	v.engine.extraLoads += loads
	v.engine.extraStores += stores
}

// NumVertices returns the graph's vertex count.
func (v *VertexContext) NumVertices() int64 { return v.engine.graph.NumVertices() }

// Send sends value to vertex dest, to be received next superstep. A vertex
// may send to any vertex it can identify, not only neighbors.
func (v *VertexContext) Send(dest, value int64) {
	v.engine.sendBuf = append(v.engine.sendBuf, Message{Dest: dest, Value: value})
	v.engine.sent++
	v.engine.unicast++
}

// SendToNeighbors sends value to every neighbor. Logically this is one
// message per edge (and it is counted and charged as such), but the engine
// records a single broadcast record and expands it at delivery — directly
// into the inbox CSR — so the physical traffic of a flood superstep is
// O(frontier), not O(edges incident on the frontier). The received message
// sequences are identical to per-edge expansion (see deliver in
// parallel.go for where combiner associativity is leaned on).
func (v *VertexContext) SendToNeighbors(value int64) {
	e := v.engine
	if e.expand {
		// Expanded per-edge messages still count as broadcast traffic, not
		// unicast — appended directly so the unicast counter (and therefore
		// the direction decision) is identical under both treatments.
		if e.graph.Compressed() {
			it := e.graph.NeighborDecoder(v.id)
			for w, ok := it.Next(); ok; w, ok = it.Next() {
				e.sendBuf = append(e.sendBuf, Message{Dest: w, Value: value})
			}
		} else {
			for _, w := range e.graph.Neighbors(v.id) {
				e.sendBuf = append(e.sendBuf, Message{Dest: w, Value: value})
			}
		}
		e.sent += e.graph.Degree(v.id)
		return
	}
	deg := e.graph.Degree(v.id)
	if deg == 0 {
		return
	}
	e.bcastBuf = append(e.bcastBuf, bcastRec{src: v.id, val: value, seq: int64(len(e.sendBuf))})
	e.sent += deg
}

// VoteToHalt marks the vertex inactive; it will not run again until a
// message arrives for it.
func (v *VertexContext) VoteToHalt() { v.halt = true }

// Aggregate folds value into the named global aggregator with the given
// reduction (registered on first use; subsequent calls must pass the same
// semantic reduction). Aggregator values are visible in Result.Aggregates
// after the run. Sum, Min and Max are provided as package helpers.
func (v *VertexContext) Aggregate(name string, value int64, reduce func(a, b int64) int64) {
	if v.engine.aggregates == nil {
		v.engine.aggregates = map[string]*aggregator{}
	}
	agg, ok := v.engine.aggregates[name]
	if !ok {
		agg = &aggregator{reduce: reduce}
		v.engine.aggregates[name] = agg
	}
	if !agg.seeded {
		agg.value = value
		agg.seeded = true
		return
	}
	agg.value = agg.reduce(agg.value, value)
}

// PreviousAggregate returns the value the named aggregator held at the end
// of the previous superstep (Pregel's aggregator visibility rule), and
// whether it existed. During superstep 0 nothing is visible.
func (v *VertexContext) PreviousAggregate(name string) (int64, bool) {
	val, ok := v.engine.prevAggregates[name]
	return val, ok
}

// Sum is an aggregator reduction.
func Sum(a, b int64) int64 { return a + b }

// Min is an aggregator reduction (and the natural combiner for label
// propagation algorithms).
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max is an aggregator reduction.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
