package core

// CostSchedule describes what each engine operation costs on the simulated
// Cray XMT, in the cost classes of package trace. The defaults model the
// paper's implementation: a BSP layer written in XMT-C on top of GraphCT
// "without native support for message features such as enqueueing and
// dequeueing", where message buffers are claimed with fetch-and-add and the
// runtime scans every vertex's queue each superstep.
//
// The same schedule is used by the generic engine and by the streaming
// triangle-counting evaluator (package bspalg), so their simulated times
// agree by construction.
type CostSchedule struct {
	// ScanLoadsPerVertex is charged for every vertex in the graph at every
	// superstep: the runtime inspects each vertex's message-queue head and
	// halt flag to decide whether the vertex runs. This full scan is what
	// makes the paper's early/late BSP iterations "two orders of magnitude"
	// more expensive than their shared-memory counterparts.
	ScanLoadsPerVertex int64

	// ActiveIssuePerVertex and ActiveLoadsPerVertex are the dispatch cost
	// of running one active vertex's Compute (state load, program
	// dispatch, vote bookkeeping).
	ActiveIssuePerVertex  int64
	ActiveLoadsPerVertex  int64
	ActiveStoresPerVertex int64

	// RecvLoadsPerMsg and RecvIssuePerMsg are charged per message
	// consumed from the inbox.
	RecvLoadsPerMsg int64
	RecvIssuePerMsg int64

	// SendStoresPerMsg, SendLoadsPerMsg and SendIssuePerMsg are charged
	// per message emitted: slot claim in the destination queue, payload
	// write, bounds/branching.
	SendStoresPerMsg int64
	SendLoadsPerMsg  int64
	SendIssuePerMsg  int64

	// DeliverLoadsPerMsg and DeliverStoresPerMsg are the superstep-boundary
	// message routing pass (the counting sort that turns the global send
	// buffer into per-vertex inboxes).
	DeliverLoadsPerMsg  int64
	DeliverStoresPerMsg int64

	// HotMsgChunk is the number of message slots allocated per
	// fetch-and-add on the single global buffer cursor. One hotspot op is
	// charged per chunk; smaller chunks mean more serialization — the
	// mechanism the paper names when discussing BSP scalability limits.
	HotMsgChunk int64
}

// DefaultCosts returns the cost schedule used by the experiments.
func DefaultCosts() CostSchedule {
	return CostSchedule{
		ScanLoadsPerVertex:    2,
		ActiveIssuePerVertex:  3,
		ActiveLoadsPerVertex:  2,
		ActiveStoresPerVertex: 1,
		RecvLoadsPerMsg:       5,
		RecvIssuePerMsg:       2,
		SendStoresPerMsg:      10,
		SendLoadsPerMsg:       5,
		SendIssuePerMsg:       4,
		DeliverLoadsPerMsg:    8,
		DeliverStoresPerMsg:   3,
		HotMsgChunk:           32,
	}
}

// hotOps returns the number of global-cursor fetch-and-adds needed to
// allocate slots for n messages.
func (c CostSchedule) hotOps(n int64) int64 {
	chunk := c.HotMsgChunk
	if chunk <= 0 {
		chunk = 1
	}
	return (n + chunk - 1) / chunk
}
