package core

// Direction-optimizing supersteps: the Beamer-style push/pull decision
// layer. Every superstep the engine either pushes (frontier vertices
// scatter their broadcasts along out-edges — the classic BSP delivery) or
// pulls (every vertex walks its own adjacency reading the frontier's
// broadcast records from a stamped lookaside). On scale-free graphs the
// pull sweep turns the paper's Figure-2 message excess — every frontier
// vertex flooding all neighbors, visited or not — into one O(edges) read
// pass with O(frontier) materialized records.
//
// The decision is a pure function of logical counters (frontier incident
// edges vs. unvisited incident edges, both from the CSR degree prefix
// sum), never of the worker count or any physical-delivery artifact, so
// the push/pull sequence — and therefore the Result and trace profile —
// is bit-identical at any worker count, under either broadcast treatment
// (records kept or expanded), and across checkpoint/resume. The sequence
// is recorded per superstep in Result.DirectionPerStep and persisted in
// checkpoints (fingerprint mode + per-step decisions) so a resumed run
// replays it exactly.
//
// Logical message counting is unchanged in either direction: a broadcast
// still costs one logical message per edge (the paper-fidelity count the
// cost model charges); only SentPhysical shows the pull win.

import "graphxmt/internal/graph"

// DirectionMode selects how the engine executes broadcast-heavy
// supersteps. The zero value is DirAuto.
type DirectionMode int

const (
	// DirAuto enables the adaptive heuristic: push until the frontier's
	// incident-edge count crosses the Beamer-style threshold, then pull.
	// For programs that are not pull-capable, DirAuto is the legacy
	// engine — no direction state is kept at all.
	DirAuto DirectionMode = iota
	// DirPush forces push scatter every superstep — the A/B control.
	DirPush
	// DirPull forces a pull sweep on every eligible superstep (pure
	// broadcast, large enough to keep records); ineligible supersteps
	// still push, since there are no records to pull from.
	DirPull
)

// String returns "auto", "push" or "pull".
func (m DirectionMode) String() string {
	switch m {
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	default:
		return "auto"
	}
}

// WithDirection selects the direction mode for a run (see DirectionMode).
func WithDirection(m DirectionMode) Option {
	return func(cfg *Config) { cfg.Direction = m }
}

// ParseDirection maps a -direction flag value ("auto", "push" or "pull")
// to its DirectionMode — the shared CLI validation. Unknown values return
// ok == false.
func ParseDirection(s string) (DirectionMode, bool) {
	switch s {
	case "auto":
		return DirAuto, true
	case "push":
		return DirPush, true
	case "pull":
		return DirPull, true
	}
	return DirAuto, false
}

// PullProgram is the opt-in surface for direction optimization. A vertex
// program that implements it with PullCapable() == true declares the
// contract the pull sweep needs: the program broadcasts only via
// SendToNeighbors (never Send), and at most once per vertex per
// superstep. Programs that also Send on some supersteps are still safe —
// a superstep with any unicast traffic is never pulled — but only pure
// broadcast algorithms benefit.
type PullProgram interface {
	PullCapable() bool
}

// pullCapable reports whether p opts into direction optimization.
func pullCapable(p Program) bool {
	pp, ok := p.(PullProgram)
	return ok && pp.PullCapable()
}

// DirectionError is returned by Run when Config.Direction requires pull
// capability the program does not declare, and by the CLIs when -direction
// names a mode the selected algorithm cannot honor.
type DirectionError struct {
	Program string        // program name (ProgramNameOf)
	Mode    DirectionMode // the requested mode
}

func (e *DirectionError) Error() string {
	return "core: direction " + e.Mode.String() + ": program " + e.Program +
		" does not implement PullProgram (pull-capable)"
}

// Beamer-style threshold constants (α and 1/γ in the BFS
// direction-optimization literature, tuned for this engine's record-based
// pull): switch to pull when the frontier's incident edges are within a
// factor DirAlpha of the unvisited incident edges AND cover at least
// 1/DirGamma of the total adjacency. The second gate keeps the O(edges)
// pull sweep off small frontiers where the O(frontier·degree) push is
// cheaper; the first catches the moment most traffic would land on
// already-visited vertices.
const (
	DirAlpha int64 = 14
	DirGamma int64 = 4
)

// dirState is the per-run direction-decision state, nil-gated like
// *ckptRun and *obsRun: a nil *dirState is the legacy engine. Allocated
// iff the program is pull-capable or a non-auto mode was requested.
type dirState struct {
	mode   DirectionMode
	pullOK bool // graph+program admit a pull sweep at all

	// totalEdges is g.NumEdges(); visitedEdges accumulates the
	// degree sum of visited vertices (a vertex is visited once it has
	// received a message or sent one). Both are logical quantities
	// derived from the CSR degree prefix sum — never from delivery
	// internals — so the decision below is worker- and
	// treatment-independent.
	totalEdges   int64
	visited      []bool
	visitedEdges int64
}

// startDir opens the direction layer for a run, or returns (nil, nil) for
// the legacy engine. A requested DirPull with a program that is not
// pull-capable is a typed *DirectionError; DirPush is honored for any
// program (it is the A/B control and never needs pull machinery beyond
// the decision record).
func startDir(cfg *Config, g *graph.Graph) (*dirState, error) {
	capable := pullCapable(cfg.Program)
	if cfg.Direction < DirAuto || cfg.Direction > DirPull {
		return nil, &DirectionError{Program: ProgramNameOf(cfg.Program), Mode: cfg.Direction}
	}
	if !capable {
		if cfg.Direction == DirPull {
			return nil, &DirectionError{Program: ProgramNameOf(cfg.Program), Mode: cfg.Direction}
		}
		if cfg.Direction == DirAuto {
			return nil, nil
		}
	}
	ds := &dirState{
		mode:       cfg.Direction,
		totalEdges: g.NumEdges(),
		visited:    make([]bool, g.NumVertices()),
	}
	// The pull sweep reads broadcast records through each destination's
	// own adjacency, so it needs in-edges visible from out-edges
	// (undirected graph) and — without a combiner — sorted adjacency so
	// the pull-scatter inbox order equals the push send order exactly.
	ds.pullOK = capable && !g.Directed() &&
		(cfg.Combiner != nil || g.SortedAdjacency())
	return ds, nil
}

// decide returns the direction for the superstep whose compute sweep just
// finished, given the frontier's broadcast-incident-edge count and the
// unicast message count. Pull requires a pure-broadcast superstep big
// enough that maybeExpand keeps the records (bcastExpandMax — below that
// the records are expanded and only push paths exist). Everything read
// here is a logical counter or run-constant, keeping the decision
// worker-count- and treatment-independent.
func (ds *dirState) decide(bcastEdges, unicast int64) DirectionMode {
	if ds.mode == DirPush {
		return DirPush
	}
	if !(ds.pullOK && unicast == 0 && bcastEdges >= bcastExpandMax) {
		return DirPush
	}
	if ds.mode == DirPull {
		return DirPull
	}
	unvisited := ds.totalEdges - ds.visitedEdges
	if bcastEdges*DirAlpha >= unvisited && bcastEdges*DirGamma >= ds.totalEdges {
		return DirPull
	}
	return DirPush
}
