package core_test

// Recovery determinism, end to end: a run killed (via the fault-injection
// harness) at ANY superstep boundary and resumed from its checkpoint
// produces a Result and trace profile bit-identical to an uninterrupted
// run, at any host worker count. This is the checkpoint layer's contract
// on top of PR 1's worker-count invariant — see docs/ROBUSTNESS.md.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
	"graphxmt/internal/par"
	"graphxmt/internal/trace"
)

// recGraph is the recovery-matrix graph: scale 14 (the acceptance bar),
// large enough that sweeps chunk and delivery crosses the parallel
// threshold.
func recGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.RMATConfig{Scale: 14, EdgeFactor: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runRec executes cfg under w workers with a fresh recorder, returning
// result, profile, and error.
func runRec(g *graph.Graph, w int, cfg core.Config) (*core.Result, []*trace.Phase, error) {
	defer par.SetWorkers(par.SetWorkers(w))
	rec := trace.NewRecorder()
	cfg.Graph = g
	cfg.Recorder = rec
	res, err := core.Run(cfg)
	return res, rec.Phases(), err
}

// TestRecoveryMatrix kills a run at every superstep boundary and resumes
// it, for BFS and CC (dense and sparse, with and without combiner) at 1,
// 3, and 8 workers. Resumed Result and profile must be bit-identical to
// the uninterrupted run's.
func TestRecoveryMatrix(t *testing.T) {
	g := recGraph(t)
	cases := []struct {
		name string
		mk   func() core.Config
	}{
		{"bfs/dense", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}}
		}},
		{"bfs/sparse", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}, SparseActivation: true}
		}},
		{"cc/combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
		}},
		{"cc/sparse-combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min, SparseActivation: true}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, w := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
					base, basePh, err := runRec(g, w, tc.mk())
					if err != nil {
						t.Fatal(err)
					}
					// Boundaries exist after supersteps 0..S-2 (the terminal
					// superstep breaks before the boundary).
					for k := 0; k <= base.Supersteps-2; k++ {
						dir := t.TempDir()
						plan := &faultinject.Plan{KillAt: map[int64]bool{int64(k): true}}
						cfg := tc.mk()
						cfg.Checkpoint = &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()}
						_, _, err := runRec(g, w, cfg)
						var ie *core.InterruptedError
						if !errors.As(err, &ie) {
							t.Fatalf("kill@%d: want InterruptedError, got %v", k, err)
						}
						if ie.Superstep != k || ie.CheckpointPath == "" {
							t.Fatalf("kill@%d: InterruptedError = %+v", k, ie)
						}

						cfg = tc.mk()
						cfg.Checkpoint = &ckpt.Policy{Dir: dir}
						cfg.Resume = ie.CheckpointPath
						res, ph, err := runRec(g, w, cfg)
						if err != nil {
							t.Fatalf("resume from kill@%d: %v", k, err)
						}
						if !reflect.DeepEqual(base, res) {
							t.Fatalf("kill@%d w=%d: resumed Result differs from uninterrupted run\n  supersteps %d vs %d\n  active %v vs %v",
								k, w, base.Supersteps, res.Supersteps, base.ActivePerStep, res.ActivePerStep)
						}
						comparePhases(t, basePh, ph)
					}
				})
			}
		})
	}
}

// TestRecoveryAggregators: aggregator state (triangle counts) survives
// kill/resume bit-identically, including the PreviousAggregate view.
func TestRecoveryAggregators(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Config {
		return core.Config{Program: bspalg.TCProgram{}, MaxMessagesPerSuperstep: 1 << 26}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}
	if base.Aggregates["triangles"] == 0 {
		t.Fatal("test graph has no triangles; aggregator path not exercised")
	}
	for k := 0; k <= base.Supersteps-2; k++ {
		dir := t.TempDir()
		cfg := mk()
		plan := &faultinject.Plan{KillAt: map[int64]bool{int64(k): true}}
		cfg.Checkpoint = &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()}
		_, _, err := runRec(g, 3, cfg)
		var ie *core.InterruptedError
		if !errors.As(err, &ie) {
			t.Fatalf("kill@%d: want InterruptedError, got %v", k, err)
		}
		cfg = mk()
		cfg.Checkpoint = &ckpt.Policy{Dir: dir}
		cfg.Resume = ie.CheckpointPath
		res, ph, err := runRec(g, 3, cfg)
		if err != nil {
			t.Fatalf("resume from kill@%d: %v", k, err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("kill@%d: resumed aggregates %v, want %v", k, res.Aggregates, base.Aggregates)
		}
		comparePhases(t, basePh, ph)
	}
}

// TestProgramPanicRecovered: a vertex-program panic mid-superstep becomes
// a typed ProgramError (deterministic across worker counts), an emergency
// checkpoint of the last completed boundary is written, and resuming from
// it completes bit-identically to an uninterrupted run.
func TestProgramPanicRecovered(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var target int64 = -1
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > 0 && v > 100 {
			target = v
			break
		}
	}
	if target < 0 {
		t.Fatal("no suitable panic target")
	}
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}

	plan, err := faultinject.ParsePlan(fmt.Sprintf("panic@1:%d", target))
	if err != nil {
		t.Fatal(err)
	}
	var firstPE *core.ProgramError
	for _, w := range []int{1, 3, 8} {
		dir := t.TempDir()
		cfg := mk()
		cfg.Program = plan.WrapProgram(cfg.Program)
		cfg.Checkpoint = &ckpt.Policy{Dir: dir}
		_, _, err := runRec(g, w, cfg)
		var pe *core.ProgramError
		if !errors.As(err, &pe) {
			t.Fatalf("w=%d: want ProgramError, got %v", w, err)
		}
		if pe.Vertex != target || pe.Superstep != 1 || pe.Phase != "compute" {
			t.Fatalf("w=%d: ProgramError = vertex %d, superstep %d, phase %s; want %d/1/compute",
				w, pe.Vertex, pe.Superstep, pe.Phase, target)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("w=%d: ProgramError has no stack", w)
		}
		if pe.CheckpointPath == "" || !strings.Contains(filepath.Base(pe.CheckpointPath), "emergency-") {
			t.Fatalf("w=%d: emergency checkpoint path = %q", w, pe.CheckpointPath)
		}
		if firstPE == nil {
			firstPE = pe
		} else if firstPE.Vertex != pe.Vertex || firstPE.Superstep != pe.Superstep {
			t.Fatalf("ProgramError coordinates differ across worker counts: %d/%d vs %d/%d",
				firstPE.Vertex, firstPE.Superstep, pe.Vertex, pe.Superstep)
		}

		// The emergency checkpoint captures the boundary after superstep 0;
		// resuming from it with the unwrapped program completes the run.
		cfg = mk()
		cfg.Checkpoint = &ckpt.Policy{Dir: dir}
		cfg.Resume = pe.CheckpointPath
		res, ph, err := runRec(g, w, cfg)
		if err != nil {
			t.Fatalf("w=%d: resume from emergency checkpoint: %v", w, err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("w=%d: resumed result differs from uninterrupted run", w)
		}
		comparePhases(t, basePh, ph)
	}
}

// TestPanicWithoutBoundary: a panic before any boundary completes (step 0,
// or the InitialState sweep) yields a ProgramError with no checkpoint.
func TestPanicWithoutBoundary(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultinject.ParsePlan("panic@0:17")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Program:    plan.WrapProgram(bspalg.CCProgram{}),
		Checkpoint: &ckpt.Policy{Dir: t.TempDir()},
	}
	_, _, err = runRec(g, 3, cfg)
	var pe *core.ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("want ProgramError, got %v", err)
	}
	if pe.Vertex != 17 || pe.Superstep != 0 || pe.CheckpointPath != "" {
		t.Fatalf("ProgramError = %+v; want vertex 17, superstep 0, no checkpoint", pe)
	}

	plan, err = faultinject.ParsePlan("panic@init:5")
	if err != nil {
		t.Fatal(err)
	}
	cfg = core.Config{Program: plan.WrapProgram(bspalg.CCProgram{})}
	_, _, err = runRec(g, 3, cfg)
	if !errors.As(err, &pe) {
		t.Fatalf("want ProgramError from init sweep, got %v", err)
	}
	if pe.Vertex != 5 || pe.Superstep != -1 || pe.Phase != "init" {
		t.Fatalf("init ProgramError = vertex %d, superstep %d, phase %s; want 5/-1/init",
			pe.Vertex, pe.Superstep, pe.Phase)
	}
}

// TestCheckpointWriteFailure: an injected mid-stream write failure aborts
// the run with a typed WriteError, leaves earlier checkpoints loadable,
// and leaves no temp-file litter or partial final file.
func TestCheckpointWriteFailure(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plan, err := faultinject.ParsePlan("failwrite@2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Program:    bspalg.CCProgram{},
		Combiner:   core.Min,
		Checkpoint: &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()},
	}
	_, _, err = runRec(g, 3, cfg)
	var we *ckpt.WriteError
	if !errors.As(err, &we) {
		t.Fatalf("want WriteError, got %v", err)
	}
	if !errors.Is(err, faultinject.ErrInjectedWrite) {
		t.Fatalf("WriteError does not wrap the injected failure: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{ckpt.FileName(0), ckpt.FileName(1)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("dir after failed write = %v, want %v", names, want)
	}
	for _, name := range want {
		if _, err := ckpt.Load(filepath.Join(dir, name)); err != nil {
			t.Fatalf("earlier checkpoint %s unloadable: %v", name, err)
		}
	}
}

// TestResumeRejectsMismatch: resuming with the wrong program, graph, or
// label is a typed MismatchError naming the differing field.
func TestResumeRejectsMismatch(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plan := &faultinject.Plan{KillAt: map[int64]bool{1: true}}
	cfg := core.Config{
		Program:    bspalg.BFSProgram{Source: 0},
		Checkpoint: &ckpt.Policy{Dir: dir, Label: "bfs src=0", Hooks: plan.Hooks()},
	}
	_, _, err = runRec(g, 3, cfg)
	var ie *core.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}
	path := ie.CheckpointPath

	check := func(name, wantField string, cfg core.Config) {
		t.Helper()
		cfg.Resume = path
		_, _, err := runRec(g, 3, cfg)
		var me *ckpt.MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("%s: want MismatchError, got %v", name, err)
		}
		if me.Field != wantField {
			t.Fatalf("%s: mismatch field %q, want %q", name, me.Field, wantField)
		}
	}
	check("wrong program", "program", core.Config{
		Program:    bspalg.CCProgram{},
		Checkpoint: &ckpt.Policy{Dir: dir, Label: "bfs src=0"},
	})
	check("wrong label", "label", core.Config{
		Program:    bspalg.BFSProgram{Source: 5},
		Checkpoint: &ckpt.Policy{Dir: dir, Label: "bfs src=5"},
	})
	check("wrong sparse mode", "sparse activation", core.Config{
		Program:          bspalg.BFSProgram{Source: 0},
		SparseActivation: true,
		Checkpoint:       &ckpt.Policy{Dir: dir, Label: "bfs src=0"},
	})

	g2, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg = core.Config{
		Program:    bspalg.BFSProgram{Source: 0},
		Checkpoint: &ckpt.Policy{Dir: dir, Label: "bfs src=0"},
		Resume:     path,
	}
	_, _, err = runRec(g2, 3, cfg)
	var me *ckpt.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("wrong graph: want MismatchError, got %v", err)
	}
	if me.Field != "graph checksum" && me.Field != "edges" {
		t.Fatalf("wrong graph: mismatch field %q", me.Field)
	}
}

// TestResumeRejectsCorruption: resuming from a bit-flipped or truncated
// checkpoint is a typed CorruptError, surfaced through core.Run.
func TestResumeRejectsCorruption(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plan := &faultinject.Plan{KillAt: map[int64]bool{1: true}}
	cfg := core.Config{
		Program:    bspalg.CCProgram{},
		Checkpoint: &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()},
	}
	_, _, err = runRec(g, 3, cfg)
	var ie *core.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}

	flipped := filepath.Join(dir, "flipped"+ckpt.Ext)
	data, err := os.ReadFile(ie.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(flipped, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipBit(flipped, int64(len(data)/2), 3); err != nil {
		t.Fatal(err)
	}
	cfg = core.Config{Program: bspalg.CCProgram{}, Resume: flipped}
	_, _, err = runRec(g, 3, cfg)
	var ce *ckpt.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("bit-flipped resume: want CorruptError, got %v", err)
	}

	truncated := filepath.Join(dir, "truncated"+ckpt.Ext)
	if err := os.WriteFile(truncated, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.TruncateTail(truncated, 33); err != nil {
		t.Fatal(err)
	}
	cfg = core.Config{Program: bspalg.CCProgram{}, Resume: truncated}
	_, _, err = runRec(g, 3, cfg)
	if !errors.As(err, &ce) {
		t.Fatalf("truncated resume: want CorruptError, got %v", err)
	}
}

// TestCheckpointCadenceAndRetention: EveryN gates disk writes, Keep prunes
// old checkpoints, and LatestPath resumes to a bit-identical result.
func TestCheckpointCadenceAndRetention(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: dir, EveryN: 2, Keep: 2}
	if _, _, err := runRec(g, 3, cfg); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("retention: dir has %v, want 2 newest even-boundary checkpoints", names)
	}
	for _, e := range entries {
		var step int64
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d"+ckpt.Ext, &step); err != nil {
			t.Fatalf("unexpected file %s", e.Name())
		}
		if (step+1)%2 != 0 {
			t.Fatalf("checkpoint %s written off the EveryN=2 cadence", e.Name())
		}
	}
	latest, err := ckpt.LatestPath(dir)
	if err != nil || latest == "" {
		t.Fatalf("LatestPath: %q, %v", latest, err)
	}
	cfg = mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: t.TempDir()}
	cfg.Resume = latest
	res, ph, err := runRec(g, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("resume from LatestPath differs from uninterrupted run")
	}
	comparePhases(t, basePh, ph)
}

// TestStopChannel: a closed Stop channel interrupts at the first boundary;
// with a policy the interrupt carries a resumable checkpoint, without one
// it carries none.
func TestStopChannel(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}

	ch := make(chan struct{})
	close(ch)
	dir := t.TempDir()
	cfg := mk()
	cfg.Stop = ch
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	_, _, err = runRec(g, 3, cfg)
	var ie *core.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}
	if ie.Superstep != 0 || ie.CheckpointPath == "" {
		t.Fatalf("InterruptedError = %+v; want superstep 0 with checkpoint", ie)
	}
	cfg = mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	cfg.Resume = ie.CheckpointPath
	res, ph, err := runRec(g, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("resume after stop differs from uninterrupted run")
	}
	comparePhases(t, basePh, ph)

	cfg = mk()
	cfg.Stop = ch
	_, _, err = runRec(g, 3, cfg)
	if !errors.As(err, &ie) {
		t.Fatalf("stop without policy: want InterruptedError, got %v", err)
	}
	if ie.CheckpointPath != "" {
		t.Fatalf("stop without policy carried checkpoint %q", ie.CheckpointPath)
	}
}

// chatty never halts: the runaway program the MaxSupersteps guard exists
// for.
type chatty struct{}

func (chatty) InitialState(*graph.Graph, int64) int64 { return 0 }
func (chatty) Compute(v *core.VertexContext)          { v.Send(v.ID(), 1) }

func TestBudgetExceeded(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 6, EdgeFactor: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	_, _, err = runRec(g, 3, core.Config{Program: chatty{}, MaxSupersteps: 5})
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %v", err)
	}
	if be.MaxSupersteps != 5 || be.LastActive != n || be.LastSent != n || be.LastDelivered != n || be.Live != n {
		t.Fatalf("BudgetError = %+v; want bound 5 and all counters %d", be, n)
	}
}

// lateHalter converges only after ~1200 supersteps: under the old fixed
// 1000-step default it would abort, so it exercises MaxSupersteps < 0
// (unbounded).
type lateHalter struct{}

func (lateHalter) InitialState(*graph.Graph, int64) int64 { return 0 }
func (lateHalter) Compute(v *core.VertexContext) {
	if v.Superstep() >= 1200 {
		v.VoteToHalt()
		return
	}
	v.Send(v.ID(), 1)
}

func TestUnboundedSupersteps(t *testing.T) {
	g, err := graph.Build(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := runRec(g, 1, core.Config{Program: lateHalter{}, MaxSupersteps: -1})
	if err != nil {
		t.Fatalf("unbounded run failed: %v", err)
	}
	if res.Supersteps <= 1000 {
		t.Fatalf("run converged in %d supersteps; test needs >1000 to prove the bound is off", res.Supersteps)
	}
}

// TestCheckpointObsSpan: runs with a checkpoint policy emit a "checkpoint"
// span that reaches the report sink.
func TestCheckpointObsSpan(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewReport()
	cfg := core.Config{
		Program:    bspalg.CCProgram{},
		Combiner:   core.Min,
		Checkpoint: &ckpt.Policy{Dir: t.TempDir()},
		Obs:        r,
	}
	if _, _, err := runRec(g, 2, cfg); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "checkpoint") {
		t.Fatalf("report missing checkpoint span:\n%s", buf.String())
	}
}
