package core_test

// Degree-skew determinism: the worst imbalance a chunking schedule can
// face is a star graph, whose hub has degree N-1 while every other vertex
// has degree 1. Under fixed vertex-count chunking the hub's chunk carries
// almost all the work; under degree-weighted chunking the hub is isolated
// into its own narrow chunk. Either way the engine's invariant must hold:
// Result and trace profile bit-identical at any worker count — and, for
// the associative combiners and aggregators these programs use, across
// the two schedules as well. The hub also funnels >= hubFoldMin messages
// into one inbox, exercising the combining path's segment prefold.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
)

// skewN is the star size: large enough that the hub's inbox (N-1 combined
// messages) crosses both the parallel-delivery threshold and the hub
// prefold threshold, and that sweeps split into many chunks.
const skewN = 1 << 14

func skewCases(g *graph.Graph) []struct {
	name string
	mk   func() core.Config
} {
	return []struct {
		name string
		mk   func() core.Config
	}{
		{"bfs/dense", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 1}}
		}},
		{"bfs/sparse", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 1}, SparseActivation: true}
		}},
		{"cc/combiner", func() core.Config {
			// Hub inbox: every leaf sends to vertex 0 each superstep, so the
			// combining path sees one group of N-1 messages.
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
		}},
		{"cc/sparse-combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min, SparseActivation: true}
		}},
		{"pagerank/combiner", func() core.Config {
			return core.Config{
				Program:  bspalg.PageRankProgram{DampingMilli: 850, Rounds: 10},
				Combiner: core.Sum,
			}
		}},
	}
}

// TestSkewDeterminismStar asserts bit-identical Result + profile at 1/3/8
// workers under BOTH chunk schedules on the star graph, and that the two
// schedules agree with each other (these programs' reductions are
// associative, so the schedule cannot change answers).
func TestSkewDeterminismStar(t *testing.T) {
	g := gen.Star(skewN)
	for _, tc := range skewCases(g) {
		t.Run(tc.name, func(t *testing.T) {
			var baseline *core.Result
			for _, sched := range []core.ChunkSchedule{core.ChunkDegree, core.ChunkFixed} {
				mk := func() core.Config {
					cfg := tc.mk()
					cfg.Chunking = sched
					return cfg
				}
				baseRes, basePh := runDet(t, g, 1, mk)
				for _, w := range []int{3, 8} {
					res, ph := runDet(t, g, w, mk)
					if !reflect.DeepEqual(baseRes, res) {
						t.Fatalf("%v w=%d: Result differs from 1-worker run\n  supersteps %d vs %d\n  active %v vs %v",
							sched, w, baseRes.Supersteps, res.Supersteps,
							baseRes.ActivePerStep, res.ActivePerStep)
					}
					comparePhases(t, basePh, ph)
				}
				if baseline == nil {
					baseline = baseRes
				} else if !reflect.DeepEqual(baseline, baseRes) {
					t.Fatalf("schedules disagree: degree vs fixed Results differ")
				}
			}
		})
	}
}

// TestSkewDeterminismPowerLaw runs the same matrix on a Barabási–Albert
// power-law graph, so the guarantee does not hinge on the star's extreme
// structure.
func TestSkewDeterminismPowerLaw(t *testing.T) {
	g, err := gen.BarabasiAlbert(1<<12, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range skewCases(g) {
		t.Run(tc.name, func(t *testing.T) {
			for _, sched := range []core.ChunkSchedule{core.ChunkDegree, core.ChunkFixed} {
				mk := func() core.Config {
					cfg := tc.mk()
					cfg.Chunking = sched
					return cfg
				}
				baseRes, basePh := runDet(t, g, 1, mk)
				res, ph := runDet(t, g, 8, mk)
				if !reflect.DeepEqual(baseRes, res) {
					t.Fatalf("%v: Result differs at w=8", sched)
				}
				comparePhases(t, basePh, ph)
			}
		})
	}
}

// TestSkewRecoveryStar kills a CC run on the star at every superstep
// boundary and resumes it under the degree-weighted schedule: resumed
// Result and profile must match the uninterrupted run bit-for-bit, at
// multiple worker counts (the resume-mid-run case on a skewed graph).
func TestSkewRecoveryStar(t *testing.T) {
	g := gen.Star(skewN)
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min, Chunking: core.ChunkDegree}
	}
	for _, w := range []int{1, 8} {
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			base, basePh, err := runRec(g, w, mk())
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= base.Supersteps-2; k++ {
				dir := t.TempDir()
				plan := &faultinject.Plan{KillAt: map[int64]bool{int64(k): true}}
				cfg := mk()
				cfg.Checkpoint = &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()}
				_, _, err := runRec(g, w, cfg)
				var ie *core.InterruptedError
				if !errors.As(err, &ie) {
					t.Fatalf("kill@%d: want InterruptedError, got %v", k, err)
				}

				cfg = mk()
				cfg.Checkpoint = &ckpt.Policy{Dir: dir}
				cfg.Resume = ie.CheckpointPath
				res, ph, err := runRec(g, w, cfg)
				if err != nil {
					t.Fatalf("resume from kill@%d: %v", k, err)
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("kill@%d: resumed Result differs from uninterrupted run", k)
				}
				comparePhases(t, basePh, ph)
			}
		})
	}
}

// TestScheduleFingerprintMismatch: a checkpoint taken under one chunk
// schedule must refuse to resume under the other — aggregator fold trees
// follow chunk boundaries, so silently switching schedules could change
// non-associative reductions.
func TestScheduleFingerprintMismatch(t *testing.T) {
	g := gen.Star(1 << 10)
	dir := t.TempDir()
	plan := &faultinject.Plan{KillAt: map[int64]bool{1: true}}
	cfg := core.Config{
		Program:    bspalg.CCProgram{},
		Combiner:   core.Min,
		Chunking:   core.ChunkDegree,
		Checkpoint: &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()},
	}
	_, _, err := runRec(g, 1, cfg)
	var ie *core.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}

	resume := core.Config{
		Program:  bspalg.CCProgram{},
		Combiner: core.Min,
		Chunking: core.ChunkFixed,
		Resume:   ie.CheckpointPath,
	}
	_, _, err = runRec(g, 1, resume)
	var me *ckpt.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("want MismatchError, got %v", err)
	}
	if me.Field != "chunk schedule" || me.Got != "degree" || me.Want != "fixed" {
		t.Fatalf("MismatchError = %+v, want chunk schedule degree vs fixed", me)
	}

	// The matching schedule (and the ChunkAuto alias for it) resumes fine.
	for _, sched := range []core.ChunkSchedule{core.ChunkDegree, core.ChunkAuto} {
		resume.Chunking = sched
		if _, _, err := runRec(g, 1, resume); err != nil {
			t.Fatalf("resume with %v: %v", sched, err)
		}
	}
}
